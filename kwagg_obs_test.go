package kwagg

import (
	"context"
	"strings"
	"testing"
	"time"

	"kwagg/internal/obs"
)

// TestAnswerTrace drives a traced query through the public API and checks
// the per-stage account: every pipeline stage appears, the top-level stages
// sum to approximately the trace's wall time, and the cache provenance
// annotations flip from miss to hit on the repeat query.
func TestAnswerTrace(t *testing.T) {
	eng, err := Open(UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, trace := obs.NewTrace(context.Background())
	if _, err := eng.AnswerContext(ctx, "SUM Credit Green", 2); err != nil {
		t.Fatal(err)
	}
	trace.Finish()

	seen := map[string]bool{}
	for _, s := range trace.Spans() {
		seen[s.Name] = true
	}
	for _, stage := range []string{"parse", "match", "generate", "rank", "translate", "execute", "sql", "render"} {
		if !seen[stage] {
			t.Errorf("trace missing stage %q; breakdown:\n%s", stage, trace.Breakdown())
		}
	}
	// The depth-0 stages must account for most of the wall time: the only
	// uninstrumented work is cache bookkeeping and span overhead. Keep the
	// bound loose (50%) so a loaded CI machine does not flake it.
	total, wall := trace.StageTotal(), trace.Elapsed()
	if total > wall {
		t.Errorf("stage total %v exceeds wall %v (depth-0 spans must not overlap)", total, wall)
	}
	if total < wall/2 {
		t.Errorf("stage total %v covers less than half of wall %v; breakdown:\n%s",
			total, wall, trace.Breakdown())
	}

	notes := map[string]string{}
	for _, a := range trace.Annotations() {
		notes[a.Key] = a.Value
	}
	if notes["interpretation_cache"] != "miss" || notes["answer_cache"] != "miss" {
		t.Errorf("first query should miss both caches: %v", notes)
	}

	ctx2, trace2 := obs.NewTrace(context.Background())
	if _, err := eng.AnswerContext(ctx2, "SUM Credit Green", 2); err != nil {
		t.Fatal(err)
	}
	notes2 := map[string]string{}
	for _, a := range trace2.Annotations() {
		notes2[a.Key] = a.Value
	}
	if notes2["answer_cache"] != "hit" {
		t.Errorf("repeat query should hit the answer cache: %v", notes2)
	}
	if len(trace2.Spans()) != 0 {
		t.Errorf("answer-cache hit should skip every stage, got %v", trace2.Spans())
	}
}

// TestEngineMetrics checks the registry the engine exports: stage histograms
// fill in without any trace on the context, query outcomes count by result,
// and the qcache counters are mirrored live.
func TestEngineMetrics(t *testing.T) {
	eng, err := Open(UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer("COUNT Student GROUPBY Course", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer("COUNT Student GROUPBY Course", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer("no such terms anywhere", 1); err == nil {
		t.Fatal("expected an error for a nonsense query")
	}

	vals := map[string]float64{}
	hists := map[string]uint64{}
	for _, m := range eng.Metrics().Snapshot() {
		key := m.Name
		var parts []string
		for k, v := range m.Labels {
			parts = append(parts, k+"="+v)
		}
		if len(parts) > 0 {
			key += "{" + strings.Join(sorted(parts), ",") + "}"
		}
		if m.Hist != nil {
			hists[key] = m.Hist.Count
		} else {
			vals[key] = m.Value
		}
	}
	if got := vals[`kwagg_queries_total{outcome=ok}`]; got != 2 {
		t.Errorf("ok queries = %v, want 2", got)
	}
	if got := vals[`kwagg_queries_total{outcome=error}`]; got != 1 {
		t.Errorf("error queries = %v, want 1", got)
	}
	if got := vals[`kwagg_cache_events_total{cache=answer,event=hits}`]; got != 1 {
		t.Errorf("answer cache hits = %v, want 1", got)
	}
	if got := hists[`kwagg_stage_duration_seconds{stage=execute}`]; got != 1 {
		t.Errorf("execute stage observations = %v, want 1", got)
	}
	if got := vals[`kwagg_exec_workers`]; got < 1 {
		t.Errorf("exec workers gauge = %v, want >= 1", got)
	}

	// A canceled context counts as canceled, not error.
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	// Different query text so neither cache serves it before ctx is checked.
	_, err = eng.AnswerContext(ctx, "SUM Credit Green", 1)
	if err == nil {
		t.Skip("query finished before the deadline; cannot assert canceled outcome")
	}
	for _, m := range eng.Metrics().Snapshot() {
		if m.Name == "kwagg_queries_total" && m.Labels["outcome"] == "canceled" && m.Value != 1 {
			t.Errorf("canceled queries = %v, want 1", m.Value)
		}
	}
}

func sorted(s []string) []string {
	out := append([]string(nil), s...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
