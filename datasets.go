package kwagg

import (
	"fmt"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/dataset/university"
	"kwagg/internal/experiments"
)

// UniversityDB returns the running-example university database of the
// paper's Figure 1 (students, courses, lecturers, textbooks, departments).
func UniversityDB() *DB { return wrapDB(university.New()) }

// UniversityFig2DB returns the Figure 2 variant whose Lecturer relation
// redundantly references Faculty (violating 3NF).
func UniversityFig2DB() *DB { return wrapDB(university.NewDenormalizedLecturer()) }

// UniversityFig2ViewNames names the normalized-view relations of
// UniversityFig2DB for Options.ViewNames.
func UniversityFig2ViewNames() map[string]string { return university.DenormalizedLecturerHints() }

// UniversityEnrolmentDB returns the Figure 8 database: one unnormalized
// Enrolment relation holding students, courses and grades.
func UniversityEnrolmentDB() *DB { return wrapDB(university.NewEnrolment()) }

// UniversityEnrolmentViewNames names the normalized-view relations of
// UniversityEnrolmentDB (the Student', Enrol', Course' of Example 8).
func UniversityEnrolmentViewNames() map[string]string { return university.EnrolmentHints() }

// TPCHScale selects the size of the generated TPC-H-like database.
type TPCHScale int

// TPC-H scales.
const (
	TPCHSmall   TPCHScale = iota // fast, for tests
	TPCHDefault                  // the experiment harness scale
)

func tpchConfig(s TPCHScale) tpch.Config {
	if s == TPCHSmall {
		return tpch.Small()
	}
	return tpch.Default()
}

// TPCHDB generates the normalized TPC-H-like database of the paper's
// evaluation (Table 2), with the planted name collisions its queries need.
func TPCHDB(scale TPCHScale) *DB { return wrapDB(tpch.New(tpchConfig(scale))) }

// TPCHUnnormalizedDB generates the denormalized TPCH' database of Table 7
// (the wide Ordering relation) over the same data as TPCHDB.
func TPCHUnnormalizedDB(scale TPCHScale) *DB {
	return wrapDB(tpch.Denormalize(tpch.New(tpchConfig(scale))))
}

// TPCHViewNames names the normalized-view relations of TPCHUnnormalizedDB.
func TPCHViewNames() map[string]string { return tpch.NameHints() }

// ACMDLScale selects the size of the generated publication database.
type ACMDLScale int

// ACMDL scales.
const (
	ACMDLSmall ACMDLScale = iota
	ACMDLDefault
)

func acmdlConfig(s ACMDLScale) acmdl.Config {
	if s == ACMDLSmall {
		return acmdl.Small()
	}
	return acmdl.Default()
}

// ACMDLDB generates the synthetic ACM Digital Library database of the
// paper's evaluation (Table 2), with the name collisions queries A1-A8
// exercise (Smith editors, Gill authors, SIGMOD proceedings, ...).
func ACMDLDB(scale ACMDLScale) *DB { return wrapDB(acmdl.New(acmdlConfig(scale))) }

// ACMDLUnnormalizedDB generates the denormalized ACMDL' database of Table 7
// (PaperAuthor and EditorProceeding) over the same data as ACMDLDB.
func ACMDLUnnormalizedDB(scale ACMDLScale) *DB {
	return wrapDB(acmdl.Denormalize(acmdl.New(acmdlConfig(scale))))
}

// ACMDLViewNames names the normalized-view relations of ACMDLUnnormalizedDB.
func ACMDLViewNames() map[string]string { return acmdl.NameHints() }

// DatasetWorkloads returns the canonical keyword workload of each bundled
// dataset: the paper's running-example queries for "university" and the
// evaluation queries T1-T8 / A1-A8 for the TPC-H and ACMDL databases. The
// denormalized variants replay the same keywords, which routes them through
// the Section 4.1 rewrite rules. The chaos replay suite, the plan-verifier
// corpus test and `kwlint -plans` all iterate this map, so every statement
// the bundled workloads can generate is covered by the planck invariants.
func DatasetWorkloads() map[string][]string {
	w := map[string][]string{
		"university": {
			"Green SUM Credit",
			"Green George COUNT Code",
			"COUNT Student GROUPBY Course",
		},
	}
	for _, q := range experiments.QueriesTPCH() {
		w["tpch"] = append(w["tpch"], q.Keywords)
		w["tpch-denorm"] = append(w["tpch-denorm"], q.Keywords)
	}
	for _, q := range experiments.QueriesACMDL() {
		w["acmdl"] = append(w["acmdl"], q.Keywords)
		w["acmdl-denorm"] = append(w["acmdl-denorm"], q.Keywords)
	}
	return w
}

// OpenDataset opens one of the bundled datasets by name: "university",
// "fig2", "enrolment", "tpch", "tpch-denorm", "acmdl" or "acmdl-denorm".
// The denormalized variants are opened with their view names so the
// synthesized relations carry the natural names. small selects the fast
// scale for the generated datasets.
func OpenDataset(name string, small bool) (*Engine, error) {
	return OpenDatasetOpts(name, small, nil)
}

// OpenDatasetOpts is OpenDataset with engine options: the dataset's own view
// names are filled in automatically (opts.ViewNames, when set, wins), so
// callers can layer caching, worker-pool and chaos settings over any bundled
// dataset.
func OpenDatasetOpts(name string, small bool, opts *Options) (*Engine, error) {
	db, merged, err := datasetDB(name, small, opts)
	if err != nil {
		return nil, err
	}
	return Open(db, merged)
}

// OpenDatasetLive is OpenDatasetOpts but opens the dataset for live ingest
// (see OpenLive): the bundled data becomes epoch 0, and Ingest/CommitEpoch
// grow it from there.
func OpenDatasetLive(name string, small bool, opts *Options) (*Engine, error) {
	db, merged, err := datasetDB(name, small, opts)
	if err != nil {
		return nil, err
	}
	return OpenLive(db, merged)
}

// datasetDB builds the named bundled dataset and merges its view names into
// the caller's options.
func datasetDB(name string, small bool, opts *Options) (*DB, *Options, error) {
	tscale, ascale := TPCHDefault, ACMDLDefault
	if small {
		tscale, ascale = TPCHSmall, ACMDLSmall
	}
	var (
		db    *DB
		views map[string]string
	)
	switch name {
	case "university":
		db = UniversityDB()
	case "fig2":
		db, views = UniversityFig2DB(), UniversityFig2ViewNames()
	case "enrolment":
		db, views = UniversityEnrolmentDB(), UniversityEnrolmentViewNames()
	case "tpch":
		db = TPCHDB(tscale)
	case "tpch-denorm":
		db, views = TPCHUnnormalizedDB(tscale), TPCHViewNames()
	case "acmdl":
		db = ACMDLDB(ascale)
	case "acmdl-denorm":
		db, views = ACMDLUnnormalizedDB(ascale), ACMDLViewNames()
	default:
		return nil, nil, fmt.Errorf("kwagg: unknown dataset %q", name)
	}
	merged := Options{}
	if opts != nil {
		merged = *opts
	}
	if merged.ViewNames == nil {
		merged.ViewNames = views
	}
	return db, &merged, nil
}
