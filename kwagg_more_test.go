package kwagg_test

import (
	"strings"
	"sync"
	"testing"

	"kwagg"
)

func TestFacadeExplain(t *testing.T) {
	eng := universityEngine(t)
	out, err := eng.Explain("Green SUM Credit", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"terms:", "disambiguation:", "ranking:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
	if _, err := eng.Explain("Green SUM Credit", 99); err == nil {
		t.Error("out-of-range interpretation index should fail")
	}
	if _, err := eng.Explain("", 0); err == nil {
		t.Error("bad query should fail")
	}
}

func TestFacadePatternDot(t *testing.T) {
	eng := universityEngine(t)
	dot, err := eng.PatternDot("Green SUM Credit", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot, "graph pattern {") || !strings.Contains(dot, "SUM(Credit)") {
		t.Errorf("PatternDot:\n%s", dot)
	}
	if _, err := eng.PatternDot("Green SUM Credit", -1); err == nil {
		t.Error("negative index should fail")
	}
}

func TestFacadeSchemaDot(t *testing.T) {
	eng := universityEngine(t)
	dot := eng.SchemaDot()
	if !strings.Contains(dot, "graph ORM {") || !strings.Contains(dot, "Teach") {
		t.Errorf("SchemaDot:\n%s", dot)
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	dir := t.TempDir()
	if err := kwagg.UniversityDB().Save(dir); err != nil {
		t.Fatal(err)
	}
	db, err := kwagg.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := kwagg.Open(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := eng.Answer("Green SUM Credit", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers[0].Result.Rows) != 2 {
		t.Errorf("answers after reload: %v", answers[0].Result.Rows)
	}
	if _, err := kwagg.Load(t.TempDir()); err == nil {
		t.Error("loading an empty directory should fail")
	}
}

// TestFacadeConcurrentUse drives one engine from several goroutines (run
// with -race in CI): all engine state after Open is read-only.
func TestFacadeConcurrentUse(t *testing.T) {
	eng := universityEngine(t)
	queries := []string{
		"Green SUM Credit",
		"COUNT Lecturer GROUPBY Course",
		"Java SUM Price",
		"AVG COUNT Student GROUPBY Course",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*4)
	for i := 0; i < 4; i++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				if _, err := eng.Answer(q, 2); err != nil {
					errs <- err
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPublicAPIUnnormalized builds an unnormalized table through the public
// API (declaring functional dependencies) and checks the engine detects it,
// synthesizes the view, and answers per object.
func TestPublicAPIUnnormalized(t *testing.T) {
	db := kwagg.NewDB("sales")
	db.MustCreateTable(kwagg.TableSpec{
		Name:       "Sales",
		Columns:    []kwagg.Column{"custid", "prodid", "custname", "prodname", "price FLOAT", "qty INT"},
		PrimaryKey: []string{"custid", "prodid"},
		Dependencies: []kwagg.Dep{
			{From: []string{"custid"}, To: []string{"custname"}},
			{From: []string{"prodid"}, To: []string{"prodname", "price"}},
			{From: []string{"custid", "prodid"}, To: []string{"qty"}},
		},
	})
	rows := [][]string{
		{"c1", "p1", "Ada", "widget", "10", "3"},
		{"c1", "p2", "Ada", "gadget", "20", "1"},
		{"c2", "p1", "Ada", "widget", "10", "5"}, // a second customer named Ada
		{"c3", "p2", "Bo", "gadget", "20", "2"},
	}
	for _, r := range rows {
		db.MustInsert("Sales", r...)
	}
	eng, err := kwagg.Open(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Unnormalized() {
		t.Fatal("Sales violates 2NF and must be detected")
	}
	// Total spend per customer named Ada: c1 buys 10+20, c2 buys 10 — but
	// SUM over price is per product joined; the point is two rows, not one.
	answers, err := eng.Answer("Ada SUM price", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers[0].Result.Rows) != 2 {
		t.Fatalf("one row per distinct Ada expected: %v\nSQL: %s",
			answers[0].Result.Rows, answers[0].SQL)
	}
}

func TestOpenDataset(t *testing.T) {
	for _, name := range []string{"university", "fig2", "enrolment", "tpch", "tpch-denorm", "acmdl", "acmdl-denorm"} {
		eng, err := kwagg.OpenDataset(name, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if eng == nil {
			t.Fatalf("%s: nil engine", name)
		}
	}
	if _, err := kwagg.OpenDataset("nosuch", true); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestExplainSQLPlan(t *testing.T) {
	eng := universityEngine(t)
	plan, err := eng.ExplainSQLPlan("SELECT S.Sid FROM Student S, Enrol E WHERE E.Sid=S.Sid")
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"scan Student", "hash join"} {
		if !strings.Contains(plan, frag) {
			t.Errorf("plan missing %q:\n%s", frag, plan)
		}
	}
	if _, err := eng.ExplainSQLPlan("SELECT nope"); err == nil {
		t.Error("bad SQL should fail")
	}
}
