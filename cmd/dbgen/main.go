// Command dbgen materializes the synthetic evaluation datasets as CSV files
// (one file per relation, with a header row), for inspection or for loading
// into an external database:
//
//	dbgen -dataset tpch -out ./tpch-csv
//	dbgen -dataset acmdl-denorm -small -out ./acmdl-denorm-csv
package main

import (
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"strings"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

func main() {
	var (
		dataset = flag.String("dataset", "tpch",
			"university | fig2 | enrolment | tpch | tpch-denorm | acmdl | acmdl-denorm")
		out   = flag.String("out", ".", "output directory")
		small = flag.Bool("small", false, "use the small dataset scale")
	)
	flag.Parse()

	db, err := build(*dataset, *small)
	if err != nil {
		log.Fatal(err)
	}
	// SaveDir writes schema.json plus one CSV per relation; the saved
	// directory round-trips through kwsearch -load / kwagg.Load.
	if err := relation.SaveDir(db, *out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %s\n", "schema.json", filepath.Join(*out, "schema.json"))
	for _, t := range db.Tables() {
		path := filepath.Join(*out, strings.ToLower(t.Schema.Name)+".csv")
		fmt.Printf("%-24s %6d rows  %s\n", t.Schema.String(), t.Len(), path)
	}
}

func build(dataset string, small bool) (*relation.Database, error) {
	tcfg, acfg := tpch.Default(), acmdl.Default()
	if small {
		tcfg, acfg = tpch.Small(), acmdl.Small()
	}
	switch dataset {
	case "university":
		return university.New(), nil
	case "fig2":
		return university.NewDenormalizedLecturer(), nil
	case "enrolment":
		return university.NewEnrolment(), nil
	case "tpch":
		return tpch.New(tcfg), nil
	case "tpch-denorm":
		return tpch.Denormalize(tpch.New(tcfg)), nil
	case "acmdl":
		return acmdl.New(acfg), nil
	case "acmdl-denorm":
		return acmdl.Denormalize(acmdl.New(acfg)), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
