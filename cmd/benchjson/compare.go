package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// rowsPerSec is the throughput metric the regression gate compares: every
// kernel benchmark reports it via b.ReportMetric, and unlike ns/op it is
// comparable across -cpu values of the same benchmark run.
const rowsPerSec = "rows/s"

// loadReport reads a benchjson document written by a previous run (the
// committed baseline).
func loadReport(path string) (Report, error) {
	var rep Report
	raw, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// benchKey identifies one benchmark variant across runs: the -cpu flag reruns
// every benchmark per GOMAXPROCS value, so the same name legitimately appears
// once per procs count.
type benchKey struct {
	Name  string
	Procs int
}

// compareReports checks every rows/s-bearing benchmark of the baseline
// against the fresh run. It returns human-readable status lines for all
// compared benchmarks and a separate list of failures: a benchmark whose
// fresh throughput fell more than tolerance (a fraction, e.g. 0.25) below the
// baseline, or a baseline benchmark missing from the fresh run entirely
// (deleting a kernel benchmark must not silently pass the gate). Baseline
// entries without a rows/s metric and fresh-only benchmarks are ignored.
func compareReports(base, fresh Report, tolerance float64) (lines, failures []string) {
	got := make(map[benchKey]float64)
	for _, b := range fresh.Benchmarks {
		if v, ok := b.Metrics[rowsPerSec]; ok {
			got[benchKey{b.Name, b.Procs}] = v
		}
	}
	for _, b := range sortedBaseline(base) {
		want, ok := b.Metrics[rowsPerSec]
		if !ok || want <= 0 {
			continue
		}
		key := benchKey{b.Name, b.Procs}
		have, ok := got[key]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s (procs=%d): in baseline but missing from this run", b.Name, b.Procs))
			continue
		}
		delta := have/want - 1
		line := fmt.Sprintf("%-50s procs=%-2d %14.0f -> %14.0f rows/s (%+.1f%%)",
			b.Name, b.Procs, want, have, 100*delta)
		if delta < -tolerance {
			failures = append(failures, fmt.Sprintf("%s (procs=%d): %.0f rows/s is %.1f%% below the baseline %.0f (tolerance %.0f%%)",
				b.Name, b.Procs, have, -100*delta, want, 100*tolerance))
			line += "  REGRESSION"
		}
		lines = append(lines, line)
	}
	return lines, failures
}

// sortedBaseline orders the baseline deterministically by name then procs so
// the comparison log is stable across runs.
func sortedBaseline(rep Report) []Benchmark {
	bs := append([]Benchmark(nil), rep.Benchmarks...)
	sort.Slice(bs, func(i, j int) bool {
		if bs[i].Name != bs[j].Name {
			return bs[i].Name < bs[j].Name
		}
		return bs[i].Procs < bs[j].Procs
	})
	return bs
}
