package main

import (
	"strings"
	"testing"
)

func bench(name string, procs int, rows float64) Benchmark {
	b := Benchmark{Name: name, Procs: procs, NsPerOp: 1}
	if rows > 0 {
		b.Metrics = map[string]float64{rowsPerSec: rows}
	}
	return b
}

func TestParseBenchRowsMetric(t *testing.T) {
	line := "BenchmarkKernelFilter/sharded-4   1318   905143 ns/op   291227050 rows/s   76 B/op    2 allocs/op"
	b, ok := parseBench(line)
	if !ok {
		t.Fatalf("parseBench rejected %q", line)
	}
	if b.Name != "KernelFilter/sharded" || b.Procs != 4 {
		t.Fatalf("parsed %q procs=%d", b.Name, b.Procs)
	}
	if b.NsPerOp != 905143 || b.Metrics[rowsPerSec] != 291227050 {
		t.Fatalf("parsed ns=%v metrics=%v", b.NsPerOp, b.Metrics)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 2 {
		t.Fatalf("parsed allocs=%v", b.AllocsPerOp)
	}
}

func TestCompareReports(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		bench("KernelFilter/batch", 1, 100e6),
		bench("KernelFilter/sharded", 4, 300e6),
		bench("KernelJoinProbe/batch", 1, 50e6),
		bench("Parse", 1, 0), // no rows/s: not part of the gate
	}}

	t.Run("within tolerance passes", func(t *testing.T) {
		fresh := Report{Benchmarks: []Benchmark{
			bench("KernelFilter/batch", 1, 80e6),    // -20%
			bench("KernelFilter/sharded", 4, 320e6), // improved
			bench("KernelJoinProbe/batch", 1, 50e6),
			bench("KernelNew/batch", 1, 1e6), // fresh-only: ignored
		}}
		lines, failures := compareReports(base, fresh, 0.25)
		if len(failures) != 0 {
			t.Fatalf("unexpected failures: %v", failures)
		}
		if len(lines) != 3 {
			t.Fatalf("compared %d benchmarks, want 3: %v", len(lines), lines)
		}
	})

	t.Run("regression beyond tolerance fails", func(t *testing.T) {
		fresh := Report{Benchmarks: []Benchmark{
			bench("KernelFilter/batch", 1, 70e6), // -30%
			bench("KernelFilter/sharded", 4, 300e6),
			bench("KernelJoinProbe/batch", 1, 50e6),
		}}
		_, failures := compareReports(base, fresh, 0.25)
		if len(failures) != 1 || !strings.Contains(failures[0], "KernelFilter/batch") {
			t.Fatalf("failures = %v", failures)
		}
	})

	t.Run("missing benchmark fails", func(t *testing.T) {
		fresh := Report{Benchmarks: []Benchmark{
			bench("KernelFilter/batch", 1, 100e6),
			bench("KernelFilter/sharded", 4, 300e6),
		}}
		_, failures := compareReports(base, fresh, 0.25)
		if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
			t.Fatalf("failures = %v", failures)
		}
	})

	t.Run("same name different procs are distinct", func(t *testing.T) {
		fresh := Report{Benchmarks: []Benchmark{
			bench("KernelFilter/batch", 1, 100e6),
			bench("KernelFilter/sharded", 1, 100e6), // procs=1, not the baseline's 4
			bench("KernelJoinProbe/batch", 1, 50e6),
		}}
		_, failures := compareReports(base, fresh, 0.25)
		if len(failures) != 1 || !strings.Contains(failures[0], "procs=4") {
			t.Fatalf("failures = %v", failures)
		}
	})
}
