// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark runs can be committed (see
// BENCH_PR4.json) and archived as CI artifacts without scraping ad-hoc text.
//
//	go test -run '^$' -bench . -benchmem ./internal/sqldb/ | go run ./cmd/benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's name without the trailing -GOMAXPROCS suffix,
	// e.g. "HashJoin3Way/encoded".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the run used (the -N suffix; 1 when absent).
	Procs      int     `json:"procs"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
}

// Report is the top-level document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1], Procs: 1, Package: pkg}
		if m[2] != "" {
			b.Procs, _ = strconv.Atoi(m[2])
		}
		b.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			v, _ := strconv.ParseInt(m[5], 10, 64)
			b.BytesPerOp = &v
		}
		if m[6] != "" {
			v, _ := strconv.ParseInt(m[6], 10, 64)
			b.AllocsPerOp = &v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
