// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark runs can be committed (see
// BENCH_PR4.json, BENCH_PR7.json) and archived as CI artifacts without
// scraping ad-hoc text.
//
//	go test -run '^$' -bench . -benchmem ./internal/sqldb/ | go run ./cmd/benchjson
//
// With -compare, the parsed run is additionally checked against a committed
// baseline document: every baseline benchmark carrying a rows/s metric must
// appear in the fresh run and must not fall more than -tolerance (default
// 0.25, i.e. 25%) below its baseline throughput, or benchjson exits 1 after
// printing the per-benchmark comparison to stderr. The JSON still goes to
// stdout either way, so one invocation both gates and produces the artifact:
//
//	go test -run '^$' -bench Kernel -benchmem -cpu 1,4 ./internal/sqldb/ | \
//	    go run ./cmd/benchjson -compare BENCH_PR7.json > BENCH_CURRENT.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark's name without the trailing -GOMAXPROCS suffix,
	// e.g. "HashJoin3Way/encoded".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the run used (the -N suffix; 1 when absent).
	Procs      int     `json:"procs"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every other (value, unit) pair on the line — custom
	// b.ReportMetric units such as "rows/s", which the testing package
	// prints between ns/op and the -benchmem columns.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseBench parses one `BenchmarkX-N  iters  v unit  v unit ...` result
// line generically: after the iteration count, the line is (value, unit)
// pairs in whatever order and number the run produced. Well-known units land
// in their dedicated fields; everything else goes to Metrics.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimPrefix(f[0], "Benchmark"), Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	sawNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsPerOp, sawNs = v, true
		case "B/op":
			n := int64(v)
			b.BytesPerOp = &n
		case "allocs/op":
			n := int64(v)
			b.AllocsPerOp = &n
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, sawNs
}

func main() {
	compare := flag.String("compare", "",
		"baseline benchjson document; exit 1 when any of its rows/s benchmarks regresses or disappears")
	tolerance := flag.Float64("tolerance", 0.25,
		"allowed fractional rows/s drop below the -compare baseline before failing")
	flag.Parse()

	rep := Report{Benchmarks: []Benchmark{}}
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		}
		if b, ok := parseBench(line); ok {
			b.Package = pkg
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: reading stdin:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		base, err := loadReport(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: loading baseline:", err)
			os.Exit(1)
		}
		lines, failures := compareReports(base, rep, *tolerance)
		fmt.Fprintf(os.Stderr, "benchjson: comparing %d rows/s benchmarks against %s (tolerance %.0f%%)\n",
			len(lines), *compare, 100**tolerance)
		for _, l := range lines {
			fmt.Fprintln(os.Stderr, "  "+l)
		}
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s):\n", len(failures))
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "  "+f)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "benchjson: no regressions")
	}
}
