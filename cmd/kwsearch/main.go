// Command kwsearch is an interactive keyword-search shell over the bundled
// datasets:
//
//	kwsearch -dataset tpch
//	> COUNT order "royal olive"
//
// Each query prints the top-k ranked interpretations with their annotated
// query patterns, generated SQL and executed answers. Meta commands:
//
//	\schema        print the ORM schema graph (Figure 3 / Figure 9 style)
//	\dot           print the ORM schema graph as Graphviz DOT
//	\explain QUERY explain the top interpretation of a query
//	\pattern QUERY print the top interpretation's pattern as Graphviz DOT
//	\sqak QUERY    run a query through the SQAK baseline instead
//	\sql SELECT... execute raw SQL of the supported subset
//	\plan SELECT...show the engine's evaluation plan for a statement
//	\k N           change how many interpretations are shown
//	\trace         toggle the per-stage duration breakdown (also -trace)
//	\quit          exit
//
// With -trace, every query prints its observability trace: one line per
// pipeline stage (parse, match, generate, rank, translate, execute, and the
// per-statement executions nested under execute) with durations that sum to
// approximately the total query latency, plus the cache provenance.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"kwagg"
	"kwagg/internal/chaos"
	"kwagg/internal/obs"
)

func main() {
	var (
		dataset = flag.String("dataset", "university",
			"university | fig2 | enrolment | tpch | tpch-denorm | acmdl | acmdl-denorm")
		load      = flag.String("load", "", "load a saved database directory (schema.json + CSVs) instead of -dataset")
		k         = flag.Int("k", 3, "number of interpretations to show")
		small     = flag.Bool("small", false, "use the small dataset scale")
		traceOn   = flag.Bool("trace", false, "print the per-stage duration breakdown after each query")
		chaosSpec = flag.String("chaos", "",
			`fault injection spec, e.g. "rate=0.1,seed=7,latency=5ms" (empty disables)`)
	)
	flag.Parse()

	cinj, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatal(err)
	}
	var opts *kwagg.Options
	if cinj != nil {
		opts = &kwagg.Options{Chaos: cinj}
		fmt.Printf("chaos enabled: %s\n", *chaosSpec)
	}
	var eng *kwagg.Engine
	if *load != "" {
		var db *kwagg.DB
		db, err = kwagg.Load(*load)
		if err == nil {
			*dataset = *load
			eng, err = kwagg.Open(db, opts)
		}
	} else {
		eng, err = kwagg.OpenDatasetOpts(*dataset, *small, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("kwsearch over %q (unnormalized: %v). Type a keyword query, or \\schema, \\quit.\n",
		*dataset, eng.Unnormalized())

	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\schema`:
			fmt.Println(eng.SchemaGraph())
		case line == `\dot`:
			fmt.Println(eng.SchemaDot())
		case strings.HasPrefix(line, `\explain `):
			out, err := eng.Explain(strings.TrimSpace(line[9:]), 0)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Println(out)
		case strings.HasPrefix(line, `\pattern `):
			out, err := eng.PatternDot(strings.TrimSpace(line[9:]), 0)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Println(out)
		case strings.HasPrefix(line, `\k `):
			if n, err := strconv.Atoi(strings.TrimSpace(line[3:])); err == nil && n > 0 {
				*k = n
			}
		case line == `\trace`:
			*traceOn = !*traceOn
			fmt.Printf("trace: %v\n", *traceOn)
		case strings.HasPrefix(line, `\sqak `):
			res, sql, err := eng.SQAKAnswer(strings.TrimSpace(line[6:]))
			if err != nil {
				fmt.Println("SQAK:", err)
				break
			}
			fmt.Printf("%s\n%s", sql, res)
		case strings.HasPrefix(line, `\sql `):
			res, err := eng.ExecuteSQL(strings.TrimSpace(line[5:]))
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Print(res)
		case strings.HasPrefix(line, `\plan `):
			out, err := eng.ExplainSQLPlan(strings.TrimSpace(line[6:]))
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Print(out)
		default:
			ctx := context.Background()
			var trace *obs.Trace
			if *traceOn {
				ctx, trace = obs.NewTrace(ctx)
			}
			set, err := eng.AnswerSetContext(ctx, line, *k)
			trace.Finish()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for i, a := range set.Answers {
				fmt.Printf("-- #%d %s\n   pattern: %s\n%s\n%s",
					i+1, a.Description, a.Pattern, a.PrettySQL, a.Result)
			}
			if set.Partial {
				fmt.Printf("partial: %d of %d statements failed\n",
					len(set.Failed), len(set.Failed)+len(set.Answers))
				for _, f := range set.Failed {
					fmt.Printf("   #%d: %s\n", f.Index+1, f.Message)
				}
			}
			if trace != nil {
				fmt.Print(trace.Breakdown())
			}
		}
		fmt.Print("> ")
	}
}
