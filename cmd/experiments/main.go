// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the synthetic datasets:
//
//	experiments -list        # Tables 3 and 4: the query workloads
//	experiments -table 5     # Table 5: answers on normalized TPCH
//	experiments -table 6     # Table 6: answers on normalized ACMDL
//	experiments -table 7     # Table 7: the denormalized schemas
//	experiments -table 8     # Table 8: answers on unnormalized TPCH'
//	experiments -table 9     # Table 9: answers on unnormalized ACMDL'
//	experiments -figure 11   # Figure 11: SQL generation time, both datasets
//	experiments -all         # everything, in order
//
// Absolute numbers differ from the paper (the datasets are synthetic and
// smaller), but every reported shape holds: where SQAK merges same-value
// objects, counts relationship duplicates, fails with N.A., or breaks on
// unnormalized relations, the harness shows the same behaviour, and the
// semantic approach's answers are invariant under denormalization.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/experiments"
)

func main() {
	var (
		table  = flag.Int("table", 0, "regenerate one table (5, 6, 7, 8 or 9)")
		figure = flag.Int("figure", 0, "regenerate one figure (11)")
		list   = flag.Bool("list", false, "print the query workloads (Tables 3 and 4)")
		all    = flag.Bool("all", false, "regenerate everything")
		reps   = flag.Int("reps", 5, "repetitions for Figure 11 timings")
		small  = flag.Bool("small", false, "use the small dataset scale")
		verify = flag.Bool("verify", false, "exit non-zero if any expected shape fails (CI mode)")
	)
	flag.Parse()
	if !*list && *table == 0 && *figure == 0 && !*all {
		flag.Usage()
		os.Exit(2)
	}

	tcfg, acfg := tpch.Default(), acmdl.Default()
	if *small {
		tcfg, acfg = tpch.Small(), acmdl.Small()
	}

	if *list || *all {
		printWorkloads()
	}
	if *table == 5 || *all {
		s := must(experiments.NewTPCH(tcfg))
		printTable("Table 5: queries on the normalized TPCH database", s, experiments.QueriesTPCH())
	}
	if *table == 6 || *all {
		s := must(experiments.NewACMDL(acfg))
		printTable("Table 6: queries on the normalized ACMDL database", s, experiments.QueriesACMDL())
	}
	if *table == 7 || *all {
		printTable7()
	}
	if *table == 8 || *all {
		s := must(experiments.NewTPCHUnnormalized(tcfg))
		printTable("Table 8: queries on the unnormalized TPCH' database", s, experiments.QueriesTPCH())
	}
	if *table == 9 || *all {
		s := must(experiments.NewACMDLUnnormalized(acfg))
		printTable("Table 9: queries on the unnormalized ACMDL' database", s, experiments.QueriesACMDL())
	}
	if *figure == 11 || *all {
		printFigure11(tcfg, acfg, *reps)
	}
	if *verify && mismatches > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d shape mismatch(es)\n", mismatches)
		os.Exit(1)
	}
}

// mismatches counts shape failures across all printed tables (CI mode).
var mismatches int

func must(s *experiments.Setup, err error) *experiments.Setup {
	if err != nil {
		log.Fatal(err)
	}
	return s
}

func printWorkloads() {
	fmt.Println("## Table 3: queries for the TPCH database")
	for _, q := range experiments.QueriesTPCH() {
		fmt.Printf("%-3s %-48s %s\n", q.ID, q.Keywords, q.Description)
	}
	fmt.Println()
	fmt.Println("## Table 4: queries for the ACMDL database")
	for _, q := range experiments.QueriesACMDL() {
		fmt.Printf("%-3s %-48s %s\n", q.ID, q.Keywords, q.Description)
	}
	fmt.Println()
}

func printTable(title string, s *experiments.Setup, queries []experiments.Query) {
	fmt.Println("##", title)
	for _, q := range queries {
		row, err := s.Run(q)
		if err != nil {
			log.Fatalf("%s: %v", q.ID, err)
		}
		status := "OK"
		if !row.ShapeOK {
			status = "SHAPE-MISMATCH"
			mismatches++
		}
		fmt.Printf("%-3s [%s] expected: %v — %s\n", q.ID, status, row.ShapeWanted, row.ShapeNote)
		fmt.Printf("    ours: %d answer(s) %v\n", row.OursRows, row.OursSample)
		fmt.Printf("          %s\n", row.OursSQL)
		if row.SQAKErr != nil {
			fmt.Printf("    SQAK: N.A. (%v)\n", row.SQAKErr)
		} else {
			fmt.Printf("    SQAK: %d answer(s) %v\n", row.SQAKRows, row.SQAKSample)
			fmt.Printf("          %s\n", row.SQAKSQL)
		}
	}
	fmt.Println()
}

func printTable7() {
	fmt.Println("## Table 7: unnormalized database schemas")
	fmt.Println("TPCH'")
	for _, s := range tpch.DenormalizedSchema() {
		fmt.Println("  " + s.String())
	}
	fmt.Println("ACMDL'")
	for _, s := range acmdl.DenormalizedSchema() {
		fmt.Println("  " + s.String())
	}
	fmt.Println()
}

func printFigure11(tcfg tpch.Config, acfg acmdl.Config, reps int) {
	fmt.Println("## Figure 11: time to generate SQL statements (execution excluded)")
	type panel struct {
		label   string
		setup   *experiments.Setup
		queries []experiments.Query
	}
	panels := []panel{
		{"(a) TPCH", must(experiments.NewTPCH(tcfg)), experiments.QueriesTPCH()},
		{"(b) ACMDL", must(experiments.NewACMDL(acfg)), experiments.QueriesACMDL()},
	}
	for _, p := range panels {
		fmt.Println(p.label)
		ts, err := p.setup.TimeExecution(p.queries, reps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %-4s %12s %12s %14s\n", "", "proposed", "SQAK", "execution")
		for _, t := range ts {
			note := ""
			if t.SQAKNote != "" {
				note = " (SQAK: " + firstLine(t.SQAKNote) + ")"
			}
			fmt.Printf("    %-4s %12v %12v %14v%s\n", t.Query.ID, t.Ours, t.SQAK, t.OursExec, note)
		}
	}
	fmt.Println("    (execution = running the chosen semantic statement; the paper's point")
	fmt.Println("     is that it dominates the generation-time difference)")
	fmt.Println()
	// Bar rendering of panel (a)/(b) in the style of the printed figure.
	for _, p := range panels {
		ts, err := p.setup.TimeGeneration(p.queries, reps)
		if err != nil {
			log.Fatal(err)
		}
		var max time.Duration
		for _, t := range ts {
			if t.Ours > max {
				max = t.Ours
			}
			if t.SQAK > max {
				max = t.SQAK
			}
		}
		fmt.Println(p.label, "— generation time (▮ proposed, ▯ SQAK)")
		for _, t := range ts {
			fmt.Printf("    %-4s %-30s %v\n", t.Query.ID, bar(t.Ours, max, 30, "▮"), t.Ours)
			fmt.Printf("    %-4s %-30s %v\n", "", bar(t.SQAK, max, 30, "▯"), t.SQAK)
		}
	}
	fmt.Println()
}

func bar(v, max time.Duration, width int, ch string) string {
	if max <= 0 {
		return ""
	}
	n := int(int64(v) * int64(width) / int64(max))
	if n < 1 {
		n = 1
	}
	return strings.Repeat(ch, n)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
