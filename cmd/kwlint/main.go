// Command kwlint is the repository's two-level static-analysis driver.
//
// Code mode (the default) type-checks the requested packages and runs the
// repo-specific analyzers of internal/analysis — map-iteration determinism,
// kernel-loop allocation discipline, clock/randomness containment, metric
// naming, context threading, frozen-storage writes and import layering,
// plus the interprocedural dataflow analyzers (atomic-snapshot discipline,
// copy-on-write safety, lock ordering, SQL sanitizer taint, sqlast switch
// exhaustiveness). -tests additionally loads _test.go files, on which the
// determinism analyzers also run:
//
//	kwlint ./...
//	kwlint -tests ./...
//	kwlint -json ./internal/sqldb
//
// Plan mode (-plans) opens every bundled dataset at the small scale, replays
// its canonical keyword workload (DatasetWorkloads) and runs every generated
// SQL statement through the internal/planck plan verifier, checking the
// paper's invariants (object-id GROUP BY, DISTINCT projections, join-key
// coverage across the Section 4.1 rewrites):
//
//	kwlint -plans
//
// Both modes exit 1 when they find anything, so they can gate CI. Findings
// are printed compiler-style (file:line:col: analyzer: message), or as one
// JSON object with "diagnostics" and "plans" arrays under -json.
// See docs/STATIC_ANALYSIS.md for each rule and the suppression syntax.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"kwagg"
	"kwagg/internal/analysis"
)

// diagJSON is the JSON shape of one code-level diagnostic.
type diagJSON struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// planJSON is the JSON shape of one plan-level finding.
type planJSON struct {
	Dataset string `json:"dataset"`
	Query   string `json:"query"`
	Rule    string `json:"rule"`
	Detail  string `json:"detail"`
}

// report is the -json output document. Both arrays are always present so
// downstream tooling can consume the artifact without probing for keys.
type report struct {
	Diagnostics []diagJSON `json:"diagnostics"`
	Plans       []planJSON `json:"plans"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a single JSON object")
	plans := flag.Bool("plans", false, "verify generated query plans instead of analyzing code")
	tests := flag.Bool("tests", false, "also analyze _test.go files (determinism analyzers only)")
	k := flag.Int("k", 0, "with -plans: interpretations to verify per query (0 = all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: kwlint [-json] [-tests] [packages]\n       kwlint [-json] -plans [-k N]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var rep report
	var err error
	if *plans {
		rep.Plans, err = runPlans(*k)
	} else {
		rep.Diagnostics, err = runCode(flag.Args(), *tests)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "kwlint: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if rep.Diagnostics == nil {
			rep.Diagnostics = []diagJSON{}
		}
		if rep.Plans == nil {
			rep.Plans = []planJSON{}
		}
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "kwlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range rep.Diagnostics {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
		for _, p := range rep.Plans {
			fmt.Printf("%s: %q: %s: %s\n", p.Dataset, p.Query, p.Rule, p.Detail)
		}
	}
	if len(rep.Diagnostics)+len(rep.Plans) > 0 {
		os.Exit(1)
	}
}

// runCode type-checks the named packages (default ./...) and applies every
// analyzer. With tests, _test.go files load as test-variant packages and the
// determinism analyzers (maporder, detclock, metricname) run on them too.
func runCode(patterns []string, tests bool) ([]diagJSON, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	newLoader := analysis.NewLoader
	if tests {
		newLoader = analysis.NewLoaderWithTests
	}
	loader, err := newLoader(".")
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return nil, err
	}
	diags := analysis.Run(pkgs, analysis.Analyzers())
	out := make([]diagJSON, 0, len(diags))
	for _, d := range diags {
		out = append(out, diagJSON{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out, nil
}

// runPlans replays the bundled dataset workloads through the planck plan
// verifier. Every dataset opens at the small scale; k bounds how many
// interpretations are verified per query (0 verifies all of them).
func runPlans(k int) ([]planJSON, error) {
	workloads := kwagg.DatasetWorkloads()
	names := make([]string, 0, len(workloads))
	for name := range workloads {
		names = append(names, name)
	}
	sort.Strings(names)

	var out []planJSON
	for _, name := range names {
		eng, err := kwagg.OpenDataset(name, true)
		if err != nil {
			return nil, fmt.Errorf("open dataset %q: %w", name, err)
		}
		for _, q := range workloads[name] {
			findings, err := eng.PlanFindings(q, k)
			if err != nil {
				return nil, fmt.Errorf("dataset %q query %q: %w", name, q, err)
			}
			for _, f := range findings {
				out = append(out, planJSON{Dataset: name, Query: q, Rule: f.Rule, Detail: f.Detail})
			}
		}
	}
	return out, nil
}
