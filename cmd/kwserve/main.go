// Command kwserve serves a keyword-search engine over HTTP as a small JSON
// API (see internal/server for the endpoints):
//
//	kwserve -dataset tpch -addr :8080
//	curl -s localhost:8080/api/query -d '{"q":"COUNT order \"royal olive\"","k":1}'
//	curl -s localhost:8080/metrics        # Prometheus text format
//
// Observability: GET /metrics always serves the engine's metrics registry;
// -reqlog (on by default) writes one structured JSON line per request to
// stderr; -pprof opts into the net/http/pprof endpoints at /debug/pprof/.
package main

import (
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"kwagg"
	"kwagg/internal/chaos"
	"kwagg/internal/server"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		dataset = flag.String("dataset", "university",
			"university | fig2 | enrolment | tpch | tpch-denorm | acmdl | acmdl-denorm")
		load    = flag.String("load", "", "load a saved database directory instead of -dataset")
		small   = flag.Bool("small", false, "use the small dataset scale")
		timeout = flag.Duration("timeout", 30*time.Second,
			"per-request timeout (negative disables)")
		maxConc = flag.Int("max-concurrent", 64,
			"max simultaneously served requests; excess get 503 (negative disables)")
		maxK = flag.Int("max-k", 10, "cap on interpretations executed per request")
		live = flag.Bool("live", false,
			"open the engine for live ingest: POST /api/ingest buffers rows and commits data epochs")
		reqlog    = flag.Bool("reqlog", true, "log one structured JSON line per request to stderr")
		pprofOpt  = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		chaosSpec = flag.String("chaos", "",
			`fault injection spec, e.g. "rate=0.1,seed=7,latency=5ms,points=statement+cache-lookup" (empty disables)`)
	)
	flag.Parse()

	cinj, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatal(err)
	}
	// Keep the interface nil when chaos is disabled (a typed-nil *Chaos in
	// the interface would defeat the nil checks at the injection points).
	var inj chaos.Injector
	var opts *kwagg.Options
	if cinj != nil {
		inj = cinj
		opts = &kwagg.Options{Chaos: inj}
		log.Printf("kwserve: chaos enabled: %s", *chaosSpec)
	}
	eng, err := openEngine(*dataset, *load, *small, *live, opts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("kwserve: dataset %q on %s (unnormalized: %v, workers: %d, live: %v, pprof: %v)",
		*dataset, *addr, eng.Unnormalized(), eng.Workers(), eng.Live(), *pprofOpt)
	var accessLog io.Writer
	if *reqlog {
		accessLog = os.Stderr
	}
	srv := server.NewWith(eng, server.Config{
		MaxK:          *maxK,
		Timeout:       *timeout,
		MaxConcurrent: *maxConc,
		AccessLog:     accessLog,
		Pprof:         *pprofOpt,
		Chaos:         inj,
	})
	log.Fatal(http.ListenAndServe(*addr, srv))
}

func openEngine(dataset, load string, small, live bool, opts *kwagg.Options) (*kwagg.Engine, error) {
	if load != "" {
		db, err := kwagg.Load(load)
		if err != nil {
			return nil, err
		}
		if live {
			return kwagg.OpenLive(db, opts)
		}
		return kwagg.Open(db, opts)
	}
	if live {
		return kwagg.OpenDatasetLive(dataset, small, opts)
	}
	return kwagg.OpenDatasetOpts(dataset, small, opts)
}
