package kwagg_test

import (
	"strings"
	"testing"

	"kwagg"
)

func universityEngine(t *testing.T) *kwagg.Engine {
	t.Helper()
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestPublicAPIQuickstart walks the README's quickstart path: build a DB
// through the public API, open it, and answer an aggregate keyword query.
func TestPublicAPIQuickstart(t *testing.T) {
	db := kwagg.NewDB("mini")
	db.MustCreateTable(kwagg.TableSpec{
		Name:       "Team",
		Columns:    []kwagg.Column{"Tid", "Tname"},
		PrimaryKey: []string{"Tid"},
	})
	db.MustCreateTable(kwagg.TableSpec{
		Name:       "Player",
		Columns:    []kwagg.Column{"Pid", "Pname", "Goals INT", "Tid"},
		PrimaryKey: []string{"Pid"},
		ForeignKeys: []kwagg.FK{
			{Attrs: []string{"Tid"}, RefTable: "Team"},
		},
	})
	db.MustInsert("Team", "t1", "Reds")
	db.MustInsert("Team", "t2", "Blues")
	db.MustInsert("Player", "p1", "Ana", "10", "t1")
	db.MustInsert("Player", "p2", "Bo", "4", "t1")
	db.MustInsert("Player", "p3", "Cy", "7", "t2")

	eng, err := kwagg.Open(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Unnormalized() {
		t.Error("mini DB is normalized")
	}
	answers, err := eng.Answer("SUM Goals GROUPBY Team", 1)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range answers[0].Result.Rows {
		got[row[0]] = row[len(row)-1]
	}
	if got["t1"] != "14" || got["t2"] != "7" {
		t.Errorf("goals per team: %v\nSQL: %s", got, answers[0].SQL)
	}
}

func TestCreateTableValidation(t *testing.T) {
	db := kwagg.NewDB("x")
	if err := db.CreateTable(kwagg.TableSpec{}); err == nil {
		t.Error("empty spec should fail")
	}
	if err := db.Insert("nosuch", "a"); err == nil {
		t.Error("insert into unknown table should fail")
	}
}

func TestInterpretExposesSQLAndPattern(t *testing.T) {
	eng := universityEngine(t)
	ins, err := eng.Interpret("Green SUM Credit", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) != 2 {
		t.Fatalf("want 2 interpretations, got %d", len(ins))
	}
	top := ins[0]
	if !strings.Contains(top.SQL, "SUM(") || !strings.Contains(top.PrettySQL, "\nFROM") {
		t.Errorf("SQL fields: %+v", top)
	}
	if top.Pattern == "" || top.Description == "" {
		t.Errorf("pattern/description missing: %+v", top)
	}
}

func TestExecuteSQL(t *testing.T) {
	eng := universityEngine(t)
	res, err := eng.ExecuteSQL("SELECT COUNT(S.Sid) AS n FROM Student S")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != "3" {
		t.Errorf("count: %v", res.Rows)
	}
	if _, err := eng.ExecuteSQL("SELECT nonsense"); err == nil {
		t.Error("bad SQL should fail")
	}
}

func TestSQAKBaselineAccessors(t *testing.T) {
	eng := universityEngine(t)
	sql, err := eng.SQAKTranslate("Green SUM Credit")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "SUM(") {
		t.Errorf("SQAK SQL: %s", sql)
	}
	res, _, err := eng.SQAKAnswer("Green SUM Credit")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][len(res.Rows[0])-1] != "13" {
		t.Errorf("SQAK merged answer expected (13): %v", res.Rows)
	}
	if _, err := eng.SQAKTranslate("COUNT Course SUM Credit"); err == nil {
		t.Error("SQAK restriction errors must surface through the facade")
	}
}

func TestUnnormalizedFacadeFlow(t *testing.T) {
	eng, err := kwagg.Open(kwagg.UniversityEnrolmentDB(),
		&kwagg.Options{ViewNames: kwagg.UniversityEnrolmentViewNames()})
	if err != nil {
		t.Fatal(err)
	}
	if !eng.Unnormalized() {
		t.Fatal("Figure 8 DB must be detected as unnormalized")
	}
	if !strings.Contains(eng.SchemaGraph(), "<- Enrolment") {
		t.Errorf("schema graph should show view sources:\n%s", eng.SchemaGraph())
	}
	answers, err := eng.Answer("Green George COUNT Code", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers[0].Result.Rows) != 2 {
		t.Errorf("Example 9 answers: %v", answers[0].Result.Rows)
	}
}

func TestDatasetConstructorsOpen(t *testing.T) {
	cases := []struct {
		name string
		db   *kwagg.DB
		opts *kwagg.Options
	}{
		{"university", kwagg.UniversityDB(), nil},
		{"fig2", kwagg.UniversityFig2DB(), &kwagg.Options{ViewNames: kwagg.UniversityFig2ViewNames()}},
		{"enrolment", kwagg.UniversityEnrolmentDB(), &kwagg.Options{ViewNames: kwagg.UniversityEnrolmentViewNames()}},
		{"tpch", kwagg.TPCHDB(kwagg.TPCHSmall), nil},
		{"tpch-denorm", kwagg.TPCHUnnormalizedDB(kwagg.TPCHSmall), &kwagg.Options{ViewNames: kwagg.TPCHViewNames()}},
		{"acmdl", kwagg.ACMDLDB(kwagg.ACMDLSmall), nil},
		{"acmdl-denorm", kwagg.ACMDLUnnormalizedDB(kwagg.ACMDLSmall), &kwagg.Options{ViewNames: kwagg.ACMDLViewNames()}},
	}
	for _, c := range cases {
		eng, err := kwagg.Open(c.db, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if eng.SchemaGraph() == "" {
			t.Errorf("%s: empty schema graph", c.name)
		}
		if c.db.Stats() == "" {
			t.Errorf("%s: empty stats", c.name)
		}
	}
}

func TestResultString(t *testing.T) {
	res := kwagg.Result{Columns: []string{"a", "b"}, Rows: [][]string{{"1", "xy"}}}
	s := res.String()
	if !strings.Contains(s, "a") || !strings.Contains(s, "xy") {
		t.Errorf("Result.String: %q", s)
	}
}
