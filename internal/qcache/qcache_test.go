package qcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitMiss(t *testing.T) {
	c := New(4)
	calls := 0
	compute := func() (any, error) { calls++; return "v", nil }
	for i := 0; i < 3; i++ {
		v, err := c.Get("k", compute)
		if err != nil || v != "v" {
			t.Fatalf("Get: %v, %v", v, err)
		}
	}
	if calls != 1 {
		t.Errorf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Size != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(4)
	boom := errors.New("boom")
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := c.Get("k", func() (any, error) { calls++; return nil, boom })
		if !errors.Is(err, boom) {
			t.Fatalf("want boom, got %v", err)
		}
	}
	if calls != 2 {
		t.Errorf("failed compute should rerun: %d calls", calls)
	}
	if c.Len() != 0 {
		t.Errorf("errors must not be cached, len=%d", c.Len())
	}
	// A later success is cached normally.
	if v, err := c.Get("k", func() (any, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("Get after errors: %v, %v", v, err)
	}
	if c.Len() != 1 {
		t.Errorf("len=%d after success", c.Len())
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(2)
	get := func(k string) {
		t.Helper()
		if _, err := c.Get(k, func() (any, error) { return k, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get("a")
	get("b")
	get("a") // refresh a; b is now least recently used
	get("c") // evicts b
	if _, ok := c.Peek("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Peek("a"); !ok {
		t.Error("a should have survived (recently used)")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats: %+v", st)
	}
	// Evicted entries are recomputed.
	miss := false
	if v, err := c.Get("b", func() (any, error) { miss = true; return "b2", nil }); err != nil || v != "b2" {
		t.Fatalf("Get b: %v, %v", v, err)
	}
	if !miss {
		t.Error("evicted key should recompute")
	}
}

func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	c := New(8)
	const waiters = 100
	var computing atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	results := make([]any, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Get("k", func() (any, error) {
				once.Do(func() { close(started) })
				computing.Add(1)
				<-release // hold the flight open so everyone piles up
				return "shared", nil
			})
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			results[i] = v
		}(i)
	}
	<-started
	// Wait until every other goroutine is either blocked on the flight or
	// has not reached Get yet, then release; all must share one compute.
	close(release)
	wg.Wait()

	if n := computing.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != "shared" {
			t.Errorf("result[%d] = %v", i, v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits+st.Collapsed != waiters-1 {
		t.Errorf("hits %d + collapsed %d != %d", st.Hits, st.Collapsed, waiters-1)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after completion", st.Inflight)
	}
}

func TestComputePanicReleasesWaiters(t *testing.T) {
	c := New(4)
	ready := make(chan struct{})
	release := make(chan struct{})
	var waiterErr error
	var wg sync.WaitGroup

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		_, _ = c.Get("k", func() (any, error) {
			close(ready)
			<-release
			panic("compute exploded")
		})
	}()
	<-ready
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, waiterErr = c.Get("k", func() (any, error) { return "unused", nil })
	}()
	// Give the waiter a moment to join the flight, then let it explode. If
	// the waiter raced past the flight it computed "unused" with nil error —
	// both outcomes are fine; the test is that nothing deadlocks.
	close(release)
	wg.Wait()
	if waiterErr != nil && waiterErr.Error() != "qcache: compute panicked" {
		t.Errorf("waiter error: %v", waiterErr)
	}
	if c.Len() != 0 && waiterErr != nil {
		t.Errorf("panicked compute must not cache: len=%d", c.Len())
	}
}

// TestStressMixedKeys fires many goroutines over overlapping keys and checks
// every caller sees the value its key's compute produces, with the map and
// LRU staying consistent. Run with -race.
func TestStressMixedKeys(t *testing.T) {
	c := New(16) // smaller than the key space: eviction churns under load
	const goroutines = 120
	const iters = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g+i)%24)
				v, err := c.Get(key, func() (any, error) { return "val-" + key, nil })
				if err != nil {
					t.Errorf("Get(%s): %v", key, err)
					return
				}
				if v != "val-"+key {
					t.Errorf("Get(%s) = %v", key, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Size > 16 {
		t.Errorf("size %d exceeds capacity", st.Size)
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after quiescence", st.Inflight)
	}
	if total := st.Hits + st.Misses + st.Collapsed; total != goroutines*iters {
		t.Errorf("counter total %d != %d requests", total, goroutines*iters)
	}
}

func TestPurge(t *testing.T) {
	c := New(4)
	if _, err := c.Get("k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len=%d after purge", c.Len())
	}
	recomputed := false
	if _, err := c.Get("k", func() (any, error) { recomputed = true; return 2, nil }); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Error("purged key should recompute")
	}
}

func TestDefaultCapacity(t *testing.T) {
	if got := New(0).Stats().Capacity; got != DefaultCapacity {
		t.Errorf("capacity = %d", got)
	}
	if got := New(-5).Stats().Capacity; got != DefaultCapacity {
		t.Errorf("capacity = %d", got)
	}
}
