package qcache

import (
	"context"
	"errors"
	"testing"
	"time"

	"kwagg/internal/chaos"
)

// cachePointInjector fires (or not) per point, deterministically.
type cachePointInjector struct {
	lookup, store bool
}

func (i *cachePointInjector) Fault(p chaos.Point, _ string) error {
	if p == chaos.PointCacheLookup && i.lookup || p == chaos.PointCacheStore && i.store {
		return errors.New("chaos")
	}
	return nil
}

func (i *cachePointInjector) Delay(chaos.Point) time.Duration { return 0 }

func TestInjectedLookupFaultForcesMiss(t *testing.T) {
	c := New(4)
	inj := &cachePointInjector{}
	c.SetInjector(inj)
	computes := 0
	compute := func() (any, error) { computes++; return "v", nil }

	// Warm the entry, then turn the miss storm on: every lookup recomputes
	// even though the entry is stored.
	for i := 0; i < 2; i++ {
		if v, err := c.Get("k", compute); err != nil || v != "v" {
			t.Fatalf("Get: %v, %v", v, err)
		}
	}
	if computes != 1 {
		t.Fatalf("warm lookups computed %d times, want 1", computes)
	}
	inj.lookup = true
	for i := 0; i < 3; i++ {
		if v, err := c.Get("k", compute); err != nil || v != "v" {
			t.Fatalf("forced-miss Get: %v, %v", v, err)
		}
	}
	if computes != 4 {
		t.Fatalf("forced misses computed %d times, want 4", computes)
	}
	st := c.Stats()
	if st.ForcedMisses != 3 {
		t.Fatalf("ForcedMisses = %d, want 3", st.ForcedMisses)
	}

	// A forced miss whose compute fails propagates the error and caches
	// nothing new.
	boom := errors.New("boom")
	if _, err := c.Get("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("forced-miss compute error = %v, want boom", err)
	}
}

func TestInjectedStoreFaultDropsInsert(t *testing.T) {
	c := New(4)
	c.SetInjector(&cachePointInjector{store: true})
	computes := 0
	compute := func() (any, error) { computes++; return computes, nil }
	// Every Get recomputes: the insert is dropped each time.
	for want := 1; want <= 3; want++ {
		v, err := c.Get("k", compute)
		if err != nil || v != want {
			t.Fatalf("Get #%d = %v, %v", want, v, err)
		}
	}
	st := c.Stats()
	if st.DroppedInserts != 3 || st.Hits != 0 {
		t.Fatalf("stats after dropped inserts: %+v", st)
	}
	if _, ok := c.Peek("k"); ok {
		t.Fatal("dropped insert still landed in the cache")
	}
}

func TestGetContextWaiterHonorsCancellation(t *testing.T) {
	c := New(4)
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _ = c.Get("k", func() (any, error) {
			close(started)
			<-release
			return "v", nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A collapsed waiter with a dead context must stop waiting on the other
	// goroutine's computation instead of blocking until it finishes.
	_, err := c.GetContext(ctx, "k", func() (any, error) { return "other", nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("collapsed waiter with dead context = %v, want Canceled", err)
	}
}

func TestStatsMirrorChaosCounters(t *testing.T) {
	c := New(4)
	c.SetInjector(&cachePointInjector{lookup: true, store: true})
	if _, err := c.Get("k", func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	seen := map[string]float64{}
	c.Stats().Each(func(name string, v float64, _ bool) {
		seen[name] = v
	})
	if seen["forced_misses"] != 1 || seen["dropped_inserts"] != 1 {
		t.Fatalf("Each did not export the chaos counters: %v", seen)
	}
}
