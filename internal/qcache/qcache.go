// Package qcache provides the query-plan cache of the serving layer: a
// bounded LRU keyed by normalized query string, with singleflight collapse
// so N concurrent requests for the same uncached query compute it once and
// share the result.
//
// The cache stores whatever the compute function returns — the engine keeps
// the full ranked interpretation slice of a query in it, so Interpret,
// Answer, Explain and PatternDot all serve from one computation. Values must
// be treated as immutable by every reader, since hits hand back the same
// value to many goroutines.
package qcache

import (
	"container/list"
	"context"
	"sync"

	"kwagg/internal/chaos"
)

// DefaultCapacity is used when New is given a non-positive capacity.
const DefaultCapacity = 128

// Cache is a bounded LRU with singleflight computation. The zero value is
// not usable; construct with New. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List               // front = most recently used
	items    map[string]*list.Element // key -> element whose Value is *entry
	inflight map[string]*flight

	hits      uint64 // Get served from the cache
	misses    uint64 // Get computed the value itself
	collapsed uint64 // Get waited on another goroutine's computation
	evictions uint64 // entries dropped at capacity

	// Chaos injection (SetInjector): forced lookup misses and dropped
	// stores, counted separately so a chaos run shows up in the stats.
	inj            chaos.Injector
	forcedMisses   uint64 // lookups forced to miss by the injector
	droppedInserts uint64 // computed entries the injector refused to store
}

// SetInjector installs a chaos injector consulted on every lookup (a fault
// at chaos.PointCacheLookup forces a miss storm: the hit and singleflight
// paths are bypassed) and on every insert (a fault at chaos.PointCacheStore
// drops the computed entry, an immediate eviction). Install before the cache
// is shared; pass nil to disable.
func (c *Cache) SetInjector(inj chaos.Injector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inj = inj
}

type entry struct {
	key string
	val any
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// New creates a cache holding at most capacity entries (DefaultCapacity when
// capacity <= 0).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// Get returns the cached value for key, computing it with compute on a miss.
// Concurrent Gets for the same missing key run compute once: one caller
// computes while the others block and share the outcome (singleflight).
// Errors are returned but never cached, so a failed computation is retried
// by the next caller.
func (c *Cache) Get(key string, compute func() (any, error)) (any, error) {
	return c.GetContext(context.Background(), key, compute)
}

// GetContext is Get honoring the caller's context while waiting on another
// goroutine's in-flight computation: a collapsed waiter whose own deadline
// expires stops waiting and returns its context's error instead of blocking
// on a computation it no longer wants (the computation itself continues for
// the remaining waiters). The compute function is not interrupted — thread
// the context into compute for that.
func (c *Cache) GetContext(ctx context.Context, key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if c.inj != nil && c.inj.Fault(chaos.PointCacheLookup, key) != nil {
		// Injected miss storm: bypass both the stored entry and the
		// singleflight collapse, so every affected request recomputes —
		// exactly what a cold or thrashing cache does to the backend.
		c.forcedMisses++
		c.misses++
		c.mu.Unlock()
		val, err := compute()
		if err != nil {
			return nil, err
		}
		c.add(key, val)
		return val, nil
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.collapsed++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	completed := false
	defer func() {
		// On success, error, or panic in compute: unregister the flight and
		// release the waiters so nobody blocks forever. A panic propagates to
		// the computing caller; waiters receive a sentinel error instead.
		if !completed {
			f.err = errComputePanicked
		}
		c.mu.Lock()
		delete(c.inflight, key)
		if completed && f.err == nil {
			c.addDroppable(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	completed = true
	return f.val, f.err
}

// add inserts key -> val taking the lock; used by the forced-miss path.
func (c *Cache) add(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addDroppable(key, val)
}

// addDroppable is addLocked behind the store injection point: a fault at
// chaos.PointCacheStore drops the insert (an immediate eviction). Callers
// hold c.mu.
func (c *Cache) addDroppable(key string, val any) {
	if c.inj != nil && c.inj.Fault(chaos.PointCacheStore, key) != nil {
		c.droppedInserts++
		return
	}
	c.addLocked(key, val)
}

type computePanicError struct{}

func (computePanicError) Error() string { return "qcache: compute panicked" }

var errComputePanicked = computePanicError{}

// addLocked inserts key -> val, evicting from the LRU tail at capacity.
func (c *Cache) addLocked(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
	for c.ll.Len() > c.capacity {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.items, tail.Value.(*entry).key)
		c.evictions++
	}
}

// Peek returns the cached value without touching LRU order or counters.
func (c *Cache) Peek(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry).val, true
	}
	return nil, false
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Purge drops every cached entry (in-flight computations are unaffected and
// will re-insert when they finish). Counters are preserved.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      uint64 `json:"hits"`      // served from the cache
	Misses    uint64 `json:"misses"`    // computed by the caller
	Collapsed uint64 `json:"collapsed"` // waited on a concurrent computation
	Evictions uint64 `json:"evictions"` // entries dropped at capacity
	// Chaos-injected degradations (zero unless an injector is installed).
	ForcedMisses   uint64 `json:"forced_misses"`   // lookups forced to miss
	DroppedInserts uint64 `json:"dropped_inserts"` // stores refused
	Size           int    `json:"size"`
	Capacity       int    `json:"capacity"`
	Inflight       int    `json:"inflight"` // computations currently running
}

// Each visits every counter of the snapshot as a (name, value) pair, in a
// fixed order. It is the export hook the observability layer uses to mirror
// cache counters into a metrics registry without this package depending on
// one: hits/misses/collapsed/evictions are cumulative (Prometheus counters),
// size/capacity/inflight are levels (gauges).
func (s Stats) Each(visit func(name string, value float64, cumulative bool)) {
	visit("hits", float64(s.Hits), true)
	visit("misses", float64(s.Misses), true)
	visit("collapsed", float64(s.Collapsed), true)
	visit("evictions", float64(s.Evictions), true)
	visit("forced_misses", float64(s.ForcedMisses), true)
	visit("dropped_inserts", float64(s.DroppedInserts), true)
	visit("size", float64(s.Size), false)
	visit("capacity", float64(s.Capacity), false)
	visit("inflight", float64(s.Inflight), false)
}

// Stats returns a consistent snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:           c.hits,
		Misses:         c.misses,
		Collapsed:      c.collapsed,
		Evictions:      c.evictions,
		ForcedMisses:   c.forcedMisses,
		DroppedInserts: c.droppedInserts,
		Size:           c.ll.Len(),
		Capacity:       c.capacity,
		Inflight:       len(c.inflight),
	}
}
