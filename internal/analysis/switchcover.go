package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SwitchCover keeps the layers honest when the sqlast language grows: a type
// switch over sqlast.Expr or sqlast.Pred — or a value switch over a closed
// sqlast token type with declared constants (AggFunc, CmpOp) — in the
// renderer, planner-verifier, executor, translator or backend must either
// enumerate every implementation/constant or carry a default clause that
// handles the leftovers loudly. A switch with neither lets a new AST node
// fall through one layer silently while the others handle it, which is
// exactly the kind of divergence the differential suites then chase for
// days.
func SwitchCover() *Analyzer {
	return &Analyzer{
		Name: "switchcover",
		Doc:  "type switches over sqlast node kinds and value switches over sqlast token constants must be exhaustive or carry a default",
		Run:  runSwitchCover,
	}
}

// switchCoverScope is where sqlast nodes are consumed layer by layer.
var switchCoverScope = map[string]bool{
	"kwagg/internal/sqlast":            true,
	"kwagg/internal/sqlast/render":     true,
	"kwagg/internal/planck":            true,
	"kwagg/internal/sqldb":             true,
	"kwagg/internal/translate":         true,
	"kwagg/internal/backend":           true,
	"kwagg/internal/backend/sqlitecli": true,
}

func runSwitchCover(pkg *Pkg) []Diagnostic {
	if !switchCoverScope[pkg.Path] || pkg.ForTest {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch sw := n.(type) {
			case *ast.TypeSwitchStmt:
				if d, ok := checkTypeSwitch(pkg, sw); ok {
					diags = append(diags, d)
				}
			case *ast.SwitchStmt:
				if d, ok := checkValueSwitch(pkg, sw); ok {
					diags = append(diags, d)
				}
			}
			return true
		})
	}
	return diags
}

// switchTagType extracts the static type of a type switch's operand.
func switchTagType(pkg *Pkg, sw *ast.TypeSwitchStmt) types.Type {
	var x ast.Expr
	switch assign := sw.Assign.(type) {
	case *ast.AssignStmt:
		if len(assign.Rhs) == 1 {
			if ta, ok := assign.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := assign.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return nil
	}
	return pkg.Info.TypeOf(x)
}

func checkTypeSwitch(pkg *Pkg, sw *ast.TypeSwitchStmt) (Diagnostic, bool) {
	tag := switchTagType(pkg, sw)
	named := namedDeref(tag)
	if named == nil || !typeFromPkg(named, sqlastPkgPath) || !types.IsInterface(named.Underlying()) {
		return Diagnostic{}, false
	}
	impls := sqlastImplementers(named)
	if len(impls) == 0 {
		return Diagnostic{}, false
	}
	covered := make(map[string]bool)
	hasDefault := false
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, te := range cc.List {
			t := pkg.Info.TypeOf(te)
			if n := namedDeref(t); n != nil {
				covered[n.Obj().Name()] = true
			}
		}
	}
	if hasDefault {
		return Diagnostic{}, false
	}
	var missing []string
	for _, impl := range impls {
		if !covered[impl] {
			missing = append(missing, impl)
		}
	}
	if len(missing) == 0 {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Analyzer: "switchcover",
		Pos:      pkg.Fset.Position(sw.Pos()),
		Message: fmt.Sprintf("type switch over sqlast.%s misses %s and has no default clause; a new node kind would fall through this layer silently",
			named.Obj().Name(), strings.Join(missing, ", ")),
	}, true
}

// sqlastImplementers enumerates the named types of the sqlast package
// implementing the interface (by value or pointer receiver).
func sqlastImplementers(iface *types.Named) []string {
	scope := iface.Obj().Pkg().Scope()
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []string
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok || types.IsInterface(named.Underlying()) {
			continue
		}
		if types.Implements(named, it) || types.Implements(types.NewPointer(named), it) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

func checkValueSwitch(pkg *Pkg, sw *ast.SwitchStmt) (Diagnostic, bool) {
	if sw.Tag == nil {
		return Diagnostic{}, false
	}
	tagType := pkg.Info.TypeOf(sw.Tag)
	named, ok := tagType.(*types.Named)
	if !ok || !typeFromPkg(named, sqlastPkgPath) {
		return Diagnostic{}, false
	}
	if _, isBasic := named.Underlying().(*types.Basic); !isBasic {
		return Diagnostic{}, false
	}
	consts := sqlastConstants(named)
	if len(consts) < 2 {
		return Diagnostic{}, false // not a closed token set
	}
	covered := make(map[string]bool)
	hasDefault := false
	for _, c := range sw.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, ce := range cc.List {
			if tv, ok := pkg.Info.Types[ce]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}
	if hasDefault {
		return Diagnostic{}, false
	}
	var missing []string
	for _, c := range consts {
		if !covered[c.val] {
			missing = append(missing, c.name)
		}
	}
	if len(missing) == 0 {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Analyzer: "switchcover",
		Pos:      pkg.Fset.Position(sw.Pos()),
		Message: fmt.Sprintf("switch over sqlast.%s misses %s and has no default clause; a new token would fall through this layer silently",
			named.Obj().Name(), strings.Join(missing, ", ")),
	}, true
}

type sqlastConst struct{ name, val string }

// sqlastConstants lists the package-level constants declared with the given
// sqlast token type.
func sqlastConstants(named *types.Named) []sqlastConst {
	scope := named.Obj().Pkg().Scope()
	var out []sqlastConst
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if c.Type() != named {
			if ct, ok := c.Type().(*types.Named); !ok || ct.Obj() != named.Obj() {
				continue
			}
		}
		out = append(out, sqlastConst{name: name, val: c.Val().ExactString()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
