// Package analysis is the repo-specific static-analysis suite behind
// cmd/kwlint: seven analyzers that encode the code-level contracts the
// previous PRs established but `go vet` cannot see — deterministic output
// (no unsorted map iteration feeding results, no wall clock or math/rand in
// the deterministic pipeline), allocation discipline in the sqldb kernels
// pinned by alloc_test.go, kwagg_-prefixed metric names registered with one
// help string, context.Context threaded through the statement-execution
// path, and no writes to frozen relation storage outside the Freeze/build
// path.
//
// The package is stdlib-only (go/ast, go/parser, go/types, go/importer plus
// os/exec to ask the go command for export data), keeping the module
// dependency-free. See docs/STATIC_ANALYSIS.md for each analyzer's rationale
// and the suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding the way compilers do: file:line:col: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pkg is one loaded, type-checked package handed to the analyzers.
type Pkg struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one named check. Run is called once per package; Finish, when
// non-nil, is called after every package has been seen (for analyzers that
// accumulate cross-package state, like the metric-name uniqueness check).
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pkg) []Diagnostic
	Finish func() []Diagnostic
}

// Analyzers returns a fresh instance of every analyzer in the suite.
// Instances carry per-run state, so a new slice must be used per run.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		HotAlloc(),
		DetClock(),
		MetricName(),
		CtxFlow(),
		FreezeWrite(),
		DepScope(),
	}
}

// Run executes every analyzer over every package, applies the
// //kwlint:ignore suppressions, and returns the surviving diagnostics in
// deterministic (file, line, column, analyzer) order.
func Run(pkgs []*Pkg, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		diags = append(diags, sup.errors...)
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			for _, d := range a.Run(pkg) {
				if !sup.matches(d) {
					diags = append(diags, d)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			diags = append(diags, a.Finish()...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// suppression is one //kwlint:ignore directive: it silences diagnostics of
// the named analyzer ("all" silences every analyzer) on the directive's line
// or the line immediately below it. A reason is mandatory — a suppression
// without one is itself reported.
type suppression struct {
	file     string
	line     int
	analyzer string
}

type suppressionSet struct {
	entries map[suppression]bool
	errors  []Diagnostic
}

// IgnoreDirective is the comment prefix that suppresses a finding:
// //kwlint:ignore <analyzer> <reason>.
const IgnoreDirective = "//kwlint:ignore"

func collectSuppressions(pkg *Pkg) *suppressionSet {
	s := &suppressionSet{entries: make(map[suppression]bool)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnoreDirective))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					s.errors = append(s.errors, Diagnostic{
						Analyzer: "kwlint",
						Pos:      pos,
						Message:  "kwlint:ignore requires an analyzer name and a written reason: //kwlint:ignore <analyzer> <reason>",
					})
					continue
				}
				s.entries[suppression{file: pos.Filename, line: pos.Line, analyzer: fields[0]}] = true
			}
		}
	}
	return s
}

func (s *suppressionSet) matches(d Diagnostic) bool {
	for _, name := range []string{d.Analyzer, "all"} {
		// The directive suppresses its own line and, when written as a
		// standalone comment line, the line below it.
		if s.entries[suppression{file: d.Pos.Filename, line: d.Pos.Line, analyzer: name}] ||
			s.entries[suppression{file: d.Pos.Filename, line: d.Pos.Line - 1, analyzer: name}] {
			return true
		}
	}
	return false
}

// ---- shared AST / type helpers used by several analyzers ----

// isPkgCall reports whether call is pkgpath.name(...) — a selector whose
// qualifier resolves to an imported package with the given path.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}

// funcDecls yields every function declaration of the package with a body.
func funcDecls(pkg *Pkg) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// hasCtxParam reports whether the function type declares a parameter of type
// context.Context.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, fl := range ft.Params.List {
		if isContextType(info.TypeOf(fl.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
