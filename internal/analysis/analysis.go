// Package analysis is the repo-specific static-analysis suite behind
// cmd/kwlint: twelve analyzers that encode the code-level contracts the
// previous PRs established but `go vet` cannot see. Seven are single-package
// AST walks — deterministic output (no unsorted map iteration feeding
// results, no wall clock or math/rand in the deterministic pipeline),
// allocation discipline in the sqldb kernels pinned by alloc_test.go,
// kwagg_-prefixed metric names registered with one help string,
// context.Context threaded through the statement-execution path, no writes
// to frozen relation storage outside the Freeze/build path, and the
// backend-seam import layering. The other five ride the interprocedural
// dataflow engine in callgraph.go (symbol-keyed call graph, per-function
// summaries): one atomic snapshot Load per operation, copy-on-write
// discipline outside the relation delta seam, lock-order consistency with
// no blocking under a lock, sanitizer discipline for rendered SQL, and
// exhaustive switches over sqlast node kinds.
//
// The package is stdlib-only (go/ast, go/parser, go/types, go/importer plus
// os/exec to ask the go command for export data), keeping the module
// dependency-free. See docs/STATIC_ANALYSIS.md for each analyzer's rationale
// and the suppression syntax.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding the way compilers do: file:line:col: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pkg is one loaded, type-checked package handed to the analyzers.
//
// When the loader includes test files (kwlint -tests), each package with
// tests is loaded twice: the plain production package, and a test variant
// (ForTest) holding the production files plus the _test.go files (external
// _test packages load as their own ForTest Pkg). TestFiles names the test
// sources; Run only keeps a test variant's diagnostics positioned in them,
// so production findings are never reported twice.
type Pkg struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info
	ForTest   bool
	TestFiles map[string]bool
}

// Analyzer is one named check. Run is called once per package; Finish, when
// non-nil, is called after every package has been seen (for analyzers that
// accumulate cross-package state: the metric-name uniqueness check and the
// interprocedural dataflow analyzers, which need the whole call graph).
// Tests marks the analyzers that also run on test variants — the
// determinism rules (maporder, detclock, metricname) apply to test code
// too, while the request-path and seam disciplines are production-only.
type Analyzer struct {
	Name   string
	Doc    string
	Tests  bool
	Run    func(*Pkg) []Diagnostic
	Finish func() []Diagnostic
}

// Analyzers returns a fresh instance of every analyzer in the suite.
// Instances carry per-run state, so a new slice must be used per run.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MapOrder(),
		HotAlloc(),
		DetClock(),
		MetricName(),
		CtxFlow(),
		FreezeWrite(),
		DepScope(),
		Snapshot(),
		CowSafety(),
		LockLast(),
		SQLTaint(),
		SwitchCover(),
	}
}

// knownAnalyzerNames is the full catalog plus the "all" wildcard, used to
// validate //kwlint:ignore directives even when Run executes a subset.
func knownAnalyzerNames() map[string]bool {
	names := map[string]bool{"all": true}
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// Run executes every analyzer over every package, applies the
// //kwlint:ignore suppressions, reports directives that are malformed or no
// longer suppress anything, and returns the surviving diagnostics in
// deterministic (file, line, column, analyzer) order.
func Run(pkgs []*Pkg, analyzers []*Analyzer) []Diagnostic {
	runNames := make(map[string]bool)
	for _, a := range analyzers {
		runNames[a.Name] = true
	}
	sup := collectSuppressions(pkgs)

	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || (pkg.ForTest && !a.Tests) {
				continue
			}
			for _, d := range a.Run(pkg) {
				if pkg.ForTest && !pkg.TestFiles[d.Pos.Filename] {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			diags = append(diags, a.Finish()...)
		}
	}

	kept := append([]Diagnostic(nil), sup.errors...)
	for _, d := range diags {
		if !sup.matches(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, sup.stale(runNames)...)

	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Dedupe: with -tests the same production file is parsed under two
	// package variants, so file-level findings (and directive errors) can
	// surface twice at the same position.
	out := kept[:0]
	for i, d := range kept {
		if i > 0 && d == kept[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// suppression is one //kwlint:ignore directive entry: it silences
// diagnostics of the named analyzer ("all" silences every analyzer) on the
// directive's line or the line immediately below it. One directive may name
// several analyzers, comma-separated: //kwlint:ignore a,b <reason>. A
// written reason is mandatory and the analyzer names must exist — a
// malformed directive is itself reported, and so is a directive that no
// longer suppresses any finding (stale suppressions rot into false
// confidence).
type suppression struct {
	file     string
	line     int
	analyzer string
}

type suppressionSet struct {
	entries map[suppression]*suppressionEntry
	errors  []Diagnostic
}

type suppressionEntry struct {
	pos  token.Position
	used bool
}

// IgnoreDirective is the comment prefix that suppresses a finding:
// //kwlint:ignore <analyzer>[,<analyzer>...] <reason>.
const IgnoreDirective = "//kwlint:ignore"

func collectSuppressions(pkgs []*Pkg) *suppressionSet {
	s := &suppressionSet{entries: make(map[suppression]*suppressionEntry)}
	known := knownAnalyzerNames()
	errSeen := make(map[Diagnostic]bool) // -tests parses production files twice
	addErr := func(d Diagnostic) {
		if !errSeen[d] {
			errSeen[d] = true
			s.errors = append(s.errors, d)
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, IgnoreDirective) {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnoreDirective))
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						addErr(Diagnostic{
							Analyzer: "kwlint",
							Pos:      pos,
							Message:  "kwlint:ignore requires an analyzer name and a written reason: //kwlint:ignore <analyzer> <reason>",
						})
						continue
					}
					for _, name := range strings.Split(fields[0], ",") {
						name = strings.TrimSpace(name)
						if name == "" {
							continue
						}
						if !known[name] {
							addErr(Diagnostic{
								Analyzer: "kwlint",
								Pos:      pos,
								Message:  fmt.Sprintf("kwlint:ignore names unknown analyzer %q (known: %s)", name, strings.Join(sortedKeys(known), ", ")),
							})
							continue
						}
						key := suppression{file: pos.Filename, line: pos.Line, analyzer: name}
						if s.entries[key] == nil {
							s.entries[key] = &suppressionEntry{pos: pos}
						}
					}
				}
			}
		}
	}
	return s
}

func (s *suppressionSet) matches(d Diagnostic) bool {
	hit := false
	for _, name := range []string{d.Analyzer, "all"} {
		// The directive suppresses its own line and, when written as a
		// standalone comment line, the line below it.
		for _, line := range []int{d.Pos.Line, d.Pos.Line - 1} {
			if e := s.entries[suppression{file: d.Pos.Filename, line: line, analyzer: name}]; e != nil {
				e.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale reports the directives that suppressed nothing in this run, limited
// to the analyzers that actually ran ("all" is always checked — kwlint runs
// the full suite, so an unused blanket suppression is dead weight).
func (s *suppressionSet) stale(runNames map[string]bool) []Diagnostic {
	var out []Diagnostic
	for key, e := range s.entries {
		if e.used {
			continue
		}
		if key.analyzer != "all" && !runNames[key.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "kwlint",
			Pos:      e.pos,
			Message:  fmt.Sprintf("stale suppression: no %s finding is reported here anymore; delete the //kwlint:ignore directive", key.analyzer),
		})
	}
	return out
}

// ---- shared AST / type helpers used by several analyzers ----

// isPkgCall reports whether call is pkgpath.name(...) — a selector whose
// qualifier resolves to an imported package with the given path.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return n, true
		}
	}
	return "", false
}

// funcDecls yields every function declaration of the package with a body.
func funcDecls(pkg *Pkg) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// hasCtxParam reports whether the function type declares a parameter of type
// context.Context.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, fl := range ft.Params.List {
		if isContextType(info.TypeOf(fl.Type)) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isString reports whether t's underlying type is string.
func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
