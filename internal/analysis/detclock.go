package analysis

import (
	"go/ast"
	"strings"
)

// detClockAllowed lists the packages that may read the wall clock or the
// global math/rand source: fault injection (chaos owns all randomness),
// observability (span timing), the HTTP serving layer, and the measurement /
// test-harness packages. Everything else — the pipeline, core, the executor,
// storage — must be a pure function of its inputs so that replays, caches and
// golden files stay byte-identical.
var detClockAllowed = map[string]bool{
	"kwagg/internal/chaos":       true,
	"kwagg/internal/obs":         true,
	"kwagg/internal/server":      true,
	"kwagg/internal/leakcheck":   true,
	"kwagg/internal/proptest":    true,
	"kwagg/internal/experiments": true,
}

// DetClock reports wall-clock reads (time.Now, time.Since, time.After,
// time.Tick) and global math/rand calls outside the packages allowed to be
// nondeterministic. Explicitly-seeded sources (rand.New, rand.NewSource) and
// methods on a *rand.Rand passed in by the caller are deterministic and not
// flagged.
func DetClock() *Analyzer {
	a := &Analyzer{
		Name:  "detclock",
		Doc:   "wall clock / global math-rand use outside chaos, obs and the server layer",
		Tests: true,
	}
	a.Run = func(pkg *Pkg) []Diagnostic {
		if detClockAllowed[pkg.Path] ||
			strings.HasPrefix(pkg.Path, "kwagg/cmd/") ||
			strings.HasPrefix(pkg.Path, "kwagg/examples/") {
			return nil
		}
		var diags []Diagnostic
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := isPkgCall(pkg.Info, call, "time", "Now", "Since", "Until", "After", "Tick"); ok {
					diags = append(diags, Diagnostic{
						Analyzer: "detclock",
						Pos:      pkg.Fset.Position(call.Pos()),
						Message:  "time." + name + " makes this package nondeterministic; take durations from the caller or move the timing into internal/obs spans",
					})
					return true
				}
				if name, ok := isGlobalRandCall(pkg, call); ok {
					diags = append(diags, Diagnostic{
						Analyzer: "detclock",
						Pos:      pkg.Fset.Position(call.Pos()),
						Message:  "math/rand." + name + " draws from the global nondeterministic source; route randomness through internal/chaos (e.g. chaos.Jitter) or accept a seeded *rand.Rand",
					})
				}
				return true
			})
		}
		return diags
	}
	return a
}

// isGlobalRandCall reports calls to math/rand package-level functions other
// than the explicit constructors New and NewSource.
func isGlobalRandCall(pkg *Pkg, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name, ok := isPkgCall(pkg.Info, call, "math/rand", sel.Sel.Name)
	if !ok || name == "New" || name == "NewSource" {
		return "", false
	}
	return name, true
}
