package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// freezeWriteAllowed returns whether the package is part of the build path
// that legitimately mutates storage: the relation package itself (Freeze,
// Insert, index building), the dataset builders that populate tables before
// core.Open freezes them, and the normalizer, which constructs the virtual
// view schemas (decomposition, merging, FK inference) during core.Open.
func freezeWriteAllowed(path string) bool {
	return path == relationPkg ||
		path == "kwagg/internal/normalize" ||
		strings.HasPrefix(path, "kwagg/internal/dataset")
}

// schemaMetaFields are the Schema fields that define keys and dependencies;
// rewriting them after build silently changes superkey and FD reasoning
// (IsSuperkey, EffectiveFDs) mid-flight.
var schemaMetaFields = map[string]bool{
	"Attributes":  true,
	"PrimaryKey":  true,
	"ForeignKeys": true,
	"FDs":         true,
}

// FreezeWrite reports writes through relation.Table fields (Schema, Tuples —
// including element writes like t.Tuples[i] = row) and through the key/FD
// metadata fields of relation.Schema, anywhere outside the relation package
// and the dataset builders. After core.Open the database is frozen and
// shared by concurrent queries; such a write is a data race and invalidates
// the dictionaries, hash indexes and caches built at Freeze.
func FreezeWrite() *Analyzer {
	a := &Analyzer{
		Name: "freezewrite",
		Doc:  "mutation of relation.Table / relation.Schema storage outside the Freeze/build path",
	}
	a.Run = func(pkg *Pkg) []Diagnostic {
		if freezeWriteAllowed(pkg.Path) {
			return nil
		}
		var diags []Diagnostic
		check := func(lhs ast.Expr, verb string) {
			sel, field, owner := frozenField(pkg.Info, lhs)
			if sel == nil {
				return
			}
			diags = append(diags, Diagnostic{
				Analyzer: "freezewrite",
				Pos:      pkg.Fset.Position(sel.Pos()),
				Message: verb + " relation." + owner + "." + field +
					" outside the Freeze/build path; the database is frozen and shared after core.Open — build new tables instead of mutating stored ones",
			})
		}
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						check(lhs, "assigns to")
					}
				case *ast.IncDecStmt:
					check(st.X, "mutates")
				}
				return true
			})
		}
		return diags
	}
	return a
}

// frozenField unwraps an lvalue (through indexing, dereference and parens)
// to a selector on a relation.Table or relation.Schema field covered by the
// freeze contract. It returns the selector, field name and owning type name,
// or nils.
func frozenField(info *types.Info, e ast.Expr) (*ast.SelectorExpr, string, string) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			selInfo, ok := info.Selections[x]
			if !ok || selInfo.Kind() != types.FieldVal {
				return nil, "", ""
			}
			recv := selInfo.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != relationPkg {
				// Not a relation type; but the selector base may still be one
				// (e.g. db.Table("T").Tuples — base is a call, stop there).
				e = x.X
				continue
			}
			field := selInfo.Obj().Name()
			switch named.Obj().Name() {
			case "Table":
				return x, field, "Table"
			case "Schema":
				if schemaMetaFields[field] {
					return x, field, "Schema"
				}
				return nil, "", ""
			default:
				return nil, "", ""
			}
		default:
			return nil, "", ""
		}
	}
}
