package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// freezeWriteAllowed returns whether the package is part of the build path
// that legitimately mutates storage: the relation package itself (Freeze,
// Insert, index building), the dataset builders that populate tables before
// core.Open freezes them, and the normalizer, which constructs the virtual
// view schemas (decomposition, merging, FK inference) during core.Open.
func freezeWriteAllowed(path string) bool {
	return path == relationPkg ||
		path == "kwagg/internal/normalize" ||
		strings.HasPrefix(path, "kwagg/internal/dataset")
}

// deltaSeamFuncs are the relation-package entry points of the incremental
// epoch builder: they extend frozen storage in place (claiming the base
// table's spare backing capacity — see relation.ExtendFrozen) and patch the
// inverted index, which is only sound under the single-committer discipline
// core.Live.Commit enforces with its mutex.
var deltaSeamFuncs = map[string]bool{
	"ExtendFrozen":         true,
	"ExtendFrozenDatabase": true,
	"AppendRows":           true,
}

// deltaSeamAllowed returns whether the package may call the delta-builder
// seam directly: the relation package itself and core, whose Live.Commit is
// the one sanctioned epoch builder. Everything else must go through
// core.Live — a direct call would mutate spare capacity of tables another
// epoch may own.
func deltaSeamAllowed(path string) bool {
	return path == relationPkg || path == "kwagg/internal/core"
}

// schemaMetaFields are the Schema fields that define keys and dependencies;
// rewriting them after build silently changes superkey and FD reasoning
// (IsSuperkey, EffectiveFDs) mid-flight.
var schemaMetaFields = map[string]bool{
	"Attributes":  true,
	"PrimaryKey":  true,
	"ForeignKeys": true,
	"FDs":         true,
}

// FreezeWrite reports writes through relation.Table fields (Schema, Tuples —
// including element writes like t.Tuples[i] = row) and through the key/FD
// metadata fields of relation.Schema, anywhere outside the relation package
// and the dataset builders. After core.Open the database is frozen and
// shared by concurrent queries; such a write is a data race and invalidates
// the dictionaries, hash indexes and caches built at Freeze.
//
// It also reports direct calls to the incremental epoch builder's seam
// (relation.ExtendFrozen / ExtendFrozenDatabase / InvertedIndex.AppendRows)
// outside the sanctioned allowlist (deltaSeamAllowed): those functions write
// into frozen storage's spare capacity under a one-shot claim, which is only
// race-free under core.Live.Commit's single-committer mutex.
func FreezeWrite() *Analyzer {
	a := &Analyzer{
		Name: "freezewrite",
		Doc:  "mutation of relation.Table / relation.Schema storage outside the Freeze/build path",
	}
	a.Run = func(pkg *Pkg) []Diagnostic {
		fieldOK := freezeWriteAllowed(pkg.Path)
		seamOK := deltaSeamAllowed(pkg.Path)
		if fieldOK && seamOK {
			return nil
		}
		var diags []Diagnostic
		check := func(lhs ast.Expr, verb string) {
			sel, field, owner := frozenField(pkg.Info, lhs)
			if sel == nil {
				return
			}
			diags = append(diags, Diagnostic{
				Analyzer: "freezewrite",
				Pos:      pkg.Fset.Position(sel.Pos()),
				Message: verb + " relation." + owner + "." + field +
					" outside the Freeze/build path; the database is frozen and shared after core.Open — build new tables instead of mutating stored ones",
			})
		}
		checkCall := func(call *ast.CallExpr) {
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return
			}
			fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != relationPkg || !deltaSeamFuncs[fn.Name()] {
				return
			}
			diags = append(diags, Diagnostic{
				Analyzer: "freezewrite",
				Pos:      pkg.Fset.Position(sel.Pos()),
				Message: "calls relation." + fn.Name() +
					" outside the epoch-builder seam; the delta freeze claims frozen tables' spare capacity and is only race-free under core.Live.Commit — ingest through core.Live instead",
			})
		}
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.AssignStmt:
					if !fieldOK {
						for _, lhs := range st.Lhs {
							check(lhs, "assigns to")
						}
					}
				case *ast.IncDecStmt:
					if !fieldOK {
						check(st.X, "mutates")
					}
				case *ast.CallExpr:
					if !seamOK {
						checkCall(st)
					}
				}
				return true
			})
		}
		return diags
	}
	return a
}

// frozenField unwraps an lvalue (through indexing, dereference and parens)
// to a selector on a relation.Table or relation.Schema field covered by the
// freeze contract. It returns the selector, field name and owning type name,
// or nils.
func frozenField(info *types.Info, e ast.Expr) (*ast.SelectorExpr, string, string) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			selInfo, ok := info.Selections[x]
			if !ok || selInfo.Kind() != types.FieldVal {
				return nil, "", ""
			}
			recv := selInfo.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			named, ok := recv.(*types.Named)
			if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != relationPkg {
				// Not a relation type; but the selector base may still be one
				// (e.g. db.Table("T").Tuples — base is a call, stop there).
				e = x.X
				continue
			}
			field := selInfo.Obj().Name()
			switch named.Obj().Name() {
			case "Table":
				return x, field, "Table"
			case "Schema":
				if schemaMetaFields[field] {
					return x, field, "Schema"
				}
				return nil, "", ""
			default:
				return nil, "", ""
			}
		default:
			return nil, "", ""
		}
	}
}
