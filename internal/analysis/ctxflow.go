package analysis

import (
	"go/ast"
	"go/types"
)

// sqldbPkg is the import path of the SQL executor package.
const sqldbPkg = "kwagg/internal/sqldb"

// CtxFlow checks that the statement-execution path threads context.Context
// instead of minting fresh roots:
//
//   - context.Background() / context.TODO() inside a function that already
//     has a context.Context parameter discards the caller's deadline and
//     cancellation;
//   - the same inside a function with an *http.Request parameter discards
//     the request context (use r.Context());
//   - calling the non-context executor entry points (sqldb.Exec, ExecSQL,
//     ExecNoIndex) from a function that has a context defeats per-statement
//     deadlines and chaos cancellation — use ExecContext / ExecMemoContext.
//
// The convenience wrappers themselves (Answer, Exec, …) have no context
// parameter and are allowed to root one.
func CtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc:  "request-path code must thread context.Context, not mint context.Background()",
	}
	a.Run = func(pkg *Pkg) []Diagnostic {
		var diags []Diagnostic
		for _, fd := range funcDecls(pkg) {
			hasCtx := hasCtxParam(pkg.Info, fd.Type)
			hasReq := hasRequestParam(pkg.Info, fd.Type)
			if !hasCtx && !hasReq {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				// A nested function literal with its own ctx param is a new
				// scope making its own choices; don't descend.
				if fl, ok := n.(*ast.FuncLit); ok && hasCtxParam(pkg.Info, fl.Type) {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := isPkgCall(pkg.Info, call, "context", "Background", "TODO"); ok {
					src := "the context.Context parameter"
					if !hasCtx {
						src = "r.Context()"
					}
					diags = append(diags, Diagnostic{
						Analyzer: "ctxflow",
						Pos:      pkg.Fset.Position(call.Pos()),
						Message:  "context." + name + " discards the caller's deadline and cancellation; thread " + src + " instead",
					})
					return true
				}
				if hasCtx && pkg.Path != sqldbPkg {
					if name, ok := isPkgCall(pkg.Info, call, sqldbPkg, "Exec", "ExecSQL", "ExecNoIndex"); ok {
						diags = append(diags, Diagnostic{
							Analyzer: "ctxflow",
							Pos:      pkg.Fset.Position(call.Pos()),
							Message:  "sqldb." + name + " roots a fresh context; call sqldb.ExecContext (or ExecMemoContext) with the context already in scope",
						})
					}
				}
				return true
			})
		}
		return diags
	}
	return a
}

// hasRequestParam reports whether the function type declares an
// *net/http.Request parameter.
func hasRequestParam(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, fl := range ft.Params.List {
		t := info.TypeOf(fl.Type)
		p, ok := t.(*types.Pointer)
		if !ok {
			continue
		}
		named, ok := p.Elem().(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			continue
		}
		if named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request" {
			return true
		}
	}
	return false
}
