package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Snapshot machine-checks PR 7's "one state snapshot per request" rule: on
// the request path, code must .Load() an atomic.Pointer engine/live state at
// most once per operation. A second Load inside one operation can observe a
// different epoch — a torn-epoch read that mixes two frozen states in one
// answer.
//
// The analyzer classifies every function per atomic.Pointer field:
//
//   - accessor: only Loads the pointer (Live.Snapshot, Engine.Epoch). Its
//     acquisition weight is the number of Loads on its worst path.
//   - fold: Loads and CompareAndSwaps the pointer (Engine.state). A fold
//     re-reads after a lost CAS race by design, so its body is exempt and it
//     weighs as one acquisition for callers.
//   - transition: Stores (or Swaps) the pointer (Live.Commit, engine
//     construction). Transitions — and every function that transitively
//     reaches one — are epoch-boundary code, not request-path code, and are
//     exempt for that pointer.
//
// Everything else gets a structured path count: sequential acquisitions add,
// if/switch branches take the maximum arm, loop bodies saturate at two (one
// iteration already proves the double read), and a call contributes its
// callee's weight capped at one — the callee is reported at its own
// declaration, so the caller only needs to know "this call takes a
// snapshot". Functions in the checked packages whose worst path weighs ≥ 2
// are reported. Function literals are independent operations (gauge
// callbacks, deferred cleanups) and are counted as their own nodes.
func Snapshot() *Analyzer {
	s := &snapshotState{}
	return &Analyzer{
		Name: "snapshot",
		Doc:  "request-path code must Load an atomic.Pointer engine/live state at most once per operation",
		Run: func(pkg *Pkg) []Diagnostic {
			s.pkgs = append(s.pkgs, pkg)
			return nil
		},
		Finish: s.finish,
	}
}

// snapshotChecked is the set of packages whose functions are held to the
// one-snapshot rule. Other packages still contribute call-graph summaries.
var snapshotChecked = map[string]bool{
	"kwagg":                 true,
	"kwagg/internal/core":   true,
	"kwagg/internal/server": true,
}

type snapshotState struct {
	pkgs  []*Pkg
	prog  *Program
	keys  []string                // every atomic.Pointer field Loaded anywhere
	casOn map[*FuncNode]stringSet // direct CompareAndSwap targets
	stOn  map[*FuncNode]stringSet // direct Store/Swap targets
	trans map[snapFuncKey]int8    // reaches-a-transition memo: 0 unknown, 1 yes, 2 no
	wMemo map[snapFuncKey]int     // acquisition-weight memo
	wBusy map[snapFuncKey]bool    // cycle guard
}

type stringSet map[string]bool

type snapFuncKey struct {
	fn  *FuncNode
	key string
}

func (s *snapshotState) finish() []Diagnostic {
	s.prog = NewProgram(s.pkgs)
	s.casOn = make(map[*FuncNode]stringSet)
	s.stOn = make(map[*FuncNode]stringSet)
	s.trans = make(map[snapFuncKey]int8)
	s.wMemo = make(map[snapFuncKey]int)
	s.wBusy = make(map[snapFuncKey]bool)

	keys := make(stringSet)
	for _, fn := range s.prog.Funcs {
		s.scanDirectOps(fn, keys)
	}
	for k := range keys {
		s.keys = append(s.keys, k)
	}
	sort.Strings(s.keys)

	var diags []Diagnostic
	for _, fn := range s.prog.Funcs {
		if !snapshotChecked[fn.Pkg.Path] {
			continue
		}
		for _, key := range s.keys {
			if s.casOn[fn][key] || s.stOn[fn][key] || s.reachesTransition(fn, key, nil) {
				continue // fold or transition path: epoch-boundary code
			}
			if w := s.weight(fn, key); w >= 2 {
				diags = append(diags, Diagnostic{
					Analyzer: "snapshot",
					Pos:      fn.Pkg.Fset.Position(fn.Pos().Pos()),
					Message: fmt.Sprintf("%s acquires the %s snapshot %d times on one path; take one snapshot and pass it down (a second Load can observe a different epoch)",
						shortFuncName(fn), key, w),
				})
			}
		}
	}
	return diags
}

// scanDirectOps records which pointer fields the function directly Loads,
// Stores/Swaps or CompareAndSwaps, skipping nested function literals (they
// are scanned as their own nodes).
func (s *snapshotState) scanDirectOps(fn *FuncNode, keys stringSet) {
	inspectOwn(fn, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		recv, name, ok := atomicPointerMethod(fn.Pkg.Info, call, "Load", "Store", "Swap", "CompareAndSwap")
		if !ok {
			return
		}
		key, ok := fieldKey(fn.Pkg.Info, recv)
		if !ok {
			return
		}
		switch name {
		case "Load":
			keys[key] = true
		case "Store", "Swap":
			if s.stOn[fn] == nil {
				s.stOn[fn] = make(stringSet)
			}
			s.stOn[fn][key] = true
		case "CompareAndSwap":
			if s.casOn[fn] == nil {
				s.casOn[fn] = make(stringSet)
			}
			s.casOn[fn][key] = true
		}
	})
}

// inspectOwn walks the function body without descending into nested function
// literals.
func inspectOwn(fn *FuncNode, visit func(ast.Node)) {
	root := ast.Node(fn.Body())
	skip := fn.Pos()
	ast.Inspect(root, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != skip {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// reachesTransition reports whether fn, or any statically reachable callee,
// Stores or Swaps the pointer — marking the whole call chain as
// epoch-transition code for that pointer.
func (s *snapshotState) reachesTransition(fn *FuncNode, key string, stack map[*FuncNode]bool) bool {
	mk := snapFuncKey{fn, key}
	if v := s.trans[mk]; v != 0 {
		return v == 1
	}
	if stack[fn] {
		return false
	}
	if stack == nil {
		stack = make(map[*FuncNode]bool)
	}
	stack[fn] = true
	defer delete(stack, fn)
	found := s.stOn[fn][key]
	if !found {
		inspectOwn(fn, func(n ast.Node) {
			if found {
				return
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			for _, callee := range s.prog.Callees(fn.Pkg, call) {
				if s.reachesTransition(callee, key, stack) {
					found = true
					return
				}
			}
		})
	}
	if found {
		s.trans[mk] = 1
	} else {
		s.trans[mk] = 2
	}
	return found
}

// weight computes the structured acquisition count of fn for the pointer
// field: worst sequential path, branch-max over alternatives, loops
// saturated at two iterations.
func (s *snapshotState) weight(fn *FuncNode, key string) int {
	mk := snapFuncKey{fn, key}
	if w, ok := s.wMemo[mk]; ok {
		return w
	}
	if s.wBusy[mk] {
		return 0 // recursion: bound the fixpoint at zero extra acquisitions
	}
	s.wBusy[mk] = true
	w := s.countStmt(fn, key, fn.Body())
	delete(s.wBusy, mk)
	s.wMemo[mk] = w
	return w
}

// calleeWeight is a call expression's contribution: folds and transitions
// weigh one acquisition; other callees propagate min(weight, 1) — a callee
// with its own double read is reported at its declaration, not re-reported
// at every caller.
func (s *snapshotState) calleeWeight(fn *FuncNode, key string) int {
	if s.casOn[fn][key] || s.stOn[fn][key] {
		return 1
	}
	if s.weight(fn, key) > 0 {
		return 1
	}
	return 0
}

func (s *snapshotState) countStmt(fn *FuncNode, key string, stmt ast.Stmt) int {
	if stmt == nil {
		return 0
	}
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		n := 0
		for _, s2 := range st.List {
			n += s.countStmt(fn, key, s2)
		}
		return n
	case *ast.IfStmt:
		n := s.countStmt(fn, key, st.Init) + s.countExpr(fn, key, st.Cond)
		then := s.countStmt(fn, key, st.Body)
		els := s.countStmt(fn, key, st.Else)
		return n + maxInt(then, els)
	case *ast.SwitchStmt:
		n := s.countStmt(fn, key, st.Init) + s.countExpr(fn, key, st.Tag)
		return n + s.maxCase(fn, key, st.Body)
	case *ast.TypeSwitchStmt:
		n := s.countStmt(fn, key, st.Init) + s.countStmt(fn, key, st.Assign)
		return n + s.maxCase(fn, key, st.Body)
	case *ast.SelectStmt:
		return s.maxCase(fn, key, st.Body)
	case *ast.ForStmt:
		n := s.countStmt(fn, key, st.Init)
		body := s.countExpr(fn, key, st.Cond) + s.countStmt(fn, key, st.Body) + s.countStmt(fn, key, st.Post)
		if body > 0 {
			body = 2 // one repeat already proves the double read
		}
		return n + body
	case *ast.RangeStmt:
		n := s.countExpr(fn, key, st.X)
		body := s.countStmt(fn, key, st.Body)
		if body > 0 {
			body = 2
		}
		return n + body
	case *ast.ExprStmt:
		return s.countExpr(fn, key, st.X)
	case *ast.AssignStmt:
		n := 0
		for _, e := range st.Rhs {
			n += s.countExpr(fn, key, e)
		}
		for _, e := range st.Lhs {
			n += s.countExpr(fn, key, e)
		}
		return n
	case *ast.ReturnStmt:
		n := 0
		for _, e := range st.Results {
			n += s.countExpr(fn, key, e)
		}
		return n
	case *ast.DeferStmt:
		return s.countExpr(fn, key, st.Call)
	case *ast.GoStmt:
		return s.countExpr(fn, key, st.Call)
	case *ast.SendStmt:
		return s.countExpr(fn, key, st.Chan) + s.countExpr(fn, key, st.Value)
	case *ast.IncDecStmt:
		return s.countExpr(fn, key, st.X)
	case *ast.DeclStmt:
		n := 0
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						n += s.countExpr(fn, key, e)
					}
				}
			}
		}
		return n
	case *ast.LabeledStmt:
		return s.countStmt(fn, key, st.Stmt)
	case *ast.CaseClause, *ast.CommClause:
		return 0 // handled by maxCase
	}
	return 0
}

func (s *snapshotState) maxCase(fn *FuncNode, key string, body *ast.BlockStmt) int {
	best := 0
	for _, c := range body.List {
		n := 0
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				n += s.countExpr(fn, key, e)
			}
			for _, st := range cc.Body {
				n += s.countStmt(fn, key, st)
			}
		case *ast.CommClause:
			n += s.countStmt(fn, key, cc.Comm)
			for _, st := range cc.Body {
				n += s.countStmt(fn, key, st)
			}
		}
		best = maxInt(best, n)
	}
	return best
}

func (s *snapshotState) countExpr(fn *FuncNode, key string, expr ast.Expr) int {
	if expr == nil {
		return 0
	}
	n := 0
	ast.Inspect(expr, func(node ast.Node) bool {
		switch e := node.(type) {
		case *ast.FuncLit:
			return false // independent operation, counted as its own node
		case *ast.CallExpr:
			if recv, name, ok := atomicPointerMethod(fn.Pkg.Info, e, "Load"); ok && name == "Load" {
				if k, ok := fieldKey(fn.Pkg.Info, recv); ok && k == key {
					n++
					// Still descend: the receiver chain may hold more calls.
					return true
				}
			}
			best := 0
			for _, callee := range s.prog.Callees(fn.Pkg, e) {
				best = maxInt(best, s.calleeWeight(callee, key))
			}
			n += best
			return true
		}
		return true
	})
	return n
}

// shortFuncName trims the module path prefix for readable messages.
func shortFuncName(fn *FuncNode) string {
	name := fn.Name
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return name
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
