package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// relationPkg is the import path of the storage package whose Format helper
// materializes a string per call.
const relationPkg = "kwagg/internal/relation"

// HotAlloc reports per-row allocation patterns inside loops in the sqldb
// execution kernels, whose ~0 allocs/row budget is pinned by alloc_test.go:
//
//   - fmt.Sprintf / fmt.Sprint calls (always allocate),
//   - string concatenation onto a variable with += (reallocates every
//     iteration),
//   - relation.Format results appended into a []byte key buffer — use
//     relation.AppendFormat, which appends digits directly,
//   - make(...) in the batch-kernel block loops (any function running the
//     per-block kernels of batch.go) — block scratch must come from the
//     executor's reused buffers (ensureBits/ensureIdx/ensurePids), not be
//     reallocated once per block.
//
// Loops are where rows are processed; the same patterns outside a loop are
// per-statement, not per-row, and are not flagged.
func HotAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "per-row allocations inside sqldb kernel loops pinned by alloc_test.go",
	}
	a.Run = func(pkg *Pkg) []Diagnostic {
		if pkg.Path != "kwagg/internal/sqldb" {
			return nil
		}
		var diags []Diagnostic
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch l := n.(type) {
				case *ast.ForStmt:
					body = l.Body
				case *ast.RangeStmt:
					body = l.Body
				default:
					return true
				}
				diags = append(diags, checkHotLoop(pkg, body)...)
				return true
			})
		}
		return diags
	}
	return a
}

// checkHotLoop scans one loop body. Nested loops are skipped here — the
// outer Inspect visits them separately — so each site is reported exactly
// once, at the innermost loop containing it.
func checkHotLoop(pkg *Pkg, body *ast.BlockStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, msg string) {
		diags = append(diags, Diagnostic{
			Analyzer: "hotalloc",
			Pos:      pkg.Fset.Position(n.Pos()),
			Message:  msg,
		})
	}
	// A loop that polls the per-block cancellation counter stepN is a
	// batch-kernel block loop (batch.go's kernels are the only callers):
	// there, make(...) allocates scratch once per block and is flagged —
	// scratch must come from the executor's reused ensure* buffers.
	blockLoop := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "stepN" {
				blockLoop = true
			}
		}
		return true
	})
	// Identifiers assigned from relation.Format inside this loop body.
	formatted := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.AssignStmt:
			if st.Tok == token.ADD_ASSIGN && len(st.Lhs) == 1 && isString(pkg.Info.TypeOf(st.Lhs[0])) {
				report(st, "string += in a kernel loop reallocates every iteration; build into a reused []byte or strings.Builder hoisted out of the loop")
				return true
			}
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(st.Lhs) {
					continue
				}
				if _, ok := isPkgCall(pkg.Info, call, relationPkg, "Format"); ok {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if obj := pkg.Info.ObjectOf(id); obj != nil {
							formatted[obj] = true
						}
					}
				}
			}
		case *ast.CallExpr:
			if blockLoop && isBuiltinMake(pkg.Info, st) {
				report(st, "make in a batch-kernel block loop allocates scratch once per block; reuse the executor's ensure* buffers or hoist the allocation out of the loop")
				return true
			}
			if name, ok := isPkgCall(pkg.Info, st, "fmt", "Sprintf", "Sprint", "Sprintln"); ok {
				report(st, "fmt."+name+" allocates on every row; format into a reused buffer (strconv.Append*, relation.AppendFormat) instead")
				return true
			}
			if isBuiltinAppend(pkg.Info, st) && st.Ellipsis != token.NoPos && len(st.Args) == 2 {
				arg := st.Args[1]
				if call, ok := arg.(*ast.CallExpr); ok {
					if _, ok := isPkgCall(pkg.Info, call, relationPkg, "Format"); ok {
						report(st, "relation.Format materializes a string per row before the append; use relation.AppendFormat(dst, v) instead")
						return true
					}
				}
				if id, ok := arg.(*ast.Ident); ok && formatted[pkg.Info.ObjectOf(id)] {
					report(st, "relation.Format materializes a string per row before the append; use relation.AppendFormat(dst, v) instead")
				}
			}
		}
		return true
	})
	return diags
}

// isBuiltinMake reports whether call is the builtin make(...).
func isBuiltinMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}
