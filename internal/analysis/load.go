package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Loader parses and type-checks the module's packages from source, resolving
// imports (standard library and intra-module alike) through compiled export
// data obtained from one `go list -export -deps` invocation. This keeps the
// module itself dependency-free: no golang.org/x/tools, just the go command
// the repo already builds with.
type Loader struct {
	Dir          string // module root
	IncludeTests bool   // load _test.go files as test-variant packages
	fset         *token.FileSet
	exports      map[string]string // import path -> export data file
	imp          types.Importer
}

// NewLoader prepares a loader rooted at the module directory. It asks the go
// command for the export data of every dependency of every package in the
// module, so later Load and CheckSource calls type-check without touching
// the network or GOPATH.
func NewLoader(dir string) (*Loader, error) { return newLoader(dir, false) }

// NewLoaderWithTests is NewLoader plus test loading: the export-data listing
// runs with -test (so `testing` and the test-variant export data — which
// includes export_test.go symbols — are available), and Load returns
// ForTest-marked test-variant packages alongside the production ones.
func NewLoaderWithTests(dir string) (*Loader, error) { return newLoader(dir, true) }

func newLoader(dir string, includeTests bool) (*Loader, error) {
	l := &Loader{Dir: dir, IncludeTests: includeTests, fset: token.NewFileSet(), exports: make(map[string]string)}
	args := []string{"-e", "-export", "-deps"}
	if includeTests {
		args = append(args, "-test")
	}
	args = append(args, "-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	out, err := goList(dir, args...)
	if err != nil {
		return nil, fmt.Errorf("analysis: listing export data: %w", err)
	}
	testVariant := make(map[string]bool)
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 2)
		if len(parts) != 2 || parts[1] == "" {
			continue
		}
		path := parts[0]
		// "foo [foo.test]" is foo's test variant: a superset of foo's
		// exports (export_test.go included). Prefer it over the plain
		// export so _test packages resolve their imports.
		if i := strings.IndexByte(path, ' '); i >= 0 {
			base := path[:i]
			l.exports[base] = parts[1]
			testVariant[base] = true
			continue
		}
		if strings.HasSuffix(path, ".test") {
			continue // generated test main packages
		}
		if !testVariant[path] {
			l.exports[path] = parts[1]
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// Fset returns the loader's file set (shared by every loaded package).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the packages matching the given go package
// patterns (default ./...). Without IncludeTests, _test.go files are
// excluded: the analyzers check production code first. With IncludeTests
// (kwlint -tests), every package with tests additionally yields ForTest
// variants — the in-package variant (production + _test.go files, with
// TestFiles naming the test sources so only their findings are reported)
// and the external _test package when present. Determinism findings in
// tests break the suite's reproducibility just like production ones.
func (l *Loader) Load(patterns ...string) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	format := "{{.ImportPath}}\t{{.Dir}}\t{{range .GoFiles}}{{.}} {{end}}\t{{range .TestGoFiles}}{{.}} {{end}}\t{{range .XTestGoFiles}}{{.}} {{end}}"
	args := append([]string{"-e", "-f", format}, patterns...)
	out, err := goList(l.Dir, args...)
	if err != nil {
		return nil, fmt.Errorf("analysis: listing packages: %w", err)
	}
	var pkgs []*Pkg
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 5)
		if len(parts) != 5 || parts[0] == "" {
			continue
		}
		importPath, dir := parts[0], parts[1]
		abs := func(field string) []string {
			var files []string
			for _, f := range strings.Fields(field) {
				files = append(files, filepath.Join(dir, f))
			}
			return files
		}
		files, testFiles, xtestFiles := abs(parts[2]), abs(parts[3]), abs(parts[4])
		if len(files) > 0 {
			pkg, err := l.check(importPath, importPath, files, nil)
			if err != nil {
				return nil, err
			}
			pkgs = append(pkgs, pkg)
		}
		if !l.IncludeTests {
			continue
		}
		if len(testFiles) > 0 {
			pkg, err := l.check(importPath, importPath, append(append([]string{}, files...), testFiles...), nil)
			if err != nil {
				return nil, err
			}
			pkg.ForTest = true
			pkg.TestFiles = fileSet(testFiles)
			pkgs = append(pkgs, pkg)
		}
		if len(xtestFiles) > 0 {
			// The external test package type-checks under its own path (it
			// imports the package under test) but keeps the base import
			// path as its label so package-scoped analyzer rules apply.
			pkg, err := l.check(importPath, importPath+"_test", xtestFiles, nil)
			if err != nil {
				return nil, err
			}
			pkg.ForTest = true
			pkg.TestFiles = fileSet(xtestFiles)
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

func fileSet(files []string) map[string]bool {
	m := make(map[string]bool, len(files))
	for _, f := range files {
		m[f] = true
	}
	return m
}

// CheckSource type-checks in-memory sources as a package with the given
// import path. Tests use it to prove each analyzer fires on a minimal bad
// program without committing bad code to the tree.
func (l *Loader) CheckSource(importPath string, sources ...string) (*Pkg, error) {
	var names []string
	srcs := make(map[string]string, len(sources))
	for i, src := range sources {
		name := fmt.Sprintf("%s_src%d.go", strings.ReplaceAll(importPath, "/", "_"), i)
		names = append(names, name)
		srcs[name] = src
	}
	return l.check(importPath, importPath, names, srcs)
}

// check parses the files (from disk, or from the overlay when non-nil) and
// type-checks them as one package. labelPath becomes Pkg.Path (what the
// analyzers' package-scoped rules match on); checkPath is handed to the type
// checker and differs only for external _test packages.
func (l *Loader) check(labelPath, checkPath string, files []string, overlay map[string]string) (*Pkg, error) {
	pkg := &Pkg{Path: labelPath, Fset: l.fset}
	for _, fname := range files {
		var src any
		if overlay != nil {
			src = overlay[fname]
		}
		f, err := parser.ParseFile(l.fset, fname, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", fname, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(checkPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", checkPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

func goList(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return string(out), nil
}
