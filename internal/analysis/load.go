package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Loader parses and type-checks the module's packages from source, resolving
// imports (standard library and intra-module alike) through compiled export
// data obtained from one `go list -export -deps` invocation. This keeps the
// module itself dependency-free: no golang.org/x/tools, just the go command
// the repo already builds with.
type Loader struct {
	Dir     string // module root
	fset    *token.FileSet
	exports map[string]string // import path -> export data file
	imp     types.Importer
}

// NewLoader prepares a loader rooted at the module directory. It asks the go
// command for the export data of every dependency of every package in the
// module, so later Load and CheckSource calls type-check without touching
// the network or GOPATH.
func NewLoader(dir string) (*Loader, error) {
	l := &Loader{Dir: dir, fset: token.NewFileSet(), exports: make(map[string]string)}
	out, err := goList(dir, "-e", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", "./...")
	if err != nil {
		return nil, fmt.Errorf("analysis: listing export data: %w", err)
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 2)
		if len(parts) == 2 && parts[1] != "" {
			l.exports[parts[0]] = parts[1]
		}
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})
	return l, nil
}

// Fset returns the loader's file set (shared by every loaded package).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load parses and type-checks the packages matching the given go package
// patterns (default ./...), excluding test files: the analyzers check
// production code, and test packages routinely break the very contracts the
// suite enforces (fixed clocks, unsorted fixtures, throwaway allocation).
func (l *Loader) Load(patterns ...string) ([]*Pkg, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"-e", "-f", "{{.ImportPath}}\t{{.Dir}}\t{{range .GoFiles}}{{.}} {{end}}"}, patterns...)
	out, err := goList(l.Dir, args...)
	if err != nil {
		return nil, fmt.Errorf("analysis: listing packages: %w", err)
	}
	var pkgs []*Pkg
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 || parts[0] == "" {
			continue
		}
		importPath, dir := parts[0], parts[1]
		var files []string
		for _, f := range strings.Fields(parts[2]) {
			files = append(files, filepath.Join(dir, f))
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := l.check(importPath, files, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckSource type-checks in-memory sources as a package with the given
// import path. Tests use it to prove each analyzer fires on a minimal bad
// program without committing bad code to the tree.
func (l *Loader) CheckSource(importPath string, sources ...string) (*Pkg, error) {
	var names []string
	srcs := make(map[string]string, len(sources))
	for i, src := range sources {
		name := fmt.Sprintf("%s_src%d.go", strings.ReplaceAll(importPath, "/", "_"), i)
		names = append(names, name)
		srcs[name] = src
	}
	return l.check(importPath, names, srcs)
}

// check parses the files (from disk, or from the overlay when non-nil) and
// type-checks them as one package.
func (l *Loader) check(importPath string, files []string, overlay map[string]string) (*Pkg, error) {
	pkg := &Pkg{Path: importPath, Fset: l.fset}
	for _, fname := range files {
		var src any
		if overlay != nil {
			src = overlay[fname]
		}
		f, err := parser.ParseFile(l.fset, fname, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", fname, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

func goList(dir string, args ...string) (string, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go list %s: %v: %s", strings.Join(args, " "), err, stderr.String())
	}
	return string(out), nil
}
