package analysis

import (
	"strconv"
	"strings"
)

// Dependency-scope rules. The module's layering contract, made checkable:
// the core engine is stdlib-only and knows external engines exclusively
// through the backend seam, and the process-spawning SQL driver machinery
// never leaks past that seam.
const (
	backendTree  = "kwagg/internal/backend"
	sqliteDriver = "kwagg/internal/backend/sqlitecli"
	analysisTree = "kwagg/internal/analysis"
	coreTree     = "kwagg/internal/core"
)

// DepScope checks every production import against the layering contract:
//
//  1. Packages import only the standard library and kwagg/... — the module
//     is dependency-free by design (ROADMAP north star).
//  2. database/sql and database/sql/driver are confined to
//     kwagg/internal/backend/...: the engine's own executor is not built on
//     driver plumbing, external engines are.
//  3. os/exec is confined to kwagg/internal/backend/... (the sqlite3 CLI
//     driver and exporter) and kwagg/internal/analysis (which shells out to
//     the go command for export data).
//  4. kwagg/internal/backend/sqlitecli is importable only from
//     kwagg/internal/backend/...: callers register backends, not drivers.
//  5. kwagg/internal/backend/... is importable only from the backend tree
//     itself, kwagg/internal/core and the root kwagg package — the two
//     places Options.Backend is plumbed through.
//
// Test packages are exempt by construction: the loader analyzes production
// files only.
func DepScope() *Analyzer {
	a := &Analyzer{
		Name: "depscope",
		Doc:  "imports must respect the module's layering: stdlib-only core, driver machinery confined to the backend seam",
	}
	a.Run = func(pkg *Pkg) []Diagnostic {
		if !inTree(pkg.Path, "kwagg") {
			return nil
		}
		var diags []Diagnostic
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if msg := depViolation(pkg.Path, path); msg != "" {
					diags = append(diags, Diagnostic{
						Analyzer: "depscope",
						Pos:      pkg.Fset.Position(imp.Pos()),
						Message:  msg,
					})
				}
			}
		}
		return diags
	}
	return a
}

// depViolation reports why importer may not import path, or "" if it may.
func depViolation(importer, path string) string {
	if !stdlibPath(path) && !inTree(path, "kwagg") {
		return "import of " + path + ": the module is dependency-free, only the standard library and kwagg/... may be imported"
	}
	switch {
	case path == "database/sql" || path == "database/sql/driver":
		if !inTree(importer, backendTree) {
			return "import of " + path + " outside " + backendTree + ": SQL driver machinery is confined to the backend seam"
		}
	case path == "os/exec":
		if !inTree(importer, backendTree) && !inTree(importer, analysisTree) {
			return "import of os/exec outside " + backendTree + " and " + analysisTree + ": process spawning is confined to the backend seam and the analysis loader"
		}
	case inTree(path, sqliteDriver):
		if !inTree(importer, backendTree) {
			return "import of " + path + " outside " + backendTree + ": callers use backend.Backend, not the driver"
		}
	case inTree(path, backendTree):
		if !inTree(importer, backendTree) && !inTree(importer, coreTree) && importer != "kwagg" {
			return "import of " + path + " outside kwagg, " + coreTree + " and the backend tree: external engines are reached via Options.Backend"
		}
	}
	return ""
}

// inTree reports whether path is root or inside root's subtree.
func inTree(path, root string) bool {
	return path == root || strings.HasPrefix(path, root+"/")
}

// stdlibPath uses the go command's own convention: standard-library import
// paths have no dot in their first segment, module paths do.
func stdlibPath(path string) bool {
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".")
}
