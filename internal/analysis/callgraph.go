package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
)

// This file is the interprocedural half of the suite: a static call graph
// over go/types resolving direct calls, method calls through concrete
// receivers, and interface calls via class-hierarchy analysis (every named
// type in the analyzed packages that implements the interface). The five
// dataflow analyzers (snapshot, cowsafety, locklast, sqltaint, switchcover)
// build per-function summaries and propagate them over this graph.

// FuncNode is one analyzable function: a declared function/method or a
// function literal. Literals are independent nodes — a closure runs as its
// own operation (a metrics gauge callback, a deferred cleanup), so the
// dataflow analyzers give each literal its own summary instead of folding it
// into the enclosing function.
type FuncNode struct {
	Obj  *types.Func   // nil for function literals
	Decl *ast.FuncDecl // non-nil for declared functions
	Lit  *ast.FuncLit  // non-nil for literals
	Pkg  *Pkg
	Name string // qualified, for messages: "kwagg/internal/core.(*Live).Commit"
}

// Body returns the function body (never nil for nodes in a Program).
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// FuncType returns the node's signature syntax.
func (n *FuncNode) FuncType() *ast.FuncType {
	if n.Decl != nil {
		return n.Decl.Type
	}
	return n.Lit.Type
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() ast.Node {
	if n.Decl != nil {
		return n.Decl
	}
	return n.Lit
}

// Program is the cross-package view the interprocedural analyzers share: all
// loaded packages, every function node, and the named-type universe used for
// class-hierarchy interface resolution.
// Because every package is type-checked independently against compiled
// export data, a *types.Func seen at a cross-package call site is a
// different object than the one defined by the source-checked callee
// package. The graph therefore keys functions by their qualified symbol
// ("pkgpath.Type.name" / "pkgpath.name"), which unifies across the two
// universes.
type Program struct {
	Pkgs  []*Pkg
	Funcs []*FuncNode
	bySym map[string]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
	named []*types.Named
}

// NewProgram indexes the packages into a call-graph-ready view. Test-variant
// packages are skipped: the interprocedural contracts are production-path
// contracts, and the production files of a test variant are already analyzed
// under their primary package.
func NewProgram(pkgs []*Pkg) *Program {
	p := &Program{
		bySym: make(map[string]*FuncNode),
		byLit: make(map[*ast.FuncLit]*FuncNode),
	}
	for _, pkg := range pkgs {
		if pkg.ForTest {
			continue
		}
		p.Pkgs = append(p.Pkgs, pkg)
	}
	for _, pkg := range p.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					p.named = append(p.named, named)
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := &FuncNode{Obj: obj, Decl: fd, Pkg: pkg, Name: funcName(pkg, obj, fd)}
				p.Funcs = append(p.Funcs, node)
				if obj != nil {
					p.bySym[funcSymbol(obj)] = node
				}
				p.addLits(pkg, node.Name, fd.Body)
			}
		}
	}
	return p
}

// addLits registers every function literal under the declared function as an
// independent node. Nested literals are found by the recursive walk.
func (p *Program) addLits(pkg *Pkg, outer string, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		pos := pkg.Fset.Position(lit.Pos())
		node := &FuncNode{Lit: lit, Pkg: pkg, Name: fmt.Sprintf("%s.func@%d:%d", outer, pos.Line, pos.Column)}
		p.Funcs = append(p.Funcs, node)
		p.byLit[lit] = node
		return true
	})
}

func funcName(pkg *Pkg, obj *types.Func, fd *ast.FuncDecl) string {
	if obj == nil {
		return pkg.Path + "." + fd.Name.Name
	}
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		ptr := ""
		if pt, ok := t.(*types.Pointer); ok {
			t = pt.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s%s).%s", pkg.Path, ptr, named.Obj().Name(), obj.Name())
		}
	}
	return pkg.Path + "." + obj.Name()
}

// funcSymbol qualifies a function object the same way from either type
// universe: "pkgpath.RecvType.name" for methods, "pkgpath.name" otherwise.
func funcSymbol(obj *types.Func) string {
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := namedDeref(sig.Recv().Type()); named != nil && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + obj.Name()
		}
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

// FuncOf returns the node for a declared function or method, or nil when the
// function is outside the analyzed packages (stdlib, export-data-only).
func (p *Program) FuncOf(obj *types.Func) *FuncNode { return p.bySym[funcSymbol(obj)] }

// LitOf returns the node for a function literal.
func (p *Program) LitOf(lit *ast.FuncLit) *FuncNode { return p.byLit[lit] }

// Callees resolves a call expression to the set of program functions it may
// invoke. Direct calls and concrete-receiver method calls resolve to one
// node; interface method calls resolve via class-hierarchy analysis to every
// implementing type's method. Calls into packages outside the program (or
// through function values the graph cannot see) resolve to nil.
func (p *Program) Callees(pkg *Pkg, call *ast.CallExpr) []*FuncNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if n := p.byLit[fun]; n != nil {
			return []*FuncNode{n}
		}
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if n := p.bySym[funcSymbol(obj)]; n != nil {
				return []*FuncNode{n}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			if types.IsInterface(sel.Recv().Underlying()) {
				return p.implementers(sel.Recv(), fun.Sel.Name)
			}
			if obj, ok := sel.Obj().(*types.Func); ok {
				if n := p.bySym[funcSymbol(obj)]; n != nil {
					return []*FuncNode{n}
				}
			}
			return nil
		}
		// Qualified identifier: pkgname.Func.
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := p.bySym[funcSymbol(obj)]; n != nil {
				return []*FuncNode{n}
			}
		}
	}
	return nil
}

// implementers finds, over every named type of the program, the methods that
// could be dispatched for an interface call — the class-hierarchy
// approximation of dynamic dispatch. Because the two type universes (source-
// checked packages vs imported export data) don't share object identity,
// implementation is established by method-name coverage: a named type
// implements the interface when its method set contains every method name
// the interface asks for. That is looser than signature identity but exactly
// right for a lint-grade dispatch approximation.
func (p *Program) implementers(recv types.Type, method string) []*FuncNode {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok || iface.Empty() {
		return nil
	}
	want := make([]string, 0, iface.NumMethods())
	for i := 0; i < iface.NumMethods(); i++ {
		want = append(want, iface.Method(i).Name())
	}
	var out []*FuncNode
	seen := make(map[*FuncNode]bool)
	for _, named := range p.named {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		mset := types.NewMethodSet(types.NewPointer(named))
		covers := true
		for _, name := range want {
			if mset.Lookup(named.Obj().Pkg(), name) == nil && lookupExported(mset, name) == nil {
				covers = false
				break
			}
		}
		if !covers {
			continue
		}
		sel := mset.Lookup(named.Obj().Pkg(), method)
		if sel == nil {
			sel = lookupExported(mset, method)
		}
		if sel == nil {
			continue
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			if n := p.bySym[funcSymbol(fn)]; n != nil && !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookupExported finds an exported method by name in a method set (exported
// names need no package qualifier).
func lookupExported(mset *types.MethodSet, name string) *types.Selection {
	for i := 0; i < mset.Len(); i++ {
		if m := mset.At(i); m.Obj().Name() == name && m.Obj().Exported() {
			return m
		}
	}
	return nil
}

// ---- shared type-inspection helpers for the interprocedural analyzers ----

// namedDeref unwraps pointers and returns the named type underneath, if any.
func namedDeref(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeFromPkg reports whether t (after pointer unwrapping) is a named type
// declared in the package with the given import path.
func typeFromPkg(t types.Type, pkgPath string) bool {
	named := namedDeref(t)
	return named != nil && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == pkgPath
}

// methodOn matches a call of the form recv.Name(...) where recv's type
// (after pointer unwrapping) is the named type ownerPkg.ownerType. It returns
// the receiver expression.
func methodOn(info *types.Info, call *ast.CallExpr, ownerPkg, ownerType, name string) (ast.Expr, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil, false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, false
	}
	named := namedDeref(s.Recv())
	if named == nil || named.Obj().Name() != ownerType {
		return nil, false
	}
	if pkg := named.Obj().Pkg(); pkg == nil || pkg.Path() != ownerPkg {
		return nil, false
	}
	return sel.X, true
}

// atomicPointerMethod matches x.M(...) where x is a sync/atomic.Pointer[T]
// (or atomic.Value) and M is one of the given method names. It returns the
// receiver expression and the matched method name.
func atomicPointerMethod(info *types.Info, call *ast.CallExpr, names ...string) (ast.Expr, string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	named := namedDeref(s.Recv())
	if named == nil {
		return nil, "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil, "", false
	}
	if obj.Name() != "Pointer" && obj.Name() != "Value" {
		return nil, "", false
	}
	for _, n := range names {
		if sel.Sel.Name == n {
			return sel.X, n, true
		}
	}
	return nil, "", false
}

// fieldKey names a struct field globally: "pkgpath.Type.field". The
// snapshot and locklast analyzers identify atomic pointers and mutexes by
// their declaring field, not by instance — the disciplines they check are
// per-field design rules.
func fieldKey(info *types.Info, expr ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		// Package-level variable: pkgname.Var.
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name(), true
		}
		return "", false
	}
	named := namedDeref(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name, true
}
