package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockLast summarizes per-function mutex behavior and propagates it over the
// call graph:
//
//   - Lock-order consistency: every "lock B acquired while holding lock A"
//     observation (direct or through a callee's summary) becomes an edge
//     A→B; a cycle in that graph is a potential deadlock and both edges are
//     reported. Lock identity is the declaring field ("pkg.Type.mu"), not
//     the instance — acquisition order is a per-field design rule.
//   - Blocking under lock: channel sends/receives/selects on channels that
//     reach the function from outside (parameters, fields — not channels the
//     locked region itself created, which are bounded structured
//     concurrency), Backend.Exec calls (arbitrary external latency), and
//     atomic Swap/CompareAndSwap (mixing two synchronization disciplines;
//     plain Store under the committer mutex is the sanctioned
//     single-committer publish) are flagged when a mutex is held.
//
// The held-set walker understands Lock/RLock, explicit Unlock/RUnlock, and
// defer Unlock (held to function end); branches are walked with the
// fall-through intersection so a conditionally released lock stays held.
func LockLast() *Analyzer {
	l := &lockState{}
	return &Analyzer{
		Name: "locklast",
		Doc:  "consistent mutex acquisition order; no blocking channel ops, Backend.Exec, or atomic swaps while holding a lock",
		Run: func(pkg *Pkg) []Diagnostic {
			l.pkgs = append(l.pkgs, pkg)
			return nil
		},
		Finish: l.finish,
	}
}

type lockEdge struct{ from, to string }

type lockObservation struct {
	pos  token.Position
	fn   string
	what string
}

type lockSummary struct {
	acquires map[string]bool // locks (transitively) acquired during the call
	blocking []string        // blocking-op descriptions the call may perform
}

type lockState struct {
	pkgs      []*Pkg
	prog      *Program
	summaries map[*FuncNode]*lockSummary
	edges     map[lockEdge]lockObservation // first observation per ordered pair
	diags     []Diagnostic
}

func (l *lockState) finish() []Diagnostic {
	l.prog = NewProgram(l.pkgs)
	l.summaries = make(map[*FuncNode]*lockSummary)
	l.edges = make(map[lockEdge]lockObservation)
	for _, fn := range l.prog.Funcs {
		l.summaries[fn] = &lockSummary{acquires: make(map[string]bool)}
	}
	// Fixpoint for transitive acquisition sets (three rounds cover the
	// repo's call depth under locks; the loop exits early when stable).
	for round := 0; round < 3; round++ {
		changed := false
		for _, fn := range l.prog.Funcs {
			if l.updateSummary(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Report pass: walk every function with the held-set interpreter.
	for _, fn := range l.prog.Funcs {
		l.walkFunc(fn, true)
	}
	// Cycle detection over the order graph: for a 2-cycle (or longer, found
	// via DFS) report each edge once, naming the conflicting order.
	l.reportCycles()
	sort.Slice(l.diags, func(i, j int) bool { return l.diags[i].String() < l.diags[j].String() })
	return l.diags
}

// updateSummary recomputes fn's transitive acquisition set; reports change.
func (l *lockState) updateSummary(fn *FuncNode) bool {
	sum := l.summaries[fn]
	before := len(sum.acquires) + len(sum.blocking)
	sum.blocking = sum.blocking[:0]
	l.walkFunc(fn, false)
	return len(sum.acquires)+len(sum.blocking) != before
}

// lockID identifies the mutex behind expr ("pkg.Type.field" for fields,
// "pkg.var" for globals, "local:<name>@<line>" for locals).
func lockID(pkg *Pkg, expr ast.Expr) (string, bool) {
	if key, ok := fieldKey(pkg.Info, expr); ok {
		return key, true
	}
	if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
		if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
			if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name(), true
			}
			pos := pkg.Fset.Position(v.Pos())
			return fmt.Sprintf("local:%s@%s:%d", v.Name(), pos.Filename, pos.Line), true
		}
	}
	return "", false
}

// mutexMethod matches x.M() where x is a sync.Mutex or sync.RWMutex.
func mutexMethod(pkg *Pkg, call *ast.CallExpr) (id string, method string, ok bool) {
	sel, sok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !sok {
		return "", "", false
	}
	s, sok := pkg.Info.Selections[sel]
	if !sok || s.Kind() != types.MethodVal {
		return "", "", false
	}
	named := namedDeref(s.Recv())
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", "", false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
		key, kok := lockID(pkg, sel.X)
		if !kok {
			return "", "", false
		}
		return key, sel.Sel.Name, true
	}
	return "", "", false
}

// heldSet is the walker's abstract state: the set of lock IDs currently held.
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

func (h heldSet) sorted() []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// walkFunc interprets fn's body tracking the held set. In summary mode
// (report=false) it records acquisitions and blocking ops into fn's summary;
// in report mode it emits diagnostics for blocking-under-lock and records
// order edges.
func (l *lockState) walkFunc(fn *FuncNode, report bool) {
	held := make(heldSet)
	l.walkStmt(fn, fn.Body(), held, report)
}

func (l *lockState) walkStmt(fn *FuncNode, stmt ast.Stmt, held heldSet, report bool) {
	if stmt == nil {
		return
	}
	switch st := stmt.(type) {
	case *ast.BlockStmt:
		for _, s := range st.List {
			l.walkStmt(fn, s, held, report)
		}
	case *ast.IfStmt:
		l.walkStmt(fn, st.Init, held, report)
		l.walkExpr(fn, st.Cond, held, report)
		thenHeld := held.clone()
		l.walkStmt(fn, st.Body, thenHeld, report)
		elseHeld := held.clone()
		l.walkStmt(fn, st.Else, elseHeld, report)
		// Fall-through state: a lock is held after the if when every arm
		// leaves it held.
		for k := range held {
			if !thenHeld[k] || !elseHeld[k] {
				delete(held, k)
			}
		}
		for k := range thenHeld {
			if elseHeld[k] {
				held[k] = true
			}
		}
	case *ast.ForStmt:
		l.walkStmt(fn, st.Init, held, report)
		l.walkExpr(fn, st.Cond, held, report)
		body := held.clone()
		l.walkStmt(fn, st.Body, body, report)
		l.walkStmt(fn, st.Post, body, report)
	case *ast.RangeStmt:
		l.walkExpr(fn, st.X, held, report)
		body := held.clone()
		l.walkStmt(fn, st.Body, body, report)
	case *ast.SwitchStmt:
		l.walkStmt(fn, st.Init, held, report)
		l.walkExpr(fn, st.Tag, held, report)
		l.walkCases(fn, st.Body, held, report)
	case *ast.TypeSwitchStmt:
		l.walkStmt(fn, st.Init, held, report)
		l.walkStmt(fn, st.Assign, held, report)
		l.walkCases(fn, st.Body, held, report)
	case *ast.SelectStmt:
		if report && len(held) > 0 {
			l.blockingOp(fn, st.Pos(), "select", held, report)
		}
		l.recordBlocking(fn, "select", report)
		l.walkCases(fn, st.Body, held, report)
	case *ast.SendStmt:
		l.walkExpr(fn, st.Value, held, report)
		l.channelOp(fn, st.Chan, st.Pos(), "channel send", held, report)
	case *ast.ExprStmt:
		l.walkExpr(fn, st.X, held, report)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			l.walkExpr(fn, e, held, report)
		}
		for _, e := range st.Lhs {
			l.walkExpr(fn, e, held, report)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			l.walkExpr(fn, e, held, report)
		}
	case *ast.DeferStmt:
		// defer mu.Unlock() releases at function end: the lock stays held
		// for the remainder of the walk, which is exactly the conservative
		// state we want. Other deferred calls are treated as running now.
		if _, method, ok := mutexMethod(fn.Pkg, st.Call); ok && strings.Contains(method, "Unlock") {
			return
		}
		l.walkExpr(fn, st.Call, held, report)
	case *ast.GoStmt:
		// The goroutine runs without the caller's locks; its body is a
		// separate FuncNode when it is a literal.
		for _, arg := range st.Call.Args {
			l.walkExpr(fn, arg, held, report)
		}
	case *ast.IncDecStmt:
		l.walkExpr(fn, st.X, held, report)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						l.walkExpr(fn, e, held, report)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		l.walkStmt(fn, st.Stmt, held, report)
	}
}

func (l *lockState) walkCases(fn *FuncNode, body *ast.BlockStmt, held heldSet, report bool) {
	for _, c := range body.List {
		arm := held.clone()
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				l.walkExpr(fn, e, arm, report)
			}
			for _, s := range cc.Body {
				l.walkStmt(fn, s, arm, report)
			}
		case *ast.CommClause:
			l.walkStmt(fn, cc.Comm, arm, report)
			for _, s := range cc.Body {
				l.walkStmt(fn, s, arm, report)
			}
		}
	}
}

func (l *lockState) walkExpr(fn *FuncNode, expr ast.Expr, held heldSet, report bool) {
	if expr == nil {
		return
	}
	switch e := ast.Unparen(expr).(type) {
	case *ast.FuncLit:
		return // separate node, runs with its own (empty) held set assumption
	case *ast.CallExpr:
		// Arguments and the receiver chain evaluate first.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			l.walkExpr(fn, sel.X, held, report)
		}
		for _, a := range e.Args {
			l.walkExpr(fn, a, held, report)
		}
		l.callEffects(fn, e, held, report)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			l.channelOp(fn, e.X, e.Pos(), "channel receive", held, report)
			return
		}
		l.walkExpr(fn, e.X, held, report)
	case *ast.BinaryExpr:
		l.walkExpr(fn, e.X, held, report)
		l.walkExpr(fn, e.Y, held, report)
	case *ast.IndexExpr:
		l.walkExpr(fn, e.X, held, report)
		l.walkExpr(fn, e.Index, held, report)
	case *ast.SliceExpr:
		l.walkExpr(fn, e.X, held, report)
	case *ast.StarExpr:
		l.walkExpr(fn, e.X, held, report)
	case *ast.SelectorExpr:
		l.walkExpr(fn, e.X, held, report)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				l.walkExpr(fn, kv.Value, held, report)
				continue
			}
			l.walkExpr(fn, el, held, report)
		}
	case *ast.TypeAssertExpr:
		l.walkExpr(fn, e.X, held, report)
	}
}

// callEffects applies a call's lock effects to the held set and checks the
// blocking rules.
func (l *lockState) callEffects(fn *FuncNode, call *ast.CallExpr, held heldSet, report bool) {
	pkg := fn.Pkg
	if id, method, ok := mutexMethod(pkg, call); ok {
		switch method {
		case "Lock", "RLock", "TryLock", "TryRLock":
			if report {
				for _, h := range held.sorted() {
					if h == id {
						l.diags = append(l.diags, Diagnostic{
							Analyzer: "locklast",
							Pos:      pkg.Fset.Position(call.Pos()),
							Message:  fmt.Sprintf("%s re-acquires %s while already holding it (self-deadlock)", shortFuncName(fn), id),
						})
						continue
					}
					l.orderEdge(h, id, pkg.Fset.Position(call.Pos()), fn)
				}
			}
			l.record(fn, id, report)
			held[id] = true
		case "Unlock", "RUnlock":
			delete(held, id)
		}
		return
	}
	// Atomic swap disciplines: Swap/CompareAndSwap under a mutex mixes two
	// synchronization protocols (plain Store is the sanctioned
	// mutex-serialized publish and is allowed).
	if _, name, ok := atomicPointerMethod(pkg.Info, call, "Swap", "CompareAndSwap"); ok {
		if report && len(held) > 0 {
			l.blockingOp(fn, call.Pos(), "atomic "+name, held, report)
		}
		l.recordBlocking(fn, "atomic "+name, report)
		return
	}
	// Backend.Exec: arbitrary external latency (subprocess, network).
	if isBackendExec(pkg, call) {
		if report && len(held) > 0 {
			l.blockingOp(fn, call.Pos(), "Backend.Exec", held, report)
		}
		l.recordBlocking(fn, "Backend.Exec", report)
		return
	}
	// Callee summaries: transitive acquisitions form order edges; callee
	// blocking ops surface here when a lock is held.
	for _, callee := range l.prog.Callees(pkg, call) {
		sum := l.summaries[callee]
		if sum == nil {
			continue
		}
		for _, acq := range sortedKeys(sum.acquires) {
			if report {
				for _, h := range held.sorted() {
					if h == acq {
						l.diags = append(l.diags, Diagnostic{
							Analyzer: "locklast",
							Pos:      pkg.Fset.Position(call.Pos()),
							Message:  fmt.Sprintf("%s calls %s, which acquires %s, while already holding it (self-deadlock)", shortFuncName(fn), shortFuncName(callee), acq),
						})
						continue
					}
					l.orderEdge(h, acq, pkg.Fset.Position(call.Pos()), fn)
				}
			}
			l.record(fn, acq, report)
		}
		for _, b := range sum.blocking {
			if report && len(held) > 0 {
				l.diags = append(l.diags, Diagnostic{
					Analyzer: "locklast",
					Pos:      pkg.Fset.Position(call.Pos()),
					Message:  fmt.Sprintf("%s performs %s (via %s) while holding %s", shortFuncName(fn), b, shortFuncName(callee), strings.Join(held.sorted(), ", ")),
				})
			}
			l.recordBlocking(fn, b, report)
		}
	}
}

// channelOp flags a send/receive on a channel that reaches the locked region
// from outside. Channels created locally (make in this function) are bounded
// structured concurrency and are allowed.
func (l *lockState) channelOp(fn *FuncNode, ch ast.Expr, pos token.Pos, what string, held heldSet, report bool) {
	l.walkExpr(fn, ch, held, report)
	if localChan(fn, ch) {
		return
	}
	if report && len(held) > 0 {
		l.blockingOp(fn, pos, what, held, report)
	}
	l.recordBlocking(fn, what, report)
}

// localChan reports whether the channel expression is rooted at a variable
// assigned from make(chan ...) inside this function.
func localChan(fn *FuncNode, ch ast.Expr) bool {
	id, ok := ast.Unparen(ch).(*ast.Ident)
	if !ok {
		return false
	}
	v := objVar(fn.Pkg.Info, id)
	if v == nil {
		return false
	}
	local := false
	inspectOwn(fn, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return
		}
		for i := range as.Lhs {
			lid, ok := as.Lhs[i].(*ast.Ident)
			if !ok || objVar(fn.Pkg.Info, lid) != v {
				continue
			}
			if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if bid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && bid.Name == "make" {
					local = true
				}
			}
		}
	})
	return local
}

// isBackendExec matches a call to the Exec method of the backend.Backend
// interface or of any type implementing it.
func isBackendExec(pkg *Pkg, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Exec" {
		return false
	}
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	named := namedDeref(s.Recv())
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	if path == "kwagg/internal/backend" || strings.HasPrefix(path, "kwagg/internal/backend/") {
		return true
	}
	// Concrete implementers elsewhere: check the backend.Backend interface.
	if types.IsInterface(named.Underlying()) && named.Obj().Name() == "Backend" {
		return true
	}
	return false
}

func (l *lockState) record(fn *FuncNode, id string, report bool) {
	if !report {
		l.summaries[fn].acquires[id] = true
	}
}

func (l *lockState) recordBlocking(fn *FuncNode, what string, report bool) {
	if report {
		return
	}
	sum := l.summaries[fn]
	for _, b := range sum.blocking {
		if b == what {
			return
		}
	}
	sum.blocking = append(sum.blocking, what)
}

func (l *lockState) blockingOp(fn *FuncNode, pos token.Pos, what string, held heldSet, report bool) {
	l.diags = append(l.diags, Diagnostic{
		Analyzer: "locklast",
		Pos:      fn.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf("%s performs %s while holding %s; blocking under a lock stalls every other path through it", shortFuncName(fn), what, strings.Join(held.sorted(), ", ")),
	})
}

func (l *lockState) orderEdge(from, to string, pos token.Position, fn *FuncNode) {
	e := lockEdge{from, to}
	if _, ok := l.edges[e]; !ok {
		l.edges[e] = lockObservation{pos: pos, fn: shortFuncName(fn)}
	}
}

// reportCycles finds cycles in the lock-order graph and reports every edge
// participating in one.
func (l *lockState) reportCycles() {
	adj := make(map[string][]string)
	for e := range l.edges {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for from := range adj {
		sort.Strings(adj[from])
	}
	// An edge A→B is in a cycle iff B can reach A.
	var edges []lockEdge
	for e := range l.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, e := range edges {
		if reaches(adj, e.to, e.from) {
			obs := l.edges[e]
			l.diags = append(l.diags, Diagnostic{
				Analyzer: "locklast",
				Pos:      obs.pos,
				Message:  fmt.Sprintf("%s acquires %s while holding %s, but the reverse order also exists elsewhere: inconsistent lock order (potential deadlock)", obs.fn, e.to, e.from),
			})
		}
	}
}

func reaches(adj map[string][]string, from, to string) bool {
	seen := make(map[string]bool)
	var dfs func(string) bool
	dfs = func(n string) bool {
		if n == to {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		for _, next := range adj[n] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
