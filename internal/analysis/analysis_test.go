package analysis

import (
	"strings"
	"sync"
	"testing"
)

// sharedLoader builds one Loader for the whole test binary: NewLoader runs
// `go list -export -deps` once, which dominates the suite's runtime.
var (
	loaderOnce sync.Once
	loader     *Loader
	loaderErr  error
)

func testLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loader, loaderErr = NewLoader("../..")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loader
}

// check type-checks one in-memory source file under the given import path and
// runs the analyzers over it (suppressions applied, like kwlint does).
func check(t *testing.T, importPath, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := testLoader(t).CheckSource(importPath, src)
	if err != nil {
		t.Fatalf("CheckSource: %v", err)
	}
	return Run([]*Pkg{pkg}, analyzers)
}

func wantDiag(t *testing.T, diags []Diagnostic, analyzer, fragment string) {
	t.Helper()
	for _, d := range diags {
		if d.Analyzer == analyzer && strings.Contains(d.Message, fragment) {
			if d.Pos.Line == 0 {
				t.Errorf("diagnostic has no position: %s", d)
			}
			return
		}
	}
	t.Fatalf("expected a %s diagnostic mentioning %q, got %v", analyzer, fragment, diags)
}

func wantNone(t *testing.T, diags []Diagnostic) {
	t.Helper()
	if len(diags) != 0 {
		t.Fatalf("expected no diagnostics, got %v", diags)
	}
}

func TestMapOrderFlagsUnsortedAppend(t *testing.T) {
	src := `package pattern
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	wantDiag(t, check(t, "kwagg/internal/pattern", src, MapOrder()),
		"maporder", "appends to slice out")
}

func TestMapOrderAllowsCollectThenSort(t *testing.T) {
	src := `package pattern
import "sort"
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`
	wantNone(t, check(t, "kwagg/internal/pattern", src, MapOrder()))
}

func TestMapOrderFlagsBuilderWrite(t *testing.T) {
	src := `package sqlast
import "strings"
func render(m map[string]string) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`
	wantDiag(t, check(t, "kwagg/internal/sqlast", src, MapOrder()),
		"maporder", "writes into b")
}

func TestMapOrderFlagsStringConcat(t *testing.T) {
	src := `package translate
func render(m map[string]string) string {
	s := ""
	for k := range m {
		s += k
	}
	return s
}
`
	wantDiag(t, check(t, "kwagg/internal/translate", src, MapOrder()),
		"maporder", "concatenates onto string s")
}

func TestMapOrderIgnoresOtherPackages(t *testing.T) {
	src := `package chaos
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	wantNone(t, check(t, "kwagg/internal/chaos", src, MapOrder()))
}

func TestHotAllocFlagsSprintfInLoop(t *testing.T) {
	src := `package sqldb
import "fmt"
func keys(rows []int) []string {
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d", r))
	}
	return out
}
`
	wantDiag(t, check(t, "kwagg/internal/sqldb", src, HotAlloc()),
		"hotalloc", "fmt.Sprintf")
}

func TestHotAllocFlagsFormatAppend(t *testing.T) {
	src := `package sqldb
import "kwagg/internal/relation"
func key(buf []byte, vals []relation.Value) []byte {
	for _, v := range vals {
		buf = append(buf, relation.Format(v)...)
	}
	return buf
}
func key2(buf []byte, vals []relation.Value) []byte {
	for _, v := range vals {
		s := relation.Format(v)
		buf = append(buf, s...)
	}
	return buf
}
`
	diags := check(t, "kwagg/internal/sqldb", src, HotAlloc())
	if len(diags) != 2 {
		t.Fatalf("expected both Format-append shapes flagged, got %v", diags)
	}
	wantDiag(t, diags, "hotalloc", "relation.AppendFormat")
}

func TestHotAllocAllowsAppendFormatAndNonLoopSprintf(t *testing.T) {
	src := `package sqldb
import (
	"fmt"
	"kwagg/internal/relation"
)
func key(buf []byte, vals []relation.Value) []byte {
	for _, v := range vals {
		buf = relation.AppendFormat(buf, v)
	}
	return buf
}
func label(n int) string {
	return fmt.Sprintf("stmt-%d", n)
}
`
	wantNone(t, check(t, "kwagg/internal/sqldb", src, HotAlloc()))
}

func TestHotAllocFlagsMakeInBlockLoop(t *testing.T) {
	src := `package sqldb
type executor struct{ ops uint }
func (e *executor) stepN(n int) error { e.ops += uint(n); return nil }
func (e *executor) kernel(blocks [][]uint32) int {
	total := 0
	for b := range blocks {
		if err := e.stepN(len(blocks[b])); err != nil {
			return 0
		}
		scratch := make([]uint64, 16)
		_ = scratch
		total += b
	}
	return total
}
`
	wantDiag(t, check(t, "kwagg/internal/sqldb", src, HotAlloc()),
		"hotalloc", "batch-kernel block loop")
}

func TestHotAllocAllowsMakeInPlainLoop(t *testing.T) {
	// make in a loop that is not a batch block loop (no stepN poll) is a
	// per-statement or per-group allocation, not per-block scratch.
	src := `package sqldb
func carve(sizes []int) [][]int {
	out := make([][]int, 0, len(sizes))
	for _, n := range sizes {
		out = append(out, make([]int, 0, n))
	}
	return out
}
`
	wantNone(t, check(t, "kwagg/internal/sqldb", src, HotAlloc()))
}

func TestHotAllocIgnoresOtherPackages(t *testing.T) {
	src := `package translate
import "fmt"
func render(rows []int) []string {
	var out []string
	for _, r := range rows {
		out = append(out, fmt.Sprintf("%d", r))
	}
	return out
}
`
	wantNone(t, check(t, "kwagg/internal/translate", src, HotAlloc()))
}

func TestDetClockFlagsWallClockAndGlobalRand(t *testing.T) {
	src := `package match
import (
	"math/rand"
	"time"
)
func stamp() time.Time { return time.Now() }
func pick(n int) int   { return rand.Intn(n) }
`
	diags := check(t, "kwagg/internal/match", src, DetClock())
	wantDiag(t, diags, "detclock", "time.Now")
	wantDiag(t, diags, "detclock", "math/rand.Intn")
}

func TestDetClockAllowsSeededRandAndAllowedPackages(t *testing.T) {
	seeded := `package match
import "math/rand"
func pick(r *rand.Rand, n int) int { return r.Intn(n) }
func src() *rand.Rand              { return rand.New(rand.NewSource(1)) }
`
	wantNone(t, check(t, "kwagg/internal/match", seeded, DetClock()))

	chaos := `package chaos
import "time"
func stamp() time.Time { return time.Now() }
`
	wantNone(t, check(t, "kwagg/internal/chaos", chaos, DetClock()))
}

func TestMetricNameFlagsBadNames(t *testing.T) {
	src := `package server
import "kwagg/internal/obs"
func register(r *obs.Registry, suffix string) {
	r.Counter("queries_total", "missing namespace")
	r.Gauge("kwagg_Bad_Case", "uppercase")
	r.Counter(suffix+"_total", "dynamic name")
	r.Counter("kwagg_cache_"+suffix, "constant prefix is fine")
	r.Counter("kwagg_good_total", "fine")
}
`
	diags := check(t, "kwagg/internal/server", src, MetricName())
	if len(diags) != 3 {
		t.Fatalf("expected 3 diagnostics, got %v", diags)
	}
	wantDiag(t, diags, "metricname", "queries_total")
	wantDiag(t, diags, "metricname", "kwagg_Bad_Case")
	wantDiag(t, diags, "metricname", "not a constant")
}

func TestMetricNameFlagsDivergentHelp(t *testing.T) {
	src := `package server
import "kwagg/internal/obs"
func register(r *obs.Registry) {
	r.Counter("kwagg_x_total", "one help")
	r.Counter("kwagg_x_total", "another help")
}
`
	wantDiag(t, check(t, "kwagg/internal/server", src, MetricName()),
		"metricname", "the registry keeps the first help it sees")
}

func TestCtxFlowFlagsBackgroundWithCtxParam(t *testing.T) {
	src := `package core
import "context"
func run(ctx context.Context) context.Context {
	return context.Background()
}
`
	wantDiag(t, check(t, "kwagg/internal/core", src, CtxFlow()),
		"ctxflow", "context.Background")
}

func TestCtxFlowFlagsNonContextExec(t *testing.T) {
	src := `package core
import (
	"context"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
)
func run(ctx context.Context, db *relation.Database, q *sqlast.Query) error {
	_, err := sqldb.Exec(db, q)
	return err
}
`
	wantDiag(t, check(t, "kwagg/internal/core", src, CtxFlow()),
		"ctxflow", "sqldb.Exec")
}

func TestCtxFlowAllowsRootingWithoutCtx(t *testing.T) {
	src := `package core
import "context"
func Convenience() context.Context {
	return context.Background()
}
`
	wantNone(t, check(t, "kwagg/internal/core", src, CtxFlow()))
}

func TestFreezeWriteFlagsStorageMutation(t *testing.T) {
	src := `package match
import "kwagg/internal/relation"
func scrub(t *relation.Table) {
	t.Tuples = nil
	t.Schema.PrimaryKey = nil
}
`
	diags := check(t, "kwagg/internal/match", src, FreezeWrite())
	wantDiag(t, diags, "freezewrite", "relation.Table.Tuples")
	wantDiag(t, diags, "freezewrite", "relation.Schema.PrimaryKey")
}

func TestFreezeWriteAllowsBuildPath(t *testing.T) {
	src := `package tpch
import "kwagg/internal/relation"
func patch(t *relation.Table, tu relation.Tuple) {
	t.Tuples[0] = tu
}
`
	wantNone(t, check(t, "kwagg/internal/dataset/tpch", src, FreezeWrite()))
}

func TestFreezeWriteAllowsLocalSchemaName(t *testing.T) {
	// Schema.Name is not key/FD metadata; renaming views is legitimate.
	src := `package match
import "kwagg/internal/relation"
func rename(s *relation.Schema) {
	s.Name = "View"
}
`
	wantNone(t, check(t, "kwagg/internal/match", src, FreezeWrite()))
}

func TestFreezeWriteFlagsDeltaSeamOutsideCore(t *testing.T) {
	// The incremental epoch builder claims frozen tables' spare capacity;
	// only core.Live.Commit serializes committers, so direct calls from
	// anywhere else are a latent race.
	src := `package match
import "kwagg/internal/relation"
func grow(db *relation.Database, idx *relation.InvertedIndex, rows map[string][]relation.Tuple) {
	relation.ExtendFrozenDatabase(db, rows)
	idx.AppendRows(db, nil)
}
`
	diags := check(t, "kwagg/internal/match", src, FreezeWrite())
	wantDiag(t, diags, "freezewrite", "relation.ExtendFrozenDatabase")
	wantDiag(t, diags, "freezewrite", "relation.AppendRows")
}

func TestFreezeWriteAllowsDeltaSeamInCore(t *testing.T) {
	// core is the sanctioned epoch builder (Live.Commit holds the mutex).
	src := `package core
import "kwagg/internal/relation"
func build(db *relation.Database, rows map[string][]relation.Tuple) (*relation.Database, error) {
	next, _, err := relation.ExtendFrozenDatabase(db, rows)
	return next, err
}
`
	wantNone(t, check(t, "kwagg/internal/core", src, FreezeWrite()))
}

func TestSuppressionSilencesDiagnostic(t *testing.T) {
	src := `package pattern
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//kwlint:ignore maporder ordering is re-established by the caller
		out = append(out, k)
	}
	return out
}
`
	wantNone(t, check(t, "kwagg/internal/pattern", src, MapOrder()))
}

func TestSuppressionWrongAnalyzerDoesNotSilence(t *testing.T) {
	src := `package pattern
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//kwlint:ignore detclock wrong analyzer name
		out = append(out, k)
	}
	return out
}
`
	wantDiag(t, check(t, "kwagg/internal/pattern", src, MapOrder()),
		"maporder", "appends to slice out")
}

func TestSuppressionRequiresReason(t *testing.T) {
	src := `package pattern
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//kwlint:ignore maporder
		out = append(out, k)
	}
	return out
}
`
	diags := check(t, "kwagg/internal/pattern", src, MapOrder())
	wantDiag(t, diags, "kwlint", "written reason")
	wantDiag(t, diags, "maporder", "appends to slice out")
}

// TestLoadModule loads the real module the way kwlint does and asserts the
// deterministic-pipeline packages are present — a smoke test that the
// go-list/export-data plumbing works in this checkout.
func TestLoadModule(t *testing.T) {
	pkgs, err := testLoader(t).Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byPath := make(map[string]bool, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = true
	}
	for _, want := range []string{"kwagg", "kwagg/internal/sqldb", "kwagg/internal/translate", "kwagg/internal/planck"} {
		if !byPath[want] {
			t.Errorf("Load did not return package %s", want)
		}
	}
}

func TestDepScopeFlagsDriverMachineryOutsideBackend(t *testing.T) {
	src := `package pattern
import (
	_ "database/sql"
	_ "os/exec"
)
`
	diags := check(t, "kwagg/internal/pattern", src, DepScope())
	wantDiag(t, diags, "depscope", "database/sql outside kwagg/internal/backend")
	wantDiag(t, diags, "depscope", "os/exec outside kwagg/internal/backend")
}

func TestDepScopeFlagsBackendLeaks(t *testing.T) {
	src := `package pattern
import (
	_ "kwagg/internal/backend"
	_ "kwagg/internal/backend/sqlitecli"
)
`
	diags := check(t, "kwagg/internal/sqldb", src, DepScope())
	wantDiag(t, diags, "depscope", "kwagg/internal/backend/sqlitecli outside kwagg/internal/backend")
	wantDiag(t, diags, "depscope", "kwagg/internal/backend outside kwagg, kwagg/internal/core")
}

func TestDepScopeAllowsTheSeamItself(t *testing.T) {
	wantNone(t, check(t, "kwagg/internal/backend/pattern", `package pattern
import (
	_ "database/sql"
	_ "os/exec"
	_ "kwagg/internal/backend/sqlitecli"
)
`, DepScope()))
	wantNone(t, check(t, "kwagg/internal/core", `package core
import _ "kwagg/internal/backend"
`, DepScope()))
	wantNone(t, check(t, "kwagg/internal/analysis", `package analysis
import _ "os/exec"
`, DepScope()))
}

// TestDepScopeThirdParty covers the dependency-free rule at the unit level:
// a third-party import cannot be type-checked in this module (no export
// data), so the rule function is exercised directly.
func TestDepScopeThirdParty(t *testing.T) {
	if msg := depViolation("kwagg/internal/sqldb", "github.com/mattn/go-sqlite3"); !strings.Contains(msg, "dependency-free") {
		t.Errorf("third-party import not flagged: %q", msg)
	}
	if msg := depViolation("kwagg/internal/sqldb", "encoding/json"); msg != "" {
		t.Errorf("stdlib import flagged: %q", msg)
	}
	if msg := depViolation("kwagg", "kwagg/internal/backend"); msg != "" {
		t.Errorf("root kwagg may import the backend seam: %q", msg)
	}
}
