package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
)

// obsPkg is the import path of the metrics registry package.
const obsPkg = "kwagg/internal/obs"

// metricNameRE is the required shape of a metric family name: the kwagg_
// namespace prefix followed by lowercase snake-case.
var metricNameRE = regexp.MustCompile(`^kwagg_[a-z0-9_]+$`)

// metricPrefixRE accepts the constant left half of a computed name like
// "kwagg_cache_"+name — the dynamic suffix is appended at runtime, so only
// the namespace prefix can be verified statically.
var metricPrefixRE = regexp.MustCompile(`^kwagg_[a-z0-9_]*$`)

// metricReg records where a (name, help) pair was registered.
type metricReg struct {
	help string
	pos  token.Position
}

// MetricName checks every obs.Registry registration call (Counter, Gauge,
// CounterFunc, GaugeFunc, Histogram): the metric name must be a constant
// kwagg_*-prefixed snake-case string (or a constant kwagg_* prefix
// concatenated with a runtime suffix), and each family name must be
// registered with one help string tree-wide — the registry keeps the first
// help it sees, so divergent help strings silently lose text on /metrics.
// An empty help string is the registry's read-an-existing-family idiom
// (family() ignores help after creation) and never conflicts.
func MetricName() *Analyzer {
	a := &Analyzer{
		Name:  "metricname",
		Doc:   "obs metric names must be kwagg_*-prefixed constants with one help string per family",
		Tests: true,
	}
	seen := make(map[string][]metricReg) // family name -> registrations
	a.Run = func(pkg *Pkg) []Diagnostic {
		var diags []Diagnostic
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				method, ok := registryMethod(pkg.Info, call)
				if !ok || len(call.Args) < 2 {
					return true
				}
				pos := pkg.Fset.Position(call.Pos())
				name, nameConst := constString(pkg.Info, call.Args[0])
				switch {
				case nameConst:
					if !metricNameRE.MatchString(name) {
						diags = append(diags, Diagnostic{
							Analyzer: "metricname",
							Pos:      pos,
							Message:  "metric name " + name + " must match kwagg_[a-z0-9_]+ (kwagg_ namespace, lowercase snake-case)",
						})
						return true
					}
					if help, ok := constString(pkg.Info, call.Args[1]); ok {
						seen[name] = append(seen[name], metricReg{help: help, pos: pos})
					}
				case hasConstPrefix(pkg.Info, call.Args[0]):
					// "kwagg_cache_"+suffix: prefix verified, suffix dynamic.
				default:
					diags = append(diags, Diagnostic{
						Analyzer: "metricname",
						Pos:      pos,
						Message:  "obs." + method + " name is not a constant (or constant-prefixed) kwagg_* string; dynamic names defeat the registry's naming contract",
					})
				}
				return true
			})
		}
		return diags
	}
	a.Finish = func() []Diagnostic {
		var diags []Diagnostic
		names := make([]string, 0, len(seen))
		for name := range seen {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			regs := seen[name]
			// Empty help is the registry's read-an-existing-family idiom
			// (family() ignores help after creation), so only non-empty
			// helps can conflict; the first one is canonical.
			first := -1
			for i, r := range regs {
				if r.help != "" {
					first = i
					break
				}
			}
			if first < 0 {
				continue
			}
			for i, r := range regs {
				if i == first || r.help == "" || r.help == regs[first].help {
					continue
				}
				diags = append(diags, Diagnostic{
					Analyzer: "metricname",
					Pos:      r.pos,
					Message: "metric " + name + " registered with help " + strconv.Quote(r.help) +
						" but " + regs[first].pos.String() + " registered it with " + strconv.Quote(regs[first].help) +
						"; the registry keeps the first help it sees",
				})
			}
		}
		return diags
	}
	return a
}

// registryMethod reports method calls on *obs.Registry that create metric
// families.
func registryMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "CounterFunc", "GaugeFunc", "Histogram":
	default:
		return "", false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return "", false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	if named.Obj().Pkg().Path() != obsPkg || named.Obj().Name() != "Registry" {
		return "", false
	}
	return sel.Sel.Name, true
}

// constString resolves a compile-time constant string expression (literal,
// constant ident like obs.StageMetric, or constant concatenation).
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// hasConstPrefix accepts expressions of the form <const kwagg_* string> + x,
// recursing into the left operand of nested concatenations.
func hasConstPrefix(info *types.Info, e ast.Expr) bool {
	be, ok := e.(*ast.BinaryExpr)
	if !ok || be.Op.String() != "+" {
		return false
	}
	if s, ok := constString(info, be.X); ok {
		return metricPrefixRE.MatchString(s)
	}
	return hasConstPrefix(info, be.X)
}
