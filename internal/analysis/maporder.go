package analysis

import (
	"go/ast"
	"go/types"
)

// mapOrderPkgs are the deterministic-pipeline packages: everything a query
// flows through between parsing and SQL text. Identical inputs must produce
// byte-identical interpretations, SQL and rankings (the caches, the golden
// files and the chaos replays all depend on it), so iteration order must
// never leak from a Go map into a slice, string or builder here.
var mapOrderPkgs = map[string]bool{
	"kwagg/internal/pattern":   true,
	"kwagg/internal/match":     true,
	"kwagg/internal/translate": true,
	"kwagg/internal/sqlast":    true,
	"kwagg/internal/orm":       true,
	"kwagg/internal/keyword":   true,
	"kwagg/internal/normalize": true,
}

// MapOrder reports `for range m` over a map whose body feeds an
// order-sensitive sink — an append to a slice declared outside the loop, a
// strings.Builder / bytes.Buffer write, or string concatenation onto an
// outer variable — in the deterministic pipeline packages. Appends absolved
// by a sort of the same slice later in the function are allowed (the
// collect-then-sort idiom); writes into other maps are order-insensitive and
// allowed.
func MapOrder() *Analyzer {
	a := &Analyzer{
		Name:  "maporder",
		Doc:   "unsorted map iteration feeding output slices/strings in the deterministic pipeline",
		Tests: true,
	}
	a.Run = func(pkg *Pkg) []Diagnostic {
		if !mapOrderPkgs[pkg.Path] {
			return nil
		}
		var diags []Diagnostic
		for _, fd := range funcDecls(pkg) {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pkg.Info.TypeOf(rs.X); t == nil || !isMapType(t) {
					return true
				}
				diags = append(diags, checkMapRange(pkg, fd, rs)...)
				return true
			})
		}
		return diags
	}
	return a
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one range-over-map statement for order-sensitive
// sinks in its body.
func checkMapRange(pkg *Pkg, fd *ast.FuncDecl, rs *ast.RangeStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(n ast.Node, sink string) {
		diags = append(diags, Diagnostic{
			Analyzer: "maporder",
			Pos:      pkg.Fset.Position(n.Pos()),
			Message: "map iteration order is random and this loop " + sink +
				"; collect the keys, sort them, then iterate (or sort the result before it leaves the function)",
		})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// s += x on an outer string variable.
			if st.Tok.String() == "+=" && len(st.Lhs) == 1 {
				if id, ok := st.Lhs[0].(*ast.Ident); ok && isString(pkg.Info.TypeOf(id)) &&
					declaredOutside(pkg.Info, id, rs) {
					report(st, "concatenates onto string "+id.Name)
					return true
				}
			}
			// x = append(x, ...) where x is a slice declared outside the loop
			// and never sorted after it.
			for i, rhs := range st.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pkg.Info, call) || i >= len(st.Lhs) {
					continue
				}
				id, ok := st.Lhs[i].(*ast.Ident)
				if !ok || !declaredOutside(pkg.Info, id, rs) {
					continue
				}
				if sortedAfter(pkg.Info, fd, rs, id) {
					continue
				}
				report(st, "appends to slice "+id.Name)
			}
		case *ast.CallExpr:
			// Builder/buffer writes and fmt.Fprint* into an outer writer.
			if sel, ok := st.Fun.(*ast.SelectorExpr); ok {
				if isWriterMethod(pkg.Info, sel) {
					if id, ok := rootIdent(sel.X); ok && declaredOutside(pkg.Info, id, rs) {
						report(st, "writes into "+id.Name)
					}
				}
			}
			if name, ok := isPkgCall(pkg.Info, st, "fmt", "Fprintf", "Fprint", "Fprintln"); ok && len(st.Args) > 0 {
				if id, ok := rootIdent(st.Args[0]); ok && declaredOutside(pkg.Info, id, rs) {
					report(st, "fmt."+name+"s into "+id.Name)
				}
			}
		}
		return true
	})
	return diags
}

// declaredOutside reports whether the identifier's declaration precedes the
// range statement (so the loop mutates state that outlives one iteration).
func declaredOutside(info *types.Info, id *ast.Ident, rs *ast.RangeStmt) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedAfter reports whether the slice identifier is passed to a sort
// function after the range statement within the enclosing function — the
// collect-then-sort idiom that restores determinism.
func sortedAfter(info *types.Info, fd *ast.FuncDecl, rs *ast.RangeStmt, id *ast.Ident) bool {
	obj := info.ObjectOf(id)
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		p := pn.Imported().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if aid, ok := an.(*ast.Ident); ok && info.ObjectOf(aid) == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isWriterMethod reports whether sel is a Write*/Print-style method on a
// strings.Builder or bytes.Buffer.
func isWriterMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "WriteString", "WriteByte", "WriteRune", "Write":
	default:
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (path == "strings" && name == "Builder") || (path == "bytes" && name == "Buffer")
}

// rootIdent unwraps selectors and unary operators to the base identifier:
// &b, b.buf, (&b) all root at b.
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}
