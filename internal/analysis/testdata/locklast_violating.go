// Violating fixture for the locklast analyzer: inconsistent acquisition
// order (one direction through a callee's summary) and blocking operations
// performed while holding a mutex.
package core

import "sync"

type pair struct {
	a  sync.Mutex
	b  sync.Mutex
	ch chan int
}

// lockB only acquires b; its summary carries that to callers.
func (p *pair) lockB() {
	p.b.Lock()
	p.b.Unlock()
}

// aThenB establishes the order a→b interprocedurally.
func (p *pair) aThenB() {
	p.a.Lock()
	p.lockB()
	p.a.Unlock()
}

// bThenA establishes the reverse order b→a directly: a cycle.
func (p *pair) bThenA() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}

// waitUnderLock receives from a field channel while holding a: the lock is
// held for as long as the sender takes.
func (p *pair) waitUnderLock() int {
	p.a.Lock()
	defer p.a.Unlock()
	return <-p.ch
}
