// Violating fixture for the sqltaint analyzer (checked under import path
// kwagg/internal/sqlast/render): raw sqlast name fields reaching SQL text
// builders directly, via Sprintf, and via a helper's param→sink summary.
package render

import (
	"fmt"
	"strings"

	"kwagg/internal/sqlast"
)

// badIdent writes a raw column name into SQL text.
func badIdent(b *strings.Builder, c sqlast.Col) {
	b.WriteString(c.Column)
}

// badSprintf launders the raw names through fmt, which propagates taint.
func badSprintf(b *strings.Builder, c sqlast.Col) {
	b.WriteString(fmt.Sprintf("%s.%s", c.Table, c.Column))
}

// badString uses the debug String() form as SQL text.
func badString(b *strings.Builder, c sqlast.Col) {
	b.WriteString(c.String())
}

// writeRaw's parameter reaches a sink; badVia feeds it raw data, caught
// through the interprocedural summary.
func writeRaw(b *strings.Builder, s string) {
	b.WriteString(s)
}

func badVia(b *strings.Builder, c sqlast.Col) {
	writeRaw(b, c.Column)
}
