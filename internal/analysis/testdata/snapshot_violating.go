// Violating fixture for the snapshot analyzer (checked under import path
// kwagg/internal/server): request-path code Loads the same atomic.Pointer
// state twice on one path.
package server

import "sync/atomic"

type state struct{ epoch uint64 }

type engine struct {
	cur atomic.Pointer[state]
}

func (e *engine) epoch() uint64 { return e.cur.Load().epoch }

// handle double-loads directly: the two reads can observe different epochs.
func (e *engine) handle() uint64 {
	a := e.cur.Load().epoch
	b := e.cur.Load().epoch
	return a + b
}

// handleVia double-loads through an accessor: the callee weighs one
// acquisition, the direct Load adds the second.
func (e *engine) handleVia() uint64 {
	if e.cur.Load() == nil {
		return 0
	}
	return e.epoch()
}

// handleLoop loads inside a loop: one repeat already proves the double read.
func (e *engine) handleLoop(n int) uint64 {
	var sum uint64
	for i := 0; i < n; i++ {
		sum += e.cur.Load().epoch
	}
	return sum
}
