// Allowed fixture for the snapshot analyzer: one Load per operation,
// fold (CAS) bodies, and transition (Store) chains are all legal.
package server

import "sync/atomic"

type state struct{ epoch uint64 }

type engine struct {
	cur atomic.Pointer[state]
}

// accessor: a single Load per call.
func (e *engine) epoch() uint64 { return e.cur.Load().epoch }

// one snapshot taken once and passed down.
func (e *engine) handle() uint64 {
	st := e.cur.Load()
	return st.epoch + use(st)
}

func use(st *state) uint64 { return st.epoch }

// fold: the post-CAS re-read is the designed retry of a lost race.
func (e *engine) fold() *state {
	st := e.cur.Load()
	next := &state{epoch: st.epoch + 1}
	if e.cur.CompareAndSwap(st, next) {
		return next
	}
	return e.cur.Load()
}

// transition: Stores mark the whole chain as epoch-boundary code.
func (e *engine) swap(next *state) { e.cur.Store(next) }

func (e *engine) commit() uint64 {
	before := e.cur.Load().epoch
	e.swap(&state{epoch: before + 1})
	return e.cur.Load().epoch
}

// branches count the worst arm, not the sum (the analyzer's path model is
// structural, so the alternative goes in an explicit else arm).
func (e *engine) either(flag bool) uint64 {
	if flag {
		return e.cur.Load().epoch
	} else {
		return e.epoch()
	}
}
