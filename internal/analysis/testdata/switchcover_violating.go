// Violating fixture for the switchcover analyzer (checked under import path
// kwagg/internal/sqldb): a type switch over an sqlast interface and a value
// switch over a closed sqlast token type, each missing cases with no
// default clause.
package sqldb

import "kwagg/internal/sqlast"

// exprKind misses every Expr implementer but ColExpr: a new node kind would
// fall through silently.
func exprKind(e sqlast.Expr) string {
	switch e.(type) {
	case sqlast.ColExpr:
		return "col"
	}
	return "?"
}

// opKeep misses the ordering operators of CmpOp.
func opKeep(op sqlast.CmpOp, c int) bool {
	keep := false
	switch op {
	case sqlast.OpEq:
		keep = c == 0
	case sqlast.OpNe:
		keep = c != 0
	}
	return keep
}
