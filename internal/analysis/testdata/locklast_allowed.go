// Allowed fixture for the locklast analyzer: one consistent acquisition
// order, locally created channels, and channel work after release.
package core

import "sync"

type pair struct {
	a  sync.Mutex
	b  sync.Mutex
	ch chan int
}

// Both call sites agree on the order a→b: no cycle.
func (p *pair) first() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) second() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

// A channel made inside the locked region is bounded structured
// concurrency, not an external dependency.
func (p *pair) localChannel() int {
	done := make(chan int, 1)
	p.a.Lock()
	done <- 1
	v := <-done
	p.a.Unlock()
	return v
}

// Receiving after the explicit release is fine.
func (p *pair) releasedFirst() int {
	p.a.Lock()
	p.a.Unlock()
	return <-p.ch
}
