// Allowed fixture for the switchcover analyzer: a default clause handles
// the leftovers loudly, and full enumeration needs no default.
package sqldb

import (
	"fmt"

	"kwagg/internal/sqlast"
)

// defaultClause: incomplete enumeration is fine when the leftovers are
// handled (here: loudly).
func defaultClause(e sqlast.Expr) string {
	switch e.(type) {
	case sqlast.ColExpr:
		return "col"
	default:
		panic(fmt.Sprintf("unhandled expr %T", e))
	}
}

// fullEnumeration covers every CmpOp constant.
func fullEnumeration(op sqlast.CmpOp, c int) bool {
	switch op {
	case sqlast.OpEq:
		return c == 0
	case sqlast.OpNe:
		return c != 0
	case sqlast.OpLt:
		return c < 0
	case sqlast.OpLe:
		return c <= 0
	case sqlast.OpGt:
		return c > 0
	case sqlast.OpGe:
		return c >= 0
	}
	return false
}

// nonSqlastSwitch: switches over other types are out of scope.
func nonSqlastSwitch(n int) string {
	switch n {
	case 0:
		return "zero"
	}
	return "many"
}
