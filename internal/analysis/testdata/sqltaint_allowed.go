// Allowed fixture for the sqltaint analyzer: identifiers routed through the
// designated sanitizer, literals as literals, strconv for scalars.
package render

import (
	"strconv"
	"strings"

	"kwagg/internal/sqlast"
)

// ident is this package's sanitizer seam (its body is exempt by design, and
// its results are clean).
func ident(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// goodIdent quotes the raw name before it becomes SQL text.
func goodIdent(b *strings.Builder, c sqlast.Col) {
	b.WriteString(ident(c.Column))
}

// goodQualified builds the qualified form from sanitized parts only.
func goodQualified(b *strings.Builder, c sqlast.Col) {
	b.WriteString(ident(c.Table))
	b.WriteString(".")
	b.WriteString(ident(c.Column))
}

// goodScalar: strconv formatting of scalars is clean.
func goodScalar(b *strings.Builder, n int64) {
	b.WriteString(strconv.FormatInt(n, 10))
}
