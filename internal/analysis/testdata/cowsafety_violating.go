// Violating fixture for the cowsafety analyzer (checked under import path
// kwagg/internal/sqldb): element writes and growing appends on storage read
// out of frozen relation state.
package sqldb

import "kwagg/internal/relation"

// clobberKey writes through a slice shared with the frozen schema.
func clobberKey(s *relation.Schema) {
	pk := s.PrimaryKey
	pk[0] = "oid"
}

// growKey appends in place: spare capacity would scribble on the shared
// backing array.
func growKey(s *relation.Schema) []string {
	return append(s.PrimaryKey, "extra")
}

// writeThrough passes frozen storage to a helper that element-writes its
// parameter (caught through the writesParam summary).
func writeThrough(s *relation.Schema) {
	stamp(s.PrimaryKey)
}

func stamp(attrs []string) {
	attrs[0] = "stamped"
}
