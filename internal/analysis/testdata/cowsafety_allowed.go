// Allowed fixture for the cowsafety analyzer: fresh allocations are
// caller-owned, whatever their element type.
package sqldb

import "kwagg/internal/relation"

// freshCopy explicitly copies before mutating.
func freshCopy(s *relation.Schema) []string {
	pk := append([]string(nil), s.PrimaryKey...)
	pk[0] = "oid"
	return pk
}

// attrNames returns a fresh slice per call (a known fresh constructor), so
// mutating it is legal.
func attrNames(s *relation.Schema) []string {
	names := s.AttrNames()
	names[0] = "renamed"
	return append(names, "extra")
}

// localBuild grows a locally allocated slice from frozen values (reading is
// fine; only the storage being written must be fresh).
func localBuild(s *relation.Schema) []string {
	var out []string
	for _, a := range s.PrimaryKey {
		out = append(out, a)
	}
	return out
}
