package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CowSafety is the dataflow complement to freezewrite: instead of gating
// calls at the package boundary, it follows the values. Slices and maps read
// out of frozen relation state (a Table's tuple slice, a Schema's attribute
// list, encoded column data) are shared by every epoch that references the
// same backing arrays; writing an element or growing one in place from
// outside the delta seam corrupts a published snapshot. The analyzer taints
// every expression whose value is reachable from relation-package state and
// flags element writes, appends, copies and deletes on tainted values — plus
// calls that pass a tainted value to a parameter the callee (transitively)
// writes through.
//
// Fresh allocations (make, new, composite literals, append results bound to
// new variables, Clone/Copy-style constructors) are clean: the rule is about
// provenance, not type. The relation package itself, the core builder and the
// other freeze-path packages are exempt — they are the delta seam the writes
// are legal in (same exemption set as freezewrite).
func CowSafety() *Analyzer {
	c := &cowState{}
	return &Analyzer{
		Name: "cowsafety",
		Doc:  "element writes and growing appends on slices/maps reachable from frozen relation state are only legal inside the delta seam",
		Run: func(pkg *Pkg) []Diagnostic {
			c.pkgs = append(c.pkgs, pkg)
			return nil
		},
		Finish: c.finish,
	}
}

const relationPkgPath = "kwagg/internal/relation"

type cowState struct {
	pkgs []*Pkg
	prog *Program
	// writesParam maps a function to the parameter indices (receiver is 0,
	// parameters follow) through which the function element-writes, directly
	// or transitively.
	writesParam map[*FuncNode]map[int]bool
}

func (c *cowState) finish() []Diagnostic {
	c.prog = NewProgram(c.pkgs)
	c.writesParam = make(map[*FuncNode]map[int]bool)
	// Fixpoint over the call graph: a parameter is "written" when the body
	// element-writes it, or passes it to a callee position already known to
	// be written. Three rounds bound the call-chain depth this propagates
	// through; the repo's delta helpers are two deep.
	for round := 0; round < 3; round++ {
		changed := false
		for _, fn := range c.prog.Funcs {
			if c.updateWrites(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	var diags []Diagnostic
	for _, fn := range c.prog.Funcs {
		if cowExempt(fn.Pkg.Path) {
			continue
		}
		diags = append(diags, c.checkFunc(fn)...)
	}
	return diags
}

// cowExempt reuses freezewrite's delta-seam exemptions: the relation package
// and the freeze/build path own the copy-on-write machinery.
func cowExempt(path string) bool {
	return freezeWriteAllowed(path) || deltaSeamAllowed(path)
}

// paramVars returns the receiver (index 0 slot when present) and parameters
// of a declared function as a var→index map.
func paramVars(fn *FuncNode) map[*types.Var]int {
	out := make(map[*types.Var]int)
	if fn.Obj == nil {
		sig, ok := fn.Pkg.Info.TypeOf(fn.Lit).(*types.Signature)
		if !ok {
			return out
		}
		for i := 0; i < sig.Params().Len(); i++ {
			out[sig.Params().At(i)] = i
		}
		return out
	}
	sig := fn.Obj.Type().(*types.Signature)
	idx := 0
	if sig.Recv() != nil {
		out[sig.Recv()] = idx
		idx++
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out[sig.Params().At(i)] = idx
		idx++
	}
	return out
}

// updateWrites recomputes fn's written-parameter set; reports change.
func (c *cowState) updateWrites(fn *FuncNode) bool {
	params := paramVars(fn)
	if len(params) == 0 {
		return false
	}
	cur := c.writesParam[fn]
	if cur == nil {
		cur = make(map[int]bool)
		c.writesParam[fn] = cur
	}
	before := len(cur)
	rootedAtParam := func(e ast.Expr) (int, bool) {
		v := rootVar(fn.Pkg.Info, e)
		if v == nil {
			return 0, false
		}
		i, ok := params[v]
		return i, ok
	}
	inspectOwn(fn, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if base, ok := indexedBase(lhs); ok {
					if i, ok := rootedAtParam(base); ok {
						cur[i] = true
					}
				}
			}
		case *ast.CallExpr:
			if name, arg := builtinMutation(fn.Pkg.Info, st); name != "" {
				if i, ok := rootedAtParam(arg); ok {
					cur[i] = true
				}
				return
			}
			for _, callee := range c.prog.Callees(fn.Pkg, st) {
				w := c.writesParam[callee]
				if len(w) == 0 {
					continue
				}
				for argIdx, argExpr := range callArgs(fn.Pkg.Info, st, callee) {
					if !w[argIdx] {
						continue
					}
					if i, ok := rootedAtParam(argExpr); ok {
						cur[i] = true
					}
				}
			}
		}
	})
	return len(cur) != before
}

// callArgs aligns a call's argument expressions with the callee's parameter
// indexing (receiver first for methods).
func callArgs(info *types.Info, call *ast.CallExpr, callee *FuncNode) map[int]ast.Expr {
	out := make(map[int]ast.Expr)
	idx := 0
	if callee.Obj != nil {
		if sig, ok := callee.Obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
					out[0] = sel.X
				}
			}
			idx = 1
		}
	}
	for _, a := range call.Args {
		out[idx] = a
		idx++
	}
	return out
}

// indexedBase unwraps an element-write lvalue (x[i], *p, (x)) to the
// container expression being mutated.
func indexedBase(e ast.Expr) (ast.Expr, bool) {
	switch lv := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return lv.X, true
	case *ast.StarExpr:
		return lv.X, true
	}
	return nil, false
}

// builtinMutation matches the builtins that mutate (or may mutate, via spare
// capacity) their first argument: append, copy, delete. It returns the
// builtin name and the mutated expression.
func builtinMutation(info *types.Info, call *ast.CallExpr) (string, ast.Expr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return "", nil
	}
	switch id.Name {
	case "append", "copy", "delete":
		if len(call.Args) > 0 {
			return id.Name, call.Args[0]
		}
	}
	return "", nil
}

// rootVar resolves an expression to the local/parameter variable its value
// is rooted at, looking through indexing, slicing, field selection on the
// same variable chain, dereference and parens. Returns nil when the root is
// not a simple variable.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkFunc taints frozen-state expressions and flags mutations on them.
func (c *cowState) checkFunc(fn *FuncNode) []Diagnostic {
	info := fn.Pkg.Info
	tainted := make(map[*types.Var]bool)

	// isFrozen reports whether the expression's value is (or aliases into)
	// frozen relation state.
	var isFrozen func(e ast.Expr) bool
	isFrozen = func(e ast.Expr) bool {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v != nil && tainted[v]
		case *ast.IndexExpr:
			return isFrozen(x.X)
		case *ast.SliceExpr:
			return isFrozen(x.X)
		case *ast.StarExpr:
			return isFrozen(x.X)
		case *ast.SelectorExpr:
			// A field read off a relation-package value yields shared frozen
			// storage when it is slice/map/pointer shaped.
			if s, ok := info.Selections[x]; ok && s.Kind() == types.FieldVal {
				if typeFromPkg(s.Recv(), relationPkgPath) && sharedShape(info.TypeOf(e)) {
					return true
				}
			}
			return isFrozen(x.X)
		case *ast.CallExpr:
			// Method/function results on relation values share backing
			// storage unless the callee is a known fresh constructor.
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return false
			}
			s, ok := info.Selections[sel]
			if !ok || s.Kind() != types.MethodVal {
				return false
			}
			if !typeFromPkg(s.Recv(), relationPkgPath) || !sharedShape(info.TypeOf(e)) {
				return false
			}
			return !freshRelationMethod(sel.Sel.Name)
		}
		return false
	}

	// Two passes: straight-line taint propagation through local assignments
	// and range statements, then once more so a variable assigned before its
	// source variable was recognized still taints.
	for pass := 0; pass < 2; pass++ {
		inspectOwn(fn, func(n ast.Node) {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						id, ok := st.Lhs[i].(*ast.Ident)
						if !ok {
							continue
						}
						v := objVar(info, id)
						if v != nil && isFrozen(st.Rhs[i]) && sharedShape(v.Type()) {
							tainted[v] = true
						}
					}
				}
			case *ast.RangeStmt:
				if !isFrozen(st.X) {
					return
				}
				for _, k := range []ast.Expr{st.Key, st.Value} {
					if id, ok := k.(*ast.Ident); ok {
						if v := objVar(info, id); v != nil && sharedShape(v.Type()) {
							tainted[v] = true
						}
					}
				}
			}
		})
	}

	var diags []Diagnostic
	report := func(n ast.Node, what string) {
		diags = append(diags, Diagnostic{
			Analyzer: "cowsafety",
			Pos:      fn.Pkg.Fset.Position(n.Pos()),
			Message:  fmt.Sprintf("%s on storage reachable from frozen relation state in %s; frozen epochs share backing arrays — build fresh storage or go through the relation delta seam", what, shortFuncName(fn)),
		})
	}
	inspectOwn(fn, func(n ast.Node) {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if base, ok := indexedBase(lhs); ok && isFrozen(base) {
					report(lhs, "element write")
				}
			}
		case *ast.IncDecStmt:
			if base, ok := indexedBase(st.X); ok && isFrozen(base) {
				report(st, "element update")
			}
		case *ast.CallExpr:
			if name, arg := builtinMutation(info, st); name != "" {
				if isFrozen(arg) {
					report(st, name+" into")
				}
				return
			}
			for _, callee := range c.prog.Callees(fn.Pkg, st) {
				w := c.writesParam[callee]
				if len(w) == 0 || cowExempt(callee.Pkg.Path) {
					continue
				}
				for argIdx, argExpr := range callArgs(info, st, callee) {
					if w[argIdx] && isFrozen(argExpr) {
						report(st, fmt.Sprintf("passing to %s (which writes through parameter %d)", shortFuncName(callee), argIdx))
					}
				}
			}
		}
	})
	return diags
}

func objVar(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// sharedShape reports whether a type can alias shared backing storage: a
// slice, map, or pointer (strings and scalars copy by value).
func sharedShape(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

// freshRelationMethod names the relation-package methods/constructors whose
// results are caller-owned fresh allocations, not views into frozen state.
func freshRelationMethod(name string) bool {
	switch name {
	case "Clone", "Copy", "CloneTable", "NewTable", "NewSchema", "NewDatabase", "AppendFormat", "AttrNames":
		return true
	}
	return false
}
