package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// checkFixture type-checks one testdata file under the given import path and
// runs the analyzers over it, exactly like check() does for inline sources.
func checkFixture(t *testing.T, importPath, file string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", file))
	if err != nil {
		t.Fatalf("fixture %s: %v", file, err)
	}
	return check(t, importPath, string(src), analyzers...)
}

func TestSnapshotFixtures(t *testing.T) {
	diags := checkFixture(t, "kwagg/internal/server", "snapshot_violating.go", Snapshot())
	wantDiag(t, diags, "snapshot", "server.(*engine).handle acquires the kwagg/internal/server.engine.cur snapshot 2 times")
	wantDiag(t, diags, "snapshot", "server.(*engine).handleVia acquires")
	wantDiag(t, diags, "snapshot", "server.(*engine).handleLoop acquires")
	if len(diags) != 3 {
		t.Fatalf("want exactly 3 snapshot findings, got %v", diags)
	}
	wantNone(t, checkFixture(t, "kwagg/internal/server", "snapshot_allowed.go", Snapshot()))
}

func TestSnapshotUncheckedPackageIsExempt(t *testing.T) {
	// The same double read outside the checked package set only contributes
	// call-graph summaries; it is not reported.
	src, err := os.ReadFile(filepath.Join("testdata", "snapshot_violating.go"))
	if err != nil {
		t.Fatal(err)
	}
	wantNone(t, check(t, "kwagg/internal/qcache", string(src), Snapshot()))
}

func TestCowSafetyFixtures(t *testing.T) {
	diags := checkFixture(t, "kwagg/internal/sqldb", "cowsafety_violating.go", CowSafety())
	wantDiag(t, diags, "cowsafety", "element write on storage reachable from frozen relation state in sqldb.clobberKey")
	wantDiag(t, diags, "cowsafety", "append into on storage reachable from frozen relation state in sqldb.growKey")
	wantDiag(t, diags, "cowsafety", "passing to sqldb.stamp (which writes through parameter 0)")
	wantNone(t, checkFixture(t, "kwagg/internal/sqldb", "cowsafety_allowed.go", CowSafety()))
}

func TestCowSafetyDeltaSeamIsExempt(t *testing.T) {
	// The identical writes inside the relation package itself are the delta
	// seam the rule protects, not a violation of it.
	src, err := os.ReadFile(filepath.Join("testdata", "cowsafety_violating.go"))
	if err != nil {
		t.Fatal(err)
	}
	wantNone(t, check(t, "kwagg/internal/relation", string(src), CowSafety()))
}

func TestLockLastFixtures(t *testing.T) {
	diags := checkFixture(t, "kwagg/internal/core", "locklast_violating.go", LockLast())
	wantDiag(t, diags, "locklast", "inconsistent lock order")
	wantDiag(t, diags, "locklast", "channel receive while holding kwagg/internal/core.pair.a")
	wantNone(t, checkFixture(t, "kwagg/internal/core", "locklast_allowed.go", LockLast()))
}

func TestLockLastSelfDeadlock(t *testing.T) {
	src := `package core

import "sync"

type box struct{ mu sync.Mutex }

func (b *box) get() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return 1
}

func (b *box) double() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.get()
}
`
	wantDiag(t, check(t, "kwagg/internal/core", src, LockLast()),
		"locklast", "self-deadlock")
}

func TestSQLTaintFixtures(t *testing.T) {
	diags := checkFixture(t, "kwagg/internal/sqlast/render", "sqltaint_violating.go", SQLTaint())
	wantDiag(t, diags, "sqltaint", "raw (unsanitized) string reaches SQL text builder write in render.badIdent")
	wantDiag(t, diags, "sqltaint", "render.badSprintf")
	wantDiag(t, diags, "sqltaint", "render.badString")
	wantDiag(t, diags, "sqltaint", "a sink inside render.writeRaw (parameter 1)")
	wantNone(t, checkFixture(t, "kwagg/internal/sqlast/render", "sqltaint_allowed.go", SQLTaint()))
}

func TestSQLTaintOutOfScopePackage(t *testing.T) {
	// Packages that never hold rendered SQL are out of scope even when they
	// write sqlast fields into builders (e.g. debug output in the planner).
	src, err := os.ReadFile(filepath.Join("testdata", "sqltaint_violating.go"))
	if err != nil {
		t.Fatal(err)
	}
	wantNone(t, check(t, "kwagg/internal/planck", string(src), SQLTaint()))
}

func TestSwitchCoverFixtures(t *testing.T) {
	diags := checkFixture(t, "kwagg/internal/sqldb", "switchcover_violating.go", SwitchCover())
	wantDiag(t, diags, "switchcover", "type switch over sqlast.Expr misses")
	wantDiag(t, diags, "switchcover", "switch over sqlast.CmpOp misses OpGe, OpGt, OpLe, OpLt and has no default clause")
	wantNone(t, checkFixture(t, "kwagg/internal/sqldb", "switchcover_allowed.go", SwitchCover()))
}

func TestStaleSuppressionReported(t *testing.T) {
	src := `package pattern

func keys(m map[string]int) int {
	//kwlint:ignore maporder nothing here appends map keys anymore
	return len(m)
}
`
	diags := check(t, "kwagg/internal/pattern", src, MapOrder())
	wantDiag(t, diags, "kwlint", "stale suppression: no maporder finding is reported here anymore")
}

func TestStaleSuppressionOnlyForRunAnalyzers(t *testing.T) {
	// A detclock directive cannot be judged stale by a maporder-only run:
	// the finding it suppresses was never computed.
	src := `package pattern

import "time"

func now() int64 {
	//kwlint:ignore detclock epoch stamping is the caller's contract
	return time.Now().Unix()
}
`
	wantNone(t, check(t, "kwagg/internal/pattern", src, MapOrder()))
}

func TestStaleAllSuppressionAlwaysChecked(t *testing.T) {
	src := `package pattern

func size(m map[string]int) int {
	//kwlint:ignore all this line was rewritten and triggers nothing
	return len(m)
}
`
	diags := check(t, "kwagg/internal/pattern", src, MapOrder())
	wantDiag(t, diags, "kwlint", "stale suppression: no all finding is reported here anymore")
}

func TestSuppressionUnknownAnalyzerRejected(t *testing.T) {
	src := `package pattern

func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		//kwlint:ignore mapordr typo in the analyzer name
		out = append(out, k)
	}
	return out
}
`
	diags := check(t, "kwagg/internal/pattern", src, MapOrder())
	wantDiag(t, diags, "kwlint", `names unknown analyzer "mapordr"`)
	wantDiag(t, diags, "maporder", "appends to slice out")
}

func TestSuppressionMultipleAnalyzersOneLine(t *testing.T) {
	src := `package pattern

import "time"

func stamp(m map[string]int64) []int64 {
	var out []int64
	for range m {
		//kwlint:ignore maporder,detclock order and time are both the caller's problem here
		out = append(out, time.Now().Unix())
	}
	return out
}
`
	wantNone(t, check(t, "kwagg/internal/pattern", src, MapOrder(), DetClock()))
}

func TestMetricNameEmptyHelpIsLookup(t *testing.T) {
	src := `package obs2

import "kwagg/internal/obs"

func register(r *obs.Registry) {
	r.Counter("kwagg_widgets_total", "Widgets made.").Inc()
}

func read(r *obs.Registry) uint64 {
	return r.Counter("kwagg_widgets_total", "").Value()
}
`
	wantNone(t, check(t, "kwagg/internal/obs2", src, MetricName()))
}
