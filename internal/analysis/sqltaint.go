package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SQLTaint enforces the escaping discipline of the backend seam: every
// string that reaches rendered SQL text (a builder feeding sqlast/render
// output, an exported script) or a database execution call must originate
// from the designated sanitizers — render.Ident / render.Literal /
// placeholder parameters / strconv — never from raw identifier or value data
// via fmt.Sprintf or string concatenation.
//
// Raw data is tainted at its source: plain-string fields read off sqlast
// nodes (table/column/alias names arrive from user keywords), String()
// results of sqlast nodes (debug formatting, not SQL escaping), and values
// read out of relation tuples. Taint propagates through assignment,
// concatenation, fmt/strings formatting, conversions and — interprocedurally
// — through per-function summaries (param→return, param→sink,
// tainted-return). Sanitizer results are clean by definition; sanitizer
// bodies are exempt (they write raw bytes by design — that is their job).
// Closed token-set types (sqlast.CmpOp, sqlast.AggFunc) are not tainted:
// their values are compile-time constants, not user data.
func SQLTaint() *Analyzer {
	t := &taintState{}
	return &Analyzer{
		Name: "sqltaint",
		Doc:  "strings reaching rendered SQL or database execution must come from render.Ident/render.Literal/placeholders, never Sprintf/concatenation of raw data",
		Run: func(pkg *Pkg) []Diagnostic {
			t.pkgs = append(t.pkgs, pkg)
			return nil
		},
		Finish: t.finish,
	}
}

const sqlastPkgPath = "kwagg/internal/sqlast"

// sqltaintScope is where SQL text is produced and executed. Other packages
// never hold rendered SQL, so the rule (and its summaries) live here.
var sqltaintScope = map[string]bool{
	"kwagg/internal/sqlast/render":     true,
	"kwagg/internal/backend":           true,
	"kwagg/internal/backend/sqlitecli": true,
}

// sqltaintSanitizers are the designated escaping seams, by "pkg.func" (the
// receiver is immaterial — the names are unique within their packages).
var sqltaintSanitizers = map[string]bool{
	"kwagg/internal/sqlast/render.SQL":             true,
	"kwagg/internal/sqlast/render.Params":          true,
	"kwagg/internal/sqlast/render.Ident":           true,
	"kwagg/internal/sqlast/render.Literal":         true,
	"kwagg/internal/sqlast/render.ident":           true,
	"kwagg/internal/sqlast/render.col":             true,
	"kwagg/internal/sqlast/render.literal":         true,
	"kwagg/internal/sqlast/render.float":           true,
	"kwagg/internal/sqlast/render.stringLit":       true,
	"kwagg/internal/sqlast/render.value":           true,
	"kwagg/internal/backend/sqlitecli.interpolate": true,
	"kwagg/internal/backend/sqlitecli.literal":     true,
}

// sqltaintExemptBodies are the sanitizer implementations themselves: they
// write raw quoted bytes because escaping is what they do.
var sqltaintExemptBodies = sqltaintSanitizers

type taintSummary struct {
	retTainted   bool         // returns tainted data regardless of arguments
	retFromParam map[int]bool // param i taints the return value
	paramToSink  map[int]bool // param i reaches a sink unsanitized
}

type taintState struct {
	pkgs      []*Pkg
	prog      *Program
	summaries map[*FuncNode]*taintSummary
}

func (t *taintState) finish() []Diagnostic {
	t.prog = NewProgram(t.pkgs)
	t.summaries = make(map[*FuncNode]*taintSummary)
	var scoped []*FuncNode
	for _, fn := range t.prog.Funcs {
		if sqltaintScope[fn.Pkg.Path] {
			scoped = append(scoped, fn)
			t.summaries[fn] = &taintSummary{retFromParam: make(map[int]bool), paramToSink: make(map[int]bool)}
		}
	}
	for round := 0; round < 3; round++ {
		changed := false
		for _, fn := range scoped {
			if t.updateSummary(fn) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	var diags []Diagnostic
	for _, fn := range scoped {
		if sqltaintExemptBodies[funcKeyOf(fn)] {
			continue
		}
		diags = append(diags, t.checkFunc(fn)...)
	}
	return diags
}

// funcKeyOf is "pkgpath.name" (receiver dropped), matching the sanitizer
// table's keys. Literals key under their synthesized name and never match.
func funcKeyOf(fn *FuncNode) string {
	if fn.Obj != nil {
		return fn.Pkg.Path + "." + fn.Obj.Name()
	}
	return fn.Name
}

// calleeKey resolves a call to "pkgpath.name" for sanitizer matching, for
// program and export-data functions alike.
func calleeKey(info *types.Info, call *ast.CallExpr) (string, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fnObj, ok := obj.(*types.Func)
	if !ok || fnObj.Pkg() == nil {
		return "", false
	}
	return fnObj.Pkg().Path() + "." + fnObj.Name(), true
}

// taintEval evaluates taintedness of expressions under an assumption set of
// tainted parameter variables (empty for the reporting pass).
type taintEval struct {
	st   *taintState
	fn   *FuncNode
	vars map[*types.Var]bool
}

func (t *taintState) newEval(fn *FuncNode, assume map[*types.Var]bool) *taintEval {
	ev := &taintEval{st: t, fn: fn, vars: make(map[*types.Var]bool)}
	for v := range assume {
		ev.vars[v] = true
	}
	// Propagate through local assignments until stable (bounded passes: the
	// bodies are straight-line builder code).
	for pass := 0; pass < 3; pass++ {
		changed := false
		inspectOwn(fn, func(n ast.Node) {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != len(st.Rhs) {
					return
				}
				for i := range st.Lhs {
					id, ok := st.Lhs[i].(*ast.Ident)
					if !ok {
						continue
					}
					v := objVar(fn.Pkg.Info, id)
					if v != nil && !ev.vars[v] && ev.tainted(st.Rhs[i]) {
						ev.vars[v] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if !ev.tainted(st.X) {
					return
				}
				if id, ok := st.Value.(*ast.Ident); ok {
					if v := objVar(fn.Pkg.Info, id); v != nil && !ev.vars[v] {
						ev.vars[v] = true
						changed = true
					}
				}
			}
		})
		if !changed {
			break
		}
	}
	return ev
}

// tainted reports whether the expression's value may be raw (unsanitized)
// identifier or value data.
func (ev *taintEval) tainted(expr ast.Expr) bool {
	info := ev.fn.Pkg.Info
	switch e := ast.Unparen(expr).(type) {
	case *ast.BasicLit:
		return false
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v != nil && ev.vars[v]
	case *ast.BinaryExpr:
		return ev.tainted(e.X) || ev.tainted(e.Y)
	case *ast.SelectorExpr:
		// Raw source: a plain-string field of an sqlast node (closed
		// token-set types like CmpOp/AggFunc are not plain string).
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			if typeFromPkg(s.Recv(), sqlastPkgPath) && isPlainString(info.TypeOf(expr)) {
				return true
			}
			if typeFromPkg(s.Recv(), relationPkgPath) && isPlainString(info.TypeOf(expr)) {
				return true
			}
		}
		return false
	case *ast.IndexExpr:
		// Raw source: a value read out of a relation tuple/row.
		if typeFromPkg(info.TypeOf(e.X), relationPkgPath) {
			return true
		}
		if named, ok := info.TypeOf(e.X).(*types.Named); ok && typeFromPkg(named, relationPkgPath) {
			return true
		}
		return ev.tainted(e.X)
	case *ast.TypeAssertExpr:
		return ev.tainted(e.X)
	case *ast.StarExpr:
		return ev.tainted(e.X)
	case *ast.CallExpr:
		return ev.taintedCall(e)
	}
	return false
}

func (ev *taintEval) taintedCall(call *ast.CallExpr) bool {
	info := ev.fn.Pkg.Info
	// Conversions: string(x), []byte(x) — taint follows the operand.
	if len(call.Args) == 1 {
		if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
			return ev.tainted(call.Args[0])
		}
	}
	if key, ok := calleeKey(info, call); ok {
		if sqltaintSanitizers[key] {
			return false
		}
		pkgPath := key[:strings.LastIndex(key, ".")]
		switch pkgPath {
		case "strconv":
			return false // numeric/quoted formatting of scalars
		case "fmt", "strings", "bytes":
			// Formatting propagates its inputs' taint.
			for _, a := range call.Args {
				if ev.tainted(a) {
					return true
				}
			}
			return false
		}
	}
	// sqlast String()/Pretty-style methods format raw names for debugging,
	// not for SQL: their results are tainted.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if typeFromPkg(s.Recv(), sqlastPkgPath) && isPlainString(info.TypeOf(call)) {
				return true
			}
		}
	}
	// Program callees: consult summaries.
	for _, callee := range ev.st.prog.Callees(ev.fn.Pkg, call) {
		sum := ev.st.summaries[callee]
		if sum == nil {
			continue
		}
		if sum.retTainted {
			return true
		}
		for i, arg := range callArgs(info, call, callee) {
			if sum.retFromParam[i] && ev.tainted(arg) {
				return true
			}
		}
	}
	return false
}

// sinkArgs returns the expressions a call must keep sanitized: builder
// writes that become SQL text and database execution arguments.
func sinkArgs(info *types.Info, call *ast.CallExpr) (string, []ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		named := namedDeref(s.Recv())
		if named == nil || named.Obj().Pkg() == nil {
			return "", nil
		}
		owner := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		switch owner {
		case "strings.Builder", "bytes.Buffer":
			switch sel.Sel.Name {
			case "WriteString", "Write", "WriteRune":
				return "SQL text builder write", call.Args
			}
		case "database/sql.DB", "database/sql.Tx", "database/sql.Conn", "database/sql.Stmt":
			switch sel.Sel.Name {
			case "Query", "QueryContext", "QueryRow", "QueryRowContext", "Exec", "ExecContext", "Prepare", "PrepareContext":
				return "database execution", call.Args
			}
		}
		return "", nil
	}
	// fmt.Fprintf(&b, ...) into a builder.
	if pn, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		if p, ok := info.Uses[pn].(*types.PkgName); ok && p.Imported().Path() == "fmt" &&
			strings.HasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 {
			return "SQL text builder write", call.Args[1:]
		}
	}
	return "", nil
}

// updateSummary recomputes fn's taint summary; reports change.
func (t *taintState) updateSummary(fn *FuncNode) bool {
	sum := t.summaries[fn]
	before := fmt.Sprint(sum.retTainted, len(sum.retFromParam), len(sum.paramToSink))
	params := paramVars(fn)
	byIndex := make(map[int]*types.Var)
	for v, i := range params {
		byIndex[i] = v
	}

	evalWith := func(assume map[*types.Var]bool) (retTainted, reachesSink bool) {
		ev := t.newEval(fn, assume)
		inspectOwn(fn, func(n ast.Node) {
			switch st := n.(type) {
			case *ast.ReturnStmt:
				for _, e := range st.Results {
					if isPlainStringOrAny(fn.Pkg.Info.TypeOf(e)) && ev.tainted(e) {
						retTainted = true
					}
				}
			case *ast.CallExpr:
				if _, args := sinkArgs(fn.Pkg.Info, st); args != nil {
					for _, a := range args {
						if ev.tainted(a) {
							reachesSink = true
						}
					}
				}
				for _, callee := range t.prog.Callees(fn.Pkg, st) {
					cs := t.summaries[callee]
					if cs == nil {
						continue
					}
					for i, arg := range callArgs(fn.Pkg.Info, st, callee) {
						if cs.paramToSink[i] && ev.tainted(arg) {
							reachesSink = true
						}
					}
				}
			}
		})
		return
	}

	// Base evaluation: no parameters assumed tainted.
	rt, _ := evalWith(nil)
	if rt {
		sum.retTainted = true
	}
	// Per-parameter evaluation for string-shaped parameters.
	for i := 0; i < len(byIndex); i++ {
		v := byIndex[i]
		if v == nil || !isPlainStringOrAny(v.Type()) {
			continue
		}
		if sum.retFromParam[i] && sum.paramToSink[i] {
			continue
		}
		prt, psink := evalWith(map[*types.Var]bool{v: true})
		if prt {
			sum.retFromParam[i] = true
		}
		if psink {
			sum.paramToSink[i] = true
		}
	}
	return fmt.Sprint(sum.retTainted, len(sum.retFromParam), len(sum.paramToSink)) != before
}

// checkFunc reports tainted expressions reaching sinks, with no parameters
// assumed tainted (callers are covered by the param→sink summaries).
func (t *taintState) checkFunc(fn *FuncNode) []Diagnostic {
	ev := t.newEval(fn, nil)
	var diags []Diagnostic
	report := func(n ast.Node, sink string) {
		diags = append(diags, Diagnostic{
			Analyzer: "sqltaint",
			Pos:      fn.Pkg.Fset.Position(n.Pos()),
			Message:  fmt.Sprintf("raw (unsanitized) string reaches %s in %s; route identifiers through render.Ident and values through render.Literal or placeholder params", sink, shortFuncName(fn)),
		})
	}
	inspectOwn(fn, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if sink, args := sinkArgs(fn.Pkg.Info, call); args != nil {
			for _, a := range args {
				if ev.tainted(a) {
					report(a, sink)
				}
			}
			return
		}
		for _, callee := range t.prog.Callees(fn.Pkg, call) {
			cs := t.summaries[callee]
			if cs == nil || sqltaintSanitizers[funcKeyOf(callee)] {
				continue
			}
			for i, arg := range callArgs(fn.Pkg.Info, call, callee) {
				if cs.paramToSink[i] && ev.tainted(arg) {
					report(arg, fmt.Sprintf("a sink inside %s (parameter %d)", shortFuncName(callee), i))
				}
			}
		}
	})
	return diags
}

// isPlainString reports whether t is the predeclared string type (not a
// named string type, whose values are closed token sets).
func isPlainString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isPlainStringOrAny also admits interface{} values (relation.Value data)
// and byte slices.
func isPlainStringOrAny(t types.Type) bool {
	if t == nil {
		return false
	}
	if isPlainString(t) {
		return true
	}
	if iface, ok := t.Underlying().(*types.Interface); ok && iface.Empty() {
		return true
	}
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if b, ok := sl.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
			return true
		}
	}
	return false
}
