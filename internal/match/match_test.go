package match

import (
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/keyword"
	"kwagg/internal/normalize"
	"kwagg/internal/orm"
	"kwagg/internal/relation"
)

func uniMatcher(t *testing.T) *Matcher {
	t.Helper()
	db := university.New()
	g, err := orm.Build(db.Schemas())
	if err != nil {
		t.Fatal(err)
	}
	return New(db, db.Schemas(), g, nil)
}

func basic(text string) keyword.Term { return keyword.Term{Text: text, Kind: keyword.Basic} }
func quoted(text string) keyword.Term {
	return keyword.Term{Text: text, Kind: keyword.Basic, Quoted: true}
}

func kinds(tags []Tag) map[Kind]int {
	out := make(map[Kind]int)
	for _, tg := range tags {
		out[tg.Kind]++
	}
	return out
}

func TestMatchRelationName(t *testing.T) {
	m := uniMatcher(t)
	tags := m.Match(basic("Student"))
	found := false
	for _, tg := range tags {
		if tg.Kind == RelationName && tg.Relation == "Student" {
			found = true
		}
	}
	if !found {
		t.Errorf("Student should match the relation name: %v", tags)
	}
}

func TestMatchPlural(t *testing.T) {
	m := uniMatcher(t)
	tags := m.Match(basic("students"))
	if len(tags) == 0 || tags[0].Kind != RelationName {
		t.Errorf("plural should match relation name: %v", tags)
	}
}

func TestMatchAttributeName(t *testing.T) {
	m := uniMatcher(t)
	tags := m.Match(basic("Credit"))
	if len(tags) != 1 || tags[0].Kind != AttrName || tags[0].Relation != "Course" || tags[0].Attr != "Credit" {
		t.Errorf("Credit tags: %v", tags)
	}
}

func TestMatchValueCountsObjects(t *testing.T) {
	m := uniMatcher(t)
	tags := m.Match(basic("Green"))
	if len(tags) != 1 {
		t.Fatalf("Green tags: %v", tags)
	}
	tg := tags[0]
	if tg.Kind != Value || tg.Relation != "Student" || tg.Attr != "Sname" {
		t.Errorf("Green tag: %+v", tg)
	}
	if tg.NumObjects != 2 {
		t.Errorf("two students are called Green, got %d", tg.NumObjects)
	}
}

func TestMatchAmbiguousTerm(t *testing.T) {
	m := uniMatcher(t)
	// George is a student name and a lecturer name.
	tags := m.Match(basic("George"))
	if len(tags) != 2 {
		t.Fatalf("George should have two value tags: %v", tags)
	}
	rels := map[string]bool{}
	for _, tg := range tags {
		rels[tg.Relation] = true
		if tg.NumObjects != 1 {
			t.Errorf("one object per relation for George, got %+v", tg)
		}
	}
	if !rels["Student"] || !rels["Lecturer"] {
		t.Errorf("George relations: %v", rels)
	}
}

func TestMatchQuotedSkipsMetadata(t *testing.T) {
	m := uniMatcher(t)
	// Quoted "Student" must not match the relation name, only values (none).
	tags := m.Match(quoted("Student"))
	if k := kinds(tags); k[RelationName] != 0 || k[AttrName] != 0 {
		t.Errorf("quoted term matched metadata: %v", tags)
	}
}

func TestMatchPhrase(t *testing.T) {
	m := uniMatcher(t)
	tags := m.Match(quoted("Programming Language"))
	if len(tags) != 1 || tags[0].Relation != "Textbook" || tags[0].Attr != "Tname" {
		t.Errorf("phrase tags: %v", tags)
	}
}

func TestMatchOperatorsExcluded(t *testing.T) {
	m := uniMatcher(t)
	if tags := m.Match(keyword.Term{Text: "COUNT", Kind: keyword.Aggregate}); tags != nil {
		t.Errorf("operator terms should not match: %v", tags)
	}
}

func TestMatchNothing(t *testing.T) {
	m := uniMatcher(t)
	if tags := m.Match(basic("zzzznothing")); len(tags) != 0 {
		t.Errorf("expected no tags: %v", tags)
	}
}

func TestCountObjectsSubstring(t *testing.T) {
	m := uniMatcher(t)
	// "Data" matches both the course "Database" title and the textbook
	// "Database Management": per-relation counts must be separate.
	tags := m.Match(basic("Database"))
	byRel := map[string]int{}
	for _, tg := range tags {
		byRel[tg.Relation] = tg.NumObjects
	}
	if byRel["Course"] != 1 || byRel["Textbook"] != 1 {
		t.Errorf("per-relation object counts: %v", byRel)
	}
}

// TestMatchUnnormalizedView: matching against the Figure 8 database resolves
// terms to the normalized view's relations while counting objects in the
// stored Enrolment relation.
func TestMatchUnnormalizedView(t *testing.T) {
	db := university.NewEnrolment()
	view, err := normalize.BuildView(db, university.EnrolmentHints())
	if err != nil {
		t.Fatal(err)
	}
	g, err := orm.Build(view.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	m := New(db, view.Schemas, g, view.Sources)

	// Metadata terms match the view relation names (Student, Course, Enrol).
	tags := m.Match(basic("Student"))
	if len(tags) == 0 || tags[0].Kind != RelationName || tags[0].Relation != "Student" {
		t.Errorf("Student should match the view relation: %v", tags)
	}

	// Value terms are found in the stored relation but reported against the
	// view relation holding the attribute, with per-object counts.
	tags = m.Match(basic("Green"))
	var studentTag *Tag
	for i := range tags {
		if tags[i].Relation == "Student" {
			studentTag = &tags[i]
		}
	}
	if studentTag == nil {
		t.Fatalf("Green should map to the Student view relation: %v", tags)
	}
	if studentTag.NumObjects != 2 {
		t.Errorf("two distinct Sid match Green, got %d", studentTag.NumObjects)
	}
	if m.SourceOf("Student") != "Enrolment" {
		t.Errorf("SourceOf(Student) = %q", m.SourceOf("Student"))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{RelationName: "relation", AttrName: "attribute", Value: "value"} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", k, k.String())
		}
	}
}

// TestComponentRelationMatching: terms matching a component relation's name
// or attributes resolve to the owner node.
func TestComponentRelationMatching(t *testing.T) {
	db := university.New()
	tags := db.AddSchema(relation.NewSchema("CourseTag", "Code", "Tag").
		Key("Code", "Tag").Ref([]string{"Code"}, "Course"))
	tags.MustInsert("c1", "programming")
	g, err := orm.Build(db.Schemas())
	if err != nil {
		t.Fatal(err)
	}
	m := New(db, db.Schemas(), g, nil)

	// The component relation name maps to the owner node.
	got := m.Match(basic("CourseTag"))
	if len(got) == 0 || got[0].Node != "Course" || got[0].Relation != "CourseTag" {
		t.Errorf("component name tags: %v", got)
	}
	// A component attribute maps to the owner node too.
	got = m.Match(basic("Tag"))
	found := false
	for _, tg := range got {
		if tg.Kind == AttrName && tg.Node == "Course" && tg.Relation == "CourseTag" {
			found = true
		}
	}
	if !found {
		t.Errorf("component attribute tags: %v", got)
	}
	// Values stored in the component match with the owner node.
	got = m.Match(basic("programming"))
	found = false
	for _, tg := range got {
		if tg.Kind == Value && tg.Node == "Course" && tg.Relation == "CourseTag" {
			found = true
		}
	}
	if !found {
		t.Errorf("component value tags: %v", got)
	}
}

// TestNewWithIndexReusesIndex pins the epoch-reopen seam: a Matcher built
// around an existing inverted index (as core.openSystem does after an
// incremental commit) serves it back via Index and matches through it, and
// a nil index falls back to a fresh BuildIndex.
func TestNewWithIndexReusesIndex(t *testing.T) {
	db := university.New()
	g, err := orm.Build(db.Schemas())
	if err != nil {
		t.Fatal(err)
	}
	idx := relation.BuildIndex(db)
	m := NewWithIndex(db, db.Schemas(), g, nil, idx)
	if m.Index() != idx {
		t.Fatal("NewWithIndex did not retain the supplied index")
	}
	if got := kinds(m.Match(basic("Green")))[Value]; got == 0 {
		t.Fatal("matcher with a supplied index found no value match for Green")
	}
	if fresh := uniMatcher(t).Index(); fresh == nil {
		t.Fatal("nil-index construction left Index nil")
	}
}
