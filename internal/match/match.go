// Package match resolves basic query terms to their interpretations (tags):
// a term can match a relation name, an attribute name, or tuple values of
// some attribute (Section 2). Matching is performed against the metadata of
// the schema the ORM graph was built on — the database schema itself, or the
// normalized view D' when the database is unnormalized (Algorithm 2, lines
// 15-19) — while tuple values are always looked up in the stored data.
package match

import (
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/keyword"
	"kwagg/internal/orm"
	"kwagg/internal/relation"
)

// Kind says what a term matched.
type Kind int

// Match kinds.
const (
	// RelationName: the term equals the name of a relation.
	RelationName Kind = iota
	// AttrName: the term equals the name of an attribute.
	AttrName
	// Value: the term is contained in values of some attribute.
	Value
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case RelationName:
		return "relation"
	case AttrName:
		return "attribute"
	case Value:
		return "value"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Tag is one interpretation of one basic term.
type Tag struct {
	Term     string
	Node     string // ORM graph node the interpretation refers to
	Relation string // the (view) relation matched: the node's relation or one of its components
	Kind     Kind
	Attr     string // matched attribute (AttrName and Value kinds)
	// NumObjects is the number of distinct objects/relationships whose
	// attribute value contains the term (Value kind only). Pattern
	// disambiguation forks a GROUPBY(id) copy when NumObjects > 1.
	NumObjects int
}

// String renders the tag for diagnostics.
func (t Tag) String() string {
	switch t.Kind {
	case RelationName:
		return fmt.Sprintf("%s=relation:%s", t.Term, t.Relation)
	case AttrName:
		return fmt.Sprintf("%s=attribute:%s.%s", t.Term, t.Relation, t.Attr)
	default:
		return fmt.Sprintf("%s=value:%s.%s(x%d)", t.Term, t.Relation, t.Attr, t.NumObjects)
	}
}

// Matcher matches terms against one database (and, for unnormalized
// databases, its normalized view).
type Matcher struct {
	data    *relation.Database
	meta    []*relation.Schema
	graph   *orm.Graph
	sources map[string]string // lower(view relation) -> data relation
	byData  map[string][]*relation.Schema
	idx     *relation.InvertedIndex
}

// New creates a matcher. meta lists the schemas terms are matched against
// (the schemas the ORM graph g was built from); data holds the stored
// tuples. sources maps each meta relation to the data relation its tuples
// are projected from — pass nil when meta and data relations coincide
// (normalized databases).
func New(data *relation.Database, meta []*relation.Schema, g *orm.Graph, sources map[string]string) *Matcher {
	return NewWithIndex(data, meta, g, sources, nil)
}

// NewWithIndex is New with a pre-built inverted index over data — the
// incremental epoch commit patches the previous epoch's index with only the
// new rows (relation.InvertedIndex.AppendRows) instead of re-tokenizing
// every stored value. idx must equal relation.BuildIndex(data); pass nil to
// build it here.
func NewWithIndex(data *relation.Database, meta []*relation.Schema, g *orm.Graph, sources map[string]string, idx *relation.InvertedIndex) *Matcher {
	if idx == nil {
		idx = relation.BuildIndex(data)
	}
	m := &Matcher{
		data:    data,
		meta:    meta,
		graph:   g,
		sources: make(map[string]string),
		byData:  make(map[string][]*relation.Schema),
		idx:     idx,
	}
	for _, s := range meta {
		src := s.Name
		if sources != nil {
			if d, ok := sources[strings.ToLower(s.Name)]; ok {
				src = d
			}
		}
		m.sources[strings.ToLower(s.Name)] = src
		m.byData[strings.ToLower(src)] = append(m.byData[strings.ToLower(src)], s)
	}
	return m
}

// Graph returns the ORM graph the matcher resolves nodes against.
func (m *Matcher) Graph() *orm.Graph { return m.graph }

// Index returns the inverted keyword index the matcher answers value terms
// from; the live-ingest commit path reads it to patch the next epoch's index
// incrementally. Immutable — read only.
func (m *Matcher) Index() *relation.InvertedIndex { return m.idx }

// Data returns the database holding the stored tuples.
func (m *Matcher) Data() *relation.Database { return m.data }

// SourceOf returns the data relation holding the tuples of the given meta
// relation.
func (m *Matcher) SourceOf(metaRel string) string {
	if s, ok := m.sources[strings.ToLower(metaRel)]; ok {
		return s
	}
	return metaRel
}

// nameMatches reports whether term matches name, tolerating a trailing
// plural 's' on either side (e.g. term "order" matches relation "Orders").
func nameMatches(term, name string) bool {
	if strings.EqualFold(term, name) {
		return true
	}
	lt, ln := strings.ToLower(term), strings.ToLower(name)
	return lt+"s" == ln || lt == ln+"s"
}

// Match returns every interpretation of a basic term, deterministically
// ordered: relation-name matches first, then attribute-name matches, then
// value matches, each in schema declaration order. Quoted terms skip
// metadata matching (they are value phrases by construction).
func (m *Matcher) Match(t keyword.Term) []Tag {
	if t.Kind != keyword.Basic {
		return nil
	}
	var tags []Tag
	if !t.Quoted {
		for _, s := range m.meta {
			node := m.graph.NodeOfRelation(s.Name)
			if node == nil {
				continue
			}
			if nameMatches(t.Text, s.Name) {
				tags = append(tags, Tag{Term: t.Text, Node: node.Name, Relation: s.Name, Kind: RelationName})
			}
			for _, a := range s.Attributes {
				if nameMatches(t.Text, a.Name) {
					tags = append(tags, Tag{Term: t.Text, Node: node.Name, Relation: s.Name, Kind: AttrName, Attr: a.Name})
				}
			}
		}
	}
	tags = append(tags, m.valueTags(t.Text)...)
	return tags
}

// valueTags finds the attributes whose stored values contain the term and
// counts the distinct objects per (view relation, attribute).
func (m *Matcher) valueTags(term string) []Tag {
	postings := m.idx.LookupPhrase(m.data, term)
	// (data relation, attr) -> rows
	type key struct{ rel, attr string }
	rows := make(map[key][]int)
	var order []key
	for _, p := range postings {
		k := key{strings.ToLower(p.Relation), strings.ToLower(p.Attr)}
		if _, ok := rows[k]; !ok {
			order = append(order, k)
		}
		rows[k] = append(rows[k], p.Row)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].rel != order[j].rel {
			return order[i].rel < order[j].rel
		}
		return order[i].attr < order[j].attr
	})
	var tags []Tag
	for _, k := range order {
		dataTable := m.data.Table(k.rel)
		if dataTable == nil {
			continue
		}
		for _, vs := range m.byData[k.rel] {
			if !vs.HasAttr(k.attr) {
				continue
			}
			node := m.graph.NodeOfRelation(vs.Name)
			if node == nil {
				continue
			}
			attrName := vs.Attributes[vs.AttrIndex(k.attr)].Name
			tags = append(tags, Tag{
				Term:       term,
				Node:       node.Name,
				Relation:   vs.Name,
				Kind:       Value,
				Attr:       attrName,
				NumObjects: m.CountObjects(vs, attrName, term),
			})
		}
	}
	return tags
}

// CountObjects counts the distinct objects of the (view) relation vs whose
// attribute attr contains term, reading tuples from the relation's data
// source. This implements the |T| > 1 test of Algorithm 3 line 18.
func (m *Matcher) CountObjects(vs *relation.Schema, attr, term string) int {
	dataTable := m.data.Table(m.SourceOf(vs.Name))
	if dataTable == nil {
		return 0
	}
	ai := dataTable.Schema.AttrIndex(attr)
	if ai < 0 {
		return 0
	}
	keyIdx := make([]int, 0, len(vs.PrimaryKey))
	for _, ka := range vs.PrimaryKey {
		ki := dataTable.Schema.AttrIndex(ka)
		if ki < 0 {
			return 0
		}
		keyIdx = append(keyIdx, ki)
	}
	seen := make(map[string]bool)
	for _, tu := range dataTable.Tuples {
		s, ok := tu[ai].(string)
		if !ok || !relation.ContainsFold(s, term) {
			continue
		}
		parts := make([]string, len(keyIdx))
		for i, ki := range keyIdx {
			parts[i] = relation.Format(tu[ki])
		}
		seen[strings.Join(parts, "\x1f")] = true
	}
	return len(seen)
}
