package experiments

import (
	"testing"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
)

func runAll(t *testing.T, s *Setup, queries []Query) {
	t.Helper()
	for _, q := range queries {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			row, err := s.Run(q)
			if err != nil {
				t.Fatalf("%s %s: %v", s.Label, q.ID, err)
			}
			if !row.ShapeOK {
				t.Fatalf("%s %s shape %v failed: %s\nours: %s (%d rows %v)\nsqak: %s (%d rows %v, err %v)",
					s.Label, q.ID, row.ShapeWanted, row.ShapeNote,
					row.OursSQL, row.OursRows, row.OursSample,
					row.SQAKSQL, row.SQAKRows, row.SQAKSample, row.SQAKErr)
			}
		})
	}
}

// TestTable5 runs T1-T8 on the normalized TPCH database and checks the
// answer shapes of Table 5.
func TestTable5(t *testing.T) {
	s, err := NewTPCH(tpch.Default())
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, s, QueriesTPCH())
}

// TestTable6 runs A1-A8 on the normalized ACMDL database and checks the
// answer shapes of Table 6.
func TestTable6(t *testing.T) {
	s, err := NewACMDL(acmdl.Default())
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, s, QueriesACMDL())
}

// TestTable8 runs T1-T8 on the unnormalized TPCH' database (Table 7) and
// checks the shapes of Table 8.
func TestTable8(t *testing.T) {
	s, err := NewTPCHUnnormalized(tpch.Default())
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, s, QueriesTPCH())
}

// TestTable9 runs A1-A8 on the unnormalized ACMDL' database and checks the
// shapes of Table 9.
func TestTable9(t *testing.T) {
	s, err := NewACMDLUnnormalized(acmdl.Default())
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, s, QueriesACMDL())
}

// TestFigure11Timings: generation timing must succeed for every query and
// record SQAK's N.A. notes where applicable.
func TestFigure11Timings(t *testing.T) {
	s, err := NewTPCH(tpch.Small())
	if err != nil {
		t.Fatal(err)
	}
	ts, err := s.TimeGeneration(QueriesTPCH(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 8 {
		t.Fatalf("timings: %d", len(ts))
	}
	for _, tm := range ts {
		if tm.Ours <= 0 {
			t.Errorf("%s: non-positive semantic timing", tm.Query.ID)
		}
		switch tm.Query.ID {
		case "T7", "T8":
			if tm.SQAKNote == "" {
				t.Errorf("%s: SQAK N.A. note missing", tm.Query.ID)
			}
		}
	}
}

// TestWorkloadsComplete: both workloads have 8 queries with unique ids and
// non-empty descriptions, and every query declares both shapes.
func TestWorkloadsComplete(t *testing.T) {
	for _, qs := range [][]Query{QueriesTPCH(), QueriesACMDL()} {
		if len(qs) != 8 {
			t.Fatalf("workload size: %d", len(qs))
		}
		seen := map[string]bool{}
		for _, q := range qs {
			if seen[q.ID] {
				t.Errorf("duplicate id %s", q.ID)
			}
			seen[q.ID] = true
			if q.Keywords == "" || q.Description == "" {
				t.Errorf("%s: incomplete query spec", q.ID)
			}
		}
	}
}

// TestShapeStrings: every shape renders a distinct label.
func TestShapeStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range []Shape{Agree, OursPerObject, SQAKOvercounts, SQAKNA} {
		if seen[s.String()] {
			t.Errorf("duplicate shape label %q", s)
		}
		seen[s.String()] = true
	}
}

// TestUniversitySetup: the running-example setup answers Q1 end to end.
func TestUniversitySetup(t *testing.T) {
	s, err := NewUniversity()
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Ours.BestAnswer("Green SUM Credit", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Result.Rows) != 2 {
		t.Errorf("Q1 per-object answers: %v", a.Result.Rows)
	}
}

// TestShapesRobustToSeed: the reported shapes do not depend on the default
// RNG seed — the collision structure is planted, not sampled.
func TestShapesRobustToSeed(t *testing.T) {
	tcfg := tpch.Default()
	tcfg.Seed = 20160315
	s, err := NewTPCH(tcfg)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, s, QueriesTPCH())

	acfg := acmdl.Default()
	acfg.Seed = 20160318
	sa, err := NewACMDL(acfg)
	if err != nil {
		t.Fatal(err)
	}
	runAll(t, sa, QueriesACMDL())
}

// TestTimeExecution: execution timing is measured for the selected
// interpretation of every query.
func TestTimeExecution(t *testing.T) {
	s, err := NewTPCH(tpch.Small())
	if err != nil {
		t.Fatal(err)
	}
	ts, err := s.TimeExecution(QueriesTPCH()[:3], 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range ts {
		if tm.OursExec <= 0 {
			t.Errorf("%s: missing execution timing", tm.Query.ID)
		}
	}
}

// TestShapeValidatorDetectsMismatches: the harness itself must flag rows
// whose measured behaviour contradicts the declared shape (guarding the
// guard).
func TestShapeValidatorDetectsMismatches(t *testing.T) {
	s, err := NewTPCH(tpch.Small())
	if err != nil {
		t.Fatal(err)
	}
	// T1 declared as SQAK-N.A.: SQAK actually answers it, so the shape
	// check must fail.
	wrong := Query{ID: "X1", Keywords: "order AVG amount", Shape: SQAKNA, ShapeUnnorm: SQAKNA}
	row, err := s.Run(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if row.ShapeOK {
		t.Error("declared-N.A. query answered by SQAK must be flagged")
	}
	// T7 declared as Agree: SQAK cannot answer it, so Agree must fail.
	wrong = Query{ID: "X2", Keywords: "COUNT order SUM amount GROUPBY mktsegment",
		PickFrags: []string{"COUNT(", "SUM("}, Shape: Agree, ShapeUnnorm: Agree}
	row, err = s.Run(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if row.ShapeOK {
		t.Error("declared-Agree query SQAK fails on must be flagged")
	}
	// A per-object claim where both systems agree must fail.
	wrong = Query{ID: "X3", Keywords: "order AVG amount", Shape: OursPerObject, ShapeUnnorm: OursPerObject}
	row, err = s.Run(wrong)
	if err != nil {
		t.Fatal(err)
	}
	if row.ShapeOK {
		t.Error("per-object claim with equal row counts must be flagged")
	}
}
