package experiments

import (
	"fmt"
	"testing"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/relation"
)

// aggMultiset extracts the multiset of final-column (aggregate) values of
// the chosen answer.
func aggMultiset(t *testing.T, s *Setup, q Query) map[string]int {
	t.Helper()
	a, err := s.Ours.BestAnswer(q.Keywords, 0, pickFrags(q.PickFrags))
	if err != nil {
		t.Fatalf("%s %s: %v", s.Label, q.ID, err)
	}
	out := make(map[string]int)
	for _, row := range a.Result.Rows {
		v := row[len(row)-1]
		// Canonicalize floats: summation order differs between the
		// normalized joins and the rewritten single-relation plans.
		if f, ok := relation.AsFloat(v); ok {
			out[fmt.Sprintf("%.6g", f)]++
		} else {
			out[relation.Format(v)]++
		}
	}
	return out
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestOursInvariantUnderDenormalization checks the headline claim of Tables
// 8 and 9: the semantic approach returns the same answers on the
// denormalized databases as on the normalized ones, for every query.
func TestOursInvariantUnderDenormalization(t *testing.T) {
	cases := []struct {
		name         string
		norm, denorm *Setup
		queries      []Query
	}{}

	tn, err := NewTPCH(tpch.Default())
	if err != nil {
		t.Fatal(err)
	}
	tu, err := NewTPCHUnnormalized(tpch.Default())
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name         string
		norm, denorm *Setup
		queries      []Query
	}{"TPCH", tn, tu, QueriesTPCH()})

	an, err := NewACMDL(acmdl.Default())
	if err != nil {
		t.Fatal(err)
	}
	au, err := NewACMDLUnnormalized(acmdl.Default())
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, struct {
		name         string
		norm, denorm *Setup
		queries      []Query
	}{"ACMDL", an, au, QueriesACMDL()})

	for _, c := range cases {
		for _, q := range c.queries {
			q := q
			t.Run(c.name+"/"+q.ID, func(t *testing.T) {
				a := aggMultiset(t, c.norm, q)
				b := aggMultiset(t, c.denorm, q)
				if !sameMultiset(a, b) {
					t.Fatalf("answers drift under denormalization:\nnormalized:   %v\ndenormalized: %v", a, b)
				}
			})
		}
	}
}
