// Package experiments encodes the paper's evaluation (Section 6): the TPCH
// workload T1-T8 (Table 3), the ACMDL workload A1-A8 (Table 4), runners that
// execute each query through both the semantic approach and the SQAK
// baseline, the expected answer shapes of Tables 5, 6, 8 and 9, and the
// SQL-generation timing series of Figure 11.
package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"kwagg/internal/core"
	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
	"kwagg/internal/sqak"
	"kwagg/internal/sqldb"
)

// Shape describes the expected relationship between the two systems'
// answers for one query, as reported in the paper's result tables.
type Shape int

// Answer shapes.
const (
	// Agree: both systems return the same (correct) answer.
	Agree Shape = iota
	// OursPerObject: the semantic approach returns one answer per matching
	// object while SQAK merges them into fewer rows.
	OursPerObject
	// SQAKOvercounts: both return comparable rows but SQAK's counts are
	// inflated by duplicates of objects in relationships.
	SQAKOvercounts
	// SQAKNA: SQAK cannot express the query (self joins or more than one
	// aggregate expression).
	SQAKNA
)

// String names the shape as the paper's tables phrase it.
func (s Shape) String() string {
	switch s {
	case Agree:
		return "both correct"
	case OursPerObject:
		return "SQAK merges same-value objects"
	case SQAKOvercounts:
		return "SQAK counts relationship duplicates"
	case SQAKNA:
		return "SQAK N.A."
	default:
		return fmt.Sprintf("Shape(%d)", int(s))
	}
}

// Query is one evaluation query.
type Query struct {
	ID          string
	Keywords    string
	Description string
	// PickFrags selects, among the ranked interpretations, the one matching
	// the paper's description: the first interpretation whose SQL contains
	// every fragment is used (the paper likewise uses "the generated SQL
	// statements that best match the query descriptions").
	PickFrags []string
	// Shape on the normalized database and on the unnormalized variant.
	Shape       Shape
	ShapeUnnorm Shape
}

// QueriesTPCH returns Table 3.
func QueriesTPCH() []Query {
	return []Query{
		{ID: "T1", Keywords: "order AVG amount",
			Description: "Find the average amount of orders",
			Shape:       Agree, ShapeUnnorm: SQAKOvercounts},
		{ID: "T2", Keywords: "MAX COUNT order GROUPBY nation",
			Description: "Find the maximum number of orders among nations",
			PickFrags:   []string{"MAX(", "COUNT("},
			Shape:       Agree, ShapeUnnorm: SQAKOvercounts},
		{ID: "T3", Keywords: `COUNT order "royal olive"`,
			Description: "Find the number of orders that contains the \"royal olive\"",
			PickFrags:   []string{"COUNT(", "GROUP BY", "partkey"},
			Shape:       OursPerObject, ShapeUnnorm: OursPerObject},
		{ID: "T4", Keywords: `supplier MAX acctbal "yellow tomato"`,
			Description: "Find the maximum balance of suppliers that supply the \"yellow tomato\"",
			PickFrags:   []string{"MAX(", "GROUP BY", "partkey"},
			Shape:       OursPerObject, ShapeUnnorm: OursPerObject},
		{ID: "T5", Keywords: `COUNT supplier "Indian black chocolate"`,
			Description: "Find the number of suppliers for \"Indian black chocolate\"",
			PickFrags:   []string{"COUNT(", "DISTINCT"},
			Shape:       SQAKOvercounts, ShapeUnnorm: SQAKOvercounts},
		{ID: "T6", Keywords: "COUNT part GROUPBY supplier",
			Description: "Find the number of parts supplied by each supplier",
			PickFrags:   []string{"COUNT(", "GROUP BY", "suppkey", "DISTINCT"},
			Shape:       SQAKOvercounts, ShapeUnnorm: SQAKOvercounts},
		{ID: "T7", Keywords: "COUNT order SUM amount GROUPBY mktsegment",
			Description: "Find the number of orders and their total amount for each market segment",
			PickFrags:   []string{"COUNT(", "SUM(", "GROUP BY", "mktsegment"},
			Shape:       SQAKNA, ShapeUnnorm: SQAKNA},
		{ID: "T8", Keywords: `COUNT supplier "pink rose" "white rose"`,
			Description: "Find the number of suppliers for \"pink rose\" and \"white rose\"",
			PickFrags:   []string{"COUNT(", "GROUP BY", "partkey"},
			Shape:       SQAKNA, ShapeUnnorm: SQAKNA},
	}
}

// QueriesACMDL returns Table 4.
func QueriesACMDL() []Query {
	return []Query{
		{ID: "A1", Keywords: "proceeding AVG pages",
			Description: "Find the average pages of proceedings",
			Shape:       Agree, ShapeUnnorm: SQAKOvercounts},
		{ID: "A2", Keywords: "COUNT paper GROUPBY proceeding SIGMOD",
			Description: "Find the number of papers in each 'SIGMOD' proceeding",
			PickFrags:   []string{"COUNT(", "GROUP BY", "procid"},
			Shape:       Agree, ShapeUnnorm: SQAKOvercounts},
		{ID: "A3", Keywords: "COUNT proceeding editor Smith",
			Description: "Find the number of proceedings edited by 'Smith'",
			PickFrags:   []string{"COUNT(", "GROUP BY", "editorid"},
			Shape:       OursPerObject, ShapeUnnorm: OursPerObject},
		{ID: "A4", Keywords: "paper MAX date Gill",
			Description: "Find the date of the latest papers written by 'Gill'",
			PickFrags:   []string{"MAX(", "GROUP BY", "authorid"},
			Shape:       OursPerObject, ShapeUnnorm: OursPerObject},
		{ID: "A5", Keywords: `COUNT author "database tuning"`,
			Description: "Find the number of authors for each \"database tuning\" paper",
			PickFrags:   []string{"COUNT(", "GROUP BY", "paperid"},
			Shape:       OursPerObject, ShapeUnnorm: OursPerObject},
		{ID: "A6", Keywords: "COUNT paper MAX date IEEE",
			Description: "Find the number of papers published by 'IEEE' and most recent date",
			PickFrags:   []string{"COUNT(", "MAX(", "GROUP BY", "publisherid"},
			Shape:       SQAKNA, ShapeUnnorm: SQAKNA},
		{ID: "A7", Keywords: "COUNT paper author John Mary",
			Description: "Find the number of papers co-authored by 'John' and 'Mary'",
			PickFrags:   []string{"COUNT(", "GROUP BY", "authorid"},
			Shape:       SQAKNA, ShapeUnnorm: SQAKNA},
		{ID: "A8", Keywords: "COUNT editor SIGIR CIKM",
			Description: "Find the number of editors that edit proceedings 'SIGIR' and 'CIKM'",
			PickFrags:   []string{"COUNT(", "GROUP BY", "procid"},
			Shape:       SQAKNA, ShapeUnnorm: SQAKNA},
	}
}

// Setup bundles the two systems over one database configuration.
type Setup struct {
	Label string
	Ours  *core.System
	SQAK  *sqak.System
	// Unnormalized selects which expected shape applies.
	Unnormalized bool
}

// NewTPCH builds the normalized TPCH setup.
func NewTPCH(cfg tpch.Config) (*Setup, error) {
	db := tpch.New(cfg)
	sys, err := core.Open(db, nil)
	if err != nil {
		return nil, err
	}
	return &Setup{Label: "TPCH", Ours: sys, SQAK: sqak.New(db)}, nil
}

// NewTPCHUnnormalized builds the TPCH' setup of Table 7 over the same data.
func NewTPCHUnnormalized(cfg tpch.Config) (*Setup, error) {
	db := tpch.Denormalize(tpch.New(cfg))
	sys, err := core.Open(db, &core.Options{NameHints: tpch.NameHints()})
	if err != nil {
		return nil, err
	}
	if !sys.Unnormalized() {
		return nil, errors.New("experiments: TPCH' not detected as unnormalized")
	}
	return &Setup{Label: "TPCH'", Ours: sys, SQAK: sqak.New(db), Unnormalized: true}, nil
}

// NewACMDL builds the normalized ACMDL setup.
func NewACMDL(cfg acmdl.Config) (*Setup, error) {
	db := acmdl.New(cfg)
	sys, err := core.Open(db, nil)
	if err != nil {
		return nil, err
	}
	return &Setup{Label: "ACMDL", Ours: sys, SQAK: sqak.New(db)}, nil
}

// NewACMDLUnnormalized builds the ACMDL' setup of Table 7 over the same data.
func NewACMDLUnnormalized(cfg acmdl.Config) (*Setup, error) {
	db := acmdl.Denormalize(acmdl.New(cfg))
	sys, err := core.Open(db, &core.Options{NameHints: acmdl.NameHints()})
	if err != nil {
		return nil, err
	}
	if !sys.Unnormalized() {
		return nil, errors.New("experiments: ACMDL' not detected as unnormalized")
	}
	return &Setup{Label: "ACMDL'", Ours: sys, SQAK: sqak.New(db), Unnormalized: true}, nil
}

// NewUniversity builds the running-example setup over Figure 1.
func NewUniversity() (*Setup, error) {
	db := university.New()
	sys, err := core.Open(db, nil)
	if err != nil {
		return nil, err
	}
	return &Setup{Label: "University", Ours: sys, SQAK: sqak.New(db)}, nil
}

// Row is one line of a Table 5/6/8/9-style comparison.
type Row struct {
	Query       Query
	OursSQL     string
	OursRows    int
	OursSample  []string
	SQAKErr     error
	SQAKSQL     string
	SQAKRows    int
	SQAKSample  []string
	ShapeWanted Shape
	ShapeOK     bool
	ShapeNote   string
}

// Run executes one query through both systems and validates the expected
// shape.
func (s *Setup) Run(q Query) (*Row, error) {
	row := &Row{Query: q, ShapeWanted: q.Shape}
	if s.Unnormalized {
		row.ShapeWanted = q.ShapeUnnorm
	}

	ours, err := s.Ours.BestAnswer(q.Keywords, 0, pickFrags(q.PickFrags))
	if err != nil {
		return nil, fmt.Errorf("experiments %s: semantic approach failed: %w", q.ID, err)
	}
	row.OursSQL = ours.SQL.String()
	row.OursRows = len(ours.Result.Rows)
	row.OursSample = sample(ours.Result, 4)

	sres, ssql, serr := s.SQAK.Answer(q.Keywords)
	if serr != nil {
		row.SQAKErr = serr
	} else {
		row.SQAKSQL = ssql.String()
		row.SQAKRows = len(sres.Rows)
		row.SQAKSample = sample(sres, 4)
	}

	row.ShapeOK, row.ShapeNote = validate(row.ShapeWanted, ours, sres, serr)
	return row, nil
}

func pickFrags(frags []string) func(core.Interpretation) bool {
	if len(frags) == 0 {
		return nil
	}
	return func(in core.Interpretation) bool {
		sql := in.SQL.String()
		for _, f := range frags {
			if !strings.Contains(sql, f) {
				return false
			}
		}
		return true
	}
}

func sample(r *sqldb.Result, n int) []string {
	var out []string
	for i, row := range r.Rows {
		if i >= n {
			out = append(out, "...")
			break
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = relation.Format(v)
		}
		out = append(out, strings.Join(parts, ","))
	}
	return out
}

// lastNumeric extracts the last column of each row as float (the aggregate
// value in every generated statement).
func lastNumeric(r *sqldb.Result) []float64 {
	var out []float64
	for _, row := range r.Rows {
		if f, ok := relation.AsFloat(row[len(row)-1]); ok {
			out = append(out, f)
		}
	}
	return out
}

func validate(shape Shape, ours *core.Answer, sres *sqldb.Result, serr error) (bool, string) {
	switch shape {
	case SQAKNA:
		if serr == nil {
			return false, "expected SQAK N.A. but it produced a statement"
		}
		return true, fmt.Sprintf("SQAK: %v", serr)
	case Agree:
		if serr != nil {
			return false, fmt.Sprintf("SQAK unexpectedly failed: %v", serr)
		}
		if !sameResults(ours.Result, sres) {
			return false, "answers differ but should agree"
		}
		return true, "answers agree"
	case OursPerObject:
		if serr != nil {
			return false, fmt.Sprintf("SQAK unexpectedly failed: %v", serr)
		}
		if len(ours.Result.Rows) <= len(sres.Rows) {
			return false, fmt.Sprintf("want more per-object answers than SQAK (%d vs %d)",
				len(ours.Result.Rows), len(sres.Rows))
		}
		return true, fmt.Sprintf("%d per-object answers vs SQAK's %d merged", len(ours.Result.Rows), len(sres.Rows))
	case SQAKOvercounts:
		if serr != nil {
			return false, fmt.Sprintf("SQAK unexpectedly failed: %v", serr)
		}
		ovals, svals := lastNumeric(ours.Result), lastNumeric(sres)
		if len(ovals) == 0 || len(svals) == 0 {
			return false, "missing aggregate values"
		}
		if maxOf(svals) <= maxOf(ovals) && sumOf(svals) <= sumOf(ovals) {
			return false, fmt.Sprintf("SQAK should overcount: ours max %.2f vs SQAK max %.2f",
				maxOf(ovals), maxOf(svals))
		}
		return true, fmt.Sprintf("SQAK inflates: ours max %.2f, SQAK max %.2f", maxOf(ovals), maxOf(svals))
	default:
		return false, "unknown shape"
	}
}

func sameResults(a, b *sqldb.Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	key := func(r *sqldb.Result) []string {
		var ks []string
		for _, row := range r.Rows {
			// Compare only the final aggregate column: the two systems may
			// display different context columns.
			ks = append(ks, relation.Format(row[len(row)-1]))
		}
		return ks
	}
	ka, kb := key(a), key(b)
	used := make([]bool, len(kb))
	for _, x := range ka {
		found := false
		for j, y := range kb {
			if !used[j] && x == y {
				used[j], found = true, true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Timing is one Figure 11 data point: the time each system needs to
// generate SQL for a query (execution excluded), plus — supporting the
// paper's closing argument that SQL execution dominates — the time to
// execute the chosen statement.
type Timing struct {
	Query    Query
	Ours     time.Duration
	SQAK     time.Duration
	SQAKNote string
	// OursExec is the execution time of the interpretation matching the
	// query description; zero unless measured with TimeExecution.
	OursExec time.Duration
}

// TimeGeneration measures SQL-generation time for every query, averaging
// over reps runs (Figure 11).
func (s *Setup) TimeGeneration(queries []Query, reps int) ([]Timing, error) {
	if reps <= 0 {
		reps = 5
	}
	var out []Timing
	for _, q := range queries {
		t := Timing{Query: q}
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := s.Ours.Interpret(q.Keywords, 0); err != nil {
				return nil, fmt.Errorf("experiments %s: %w", q.ID, err)
			}
		}
		t.Ours = time.Since(start) / time.Duration(reps)
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := s.SQAK.Translate(q.Keywords); err != nil {
				t.SQAKNote = err.Error()
			}
		}
		t.SQAK = time.Since(start) / time.Duration(reps)
		out = append(out, t)
	}
	return out, nil
}

// TimeExecution measures, for every query, the execution time of the
// semantic interpretation the harness selects (the Figure 11 discussion:
// generation overhead is small relative to execution).
func (s *Setup) TimeExecution(queries []Query, reps int) ([]Timing, error) {
	if reps <= 0 {
		reps = 3
	}
	ts, err := s.TimeGeneration(queries, reps)
	if err != nil {
		return nil, err
	}
	for i, q := range queries {
		a, err := s.Ours.BestAnswer(q.Keywords, 0, pickFrags(q.PickFrags))
		if err != nil {
			return nil, fmt.Errorf("experiments %s: %w", q.ID, err)
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			if _, err := sqldb.Exec(s.Ours.Data, a.SQL); err != nil {
				return nil, err
			}
		}
		ts[i].OursExec = time.Since(start) / time.Duration(reps)
	}
	return ts, nil
}
