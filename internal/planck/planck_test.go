package planck

import (
	"strings"
	"testing"

	"kwagg/internal/pattern"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// testDB is a two-relation schema in the shape of the running example:
// Student(Sid, Sname, Cid) with Sid as key, Course(Cid, Title, Credit).
func testDB() *relation.Database {
	db := relation.NewDatabase("uni")
	db.AddSchema(relation.NewSchema("Student", "Sid INT", "Sname", "Cid INT").Key("Sid"))
	db.AddSchema(relation.NewSchema("Course", "Cid INT", "Title", "Credit FLOAT").Key("Cid"))
	return db
}

func col(table, column string) sqlast.Col { return sqlast.Col{Table: table, Column: column} }

func selCols(cols ...sqlast.Col) []sqlast.SelectItem {
	items := make([]sqlast.SelectItem, len(cols))
	for i, c := range cols {
		items[i] = sqlast.SelectItem{Expr: sqlast.ColExpr{Col: c}}
	}
	return items
}

// rules collects the distinct rule names of a finding list.
func rules(fs []Finding) map[string]int {
	m := make(map[string]int)
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

func wantRule(t *testing.T, fs []Finding, rule string) {
	t.Helper()
	if rules(fs)[rule] == 0 {
		t.Fatalf("expected a %s finding, got %v", rule, fs)
	}
}

func wantClean(t *testing.T, fs []Finding) {
	t.Helper()
	if len(fs) != 0 {
		t.Fatalf("expected a clean plan, got %v", fs)
	}
}

// TestCleanPlan verifies that a well-formed aggregate join raises nothing:
// the shape InterpretContext produces for "Green COUNT Title".
func TestCleanPlan(t *testing.T) {
	c := New(testDB())
	q := &sqlast.Query{
		Select: []sqlast.SelectItem{
			{Expr: sqlast.ColExpr{Col: col("R1", "Sname")}},
			{Expr: sqlast.AggExpr{Func: sqlast.AggCount, Arg: col("R2", "Title")}, Alias: "numTitle"},
		},
		From: []sqlast.TableRef{
			{Name: "Student", Alias: "R1"},
			{Name: "Course", Alias: "R2"},
		},
		Where: []sqlast.Pred{
			sqlast.JoinPred{Left: col("R1", "Cid"), Right: col("R2", "Cid")},
			sqlast.ContainsPred{Col: col("R1", "Sname"), Needle: "Green"},
		},
		GroupBy: []sqlast.Col{col("R1", "Sname")},
	}
	wantClean(t, c.Check(q))
}

// TestDistinctProjection exercises P2: a projection of a stored relation on
// a non-superkey attribute set must carry DISTINCT.
func TestDistinctProjection(t *testing.T) {
	c := New(testDB())
	proj := func(distinct bool, cols ...sqlast.Col) *sqlast.Query {
		return &sqlast.Query{
			Distinct: distinct,
			Select:   selCols(cols...),
			From:     []sqlast.TableRef{{Name: "Student", Alias: "R1"}},
		}
	}

	fs := c.Check(proj(false, col("R1", "Sname")))
	wantRule(t, fs, "distinct-projection")
	if !strings.Contains(fs[0].Detail, "Sname") {
		t.Errorf("detail should name the projected attribute: %s", fs[0].Detail)
	}

	// The same projection with DISTINCT is exactly Section 3.1.3's fix.
	wantClean(t, c.Check(proj(true, col("R1", "Sname"))))

	// Projecting a superkey preserves multiplicity; DISTINCT is not needed.
	wantClean(t, c.Check(proj(false, col("R1", "Sid"), col("R1", "Sname"))))

	// Rule 2-pushed contains conditions do not change the projection shape.
	q := proj(false, col("R1", "Sname"))
	q.Where = []sqlast.Pred{sqlast.ContainsPred{Col: col("R1", "Sname"), Needle: "Green"}}
	wantRule(t, c.Check(q), "distinct-projection")
}

// TestDistinctProjectionNested verifies that Check descends into derived
// tables: the bad projection hides one level down.
func TestDistinctProjectionNested(t *testing.T) {
	c := New(testDB())
	inner := &sqlast.Query{
		Select: selCols(col("", "Sname")),
		From:   []sqlast.TableRef{{Name: "Student"}},
	}
	outer := &sqlast.Query{
		Select: selCols(col("D1", "Sname")),
		From:   []sqlast.TableRef{{Subquery: inner, Alias: "D1"}},
	}
	wantRule(t, c.Check(outer), "distinct-projection")
}

// TestGroupByObjectID exercises the SQL half of P1: under aggregation a
// plain projected column must be grouped.
func TestGroupByObjectID(t *testing.T) {
	c := New(testDB())
	q := &sqlast.Query{
		Select: []sqlast.SelectItem{
			{Expr: sqlast.ColExpr{Col: col("R1", "Sname")}},
			{Expr: sqlast.AggExpr{Func: sqlast.AggCount, Arg: col("R1", "Sid")}},
		},
		From: []sqlast.TableRef{{Name: "Student", Alias: "R1"}},
	}
	wantRule(t, c.Check(q), "groupby-object-id")

	q.GroupBy = []sqlast.Col{col("R1", "Sname")}
	wantClean(t, c.Check(q))
}

// TestGroupByObjectIDPattern exercises the pattern half of P1: a GROUPBY
// annotation — here the object identifier added by disambiguation — that no
// GROUP BY column of the plan carries is reported, the exact regression a
// rewrite slip would introduce.
func TestGroupByObjectIDPattern(t *testing.T) {
	c := New(testDB())
	p := &pattern.Pattern{Nodes: []*pattern.Node{{
		Class:    "Student",
		GroupBys: []pattern.AttrRef{{Relation: "Student", Attr: "Sid"}},
		Disamb:   true,
	}}}
	q := &sqlast.Query{
		Select: []sqlast.SelectItem{
			{Expr: sqlast.AggExpr{Func: sqlast.AggCount, Arg: col("R1", "Cid")}},
		},
		From:    []sqlast.TableRef{{Name: "Student", Alias: "R1"}},
		GroupBy: []sqlast.Col{col("R1", "Sname")}, // grouped, but not by the object id
	}
	fs := c.CheckInterpretation(p, q)
	wantRule(t, fs, "groupby-object-id")
	if !strings.Contains(fs[0].Detail, "disambiguation object identifier") {
		t.Errorf("detail should say the lost column is a disambiguation id: %s", fs[0].Detail)
	}

	q.GroupBy = append(q.GroupBy, col("R1", "Sid"))
	wantClean(t, c.CheckInterpretation(p, q))
}

// TestJoinKeyCoverage exercises P3: every column reference must resolve
// against its FROM scope — what rewrite Rules 1-3 must preserve.
func TestJoinKeyCoverage(t *testing.T) {
	c := New(testDB())

	// A dangling alias, as if Rule 3 renamed R9 away on one side only.
	q := &sqlast.Query{
		Select: selCols(col("R1", "Sname")),
		From:   []sqlast.TableRef{{Name: "Student", Alias: "R1"}, {Name: "Course", Alias: "R2"}},
		Where: []sqlast.Pred{
			sqlast.JoinPred{Left: col("R1", "Cid"), Right: col("R9", "Cid")},
		},
	}
	wantRule(t, c.Check(q), "join-key-coverage")

	// A pruned column, as if Rule 1 dropped Cid from the projection below.
	inner := &sqlast.Query{
		Distinct: true,
		Select:   selCols(col("", "Sname")),
		From:     []sqlast.TableRef{{Name: "Student"}},
	}
	q2 := &sqlast.Query{
		Select: selCols(col("D1", "Sname")),
		From:   []sqlast.TableRef{{Subquery: inner, Alias: "D1"}, {Name: "Course", Alias: "R2"}},
		Where: []sqlast.Pred{
			sqlast.JoinPred{Left: col("D1", "Cid"), Right: col("R2", "Cid")},
		},
	}
	wantRule(t, c.Check(q2), "join-key-coverage")

	// Unknown relation and duplicate alias are scope-construction failures.
	q3 := &sqlast.Query{
		Select: selCols(col("R1", "Sname")),
		From:   []sqlast.TableRef{{Name: "Nowhere", Alias: "R1"}},
	}
	wantRule(t, c.Check(q3), "join-key-coverage")

	q4 := &sqlast.Query{
		Select: selCols(col("R1", "Sname")),
		From:   []sqlast.TableRef{{Name: "Student", Alias: "R1"}, {Name: "Course", Alias: "R1"}},
	}
	wantRule(t, c.Check(q4), "join-key-coverage")

	// An unqualified reference two FROM entries expose is ambiguous.
	q5 := &sqlast.Query{
		Select: selCols(col("", "Cid")),
		From:   []sqlast.TableRef{{Name: "Student", Alias: "R1"}, {Name: "Course", Alias: "R2"}},
		Where: []sqlast.Pred{
			sqlast.JoinPred{Left: col("R1", "Cid"), Right: col("R2", "Cid")},
		},
	}
	wantRule(t, c.Check(q5), "join-key-coverage")
}

// TestUnreferencedAlias: a FROM entry joined to nothing and projected
// nowhere is an accidental cartesian product.
func TestUnreferencedAlias(t *testing.T) {
	c := New(testDB())
	q := &sqlast.Query{
		Select: selCols(col("R1", "Sname")),
		From:   []sqlast.TableRef{{Name: "Student", Alias: "R1"}, {Name: "Course", Alias: "R2"}},
	}
	wantRule(t, c.Check(q), "unreferenced-alias")

	q.Where = []sqlast.Pred{sqlast.JoinPred{Left: col("R1", "Cid"), Right: col("R2", "Cid")}}
	wantClean(t, c.Check(q))
}

// TestSelfJoinNoop: a join predicate comparing a column with itself
// constrains nothing.
func TestSelfJoinNoop(t *testing.T) {
	c := New(testDB())
	q := &sqlast.Query{
		Select: selCols(col("R1", "Sname"), col("R2", "Title")),
		From:   []sqlast.TableRef{{Name: "Student", Alias: "R1"}, {Name: "Course", Alias: "R2"}},
		Where: []sqlast.Pred{
			sqlast.JoinPred{Left: col("R1", "Cid"), Right: col("R1", "Cid")},
			sqlast.JoinPred{Left: col("R1", "Cid"), Right: col("R2", "Cid")},
		},
	}
	wantRule(t, c.Check(q), "self-join-noop")
}
