package planck_test

import (
	"testing"

	"kwagg"
)

// TestDatasetWorkloadCorpus replays the canonical workload of every bundled
// dataset — the paper's running examples plus the T1-T8 / A1-A8 evaluation
// queries, on both the normalized and the denormalized (rewrite Rules 1-3)
// databases — and requires every generated interpretation's plan to pass the
// plan verifier with zero findings. This is the repo's standing evidence
// that translation and rewriting preserve the paper's invariants end to end;
// `kwlint -plans` runs the same corpus from the command line.
func TestDatasetWorkloadCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("opens every bundled dataset")
	}
	for name, queries := range kwagg.DatasetWorkloads() {
		name, queries := name, queries
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			eng, err := kwagg.OpenDataset(name, true)
			if err != nil {
				t.Fatalf("OpenDataset(%q): %v", name, err)
			}
			for _, q := range queries {
				findings, err := eng.PlanFindings(q, 0)
				if err != nil {
					t.Fatalf("PlanFindings(%q): %v", q, err)
				}
				for _, f := range findings {
					t.Errorf("query %q: %s: %s", q, f.Rule, f.Detail)
				}
			}
		})
	}
}
