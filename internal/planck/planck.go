// Package planck is the plan-invariant verifier: a domain static analyzer
// over generated sqlast.Query values that checks, before execution, the
// paper's correctness properties and the structural sanity of a statement.
//
// The rules (each one has a failing-plan unit test):
//
//   - distinct-projection (P2, Section 3.1.3): a projection of a stored
//     relation on an attribute subset that is not a superkey must carry
//     DISTINCT, or duplicate rows multiply join and aggregate results the
//     way SQAK's duplicate counting does.
//   - groupby-object-id (P1, Section 3.1.2): under aggregation every plain
//     projected column must be grouped, and a disambiguated pattern node's
//     object identifier must survive translation into some GROUP BY.
//   - join-key-coverage (P3, Section 4.1): every column reference resolves
//     against its FROM scope — the alias exists and exposes that column.
//     This is exactly what rewrite Rules 1-3 must preserve: Rule 3 renames
//     aliases, Rule 1 prunes projected attributes, and a slip in either
//     leaves a dangling reference this rule reports.
//   - unreferenced-alias: with several FROM entries, an alias nothing
//     references is an accidental cartesian product.
//   - self-join-noop: a join predicate with identical sides constrains
//     nothing and almost always means an alias was renamed on one side only.
//
// planck is consulted three ways: core.Open(VerifyPlans) checks every
// translated interpretation, the proptest and dataset-workload suites fail
// on any finding, and `kwlint -plans` replays the dataset workload corpus.
package planck

import (
	"fmt"
	"strings"

	"kwagg/internal/pattern"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Finding is one violated plan invariant.
type Finding struct {
	Rule   string // rule identifier, e.g. "distinct-projection"
	Detail string // human-readable description with the offending fragment
}

// String renders the finding as "rule: detail".
func (f Finding) String() string { return f.Rule + ": " + f.Detail }

// Checker verifies plans against one stored database (needed for schema
// lookups: attribute sets, keys, functional dependencies).
type Checker struct {
	Data *relation.Database
}

// New creates a checker for plans that execute against data.
func New(data *relation.Database) *Checker {
	return &Checker{Data: data}
}

// Check verifies one query and, recursively, every derived-table subquery.
// It returns nil when every invariant holds.
func (c *Checker) Check(q *sqlast.Query) []Finding {
	var fs []Finding
	q.Walk(func(sub *sqlast.Query) {
		fs = append(fs, c.checkLevel(sub)...)
	})
	return fs
}

// CheckInterpretation verifies a translated plan together with the pattern
// it came from: Check plus the pattern-level half of P1 — every GROUPBY
// annotation, in particular the object identifiers added by disambiguation,
// must survive translation (and rewriting) into some GROUP BY column.
func (c *Checker) CheckInterpretation(p *pattern.Pattern, q *sqlast.Query) []Finding {
	fs := c.Check(q)
	grouped := make(map[string]bool)
	q.Walk(func(sub *sqlast.Query) {
		for _, col := range sub.GroupBy {
			grouped[strings.ToLower(col.Column)] = true
		}
	})
	for _, n := range p.Nodes {
		for _, g := range n.GroupBys {
			if grouped[strings.ToLower(g.Attr)] {
				continue
			}
			what := "GROUPBY annotation"
			if n.Disamb {
				what = "disambiguation object identifier"
			}
			fs = append(fs, Finding{
				Rule: "groupby-object-id",
				Detail: fmt.Sprintf("%s %s of node %s is not grouped anywhere in the plan: %s",
					what, g, n.Class, q),
			})
		}
	}
	return fs
}

// scopeEntry is one FROM entry's contribution to the name scope of a query
// level: the alias and the columns it exposes (nil when unknown, e.g. an
// unknown relation already reported separately).
type scopeEntry struct {
	alias string
	cols  map[string]bool
}

func (e *scopeEntry) exposes(col string) bool {
	return e.cols == nil || e.cols[strings.ToLower(col)]
}

// checkLevel verifies one query level (subqueries are visited by Check).
func (c *Checker) checkLevel(q *sqlast.Query) []Finding {
	var fs []Finding

	// Build the scope, reporting unknown relations and duplicate aliases.
	scope := make([]*scopeEntry, 0, len(q.From))
	byAlias := make(map[string]*scopeEntry, len(q.From))
	for _, tr := range q.From {
		alias := tr.Alias
		if alias == "" {
			alias = tr.Name
		}
		if alias == "" {
			fs = append(fs, Finding{
				Rule:   "join-key-coverage",
				Detail: fmt.Sprintf("derived table has no alias in %s", q),
			})
			continue
		}
		e := &scopeEntry{alias: alias}
		if tr.Subquery != nil {
			e.cols = make(map[string]bool, len(tr.Subquery.Select))
			for _, it := range tr.Subquery.Select {
				switch {
				case it.Alias != "":
					e.cols[strings.ToLower(it.Alias)] = true
				default:
					if ce, ok := it.Expr.(sqlast.ColExpr); ok {
						e.cols[strings.ToLower(ce.Col.Column)] = true
					}
				}
			}
		} else if t := c.Data.Table(tr.Name); t != nil {
			e.cols = make(map[string]bool, len(t.Schema.Attributes))
			for _, a := range t.Schema.AttrNames() {
				e.cols[strings.ToLower(a)] = true
			}
		} else {
			fs = append(fs, Finding{
				Rule:   "join-key-coverage",
				Detail: fmt.Sprintf("FROM references unknown relation %s in %s", tr.Name, q),
			})
		}
		if byAlias[strings.ToLower(alias)] != nil {
			fs = append(fs, Finding{
				Rule:   "join-key-coverage",
				Detail: fmt.Sprintf("alias %s appears twice in the FROM list of %s", alias, q),
			})
			continue
		}
		byAlias[strings.ToLower(alias)] = e
		scope = append(scope, e)
	}

	// Resolve every column reference of this level against the scope.
	referenced := make(map[string]bool)
	resolve := func(col sqlast.Col, where string) {
		if col.Column == "*" {
			return
		}
		if col.Table != "" {
			e := byAlias[strings.ToLower(col.Table)]
			switch {
			case e == nil:
				fs = append(fs, Finding{
					Rule:   "join-key-coverage",
					Detail: fmt.Sprintf("%s references %s but no FROM entry is aliased %s in %s", where, col, col.Table, q),
				})
			case !e.exposes(col.Column):
				fs = append(fs, Finding{
					Rule:   "join-key-coverage",
					Detail: fmt.Sprintf("%s references %s but %s does not expose column %s in %s", where, col, col.Table, col.Column, q),
				})
			default:
				referenced[strings.ToLower(col.Table)] = true
			}
			return
		}
		var owners []*scopeEntry
		for _, e := range scope {
			if e.exposes(col.Column) {
				owners = append(owners, e)
			}
		}
		switch {
		case len(owners) == 0:
			fs = append(fs, Finding{
				Rule:   "join-key-coverage",
				Detail: fmt.Sprintf("%s references %s but no FROM entry exposes it in %s", where, col, q),
			})
		case len(owners) > 1:
			fs = append(fs, Finding{
				Rule:   "join-key-coverage",
				Detail: fmt.Sprintf("%s references unqualified %s, exposed by %d FROM entries in %s", where, col, len(owners), q),
			})
		default:
			referenced[strings.ToLower(owners[0].alias)] = true
		}
	}

	hasAgg := false
	for _, it := range q.Select {
		switch ex := it.Expr.(type) {
		case sqlast.ColExpr:
			resolve(ex.Col, "SELECT")
		case sqlast.AggExpr:
			hasAgg = true
			resolve(ex.Arg, "SELECT")
		}
	}
	for _, p := range q.Where {
		switch pp := p.(type) {
		case sqlast.JoinPred:
			resolve(pp.Left, "WHERE")
			resolve(pp.Right, "WHERE")
			if strings.EqualFold(pp.Left.Table, pp.Right.Table) &&
				strings.EqualFold(pp.Left.Column, pp.Right.Column) {
				fs = append(fs, Finding{
					Rule:   "self-join-noop",
					Detail: fmt.Sprintf("join predicate %s compares a column with itself in %s", pp, q),
				})
			}
		case sqlast.ColComparePred:
			resolve(pp.Left, "WHERE")
			resolve(pp.Right, "WHERE")
		case sqlast.ComparePred:
			resolve(pp.Col, "WHERE")
		case sqlast.ContainsPred:
			resolve(pp.Col, "WHERE")
		}
	}
	for _, col := range q.GroupBy {
		resolve(col, "GROUP BY")
	}
	for _, o := range q.OrderBy {
		resolve(o.Col, "ORDER BY")
	}

	// unreferenced-alias: several FROM entries, one of them joined to nothing
	// and projected nowhere — an accidental cartesian product.
	if len(scope) > 1 {
		for _, e := range scope {
			if !referenced[strings.ToLower(e.alias)] {
				fs = append(fs, Finding{
					Rule:   "unreferenced-alias",
					Detail: fmt.Sprintf("FROM entry %s is never referenced in %s", e.alias, q),
				})
			}
		}
	}

	// groupby-object-id, SQL half of P1: under aggregation every plain
	// projected column must appear in GROUP BY, or the engine is asked to
	// pick an arbitrary representative per group.
	if hasAgg {
		for _, it := range q.Select {
			ce, ok := it.Expr.(sqlast.ColExpr)
			if !ok {
				continue
			}
			if !groupedBy(q.GroupBy, ce.Col) {
				fs = append(fs, Finding{
					Rule:   "groupby-object-id",
					Detail: fmt.Sprintf("aggregated query projects ungrouped column %s in %s", ce.Col, q),
				})
			}
		}
	}

	// distinct-projection (P2): a projection level over one stored relation
	// that drops to a non-superkey attribute subset without DISTINCT has
	// duplicate rows, which multiply joins and aggregates upstream.
	if proj, src := projectionOf(q); proj && !q.Distinct {
		if t := c.Data.Table(src); t != nil {
			attrs := make([]string, 0, len(q.Select))
			for _, it := range q.Select {
				attrs = append(attrs, it.Expr.(sqlast.ColExpr).Col.Column)
			}
			if !relation.IsSuperkey(attrs, t.Schema) {
				fs = append(fs, Finding{
					Rule: "distinct-projection",
					Detail: fmt.Sprintf("projection of %s on non-superkey {%s} lacks DISTINCT: %s",
						src, strings.Join(attrs, ", "), q),
				})
			}
		}
	}
	return fs
}

// projectionOf reports whether q is a plain projection level — SELECT of
// column expressions from one stored relation, no grouping — and names the
// relation. Pushed-down contains-conditions (rewrite Rule 2) are allowed in
// WHERE; they filter rows but do not change multiplicity.
func projectionOf(q *sqlast.Query) (bool, string) {
	if len(q.From) != 1 || q.From[0].Name == "" || len(q.GroupBy) != 0 {
		return false, ""
	}
	for _, it := range q.Select {
		if _, ok := it.Expr.(sqlast.ColExpr); !ok {
			return false, ""
		}
	}
	for _, p := range q.Where {
		switch p.(type) {
		case sqlast.ContainsPred, sqlast.ComparePred:
		default:
			return false, ""
		}
	}
	return true, q.From[0].Name
}

// groupedBy reports whether col appears in the GROUP BY list. An unqualified
// occurrence on either side matches by column name: the translator qualifies
// both or neither, and rewriting renames both in lockstep.
func groupedBy(groupBy []sqlast.Col, col sqlast.Col) bool {
	for _, g := range groupBy {
		if !strings.EqualFold(g.Column, col.Column) {
			continue
		}
		if g.Table == "" || col.Table == "" || strings.EqualFold(g.Table, col.Table) {
			return true
		}
	}
	return false
}
