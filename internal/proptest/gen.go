// Package proptest is the property-based differential harness of the query
// pipeline: it generates random database instances of a fixed ORA shape —
// object relations, a binary relationship, an n-ary relationship, and a
// denormalized single-relation variant — fills them with random data that
// deliberately plants the paper's hard cases (objects sharing an attribute
// value, duplicated participant pairs in the n-ary relationship), and checks
// the engine's answers for random aggregate/GROUPBY keyword queries against
// a brute-force in-memory oracle.
//
// The properties correspond to the paper's semantic claims:
//
//	P1  one aggregate per object: a value matched by several objects yields
//	    per-object groups whose aggregates equal the oracle's (Q1/Green).
//	P2  n-ary relationships are projected DISTINCT onto the participants the
//	    query uses before joining, so shared participants are not counted
//	    twice (Q2/Java).
//	P3  over the denormalized variant the engine answers through the
//	    synthesized normalized view, and the answers still equal the oracle
//	    computed on the base data.
//
// The shape mirrors the running example: Person plays Student (same-value
// objects), Project plays Course with Works as Enrol (binary relationship
// carrying the P1 aggregates), and Uses(Jid, Gid, Tid) plays Teach (ternary
// relationship between Project, Site and Tool with planted duplicate
// (project, tool) pairs for P2). Site keeps the ternary relationship off the
// Person-Project axis, so each property has exactly one join path — like
// Lecturer in the paper's Teach.
package proptest

import (
	"fmt"
	"math/rand"
	"sort"

	"kwagg/internal/normalize"
	"kwagg/internal/relation"
)

// Aggs lists the aggregate functions the random queries draw from.
var Aggs = []string{"SUM", "COUNT", "AVG", "MIN", "MAX"}

// Obj is one generated object row; Val is the numeric attribute of its table
// (Hours, Budget or Price).
type Obj struct {
	ID   string
	Name string
	Val  int64
}

// Instance is one random database instance plus the facts the oracle needs.
type Instance struct {
	Persons  []Obj
	Projects []Obj
	Sites    []Obj
	Tools    []Obj
	Works    [][2]int // (person index, project index), sorted, unique
	Uses     [][3]int // (project index, site index, tool index), sorted, unique

	// Dup is a person name shared by at least two persons (the P1 probe);
	// Target is the project name whose (project, tool) pairs are duplicated
	// across sites in Uses (the P2 probe).
	Dup    string
	Target string
}

// Name pools. No pool name is a substring of another (value matching uses
// CONTAINS), and none collides with a table or attribute name or a query
// keyword.
var (
	personNames  = []string{"parker", "pascal", "patel", "porter", "powell", "peters"}
	projectNames = []string{"jupiter", "juno", "jigsaw", "jasper", "jolt"}
	siteNames    = []string{"gamma", "gusto", "gravel", "grove"}
	toolNames    = []string{"torch", "tongs", "trowel", "tape", "turbine"}
)

// Generate draws one random instance. The same *rand.Rand state always
// yields the same instance, so failures reproduce from the reported seed.
func Generate(r *rand.Rand) *Instance {
	in := &Instance{Dup: personNames[0]}
	nP := 3 + r.Intn(4) // 3..6 persons
	for i := 0; i < nP; i++ {
		name := personNames[r.Intn(len(personNames))]
		if i < 2 {
			name = in.Dup // forced same-value objects
		}
		in.Persons = append(in.Persons, Obj{
			ID: fmt.Sprintf("p%d", i+1), Name: name, Val: int64(1 + r.Intn(9))})
	}
	nJ := 2 + r.Intn(4) // 2..5 projects, unique names
	for i := 0; i < nJ; i++ {
		in.Projects = append(in.Projects, Obj{
			ID: fmt.Sprintf("j%d", i+1), Name: projectNames[i], Val: int64(1 + r.Intn(20))})
	}
	in.Target = in.Projects[0].Name
	nG := 2 + r.Intn(3) // 2..4 sites, unique names
	for i := 0; i < nG; i++ {
		in.Sites = append(in.Sites, Obj{ID: fmt.Sprintf("g%d", i+1), Name: siteNames[i]})
	}
	nT := 2 + r.Intn(4) // 2..5 tools, unique names
	for i := 0; i < nT; i++ {
		in.Tools = append(in.Tools, Obj{
			ID: fmt.Sprintf("t%d", i+1), Name: toolNames[i], Val: int64(1 + r.Intn(30))})
	}

	// Binary relationship: both same-named persons always work on some
	// project, so the P1 probe always has two objects to disambiguate (and
	// both survive into the denormalized variant, which joins Works in),
	// plus a random bipartite rest.
	works := map[[2]int]bool{{0, 0}: true, {1, r.Intn(nJ)}: true}
	for p := 0; p < nP; p++ {
		for j := 0; j < nJ; j++ {
			if r.Float64() < 0.4 {
				works[[2]int{p, j}] = true
			}
		}
	}
	for w := range works {
		in.Works = append(in.Works, w)
	}
	sort.Slice(in.Works, func(i, j int) bool {
		a, b := in.Works[i], in.Works[j]
		return a[0] < b[0] || a[0] == b[0] && a[1] < b[1]
	})

	// Ternary relationship: the target project always uses tool 1 at two
	// different sites — the duplicated (project, tool) pair that makes a
	// naive join double-count for P2 — plus random extra triples.
	uses := map[[3]int]bool{{0, 0, 0}: true, {0, 1, 0}: true}
	for i, extra := 0, r.Intn(9); i < extra; i++ {
		uses[[3]int{r.Intn(nJ), r.Intn(nG), r.Intn(nT)}] = true
	}
	for u := range uses {
		in.Uses = append(in.Uses, u)
	}
	sort.Slice(in.Uses, func(i, j int) bool {
		a, b := in.Uses[i], in.Uses[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	return in
}

// DB materializes the normalized database of the instance.
func (in *Instance) DB() *relation.Database {
	db := relation.NewDatabase("proptest")
	person := db.AddSchema(relation.NewSchema("Person", "Pid", "Pname", "Hours INT").Key("Pid"))
	for _, p := range in.Persons {
		person.MustInsert(p.ID, p.Name, p.Val)
	}
	project := db.AddSchema(relation.NewSchema("Project", "Jid", "Jname", "Budget INT").Key("Jid"))
	for _, j := range in.Projects {
		project.MustInsert(j.ID, j.Name, j.Val)
	}
	site := db.AddSchema(relation.NewSchema("Site", "Gid", "Gname").Key("Gid"))
	for _, g := range in.Sites {
		site.MustInsert(g.ID, g.Name)
	}
	tool := db.AddSchema(relation.NewSchema("Tool", "Tid", "Tname", "Price INT").Key("Tid"))
	for _, t := range in.Tools {
		tool.MustInsert(t.ID, t.Name, t.Val)
	}
	works := db.AddSchema(relation.NewSchema("Works", "Pid", "Jid", "Role").
		Key("Pid", "Jid").
		Ref([]string{"Pid"}, "Person").
		Ref([]string{"Jid"}, "Project"))
	for _, w := range in.Works {
		works.MustInsert(in.Persons[w[0]].ID, in.Projects[w[1]].ID, "member")
	}
	uses := db.AddSchema(relation.NewSchema("Uses", "Jid", "Gid", "Tid").
		Key("Jid", "Gid", "Tid").
		Ref([]string{"Jid"}, "Project").
		Ref([]string{"Gid"}, "Site").
		Ref([]string{"Tid"}, "Tool"))
	for _, u := range in.Uses {
		uses.MustInsert(in.Projects[u[0]].ID, in.Sites[u[1]].ID, in.Tools[u[2]].ID)
	}
	return db
}

// DenormDB materializes the Figure-8-style denormalized variant: the join of
// Person, Works and Project collapsed into one wide relation that violates
// 3NF, over the same base data (persons or projects without a Works row do
// not appear, matching the inner-join semantics the oracle uses).
func (in *Instance) DenormDB() *relation.Database {
	db := relation.NewDatabase("proptest-denorm")
	wide := db.AddSchema(relation.NewSchema("PersonProject",
		"Pid", "Jid", "Pname", "Hours INT", "Jname", "Budget INT", "Role").
		Key("Pid", "Jid").
		Dep([]string{"Pid"}, "Pname", "Hours").
		Dep([]string{"Jid"}, "Jname", "Budget").
		Dep([]string{"Pid", "Jid"}, "Role"))
	for _, w := range in.Works {
		p, j := in.Persons[w[0]], in.Projects[w[1]]
		wide.MustInsert(p.ID, j.ID, p.Name, p.Val, j.Name, j.Val, "member")
	}
	return db
}

// DenormHints names the normalized-view relations of DenormDB like the real
// datasets do, so the rewritten SQL reads naturally.
func (in *Instance) DenormHints() map[string]string {
	return map[string]string{
		normalize.KeySig("Pid"):        "Person",
		normalize.KeySig("Jid"):        "Project",
		normalize.KeySig("Pid", "Jid"): "Works",
	}
}

// Aggregate applies one of Aggs to vals by brute force. vals must be
// non-empty.
func Aggregate(agg string, vals []float64) float64 {
	out := vals[0]
	switch agg {
	case "COUNT":
		return float64(len(vals))
	case "SUM", "AVG":
		out = 0
		for _, v := range vals {
			out += v
		}
		if agg == "AVG" {
			out /= float64(len(vals))
		}
	case "MIN":
		for _, v := range vals[1:] {
			if v < out {
				out = v
			}
		}
	case "MAX":
		for _, v := range vals[1:] {
			if v > out {
				out = v
			}
		}
	default:
		panic("proptest: unknown aggregate " + agg)
	}
	return out
}

// OracleP1 computes, per person whose name is name, the aggregate of the
// budgets of the projects they work on (persons with no projects drop out,
// matching inner-join semantics). The result is sorted.
func (in *Instance) OracleP1(agg, name string) []float64 {
	var out []float64
	for p, person := range in.Persons {
		if person.Name != name {
			continue
		}
		var vals []float64
		for _, w := range in.Works {
			if w[0] == p {
				vals = append(vals, float64(in.Projects[w[1]].Val))
			}
		}
		if len(vals) > 0 {
			out = append(out, Aggregate(agg, vals))
		}
	}
	sort.Float64s(out)
	return out
}

// OracleP2 computes the aggregate of the prices of the distinct tools used
// by projects named Target — each distinct (project, tool) pair counted
// once, no matter how many sites duplicate it in Uses.
func (in *Instance) OracleP2(agg string) float64 {
	seen := map[[2]int]bool{}
	var vals []float64
	for _, u := range in.Uses {
		if in.Projects[u[0]].Name != in.Target || seen[[2]int{u[0], u[2]}] {
			continue
		}
		seen[[2]int{u[0], u[2]}] = true
		vals = append(vals, float64(in.Tools[u[2]].Val))
	}
	return Aggregate(agg, vals)
}

// OracleGroupCount computes, per project with at least one worker, the
// number of persons working on it (the COUNT Person GROUPBY Project oracle).
// The result is sorted.
func (in *Instance) OracleGroupCount() []float64 {
	counts := make(map[int]int)
	for _, w := range in.Works {
		counts[w[1]]++
	}
	var out []float64
	for _, n := range counts {
		out = append(out, float64(n))
	}
	sort.Float64s(out)
	return out
}
