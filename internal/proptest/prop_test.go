package proptest

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"kwagg/internal/core"
	"kwagg/internal/relation"
)

var (
	seedFlag = flag.Int64("proptest.seed", 2016,
		"base seed for the random instances; round i uses seed+i")
	deepFlag = flag.Bool("proptest.deep", false,
		"run many more random instances (make test-prop)")
)

// rounds picks how many random instances each property test draws: a quick
// default, fewer under -short, and the deep sweep behind -proptest.deep.
func rounds() int {
	switch {
	case *deepFlag:
		return 50
	case testing.Short():
		return 3
	default:
		return 10
	}
}

func mustOpen(t *testing.T, db *relation.Database, opts *core.Options) *core.System {
	t.Helper()
	if opts == nil {
		opts = &core.Options{}
	}
	// Every property-tested system verifies its plans: a planck finding on
	// any generated interpretation fails the property outright.
	opts.VerifyPlans = true
	s, err := core.Open(db, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// match returns the first answer whose SQL contains every fragment.
func match(as []core.Answer, frags ...string) *core.Answer {
	for i := range as {
		sql := as[i].SQL.String()
		ok := true
		for _, f := range frags {
			if !strings.Contains(sql, f) {
				ok = false
				break
			}
		}
		if ok {
			return &as[i]
		}
	}
	return nil
}

// lastCol extracts the last column of every result row as floats, sorted —
// the aggregate column of the generated statements.
func lastCol(a *core.Answer) []float64 {
	var out []float64
	for _, row := range a.Result.Rows {
		f, ok := relation.AsFloat(row[len(row)-1])
		if !ok {
			return nil
		}
		out = append(out, f)
	}
	sort.Float64s(out)
	return out
}

func floatsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			return false
		}
	}
	return true
}

// checkPerObject is property P1 (and P3 when s is the denormalized engine):
// the query "<dup> <AGG> Budget" must have an interpretation that groups per
// matched person object, and its group aggregates must equal the oracle's
// per-object values. extraFrags pins the interpretation further (the
// normalized engine passes "Works" to exclude the Uses join path).
func checkPerObject(s *core.System, in *Instance, agg string, extraFrags ...string) error {
	query := fmt.Sprintf("%s %s Budget", in.Dup, agg)
	as, err := s.Answer(query, 0)
	if err != nil {
		return fmt.Errorf("Answer(%q): %w", query, err)
	}
	frags := append([]string{"GROUP BY", "CONTAINS '" + in.Dup + "'", agg + "("}, extraFrags...)
	a := match(as, frags...)
	if a == nil {
		return fmt.Errorf("no interpretation of %q contains %v", query, frags)
	}
	got, want := lastCol(a), in.OracleP1(agg, in.Dup)
	if !floatsEq(got, want) {
		return fmt.Errorf("%q: per-object %s got %v, oracle says %v\nSQL: %s",
			query, agg, got, want, a.SQL)
	}
	return nil
}

// checkDistinct is property P2: the query "<target> <AGG> Price" must have
// an interpretation that projects the ternary Uses relationship DISTINCT
// onto (project, tool) before joining, and its single aggregate must equal
// the oracle computed over distinct pairs — never the duplicate-inflated
// naive join value.
func checkDistinct(s *core.System, in *Instance, agg string) error {
	query := fmt.Sprintf("%s %s Price", in.Target, agg)
	as, err := s.Answer(query, 0)
	if err != nil {
		return fmt.Errorf("Answer(%q): %w", query, err)
	}
	frags := []string{"(SELECT DISTINCT Jid, Tid FROM Uses)",
		"CONTAINS '" + in.Target + "'", agg + "("}
	a := match(as, frags...)
	if a == nil {
		return fmt.Errorf("no interpretation of %q contains %v", query, frags)
	}
	got := lastCol(a)
	want := []float64{in.OracleP2(agg)}
	if !floatsEq(got, want) {
		return fmt.Errorf("%q: DISTINCT %s got %v, oracle says %v\nSQL: %s",
			query, agg, got, want, a.SQL)
	}
	return nil
}

// checkGroupBy covers the explicit GROUPBY keyword: "COUNT Person GROUPBY
// Project" over the binary relationship must produce per-project worker
// counts equal to the oracle's.
func checkGroupBy(s *core.System, in *Instance) error {
	const query = "COUNT Person GROUPBY Project"
	as, err := s.Answer(query, 0)
	if err != nil {
		return fmt.Errorf("Answer(%q): %w", query, err)
	}
	a := match(as, "GROUP BY", "COUNT(", "Works")
	if a == nil {
		return fmt.Errorf("no interpretation of %q joins through Works with GROUP BY", query)
	}
	got, want := lastCol(a), in.OracleGroupCount()
	if !floatsEq(got, want) {
		return fmt.Errorf("%q: got %v, oracle says %v\nSQL: %s", query, got, want, a.SQL)
	}
	return nil
}

// TestP1PerObjectAggregates: random instances, every aggregate function —
// a value shared by several objects yields one aggregate per object.
func TestP1PerObjectAggregates(t *testing.T) {
	for i := 0; i < rounds(); i++ {
		seed := *seedFlag + int64(i)
		in := Generate(rand.New(rand.NewSource(seed)))
		s := mustOpen(t, in.DB(), nil)
		for _, agg := range Aggs {
			if err := checkPerObject(s, in, agg, "Works"); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		if err := checkGroupBy(s, in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestP2DistinctNaryProjection: random instances, every aggregate function —
// duplicated (project, tool) pairs in the ternary relationship are counted
// once.
func TestP2DistinctNaryProjection(t *testing.T) {
	for i := 0; i < rounds(); i++ {
		seed := *seedFlag + int64(i)
		in := Generate(rand.New(rand.NewSource(seed)))
		s := mustOpen(t, in.DB(), nil)
		for _, agg := range Aggs {
			if err := checkDistinct(s, in, agg); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestP3NormalizedViewAnswers: the same P1 queries over the denormalized
// single-relation variant — answered through the synthesized normalized view
// — still equal the oracle computed on the base data, and hence equal the
// base-table engine's answers.
func TestP3NormalizedViewAnswers(t *testing.T) {
	for i := 0; i < rounds(); i++ {
		seed := *seedFlag + int64(i)
		in := Generate(rand.New(rand.NewSource(seed)))
		s := mustOpen(t, in.DenormDB(), &core.Options{NameHints: in.DenormHints()})
		if !s.Unnormalized() {
			t.Fatalf("seed %d: denormalized variant not detected as unnormalized", seed)
		}
		for _, agg := range Aggs {
			if err := checkPerObject(s, in, agg); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
	}
}

// TestHarnessCatchesDedupRegression is the harness's own regression check:
// with the Section 3.1.3 duplicate-elimination rule disabled (the P2 SELECT
// DISTINCT projection reverted), checkDistinct must fail — proving that a
// real regression of that rule cannot slip past make test-prop.
func TestHarnessCatchesDedupRegression(t *testing.T) {
	in := Generate(rand.New(rand.NewSource(*seedFlag)))
	s := mustOpen(t, in.DB(), nil)
	if err := checkDistinct(s, in, "SUM"); err != nil {
		t.Fatalf("baseline must pass before the ablation: %v", err)
	}
	s.Translator.DisableDedup = true
	defer func() { s.Translator.DisableDedup = false }()
	if err := checkDistinct(s, in, "SUM"); err == nil {
		t.Fatal("duplicate elimination disabled, yet the P2 property still passed; " +
			"the harness would miss a dedup regression")
	}
}

// TestHarnessCatchesDisambiguationRegression: with Section 3.1.2 object
// disambiguation disabled, the per-object property P1 must fail.
func TestHarnessCatchesDisambiguationRegression(t *testing.T) {
	in := Generate(rand.New(rand.NewSource(*seedFlag)))
	s := mustOpen(t, in.DB(), nil)
	if err := checkPerObject(s, in, "SUM", "Works"); err != nil {
		t.Fatalf("baseline must pass before the ablation: %v", err)
	}
	s.Generator.DisableDisambiguation = true
	defer func() { s.Generator.DisableDisambiguation = false }()
	if err := checkPerObject(s, in, "SUM", "Works"); err == nil {
		t.Fatal("disambiguation disabled, yet the P1 property still passed; " +
			"the harness would miss a disambiguation regression")
	}
}
