// Trace and span support: every query request carries a Trace in its
// context; pipeline stages open spans with Start and close them with End.
// Ending a span appends a record to the trace (request ID, per-stage offsets
// and durations, nesting) and observes the duration into the per-stage
// latency histogram of the Registry attached to the same context — so one
// instrumentation point feeds both the single-request view (kwsearch -trace,
// the structured request log) and the aggregate view (GET /metrics).
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// StageMetric is the histogram family every span observes into, labeled by
// stage name.
const StageMetric = "kwagg_stage_duration_seconds"

type traceKey struct{}
type registryKey struct{}
type spanKey struct{}

// Trace accumulates the spans and annotations of one request. Safe for
// concurrent use (per-statement execution spans end on pool workers).
type Trace struct {
	ID    string
	start time.Time

	mu    sync.Mutex
	end   time.Time // zero until Finish
	spans []SpanRecord
	notes []Annotation
}

// SpanRecord is one completed span.
type SpanRecord struct {
	Name     string        `json:"name"`
	Detail   string        `json:"detail,omitempty"`
	Start    time.Duration `json:"start_ns"`    // offset from trace start
	Duration time.Duration `json:"duration_ns"` // wall time of the span
	Depth    int           `json:"depth"`       // 0 = top-level stage
}

// Annotation is one key=value note on the trace (cache hit/miss provenance,
// the query text, ...).
type Annotation struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// NewTrace creates a trace with a fresh request ID and attaches it to the
// context.
func NewTrace(ctx context.Context) (context.Context, *Trace) {
	t := &Trace{ID: NewID(), start: time.Now()}
	return context.WithValue(ctx, traceKey{}, t), t
}

// NewID returns a 16-hex-char random request ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; fall back to a
		// time-derived ID rather than panicking in a logging path.
		return fmt.Sprintf("%016x", uint64(time.Now().UnixNano()))
	}
	return hex.EncodeToString(b[:])
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithRegistry attaches the metrics registry spans observe into.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	return context.WithValue(ctx, registryKey{}, r)
}

// RegistryFrom returns the registry attached to ctx, or nil.
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey{}).(*Registry)
	return r
}

// Span is one in-progress timed stage. A nil *Span is a valid no-op, so
// callers can unconditionally defer End.
type Span struct {
	name   string
	detail string
	start  time.Time
	depth  int
	trace  *Trace
	reg    *Registry
	once   sync.Once
}

// Start opens a span named after a pipeline stage. The returned context
// carries the span, so nested Start calls record their depth under it; End
// closes the span. When the context carries neither a trace nor a registry,
// Start returns a nil span (no-op, near-zero cost).
func Start(ctx context.Context, name string) (context.Context, *Span) {
	t := TraceFrom(ctx)
	r := RegistryFrom(ctx)
	if t == nil && r == nil {
		return ctx, nil
	}
	depth := 0
	if parent, _ := ctx.Value(spanKey{}).(*Span); parent != nil {
		depth = parent.depth + 1
	}
	s := &Span{name: name, start: time.Now(), depth: depth, trace: t, reg: r}
	return context.WithValue(ctx, spanKey{}, s), s
}

// Detail attaches a free-form note to the span's trace record (e.g. which
// SQL statement an execution span ran).
func (s *Span) Detail(d string) {
	if s != nil {
		s.detail = d
	}
}

// End closes the span: it records the span into the trace and observes the
// duration into the per-stage latency histogram. Safe to call more than
// once; only the first call records.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.once.Do(func() {
		d := time.Since(s.start)
		if s.trace != nil {
			s.trace.mu.Lock()
			s.trace.spans = append(s.trace.spans, SpanRecord{
				Name:     s.name,
				Detail:   s.detail,
				Start:    s.start.Sub(s.trace.start),
				Duration: d,
				Depth:    s.depth,
			})
			s.trace.mu.Unlock()
		}
		if s.reg != nil {
			s.reg.Histogram(StageMetric, "Pipeline stage latency in seconds.",
				nil, L("stage", s.name)).Observe(d.Seconds())
		}
	})
}

// Annotate adds a key=value note to the trace. Nil-safe.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.notes = append(t.notes, Annotation{Key: key, Value: value})
	t.mu.Unlock()
}

// Finish stamps the trace's end time (idempotent; earliest call wins).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// Elapsed is the wall time from trace creation to Finish (or to now when the
// trace is unfinished).
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		return time.Since(t.start)
	}
	return t.end.Sub(t.start)
}

// Spans returns the completed span records ordered by start offset.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Annotations returns the trace annotations in the order they were added.
func (t *Trace) Annotations() []Annotation {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Annotation, len(t.notes))
	copy(out, t.notes)
	return out
}

// StageTotal sums the durations of the top-level (depth 0) spans — the
// per-stage account of where the request's latency went. Nested spans (e.g.
// per-statement executions inside the execute stage) are excluded so
// concurrent children don't double-count wall time.
func (t *Trace) StageTotal() time.Duration {
	var sum time.Duration
	for _, s := range t.Spans() {
		if s.Depth == 0 {
			sum += s.Duration
		}
	}
	return sum
}

// Breakdown renders the per-stage duration table kwsearch -trace prints:
// each top-level stage with its wall time and share, nested spans indented,
// then the stage total against the trace's elapsed wall time.
func (t *Trace) Breakdown() string {
	if t == nil {
		return ""
	}
	spans := t.Spans()
	elapsed := t.Elapsed()
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s\n", t.ID)
	for _, s := range spans {
		name := strings.Repeat("  ", s.Depth) + s.Name
		if s.Detail != "" {
			name += " (" + s.Detail + ")"
		}
		line := fmt.Sprintf("  %-28s %12v", name, s.Duration.Round(time.Microsecond))
		if s.Depth == 0 && elapsed > 0 {
			line += fmt.Sprintf("  %5.1f%%", 100*float64(s.Duration)/float64(elapsed))
		}
		b.WriteString(line + "\n")
	}
	fmt.Fprintf(&b, "  %-28s %12v  of %v wall\n", "stages total",
		t.StageTotal().Round(time.Microsecond), elapsed.Round(time.Microsecond))
	if notes := t.Annotations(); len(notes) > 0 {
		parts := make([]string, len(notes))
		for i, n := range notes {
			parts[i] = n.Key + "=" + n.Value
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(parts, " "))
	}
	return b.String()
}

// traceJSON is the wire form of a trace (the structured request log embeds
// it; /api/query returns it when asked).
type traceJSON struct {
	ID          string       `json:"id"`
	ElapsedMS   float64      `json:"elapsed_ms"`
	Stages      []stageJSON  `json:"stages"`
	Annotations []Annotation `json:"annotations,omitempty"`
}

type stageJSON struct {
	Name       string  `json:"name"`
	Detail     string  `json:"detail,omitempty"`
	StartMS    float64 `json:"start_ms"`
	DurationMS float64 `json:"duration_ms"`
	Depth      int     `json:"depth,omitempty"`
}

// MarshalJSON renders the trace with millisecond stage timings.
func (t *Trace) MarshalJSON() ([]byte, error) {
	tj := traceJSON{
		ID:          t.ID,
		ElapsedMS:   ms(t.Elapsed()),
		Annotations: t.Annotations(),
	}
	for _, s := range t.Spans() {
		tj.Stages = append(tj.Stages, stageJSON{
			Name:       s.Name,
			Detail:     s.Detail,
			StartMS:    ms(s.Start),
			DurationMS: ms(s.Duration),
			Depth:      s.Depth,
		})
	}
	return json.Marshal(tj)
}

func ms(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// Stopwatch returns a function reporting the wall time elapsed since the
// call. Clock access is confined to this package (see the detclock
// analyzer), so deterministic packages that need a duration — e.g. the epoch
// commit recording kwagg_epoch_build_seconds — time themselves through it
// instead of reading time.Now directly.
func Stopwatch() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}
