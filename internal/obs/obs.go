// Package obs is the observability layer of the serving stack: a
// dependency-free metrics registry (atomic counters, gauges, and fixed-bucket
// latency histograms with quantile snapshots) plus a lightweight span API
// (span.go) that the query pipeline threads through every stage.
//
// The paper's evaluation (Section 8) reports per-stage costs — keyword
// interpretation, pattern generation, ranking, SQL execution — and this
// package makes those stage latencies first-class, measurable quantities at
// serving time: every pipeline stage runs under a span, spans observe into
// per-stage histograms, and the registry encodes itself in the Prometheus
// text exposition format for GET /metrics.
//
// A Registry and all metric types are safe for concurrent use. Metrics are
// identified by name plus an ordered label set; re-registering the same
// (name, labels) returns the existing metric, so call sites can look metrics
// up on the hot path without holding references.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds: exponential from 50µs to 10s, chosen so the in-memory pipeline
// stages (typically µs–ms) and full SQL executions (ms–s) both land in the
// resolved range rather than the first or last bucket.
var DefBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds named metric families. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family groups every label combination of one metric name under a single
// HELP/TYPE pair (the Prometheus exposition rules forbid repeating them).
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	mu     sync.Mutex
	series map[string]any // label signature -> *Counter | *Gauge | *Histogram | funcMetric
}

type funcMetric struct{ fn func() float64 }

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomic compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1. Dec subtracts 1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram of float64 observations (latency in
// seconds by convention). Buckets are cumulative-upper-bound as in
// Prometheus; observations above the last bound land in the implicit +Inf
// bucket.
type Histogram struct {
	bounds []float64 // sorted upper bounds, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot summarises the histogram: total count, sum, and the estimated
// 50th/95th/99th percentiles (linear interpolation inside the bucket holding
// the target rank; the +Inf bucket clamps to the last finite bound).
func (h *Histogram) Snapshot() HistogramSnapshot {
	n := len(h.bounds)
	counts := make([]uint64, n+1)
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: h.count.Load(), Sum: math.Float64frombits(h.sum.Load())}
	if total == 0 {
		return s
	}
	s.P50 = h.quantile(counts, total, 0.50)
	s.P95 = h.quantile(counts, total, 0.95)
	s.P99 = h.quantile(counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile from per-bucket counts. The target rank
// is interpolated linearly within its bucket, between the bucket's lower and
// upper bound (lower bound 0 for the first bucket).
func (h *Histogram) quantile(counts []uint64, total uint64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i == len(h.bounds) {
			// +Inf bucket: no finite upper bound, clamp.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		return lo + (hi-lo)*((rank-prev)/float64(c))
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// family lookup: get-or-create with type/help consistency checks.
func (r *Registry) family(name, help, typ string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// signature renders labels sorted by key as {k="v",...}; "" for no labels.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func (f *family) get(labels []Label, create func() any) any {
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[sig]; ok {
		return m
	}
	m := create()
	f.series[sig] = m
	return m
}

// Counter returns the counter for (name, labels), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.family(name, help, "counter").get(labels, func() any { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q%s is not an owned counter", name, signature(labels)))
	}
	return c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.family(name, help, "gauge").get(labels, func() any { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q%s is not an owned gauge", name, signature(labels)))
	}
	return g
}

// CounterFunc registers a counter whose value is read from fn at scrape time
// (used to surface counters owned elsewhere, e.g. the qcache hit counts).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.family(name, help, "counter").get(labels, func() any { return funcMetric{fn} })
}

// GaugeFunc registers a gauge whose value is read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.family(name, help, "gauge").get(labels, func() any { return funcMetric{fn} })
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket bounds on first use (nil buckets selects DefBuckets). Later
// calls ignore buckets and return the existing histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	m := r.family(name, help, "histogram").get(labels, func() any { return newHistogram(buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q%s is not a histogram", name, signature(labels)))
	}
	return h
}

// MetricSnapshot is one metric series in a registry snapshot, JSON-friendly
// for /api/stats.
type MetricSnapshot struct {
	Name   string             `json:"name"`
	Type   string             `json:"type"`
	Labels map[string]string  `json:"labels,omitempty"`
	Value  float64            `json:"value"`
	Hist   *HistogramSnapshot `json:"histogram,omitempty"`
}

// Snapshot returns every metric series with its current value, sorted by
// name then label signature. Histogram series carry quantile summaries and
// report their observation count as Value.
func (r *Registry) Snapshot() []MetricSnapshot {
	var out []MetricSnapshot
	for _, f := range r.sortedFamilies() {
		for _, s := range f.sortedSeries() {
			ms := MetricSnapshot{Name: f.name, Type: f.typ, Labels: labelMap(s.labels)}
			switch m := s.metric.(type) {
			case *Counter:
				ms.Value = float64(m.Value())
			case *Gauge:
				ms.Value = m.Value()
			case funcMetric:
				ms.Value = m.fn()
			case *Histogram:
				snap := m.Snapshot()
				ms.Hist = &snap
				ms.Value = float64(snap.Count)
			}
			out = append(out, ms)
		}
	}
	return out
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// series pairs a metric with its parsed label signature for stable encoding.
type seriesView struct {
	sig    string
	labels []Label
	metric any
}

func (f *family) sortedSeries() []seriesView {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]seriesView, 0, len(f.series))
	for sig, m := range f.series {
		out = append(out, seriesView{sig: sig, labels: parseSignature(sig), metric: m})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].sig < out[j].sig })
	return out
}

// parseSignature recovers the label list from a signature string. Signatures
// are produced by this package, so the parse only has to undo its own
// escaping.
func parseSignature(sig string) []Label {
	if sig == "" {
		return nil
	}
	body := strings.TrimSuffix(strings.TrimPrefix(sig, "{"), "}")
	var out []Label
	for len(body) > 0 {
		eq := strings.Index(body, `="`)
		if eq < 0 {
			break
		}
		key := body[:eq]
		rest := body[eq+2:]
		end, val := 0, strings.Builder{}
		for end < len(rest) {
			if rest[end] == '\\' && end+1 < len(rest) {
				switch rest[end+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[end+1])
				}
				end += 2
				continue
			}
			if rest[end] == '"' {
				break
			}
			val.WriteByte(rest[end])
			end++
		}
		out = append(out, Label{Key: key, Value: val.String()})
		body = strings.TrimPrefix(rest[min(end+1, len(rest)):], ",")
	}
	return out
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// WritePrometheus encodes the registry in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE pair per family, series sorted, and
// histograms expanded to cumulative _bucket/_sum/_count lines.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.sortedSeries() {
			switch m := s.metric.(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.sig, fmtFloat(float64(m.Value())))
			case *Gauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.sig, fmtFloat(m.Value()))
			case funcMetric:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.sig, fmtFloat(m.fn()))
			case *Histogram:
				writeHistogram(w, f.name, s.labels, m)
			}
		}
	}
}

func writeHistogram(w io.Writer, name string, labels []Label, h *Histogram) {
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			signature(append(labels[:len(labels):len(labels)], L("le", fmtFloat(bound)))), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		signature(append(labels[:len(labels):len(labels)], L("le", "+Inf"))), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, signature(labels), fmtFloat(math.Float64frombits(h.sum.Load())))
	fmt.Fprintf(w, "%s_count%s %d\n", name, signature(labels), h.count.Load())
}

func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
