package obs

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("kwagg_test_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Same (name, labels) returns the same counter.
	if r.Counter("kwagg_test_total", "help") != c {
		t.Error("re-registering returned a different counter")
	}

	g := r.Gauge("kwagg_test_gauge", "help", L("x", "1"))
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("kwagg_test_seconds", "help", []float64{0.01, 0.1, 1})
	// A value exactly on a bound lands in that bound's bucket (le is <=).
	for _, v := range []float64{0.005, 0.01, 0.05, 0.1, 0.5, 1, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`kwagg_test_seconds_bucket{le="0.01"} 2`,
		`kwagg_test_seconds_bucket{le="0.1"} 4`,
		`kwagg_test_seconds_bucket{le="1"} 6`,
		`kwagg_test_seconds_bucket{le="+Inf"} 7`,
		`kwagg_test_seconds_count 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encoding missing %q in:\n%s", want, out)
		}
	}
	snap := h.Snapshot()
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
	wantSum := 0.005 + 0.01 + 0.05 + 0.1 + 0.5 + 1 + 5
	if math.Abs(snap.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("kwagg_q_seconds", "help", []float64{0.1, 0.2, 0.4, 0.8})
	// 100 observations uniform in (0, 0.1]: every quantile interpolates
	// inside the first bucket.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	snap := h.Snapshot()
	if snap.P50 <= 0 || snap.P50 > 0.1 {
		t.Errorf("p50 = %v, want within first bucket (0, 0.1]", snap.P50)
	}
	if math.Abs(snap.P50-0.05) > 0.01 {
		t.Errorf("p50 = %v, want ~0.05", snap.P50)
	}
	if snap.P95 < snap.P50 || snap.P99 < snap.P95 {
		t.Errorf("quantiles not monotone: p50=%v p95=%v p99=%v", snap.P50, snap.P95, snap.P99)
	}

	// Observations above every bound land in +Inf and clamp to the last
	// finite bound.
	h2 := r.Histogram("kwagg_q2_seconds", "help", []float64{0.1, 0.2})
	for i := 0; i < 10; i++ {
		h2.Observe(5)
	}
	if got := h2.Snapshot().P99; got != 0.2 {
		t.Errorf("p99 of all-overflow histogram = %v, want clamp to 0.2", got)
	}

	// Empty histogram: all quantiles zero.
	h3 := r.Histogram("kwagg_q3_seconds", "help", nil)
	if s := h3.Snapshot(); s.P50 != 0 || s.P95 != 0 || s.P99 != 0 || s.Count != 0 {
		t.Errorf("empty histogram snapshot = %+v, want zeros", s)
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("kwagg_conc_total", "help")
			g := r.Gauge("kwagg_conc_gauge", "help")
			h := r.Histogram("kwagg_conc_seconds", "help", nil)
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("kwagg_conc_total", "help").Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
	if got := r.Gauge("kwagg_conc_gauge", "help").Value(); got != goroutines*per {
		t.Errorf("gauge = %v, want %d", got, goroutines*per)
	}
	snap := r.Histogram("kwagg_conc_seconds", "help", nil).Snapshot()
	if snap.Count != goroutines*per {
		t.Errorf("histogram count = %d, want %d", snap.Count, goroutines*per)
	}
	if math.Abs(snap.Sum-float64(goroutines*per)*0.001) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", snap.Sum, float64(goroutines*per)*0.001)
	}
}

func TestPrometheusEncoding(t *testing.T) {
	r := NewRegistry()
	r.Counter("kwagg_enc_total", "requests by outcome", L("outcome", "ok")).Add(3)
	r.Counter("kwagg_enc_total", "requests by outcome", L("outcome", "error")).Inc()
	r.Gauge("kwagg_enc_gauge", "a gauge").Set(1.5)
	r.GaugeFunc("kwagg_enc_func", "func gauge", func() float64 { return 42 })
	r.Histogram("kwagg_enc_seconds", "latency", []float64{0.1, 1}, L("stage", "match")).Observe(0.05)

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()

	// Every non-comment line is "name{labels} value" with a parseable value.
	helpSeen := map[string]bool{}
	typeSeen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			if helpSeen[name] {
				t.Errorf("duplicate HELP for %s", name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			name, typ := fields[2], fields[3]
			if typeSeen[name] {
				t.Errorf("duplicate TYPE for %s", name)
			}
			typeSeen[name] = true
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("bad TYPE %q for %s", typ, name)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("malformed line %q", line)
			continue
		}
		if _, err := parseFloat(line[sp+1:]); err != nil {
			t.Errorf("unparseable value in line %q: %v", line, err)
		}
	}
	for _, want := range []string{
		`kwagg_enc_total{outcome="error"} 1`,
		`kwagg_enc_total{outcome="ok"} 3`,
		`kwagg_enc_gauge 1.5`,
		`kwagg_enc_func 42`,
		`kwagg_enc_seconds_bucket{le="0.1",stage="match"} 1`,
		`kwagg_enc_seconds_bucket{le="+Inf",stage="match"} 1`,
		`kwagg_enc_seconds_count{stage="match"} 1`,
		`# TYPE kwagg_enc_seconds histogram`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("encoding missing %q in:\n%s", want, out)
		}
	}
}

func parseFloat(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("kwagg_esc_total", "h", L("q", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	if want := `kwagg_esc_total{q="a\"b\\c\nd"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped encoding missing %q in:\n%s", want, b.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("kwagg_snap_total", "h", L("outcome", "ok")).Add(2)
	r.Histogram("kwagg_snap_seconds", "h", nil, L("stage", "x")).Observe(0.01)
	snaps := r.Snapshot()
	byName := map[string]MetricSnapshot{}
	for _, s := range snaps {
		byName[s.Name] = s
	}
	c, ok := byName["kwagg_snap_total"]
	if !ok || c.Value != 2 || c.Labels["outcome"] != "ok" || c.Type != "counter" {
		t.Errorf("counter snapshot wrong: %+v", c)
	}
	h, ok := byName["kwagg_snap_seconds"]
	if !ok || h.Hist == nil || h.Hist.Count != 1 || h.Labels["stage"] != "x" {
		t.Errorf("histogram snapshot wrong: %+v", h)
	}
}
