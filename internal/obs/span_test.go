package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	ctx, trace := NewTrace(context.Background())
	ctx = WithRegistry(ctx, NewRegistry())

	ctx1, outer := Start(ctx, "outer")
	ctx2, inner := Start(ctx1, "inner")
	_, innermost := Start(ctx2, "innermost")
	innermost.End()
	inner.End()
	outer.End()
	// A sibling of outer goes back to depth 0.
	_, sib := Start(ctx, "sibling")
	sib.End()
	trace.Finish()

	spans := trace.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	depth := map[string]int{}
	for _, s := range spans {
		depth[s.Name] = s.Depth
	}
	for name, want := range map[string]int{"outer": 0, "inner": 1, "innermost": 2, "sibling": 0} {
		if depth[name] != want {
			t.Errorf("span %s depth = %d, want %d", name, depth[name], want)
		}
	}
	// StageTotal only sums depth-0 spans.
	var want time.Duration
	for _, s := range spans {
		if s.Depth == 0 {
			want += s.Duration
		}
	}
	if got := trace.StageTotal(); got != want {
		t.Errorf("StageTotal = %v, want %v", got, want)
	}
}

func TestSpanObservesHistogram(t *testing.T) {
	reg := NewRegistry()
	ctx := WithRegistry(context.Background(), reg)
	_, sp := Start(ctx, "match")
	sp.End()
	h := reg.Histogram(StageMetric, "", nil, L("stage", "match"))
	if h.Snapshot().Count != 1 {
		t.Error("span did not observe into the stage histogram")
	}
	// End is idempotent.
	sp.End()
	if h.Snapshot().Count != 1 {
		t.Error("double End observed twice")
	}
}

func TestNoopSpan(t *testing.T) {
	// No trace, no registry: Start returns a nil span and every method is
	// safe.
	ctx, sp := Start(context.Background(), "x")
	if sp != nil {
		t.Error("expected nil span on bare context")
	}
	sp.Detail("d")
	sp.End()
	if TraceFrom(ctx) != nil {
		t.Error("bare context should have no trace")
	}
	// Nil trace methods are safe too.
	var tr *Trace
	tr.Annotate("k", "v")
	tr.Finish()
	if tr.Elapsed() != 0 || tr.Spans() != nil || tr.Breakdown() != "" {
		t.Error("nil trace accessors should return zero values")
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	ctx, trace := NewTrace(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Start(ctx, "sql")
			trace.Annotate("k", "v")
			sp.End()
		}()
	}
	wg.Wait()
	if got := len(trace.Spans()); got != 32 {
		t.Errorf("got %d spans, want 32", got)
	}
	if got := len(trace.Annotations()); got != 32 {
		t.Errorf("got %d annotations, want 32", got)
	}
}

func TestTraceJSONAndBreakdown(t *testing.T) {
	ctx, trace := NewTrace(context.Background())
	ctx1, outer := Start(ctx, "execute")
	_, inner := Start(ctx1, "sql")
	inner.Detail("stmt 0")
	inner.End()
	outer.End()
	trace.Annotate("answer_cache", "miss")
	trace.Finish()

	b, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string `json:"id"`
		Stages []struct {
			Name   string `json:"name"`
			Detail string `json:"detail"`
			Depth  int    `json:"depth"`
		} `json:"stages"`
		Annotations []Annotation `json:"annotations"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if decoded.ID != trace.ID || len(decoded.Stages) != 2 {
		t.Errorf("bad trace JSON: %s", b)
	}
	if decoded.Stages[1].Detail != "stmt 0" || decoded.Stages[1].Depth != 1 {
		t.Errorf("nested stage lost detail/depth: %s", b)
	}
	if len(decoded.Annotations) != 1 || decoded.Annotations[0].Key != "answer_cache" {
		t.Errorf("annotations lost: %s", b)
	}

	bd := trace.Breakdown()
	for _, want := range []string{"execute", "sql (stmt 0)", "stages total", "answer_cache=miss", trace.ID} {
		if !strings.Contains(bd, want) {
			t.Errorf("breakdown missing %q:\n%s", want, bd)
		}
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if len(id) != 16 || seen[id] {
			t.Fatalf("bad or duplicate ID %q", id)
		}
		seen[id] = true
	}
}

// TestStopwatch pins the clock-containment helper the epoch builder times
// itself with: elapsed time is positive and monotonically non-decreasing
// across reads.
func TestStopwatch(t *testing.T) {
	elapsed := Stopwatch()
	first := elapsed()
	if first < 0 {
		t.Fatalf("negative elapsed time %v", first)
	}
	if second := elapsed(); second < first {
		t.Fatalf("elapsed went backwards: %v then %v", first, second)
	}
}
