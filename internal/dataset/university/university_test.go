package university

import (
	"testing"

	"kwagg/internal/relation"
)

// TestFigure1Contents spot-checks the exact tuples of the paper's Figure 1.
func TestFigure1Contents(t *testing.T) {
	db := New()
	if got := db.Table("Student").Len(); got != 3 {
		t.Errorf("students: %d", got)
	}
	if got := db.Table("Teach").Len(); got != 6 {
		t.Errorf("teach rows: %d", got)
	}
	// Two students named Green with different ids.
	greens := 0
	for _, tu := range db.Table("Student").Tuples {
		if tu[1] == "Green" {
			greens++
		}
	}
	if greens != 2 {
		t.Errorf("Green students: %d", greens)
	}
	// b1 is used twice for Java (c1) — the duplication behind query Q2.
	b1c1 := 0
	for _, tu := range db.Table("Teach").Tuples {
		if tu[0] == "c1" && tu[2] == "b1" {
			b1c1++
		}
	}
	if b1c1 != 2 {
		t.Errorf("textbook b1 for c1: %d rows, want 2", b1c1)
	}
}

func TestFigure1Integrity(t *testing.T) {
	db := New()
	if errs := relation.ValidateDatabase(db); len(errs) != 0 {
		t.Fatalf("schema: %v", errs)
	}
	if errs := relation.ValidateData(db); len(errs) != 0 {
		t.Fatalf("data: %v", errs)
	}
}

func TestFigure2Integrity(t *testing.T) {
	db := NewDenormalizedLecturer()
	if errs := relation.ValidateDatabase(db); len(errs) != 0 {
		t.Fatalf("schema: %v", errs)
	}
	// The declared FD Did -> Fid must hold on the data.
	seen := map[relation.Value]relation.Value{}
	for _, tu := range db.Table("Lecturer").Tuples {
		if prev, ok := seen[tu[2]]; ok && prev != tu[3] {
			t.Fatalf("FD Did -> Fid violated")
		}
		seen[tu[2]] = tu[3]
	}
}

// TestFigure8MatchesFigure1 checks the Enrolment relation is exactly the
// join of Figure 1's Student, Enrol and Course.
func TestFigure8MatchesFigure1(t *testing.T) {
	norm, den := New(), NewEnrolment()
	enrol := norm.Table("Enrol")
	enrolment := den.Table("Enrolment")
	if enrolment.Len() != enrol.Len() {
		t.Fatalf("Enrolment rows: %d, want %d", enrolment.Len(), enrol.Len())
	}
	for i := range enrol.Tuples {
		sid, code := enrol.Tuples[i][0], enrol.Tuples[i][1]
		found := false
		for j := range enrolment.Tuples {
			if relation.Equal(enrolment.Value(j, "Sid"), sid) &&
				relation.Equal(enrolment.Value(j, "Code"), code) {
				found = true
				// Student attributes must agree with the Student table.
				srow := norm.Table("Student").Lookup("Sid", sid)[0]
				if !relation.Equal(enrolment.Value(j, "Sname"), norm.Table("Student").Value(srow, "Sname")) {
					t.Fatalf("Sname mismatch for %v", sid)
				}
			}
		}
		if !found {
			t.Fatalf("enrolment (%v, %v) missing", sid, code)
		}
	}
}

func TestHintsCoverSynthesizedRelations(t *testing.T) {
	h := EnrolmentHints()
	if len(h) != 3 {
		t.Errorf("EnrolmentHints: %v", h)
	}
	h2 := DenormalizedLecturerHints()
	if len(h2) != 2 {
		t.Errorf("DenormalizedLecturerHints: %v", h2)
	}
}
