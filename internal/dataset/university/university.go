// Package university builds the running-example databases of the paper: the
// normalized university database of Figure 1, the denormalized variant of
// Figure 2 (Lecturer carrying a redundant Faculty reference), and the
// single-relation unnormalized Enrolment database of Figure 8.
package university

import (
	"kwagg/internal/normalize"
	"kwagg/internal/relation"
)

// New returns the normalized university database of Figure 1.
func New() *relation.Database {
	db := relation.NewDatabase("university")

	student := db.AddSchema(relation.NewSchema("Student", "Sid", "Sname", "Age INT").Key("Sid"))
	student.MustInsert("s1", "George", int64(22))
	student.MustInsert("s2", "Green", int64(24))
	student.MustInsert("s3", "Green", int64(21))

	course := db.AddSchema(relation.NewSchema("Course", "Code", "Title", "Credit FLOAT").Key("Code"))
	course.MustInsert("c1", "Java", 5.0)
	course.MustInsert("c2", "Database", 4.0)
	course.MustInsert("c3", "Multimedia", 3.0)

	enrol := db.AddSchema(relation.NewSchema("Enrol", "Sid", "Code", "Grade").
		Key("Sid", "Code").
		Ref([]string{"Sid"}, "Student").
		Ref([]string{"Code"}, "Course"))
	enrol.MustInsert("s1", "c1", "A")
	enrol.MustInsert("s1", "c2", "B")
	enrol.MustInsert("s1", "c3", "B")
	enrol.MustInsert("s2", "c1", "A")
	enrol.MustInsert("s3", "c1", "A")
	enrol.MustInsert("s3", "c3", "B")

	faculty := db.AddSchema(relation.NewSchema("Faculty", "Fid", "Fname").Key("Fid"))
	faculty.MustInsert("f1", "Engineering")

	department := db.AddSchema(relation.NewSchema("Department", "Did", "Dname", "Fid").
		Key("Did").
		Ref([]string{"Fid"}, "Faculty"))
	department.MustInsert("d1", "CS", "f1")

	lecturer := db.AddSchema(relation.NewSchema("Lecturer", "Lid", "Lname", "Did").
		Key("Lid").
		Ref([]string{"Did"}, "Department"))
	lecturer.MustInsert("l1", "Steven", "d1")
	lecturer.MustInsert("l2", "George", "d1")

	textbook := db.AddSchema(relation.NewSchema("Textbook", "Bid", "Tname", "Price FLOAT").Key("Bid"))
	textbook.MustInsert("b1", "Programming Language", 10.0)
	textbook.MustInsert("b2", "Discrete Mathematics", 15.0)
	textbook.MustInsert("b3", "Database Management", 12.0)
	textbook.MustInsert("b4", "Multimedia Technologies", 20.0)

	teach := db.AddSchema(relation.NewSchema("Teach", "Code", "Lid", "Bid").
		Key("Code", "Lid", "Bid").
		Ref([]string{"Code"}, "Course").
		Ref([]string{"Lid"}, "Lecturer").
		Ref([]string{"Bid"}, "Textbook"))
	teach.MustInsert("c1", "l1", "b1")
	teach.MustInsert("c1", "l1", "b2")
	teach.MustInsert("c1", "l2", "b1")
	teach.MustInsert("c2", "l1", "b2")
	teach.MustInsert("c2", "l1", "b3")
	teach.MustInsert("c3", "l2", "b4")

	return db
}

// NewDenormalizedLecturer returns the Figure 2 variant: Lecturer has a
// redundant Fid foreign key to Faculty, duplicating the Department->Faculty
// association, which makes Lecturer violate 3NF (Did -> Fid).
func NewDenormalizedLecturer() *relation.Database {
	db := relation.NewDatabase("university-fig2")

	faculty := db.AddSchema(relation.NewSchema("Faculty", "Fid", "Fname").Key("Fid"))
	faculty.MustInsert("f1", "Engineering")

	department := db.AddSchema(relation.NewSchema("Department", "Did", "Dname").Key("Did"))
	department.MustInsert("d1", "CS")

	lecturer := db.AddSchema(relation.NewSchema("Lecturer", "Lid", "Lname", "Did", "Fid").
		Key("Lid").
		Ref([]string{"Did"}, "Department").
		Ref([]string{"Fid"}, "Faculty").
		Dep([]string{"Lid"}, "Lname", "Did", "Fid").
		Dep([]string{"Did"}, "Fid"))
	lecturer.MustInsert("l1", "Steven", "d1", "f1")
	lecturer.MustInsert("l2", "George", "d1", "f1")

	return db
}

// DenormalizedLecturerHints names the relations synthesized from the
// Figure 2 Lecturer relation when building its normalized view.
func DenormalizedLecturerHints() map[string]string {
	return map[string]string{
		normalize.KeySig("Lid"): "Lecturer",
		normalize.KeySig("Did"): "DeptFaculty",
	}
}

// EnrolmentHints names the relations synthesized from the Figure 8
// Enrolment relation: the Student', Course' and Enrol' of Example 8.
func EnrolmentHints() map[string]string {
	return map[string]string{
		normalize.KeySig("Sid"):         "Student",
		normalize.KeySig("Code"):        "Course",
		normalize.KeySig("Sid", "Code"): "Enrol",
	}
}

// NewEnrolment returns the Figure 8 database: a single unnormalized
// Enrolment relation, the join of Student, Enrol and Course, with the
// functional dependencies given in Section 4.
func NewEnrolment() *relation.Database {
	db := relation.NewDatabase("university-fig8")

	enrolment := db.AddSchema(relation.NewSchema("Enrolment",
		"Sid", "Code", "Sname", "Age INT", "Title", "Credit FLOAT", "Grade").
		Key("Sid", "Code").
		Dep([]string{"Sid"}, "Sname", "Age").
		Dep([]string{"Code"}, "Title", "Credit").
		Dep([]string{"Sid", "Code"}, "Grade"))
	enrolment.MustInsert("s1", "c1", "George", int64(22), "Java", 5.0, "A")
	enrolment.MustInsert("s1", "c2", "George", int64(22), "Database", 4.0, "B")
	enrolment.MustInsert("s1", "c3", "George", int64(22), "Multimedia", 3.0, "B")
	enrolment.MustInsert("s2", "c1", "Green", int64(24), "Java", 5.0, "A")
	enrolment.MustInsert("s3", "c1", "Green", int64(21), "Java", 5.0, "A")
	enrolment.MustInsert("s3", "c3", "Green", int64(21), "Multimedia", 3.0, "B")

	return db
}
