package synth

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-1) != 0 {
		t.Error("degenerate Intn should be 0")
	}
}

func TestRangeBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := r.Range(3, 9)
		return v >= 3 && v <= 9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	r := NewRNG(5)
	if r.Range(4, 4) != 4 || r.Range(9, 3) != 9 {
		t.Error("degenerate Range behaviour")
	}
}

func TestFloatBounds(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 10000; i++ {
		if f := r.Float(); f < 0 || f >= 1 {
			t.Fatalf("Float out of range: %v", f)
		}
	}
}

func TestSample(t *testing.T) {
	r := NewRNG(3)
	s := r.Sample(10, 4)
	if len(s) != 4 {
		t.Fatalf("Sample size: %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Sample invalid: %v", s)
		}
		seen[v] = true
	}
	// Full sample is a permutation.
	s = r.Sample(5, 5)
	sum := 0
	for _, v := range s {
		sum += v
	}
	if sum != 10 {
		t.Errorf("full sample should be a permutation: %v", s)
	}
}

func TestPoolsNonEmpty(t *testing.T) {
	pools := map[string][]string{
		"Colors": Colors, "PartTypes": PartTypes, "Segments": Segments,
		"Priorities": Priorities, "Nations": Nations, "Regions": Regions,
		"FirstNames": FirstNames, "LastNames": LastNames,
		"TitleWords": TitleWords, "Acronyms": Acronyms,
	}
	for name, pool := range pools {
		if len(pool) == 0 {
			t.Errorf("pool %s is empty", name)
		}
	}
	// The acronym pool must not contain the specially planted venues.
	for _, a := range Acronyms {
		if a == "SIGMOD" || a == "SIGIR" || a == "CIKM" {
			t.Errorf("pool must not duplicate planted venue %s", a)
		}
	}
}
