// Package synth provides the deterministic pseudo-random generator and name
// pools shared by the synthetic dataset builders. Determinism matters: the
// experiment harness reports absolute numbers, and reruns must reproduce
// them exactly.
package synth

// RNG is a SplitMix64 pseudo-random generator: tiny, fast, and stable across
// platforms.
type RNG struct{ state uint64 }

// NewRNG seeds a generator.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Range returns a value in [lo, hi] inclusive.
func (r *RNG) Range(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.Intn(hi-lo+1)
}

// Float returns a value in [0, 1).
func (r *RNG) Float() float64 { return float64(r.Next()>>11) / float64(1<<53) }

// Pick returns a random element of the slice.
func (r *RNG) Pick(xs []string) string { return xs[r.Intn(len(xs))] }

// Sample returns k distinct indexes from [0, n) in random order (k <= n).
func (r *RNG) Sample(n, k int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// Name pools in the spirit of TPC-H's dbgen grammar.
var (
	// Colors and nouns compose part names such as "royal olive".
	Colors = []string{
		"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
		"blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse",
		"chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
		"deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted",
		"gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot",
		"indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light",
		"lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight",
		"mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid",
		"pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff",
		"purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy",
		"seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel",
		"tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
	}
	PartTypes = []string{
		"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED STEEL",
		"LARGE BRUSHED BRASS", "ECONOMY BURNISHED NICKEL", "PROMO PLATED STEEL",
		"STANDARD POLISHED BRASS", "SMALL BURNISHED TIN", "ECONOMY ANODIZED COPPER",
		"LARGE PLATED NICKEL",
	}
	Segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	Priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	Nations    = []string{
		"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA", "FRANCE",
		"GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA",
		"MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
		"VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES",
	}
	Regions = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

	// People names for the publication dataset.
	FirstNames = []string{
		"Alice", "Bob", "Carol", "David", "Eve", "Frank", "Grace", "Henry",
		"Irene", "Jack", "Karen", "Leo", "Nina", "Oscar", "Paula", "Quentin",
		"Rita", "Sam", "Tina", "Victor", "Wendy", "Xavier", "Yvonne", "Zack",
		"Michael", "Sarah", "James", "Linda", "Robert", "Patricia",
	}
	LastNames = []string{
		"Anderson", "Baker", "Chen", "Davis", "Evans", "Fischer", "Garcia",
		"Hoffman", "Ivanov", "Johnson", "Kumar", "Lopez", "Miller", "Nguyen",
		"Olsen", "Peterson", "Quinn", "Rodriguez", "Schmidt", "Taylor", "Ueda",
		"Vogel", "Wang", "Xu", "Young", "Zhang", "Brown", "Clark", "Lewis", "Walker",
	}
	TitleWords = []string{
		"efficient", "scalable", "adaptive", "distributed", "parallel",
		"incremental", "approximate", "robust", "secure", "streaming",
		"indexing", "query", "optimization", "processing", "mining",
		"learning", "graph", "keyword", "search", "aggregation", "join",
		"transaction", "storage", "cache", "schema", "semantic", "ranking",
		"clustering", "sampling", "compression",
	}
	Acronyms = []string{
		"VLDB", "ICDE", "EDBT", "PODS", "KDD", "WWW", "WSDM", "ICDM", "DASFAA",
		"SSDBM", "MDM", "ER", "DEXA", "ADBIS", "IDEAS",
	}
)
