// Package tpch generates the scaled-down TPC-H-like database of the paper's
// evaluation (Table 2): Part, Supplier, Lineitem, Order, Customer, Nation,
// Region. The generator is deterministic and plants the value collisions the
// paper's queries exercise: several parts sharing the exact names "royal
// olive", "yellow tomato", "pink rose" and "white rose"; one "indian black
// chocolate" part supplied by a handful of suppliers that recur across many
// orders; and supplier-part pairs duplicated across orders so that
// ORA-unaware counting inflates.
//
// The package also derives the denormalized variant of Table 7 (TPCH'): the
// wide Ordering relation joining Part, Supplier, Lineitem and Order, plus a
// Customer relation that additionally carries its nation's region.
package tpch

import (
	"fmt"

	"kwagg/internal/dataset/synth"
	"kwagg/internal/normalize"
	"kwagg/internal/relation"
)

// Config controls the scale of the generated database.
type Config struct {
	Seed      uint64
	Parts     int
	Suppliers int
	Customers int
	Orders    int
	// SuppliersPerPart and OrdersPerPair bound how many suppliers supply a
	// part and how many orders repeat one (part, supplier) pair; the latter
	// drives the duplicate counting SQAK suffers from (queries T5, T6).
	SuppliersPerPart [2]int
	OrdersPerPair    [2]int
}

// Default returns the configuration used by the experiment harness.
func Default() Config {
	return Config{
		Seed:             42,
		Parts:            220,
		Suppliers:        60,
		Customers:        150,
		Orders:           1200,
		SuppliersPerPart: [2]int{2, 5},
		OrdersPerPair:    [2]int{1, 4},
	}
}

// Large returns a stress-test configuration (~50k line items), used by the
// scale benchmarks; generation stays deterministic.
func Large() Config {
	return Config{
		Seed:             42,
		Parts:            2000,
		Suppliers:        400,
		Customers:        1000,
		Orders:           10000,
		SuppliersPerPart: [2]int{3, 6},
		OrdersPerPair:    [2]int{2, 5},
	}
}

// Small returns a fast configuration for unit tests.
func Small() Config {
	return Config{
		Seed:             7,
		Parts:            40,
		Suppliers:        12,
		Customers:        20,
		Orders:           80,
		SuppliersPerPart: [2]int{1, 3},
		OrdersPerPair:    [2]int{1, 3},
	}
}

// Special part names planted with exact duplicates (the paper's T3-T5, T8).
const (
	RoyalOlive      = "royal olive"
	YellowTomato    = "yellow tomato"
	IndianBlackChoc = "indian black chocolate"
	PinkRose        = "pink rose"
	WhiteRose       = "white rose"
)

// Schema returns the normalized TPCH schema of Table 2.
func Schema() []*relation.Schema {
	return []*relation.Schema{
		relation.NewSchema("Region", "regionkey INT", "rname").Key("regionkey"),
		relation.NewSchema("Nation", "nationkey INT", "nname", "regionkey INT").
			Key("nationkey").Ref([]string{"regionkey"}, "Region"),
		relation.NewSchema("Part", "partkey INT", "pname", "type", "size INT", "retailprice FLOAT").
			Key("partkey"),
		relation.NewSchema("Supplier", "suppkey INT", "sname", "nationkey INT", "acctbal FLOAT").
			Key("suppkey").Ref([]string{"nationkey"}, "Nation"),
		relation.NewSchema("Customer", "custkey INT", "cname", "nationkey INT", "mktsegment").
			Key("custkey").Ref([]string{"nationkey"}, "Nation"),
		relation.NewSchema("Order", "orderkey INT", "custkey INT", "amount FLOAT", "date DATE", "priority").
			Key("orderkey").Ref([]string{"custkey"}, "Customer"),
		relation.NewSchema("Lineitem", "partkey INT", "suppkey INT", "orderkey INT", "quantity INT").
			Key("partkey", "suppkey", "orderkey").
			Ref([]string{"partkey"}, "Part").
			Ref([]string{"suppkey"}, "Supplier").
			Ref([]string{"orderkey"}, "Order"),
	}
}

// New generates the normalized TPCH database.
func New(cfg Config) *relation.Database {
	rng := synth.NewRNG(cfg.Seed)
	db := relation.NewDatabase("tpch")
	for _, s := range Schema() {
		db.AddSchema(s)
	}

	region := db.Table("Region")
	for i, r := range synth.Regions {
		region.MustInsert(int64(i+1), r)
	}
	nation := db.Table("Nation")
	for i, n := range synth.Nations {
		nation.MustInsert(int64(i+1), n, int64(i%len(synth.Regions)+1))
	}

	part := db.Table("Part")
	specials := []struct {
		name string
		n    int
	}{
		{RoyalOlive, 8},
		{YellowTomato, 13},
		{IndianBlackChoc, 1},
		{PinkRose, 3},
		{WhiteRose, 3},
	}
	pk := 0
	addPart := func(name string) int64 {
		pk++
		part.MustInsert(int64(pk), name, synth.PartTypes[rng.Intn(len(synth.PartTypes))],
			int64(rng.Range(1, 50)), float64(rng.Range(900, 2000))/10)
		return int64(pk)
	}
	for _, sp := range specials {
		for i := 0; i < sp.n; i++ {
			addPart(sp.name)
		}
	}
	for pk < cfg.Parts {
		addPart(rng.Pick(synth.Colors) + " " + rng.Pick(synth.Colors))
	}

	supplier := db.Table("Supplier")
	for i := 1; i <= cfg.Suppliers; i++ {
		supplier.MustInsert(int64(i), fmt.Sprintf("Supplier#%03d", i),
			int64(rng.Range(1, len(synth.Nations))), float64(rng.Range(-9999, 99999))/10)
	}

	customer := db.Table("Customer")
	for i := 1; i <= cfg.Customers; i++ {
		customer.MustInsert(int64(i), fmt.Sprintf("Customer#%03d", i),
			int64(rng.Range(1, len(synth.Nations))), rng.Pick(synth.Segments))
	}

	order := db.Table("Order")
	for i := 1; i <= cfg.Orders; i++ {
		order.MustInsert(int64(i), int64(rng.Range(1, cfg.Customers)),
			0.0, // amount is filled in from the order's line items below
			fmt.Sprintf("199%d-%02d-%02d", rng.Range(2, 8), rng.Range(1, 12), rng.Range(1, 28)),
			rng.Pick(synth.Priorities))
	}

	// Lineitem: each part gets a supplier set; each (part, supplier) pair
	// recurs in several orders, duplicating the pair exactly as a real order
	// stream would.
	lineitem := db.Table("Lineitem")
	seen := make(map[[3]int64]bool)
	covered := make(map[int64]bool)
	addItem := func(p, s, o int64) {
		key := [3]int64{p, s, o}
		if seen[key] {
			return
		}
		seen[key] = true
		covered[o] = true
		lineitem.MustInsert(p, s, o, int64(rng.Range(1, 50)))
	}
	for p := 1; p <= cfg.Parts; p++ {
		ns := rng.Range(cfg.SuppliersPerPart[0], cfg.SuppliersPerPart[1])
		if ns > cfg.Suppliers {
			ns = cfg.Suppliers
		}
		for _, si := range rng.Sample(cfg.Suppliers, ns) {
			s := int64(si + 1)
			no := rng.Range(cfg.OrdersPerPair[0], cfg.OrdersPerPair[1])
			for k := 0; k < no; k++ {
				addItem(int64(p), s, int64(rng.Range(1, cfg.Orders)))
			}
		}
	}
	// Every order appears in Lineitem, so the denormalized Ordering relation
	// (the join of Part, Lineitem, Supplier and Order) loses no orders and
	// the semantic approach answers identically on both variants.
	for o := 1; o <= cfg.Orders; o++ {
		if !covered[int64(o)] {
			addItem(int64(rng.Range(1, cfg.Parts)), int64(rng.Range(1, cfg.Suppliers)), int64(o))
		}
	}

	// Order amounts are the sum of their items' quantity x retail price, so
	// big orders carry many line items: averaging the denormalized Ordering
	// rows naively then skews high, as Table 8 (T1) reports.
	amount := make(map[int64]float64)
	for _, li := range lineitem.Tuples {
		price := part.Tuples[li[0].(int64)-1][4].(float64)
		amount[li[2].(int64)] += float64(li[3].(int64)) * price
	}
	for i, tu := range order.Tuples {
		tu[2] = amount[tu[0].(int64)]
		order.Tuples[i] = tu
	}
	return db
}

// DenormalizedSchema returns the TPCH' schemas of Table 7.
func DenormalizedSchema() []*relation.Schema {
	return []*relation.Schema{
		relation.NewSchema("Ordering",
			"partkey INT", "suppkey INT", "orderkey INT", "pname", "type", "size INT",
			"retailprice FLOAT", "sname", "nationkey INT", "regionkey INT", "acctbal FLOAT",
			"custkey INT", "amount FLOAT", "date DATE", "priority", "quantity INT").
			Key("partkey", "suppkey", "orderkey").
			Ref([]string{"custkey"}, "Customer").
			Ref([]string{"nationkey"}, "Nation").
			Ref([]string{"regionkey"}, "Region").
			Dep([]string{"partkey"}, "pname", "type", "size", "retailprice").
			Dep([]string{"suppkey"}, "sname", "nationkey", "acctbal").
			Dep([]string{"nationkey"}, "regionkey").
			Dep([]string{"orderkey"}, "custkey", "amount", "date", "priority").
			Dep([]string{"partkey", "suppkey", "orderkey"}, "quantity"),
		relation.NewSchema("Customer",
			"custkey INT", "cname", "nationkey INT", "regionkey INT", "mktsegment").
			Key("custkey").
			Ref([]string{"nationkey"}, "Nation").
			Ref([]string{"regionkey"}, "Region").
			Dep([]string{"custkey"}, "cname", "nationkey", "mktsegment").
			Dep([]string{"nationkey"}, "regionkey"),
		relation.NewSchema("Nation", "nationkey INT", "nname").Key("nationkey"),
		relation.NewSchema("Region", "regionkey INT", "rname").Key("regionkey"),
	}
}

// NameHints names the normalized-view relations synthesized from TPCH'.
func NameHints() map[string]string {
	return map[string]string{
		normalize.KeySig("partkey"):                        "Part",
		normalize.KeySig("suppkey"):                        "Supplier",
		normalize.KeySig("orderkey"):                       "Order",
		normalize.KeySig("custkey"):                        "Customer",
		normalize.KeySig("nationkey"):                      "NationRegion",
		normalize.KeySig("partkey", "suppkey", "orderkey"): "Lineitem",
	}
}

// Denormalize derives the TPCH' database of Table 7 from a normalized TPCH
// database: Ordering is the join of Part, Lineitem, Supplier and Order
// (carrying the supplier's nation and region), and Customer additionally
// carries its nation's region.
func Denormalize(db *relation.Database) *relation.Database {
	out := relation.NewDatabase("tpch-denorm")
	for _, s := range DenormalizedSchema() {
		out.AddSchema(s)
	}

	nationRegion := make(map[int64]int64)
	for _, tu := range db.Table("Nation").Tuples {
		nationRegion[tu[0].(int64)] = tu[2].(int64)
	}
	partRow := make(map[int64]relation.Tuple)
	for _, tu := range db.Table("Part").Tuples {
		partRow[tu[0].(int64)] = tu
	}
	suppRow := make(map[int64]relation.Tuple)
	for _, tu := range db.Table("Supplier").Tuples {
		suppRow[tu[0].(int64)] = tu
	}
	orderRow := make(map[int64]relation.Tuple)
	for _, tu := range db.Table("Order").Tuples {
		orderRow[tu[0].(int64)] = tu
	}

	ordering := out.Table("Ordering")
	for _, li := range db.Table("Lineitem").Tuples {
		p, s, o := partRow[li[0].(int64)], suppRow[li[1].(int64)], orderRow[li[2].(int64)]
		ordering.MustInsert(
			li[0], li[1], li[2],
			p[1], p[2], p[3], p[4],
			s[1], s[2], nationRegion[s[2].(int64)], s[3],
			o[1], o[2], o[3], o[4],
			li[3],
		)
	}

	customer := out.Table("Customer")
	for _, c := range db.Table("Customer").Tuples {
		customer.MustInsert(c[0], c[1], c[2], nationRegion[c[2].(int64)], c[3])
	}
	nation := out.Table("Nation")
	for _, n := range db.Table("Nation").Tuples {
		nation.MustInsert(n[0], n[1])
	}
	region := out.Table("Region")
	for _, r := range db.Table("Region").Tuples {
		region.MustInsert(r[0], r[1])
	}
	return out
}
