package tpch

import (
	"testing"

	"kwagg/internal/relation"
)

func TestDeterministic(t *testing.T) {
	a, b := New(Default()), New(Default())
	for _, name := range []string{"Part", "Supplier", "Lineitem", "Order", "Customer"} {
		ta, tb := a.Table(name), b.Table(name)
		if ta.Len() != tb.Len() {
			t.Fatalf("%s row counts differ: %d vs %d", name, ta.Len(), tb.Len())
		}
		for i := range ta.Tuples {
			for j := range ta.Tuples[i] {
				if !relation.Equal(ta.Tuples[i][j], tb.Tuples[i][j]) {
					t.Fatalf("%s row %d differs", name, i)
				}
			}
		}
	}
}

func countByName(db *relation.Database, name string) int {
	n := 0
	part := db.Table("Part")
	for _, tu := range part.Tuples {
		if tu[1].(string) == name {
			n++
		}
	}
	return n
}

// TestPlantedCollisions checks the exact-duplicate part names the paper's
// queries T3, T4, T5 and T8 rely on.
func TestPlantedCollisions(t *testing.T) {
	db := New(Default())
	if n := countByName(db, RoyalOlive); n != 8 {
		t.Errorf("royal olive parts: %d, want 8 (paper T3 reports 8 answers)", n)
	}
	if n := countByName(db, YellowTomato); n != 13 {
		t.Errorf("yellow tomato parts: %d, want 13 (paper T4 reports 13 answers)", n)
	}
	if n := countByName(db, IndianBlackChoc); n != 1 {
		t.Errorf("indian black chocolate parts: %d, want 1 (paper T5 reports 1 answer)", n)
	}
	if countByName(db, PinkRose) < 2 || countByName(db, WhiteRose) < 2 {
		t.Error("several pink/white rose parts are needed for T8")
	}
}

// TestReferentialIntegrity: every foreign key value resolves.
func TestReferentialIntegrity(t *testing.T) {
	db := New(Default())
	for _, tb := range db.Tables() {
		for _, fk := range tb.Schema.ForeignKeys {
			ref := db.Table(fk.RefRelation)
			for i := range tb.Tuples {
				for k, a := range fk.Attrs {
					v := tb.Value(i, a)
					if relation.Null(v) {
						continue
					}
					if len(ref.Lookup(fk.RefAttrs[k], v)) == 0 {
						t.Fatalf("%s row %d: dangling %s = %v", tb.Schema.Name, i, fk, v)
					}
				}
			}
		}
	}
}

// TestEveryOrderHasLineitems: needed so the denormalized Ordering relation
// loses no orders (Tables 8's "our approach unchanged" claim).
func TestEveryOrderHasLineitems(t *testing.T) {
	db := New(Default())
	covered := make(map[int64]bool)
	for _, li := range db.Table("Lineitem").Tuples {
		covered[li[2].(int64)] = true
	}
	for _, o := range db.Table("Order").Tuples {
		if !covered[o[0].(int64)] {
			t.Fatalf("order %v has no line items", o[0])
		}
	}
}

// TestDuplicatePairsAcrossOrders: some (part, supplier) pair must recur in
// several orders, the duplication SQAK miscounts in T5/T6.
func TestDuplicatePairsAcrossOrders(t *testing.T) {
	db := New(Default())
	pairs := make(map[[2]int64]int)
	for _, li := range db.Table("Lineitem").Tuples {
		pairs[[2]int64{li[0].(int64), li[1].(int64)}]++
	}
	max := 0
	for _, n := range pairs {
		if n > max {
			max = n
		}
	}
	if max < 2 {
		t.Error("no (part, supplier) pair recurs across orders")
	}
}

// TestDenormalizeConsistency: the Ordering relation is exactly the join, and
// its declared FDs actually hold on the data.
func TestDenormalizeConsistency(t *testing.T) {
	db := New(Small())
	den := Denormalize(db)
	ordering := den.Table("Ordering")
	if ordering.Len() != db.Table("Lineitem").Len() {
		t.Fatalf("Ordering should have one row per lineitem: %d vs %d",
			ordering.Len(), db.Table("Lineitem").Len())
	}
	checkFDsHold(t, ordering)
	checkFDsHold(t, den.Table("Customer"))
}

// checkFDsHold verifies every declared FD against the stored tuples.
func checkFDsHold(t *testing.T, tb *relation.Table) {
	t.Helper()
	for _, fd := range tb.Schema.FDs {
		seen := make(map[string]string)
		for i := range tb.Tuples {
			lhs := ""
			for _, a := range fd.LHS {
				lhs += relation.Format(tb.Value(i, a)) + "\x1f"
			}
			rhs := ""
			for _, a := range fd.RHS {
				rhs += relation.Format(tb.Value(i, a)) + "\x1f"
			}
			if prev, ok := seen[lhs]; ok && prev != rhs {
				t.Fatalf("%s: FD %v violated at row %d", tb.Schema.Name, fd, i)
			}
			seen[lhs] = rhs
		}
	}
}

func TestScales(t *testing.T) {
	small, def := New(Small()), New(Default())
	if small.Table("Lineitem").Len() >= def.Table("Lineitem").Len() {
		t.Error("small scale should be smaller than default")
	}
}
