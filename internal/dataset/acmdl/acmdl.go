// Package acmdl generates a synthetic stand-in for the ACM Digital Library
// publication database of the paper's evaluation (Table 2): Paper, Author,
// Editor, Proceeding, Publisher, Write, Edit. The real dump is proprietary;
// the generator reproduces the collision structure the queries A1-A8
// exercise instead: 61 editors named Smith, 36 authors named Gill, 36 SIGMOD
// proceedings, six "database tuning" papers spanning four distinct titles,
// four IEEE-ish publishers, John/Mary co-author pairs (names that appear
// only among authors, so SQAK's self-join restriction fires exactly as
// reported), and editors who edit both a SIGIR and a CIKM proceeding.
//
// The package also derives the denormalized ACMDL' variant of Table 7:
// PaperAuthor (Paper x Write x Author) and EditorProceeding (Editor x Edit x
// Proceeding) plus the untouched Publisher relation.
package acmdl

import (
	"fmt"

	"kwagg/internal/dataset/synth"
	"kwagg/internal/normalize"
	"kwagg/internal/relation"
)

// Config controls the scale of the generated database.
type Config struct {
	Seed        uint64
	Authors     int
	Editors     int
	Proceedings int
	Papers      int
	// Collision sizes; defaults reproduce the paper's reported answer counts.
	SmithEditors  int
	GillAuthors   int
	Sigmods       int
	JohnAuthors   int
	MaryAuthors   int
	CoauthorPairs int
}

// Default returns the configuration used by the experiment harness.
func Default() Config {
	return Config{
		Seed:          2016,
		Authors:       1200,
		Editors:       280,
		Proceedings:   260,
		Papers:        2200,
		SmithEditors:  61,
		GillAuthors:   36,
		Sigmods:       36,
		JohnAuthors:   10,
		MaryAuthors:   10,
		CoauthorPairs: 12,
	}
}

// Small returns a fast configuration for unit tests.
func Small() Config {
	return Config{
		Seed:          9,
		Authors:       80,
		Editors:       30,
		Proceedings:   25,
		Papers:        120,
		SmithEditors:  5,
		GillAuthors:   4,
		Sigmods:       4,
		JohnAuthors:   3,
		MaryAuthors:   3,
		CoauthorPairs: 3,
	}
}

// Schema returns the normalized ACMDL schema of Table 2.
func Schema() []*relation.Schema {
	return []*relation.Schema{
		relation.NewSchema("Publisher", "publisherid INT", "code", "name").Key("publisherid"),
		relation.NewSchema("Proceeding",
			"procid INT", "acronym", "title", "date DATE", "pages INT", "publisherid INT").
			Key("procid").Ref([]string{"publisherid"}, "Publisher"),
		relation.NewSchema("Paper", "paperid INT", "procid INT", "date DATE", "ptitle").
			Key("paperid").Ref([]string{"procid"}, "Proceeding"),
		relation.NewSchema("Author", "authorid INT", "fname", "lname").Key("authorid"),
		relation.NewSchema("Editor", "editorid INT", "fname", "lname").Key("editorid"),
		relation.NewSchema("Write", "paperid INT", "authorid INT").
			Key("paperid", "authorid").
			Ref([]string{"paperid"}, "Paper").
			Ref([]string{"authorid"}, "Author"),
		relation.NewSchema("Edit", "editorid INT", "procid INT").
			Key("editorid", "procid").
			Ref([]string{"editorid"}, "Editor").
			Ref([]string{"procid"}, "Proceeding"),
	}
}

// TuningTitles are the four distinct titles of the six "database tuning"
// papers (query A5): the duplicated titles make SQAK merge distinct papers.
var TuningTitles = []string{
	"principles of database tuning",
	"database tuning",
	"adaptive database tuning methods",
	"database tuning in practice",
}

// New generates the normalized ACMDL database.
func New(cfg Config) *relation.Database {
	rng := synth.NewRNG(cfg.Seed)
	db := relation.NewDatabase("acmdl")
	for _, s := range Schema() {
		db.AddSchema(s)
	}

	publisher := db.Table("Publisher")
	pubNames := []string{
		"IEEE", "IEEE Computer Society", "IEEE Press", "IEEE Communications Society",
		"ACM", "ACM Press", "Springer", "Springer-Verlag", "Elsevier", "Morgan Kaufmann",
		"VLDB Endowment", "OpenProceedings", "IOS Press", "CEUR-WS", "Now Publishers",
		"MIT Press", "Cambridge University Press", "Oxford University Press",
		"World Scientific", "De Gruyter",
	}
	for i, n := range pubNames {
		publisher.MustInsert(int64(i+1), fmt.Sprintf("PUB%02d", i+1), n)
	}

	// Proceedings: 36 SIGMOD years, a SIGIR and a CIKM series, then a mix of
	// other venues. Every proceeding gets at least one editor below.
	proceeding := db.Table("Proceeding")
	type procInfo struct {
		id      int64
		acronym string
		year    int
		pages   int
	}
	var procs []procInfo
	pid := int64(0)
	topics := []string{
		"Management of Data", "Information Retrieval", "Knowledge Management",
		"Data Engineering", "Very Large Data Bases", "Database Theory",
		"Web Search and Data Mining", "Extending Database Technology",
	}
	addProc := func(acr string, year, publisherID int) procInfo {
		pid++
		date := fmt.Sprintf("%04d-%02d-%02d", year, rng.Range(3, 9), rng.Range(1, 28))
		// Titles deliberately omit the acronym so that venue terms match
		// only the acronym attribute (the paper reports SQAK N.A. on A8).
		pages := rng.Range(120, 900)
		proceeding.MustInsert(pid, acr,
			fmt.Sprintf("Proceedings of the %d International Conference on %s",
				year, topics[rng.Intn(len(topics))]),
			date, int64(pages), int64(publisherID))
		p := procInfo{id: pid, acronym: acr, year: year, pages: pages}
		procs = append(procs, p)
		return p
	}
	for i := 0; i < cfg.Sigmods; i++ {
		addProc("SIGMOD", 1975+i, 5+rng.Intn(2))
	}
	nSigir, nCikm := 8, 8
	if cfg.Proceedings < 60 {
		nSigir, nCikm = 2, 2
	}
	for i := 0; i < nSigir; i++ {
		addProc("SIGIR", 2000+i, 5)
	}
	for i := 0; i < nCikm; i++ {
		addProc("CIKM", 2000+i, 5)
	}
	for int(pid) < cfg.Proceedings {
		acr := synth.Acronyms[rng.Intn(len(synth.Acronyms))]
		addProc(acr, rng.Range(1990, 2011), rng.Range(1, len(pubNames)))
	}

	// Authors: Gills, Johns, Marys first, then the general population.
	author := db.Table("Author")
	aid := int64(0)
	addAuthor := func(fname, lname string) int64 {
		aid++
		author.MustInsert(aid, fname, lname)
		return aid
	}
	var gills, johns, marys []int64
	for i := 0; i < cfg.GillAuthors; i++ {
		gills = append(gills, addAuthor(synth.FirstNames[rng.Intn(len(synth.FirstNames))], "Gill"))
	}
	for i := 0; i < cfg.JohnAuthors; i++ {
		johns = append(johns, addAuthor("John", synth.LastNames[rng.Intn(len(synth.LastNames))]))
	}
	for i := 0; i < cfg.MaryAuthors; i++ {
		marys = append(marys, addAuthor("Mary", synth.LastNames[rng.Intn(len(synth.LastNames))]))
	}
	for int(aid) < cfg.Authors {
		// General authors never use the reserved names John, Mary, Gill or
		// Smith, keeping the collision structure exact.
		addAuthor(synth.FirstNames[rng.Intn(len(synth.FirstNames))],
			synth.LastNames[rng.Intn(len(synth.LastNames))])
	}

	// Editors: Smiths first; editors never reuse the reserved author names.
	editor := db.Table("Editor")
	eid := int64(0)
	addEditor := func(fname, lname string) int64 {
		eid++
		editor.MustInsert(eid, fname, lname)
		return eid
	}
	var smiths []int64
	for i := 0; i < cfg.SmithEditors; i++ {
		smiths = append(smiths, addEditor(synth.FirstNames[rng.Intn(len(synth.FirstNames))], "Smith"))
	}
	for int(eid) < cfg.Editors {
		addEditor(synth.FirstNames[rng.Intn(len(synth.FirstNames))],
			synth.LastNames[rng.Intn(len(synth.LastNames))])
	}

	// Edit: every proceeding gets 1-3 editors; every Smith edits at least
	// one proceeding; two designated editors edit both a SIGIR and a CIKM.
	edit := db.Table("Edit")
	editSeen := make(map[[2]int64]bool)
	addEdit := func(e, p int64) {
		k := [2]int64{e, p}
		if editSeen[k] {
			return
		}
		editSeen[k] = true
		edit.MustInsert(e, p)
	}
	var sigirID, cikmID int64
	for _, p := range procs {
		if p.acronym == "SIGIR" && sigirID == 0 {
			sigirID = p.id
		}
		if p.acronym == "CIKM" && cikmID == 0 {
			cikmID = p.id
		}
	}
	for _, p := range procs {
		// Bigger proceedings have more editors, so the duplicated proceeding
		// rows in the denormalized EditorProceeding relation skew naive
		// averages upward (Table 9, A1: 637 vs the true 297).
		n := 1 + p.pages/250
		for i := 0; i < n; i++ {
			addEdit(int64(rng.Range(1, int(eid))), p.id)
		}
	}
	for i, s := range smiths {
		// Spread the Smiths so per-Smith proceeding counts vary (1, 1, 2, ...).
		addEdit(s, procs[(i*3)%len(procs)].id)
		if i%3 == 2 {
			addEdit(s, procs[(i*5+1)%len(procs)].id)
		}
	}
	crossEditors := []int64{addEditor("Pat", "Crossley"), addEditor("Sasha", "Crossley")}
	for _, e := range crossEditors {
		addEdit(e, sigirID)
		addEdit(e, cikmID)
	}

	// Papers: the six tuning papers first (on non-SIGMOD proceedings so A5
	// is isolated), then the general population spread over all proceedings.
	paper := db.Table("Paper")
	write := db.Table("Write")
	writeSeen := make(map[[2]int64]bool)
	addWrite := func(p, a int64) {
		k := [2]int64{p, a}
		if writeSeen[k] {
			return
		}
		writeSeen[k] = true
		write.MustInsert(p, a)
	}
	ppid := int64(0)
	addPaper := func(proc procInfo, title string) int64 {
		ppid++
		date := fmt.Sprintf("%04d-%02d-%02d", proc.year, rng.Range(1, 12), rng.Range(1, 28))
		paper.MustInsert(ppid, proc.id, date, title)
		return ppid
	}
	generalAuthor := func() int64 {
		// Avoid the reserved-name blocks at the front of the author table.
		lo := cfg.GillAuthors + cfg.JohnAuthors + cfg.MaryAuthors + 1
		if lo >= int(aid) {
			lo = 1
		}
		return int64(rng.Range(lo, int(aid)))
	}

	// A5: six tuning papers with author counts 2,2,2,6,2,2 across the four
	// distinct titles (SQAK's per-title grouping then reports 2,4,6,4).
	tuningSpecs := []struct {
		title   string
		authors int
	}{
		{TuningTitles[0], 2},
		{TuningTitles[1], 2}, {TuningTitles[1], 2},
		{TuningTitles[2], 6},
		{TuningTitles[3], 2}, {TuningTitles[3], 2},
	}
	for _, ts := range tuningSpecs {
		proc := procs[rng.Intn(len(procs))]
		for proc.acronym == "SIGMOD" {
			proc = procs[rng.Intn(len(procs))]
		}
		p := addPaper(proc, ts.title)
		for len(filterWrites(writeSeen, p)) < ts.authors {
			addWrite(p, generalAuthor())
		}
	}

	// A7: John-Mary co-authored papers.
	for i := 0; i < cfg.CoauthorPairs; i++ {
		proc := procs[rng.Intn(len(procs))]
		p := addPaper(proc, randomTitle(rng))
		addWrite(p, johns[rng.Intn(len(johns))])
		addWrite(p, marys[rng.Intn(len(marys))])
	}

	// A4: every Gill writes at least one paper with its own date.
	for _, g := range gills {
		proc := procs[rng.Intn(len(procs))]
		p := addPaper(proc, randomTitle(rng))
		addWrite(p, g)
		if rng.Intn(2) == 0 {
			addWrite(p, generalAuthor())
		}
	}

	for int(ppid) < cfg.Papers {
		proc := procs[rng.Intn(len(procs))]
		p := addPaper(proc, randomTitle(rng))
		n := rng.Range(1, 4)
		for i := 0; i < n; i++ {
			addWrite(p, generalAuthor())
		}
	}
	return db
}

func randomTitle(rng *synth.RNG) string {
	return rng.Pick(synth.TitleWords) + " " + rng.Pick(synth.TitleWords) + " " +
		rng.Pick(synth.TitleWords)
}

func filterWrites(seen map[[2]int64]bool, paper int64) [][2]int64 {
	var out [][2]int64
	for k := range seen {
		if k[0] == paper {
			out = append(out, k)
		}
	}
	return out
}

// DenormalizedSchema returns the ACMDL' schemas of Table 7.
func DenormalizedSchema() []*relation.Schema {
	return []*relation.Schema{
		relation.NewSchema("PaperAuthor",
			"paperid INT", "authorid INT", "procid INT", "date DATE", "title", "fname", "lname").
			Key("paperid", "authorid").
			// The shared procid column is the de-facto join path between the
			// two wide relations; SQAK's schema graph needs the reference.
			Ref([]string{"procid"}, "EditorProceeding", "procid").
			Dep([]string{"paperid"}, "procid", "date", "title").
			Dep([]string{"authorid"}, "fname", "lname"),
		relation.NewSchema("EditorProceeding",
			"editorid INT", "procid INT", "fname", "lname", "acronym", "title",
			"date DATE", "pages INT", "publisherid INT").
			Key("editorid", "procid").
			Ref([]string{"publisherid"}, "Publisher").
			Dep([]string{"editorid"}, "fname", "lname").
			Dep([]string{"procid"}, "acronym", "title", "date", "pages", "publisherid"),
		relation.NewSchema("Publisher", "publisherid INT", "code", "name").Key("publisherid"),
	}
}

// NameHints names the normalized-view relations synthesized from ACMDL'.
func NameHints() map[string]string {
	return map[string]string{
		normalize.KeySig("paperid"):             "Paper",
		normalize.KeySig("authorid"):            "Author",
		normalize.KeySig("paperid", "authorid"): "Write",
		normalize.KeySig("editorid"):            "Editor",
		normalize.KeySig("procid"):              "Proceeding",
		normalize.KeySig("editorid", "procid"):  "Edit",
	}
}

// Denormalize derives the ACMDL' database of Table 7 from a normalized
// ACMDL database. Papers without authors and proceedings without editors
// disappear, exactly as the denormalized design implies.
func Denormalize(db *relation.Database) *relation.Database {
	out := relation.NewDatabase("acmdl-denorm")
	for _, s := range DenormalizedSchema() {
		out.AddSchema(s)
	}
	paperRow := make(map[int64]relation.Tuple)
	for _, tu := range db.Table("Paper").Tuples {
		paperRow[tu[0].(int64)] = tu
	}
	authorRow := make(map[int64]relation.Tuple)
	for _, tu := range db.Table("Author").Tuples {
		authorRow[tu[0].(int64)] = tu
	}
	editorRow := make(map[int64]relation.Tuple)
	for _, tu := range db.Table("Editor").Tuples {
		editorRow[tu[0].(int64)] = tu
	}
	procRow := make(map[int64]relation.Tuple)
	for _, tu := range db.Table("Proceeding").Tuples {
		procRow[tu[0].(int64)] = tu
	}

	pa := out.Table("PaperAuthor")
	for _, w := range db.Table("Write").Tuples {
		p, a := paperRow[w[0].(int64)], authorRow[w[1].(int64)]
		pa.MustInsert(w[0], w[1], p[1], p[2], p[3], a[1], a[2])
	}
	ep := out.Table("EditorProceeding")
	for _, e := range db.Table("Edit").Tuples {
		ed, pr := editorRow[e[0].(int64)], procRow[e[1].(int64)]
		ep.MustInsert(e[0], e[1], ed[1], ed[2], pr[1], pr[2], pr[3], pr[4], pr[5])
	}
	pub := out.Table("Publisher")
	for _, p := range db.Table("Publisher").Tuples {
		pub.MustInsert(p[0], p[1], p[2])
	}
	return out
}
