package acmdl

import (
	"strings"
	"testing"

	"kwagg/internal/relation"
)

func countWhere(tb *relation.Table, attr, contains string) int {
	n := 0
	i := tb.Schema.AttrIndex(attr)
	for _, tu := range tb.Tuples {
		if s, ok := tu[i].(string); ok && relation.ContainsFold(s, contains) {
			n++
		}
	}
	return n
}

// TestPlantedCollisions checks the name collisions queries A3-A8 rely on.
func TestPlantedCollisions(t *testing.T) {
	db := New(Default())
	if n := countWhere(db.Table("Editor"), "lname", "Smith"); n != 61 {
		t.Errorf("Smith editors: %d, want 61 (paper A3 reports 61 answers)", n)
	}
	if n := countWhere(db.Table("Author"), "lname", "Gill"); n != 36 {
		t.Errorf("Gill authors: %d, want 36 (paper A4 reports 36 answers)", n)
	}
	if n := countWhere(db.Table("Proceeding"), "acronym", "SIGMOD"); n != 36 {
		t.Errorf("SIGMOD proceedings: %d, want 36 (paper A2 reports 36 answers)", n)
	}
	if n := countWhere(db.Table("Paper"), "ptitle", "database tuning"); n != 6 {
		t.Errorf("database tuning papers: %d, want 6 (paper A5 reports 6 answers)", n)
	}
	if n := countWhere(db.Table("Publisher"), "name", "IEEE"); n != 4 {
		t.Errorf("IEEE publishers: %d, want 4 (paper A6 reports 4 answers)", n)
	}
}

// TestTuningTitleDistribution: six papers spanning exactly four distinct
// titles with author counts that make SQAK report 2, 4, 6, 4.
func TestTuningTitleDistribution(t *testing.T) {
	db := New(Default())
	paper := db.Table("Paper")
	titles := make(map[string][]int64)
	for _, tu := range paper.Tuples {
		title := tu[3].(string)
		if relation.ContainsFold(title, "database tuning") {
			titles[title] = append(titles[title], tu[0].(int64))
		}
	}
	if len(titles) != 4 {
		t.Fatalf("distinct tuning titles: %d, want 4", len(titles))
	}
	authorsOf := make(map[int64]int)
	for _, w := range db.Table("Write").Tuples {
		authorsOf[w[0].(int64)]++
	}
	perTitle := make(map[string]int)
	for title, ids := range titles {
		for _, id := range ids {
			perTitle[title] += authorsOf[id]
		}
	}
	counts := map[int]int{}
	for _, n := range perTitle {
		counts[n]++
	}
	// SQAK's per-title sums: one title with 2, two with 4, one with 6.
	if counts[2] != 1 || counts[4] != 2 || counts[6] != 1 {
		t.Errorf("per-title author sums: %v, want {2:1, 4:2, 6:1}", perTitle)
	}
}

// TestReservedNamesExclusive: John and Mary occur only among authors; Smith
// only among editors; Gill only among authors. SQAK's A7/A3 behaviour
// depends on this.
func TestReservedNamesExclusive(t *testing.T) {
	db := New(Default())
	if n := countWhere(db.Table("Editor"), "fname", "John"); n != 0 {
		t.Errorf("editors named John: %d", n)
	}
	if n := countWhere(db.Table("Editor"), "fname", "Mary"); n != 0 {
		t.Errorf("editors named Mary: %d", n)
	}
	if n := countWhere(db.Table("Editor"), "lname", "Gill"); n != 0 {
		t.Errorf("editors named Gill: %d", n)
	}
	if n := countWhere(db.Table("Author"), "lname", "Smith"); n != 0 {
		t.Errorf("authors named Smith: %d", n)
	}
}

// TestCoauthorPairs: some paper is co-authored by a John and a Mary (A7).
func TestCoauthorPairs(t *testing.T) {
	db := New(Default())
	isJohn, isMary := map[int64]bool{}, map[int64]bool{}
	for _, a := range db.Table("Author").Tuples {
		switch a[1].(string) {
		case "John":
			isJohn[a[0].(int64)] = true
		case "Mary":
			isMary[a[0].(int64)] = true
		}
	}
	johnsOf, marysOf := map[int64]bool{}, map[int64]bool{}
	for _, w := range db.Table("Write").Tuples {
		p, a := w[0].(int64), w[1].(int64)
		if isJohn[a] {
			johnsOf[p] = true
		}
		if isMary[a] {
			marysOf[p] = true
		}
	}
	pairs := 0
	for p := range johnsOf {
		if marysOf[p] {
			pairs++
		}
	}
	if pairs == 0 {
		t.Error("no John-Mary co-authored papers")
	}
}

// TestCrossVenueEditors: at least two editors edit both a SIGIR and a CIKM
// proceeding (A8 reports 2 answers).
func TestCrossVenueEditors(t *testing.T) {
	db := New(Default())
	venue := map[int64]string{}
	for _, p := range db.Table("Proceeding").Tuples {
		venue[p[0].(int64)] = p[1].(string)
	}
	sigir, cikm := map[int64]bool{}, map[int64]bool{}
	for _, e := range db.Table("Edit").Tuples {
		ed, pr := e[0].(int64), e[1].(int64)
		switch venue[pr] {
		case "SIGIR":
			sigir[ed] = true
		case "CIKM":
			cikm[ed] = true
		}
	}
	n := 0
	for ed := range sigir {
		if cikm[ed] {
			n++
		}
	}
	if n < 2 {
		t.Errorf("editors of both SIGIR and CIKM: %d, want >= 2", n)
	}
}

// TestProceedingTitlesOmitAcronyms: venue terms must match only the acronym
// attribute (A8 must be SQAK-N.A.).
func TestProceedingTitlesOmitAcronyms(t *testing.T) {
	db := New(Default())
	tb := db.Table("Proceeding")
	for _, tu := range tb.Tuples {
		title := strings.ToLower(tu[2].(string))
		for _, acr := range []string{"sigmod", "sigir", "cikm"} {
			if strings.Contains(title, acr) {
				t.Fatalf("title %q embeds venue term %q", title, acr)
			}
		}
	}
}

// TestEveryProceedingHasEditorsAndGillsWrite: denormalization must not lose
// proceedings, and every Gill must have a paper (A4 answers one per Gill).
func TestEveryProceedingHasEditorsAndGillsWrite(t *testing.T) {
	db := New(Default())
	edited := map[int64]bool{}
	for _, e := range db.Table("Edit").Tuples {
		edited[e[1].(int64)] = true
	}
	for _, p := range db.Table("Proceeding").Tuples {
		if !edited[p[0].(int64)] {
			t.Fatalf("proceeding %v has no editors", p[0])
		}
	}
	gill := map[int64]bool{}
	for _, a := range db.Table("Author").Tuples {
		if a[2].(string) == "Gill" {
			gill[a[0].(int64)] = true
		}
	}
	writes := map[int64]bool{}
	for _, w := range db.Table("Write").Tuples {
		writes[w[1].(int64)] = true
	}
	for id := range gill {
		if !writes[id] {
			t.Fatalf("Gill author %d writes nothing", id)
		}
	}
}

// TestDenormalize: sizes and FDs of the ACMDL' relations.
func TestDenormalize(t *testing.T) {
	db := New(Small())
	den := Denormalize(db)
	if den.Table("PaperAuthor").Len() != db.Table("Write").Len() {
		t.Error("PaperAuthor should have one row per Write")
	}
	if den.Table("EditorProceeding").Len() != db.Table("Edit").Len() {
		t.Error("EditorProceeding should have one row per Edit")
	}
	if den.Table("Publisher").Len() != db.Table("Publisher").Len() {
		t.Error("Publisher copied unchanged")
	}
	for _, name := range []string{"PaperAuthor", "EditorProceeding"} {
		tb := den.Table(name)
		for _, fd := range tb.Schema.FDs {
			seen := map[string]string{}
			for i := range tb.Tuples {
				l, r := "", ""
				for _, a := range fd.LHS {
					l += relation.Format(tb.Value(i, a)) + "\x1f"
				}
				for _, a := range fd.RHS {
					r += relation.Format(tb.Value(i, a)) + "\x1f"
				}
				if prev, ok := seen[l]; ok && prev != r {
					t.Fatalf("%s: FD %v violated", name, fd)
				}
				seen[l] = r
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, b := New(Default()), New(Default())
	if a.Table("Paper").Len() != b.Table("Paper").Len() {
		t.Fatal("generator must be deterministic")
	}
	for i := range a.Table("Paper").Tuples {
		if !relation.Equal(a.Table("Paper").Tuples[i][3], b.Table("Paper").Tuples[i][3]) {
			t.Fatal("paper titles differ between runs")
		}
	}
}
