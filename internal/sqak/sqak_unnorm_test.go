package sqak

import (
	"errors"
	"strings"
	"testing"

	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
)

func tpchDenorm(t *testing.T) *System {
	t.Helper()
	return New(tpch.Denormalize(tpch.New(tpch.Small())))
}

func acmdlDenorm(t *testing.T) *System {
	t.Helper()
	return New(acmdl.Denormalize(acmdl.New(acmdl.Small())))
}

// TestPrefixMatchingSupplier: on TPCH' the term "supplier" resolves to the
// suppkey attribute of Ordering by shared prefix, so T5-style queries count
// rows (the inflated behaviour of Table 8) instead of failing.
func TestPrefixMatchingSupplier(t *testing.T) {
	s := tpchDenorm(t)
	sql, err := s.Translate(`COUNT supplier "Indian black chocolate"`)
	if err != nil {
		t.Fatal(err)
	}
	text := sql.String()
	if !strings.Contains(text, "COUNT(") || !strings.Contains(text, "suppkey") {
		t.Errorf("supplier should resolve to suppkey:\n%s", text)
	}
	if strings.Contains(text, "DISTINCT") {
		t.Errorf("SQAK never de-duplicates:\n%s", text)
	}
	if !strings.Contains(text, "Ordering") {
		t.Errorf("the wide relation should be queried directly:\n%s", text)
	}
}

// TestOrderMatchesOrdering: "order" matches the Ordering relation by
// substring, so T1' averages the duplicated amounts.
func TestOrderMatchesOrdering(t *testing.T) {
	s := tpchDenorm(t)
	sql, err := s.Translate("order AVG amount")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.String(), "FROM Ordering") {
		t.Errorf("T1' should run on Ordering:\n%s", sql)
	}
}

// TestProceedingResolvesToProcid: on ACMDL' the GROUPBY operand
// "proceeding" groups by procid (36 inflated answers in Table 9), not by
// the EditorProceeding key.
func TestProceedingResolvesToProcid(t *testing.T) {
	s := acmdlDenorm(t)
	sql, err := s.Translate("COUNT paper GROUPBY proceeding SIGMOD")
	if err != nil {
		t.Fatal(err)
	}
	text := sql.String()
	if !strings.Contains(text, "GROUP BY") || !strings.Contains(text, "procid") {
		t.Errorf("grouping should be per procid:\n%s", text)
	}
	if !strings.Contains(text, "PaperAuthor") || !strings.Contains(text, "EditorProceeding") {
		t.Errorf("both wide relations join on procid:\n%s", text)
	}
}

// TestSelfJoinStillRejectedOnUnnormalized: A7/A8 stay N.A. on ACMDL'.
func TestSelfJoinStillRejectedOnUnnormalized(t *testing.T) {
	s := acmdlDenorm(t)
	for _, q := range []string{
		"COUNT paper author John Mary",
		"COUNT editor SIGIR CIKM",
	} {
		if _, err := s.Translate(q); !errors.Is(err, ErrSelfJoin) {
			t.Errorf("Translate(%q) = %v, want ErrSelfJoin", q, err)
		}
	}
}

// TestMultipleAggregatesStillRejectedOnUnnormalized: T7/A6 stay N.A.
func TestMultipleAggregatesStillRejectedOnUnnormalized(t *testing.T) {
	if _, err := tpchDenorm(t).Translate("COUNT order SUM amount GROUPBY mktsegment"); !errors.Is(err, ErrMultipleAggregates) {
		t.Errorf("T7': %v", err)
	}
	if _, err := acmdlDenorm(t).Translate("COUNT paper MAX date IEEE"); !errors.Is(err, ErrMultipleAggregates) {
		t.Errorf("A6': %v", err)
	}
}
