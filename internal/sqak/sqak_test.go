package sqak

import (
	"errors"
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

// TestQ1_MergesSameNameStudents reproduces the introduction's Q1: SQAK sums
// the credits of both students called Green into one row of 13.
func TestQ1_MergesSameNameStudents(t *testing.T) {
	s := New(university.New())
	res, sql, err := s.Answer("Green SUM Credit")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 merged row, got:\n%s\nSQL: %s", res, sql)
	}
	f, _ := relation.AsFloat(res.Rows[0][len(res.Rows[0])-1])
	if f != 13 {
		t.Fatalf("want SQAK's incorrect total 13, got %v\nSQL: %s", f, sql)
	}
}

// TestQ2_CountsTextbookDuplicates reproduces Q2: SQAK joins the full Teach
// relation and counts textbook b1 twice, returning 35 instead of 25.
func TestQ2_CountsTextbookDuplicates(t *testing.T) {
	s := New(university.New())
	res, sql, err := s.Answer("Java SUM Price")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got:\n%s\nSQL: %s", res, sql)
	}
	f, _ := relation.AsFloat(res.Rows[0][len(res.Rows[0])-1])
	if f != 35 {
		t.Fatalf("want SQAK's incorrect total 35, got %v\nSQL: %s", f, sql)
	}
}

// TestQ3_UnnormalizedDuplicates reproduces Q3 on the Figure 2 database:
// SQAK joins Lecturer wholesale and counts the CS department once per
// lecturer, returning 2.
func TestQ3_UnnormalizedDuplicates(t *testing.T) {
	s := New(university.NewDenormalizedLecturer())
	res, sql, err := s.Answer("Engineering COUNT Department")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got:\n%s\nSQL: %s", res, sql)
	}
	if n := res.Rows[0][len(res.Rows[0])-1].(int64); n != 2 {
		t.Fatalf("want SQAK's incorrect count 2, got %d\nSQL: %s", n, sql)
	}
}

// TestSelfJoinRejected: two value terms on the same relation need a self
// join, which SQAK refuses.
func TestSelfJoinRejected(t *testing.T) {
	s := New(university.New())
	// Both phrases match only Textbook.Tname, so every match combination
	// needs two Textbook instances.
	_, err := s.Translate(`COUNT Lecturer "Programming Language" "Discrete Mathematics"`)
	if !errors.Is(err, ErrSelfJoin) {
		t.Fatalf("want ErrSelfJoin, got %v", err)
	}
}

// TestMultipleAggregatesRejected: two separate aggregate applications are
// beyond SQAK's single-aggregate SELECT restriction.
func TestMultipleAggregatesRejected(t *testing.T) {
	s := New(university.New())
	_, err := s.Translate("COUNT Course SUM Credit")
	if !errors.Is(err, ErrMultipleAggregates) {
		t.Fatalf("want ErrMultipleAggregates, got %v", err)
	}
}

// TestNestedAggregateRun: an adjacent MAX COUNT run is one application and
// is supported via a nested query.
func TestNestedAggregateRun(t *testing.T) {
	s := New(university.New())
	res, sql, err := s.Answer("MAX COUNT Student GROUPBY Course")
	if err != nil {
		t.Fatalf("Answer: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got:\n%s\nSQL: %s", res, sql)
	}
	if n := res.Rows[0][0].(int64); n != 3 {
		t.Fatalf("want max 3 students in a course, got %d\nSQL: %s", n, sql)
	}
}

// TestQ1SQLShape checks the statement SQAK generates for Q1 matches the
// paper's introduction: join Student-Enrol-Course, condition on Sname,
// group by the condition attribute.
func TestQ1SQLShape(t *testing.T) {
	s := New(university.New())
	sql, err := s.Translate("Green SUM Credit")
	if err != nil {
		t.Fatal(err)
	}
	text := sql.String()
	for _, frag := range []string{"Student", "Enrol", "Course", "SUM(", "CONTAINS 'Green'", "GROUP BY"} {
		if !strings.Contains(text, frag) {
			t.Errorf("Q1 SQL missing %q:\n%s", frag, text)
		}
	}
	if strings.Contains(text, "DISTINCT") {
		t.Errorf("SQAK never projects relationships:\n%s", text)
	}
}

// TestCountRelationName: COUNT over a relation-name match counts the
// relation's first key attribute.
func TestCountRelationName(t *testing.T) {
	s := New(university.New())
	sql, err := s.Translate("COUNT Student GROUPBY Course")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.String(), "COUNT(") || !strings.Contains(sql.String(), ".Sid)") {
		t.Errorf("COUNT Student should count Sid:\n%s", sql)
	}
}

// TestMinimalSQN: SQAK connects matched relations with a minimal subgraph;
// {Green SUM Credit} must not drag in Teach or Textbook.
func TestMinimalSQN(t *testing.T) {
	s := New(university.New())
	sql, err := s.Translate("Green SUM Credit")
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"Teach", "Textbook", "Lecturer"} {
		if strings.Contains(sql.String(), bad) {
			t.Errorf("SQN not minimal, contains %s:\n%s", bad, sql)
		}
	}
}

// TestNoMatchError: a term matching nothing is an error.
func TestNoMatchError(t *testing.T) {
	s := New(university.New())
	if _, err := s.Translate("zzznothing SUM Credit"); !errors.Is(err, ErrNoMatch) {
		t.Errorf("want ErrNoMatch, got %v", err)
	}
}

// TestGroupByValueTermUsesAttr: a GROUPBY operand that only matches values
// groups by the matched attribute (SQAK's behaviour on denormalized TPCH').
func TestGroupByValueTermUsesAttr(t *testing.T) {
	s := New(university.New())
	sql, err := s.Translate("COUNT Code GROUPBY Steven")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql.String(), "GROUP BY") || !strings.Contains(sql.String(), "Lname") {
		t.Errorf("value-term GROUPBY should group by the matched attribute:\n%s", sql)
	}
}

// TestPureKeywordQuery: without operators SQAK returns the matched
// condition attributes.
func TestPureKeywordQuery(t *testing.T) {
	s := New(university.New())
	res, sql, err := s.Answer("Green Java")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Errorf("expected rows for pure keyword query\nSQL: %s", sql)
	}
}

// TestAnswerSortsDeterministically: repeated runs return identical rows.
func TestAnswerSortsDeterministically(t *testing.T) {
	s := New(university.New())
	a, _, err := s.Answer("COUNT Student GROUPBY Course")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := s.Answer("COUNT Student GROUPBY Course")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatal("row counts differ across runs")
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if !relation.Equal(a.Rows[i][j], b.Rows[i][j]) {
				t.Fatal("rows differ across runs")
			}
		}
	}
}
