// Package sqak reimplements the SQAK baseline (Tata & Lohman, SIGMOD 2008)
// as described in the paper: the database schema is modelled as a graph of
// relations connected by foreign key - key references; a keyword query's
// terms are matched to relations (by relation name, attribute name, or tuple
// value); a minimal connected subgraph containing the matched relations — a
// simple query network (SQN) — is translated into SQL, with the aggregate
// function applied to the attribute following the aggregate term.
//
// SQAK is deliberately unaware of the Object-Relationship-Attribute
// semantics: it does not distinguish objects sharing an attribute value, it
// joins relationship relations wholesale (never projecting away unused
// participants), and it treats unnormalized relations like any other. It
// also refuses queries that need more than one aggregate expression in the
// SELECT clause or a self join of a relation — reproducing every failure
// mode reported in Tables 5, 6, 8 and 9.
package sqak

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/keyword"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
)

// Errors reported for queries SQAK cannot express ("N.A." in the paper's
// result tables).
var (
	ErrMultipleAggregates = errors.New("sqak: does not handle more than one aggregate")
	ErrSelfJoin           = errors.New("sqak: does not handle self joins of relations")
	ErrNoMatch            = errors.New("sqak: some term matches no relation")
	ErrDisconnected       = errors.New("sqak: matched relations are not connected")
)

// System is a SQAK instance over one database.
type System struct {
	db  *relation.Database
	idx *relation.InvertedIndex
	adj map[string][]edge
}

type edge struct {
	to    string
	attrs [][2]string // join attribute pairs [fromAttr, toAttr]
}

// New builds the SQAK schema graph for db.
func New(db *relation.Database) *System {
	s := &System{db: db, idx: relation.BuildIndex(db), adj: make(map[string][]edge)}
	for _, t := range db.Tables() {
		for _, fk := range t.Schema.ForeignKeys {
			pairs := make([][2]string, len(fk.Attrs))
			rev := make([][2]string, len(fk.Attrs))
			for i := range fk.Attrs {
				pairs[i] = [2]string{fk.Attrs[i], fk.RefAttrs[i]}
				rev[i] = [2]string{fk.RefAttrs[i], fk.Attrs[i]}
			}
			from := strings.ToLower(t.Schema.Name)
			to := strings.ToLower(fk.RefRelation)
			s.adj[from] = append(s.adj[from], edge{to: to, attrs: pairs})
			s.adj[to] = append(s.adj[to], edge{to: from, attrs: rev})
		}
	}
	for _, es := range s.adj {
		sort.Slice(es, func(i, j int) bool { return es[i].to < es[j].to })
	}
	return s
}

// matchKind orders match preference (lower is better). Approximate
// attribute matches outrank approximate relation-name matches: "proceeding"
// against the denormalized EditorProceeding relation resolves to the procid
// attribute, reproducing SQAK's per-proceeding (but duplicate-inflated)
// grouping on unnormalized schemas (Tables 8 and 9).
type matchKind int

const (
	kindRelExact matchKind = iota
	kindAttrExact
	kindAttrSub
	kindRelSub
	kindValue
)

type termMatch struct {
	rel  string // lower-cased relation name
	attr string // attribute (attr and value kinds)
	kind matchKind
	term string
}

// matches finds every relation a basic term matches. Relation and attribute
// names match exactly (tolerating plural 's') or by substring; values match
// by the inverted index.
func (s *System) matches(t keyword.Term) []termMatch {
	var out []termMatch
	if !t.Quoted {
		for _, tb := range s.db.Tables() {
			name := tb.Schema.Name
			lt, ln := strings.ToLower(t.Text), strings.ToLower(name)
			switch {
			case lt == ln || lt+"s" == ln || lt == ln+"s":
				out = append(out, termMatch{rel: ln, kind: kindRelExact, term: t.Text})
			case strings.Contains(ln, lt):
				out = append(out, termMatch{rel: ln, kind: kindRelSub, term: t.Text})
			}
			for _, a := range tb.Schema.Attributes {
				la := strings.ToLower(a.Name)
				switch {
				case lt == la || lt+"s" == la || lt == la+"s":
					out = append(out, termMatch{rel: ln, attr: a.Name, kind: kindAttrExact, term: t.Text})
				case strings.Contains(la, lt) || sharedPrefix(la, lt) >= 4:
					// Prefix matching lets "supplier" resolve to suppkey and
					// "proceeding" to procid, as SQAK's evaluation requires.
					out = append(out, termMatch{rel: ln, attr: a.Name, kind: kindAttrSub, term: t.Text})
				}
			}
		}
	}
	type va struct{ rel, attr string }
	seen := make(map[va]bool)
	for _, p := range s.idx.LookupPhrase(s.db, t.Text) {
		k := va{strings.ToLower(p.Relation), p.Attr}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, termMatch{rel: k.rel, attr: k.attr, kind: kindValue, term: t.Text})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].kind != out[j].kind {
			return out[i].kind < out[j].kind
		}
		if out[i].rel != out[j].rel {
			return out[i].rel < out[j].rel
		}
		return out[i].attr < out[j].attr
	})
	return out
}

// Translate generates SQAK's SQL statement for the query, or an error when
// SQAK cannot express it.
func (s *System) Translate(query string) (*sqlast.Query, error) {
	q, err := keyword.Parse(query)
	if err != nil {
		return nil, err
	}
	basics := q.BasicTerms()
	if len(basics) == 0 {
		return nil, ErrNoMatch
	}
	matchSets := make([][]termMatch, len(basics))
	for i, ti := range basics {
		ms := s.matches(q.Terms[ti])
		if len(ms) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrNoMatch, q.Terms[ti].Text)
		}
		matchSets[i] = ms
	}

	combos := enumerate(matchSets, 128)
	var firstErr error
	type cand struct {
		sql  *sqlast.Query
		size int
		cost int
	}
	var best *cand
	for _, combo := range combos {
		sql, size, err := s.translateCombo(q, basics, combo)
		if err != nil {
			if firstErr == nil || errors.Is(err, ErrSelfJoin) || errors.Is(err, ErrMultipleAggregates) {
				firstErr = err
			}
			continue
		}
		cost := 0
		for _, m := range combo {
			cost += int(m.kind)
		}
		c := &cand{sql: sql, size: size, cost: cost}
		if best == nil || c.size < best.size || (c.size == best.size && c.cost < best.cost) {
			best = c
		}
	}
	if best == nil {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, ErrDisconnected
	}
	return best.sql, nil
}

// Answer translates and executes the query.
func (s *System) Answer(query string) (*sqldb.Result, *sqlast.Query, error) {
	sql, err := s.Translate(query)
	if err != nil {
		return nil, nil, err
	}
	res, err := sqldb.Exec(s.db, sql)
	if err != nil {
		return nil, sql, err
	}
	res.SortRows()
	return res, sql, nil
}

func enumerate(sets [][]termMatch, max int) [][]termMatch {
	out := [][]termMatch{{}}
	for _, set := range sets {
		var next [][]termMatch
		for _, prefix := range out {
			for _, m := range set {
				combo := make([]termMatch, len(prefix)+1)
				copy(combo, prefix)
				combo[len(prefix)] = m
				next = append(next, combo)
				if len(next) >= max {
					break
				}
			}
			if len(next) >= max {
				break
			}
		}
		out = next
	}
	return out
}

// translateCombo builds the SQN and SQL for one assignment of matches.
func (s *System) translateCombo(q *keyword.Query, basics []int, combo []termMatch) (*sqlast.Query, int, error) {
	matchOf := make(map[int]termMatch)
	for k, ti := range basics {
		matchOf[ti] = combo[k]
	}

	// Aggregate applications: maximal runs of adjacent aggregate terms.
	// More than one run needs two aggregate expressions in SELECT, which
	// SQAK does not support.
	type aggApp struct {
		funcs  []sqlast.AggFunc
		target int // term index of the operand
	}
	var apps []aggApp
	var groupTargets []int
	for i := 0; i < len(q.Terms); i++ {
		t := q.Terms[i]
		switch t.Kind {
		case keyword.Aggregate:
			app := aggApp{}
			for i < len(q.Terms) && q.Terms[i].Kind == keyword.Aggregate {
				app.funcs = append(app.funcs, q.Terms[i].Agg)
				i++
			}
			if i >= len(q.Terms) {
				return nil, 0, ErrNoMatch
			}
			app.target = i
			apps = append(apps, app)
		case keyword.GroupBy:
			if i+1 < len(q.Terms) {
				groupTargets = append(groupTargets, i+1)
			}
		}
	}
	if len(apps) > 1 {
		return nil, 0, ErrMultipleAggregates
	}

	// Self-join check: two value conditions on the same attribute of one
	// relation (e.g. "pink rose" and "white rose" on Part.pname) need two
	// instances of the relation, which SQAK does not generate.
	condAttr := make(map[string]int)
	for _, ti := range basics {
		if m := matchOf[ti]; m.kind == kindValue {
			condAttr[m.rel+"\x1f"+strings.ToLower(m.attr)]++
		}
	}
	for _, n := range condAttr {
		if n > 1 {
			return nil, 0, ErrSelfJoin
		}
	}

	// Build the SQN: connect every matched relation with shortest paths.
	rels := map[string]bool{}
	var order []string
	add := func(r string) {
		if !rels[r] {
			rels[r] = true
			order = append(order, r)
		}
	}
	for _, ti := range basics {
		add(matchOf[ti].rel)
	}
	sqn := map[string]bool{order[0]: true}
	type joinEdge struct {
		a, b  string
		attrs [][2]string
	}
	var joins []joinEdge
	for _, r := range order[1:] {
		if sqn[r] {
			continue
		}
		path := s.shortestPathToSet(r, sqn)
		if path == nil {
			return nil, 0, ErrDisconnected
		}
		for i := 0; i+1 < len(path); i++ {
			a, b := path[i], path[i+1]
			if !sqn[a] || !sqn[b] {
				e := s.edgeBetween(a, b)
				joins = append(joins, joinEdge{a: a, b: b, attrs: e.attrs})
			}
			sqn[a], sqn[b] = true, true
		}
	}

	// Assemble the SQL statement: join everything, apply conditions, group
	// by the condition attributes plus explicit GROUPBY targets, and apply
	// the aggregate to the attribute following the aggregate term.
	alias := func(rel string) string {
		t := s.db.Table(rel)
		return strings.ToUpper(t.Schema.Name[:1]) + "Q" + t.Schema.Name[1:]
	}
	sql := &sqlast.Query{}
	var sqnList []string
	for r := range sqn {
		sqnList = append(sqnList, r)
	}
	sort.Strings(sqnList)
	for _, r := range sqnList {
		sql.From = append(sql.From, sqlast.TableRef{Name: s.db.Table(r).Schema.Name, Alias: alias(r)})
	}
	for _, j := range joins {
		for _, pr := range j.attrs {
			sql.Where = append(sql.Where, sqlast.JoinPred{
				Left:  sqlast.Col{Table: alias(j.a), Column: pr[0]},
				Right: sqlast.Col{Table: alias(j.b), Column: pr[1]},
			})
		}
	}

	var groupCols []sqlast.Col
	for _, ti := range basics {
		m := matchOf[ti]
		if m.kind != kindValue {
			continue
		}
		sql.Where = append(sql.Where, sqlast.ContainsPred{
			Col:    sqlast.Col{Table: alias(m.rel), Column: m.attr},
			Needle: m.term,
		})
		groupCols = append(groupCols, sqlast.Col{Table: alias(m.rel), Column: m.attr})
	}
	for _, gt := range groupTargets {
		m, ok := matchOf[gt]
		if !ok {
			return nil, 0, ErrNoMatch
		}
		col := m.attr
		if m.kind != kindValue {
			var err error
			col, err = s.operand(m)
			if err != nil {
				return nil, 0, err
			}
		}
		groupCols = append(groupCols, sqlast.Col{Table: alias(m.rel), Column: col})
	}
	groupCols = dedupeCols(groupCols)

	if len(apps) == 0 {
		if len(groupCols) == 0 {
			return nil, 0, ErrNoMatch
		}
		sql.Distinct = true
		for _, c := range groupCols {
			sql.Select = append(sql.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: c}})
		}
		return sql, len(sqnList), nil
	}

	app := apps[0]
	m, ok := matchOf[app.target]
	if !ok {
		return nil, 0, ErrNoMatch
	}
	aggAttr, err := s.operand(m)
	if err != nil {
		return nil, 0, err
	}
	inner := app.funcs[len(app.funcs)-1]
	innerAlias := aggAlias(inner, aggAttr)
	for _, c := range groupCols {
		sql.Select = append(sql.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: c}})
		sql.GroupBy = append(sql.GroupBy, c)
	}
	sql.Select = append(sql.Select, sqlast.SelectItem{
		Expr:  sqlast.AggExpr{Func: inner, Arg: sqlast.Col{Table: alias(m.rel), Column: aggAttr}},
		Alias: innerAlias,
	})
	// Wrap any preceding aggregates of the run as nested queries.
	for i := len(app.funcs) - 2; i >= 0; i-- {
		fn := app.funcs[i]
		outer := &sqlast.Query{
			Select: []sqlast.SelectItem{{
				Expr:  sqlast.AggExpr{Func: fn, Arg: sqlast.Col{Table: "SQ", Column: innerAlias}},
				Alias: aggAlias(fn, innerAlias),
			}},
			From: []sqlast.TableRef{{Subquery: sql, Alias: "SQ"}},
		}
		sql = outer
		innerAlias = aggAlias(fn, innerAlias)
	}
	return sql, len(sqnList), nil
}

// operand resolves the attribute an aggregate or GROUPBY applies to: an
// attribute match maps to that attribute, a relation-name match to the
// relation's first key attribute.
func (s *System) operand(m termMatch) (string, error) {
	if m.kind == kindValue {
		return "", fmt.Errorf("%w: aggregate applied to value term %q", ErrNoMatch, m.term)
	}
	if m.attr != "" {
		return m.attr, nil
	}
	sch := s.db.Table(m.rel).Schema
	if len(sch.PrimaryKey) == 0 {
		return "", fmt.Errorf("%w: relation %s has no key", ErrNoMatch, sch.Name)
	}
	return sch.PrimaryKey[0], nil
}

// sharedPrefix returns the length of the common prefix of two strings.
func sharedPrefix(a, b string) int {
	n := 0
	for n < len(a) && n < len(b) && a[n] == b[n] {
		n++
	}
	return n
}

func dedupeCols(cols []sqlast.Col) []sqlast.Col {
	seen := make(map[string]bool)
	var out []sqlast.Col
	for _, c := range cols {
		k := strings.ToLower(c.String())
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

func aggAlias(fn sqlast.AggFunc, attr string) string {
	prefix := map[sqlast.AggFunc]string{
		sqlast.AggCount: "num", sqlast.AggSum: "sum", sqlast.AggAvg: "avg",
		sqlast.AggMin: "min", sqlast.AggMax: "max",
	}[fn]
	return prefix + attr
}

// shortestPathToSet returns the shortest path in the schema graph from
// relation r to any relation already in the set, endpoints included.
func (s *System) shortestPathToSet(r string, set map[string]bool) []string {
	prev := map[string]string{r: r}
	queue := []string{r}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if set[cur] {
			var path []string
			for at := cur; ; at = prev[at] {
				path = append(path, at)
				if at == prev[at] {
					break
				}
			}
			return path // from set member back to r; order is irrelevant
		}
		for _, e := range s.adj[cur] {
			if _, ok := prev[e.to]; ok {
				continue
			}
			prev[e.to] = cur
			queue = append(queue, e.to)
		}
	}
	return nil
}

func (s *System) edgeBetween(a, b string) edge {
	for _, e := range s.adj[a] {
		if e.to == b {
			return e
		}
	}
	return edge{}
}
