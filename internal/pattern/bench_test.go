package pattern

import (
	"testing"

	"kwagg/internal/dataset/tpch"
	"kwagg/internal/keyword"
	"kwagg/internal/match"
	"kwagg/internal/orm"
)

func tpchGenerator(b *testing.B) *Generator {
	b.Helper()
	db := tpch.New(tpch.Default())
	g, err := orm.Build(db.Schemas())
	if err != nil {
		b.Fatal(err)
	}
	return NewGenerator(match.New(db, db.Schemas(), g, nil))
}

// BenchmarkGenerate measures pattern generation (matching, connection,
// annotation, disambiguation, ranking) for representative queries.
func BenchmarkGenerate(b *testing.B) {
	gen := tpchGenerator(b)
	queries := map[string]string{
		"single-node":  "order AVG amount",
		"two-node":     "COUNT part GROUPBY supplier",
		"value-fanout": `COUNT order "royal olive"`,
		"self-join":    `COUNT supplier "pink rose" "white rose"`,
		"nested":       "MAX COUNT order GROUPBY nation",
	}
	for name, q := range queries {
		kq, err := keyword.Parse(q)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gen.Generate(kq); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
