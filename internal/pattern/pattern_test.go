package pattern

import (
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/keyword"
	"kwagg/internal/match"
	"kwagg/internal/orm"
	"kwagg/internal/sqlast"
)

func uniGenerator(t *testing.T) *Generator {
	t.Helper()
	db := university.New()
	g, err := orm.Build(db.Schemas())
	if err != nil {
		t.Fatal(err)
	}
	return NewGenerator(match.New(db, db.Schemas(), g, nil))
}

func generate(t *testing.T, gen *Generator, query string) []*Pattern {
	t.Helper()
	q, err := keyword.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := gen.Generate(q)
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// classesOf returns the multiset of node classes as a sorted-ish signature.
func classesOf(p *Pattern) map[string]int {
	out := make(map[string]int)
	for _, n := range p.Nodes {
		out[n.Class]++
	}
	return out
}

func findPattern(t *testing.T, ps []*Pattern, pred func(*Pattern) bool) *Pattern {
	t.Helper()
	for _, p := range ps {
		if pred(p) {
			return p
		}
	}
	var all []string
	for _, p := range ps {
		all = append(all, p.String())
	}
	t.Fatalf("no pattern matches predicate; got:\n%s", strings.Join(all, "\n"))
	return nil
}

// TestFigure4Shape reproduces Figure 4: {Green George Code} yields a pattern
// with two Student nodes, two Enrol nodes and one shared Course node.
func TestFigure4Shape(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Green George Code")
	p := findPattern(t, ps, func(p *Pattern) bool {
		c := classesOf(p)
		return c["Student"] == 2 && c["Enrol"] == 2 && c["Course"] == 1 && len(p.Nodes) == 5
	})
	if len(p.Edges) != 4 {
		t.Errorf("Figure 4 has 4 edges, got %d", len(p.Edges))
	}
	// Both Student nodes carry their value conditions.
	conds := map[string]bool{}
	for _, n := range p.Nodes {
		if n.HasCond() {
			conds[n.CondTerm] = true
		}
	}
	if !conds["Green"] || !conds["George"] {
		t.Errorf("conditions: %v", conds)
	}
}

// TestExample1Annotation: {Green George COUNT Code} annotates the Course
// node with COUNT(Code) (pattern P1 of Figure 5).
func TestExample1Annotation(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Green George COUNT Code")
	p := findPattern(t, ps, func(p *Pattern) bool {
		for _, n := range p.Nodes {
			if n.Class == "Course" && len(n.Aggs) == 1 &&
				n.Aggs[0].Func == sqlast.AggCount && n.Aggs[0].Ref.Attr == "Code" {
				return true
			}
		}
		return false
	})
	_ = p
}

// TestExample2Annotation: {COUNT Lecturer GROUPBY Course} annotates
// Lecturer with COUNT(Lid) and Course with GROUPBY(Code) (pattern P2).
func TestExample2Annotation(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "COUNT Lecturer GROUPBY Course")
	findPattern(t, ps, func(p *Pattern) bool {
		okL, okC := false, false
		for _, n := range p.Nodes {
			if n.Class == "Lecturer" && len(n.Aggs) == 1 && n.Aggs[0].Ref.Attr == "Lid" {
				okL = true
			}
			if n.Class == "Course" && len(n.GroupBys) == 1 && n.GroupBys[0].Attr == "Code" {
				okC = true
			}
		}
		return okL && okC && classesOf(p)["Teach"] == 1
	})
}

// TestExample3Disambiguation: the condition Sname=Green matches two students,
// so a GROUPBY(Sid) copy is generated (pattern P3 of Figure 6); George
// matches one student only and is never disambiguated on the Student node.
func TestExample3Disambiguation(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Green George COUNT Code")
	var plain, disamb *Pattern
	for _, p := range ps {
		greenDis, georgeDis := false, false
		student := false
		for _, n := range p.Nodes {
			if n.Class != "Student" {
				continue
			}
			student = true
			if n.CondTerm == "Green" && n.Disamb {
				greenDis = true
			}
			if n.CondTerm == "George" && n.Disamb {
				georgeDis = true
			}
		}
		if !student {
			continue
		}
		if georgeDis {
			t.Fatalf("George matches a single student and must not fork: %s", p)
		}
		if greenDis {
			disamb = p
		} else if plain == nil && classesOf(p)["Student"] == 2 {
			plain = p
		}
	}
	if disamb == nil || plain == nil {
		t.Fatal("both the distinguishing and the merged interpretation must exist")
	}
	// The distinguishing copy ranks first (the paper reports it as the
	// best-match answer).
	if ps[0].DisambCount() == 0 {
		t.Errorf("top pattern should be disambiguated, got %s", ps[0])
	}
}

// TestContextMerging: {Lecturer George} merges the value term into the
// preceding relation-name node, yielding a single Lecturer node.
func TestContextMerging(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Lecturer George")
	p := ps[0]
	c := classesOf(p)
	if c["Lecturer"] != 1 || len(p.Nodes) != 1 {
		t.Fatalf("context should merge into one Lecturer node: %s", p)
	}
	if p.Nodes[0].CondTerm != "George" {
		t.Errorf("merged node should carry the condition: %s", p)
	}
}

// TestAttrReuse: {order AVG amount}-style queries reuse the node created by
// the relation-name term for the attribute term.
func TestAttrReuse(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Course AVG Credit")
	p := ps[0]
	if len(p.Nodes) != 1 || p.Nodes[0].Class != "Course" {
		t.Fatalf("single Course node expected: %s", p)
	}
	if len(p.Nodes[0].Aggs) != 1 || p.Nodes[0].Aggs[0].Func != sqlast.AggAvg {
		t.Errorf("AVG annotation missing: %s", p)
	}
}

// TestNestedAnnotation: {AVG COUNT Lecturer GROUPBY Course} records AVG as a
// nested aggregate (Figure 7).
func TestNestedAnnotation(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "AVG COUNT Lecturer GROUPBY Course")
	p := ps[0]
	if len(p.Nested) != 1 || p.Nested[0] != sqlast.AggAvg {
		t.Errorf("Nested = %v", p.Nested)
	}
}

// TestSelfJoinConnection: two value terms on the same class connect through
// a shared neighbour with fresh relationship instances (no FK reuse).
func TestSelfJoinConnection(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, `COUNT Lecturer "Programming Language" "Discrete Mathematics"`)
	findPattern(t, ps, func(p *Pattern) bool {
		c := classesOf(p)
		return c["Textbook"] == 2 && c["Teach"] == 2 && c["Lecturer"] == 1
	})
}

// TestRankingPrefersFewerNodes: for {George Code}, the Student reading
// (Student-Enrol-Course, 2 object nodes) outranks the Lecturer reading
// (Lecturer-Teach-Course with more object/mixed nodes on the path).
func TestRankingPrefersFewerNodes(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "George Code")
	if len(ps) < 2 {
		t.Fatalf("expected both readings, got %d", len(ps))
	}
	counts := make([]int, len(ps))
	for i, p := range ps {
		counts[i] = p.ObjectMixedCount()
	}
	for i := 1; i < len(counts); i++ {
		if counts[i-1] > counts[i] {
			t.Errorf("patterns not ordered by object/mixed count: %v", counts)
		}
	}
}

// TestRankingPrefersMetadata: reading "Lecturer" as the relation name beats
// reading it as a value (ValueTerms ordering).
func TestRankingPrefersMetadata(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Course GROUPBY Lecturer COUNT Code")
	if ps[0].ValueTerms != 0 {
		t.Errorf("top pattern should use no value tags: %s", ps[0])
	}
}

func TestUnmatchedTermFails(t *testing.T) {
	gen := uniGenerator(t)
	q, err := keyword.Parse("zzznothing COUNT Code")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(q); err == nil {
		t.Error("unmatched term should fail generation")
	}
}

// TestOperatorOnValueRejected: an aggregate whose operand resolves only to a
// value term has no valid interpretation.
func TestOperatorOnValueRejected(t *testing.T) {
	gen := uniGenerator(t)
	q, err := keyword.Parse("SUM Green")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(q); err == nil {
		t.Error("SUM over a pure value term should have no interpretation")
	}
}

// TestMinOverRelationNameRejected: MIN/MAX/AVG/SUM require an attribute;
// only COUNT accepts a relation name.
func TestMinOverRelationNameRejected(t *testing.T) {
	gen := uniGenerator(t)
	q, err := keyword.Parse("MIN Student")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(q); err == nil {
		t.Error("MIN over a relation name should be rejected")
	}
	// COUNT over a relation name is fine and counts identifiers.
	ps := generate(t, gen, "COUNT Student GROUPBY Course")
	found := false
	for _, n := range ps[0].Nodes {
		for _, a := range n.Aggs {
			if a.Func == sqlast.AggCount && a.Ref.Attr == "Sid" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("COUNT Student should count Sid: %s", ps[0])
	}
}

func TestCanonicalDeduplication(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Green SUM Credit")
	seen := map[string]bool{}
	for _, p := range ps {
		key := p.Canonical()
		if seen[key] {
			t.Fatalf("duplicate pattern surfaced: %s", p)
		}
		seen[key] = true
	}
}

func TestCloneIndependence(t *testing.T) {
	gen := uniGenerator(t)
	p := generate(t, gen, "Green SUM Credit")[0]
	c := p.Clone()
	c.Nodes[0].GroupBys = append(c.Nodes[0].GroupBys, AttrRef{Relation: "X", Attr: "Y"})
	c.Nodes[0].CondTerm = "changed"
	if p.Nodes[0].CondTerm == "changed" {
		t.Error("Clone shares node state")
	}
	for _, g := range p.Nodes[0].GroupBys {
		if g.Relation == "X" {
			t.Error("Clone shares GroupBys slice")
		}
	}
}

func TestAggAliasNames(t *testing.T) {
	cases := map[AggAnnot]string{
		{Func: sqlast.AggCount, Ref: AttrRef{Attr: "Lid"}}:   "numLid",
		{Func: sqlast.AggSum, Ref: AttrRef{Attr: "Credit"}}:  "sumCredit",
		{Func: sqlast.AggAvg, Ref: AttrRef{Attr: "pages"}}:   "avgpages",
		{Func: sqlast.AggMin, Ref: AttrRef{Attr: "date"}}:    "mindate",
		{Func: sqlast.AggMax, Ref: AttrRef{Attr: "acctbal"}}: "maxacctbal",
	}
	for a, want := range cases {
		if a.Alias() != want {
			t.Errorf("Alias(%v) = %q, want %q", a, a.Alias(), want)
		}
	}
}

func TestDescribeMentionsEverything(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Green SUM Credit")
	d := ps[0].Describe()
	for _, frag := range []string{"SUM", "Green"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe missing %q: %s", frag, d)
		}
	}
}

// TestSumOverNonNumericRejected: SUM/AVG interpretations over VARCHAR
// attributes are invalid (e.g. {SUM Grade}); MIN/MAX remain valid since
// strings and dates are ordered.
func TestSumOverNonNumericRejected(t *testing.T) {
	gen := uniGenerator(t)
	for _, q := range []string{"SUM Grade", "AVG Sname Student"} {
		kq, err := keyword.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gen.Generate(kq); err == nil {
			t.Errorf("Generate(%q) should reject non-numeric SUM/AVG", q)
		}
	}
	// MAX over a string attribute is fine.
	ps := generate(t, gen, "MAX Sname Student")
	if len(ps) == 0 {
		t.Fatal("MAX over strings should be valid")
	}
}

// TestDisambiguationAblationFlag: the generator flag suppresses forking.
func TestDisambiguationAblationFlag(t *testing.T) {
	gen := uniGenerator(t)
	gen.DisableDisambiguation = true
	ps := generate(t, gen, "Green SUM Credit")
	for _, p := range ps {
		if p.DisambCount() != 0 {
			t.Fatalf("flag set, yet disambiguated pattern produced: %s", p)
		}
	}
}

// TestDotOutput renders a pattern as DOT and checks the annotations appear.
func TestDotOutput(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Green SUM Credit")
	dot := ps[0].Dot()
	for _, frag := range []string{"graph pattern {", "SUM(Credit)", "Sname=Green", " -- "} {
		if !strings.Contains(dot, frag) {
			t.Errorf("Dot missing %q:\n%s", frag, dot)
		}
	}
}

// TestTiedAttachmentsBranch: when a new node can attach to two existing
// nodes at the same distance, both topologies are generated. Steven and
// George (read as lecturers) are equidistant from a Database textbook: the
// book may be linked to either lecturer's teaching.
func TestTiedAttachmentsBranch(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, `Steven George "Discrete Mathematics"`)
	// Among the interpretations with two Lecturer nodes, the Textbook must
	// attach to Steven's side in one pattern and George's side in another.
	sides := map[string]bool{}
	for _, p := range ps {
		var lects, books []*Node
		for _, n := range p.Nodes {
			switch n.Class {
			case "Lecturer":
				lects = append(lects, n)
			case "Textbook":
				books = append(books, n)
			}
		}
		if len(lects) != 2 || len(books) != 1 {
			continue
		}
		// Which lecturer is two hops from the book?
		for _, l := range lects {
			if p.distance(books[0].ID, l.ID) == 2 && l.HasCond() {
				sides[l.CondTerm] = true
			}
		}
	}
	if !sides["Steven"] || !sides["George"] {
		t.Errorf("both attachment topologies should exist, got %v", sides)
	}
}

// TestAvgTargetConditionDistance: Example-5-style patterns measure the
// distance between the aggregate target and the condition nodes.
func TestAvgTargetConditionDistance(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Green COUNT Code")
	p := findPattern(t, ps, func(p *Pattern) bool {
		for _, n := range p.Nodes {
			if n.Class == "Course" && n.IsTarget() && p.DisambCount() > 0 {
				return true
			}
		}
		return false
	})
	// Student (condition) to Course (target) is 2 hops via Enrol; the
	// grouped Student node is both condition and target-adjacent, so the
	// average is 2.
	if d := p.AvgTargetConditionDistance(); d != 2 {
		t.Errorf("avg distance = %v, want 2 (Student-Enrol-Course)", d)
	}
	// Patterns without operators have no targets: distance 0.
	plain := generate(t, gen, "Green Code")[0]
	if d := plain.AvgTargetConditionDistance(); d != 0 {
		t.Errorf("no-target distance = %v", d)
	}
}

// TestRankingDistanceTieBreak: with node counts equal, shorter
// target-condition distance ranks first.
func TestRankingDistanceTieBreak(t *testing.T) {
	gen := uniGenerator(t)
	ps := generate(t, gen, "Green COUNT Code")
	for i := 1; i < len(ps); i++ {
		a, b := ps[i-1], ps[i]
		if a.ObjectMixedCount() == b.ObjectMixedCount() &&
			a.ValueTerms == b.ValueTerms &&
			a.AvgTargetConditionDistance() > b.AvgTargetConditionDistance() &&
			a.DisambCount() == b.DisambCount() {
			t.Errorf("distance ordering violated between #%d and #%d", i-1, i)
		}
	}
}
