package pattern

import (
	"fmt"
	"strings"

	"kwagg/internal/orm"
)

// Dot renders the annotated query pattern in Graphviz DOT form, in the
// style of the paper's Figures 4-7: object nodes as boxes, relationship
// nodes as diamonds, mixed nodes as hexagons, with conditions and operator
// annotations in the labels and nested aggregates as a floating note.
func (p *Pattern) Dot() string {
	var b strings.Builder
	b.WriteString("graph pattern {\n")
	for _, n := range p.Nodes {
		shape := "box"
		switch p.Graph.Node(n.Class).Type {
		case orm.Relationship:
			shape = "diamond"
		case orm.Mixed:
			shape = "hexagon"
		}
		var lines []string
		lines = append(lines, n.Class)
		if n.HasCond() {
			lines = append(lines, fmt.Sprintf("%s=%s", n.CondAttr, n.CondTerm))
		}
		for _, a := range n.Aggs {
			lines = append(lines, fmt.Sprintf("%s(%s)", a.Func, a.Ref.Attr))
		}
		for _, g := range n.GroupBys {
			lines = append(lines, fmt.Sprintf("GROUPBY(%s)", g.Attr))
		}
		fmt.Fprintf(&b, "  n%d [shape=%s,label=\"%s\"];\n", n.ID, shape, strings.Join(lines, "\\n"))
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, "  n%d -- n%d;\n", e.A, e.B)
	}
	for i, f := range p.Nested {
		fmt.Fprintf(&b, "  nested%d [shape=note,label=\"%s(...)\"];\n", i, f)
	}
	b.WriteString("}\n")
	return b.String()
}
