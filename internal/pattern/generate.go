package pattern

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/keyword"
	"kwagg/internal/match"
	"kwagg/internal/obs"
	"kwagg/internal/orm"
	"kwagg/internal/relation"
)

// Generator turns keyword queries into ranked annotated query patterns.
type Generator struct {
	M *match.Matcher
	// MaxCombos caps the number of tag combinations explored per query
	// (keyword queries are short, so ambiguity is bounded in practice).
	MaxCombos int
	// MaxPatterns caps the number of ranked patterns returned.
	MaxPatterns int
	// DisableDisambiguation turns off the Section 3.1.2 forking that
	// distinguishes objects sharing an attribute value. Only for ablation
	// studies: with it set, every aggregate merges same-value objects the
	// way SQAK does.
	DisableDisambiguation bool
}

// NewGenerator creates a generator with default limits.
func NewGenerator(m *match.Matcher) *Generator {
	return &Generator{M: m, MaxCombos: 256, MaxPatterns: 64}
}

// Generate produces the ranked annotated query patterns of q: pattern
// generation and annotation, disambiguation, then ranking (Section 3.1).
func (g *Generator) Generate(q *keyword.Query) ([]*Pattern, error) {
	return g.GenerateContext(context.Background(), q)
}

// GenerateContext is Generate with the pipeline stages instrumented: term
// matching, pattern generation/annotation/disambiguation, and ranking each
// run under an obs span, so a traced request sees the Section 8 cost
// breakdown per stage.
func (g *Generator) GenerateContext(ctx context.Context, q *keyword.Query) ([]*Pattern, error) {
	basics := q.BasicTerms()
	if len(basics) == 0 {
		return nil, fmt.Errorf("pattern: query %q has no basic terms", q)
	}
	_, mspan := obs.Start(ctx, "match")
	tagSets := make([][]match.Tag, len(basics))
	for i, ti := range basics {
		tags := g.M.Match(q.Terms[ti])
		if len(tags) == 0 {
			mspan.End()
			return nil, fmt.Errorf("pattern: term %q matches nothing in the database", q.Terms[ti].Text)
		}
		tagSets[i] = tags
	}
	mspan.End()

	_, gspan := obs.Start(ctx, "generate")
	combos := enumerate(tagSets, g.MaxCombos)
	var patterns []*Pattern
	seen := make(map[string]bool)
	for _, combo := range combos {
		// The default topology first, then — where attachment points tied —
		// the alternative topologies, varied one decision at a time.
		pickVecs := [][]int{nil}
		p0, termNode0, ties, ok := g.build(q, basics, combo, nil)
		if !ok {
			continue
		}
		for step, n := range ties {
			for alt := 1; alt < n && len(pickVecs) < 8; alt++ {
				vec := make([]int, step+1)
				vec[step] = alt
				pickVecs = append(pickVecs, vec)
			}
		}
		for vi, vec := range pickVecs {
			p, termNode := p0, termNode0
			if vi > 0 {
				var ok bool
				p, termNode, _, ok = g.build(q, basics, combo, vec)
				if !ok {
					continue
				}
			}
			if !g.annotate(p, q, basics, combo, termNode) {
				continue
			}
			for _, dp := range g.disambiguate(p) {
				key := dp.Canonical()
				if seen[key] {
					continue
				}
				seen[key] = true
				patterns = append(patterns, dp)
			}
		}
	}
	gspan.End()
	if len(patterns) == 0 {
		return nil, fmt.Errorf("pattern: no valid interpretation for query %q", q)
	}
	_, rspan := obs.Start(ctx, "rank")
	rank(patterns)
	rspan.End()
	if len(patterns) > g.MaxPatterns {
		patterns = patterns[:g.MaxPatterns]
	}
	return patterns, nil
}

// enumerate returns up to max combinations, one tag per term.
func enumerate(tagSets [][]match.Tag, max int) [][]match.Tag {
	out := [][]match.Tag{{}}
	for _, set := range tagSets {
		var next [][]match.Tag
		for _, prefix := range out {
			for _, t := range set {
				combo := make([]match.Tag, len(prefix)+1)
				copy(combo, prefix)
				combo[len(prefix)] = t
				next = append(next, combo)
				if len(next) >= max {
					break
				}
			}
			if len(next) >= max {
				break
			}
		}
		out = next
	}
	return out
}

// build creates the query nodes for one tag combination and connects them
// into a minimal pattern over the ORM graph. It returns the pattern, the
// mapping from term position to the node representing it, and the number of
// equally-minimal attachment choices at each connection step (ties denote
// alternative topologies; Generate re-runs build with a different pick
// vector to materialize them).
//
// picks selects, per connection step, which of the tied minimal attachments
// to take (missing entries default to the first).
func (g *Generator) build(q *keyword.Query, basics []int, combo []match.Tag, picks []int) (*Pattern, map[int]*Node, []int, bool) {
	graph := g.M.Graph()
	p := &Pattern{Graph: graph, Query: q}
	termNode := make(map[int]*Node)

	newNode := func(class string, fromTerm bool) *Node {
		n := &Node{ID: len(p.Nodes), Class: graph.Node(class).Name, FromTerm: fromTerm, usedFK: make(map[string]int)}
		p.Nodes = append(p.Nodes, n)
		return n
	}

	// addEdge connects two instances, consuming one FK of the referencing
	// side; it fails when that instance has no FK left for the target class.
	addEdge := func(a, b *Node) bool {
		refsAB := graph.References(a.Class, b.Class)
		refsBA := graph.References(b.Class, a.Class)
		switch {
		case refsAB > 0:
			if a.usedFK[strings.ToLower(b.Class)] >= refsAB {
				return false
			}
			a.usedFK[strings.ToLower(b.Class)]++
		case refsBA > 0:
			if b.usedFK[strings.ToLower(a.Class)] >= refsBA {
				return false
			}
			b.usedFK[strings.ToLower(a.Class)]++
		default:
			return false
		}
		p.Edges = append(p.Edges, Edge{A: a.ID, B: b.ID})
		return true
	}

	// canAttach reports whether node w can accept one more edge to class c.
	canAttach := func(w *Node, c string) bool {
		if graph.References(w.Class, c) > 0 {
			return w.usedFK[strings.ToLower(c)] < graph.References(w.Class, c)
		}
		return graph.References(c, w.Class) > 0
	}

	// Node creation: one node per object mention (Section 2.1). A value term
	// merges into the immediately preceding metadata node of the same class
	// (the context idiom of [15]: {Lecturer George}); an attribute-name term
	// reuses the most recent node of its class.
	var prevBasic *Node
	for k, ti := range basics {
		tag := combo[k]
		switch tag.Kind {
		case match.Value:
			p.ValueTerms++
			if prevBasic != nil && strings.EqualFold(prevBasic.Class, tag.Node) &&
				!prevBasic.HasCond() && prevBasic.FromTerm {
				prevBasic.CondRel, prevBasic.CondAttr = tag.Relation, tag.Attr
				prevBasic.CondTerm, prevBasic.CondCount = tag.Term, tag.NumObjects
				termNode[ti] = prevBasic
			} else {
				n := newNode(tag.Node, true)
				n.CondRel, n.CondAttr = tag.Relation, tag.Attr
				n.CondTerm, n.CondCount = tag.Term, tag.NumObjects
				termNode[ti] = n
			}
		case match.AttrName:
			var reuse *Node
			for i := len(p.Nodes) - 1; i >= 0; i-- {
				if strings.EqualFold(p.Nodes[i].Class, tag.Node) {
					reuse = p.Nodes[i]
					break
				}
			}
			if reuse == nil {
				reuse = newNode(tag.Node, true)
			}
			termNode[ti] = reuse
		case match.RelationName:
			termNode[ti] = newNode(tag.Node, true)
		}
		prevBasic = termNode[ti]
	}

	// Connection: greedily attach each node to the closest already-connected
	// node via a valid walk in the ORM graph, instantiating fresh interior
	// instances. A term node with no condition merges into an existing node
	// of its class instead of duplicating it.
	connected := map[int]bool{p.Nodes[0].ID: true}
	merged := make(map[int]bool)
	var ties []int
	step := 0
	for idx := 1; idx < len(p.Nodes); idx++ {
		u := p.Nodes[idx]
		if connected[u.ID] || merged[u.ID] {
			continue
		}
		// Merge an unconditioned duplicate class instance.
		if !u.HasCond() {
			var into *Node
			for _, w := range p.Nodes {
				if connected[w.ID] && !merged[w.ID] && strings.EqualFold(w.Class, u.Class) {
					into = w
					break
				}
			}
			if into != nil {
				for tPos, n := range termNode {
					if n == u {
						termNode[tPos] = into
						into.FromTerm = true
					}
				}
				merged[u.ID] = true
				continue
			}
		}
		// Gather the attachment points minimising the walk length; ties are
		// alternative topologies selected through the picks vector.
		type cand struct {
			w    *Node
			walk []string
		}
		var cands []cand
		bestLen := -1
		for _, w := range p.Nodes {
			if !connected[w.ID] || merged[w.ID] || w == u {
				continue
			}
			walk := graph.WalkPath(u.Class, w.Class)
			if walk == nil {
				continue
			}
			// The final hop lands on the existing node w.
			if len(walk) >= 2 && !canAttach(w, walk[len(walk)-2]) {
				continue
			}
			switch {
			case bestLen < 0 || len(walk) < bestLen:
				bestLen = len(walk)
				cands = []cand{{w, walk}}
			case len(walk) == bestLen:
				cands = append(cands, cand{w, walk})
			}
		}
		if len(cands) == 0 {
			return nil, nil, nil, false // disconnected interpretation
		}
		pick := 0
		if step < len(picks) && picks[step] < len(cands) {
			pick = picks[step]
		}
		ties = append(ties, len(cands))
		step++
		bestW, bestWalk := cands[pick].w, cands[pick].walk
		cur := u
		okWalk := true
		for i := 1; i < len(bestWalk); i++ {
			var nxt *Node
			if i == len(bestWalk)-1 {
				nxt = bestW
			} else {
				nxt = newNode(bestWalk[i], false)
			}
			if !addEdge(cur, nxt) {
				okWalk = false
				break
			}
			cur = nxt
		}
		if !okWalk {
			return nil, nil, nil, false
		}
		connected[u.ID] = true
		for _, n := range p.Nodes {
			if !n.FromTerm {
				connected[n.ID] = true
			}
		}
	}
	// Compact merged-away nodes and renumber ids (merged nodes never have
	// edges: they were dropped before being connected).
	if len(merged) > 0 {
		remap := make(map[int]int, len(p.Nodes))
		var kept []*Node
		for _, n := range p.Nodes {
			if merged[n.ID] {
				continue
			}
			remap[n.ID] = len(kept)
			kept = append(kept, n)
		}
		for i, n := range kept {
			n.ID = i
		}
		for i, e := range p.Edges {
			p.Edges[i] = Edge{A: remap[e.A], B: remap[e.B]}
		}
		p.Nodes = kept
	}
	return p, termNode, ties, true
}

// annotate applies the operator terms to the pattern (Algorithm 3, lines
// 2-12). It returns false when an operator cannot be applied, which rejects
// the interpretation.
func (g *Generator) annotate(p *Pattern, q *keyword.Query, basics []int, combo []match.Tag, termNode map[int]*Node) bool {
	tagOf := make(map[int]match.Tag)
	for k, ti := range basics {
		tagOf[ti] = combo[k]
	}
	for i, t := range q.Terms {
		if !t.IsOperator() {
			continue
		}
		next := q.Terms[i+1]
		if next.IsOperator() {
			// Nested aggregate: t applies to the result of the next operator.
			if t.Kind != keyword.Aggregate {
				return false
			}
			p.Nested = append(p.Nested, t.Agg)
			continue
		}
		node := termNode[i+1]
		if node == nil {
			return false
		}
		tag := tagOf[i+1]
		ref, ok := operandRef(g.M.Graph(), node, tag)
		if !ok {
			return false
		}
		switch t.Kind {
		case keyword.Aggregate:
			// MIN/MAX/AVG/SUM require an attribute operand; COUNT also
			// accepts a relation name (counting object identifiers).
			if tag.Kind == match.RelationName && t.Agg != "COUNT" {
				return false
			}
			// SUM and AVG are only defined over numeric attributes; an
			// interpretation summing a VARCHAR (e.g. {SUM Grade}) is invalid.
			if t.Agg == "SUM" || t.Agg == "AVG" {
				if ty, ok := attrType(g.M.Graph(), node.Class, ref); !ok || !numericType(ty) {
					return false
				}
			}
			node.Aggs = append(node.Aggs, AggAnnot{Func: t.Agg, Ref: ref})
		case keyword.GroupBy:
			if tag.Kind == match.RelationName {
				// Group by the full object/relationship identifier.
				rel := relationOf(g.M.Graph(), node.Class)
				for _, k := range rel.PrimaryKey {
					node.GroupBys = append(node.GroupBys, AttrRef{Relation: rel.Name, Attr: k})
				}
			} else {
				node.GroupBys = append(node.GroupBys, ref)
			}
		}
	}
	return true
}

// operandRef resolves the attribute an operator applies to, following the
// two cases of Section 3.1.1: a relation-name match maps to the relation's
// identifier; an attribute-name (or component-relation) match maps to that
// attribute.
func operandRef(g *orm.Graph, node *Node, tag match.Tag) (AttrRef, bool) {
	nrel := relationOf(g, node.Class)
	switch tag.Kind {
	case match.RelationName:
		if strings.EqualFold(tag.Relation, nrel.Name) {
			if len(nrel.PrimaryKey) == 0 {
				return AttrRef{}, false
			}
			return AttrRef{Relation: nrel.Name, Attr: nrel.PrimaryKey[0]}, true
		}
		// Component relation: the operand is its multivalued attribute (the
		// key attributes that are not the owner's foreign key).
		n := g.Node(node.Class)
		for _, c := range n.Components {
			if strings.EqualFold(c.Name, tag.Relation) {
				fk := c.ForeignKeys[0]
				for _, k := range c.PrimaryKey {
					inFK := false
					for _, f := range fk.Attrs {
						if strings.EqualFold(f, k) {
							inFK = true
							break
						}
					}
					if !inFK {
						return AttrRef{Relation: c.Name, Attr: k}, true
					}
				}
			}
		}
		return AttrRef{}, false
	case match.AttrName:
		return AttrRef{Relation: tag.Relation, Attr: tag.Attr}, true
	default:
		// A value match cannot be an operator operand (Definition 1).
		return AttrRef{}, false
	}
}

func relationOf(g *orm.Graph, class string) *relation.Schema {
	return g.Node(class).Relation
}

// attrType resolves the declared type of an attribute reference on a node
// (its own relation or a component).
func attrType(g *orm.Graph, class string, ref AttrRef) (relation.Type, bool) {
	n := g.Node(class)
	if strings.EqualFold(ref.Relation, n.Relation.Name) && n.Relation.HasAttr(ref.Attr) {
		return n.Relation.AttrType(ref.Attr), true
	}
	for _, c := range n.Components {
		if strings.EqualFold(c.Name, ref.Relation) && c.HasAttr(ref.Attr) {
			return c.AttrType(ref.Attr), true
		}
	}
	return relation.TypeString, false
}

func numericType(t relation.Type) bool {
	return t == relation.TypeInt || t == relation.TypeFloat
}

// disambiguate forks pattern copies that distinguish objects sharing an
// attribute value (Section 3.1.2, Algorithm 3 lines 13-23). For every
// object/mixed node whose condition matches more than one object, each
// pattern in the working set is copied and the copy groups on the object
// identifier.
func (g *Generator) disambiguate(p *Pattern) []*Pattern {
	if g.DisableDisambiguation || len(p.Query.Operators()) == 0 {
		return []*Pattern{p}
	}
	set := []*Pattern{p}
	for id, n := range p.Nodes {
		t := p.Graph.Node(n.Class).Type
		if t != orm.Object && t != orm.Mixed {
			continue
		}
		if !n.HasCond() || n.CondCount <= 1 {
			continue
		}
		rel := relationOf(p.Graph, n.Class)
		if len(rel.PrimaryKey) == 0 {
			continue
		}
		already := true
		for _, k := range rel.PrimaryKey {
			found := false
			for _, gb := range n.GroupBys {
				if strings.EqualFold(gb.Attr, k) && strings.EqualFold(gb.Relation, rel.Name) {
					found = true
					break
				}
			}
			if !found {
				already = false
				break
			}
		}
		if already {
			continue
		}
		var forked []*Pattern
		for _, q := range set {
			c := q.Clone()
			cn := c.Nodes[id]
			for _, k := range rel.PrimaryKey {
				cn.GroupBys = append(cn.GroupBys, AttrRef{Relation: rel.Name, Attr: k})
			}
			cn.Disamb = true
			forked = append(forked, c)
		}
		set = append(set, forked...)
	}
	return set
}

// rank orders patterns: fewer object/mixed nodes first, then shorter average
// target-condition distance, then more disambiguated (the paper reports the
// distinguishing interpretation as the best match), then canonical order.
func rank(ps []*Pattern) {
	type scored struct {
		p      *Pattern
		nodes  int
		values int
		dist   float64
		dis    int
		canon  string
	}
	ss := make([]scored, len(ps))
	for i, p := range ps {
		ss[i] = scored{p, p.ObjectMixedCount(), p.ValueTerms,
			p.AvgTargetConditionDistance(), p.DisambCount(), p.Canonical()}
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].nodes != ss[j].nodes {
			return ss[i].nodes < ss[j].nodes
		}
		if ss[i].values != ss[j].values {
			return ss[i].values < ss[j].values
		}
		if ss[i].dist != ss[j].dist {
			return ss[i].dist < ss[j].dist
		}
		if ss[i].dis != ss[j].dis {
			return ss[i].dis > ss[j].dis
		}
		return ss[i].canon < ss[j].canon
	})
	for i := range ss {
		ps[i] = ss[i].p
	}
}
