// Package pattern implements annotated query patterns (Section 3): minimal
// connected graphs over the ORM schema graph that depict the interpretations
// of a keyword query, annotated with aggregate and GROUPBY operators
// (Algorithm 3), disambiguated to distinguish objects sharing an attribute
// value (Section 3.1.2), and ranked by the number of object/mixed nodes and
// the average target-condition distance.
package pattern

import (
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/keyword"
	"kwagg/internal/orm"
	"kwagg/internal/sqlast"
)

// AttrRef names an attribute of a (view) relation.
type AttrRef struct {
	Relation string
	Attr     string
}

// String renders Relation.Attr.
func (r AttrRef) String() string { return r.Relation + "." + r.Attr }

// AggAnnot is an aggregate annotation t(a) on a node: apply Func to Ref.
type AggAnnot struct {
	Func sqlast.AggFunc
	Ref  AttrRef
}

// Alias returns the result-column alias in the style of the paper: numLid
// for COUNT(Lid), avgAmount for AVG(amount), and so on.
func (a AggAnnot) Alias() string {
	prefix := map[sqlast.AggFunc]string{
		sqlast.AggCount: "num",
		sqlast.AggSum:   "sum",
		sqlast.AggAvg:   "avg",
		sqlast.AggMin:   "min",
		sqlast.AggMax:   "max",
	}[a.Func]
	return prefix + a.Ref.Attr
}

// String renders the annotation as FUNC(Rel.Attr).
func (a AggAnnot) String() string { return fmt.Sprintf("%s(%s)", a.Func, a.Ref) }

// Node is one vertex of a query pattern: an instance of an ORM graph node,
// optionally carrying a selection condition (a = t), aggregate annotations,
// and GROUPBY annotations.
type Node struct {
	ID    int
	Class string // ORM node name this instance belongs to

	// Condition "CondAttr contains CondTerm" on relation CondRel (the node's
	// primary relation, or one of its components). CondCount is the number
	// of distinct objects satisfying the condition, recorded at match time.
	CondRel   string
	CondAttr  string
	CondTerm  string
	CondCount int

	Aggs     []AggAnnot
	GroupBys []AttrRef
	// Disamb marks that GroupBys includes the object identifier added by
	// pattern disambiguation (GROUPBY(id), Section 3.1.2).
	Disamb bool
	// FromTerm marks nodes created for a query term; the rest are interior
	// nodes added to connect the pattern.
	FromTerm bool

	usedFK map[string]int // target class -> FKs of this instance consumed
}

// HasCond reports whether the node carries a selection condition.
func (n *Node) HasCond() bool { return n.CondTerm != "" }

// IsTarget reports whether the node is a target node (annotated with an
// aggregate function).
func (n *Node) IsTarget() bool { return len(n.Aggs) > 0 }

// IsCondition reports whether the node is a condition node (annotated with a
// condition or GROUPBY).
func (n *Node) IsCondition() bool { return n.HasCond() || len(n.GroupBys) > 0 }

// label renders the node's annotations for Describe and canonical forms.
func (n *Node) label() string {
	var parts []string
	if n.HasCond() {
		parts = append(parts, fmt.Sprintf("%s.%s~%q", n.CondRel, n.CondAttr, n.CondTerm))
	}
	for _, a := range n.Aggs {
		parts = append(parts, a.String())
	}
	for _, g := range n.GroupBys {
		parts = append(parts, "GROUPBY("+g.String()+")")
	}
	if len(parts) == 0 {
		return n.Class
	}
	return n.Class + "[" + strings.Join(parts, " ") + "]"
}

// Edge connects two pattern nodes (adjacent classes in the ORM graph).
type Edge struct{ A, B int }

// Pattern is an annotated query pattern.
type Pattern struct {
	Graph *orm.Graph
	Query *keyword.Query
	Nodes []*Node
	Edges []Edge
	// Nested lists the aggregate functions applied to the result of the
	// pattern's own aggregates, outermost first (Section 3.2): the query
	// {AVG COUNT Lecturer GROUPBY Course} yields Nested = [AVG].
	Nested []sqlast.AggFunc
	// ValueTerms counts the query terms this interpretation reads as tuple
	// values. Interpretations that read a term as metadata (a relation or
	// attribute name) rank above those that read the same term as a value:
	// in {supplier MAX acctbal ...} the term "supplier" means the Supplier
	// relation, not the suppliers whose name contains "supplier".
	ValueTerms int
}

// Node returns the node with the given id.
func (p *Pattern) Node(id int) *Node { return p.Nodes[id] }

// Adjacent returns the ids of nodes adjacent to id.
func (p *Pattern) Adjacent(id int) []int {
	var out []int
	for _, e := range p.Edges {
		switch id {
		case e.A:
			out = append(out, e.B)
		case e.B:
			out = append(out, e.A)
		}
	}
	sort.Ints(out)
	return out
}

// ObjectMixedCount counts the object and mixed nodes, the primary ranking
// signal.
func (p *Pattern) ObjectMixedCount() int {
	n := 0
	for _, nd := range p.Nodes {
		t := p.Graph.Node(nd.Class).Type
		if t == orm.Object || t == orm.Mixed {
			n++
		}
	}
	return n
}

// distance is the number of edges on the shortest path between two pattern
// nodes, or 0 when unreachable.
func (p *Pattern) distance(a, b int) int {
	if a == b {
		return 0
	}
	dist := map[int]int{a: 0}
	queue := []int{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range p.Adjacent(cur) {
			if _, ok := dist[nb]; ok {
				continue
			}
			dist[nb] = dist[cur] + 1
			if nb == b {
				return dist[nb]
			}
			queue = append(queue, nb)
		}
	}
	return 0
}

// AvgTargetConditionDistance averages the pairwise distances between target
// nodes and condition nodes (the secondary ranking signal).
func (p *Pattern) AvgTargetConditionDistance() float64 {
	var targets, conds []int
	for _, n := range p.Nodes {
		if n.IsTarget() {
			targets = append(targets, n.ID)
		}
		if n.IsCondition() {
			conds = append(conds, n.ID)
		}
	}
	if len(targets) == 0 || len(conds) == 0 {
		return 0
	}
	sum, cnt := 0, 0
	for _, t := range targets {
		for _, c := range conds {
			if t == c {
				continue
			}
			sum += p.distance(t, c)
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return float64(sum) / float64(cnt)
}

// DisambCount counts nodes carrying a disambiguation GROUPBY.
func (p *Pattern) DisambCount() int {
	n := 0
	for _, nd := range p.Nodes {
		if nd.Disamb {
			n++
		}
	}
	return n
}

// Clone deep-copies the pattern.
func (p *Pattern) Clone() *Pattern {
	c := &Pattern{Graph: p.Graph, Query: p.Query, ValueTerms: p.ValueTerms}
	c.Nested = append([]sqlast.AggFunc(nil), p.Nested...)
	c.Edges = append([]Edge(nil), p.Edges...)
	for _, n := range p.Nodes {
		nn := *n
		nn.Aggs = append([]AggAnnot(nil), n.Aggs...)
		nn.GroupBys = append([]AttrRef(nil), n.GroupBys...)
		nn.usedFK = nil
		c.Nodes = append(c.Nodes, &nn)
	}
	return c
}

// Canonical returns a deterministic structural signature used to de-duplicate
// patterns generated from different tag combinations.
func (p *Pattern) Canonical() string {
	labels := make([]string, len(p.Nodes))
	for i, n := range p.Nodes {
		labels[i] = n.label()
	}
	edges := make([]string, len(p.Edges))
	for i, e := range p.Edges {
		a, b := labels[e.A]+"#"+fmt.Sprint(e.A), labels[e.B]+"#"+fmt.Sprint(e.B)
		if a > b {
			a, b = b, a
		}
		edges[i] = a + "--" + b
	}
	sort.Strings(edges)
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	var nested []string
	for _, f := range p.Nested {
		nested = append(nested, string(f))
	}
	return strings.Join(sorted, ";") + "|" + strings.Join(edges, ";") + "|" + strings.Join(nested, ",")
}

// Describe renders a human-readable account of the interpretation, used by
// the CLI and the experiment reports.
func (p *Pattern) Describe() string {
	var parts []string
	for _, f := range p.Nested {
		parts = append(parts, string(f)+" of")
	}
	for _, n := range p.Nodes {
		for _, a := range n.Aggs {
			parts = append(parts, a.String())
		}
	}
	var conds []string
	for _, n := range p.Nodes {
		if n.HasCond() {
			conds = append(conds, fmt.Sprintf("%s.%s contains %q", n.CondRel, n.CondAttr, n.CondTerm))
		}
	}
	var groups []string
	for _, n := range p.Nodes {
		for _, g := range n.GroupBys {
			if n.Disamb && g.Attr != "" {
				groups = append(groups, fmt.Sprintf("each distinct %s (%s)", n.Class, g.String()))
			} else {
				groups = append(groups, "each "+g.String())
			}
		}
	}
	s := strings.Join(parts, " ")
	if s == "" {
		s = "retrieve " + p.shape()
	}
	if len(conds) > 0 {
		s += " where " + strings.Join(conds, " and ")
	}
	if len(groups) > 0 {
		s += " for " + strings.Join(groups, ", ")
	}
	return s
}

func (p *Pattern) shape() string {
	var names []string
	for _, n := range p.Nodes {
		if n.FromTerm {
			names = append(names, n.Class)
		}
	}
	return strings.Join(names, ", ")
}

// String renders the pattern structure: nodes with labels, then edges.
func (p *Pattern) String() string {
	var b strings.Builder
	for i, n := range p.Nodes {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%d:%s", n.ID, n.label())
	}
	for _, e := range p.Edges {
		fmt.Fprintf(&b, " (%d-%d)", e.A, e.B)
	}
	return b.String()
}
