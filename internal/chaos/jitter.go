package chaos

import (
	"sync"
	"time"
)

// Jitter's SplitMix64 stream. Package chaos owns all randomness of the
// serving stack (the detclock analyzer enforces it), so retry backoff draws
// from here instead of the global math/rand source. The stream is seeded
// with a constant: jitter only needs to decorrelate concurrent retries
// within one process, and a deterministic stream keeps chaos replays
// reproducible.
var (
	jitterMu    sync.Mutex
	jitterState uint64 = 0x51eccde155786e4f
)

// Jitter stretches a backoff duration by a uniform random extra in
// [0, d/2], the "up to 50% jitter" of the statement retry policy.
// Non-positive durations are returned unchanged.
func Jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	jitterMu.Lock()
	jitterState += 0x9e3779b97f4a7c15
	z := jitterState
	jitterMu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return d + time.Duration(z%uint64(d/2+1))
}
