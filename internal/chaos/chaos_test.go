package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"rate=0.1", Config{Rate: 0.1, Seed: 1}},
		{"0.25", Config{Rate: 0.25, Seed: 1}},
		{"rate=0.1,seed=7", Config{Rate: 0.1, Seed: 7}},
		{"rate=0.1,latency=5ms", Config{Rate: 0.1, Seed: 1, Latency: 5 * time.Millisecond}},
		{"rate=0.5,cancel=0.25", Config{Rate: 0.5, Seed: 1, Cancel: 0.25}},
		{"rate=1,points=statement+cache-lookup", Config{Rate: 1, Seed: 1,
			Points: []Point{PointStatement, PointCacheLookup}}},
		{" rate=0.1 , seed=3 ", Config{Rate: 0.1, Seed: 3}},
	}
	for _, c := range cases {
		inj, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if fmt.Sprint(inj.cfg) != fmt.Sprint(c.want) {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.spec, inj.cfg, c.want)
		}
	}
}

func TestParseEmptyDisables(t *testing.T) {
	for _, spec := range []string{"", "   "} {
		inj, err := Parse(spec)
		if err != nil || inj != nil {
			t.Fatalf("Parse(%q) = %v, %v; want nil, nil", spec, inj, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"rate=2",                  // out of [0, 1]
		"rate=-0.1",               // out of [0, 1]
		"cancel=1.5",              // out of [0, 1]
		"bogus=1",                 // unknown key
		"points=statement+nosuch", // unknown point
		"latency=fast",            // not a duration
		"seed=abc",                // not an integer
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

// TestDeterminism: the same seed over the same decision sequence injects the
// same faults — the property that makes a chaos run reproducible.
func TestDeterminism(t *testing.T) {
	run := func() []bool {
		inj := New(Config{Rate: 0.3, Seed: 42})
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, inj.Fault(PointStatement, "q") != nil)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identically seeded runs", i)
		}
	}
}

func TestFaultRate(t *testing.T) {
	inj := New(Config{Rate: 0.1, Seed: 7})
	n := 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		if inj.Fault(PointStatement, "q") != nil {
			n++
		}
	}
	got := float64(n) / trials
	if got < 0.05 || got > 0.15 {
		t.Fatalf("fault rate %v far from configured 0.1", got)
	}
	if inj.Injected()[PointStatement] != uint64(n) {
		t.Fatalf("Injected() = %v, want %d at %s", inj.Injected(), n, PointStatement)
	}
}

func TestPointsFilter(t *testing.T) {
	inj := New(Config{Rate: 1, Points: []Point{PointCacheLookup}})
	if inj.Fault(PointStatement, "q") != nil {
		t.Fatal("statement faults must be off when points excludes them")
	}
	if inj.Fault(PointCacheLookup, "k") == nil {
		t.Fatal("cache-lookup faults must fire at rate 1")
	}
	if inj.Delay(PointStatement) != 0 {
		t.Fatal("delays must honor the points filter too")
	}
}

func TestTransient(t *testing.T) {
	inj := New(Config{Rate: 1})
	err := inj.Fault(PointStatement, "SELECT 1")
	if !IsTransient(err) {
		t.Fatalf("rate-1 cancel-0 fault should be transient, got %v", err)
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if !IsTransient(wrapped) {
		t.Fatal("IsTransient must see through wrapping")
	}
	if IsTransient(errors.New("plain")) || IsTransient(nil) {
		t.Fatal("non-injected errors are not transient")
	}
}

// TestCancelShare: with cancel=1 every statement fault surfaces as a context
// cancellation (and is therefore not retryable).
func TestCancelShare(t *testing.T) {
	inj := New(Config{Rate: 1, Cancel: 1})
	for i := 0; i < 50; i++ {
		err := inj.Fault(PointStatement, "q")
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancel=1 fault should wrap context.Canceled, got %v", err)
		}
		if IsTransient(err) {
			t.Fatal("injected cancellations must not be retryable")
		}
	}
	// Non-statement points never surface cancellations.
	if err := inj.Fault(PointCacheLookup, "k"); errors.Is(err, context.Canceled) {
		t.Fatal("cancel share applies to statement faults only")
	}
}

func TestDelayRange(t *testing.T) {
	inj := New(Config{Rate: 1, Latency: 10 * time.Millisecond})
	for i := 0; i < 100; i++ {
		d := inj.Delay(PointWorker)
		if d < 5*time.Millisecond || d >= 10*time.Millisecond {
			t.Fatalf("delay %v outside [latency/2, latency)", d)
		}
	}
	if New(Config{Rate: 1}).Delay(PointWorker) != 0 {
		t.Fatal("zero latency must mean zero delay")
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on dead context = %v, want Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Sleep must return promptly when the context is dead")
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
	if err := Sleep(context.Background(), time.Microsecond); err != nil {
		t.Fatalf("short sleep: %v", err)
	}
}

func TestString(t *testing.T) {
	inj := New(Config{Rate: 1, Seed: 3})
	inj.Fault(PointStatement, "q")
	inj.Fault(PointCacheStore, "k")
	s := inj.String()
	for _, want := range []string{"rate=1", "seed=3", "statement=1", "cache-store=1"} {
		if !contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
