// Package chaos is the fault-injection layer of the serving stack. The
// pipeline stages that already carry an obs span — per-statement SQL
// execution, the top-k worker pool, the query caches, and the HTTP layer —
// additionally consult an Injector, so tests (and operators reproducing an
// incident) can make any of them slow, flaky or stuck on demand and verify
// that the engine degrades instead of answering wrongly.
//
// Chaos is disabled by passing a nil Injector, which is the default
// everywhere: call sites guard every injection point with a plain nil check,
// so the disabled hot path costs one predictable branch and no allocations.
//
// The built-in Chaos injector is driven by a Config (fault rate, injected
// latency, the share of faults surfaced as context cancellations, an
// optional subset of points) and a deterministic seeded RNG, so a chaos run
// is reproducible: the same seed over the same request sequence injects the
// same faults. Parse builds one from a flag-friendly spec string
// ("rate=0.1,seed=7,latency=5ms,points=statement+cache-lookup").
//
// Injected statement faults are *Transient values; the execution layer
// retries those (bounded, jittered backoff) and treats everything else as a
// real error. See docs/ROBUSTNESS.md for the full degradation semantics.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one fault-injection point of the serving pipeline.
type Point string

// The injection points. Each corresponds to a pipeline stage that already
// runs under an obs span or metric, so injected misbehavior is visible in
// the same traces and histograms as real misbehavior.
const (
	// PointStatement guards every SQL statement execution attempt on the
	// top-k pool: faults abort the attempt (transient ones are retried),
	// delays stretch its latency.
	PointStatement Point = "statement"
	// PointWorker delays a pool worker between statements (slow or stuck
	// workers).
	PointWorker Point = "worker"
	// PointCacheLookup forces query-cache lookups to miss (miss storm).
	PointCacheLookup Point = "cache-lookup"
	// PointCacheStore drops query-cache inserts, so computed entries vanish
	// immediately (eviction storm).
	PointCacheStore Point = "cache-store"
	// PointClientRead throttles HTTP request-body reads (slow clients).
	PointClientRead Point = "client-read"
)

// AllPoints lists every injection point in a fixed order.
func AllPoints() []Point {
	return []Point{PointStatement, PointWorker, PointCacheLookup, PointCacheStore, PointClientRead}
}

// Injector decides, at each injection point, whether to misbehave.
// Implementations must be safe for concurrent use; a nil Injector means
// chaos is disabled.
type Injector interface {
	// Fault returns the fault to inject at point, or nil for none. detail
	// carries the statement SQL or cache key for targeted injectors. Faults
	// that the caller may retry must be (or wrap) *Transient.
	Fault(point Point, detail string) error
	// Delay returns artificial latency to add at point (0 for none). Callers
	// sleep via Sleep so injected latency still honors cancellation.
	Delay(point Point) time.Duration
}

// Transient is an injected fault the serving path is allowed to retry.
type Transient struct {
	Point  Point
	Detail string
}

func (t *Transient) Error() string {
	return fmt.Sprintf("chaos: injected transient fault at %s", t.Point)
}

// IsTransient reports whether err is retryable: an injected transient fault,
// or any error marking itself retryable via a Transient() bool method (the
// contract external execution backends use for engine-busy and momentary
// driver faults). Real execution errors are deterministic and surface
// immediately.
func IsTransient(err error) bool {
	var t *Transient
	if errors.As(err, &t) {
		return true
	}
	var m interface{ Transient() bool }
	return errors.As(err, &m) && m.Transient()
}

// Sleep blocks for d or until ctx is done, whichever comes first, returning
// ctx.Err() when interrupted. Injected latency and retry backoff both sleep
// through it so a cancelled request never waits out an artificial delay.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Config parameterizes the built-in injector.
type Config struct {
	// Rate is the probability in [0, 1] of injecting a fault at each enabled
	// point decision.
	Rate float64
	// Seed seeds the deterministic RNG (0 selects 1).
	Seed uint64
	// Latency is the maximum artificial delay; each Delay draw is uniform in
	// [Latency/2, Latency), injected with probability Rate. 0 disables delays.
	Latency time.Duration
	// Cancel is the share in [0, 1] of statement faults injected as context
	// cancellations instead of retryable transient errors.
	Cancel float64
	// Points restricts injection to the listed points; empty enables all.
	Points []Point
}

// Chaos is the built-in Injector: seeded, deterministic, concurrency-safe.
type Chaos struct {
	cfg     Config
	enabled map[Point]bool // nil = all points

	mu       sync.Mutex
	state    uint64 // SplitMix64
	injected map[Point]uint64
}

// New builds an injector from cfg.
func New(cfg Config) *Chaos {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	c := &Chaos{cfg: cfg, state: cfg.Seed, injected: make(map[Point]uint64)}
	if len(cfg.Points) > 0 {
		c.enabled = make(map[Point]bool, len(cfg.Points))
		for _, p := range cfg.Points {
			c.enabled[p] = true
		}
	}
	return c
}

// Parse builds an injector from a spec string of comma-separated key=value
// pairs: rate=0.1, seed=7, latency=5ms, cancel=0.25, and
// points=statement+cache-lookup (plus-separated subset of the point names).
// A bare number is shorthand for rate=N. The empty string yields nil
// (chaos disabled).
func Parse(spec string) (*Chaos, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var cfg Config
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, found := strings.Cut(part, "=")
		if !found {
			// Bare value: the fault rate.
			key, val = "rate", part
		}
		var err error
		switch key {
		case "rate":
			cfg.Rate, err = parseUnit(val)
		case "cancel":
			cfg.Cancel, err = parseUnit(val)
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "points":
			for _, name := range strings.Split(val, "+") {
				p := Point(strings.TrimSpace(name))
				if !validPoint(p) {
					return nil, fmt.Errorf("chaos: unknown point %q (have %v)", name, AllPoints())
				}
				cfg.Points = append(cfg.Points, p)
			}
		default:
			return nil, fmt.Errorf("chaos: unknown spec key %q in %q", key, spec)
		}
		if err != nil {
			return nil, fmt.Errorf("chaos: bad %s in %q: %w", key, spec, err)
		}
	}
	return New(cfg), nil
}

func parseUnit(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("%v not in [0, 1]", f)
	}
	return f, nil
}

func validPoint(p Point) bool {
	for _, q := range AllPoints() {
		if p == q {
			return true
		}
	}
	return false
}

// Fault implements Injector: with probability Rate at an enabled point it
// returns a *Transient, except that a Cancel share of statement faults
// surface as context.Canceled (a client that gave up mid-statement).
func (c *Chaos) Fault(point Point, detail string) error {
	if !c.on(point) {
		return nil
	}
	c.mu.Lock()
	hit := c.roll() < c.cfg.Rate
	canceled := hit && point == PointStatement && c.roll() < c.cfg.Cancel
	if hit {
		c.injected[point]++
	}
	c.mu.Unlock()
	if !hit {
		return nil
	}
	if canceled {
		return fmt.Errorf("chaos: injected client cancellation at %s: %w", point, context.Canceled)
	}
	return &Transient{Point: point, Detail: detail}
}

// Delay implements Injector: with probability Rate at an enabled point it
// returns a delay uniform in [Latency/2, Latency).
func (c *Chaos) Delay(point Point) time.Duration {
	if !c.on(point) || c.cfg.Latency <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.roll() >= c.cfg.Rate {
		return 0
	}
	half := c.cfg.Latency / 2
	return half + time.Duration(c.roll()*float64(half))
}

// Injected reports how many faults have been injected per point (delays do
// not count; only Fault hits).
func (c *Chaos) Injected() map[Point]uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[Point]uint64, len(c.injected))
	for p, n := range c.injected {
		out[p] = n
	}
	return out
}

// String summarizes the configuration and the per-point injection counts.
func (c *Chaos) String() string {
	counts := c.Injected()
	points := make([]string, 0, len(counts))
	for p := range counts {
		points = append(points, string(p))
	}
	sort.Strings(points)
	parts := make([]string, 0, len(points))
	for _, p := range points {
		parts = append(parts, fmt.Sprintf("%s=%d", p, counts[Point(p)]))
	}
	return fmt.Sprintf("chaos(rate=%g seed=%d injected: %s)",
		c.cfg.Rate, c.cfg.Seed, strings.Join(parts, " "))
}

func (c *Chaos) on(point Point) bool {
	return c.enabled == nil || c.enabled[point]
}

// roll advances the SplitMix64 state and returns a uniform float in [0, 1).
// Callers hold c.mu.
func (c *Chaos) roll() float64 {
	c.state += 0x9e3779b97f4a7c15
	z := c.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
