package chaos

import (
	"testing"
	"time"
)

// TestJitterBounds: Jitter(d) must land in [d, d+d/2] — the "up to 50%"
// retry-backoff stretch — and actually vary across draws.
func TestJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	varied := false
	var prev time.Duration
	for i := 0; i < 1000; i++ {
		j := Jitter(d)
		if j < d || j > d+d/2 {
			t.Fatalf("Jitter(%v) = %v, outside [%v, %v]", d, j, d, d+d/2)
		}
		if i > 0 && j != prev {
			varied = true
		}
		prev = j
	}
	if !varied {
		t.Error("Jitter returned the same value 1000 times; the stream is not advancing")
	}
}

// TestJitterNonPositive: zero and negative durations pass through unchanged
// (the retry loop uses shift-doubled backoff that can start at 0 in tests).
func TestJitterNonPositive(t *testing.T) {
	for _, d := range []time.Duration{0, -time.Second} {
		if got := Jitter(d); got != d {
			t.Errorf("Jitter(%v) = %v, want unchanged", d, got)
		}
	}
}
