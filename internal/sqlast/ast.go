// Package sqlast defines the abstract syntax tree for the SQL subset that
// both the semantic translator and the SQAK baseline emit, and that the
// in-memory engine (internal/sqldb) executes. Keeping one AST lets the
// translator build queries structurally, render them to SQL text identical
// in shape to the statements printed in the paper, and have the engine parse
// that text back into the very same tree (a round-trip that is
// property-tested).
//
// The subset covers: SELECT lists with column references, aggregate
// functions and aliases; DISTINCT; FROM lists of base tables and derived
// tables (subqueries) with aliases; conjunctive WHERE clauses of
// column-column equality joins, column-literal comparisons and the paper's
// CONTAINS predicate; GROUP BY; and ORDER BY for deterministic output.
package sqlast

import (
	"fmt"
	"strings"

	"kwagg/internal/relation"
)

// AggFunc enumerates the aggregate functions of Definition 1.
type AggFunc string

// Aggregate functions supported in keyword queries and generated SQL.
const (
	AggCount AggFunc = "COUNT"
	AggSum   AggFunc = "SUM"
	AggAvg   AggFunc = "AVG"
	AggMin   AggFunc = "MIN"
	AggMax   AggFunc = "MAX"
)

// IsAggFunc reports whether s names an aggregate function, and returns it
// in canonical form.
func IsAggFunc(s string) (AggFunc, bool) {
	switch strings.ToUpper(s) {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	}
	return "", false
}

// Col is a (possibly qualified) column reference.
type Col struct {
	Table  string // alias of the table the column comes from; may be empty
	Column string
}

// String renders the reference as [table.]column.
func (c Col) String() string {
	if c.Table == "" {
		return c.Column
	}
	return c.Table + "." + c.Column
}

// Expr is a scalar expression in a SELECT list: a column or an aggregate.
type Expr interface {
	exprNode()
	String() string
}

// ColExpr is a plain column reference expression.
type ColExpr struct{ Col Col }

func (ColExpr) exprNode() {}

// String renders the column reference.
func (e ColExpr) String() string { return e.Col.String() }

// AggExpr is an aggregate function applied to a column, e.g. COUNT(S.Sid).
// Distinct renders as COUNT(DISTINCT ...).
type AggExpr struct {
	Func     AggFunc
	Arg      Col
	Distinct bool
}

func (AggExpr) exprNode() {}

// String renders the aggregate call.
func (e AggExpr) String() string {
	if e.Distinct {
		return fmt.Sprintf("%s(DISTINCT %s)", e.Func, e.Arg)
	}
	return fmt.Sprintf("%s(%s)", e.Func, e.Arg)
}

// SelectItem is one entry of the SELECT list with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// String renders the item with its AS alias when present.
func (it SelectItem) String() string {
	if it.Alias != "" {
		return it.Expr.String() + " AS " + it.Alias
	}
	return it.Expr.String()
}

// TableRef is an entry in the FROM list: either a base relation (Name) or a
// derived table (Subquery), in both cases with an alias the rest of the
// query refers to.
type TableRef struct {
	Name     string
	Subquery *Query
	Alias    string
}

// String renders the table reference.
func (tr TableRef) String() string {
	if tr.Subquery != nil {
		s := "(" + tr.Subquery.String() + ")"
		if tr.Alias != "" {
			s += " " + tr.Alias
		}
		return s
	}
	if tr.Alias != "" && !strings.EqualFold(tr.Alias, tr.Name) {
		return tr.Name + " " + tr.Alias
	}
	return tr.Name
}

// CmpOp is a comparison operator in a WHERE predicate.
type CmpOp string

// Comparison operators.
const (
	OpEq CmpOp = "="
	OpNe CmpOp = "<>"
	OpLt CmpOp = "<"
	OpLe CmpOp = "<="
	OpGt CmpOp = ">"
	OpGe CmpOp = ">="
)

// Pred is a conjunct of the WHERE clause.
type Pred interface {
	predNode()
	String() string
}

// JoinPred equates two columns (foreign key - key join).
type JoinPred struct {
	Left, Right Col
}

func (JoinPred) predNode() {}

// String renders the equi-join predicate.
func (p JoinPred) String() string { return p.Left.String() + "=" + p.Right.String() }

// ColComparePred compares two columns with a non-equality operator (equality
// between columns is JoinPred, which participates in join planning).
type ColComparePred struct {
	Left  Col
	Op    CmpOp
	Right Col
}

func (ColComparePred) predNode() {}

// String renders the comparison.
func (p ColComparePred) String() string {
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// ComparePred compares a column with a literal.
type ComparePred struct {
	Col   Col
	Op    CmpOp
	Value relation.Value
}

func (ComparePred) predNode() {}

// String renders the comparison with a SQL literal on the right.
func (p ComparePred) String() string {
	return fmt.Sprintf("%s %s %s", p.Col, p.Op, relation.Literal(p.Value))
}

// ContainsPred is the paper's "a contains t" predicate: a case-insensitive
// substring match. It renders as "col CONTAINS 'needle'".
type ContainsPred struct {
	Col    Col
	Needle string
}

func (ContainsPred) predNode() {}

// String renders the predicate.
func (p ContainsPred) String() string {
	return fmt.Sprintf("%s CONTAINS %s", p.Col, relation.Literal(p.Needle))
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Col  Col
	Desc bool
}

// String renders the order item.
func (o OrderItem) String() string {
	if o.Desc {
		return o.Col.String() + " DESC"
	}
	return o.Col.String()
}

// Query is a SELECT statement of the supported subset.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     []TableRef
	Where    []Pred // conjunction
	GroupBy  []Col
	OrderBy  []OrderItem
	// Limit truncates the result to the first N rows; 0 means no limit.
	Limit int
}

// String renders the query as SQL text in the layout used by the paper:
// single-space separators, clauses in canonical order.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	for i, tr := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(tr.String())
	}
	if len(q.Where) > 0 {
		b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString(" AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Pretty renders the query across multiple lines, one clause per line, for
// human-facing output (CLI, examples, EXPERIMENTS.md).
func (q *Query) Pretty() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range q.Select {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString("\nFROM ")
	for i, tr := range q.From {
		if i > 0 {
			b.WriteString(",\n     ")
		}
		b.WriteString(tr.String())
	}
	if len(q.Where) > 0 {
		b.WriteString("\nWHERE ")
		for i, p := range q.Where {
			if i > 0 {
				b.WriteString("\n  AND ")
			}
			b.WriteString(p.String())
		}
	}
	if len(q.GroupBy) > 0 {
		b.WriteString("\nGROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString("\nORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.String())
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, "\nLIMIT %d", q.Limit)
	}
	return b.String()
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{Distinct: q.Distinct, Limit: q.Limit}
	c.Select = append([]SelectItem(nil), q.Select...)
	for _, tr := range q.From {
		nt := tr
		if tr.Subquery != nil {
			nt.Subquery = tr.Subquery.Clone()
		}
		c.From = append(c.From, nt)
	}
	c.Where = append([]Pred(nil), q.Where...)
	c.GroupBy = append([]Col(nil), q.GroupBy...)
	c.OrderBy = append([]OrderItem(nil), q.OrderBy...)
	return c
}

// Walk visits q and every derived-table subquery, depth-first.
func (q *Query) Walk(fn func(*Query)) {
	fn(q)
	for _, tr := range q.From {
		if tr.Subquery != nil {
			tr.Subquery.Walk(fn)
		}
	}
}
