// Package render turns sqlast queries into SQL text for real database
// dialects. The in-memory engine (internal/sqldb) parses the paper-shaped
// text that sqlast.Query.String produces; external engines do not — they
// differ in identifier quoting, placeholder style, string and float literal
// syntax, NULL ordering and the CONTAINS predicate, which is not SQL at all.
//
// One renderer handles every dialect, parameterized by a Dialect value
// (rather than one printer per dialect, which drifts): each divergence point
// — quoting, literals, placeholders, CONTAINS, ORDER BY null placement — is
// a small per-dialect switch inside a single recursive walk, so a new clause
// is rendered once and a new dialect is a handful of switch arms.
//
// The renderings are semantics-preserving with respect to the in-memory
// engine: for every query the translator generates, executing the rendered
// SQL on the target engine over the same data yields the same answer set as
// internal/sqldb (gated by the differential suites in internal/backend).
// Known caveat: CONTAINS on Postgres assumes a text column (all the
// translator emits); SQLite gets an exact typeof() guard.
package render

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Dialect selects the SQL flavor the renderer emits.
type Dialect int

// Supported dialects.
const (
	// SQLDB is the in-memory engine's native text: exactly
	// sqlast.Query.String(), the paper-shaped rendering sqldb parses back.
	SQLDB Dialect = iota
	// SQLite targets SQLite 3.30+ (NULLS FIRST/LAST ordering syntax).
	SQLite
	// Postgres targets PostgreSQL.
	Postgres
)

// String names the dialect.
func (d Dialect) String() string {
	switch d {
	case SQLDB:
		return "sqldb"
	case SQLite:
		return "sqlite"
	case Postgres:
		return "postgres"
	default:
		return fmt.Sprintf("Dialect(%d)", int(d))
	}
}

// ParseDialect resolves a dialect by name.
func ParseDialect(name string) (Dialect, error) {
	switch strings.ToLower(name) {
	case "sqldb":
		return SQLDB, nil
	case "sqlite", "sqlite3":
		return SQLite, nil
	case "postgres", "postgresql", "pg":
		return Postgres, nil
	default:
		return 0, fmt.Errorf("render: unknown dialect %q", name)
	}
}

// SQL renders the query for the dialect with every literal inlined (no
// placeholders) — the form the sqlite3 shell and golden tests consume.
func SQL(q *sqlast.Query, d Dialect) (string, error) {
	if d == SQLDB {
		return q.String(), nil
	}
	r := &renderer{d: d, inline: true}
	r.query(q)
	if r.err != nil {
		return "", r.err
	}
	return r.b.String(), nil
}

// Params renders the query with constant comparison values and CONTAINS
// needles lifted into placeholders (SQLite ?, Postgres $1..$n), returning
// the argument list in placeholder order. NULL constants stay inline: a
// bound NULL and a literal NULL behave identically in both dialects, and
// inline NULL keeps the statement's shape independent of the value.
func Params(q *sqlast.Query, d Dialect) (string, []any, error) {
	if d == SQLDB {
		return q.String(), nil, nil
	}
	r := &renderer{d: d}
	r.query(q)
	if r.err != nil {
		return "", nil, r.err
	}
	return r.b.String(), r.args, nil
}

// Literal renders one value as an inline SQL literal of the dialect.
// Strings quote by doubling embedded single quotes (Postgres escapes
// control characters
// through an E'...' string); floats always carry a decimal point or
// exponent so the engine types them REAL; NaN and infinities are
// unrepresentable and error.
func Literal(v relation.Value, d Dialect) (string, error) {
	if d == SQLDB {
		return relation.Literal(v), nil
	}
	r := &renderer{d: d, inline: true}
	r.literal(v)
	if r.err != nil {
		return "", r.err
	}
	return r.b.String(), nil
}

// Ident renders one identifier quoted for the dialect.
func Ident(name string, d Dialect) (string, error) {
	if d == SQLDB {
		return name, nil
	}
	if strings.ContainsRune(name, 0) {
		return "", fmt.Errorf("render: identifier %q contains a NUL byte", name)
	}
	return `"` + strings.ReplaceAll(name, `"`, `""`) + `"`, nil
}

// renderer is one rendering pass: it accumulates text, placeholder
// arguments, and the first error (rendering continues but the output is
// discarded once err is set).
type renderer struct {
	d      Dialect
	b      strings.Builder
	args   []any
	inline bool
	err    error
}

func (r *renderer) fail(format string, a ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("render: "+format, a...)
	}
}

func (r *renderer) ident(name string) {
	s, err := Ident(name, r.d)
	if err != nil {
		r.fail("%v", err)
		return
	}
	r.b.WriteString(s)
}

func (r *renderer) col(c sqlast.Col) {
	if c.Table != "" {
		r.ident(c.Table)
		r.b.WriteByte('.')
	}
	r.ident(c.Column)
}

// literal writes v inline.
func (r *renderer) literal(v relation.Value) {
	switch x := v.(type) {
	case nil:
		r.b.WriteString("NULL")
	case int64:
		r.b.WriteString(strconv.FormatInt(x, 10))
	case float64:
		r.float(x)
	case string:
		r.stringLit(x)
	default:
		r.fail("unsupported literal type %T", v)
	}
}

// float renders a float so the engine keeps it REAL-typed: the shortest
// round-tripping decimal form, forced to carry '.' or an exponent.
func (r *renderer) float(f float64) {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		r.fail("float literal %v is not representable in SQL", f)
		return
	}
	s := strconv.FormatFloat(f, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	r.b.WriteString(s)
}

// stringLit quotes s for the dialect. SQLite string literals may carry any
// byte except NUL raw, so doubling embedded quotes suffices; Postgres strings
// are the same, but control characters are routed through an E'...' escape
// string to survive every transport (psql, logs, goldens) unambiguously.
func (r *renderer) stringLit(s string) {
	if strings.ContainsRune(s, 0) {
		r.fail("string literal %q contains a NUL byte", s)
		return
	}
	if r.d == Postgres && hasControl(s) {
		r.b.WriteString("E'")
		for _, b := range []byte(s) {
			switch {
			case b == '\'':
				r.b.WriteString("''")
			case b == '\\':
				r.b.WriteString(`\\`)
			case b == '\n':
				r.b.WriteString(`\n`)
			case b == '\r':
				r.b.WriteString(`\r`)
			case b == '\t':
				r.b.WriteString(`\t`)
			case b < 0x20 || b == 0x7f:
				fmt.Fprintf(&r.b, `\x%02x`, b)
			default:
				r.b.WriteByte(b)
			}
		}
		r.b.WriteByte('\'')
		return
	}
	r.b.WriteByte('\'')
	r.b.WriteString(strings.ReplaceAll(s, "'", "''"))
	r.b.WriteByte('\'')
}

// value writes a constant: inline as a literal, or as the dialect's
// placeholder with the value appended to the argument list. NULL is always
// inline (see Params).
func (r *renderer) value(v relation.Value) {
	if r.inline || v == nil {
		r.literal(v)
		return
	}
	switch v.(type) {
	case int64, float64, string:
	default:
		r.fail("unsupported parameter type %T", v)
		return
	}
	r.args = append(r.args, v)
	switch r.d {
	case Postgres:
		r.b.WriteByte('$')
		r.b.WriteString(strconv.Itoa(len(r.args)))
	default:
		r.b.WriteByte('?')
	}
}

func (r *renderer) pred(p sqlast.Pred) {
	switch pp := p.(type) {
	case sqlast.JoinPred:
		r.col(pp.Left)
		r.b.WriteString(" = ")
		r.col(pp.Right)
	case sqlast.ColComparePred:
		r.col(pp.Left)
		r.b.WriteString(" " + string(pp.Op) + " ")
		r.col(pp.Right)
	case sqlast.ComparePred:
		r.col(pp.Col)
		r.b.WriteString(" " + string(pp.Op) + " ")
		r.value(pp.Value)
	case sqlast.ContainsPred:
		r.contains(pp)
	default:
		r.fail("unsupported predicate %T", p)
	}
}

// contains renders the paper's case-insensitive substring predicate. The
// in-memory engine matches only values whose dynamic type is string, so the
// SQLite form carries a typeof() guard reproducing that exactly; Postgres
// columns are statically typed, so the guard is unnecessary for the text
// columns the translator emits CONTAINS on (a CAST keeps non-text columns
// at least well-formed). Lowercasing is ASCII on both engines — matching
// relation.ContainsFold for the ASCII needles keyword queries produce.
func (r *renderer) contains(p sqlast.ContainsPred) {
	switch r.d {
	case SQLite:
		r.b.WriteString("(typeof(")
		r.col(p.Col)
		r.b.WriteString(") = 'text' AND instr(lower(")
		r.col(p.Col)
		r.b.WriteString("), lower(")
		r.value(p.Needle)
		r.b.WriteString(")) > 0)")
	case Postgres:
		r.b.WriteString("(POSITION(LOWER(")
		r.value(p.Needle)
		r.b.WriteString(") IN LOWER(CAST(")
		r.col(p.Col)
		r.b.WriteString(" AS TEXT))) > 0)")
	default:
		r.fail("CONTAINS has no rendering for dialect %s", r.d)
	}
}

func (r *renderer) expr(e sqlast.Expr) {
	switch ex := e.(type) {
	case sqlast.ColExpr:
		r.col(ex.Col)
	case sqlast.AggExpr:
		r.b.WriteString(string(ex.Func))
		r.b.WriteByte('(')
		if ex.Distinct {
			r.b.WriteString("DISTINCT ")
		}
		r.col(ex.Arg)
		r.b.WriteByte(')')
	default:
		r.fail("unsupported select expression %T", e)
	}
}

func (r *renderer) tableRef(tr sqlast.TableRef) {
	if tr.Subquery != nil {
		if tr.Alias == "" {
			// Postgres requires one, and an unaliased derived table cannot be
			// referenced anyway — the translator always names them.
			r.fail("derived table has no alias")
			return
		}
		r.b.WriteByte('(')
		r.query(tr.Subquery)
		r.b.WriteString(") AS ")
		r.ident(tr.Alias)
		return
	}
	r.ident(tr.Name)
	if tr.Alias != "" && !strings.EqualFold(tr.Alias, tr.Name) {
		r.b.WriteString(" AS ")
		r.ident(tr.Alias)
	}
}

func (r *renderer) query(q *sqlast.Query) {
	r.b.WriteString("SELECT ")
	if q.Distinct {
		r.b.WriteString("DISTINCT ")
	}
	if len(q.Select) == 0 {
		r.fail("query has an empty SELECT list")
		return
	}
	for i, it := range q.Select {
		if i > 0 {
			r.b.WriteString(", ")
		}
		r.expr(it.Expr)
		if it.Alias != "" {
			r.b.WriteString(" AS ")
			r.ident(it.Alias)
		}
	}
	r.b.WriteString(" FROM ")
	if len(q.From) == 0 {
		r.fail("query has an empty FROM list")
		return
	}
	for i, tr := range q.From {
		if i > 0 {
			r.b.WriteString(", ")
		}
		r.tableRef(tr)
	}
	if len(q.Where) > 0 {
		r.b.WriteString(" WHERE ")
		for i, p := range q.Where {
			if i > 0 {
				r.b.WriteString(" AND ")
			}
			r.pred(p)
		}
	}
	if len(q.GroupBy) > 0 {
		r.b.WriteString(" GROUP BY ")
		for i, c := range q.GroupBy {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.col(c)
		}
	}
	if len(q.OrderBy) > 0 {
		r.b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				r.b.WriteString(", ")
			}
			r.col(o.Col)
			// The in-memory engine's comparator puts NULL below every value
			// (first ascending, last descending); SQLite happens to agree and
			// Postgres does not, so both get it spelled out.
			if o.Desc {
				r.b.WriteString(" DESC NULLS LAST")
			} else {
				r.b.WriteString(" ASC NULLS FIRST")
			}
		}
	}
	if q.Limit > 0 {
		r.b.WriteString(" LIMIT ")
		r.b.WriteString(strconv.Itoa(q.Limit))
	}
}

// hasControl reports whether s contains a C0 control byte or DEL.
func hasControl(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] == 0x7f {
			return true
		}
	}
	return false
}
