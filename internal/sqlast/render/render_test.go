package render

import (
	"math"
	"strings"
	"testing"

	"kwagg/internal/sqlast"
)

// q1 is a query exercising every clause the renderer handles: aggregates
// with DISTINCT, aliases, a derived table, every predicate kind, GROUP BY,
// ORDER BY in both directions, and LIMIT.
func q1() *sqlast.Query {
	return &sqlast.Query{
		Select: []sqlast.SelectItem{
			{Expr: sqlast.ColExpr{Col: sqlast.Col{Table: "L", Column: "Name"}}},
			{Expr: sqlast.AggExpr{Func: sqlast.AggCount, Arg: sqlast.Col{Table: "D", Column: "Code"}, Distinct: true}, Alias: "n"},
			{Expr: sqlast.AggExpr{Func: sqlast.AggAvg, Arg: sqlast.Col{Table: "D", Column: "Score"}}, Alias: "avg_score"},
		},
		From: []sqlast.TableRef{
			{Name: "Lecturer", Alias: "L"},
			{Subquery: &sqlast.Query{
				Select: []sqlast.SelectItem{
					{Expr: sqlast.ColExpr{Col: sqlast.Col{Table: "C", Column: "Code"}}},
					{Expr: sqlast.ColExpr{Col: sqlast.Col{Table: "C", Column: "Score"}}},
					{Expr: sqlast.ColExpr{Col: sqlast.Col{Table: "C", Column: "LID"}}},
				},
				From:  []sqlast.TableRef{{Name: "Course", Alias: "C"}},
				Where: []sqlast.Pred{sqlast.ComparePred{Col: sqlast.Col{Table: "C", Column: "Score"}, Op: sqlast.OpGe, Value: float64(2)}},
			}, Alias: "D"},
		},
		Where: []sqlast.Pred{
			sqlast.JoinPred{Left: sqlast.Col{Table: "L", Column: "ID"}, Right: sqlast.Col{Table: "D", Column: "LID"}},
			sqlast.ComparePred{Col: sqlast.Col{Table: "L", Column: "Name"}, Op: sqlast.OpNe, Value: "nobody"},
			sqlast.ContainsPred{Col: sqlast.Col{Table: "L", Column: "Name"}, Needle: "an"},
			sqlast.ColComparePred{Left: sqlast.Col{Table: "D", Column: "Score"}, Op: sqlast.OpLt, Right: sqlast.Col{Table: "L", Column: "ID"}},
		},
		GroupBy: []sqlast.Col{{Table: "L", Column: "Name"}},
		OrderBy: []sqlast.OrderItem{
			{Col: sqlast.Col{Column: "n"}, Desc: true},
			{Col: sqlast.Col{Column: "Name"}},
		},
		Limit: 7,
	}
}

func TestSQLDBDialectIsNativeString(t *testing.T) {
	q := q1()
	got, err := SQL(q, SQLDB)
	if err != nil {
		t.Fatal(err)
	}
	if got != q.String() {
		t.Fatalf("SQLDB dialect diverged from Query.String():\n%s\n%s", got, q.String())
	}
}

func TestSQLiteRendering(t *testing.T) {
	got, err := SQL(q1(), SQLite)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`COUNT(DISTINCT "D"."Code") AS "n"`,
		`"Lecturer" AS "L"`, // base table aliased
		`) AS "D"`,          // derived table aliased
		`"L"."ID" = "D"."LID"`,
		`"L"."Name" <> 'nobody'`,
		`typeof("L"."Name") = 'text'`,
		`instr(lower("L"."Name"), lower('an')) > 0`,
		`"C"."Score" >= 2.0`, // float constant keeps its point
		`ORDER BY "n" DESC NULLS LAST, "Name" ASC NULLS FIRST`,
		`LIMIT 7`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("sqlite rendering missing %q:\n%s", want, got)
		}
	}
}

func TestPostgresRendering(t *testing.T) {
	got, err := SQL(q1(), Postgres)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`COUNT(DISTINCT "D"."Code") AS "n"`,
		`POSITION(LOWER('an') IN LOWER(CAST("L"."Name" AS TEXT))) > 0`,
		`"C"."Score" >= 2.0`,
		`DESC NULLS LAST`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("postgres rendering missing %q:\n%s", want, got)
		}
	}
}

func TestParamsPlaceholderStyles(t *testing.T) {
	q := q1()
	lite, liteArgs, err := Params(q, SQLite)
	if err != nil {
		t.Fatal(err)
	}
	pg, pgArgs, err := Params(q, Postgres)
	if err != nil {
		t.Fatal(err)
	}
	// Three bindable constants in tree order: the subquery's 2.0, 'nobody',
	// and the CONTAINS needle 'an'.
	wantArgs := []any{"nobody", "an", float64(2)}
	if len(liteArgs) != 3 || len(pgArgs) != 3 {
		t.Fatalf("got %d sqlite / %d postgres args, want 3", len(liteArgs), len(pgArgs))
	}
	for _, args := range [][]any{liteArgs, pgArgs} {
		seen := map[any]bool{}
		for _, a := range args {
			seen[a] = true
		}
		for _, w := range wantArgs {
			if !seen[w] {
				t.Errorf("args %v missing %v", args, w)
			}
		}
	}
	if strings.Count(lite, "?") != 3 {
		t.Errorf("sqlite params: want 3 '?', got:\n%s", lite)
	}
	for _, ph := range []string{"$1", "$2", "$3"} {
		if !strings.Contains(pg, ph) {
			t.Errorf("postgres params missing %s:\n%s", ph, pg)
		}
	}
	if strings.Contains(lite, "'nobody'") || strings.Contains(pg, "'nobody'") {
		t.Error("bindable constant was inlined in Params output")
	}
}

func TestParamsNULLStaysInline(t *testing.T) {
	q := &sqlast.Query{
		Select: []sqlast.SelectItem{{Expr: sqlast.ColExpr{Col: sqlast.Col{Table: "T", Column: "A"}}}},
		From:   []sqlast.TableRef{{Name: "T"}},
		Where:  []sqlast.Pred{sqlast.ComparePred{Col: sqlast.Col{Table: "T", Column: "A"}, Op: sqlast.OpEq, Value: nil}},
	}
	text, args, err := Params(q, Postgres)
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 0 {
		t.Fatalf("NULL was bound as a parameter: %v", args)
	}
	if !strings.Contains(text, "= NULL") {
		t.Fatalf("NULL not inline:\n%s", text)
	}
}

func TestLiteralEscaping(t *testing.T) {
	cases := []struct {
		name string
		in   any
		d    Dialect
		want string
	}{
		{"quote-sqlite", "O'Brien", SQLite, "'O''Brien'"},
		{"quote-postgres", "O'Brien", Postgres, "'O''Brien'"},
		{"doubled-quotes", "a''b", SQLite, "'a''''b'"},
		{"unit-sep-sqlite", "a\x1fb", SQLite, "'a\x1fb'"},
		{"unit-sep-postgres", "a\x1fb", Postgres, `E'a\x1fb'`},
		{"newline-sqlite", "a\nb", SQLite, "'a\nb'"},
		{"newline-postgres", "a\nb", Postgres, `E'a\nb'`},
		{"backslash-postgres-plain", `a\b`, Postgres, `'a\b'`},
		{"backslash-postgres-escaped", "a\\\nb", Postgres, `E'a\\\nb'`},
		{"literal-NULL-string", "NULL", SQLite, "'NULL'"},
		{"null-value", nil, SQLite, "NULL"},
		{"int", int64(-42), Postgres, "-42"},
		{"float-integral", float64(3), SQLite, "3.0"},
		{"float-exp", 1e21, SQLite, "1e+21"},
		{"float-neg", -2.5, Postgres, "-2.5"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Literal(tc.in, tc.d)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("Literal(%q, %s) = %s, want %s", tc.in, tc.d, got, tc.want)
			}
		})
	}
}

func TestLiteralErrors(t *testing.T) {
	for _, v := range []any{"nul\x00byte", math.NaN(), math.Inf(1)} {
		if _, err := Literal(v, SQLite); err == nil {
			t.Errorf("Literal(%v) succeeded, want error", v)
		}
	}
}

func TestIdentEscaping(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Name", `"Name"`},
		{`we"ird`, `"we""ird"`},
		{"with space", `"with space"`},
		{"new\nline", "\"new\nline\""},
		{"SELECT", `"SELECT"`}, // keywords are just quoted identifiers
	}
	for _, tc := range cases {
		got, err := Ident(tc.in, SQLite)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("Ident(%q) = %s, want %s", tc.in, got, tc.want)
		}
	}
	if _, err := Ident("nul\x00", Postgres); err == nil {
		t.Error("Ident with NUL byte succeeded, want error")
	}
	if got, err := Ident("anything", SQLDB); err != nil || got != "anything" {
		t.Errorf("SQLDB Ident quoted: %q, %v", got, err)
	}
}

func TestRenderErrors(t *testing.T) {
	col := sqlast.Col{Table: "T", Column: "A"}
	sel := []sqlast.SelectItem{{Expr: sqlast.ColExpr{Col: col}}}
	cases := map[string]*sqlast.Query{
		"empty-select": {From: []sqlast.TableRef{{Name: "T"}}},
		"empty-from":   {Select: sel},
		"unaliased-derived": {
			Select: sel,
			From:   []sqlast.TableRef{{Subquery: &sqlast.Query{Select: sel, From: []sqlast.TableRef{{Name: "T"}}}}},
		},
		"nan-literal": {
			Select: sel,
			From:   []sqlast.TableRef{{Name: "T"}},
			Where:  []sqlast.Pred{sqlast.ComparePred{Col: col, Op: sqlast.OpEq, Value: math.NaN()}},
		},
	}
	for name, q := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := SQL(q, SQLite); err == nil {
				t.Error("SQL succeeded, want error")
			}
		})
	}
}

func TestParseDialect(t *testing.T) {
	for name, want := range map[string]Dialect{
		"sqldb": SQLDB, "sqlite": SQLite, "sqlite3": SQLite,
		"Postgres": Postgres, "pg": Postgres,
	} {
		got, err := ParseDialect(name)
		if err != nil || got != want {
			t.Errorf("ParseDialect(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseDialect("oracle"); err == nil {
		t.Error("ParseDialect(oracle) succeeded, want error")
	}
}
