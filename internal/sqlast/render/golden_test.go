// Per-dialect golden renderings: one representative interpretation per
// bundled dataset, rendered in every dialect (the engine's native String(),
// SQLite, Postgres) and pinned to committed files under testdata/. The same
// determinism, parallel-read-only and clone-isolation harness as
// internal/sqlast/golden_test.go guards the renderer: 100 repeated renders
// must be byte-identical, concurrent renders race-free, and mutating a
// Clone must not leak into the original's rendering.
//
// Regenerate the goldens with:
//
//	go test ./internal/sqlast/render/ -run Golden -update
package render_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"kwagg"
	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/experiments"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqlast/render"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenDialects orders the sections of each golden file.
var goldenDialects = []render.Dialect{render.SQLDB, render.SQLite, render.Postgres}

// representative returns the pinned interpretation for a dataset: the first
// interpretation of the first workload query — deterministic because both
// the workload list and Interpret ranking are.
func representative(t *testing.T, name string, build func() (*experiments.Setup, error)) (string, *sqlast.Query) {
	t.Helper()
	queries := kwagg.DatasetWorkloads()[name]
	if len(queries) == 0 {
		t.Fatalf("dataset %q has no workload", name)
	}
	s, err := build()
	if err != nil {
		t.Fatal(err)
	}
	ins, err := s.Ours.Interpret(queries[0], 0)
	if err != nil {
		t.Fatalf("%s: %v", queries[0], err)
	}
	if len(ins) == 0 {
		t.Fatalf("%s: no interpretations", queries[0])
	}
	return queries[0], ins[0].SQL
}

func goldenSetups() map[string]func() (*experiments.Setup, error) {
	return map[string]func() (*experiments.Setup, error){
		"university":   experiments.NewUniversity,
		"tpch":         func() (*experiments.Setup, error) { return experiments.NewTPCH(tpch.Small()) },
		"tpch-denorm":  func() (*experiments.Setup, error) { return experiments.NewTPCHUnnormalized(tpch.Small()) },
		"acmdl":        func() (*experiments.Setup, error) { return experiments.NewACMDL(acmdl.Small()) },
		"acmdl-denorm": func() (*experiments.Setup, error) { return experiments.NewACMDLUnnormalized(acmdl.Small()) },
	}
}

// renderAll produces the golden file body: the keyword query, then one
// section per dialect.
func renderAll(t *testing.T, kw string, q *sqlast.Query) string {
	t.Helper()
	var b strings.Builder
	b.WriteString("-- keyword query: " + kw + "\n")
	for _, d := range goldenDialects {
		sql, err := render.SQL(q, d)
		if err != nil {
			t.Fatalf("render %s: %v", d, err)
		}
		b.WriteString("-- dialect: " + d.String() + "\n" + sql + "\n")
	}
	return b.String()
}

func TestDialectGoldens(t *testing.T) {
	for name, build := range goldenSetups() {
		name, build := name, build
		t.Run(name, func(t *testing.T) {
			kw, q := representative(t, name, build)
			got := renderAll(t, kw, q)
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if got != string(want) {
				t.Errorf("rendering diverged from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
			}

			// Determinism: 100 repeated renders are byte-identical.
			for i := 0; i < 100; i++ {
				if renderAll(t, kw, q) != got {
					t.Fatalf("render %d diverged from the first render", i)
				}
			}
		})
	}
}

// TestDialectGoldenParallel renders one shared query from many goroutines in
// every dialect; under -race this proves the renderer is read-only.
func TestDialectGoldenParallel(t *testing.T) {
	kw, q := representative(t, "university", experiments.NewUniversity)
	golden := renderAll(t, kw, q)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var b strings.Builder
				b.WriteString("-- keyword query: " + kw + "\n")
				for _, d := range goldenDialects {
					sql, err := render.SQL(q, d)
					if err != nil {
						errs <- err.Error()
						return
					}
					b.WriteString("-- dialect: " + d.String() + "\n" + sql + "\n")
				}
				if b.String() != golden {
					errs <- "concurrent render diverged from the golden"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestDialectGoldenClone: a Clone renders identically in every dialect, and
// mutating the clone leaves the original's renderings untouched.
func TestDialectGoldenClone(t *testing.T) {
	kw, q := representative(t, "university", experiments.NewUniversity)
	golden := renderAll(t, kw, q)
	c := q.Clone()
	if renderAll(t, kw, c) != golden {
		t.Fatal("Clone() renders differently from the original")
	}
	c.From[0].Alias = "X9"
	c.Select[0].Alias = "mangled"
	if renderAll(t, kw, q) != golden {
		t.Fatal("mutating the clone changed the original's rendering")
	}
}
