package sqlast

import (
	"sync"
	"testing"

	"kwagg/internal/relation"
)

// goldenQuery exercises every rendering feature at once: DISTINCT, a derived
// table, an aliased DISTINCT aggregate, join / compare / contains predicates,
// GROUP BY, ORDER BY DESC and LIMIT.
func goldenQuery() *Query {
	inner := &Query{
		Distinct: true,
		Select: []SelectItem{
			{Expr: ColExpr{Col{Column: "Sname"}}},
			{Expr: ColExpr{Col{Column: "Cid"}}},
		},
		From:  []TableRef{{Name: "Student"}},
		Where: []Pred{ContainsPred{Col: Col{Column: "Sname"}, Needle: "Green"}},
	}
	return &Query{
		Select: []SelectItem{
			{Expr: ColExpr{Col{Table: "D1", Column: "Sname"}}},
			{Expr: AggExpr{Func: AggCount, Arg: Col{Table: "R2", Column: "Title"}, Distinct: true}, Alias: "numTitle"},
		},
		From: []TableRef{
			{Subquery: inner, Alias: "D1"},
			{Name: "Course", Alias: "R2"},
		},
		Where: []Pred{
			JoinPred{Left: Col{Table: "D1", Column: "Cid"}, Right: Col{Table: "R2", Column: "Cid"}},
			ComparePred{Col: Col{Table: "R2", Column: "Credit"}, Op: OpGe, Value: relation.Float(3)},
		},
		GroupBy: []Col{{Table: "D1", Column: "Sname"}},
		OrderBy: []OrderItem{{Col: Col{Column: "numTitle"}, Desc: true}},
		Limit:   10,
	}
}

const goldenString = `SELECT D1.Sname, COUNT(DISTINCT R2.Title) AS numTitle FROM (SELECT DISTINCT Sname, Cid FROM Student WHERE Sname CONTAINS 'Green') D1, Course R2 WHERE D1.Cid=R2.Cid AND R2.Credit >= 3 GROUP BY D1.Sname ORDER BY numTitle DESC LIMIT 10`

const goldenPretty = `SELECT D1.Sname, COUNT(DISTINCT R2.Title) AS numTitle
FROM (SELECT DISTINCT Sname, Cid FROM Student WHERE Sname CONTAINS 'Green') D1,
     Course R2
WHERE D1.Cid=R2.Cid
  AND R2.Credit >= 3
GROUP BY D1.Sname
ORDER BY numTitle DESC
LIMIT 10`

// TestRenderGolden pins String and Pretty to committed goldens and asserts
// byte-identical output over 100 repeated renders — the determinism the
// query caches, replay suites and EXPERIMENTS.md goldens all build on
// (maporder exists to keep map iteration from ever leaking in here).
func TestRenderGolden(t *testing.T) {
	q := goldenQuery()
	if got := q.String(); got != goldenString {
		t.Fatalf("String() =\n%s\nwant\n%s", got, goldenString)
	}
	if got := q.Pretty(); got != goldenPretty {
		t.Fatalf("Pretty() =\n%s\nwant\n%s", got, goldenPretty)
	}
	for i := 0; i < 100; i++ {
		if q.String() != goldenString || q.Pretty() != goldenPretty {
			t.Fatalf("render %d diverged from the first render", i)
		}
	}
}

// TestRenderGoldenParallel renders the same shared query from many
// goroutines; under -race this also proves rendering is read-only.
func TestRenderGoldenParallel(t *testing.T) {
	q := goldenQuery()
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if q.String() != goldenString || q.Pretty() != goldenPretty {
					errs <- "concurrent render diverged from the golden"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestRenderGoldenClone: a Clone renders identically and mutating the clone
// leaves the original's rendering untouched (deep copy, not aliasing).
func TestRenderGoldenClone(t *testing.T) {
	q := goldenQuery()
	c := q.Clone()
	if c.String() != goldenString {
		t.Fatalf("Clone().String() =\n%s\nwant\n%s", c.String(), goldenString)
	}
	c.From[0].Alias = "X9"
	c.GroupBy[0].Column = "Mangled"
	if got := q.String(); got != goldenString {
		t.Fatalf("mutating the clone changed the original:\n%s", got)
	}
}
