package sqlast

import (
	"strings"
	"testing"

	"kwagg/internal/relation"
)

func example5Query() *Query {
	// The SQL of the paper's Example 5.
	return &Query{
		Select: []SelectItem{
			{Expr: ColExpr{Col: Col{Table: "S1", Column: "Sid"}}},
			{Expr: AggExpr{Func: AggCount, Arg: Col{Table: "C", Column: "Code"}}, Alias: "numCode"},
		},
		From: []TableRef{
			{Name: "Course", Alias: "C"},
			{Name: "Enrol", Alias: "E1"},
			{Name: "Student", Alias: "S1"},
			{Name: "Enrol", Alias: "E2"},
			{Name: "Student", Alias: "S2"},
		},
		Where: []Pred{
			JoinPred{Left: Col{Table: "C", Column: "Code"}, Right: Col{Table: "E1", Column: "Code"}},
			JoinPred{Left: Col{Table: "C", Column: "Code"}, Right: Col{Table: "E2", Column: "Code"}},
			JoinPred{Left: Col{Table: "S1", Column: "Sid"}, Right: Col{Table: "E1", Column: "Sid"}},
			ContainsPred{Col: Col{Table: "S1", Column: "Sname"}, Needle: "Green"},
			JoinPred{Left: Col{Table: "S2", Column: "Sid"}, Right: Col{Table: "E2", Column: "Sid"}},
			ContainsPred{Col: Col{Table: "S2", Column: "Sname"}, Needle: "George"},
		},
		GroupBy: []Col{{Table: "S1", Column: "Sid"}},
	}
}

func TestIsAggFunc(t *testing.T) {
	for in, want := range map[string]AggFunc{
		"count": AggCount, "COUNT": AggCount, "Sum": AggSum,
		"avg": AggAvg, "min": AggMin, "MAX": AggMax,
	} {
		fn, ok := IsAggFunc(in)
		if !ok || fn != want {
			t.Errorf("IsAggFunc(%q) = %v, %v", in, fn, ok)
		}
	}
	if _, ok := IsAggFunc("median"); ok {
		t.Error("median is not supported")
	}
	if _, ok := IsAggFunc("groupby"); ok {
		t.Error("GROUPBY is not an aggregate function")
	}
}

func TestQueryString(t *testing.T) {
	got := example5Query().String()
	want := "SELECT S1.Sid, COUNT(C.Code) AS numCode " +
		"FROM Course C, Enrol E1, Student S1, Enrol E2, Student S2 " +
		"WHERE C.Code=E1.Code AND C.Code=E2.Code AND S1.Sid=E1.Sid " +
		"AND S1.Sname CONTAINS 'Green' AND S2.Sid=E2.Sid AND S2.Sname CONTAINS 'George' " +
		"GROUP BY S1.Sid"
	if got != want {
		t.Errorf("String:\n got %s\nwant %s", got, want)
	}
}

func TestPrettyHasClausesOnLines(t *testing.T) {
	p := example5Query().Pretty()
	for _, frag := range []string{"SELECT ", "\nFROM ", "\nWHERE ", "\nGROUP BY "} {
		if !strings.Contains(p, frag) {
			t.Errorf("Pretty missing %q:\n%s", frag, p)
		}
	}
}

func TestSubqueryRendering(t *testing.T) {
	q := &Query{
		Select: []SelectItem{{Expr: AggExpr{Func: AggCount, Arg: Col{Table: "L", Column: "Lid"}}, Alias: "numLid"}},
		From: []TableRef{
			{Name: "Lecturer", Alias: "L"},
			{Subquery: &Query{
				Distinct: true,
				Select: []SelectItem{
					{Expr: ColExpr{Col: Col{Column: "Lid"}}},
					{Expr: ColExpr{Col: Col{Column: "Code"}}},
				},
				From: []TableRef{{Name: "Teach", Alias: "Teach"}},
			}, Alias: "T"},
		},
		Where: []Pred{JoinPred{Left: Col{Table: "T", Column: "Lid"}, Right: Col{Table: "L", Column: "Lid"}}},
	}
	got := q.String()
	want := "SELECT COUNT(L.Lid) AS numLid FROM Lecturer L, " +
		"(SELECT DISTINCT Lid, Code FROM Teach) T WHERE T.Lid=L.Lid"
	if got != want {
		t.Errorf("subquery rendering:\n got %s\nwant %s", got, want)
	}
}

func TestTableRefSelfAlias(t *testing.T) {
	tr := TableRef{Name: "Teach", Alias: "Teach"}
	if tr.String() != "Teach" {
		t.Errorf("alias equal to name should be elided: %q", tr.String())
	}
	tr = TableRef{Name: "Teach", Alias: "T"}
	if tr.String() != "Teach T" {
		t.Errorf("distinct alias rendered: %q", tr.String())
	}
}

func TestPredStrings(t *testing.T) {
	if got := (ComparePred{Col: Col{Table: "S", Column: "Age"}, Op: OpGe, Value: relation.Int(21)}).String(); got != "S.Age >= 21" {
		t.Errorf("ComparePred: %q", got)
	}
	if got := (ContainsPred{Col: Col{Column: "Sname"}, Needle: "O'Brien"}).String(); got != "Sname CONTAINS 'O''Brien'" {
		t.Errorf("ContainsPred escaping: %q", got)
	}
	if got := (AggExpr{Func: AggCount, Arg: Col{Table: "T", Column: "x"}, Distinct: true}).String(); got != "COUNT(DISTINCT T.x)" {
		t.Errorf("distinct aggregate: %q", got)
	}
}

func TestOrderByRendering(t *testing.T) {
	q := &Query{
		Select:  []SelectItem{{Expr: ColExpr{Col: Col{Column: "a"}}}},
		From:    []TableRef{{Name: "T", Alias: "T"}},
		OrderBy: []OrderItem{{Col: Col{Column: "a"}, Desc: true}, {Col: Col{Column: "b"}}},
	}
	if got := q.String(); got != "SELECT a FROM T ORDER BY a DESC, b" {
		t.Errorf("order by: %q", got)
	}
}

func TestCloneDeep(t *testing.T) {
	q := example5Query()
	q.From = append(q.From, TableRef{Subquery: &Query{
		Select: []SelectItem{{Expr: ColExpr{Col: Col{Column: "x"}}}},
		From:   []TableRef{{Name: "T", Alias: "T"}},
	}, Alias: "Sub"})
	c := q.Clone()
	c.Select[0] = SelectItem{Expr: ColExpr{Col: Col{Column: "changed"}}}
	c.From[0].Alias = "changed"
	c.From[len(c.From)-1].Subquery.Select[0] = SelectItem{Expr: ColExpr{Col: Col{Column: "changed"}}}
	c.GroupBy[0] = Col{Column: "changed"}
	if q.Select[0].Expr.String() == "changed" || q.From[0].Alias == "changed" ||
		q.From[len(q.From)-1].Subquery.Select[0].Expr.String() == "changed" ||
		q.GroupBy[0].Column == "changed" {
		t.Error("Clone must not share mutable state")
	}
}

func TestWalkVisitsSubqueries(t *testing.T) {
	inner := &Query{Select: []SelectItem{{Expr: ColExpr{Col: Col{Column: "x"}}}}, From: []TableRef{{Name: "T", Alias: "T"}}}
	outer := &Query{
		Select: []SelectItem{{Expr: ColExpr{Col: Col{Column: "x"}}}},
		From:   []TableRef{{Subquery: inner, Alias: "R"}},
	}
	n := 0
	outer.Walk(func(*Query) { n++ })
	if n != 2 {
		t.Errorf("Walk should visit both levels, visited %d", n)
	}
}
