// Package orm builds the Object-Relationship-Mixed (ORM) schema graph of
// Section 2.1. The graph captures the Object-Relationship-Attribute (ORA)
// semantics of a relational schema: each node bundles one object,
// relationship or mixed relation together with its component relations, and
// two nodes are connected when a foreign key - key reference exists between
// their relations. The graph is the backbone of query-pattern generation,
// the duplicate-detection rule of Section 3.1.3, and the normalized-view
// pipeline of Section 4.
package orm

import (
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/relation"
)

// NodeType classifies a relation per the taxonomy of [16] (see Section 2.1).
type NodeType int

// Relation classifications.
const (
	// Object relations hold the single-valued attributes of an object class.
	Object NodeType = iota
	// Relationship relations hold the single-valued attributes of a
	// relationship type; their key is composed of the participants' keys.
	Relationship
	// Mixed relations hold an object class together with the many-to-one
	// relationships it participates in (foreign keys outside the key).
	Mixed
	// Component relations hold a multivalued attribute of an object class or
	// relationship type; they attach to their owner's node.
	Component
)

// String names the node type as in the paper's legends.
func (t NodeType) String() string {
	switch t {
	case Object:
		return "object"
	case Relationship:
		return "relationship"
	case Mixed:
		return "mixed"
	case Component:
		return "component"
	default:
		return fmt.Sprintf("NodeType(%d)", int(t))
	}
}

// Classify determines the ORM type of schema s.
//
// The rules follow [16]: a relation whose key is wholly composed of two or
// more foreign keys is a relationship relation; a relation with exactly one
// foreign key that is a proper subset of its key is a component relation
// (the remainder of the key is the multivalued attribute); a relation with
// its own key and at least one foreign key is a mixed relation; anything
// else is an object relation.
func Classify(s *relation.Schema) NodeType {
	if len(s.ForeignKeys) >= 2 {
		inKey := 0
		var covered []string
		for _, fk := range s.ForeignKeys {
			if relation.SubsetAttrSet(fk.Attrs, s.PrimaryKey) {
				inKey++
				covered = append(covered, fk.Attrs...)
			}
		}
		if inKey >= 2 && relation.SubsetAttrSet(s.PrimaryKey, covered) {
			return Relationship
		}
	}
	if len(s.ForeignKeys) == 1 {
		fk := s.ForeignKeys[0]
		if relation.SubsetAttrSet(fk.Attrs, s.PrimaryKey) && !relation.SameAttrSet(fk.Attrs, s.PrimaryKey) &&
			len(fk.Attrs) < len(s.PrimaryKey) {
			return Component
		}
	}
	if len(s.ForeignKeys) >= 1 {
		return Mixed
	}
	return Object
}

// Node is one vertex of the ORM schema graph: an object, relationship or
// mixed relation plus the component relations attached to it.
type Node struct {
	Name       string
	Type       NodeType
	Relation   *relation.Schema
	Components []*relation.Schema
}

// HasAttr reports whether name is an attribute of the node's relation or of
// one of its component relations.
func (n *Node) HasAttr(name string) bool {
	if n.Relation.HasAttr(name) {
		return true
	}
	for _, c := range n.Components {
		if c.HasAttr(name) {
			return true
		}
	}
	return false
}

// ComponentWithAttr returns the component relation holding the attribute, or
// nil when the attribute belongs to the node's own relation (or is unknown).
func (n *Node) ComponentWithAttr(name string) *relation.Schema {
	if n.Relation.HasAttr(name) {
		return nil
	}
	for _, c := range n.Components {
		if c.HasAttr(name) {
			return c
		}
	}
	return nil
}

// Participant is one object/mixed node referenced by a relationship or mixed
// relation, together with the foreign-key attributes realising the
// reference.
type Participant struct {
	Node     string   // name of the referenced node
	FKAttrs  []string // attributes in the referencing relation
	RefAttrs []string // key attributes in the referenced relation
}

// Graph is the ORM schema graph.
type Graph struct {
	nodes   map[string]*Node // lower(node name) -> node
	order   []string
	ofRel   map[string]string           // lower(relation name) -> node name
	adj     map[string][]string         // node name -> sorted neighbor names
	parts   map[string][]Participant    // node name -> referenced participants
	schemas map[string]*relation.Schema // lower(relation name) -> schema
}

// Build constructs the ORM schema graph for the given schemas.
func Build(schemas []*relation.Schema) (*Graph, error) {
	g := &Graph{
		nodes:   make(map[string]*Node),
		ofRel:   make(map[string]string),
		adj:     make(map[string][]string),
		parts:   make(map[string][]Participant),
		schemas: make(map[string]*relation.Schema),
	}
	for _, s := range schemas {
		g.schemas[strings.ToLower(s.Name)] = s
	}
	// First pass: create nodes for non-component relations.
	for _, s := range schemas {
		t := Classify(s)
		if t == Component {
			continue
		}
		n := &Node{Name: s.Name, Type: t, Relation: s}
		key := strings.ToLower(s.Name)
		g.nodes[key] = n
		g.order = append(g.order, key)
		g.ofRel[key] = s.Name
	}
	// Second pass: attach component relations to their owners.
	for _, s := range schemas {
		if Classify(s) != Component {
			continue
		}
		owner := s.ForeignKeys[0].RefRelation
		n := g.nodes[strings.ToLower(owner)]
		if n == nil {
			return nil, fmt.Errorf("orm: component relation %s references unknown owner %s", s.Name, owner)
		}
		n.Components = append(n.Components, s)
		g.ofRel[strings.ToLower(s.Name)] = n.Name
	}
	// Third pass: edges and participants from foreign keys.
	edge := make(map[string]map[string]bool)
	addEdge := func(a, b string) {
		if a == b {
			return
		}
		if edge[a] == nil {
			edge[a] = make(map[string]bool)
		}
		if edge[b] == nil {
			edge[b] = make(map[string]bool)
		}
		edge[a][b] = true
		edge[b][a] = true
	}
	for _, s := range schemas {
		fromNode := g.ofRel[strings.ToLower(s.Name)]
		if fromNode == "" {
			continue
		}
		if Classify(s) == Component {
			continue // component-owner edges are internal to the node
		}
		for _, fk := range s.ForeignKeys {
			toNode := g.ofRel[strings.ToLower(fk.RefRelation)]
			if toNode == "" {
				return nil, fmt.Errorf("orm: %s references unknown relation %s", s.Name, fk.RefRelation)
			}
			addEdge(fromNode, toNode)
			g.parts[fromNode] = append(g.parts[fromNode], Participant{
				Node:     toNode,
				FKAttrs:  append([]string(nil), fk.Attrs...),
				RefAttrs: append([]string(nil), fk.RefAttrs...),
			})
		}
	}
	for a, m := range edge {
		var ns []string
		for b := range m {
			ns = append(ns, b)
		}
		sort.Strings(ns)
		g.adj[a] = ns
	}
	return g, nil
}

// Node returns the node with the given name (case-insensitive), or nil.
func (g *Graph) Node(name string) *Node { return g.nodes[strings.ToLower(name)] }

// NodeOfRelation returns the node owning the named relation (either as its
// primary relation or as an attached component), or nil.
func (g *Graph) NodeOfRelation(relName string) *Node {
	n, ok := g.ofRel[strings.ToLower(relName)]
	if !ok {
		return nil
	}
	return g.nodes[strings.ToLower(n)]
}

// Nodes returns all nodes in deterministic (schema declaration) order.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, len(g.order))
	for i, k := range g.order {
		out[i] = g.nodes[k]
	}
	return out
}

// Neighbors returns the names of the nodes adjacent to name, sorted.
func (g *Graph) Neighbors(name string) []string {
	n := g.Node(name)
	if n == nil {
		return nil
	}
	return g.adj[n.Name]
}

// Participants returns the object/mixed nodes referenced by the named
// relationship or mixed node, in foreign-key declaration order.
func (g *Graph) Participants(name string) []Participant {
	n := g.Node(name)
	if n == nil {
		return nil
	}
	return g.parts[n.Name]
}

// ParticipantOf returns the foreign key inside relationship/mixed node 'from'
// that references node 'to', or false when none exists.
func (g *Graph) ParticipantOf(from, to string) (Participant, bool) {
	for _, p := range g.Participants(from) {
		if strings.EqualFold(p.Node, to) {
			return p, true
		}
	}
	return Participant{}, false
}

// Path returns the node names of a shortest path between two nodes,
// including both endpoints, or nil when disconnected. Ties break towards
// lexicographically smaller neighbor names, making patterns deterministic.
func (g *Graph) Path(from, to string) []string {
	src, dst := g.Node(from), g.Node(to)
	if src == nil || dst == nil {
		return nil
	}
	if src.Name == dst.Name {
		return []string{src.Name}
	}
	prev := map[string]string{src.Name: src.Name}
	queue := []string{src.Name}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[cur] {
			if _, seen := prev[nb]; seen {
				continue
			}
			prev[nb] = cur
			if nb == dst.Name {
				var path []string
				for at := nb; at != src.Name; at = prev[at] {
					path = append(path, at)
				}
				path = append(path, src.Name)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, nb)
		}
	}
	return nil
}

// Distance returns the number of edges on a shortest path between the nodes,
// or -1 when disconnected.
func (g *Graph) Distance(from, to string) int {
	p := g.Path(from, to)
	if p == nil {
		return -1
	}
	return len(p) - 1
}

// JoinOn returns the attribute pairs that equate when joining the relations
// of two adjacent nodes: pairs[i] = [attrInA, attrInB]. It scans foreign
// keys in both directions.
func (g *Graph) JoinOn(a, b string) ([][2]string, error) {
	na, nb := g.Node(a), g.Node(b)
	if na == nil || nb == nil {
		return nil, fmt.Errorf("orm: unknown node in join %s-%s", a, b)
	}
	if p, ok := g.ParticipantOf(na.Name, nb.Name); ok {
		out := make([][2]string, len(p.FKAttrs))
		for i := range p.FKAttrs {
			out[i] = [2]string{p.FKAttrs[i], p.RefAttrs[i]}
		}
		return out, nil
	}
	if p, ok := g.ParticipantOf(nb.Name, na.Name); ok {
		out := make([][2]string, len(p.FKAttrs))
		for i := range p.FKAttrs {
			out[i] = [2]string{p.RefAttrs[i], p.FKAttrs[i]}
		}
		return out, nil
	}
	return nil, fmt.Errorf("orm: nodes %s and %s are not adjacent", a, b)
}

// Dot renders the graph in Graphviz DOT form, used by the CLI to visualise
// Figure 3 / Figure 9 style graphs.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("graph ORM {\n")
	for _, n := range g.Nodes() {
		shape := "box"
		switch n.Type {
		case Relationship:
			shape = "diamond"
		case Mixed:
			shape = "hexagon"
		}
		fmt.Fprintf(&b, "  %s [shape=%s,label=\"%s (%s)\"];\n", n.Name, shape, n.Name, n.Type)
	}
	seen := make(map[string]bool)
	for _, n := range g.Nodes() {
		for _, nb := range g.adj[n.Name] {
			key := n.Name + "--" + nb
			rev := nb + "--" + n.Name
			if seen[key] || seen[rev] {
				continue
			}
			seen[key] = true
			fmt.Fprintf(&b, "  %s -- %s;\n", n.Name, nb)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
