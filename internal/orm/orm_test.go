package orm

import (
	"reflect"
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

func uniGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := Build(university.New().Schemas())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestClassifyUniversity checks the classification reported for Figure 1:
// Student, Course, Faculty, Textbook are object relations; Enrol and Teach
// are relationship relations; Lecturer and Department are mixed.
func TestClassifyUniversity(t *testing.T) {
	want := map[string]NodeType{
		"Student": Object, "Course": Object, "Faculty": Object, "Textbook": Object,
		"Enrol": Relationship, "Teach": Relationship,
		"Lecturer": Mixed, "Department": Mixed,
	}
	for _, s := range university.New().Schemas() {
		if got := Classify(s); got != want[s.Name] {
			t.Errorf("Classify(%s) = %v, want %v", s.Name, got, want[s.Name])
		}
	}
}

func TestClassifyComponent(t *testing.T) {
	// A multivalued attribute relation: key = owner key + attribute.
	s := relation.NewSchema("CourseTag", "Code", "Tag").
		Key("Code", "Tag").
		Ref([]string{"Code"}, "Course")
	if got := Classify(s); got != Component {
		t.Errorf("Classify(CourseTag) = %v, want component", got)
	}
}

func TestClassifyRelationshipNeedsKeyCoverage(t *testing.T) {
	// Two FKs that do not cover the key: not a relationship relation.
	s := relation.NewSchema("R", "id", "a", "b").
		Key("id").
		Ref([]string{"a"}, "A").
		Ref([]string{"b"}, "B")
	if got := Classify(s); got != Mixed {
		t.Errorf("Classify = %v, want mixed", got)
	}
}

func TestGraphStructureFigure3(t *testing.T) {
	g := uniGraph(t)
	wantAdj := map[string][]string{
		"Student":    {"Enrol"},
		"Enrol":      {"Course", "Student"},
		"Course":     {"Enrol", "Teach"},
		"Teach":      {"Course", "Lecturer", "Textbook"},
		"Textbook":   {"Teach"},
		"Lecturer":   {"Department", "Teach"},
		"Department": {"Faculty", "Lecturer"},
		"Faculty":    {"Department"},
	}
	for node, want := range wantAdj {
		if got := g.Neighbors(node); !reflect.DeepEqual(got, want) {
			t.Errorf("Neighbors(%s) = %v, want %v", node, got, want)
		}
	}
}

func TestComponentAttachment(t *testing.T) {
	schemas := university.New().Schemas()
	schemas = append(schemas, relation.NewSchema("CourseTag", "Code", "Tag").
		Key("Code", "Tag").Ref([]string{"Code"}, "Course"))
	g, err := Build(schemas)
	if err != nil {
		t.Fatal(err)
	}
	if g.Node("CourseTag") != nil {
		t.Error("component relations must not become their own node")
	}
	n := g.NodeOfRelation("CourseTag")
	if n == nil || n.Name != "Course" {
		t.Fatalf("component should attach to Course, got %v", n)
	}
	if !n.HasAttr("Tag") {
		t.Error("owner node should expose the component attribute")
	}
	if c := n.ComponentWithAttr("Tag"); c == nil || c.Name != "CourseTag" {
		t.Error("ComponentWithAttr should find the component relation")
	}
	if c := n.ComponentWithAttr("Title"); c != nil {
		t.Error("own attributes are not component attributes")
	}
}

func TestComponentUnknownOwner(t *testing.T) {
	_, err := Build([]*relation.Schema{
		relation.NewSchema("Orphan", "X", "Y").Key("X", "Y").Ref([]string{"X"}, "Missing"),
	})
	if err == nil {
		t.Error("component with unknown owner should fail")
	}
}

func TestParticipants(t *testing.T) {
	g := uniGraph(t)
	ps := g.Participants("Teach")
	if len(ps) != 3 {
		t.Fatalf("Teach has 3 participants, got %v", ps)
	}
	names := []string{ps[0].Node, ps[1].Node, ps[2].Node}
	if !reflect.DeepEqual(names, []string{"Course", "Lecturer", "Textbook"}) {
		t.Errorf("participants: %v", names)
	}
	if p, ok := g.ParticipantOf("Enrol", "Student"); !ok || p.FKAttrs[0] != "Sid" {
		t.Errorf("ParticipantOf(Enrol, Student): %v %v", p, ok)
	}
	if _, ok := g.ParticipantOf("Student", "Enrol"); ok {
		t.Error("objects do not reference relationships")
	}
}

func TestReferences(t *testing.T) {
	g := uniGraph(t)
	if g.References("Enrol", "Student") != 1 {
		t.Error("Enrol references Student once")
	}
	if g.References("Student", "Enrol") != 0 {
		t.Error("Student does not reference Enrol")
	}
}

func TestPathAndDistance(t *testing.T) {
	g := uniGraph(t)
	if got := g.Path("Student", "Course"); !reflect.DeepEqual(got, []string{"Student", "Enrol", "Course"}) {
		t.Errorf("Path(Student, Course) = %v", got)
	}
	if d := g.Distance("Student", "Textbook"); d != 4 {
		t.Errorf("Distance(Student, Textbook) = %d, want 4", d)
	}
	if d := g.Distance("Student", "Student"); d != 0 {
		t.Errorf("Distance(Student, Student) = %d, want 0", d)
	}
	if g.Path("Student", "NoSuch") != nil {
		t.Error("unknown node should have no path")
	}
}

// TestWalkPathSameClass checks Figure 4's shape: connecting two Student
// instances requires Student-Enrol-Course-Enrol-Student (two distinct Enrol
// instances), never Student-Enrol-Student, which would reuse Enrol's single
// Sid foreign key.
func TestWalkPathSameClass(t *testing.T) {
	g := uniGraph(t)
	got := g.WalkPath("Student", "Student")
	want := []string{"Student", "Enrol", "Course", "Enrol", "Student"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WalkPath(Student, Student) = %v, want %v", got, want)
	}
}

// TestWalkPathMixedSharing: two Lecturer instances can share one Department
// instance (the department is referenced, not referencing), so the minimal
// walk is Lecturer-Department-Lecturer.
func TestWalkPathMixedSharing(t *testing.T) {
	g := uniGraph(t)
	got := g.WalkPath("Lecturer", "Lecturer")
	want := []string{"Lecturer", "Department", "Lecturer"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WalkPath(Lecturer, Lecturer) = %v, want %v", got, want)
	}
}

func TestWalkPathDifferentClasses(t *testing.T) {
	g := uniGraph(t)
	got := g.WalkPath("Textbook", "Student")
	want := []string{"Textbook", "Teach", "Course", "Enrol", "Student"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WalkPath(Textbook, Student) = %v, want %v", got, want)
	}
	if d := g.WalkDistance("Textbook", "Student"); d != 4 {
		t.Errorf("WalkDistance = %d", d)
	}
}

func TestWalkPathDisconnected(t *testing.T) {
	g, err := Build([]*relation.Schema{
		relation.NewSchema("A", "a").Key("a"),
		relation.NewSchema("B", "b").Key("b"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.WalkPath("A", "B") != nil {
		t.Error("disconnected classes have no walk")
	}
	if g.WalkPath("A", "A") != nil {
		t.Error("an isolated class has no cycle walk")
	}
	if g.WalkDistance("A", "B") != -1 {
		t.Error("WalkDistance of disconnected should be -1")
	}
}

func TestJoinOn(t *testing.T) {
	g := uniGraph(t)
	pairs, err := g.JoinOn("Enrol", "Student")
	if err != nil || len(pairs) != 1 || pairs[0] != [2]string{"Sid", "Sid"} {
		t.Errorf("JoinOn(Enrol, Student) = %v, %v", pairs, err)
	}
	// Reverse direction flips the pair orientation.
	pairs, err = g.JoinOn("Student", "Enrol")
	if err != nil || pairs[0] != [2]string{"Sid", "Sid"} {
		t.Errorf("JoinOn(Student, Enrol) = %v, %v", pairs, err)
	}
	if _, err := g.JoinOn("Student", "Textbook"); err == nil {
		t.Error("non-adjacent nodes should fail")
	}
}

func TestNodeLookupCaseInsensitive(t *testing.T) {
	g := uniGraph(t)
	if g.Node("student") == nil || g.Node("STUDENT") == nil {
		t.Error("node lookup should be case-insensitive")
	}
	if g.NodeOfRelation("enrol") == nil {
		t.Error("relation lookup should be case-insensitive")
	}
}

func TestDot(t *testing.T) {
	dot := uniGraph(t).Dot()
	for _, frag := range []string{"graph ORM {", "Student", "-- Enrol;", "diamond", "hexagon"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("Dot output missing %q", frag)
		}
	}
}

func TestNodeTypeString(t *testing.T) {
	for ty, want := range map[NodeType]string{
		Object: "object", Relationship: "relationship", Mixed: "mixed", Component: "component",
	} {
		if ty.String() != want {
			t.Errorf("NodeType(%d) = %q", ty, ty.String())
		}
	}
}

func TestComponents(t *testing.T) {
	g := uniGraph(t)
	comps := g.Components()
	if len(comps) != 1 || len(comps[0]) != 8 {
		t.Errorf("Figure 3 is connected: %v", comps)
	}
	g2, err := Build([]*relation.Schema{
		relation.NewSchema("A", "a").Key("a"),
		relation.NewSchema("B", "b").Key("b"),
		relation.NewSchema("C", "c", "b").Key("c").Ref([]string{"b"}, "B"),
	})
	if err != nil {
		t.Fatal(err)
	}
	comps = g2.Components()
	if len(comps) != 2 {
		t.Fatalf("two components expected: %v", comps)
	}
	if len(comps[0]) != 2 || comps[0][0] != "B" {
		t.Errorf("largest component first: %v", comps)
	}
}
