package orm

// References returns the number of distinct foreign keys of node 'from' that
// reference node 'to'. Zero means 'from' does not reference 'to' (though
// 'to' may reference 'from').
func (g *Graph) References(from, to string) int {
	n := 0
	for _, p := range g.Participants(from) {
		if eqFold(p.Node, to) {
			n++
		}
	}
	return n
}

func eqFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// WalkPath returns the shortest valid walk from node 'from' to node 'to' in
// the ORM schema graph, including both endpoints. Unlike Path, a walk may
// revisit a node class: every interior occurrence denotes a fresh instance
// in the query pattern (e.g. Student-Enrol-Course-Enrol-Student in Figure 4
// uses two Enrol instances).
//
// A walk is valid when no interior instance spends the same foreign key
// twice: for consecutive classes a-v-b, the step is invalid iff a == b and v
// has exactly one foreign key referencing a (the single FK cannot join two
// distinct instances of a). Classes referenced *by* their neighbours (keys)
// may be shared freely.
//
// For from == to the result is the shortest valid cycle through the class
// (length >= 2 edges); nil is returned when no valid walk exists.
func (g *Graph) WalkPath(from, to string) []string {
	src, dst := g.Node(from), g.Node(to)
	if src == nil || dst == nil {
		return nil
	}
	type state struct{ cur, prev string }
	start := state{cur: src.Name}
	parent := map[state]state{start: start}
	queue := []state{start}
	var goal *state
	for len(queue) > 0 && goal == nil {
		st := queue[0]
		queue = queue[1:]
		for _, nb := range g.adj[st.cur] {
			if st.prev != "" && nb == st.prev && g.References(st.cur, st.prev) == 1 {
				continue // interior instance would reuse its only FK to prev
			}
			ns := state{cur: nb, prev: st.cur}
			if _, seen := parent[ns]; seen {
				continue
			}
			parent[ns] = st
			if nb == dst.Name {
				goal = &ns
				break
			}
			queue = append(queue, ns)
		}
	}
	if goal == nil {
		return nil
	}
	var rev []string
	for st := *goal; ; st = parent[st] {
		rev = append(rev, st.cur)
		if st == start {
			break
		}
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// WalkDistance returns the number of edges of the shortest valid walk, or -1
// when none exists.
func (g *Graph) WalkDistance(from, to string) int {
	if w := g.WalkPath(from, to); w != nil {
		return len(w) - 1
	}
	return -1
}

// Components returns the connected components of the schema graph, each a
// sorted list of node names, largest first. A schema with more than one
// component cannot answer queries spanning components; surfacing this early
// gives better diagnostics than a failed pattern connection.
func (g *Graph) Components() [][]string {
	seen := make(map[string]bool)
	var comps [][]string
	for _, k := range g.order {
		start := g.nodes[k].Name
		if seen[start] {
			continue
		}
		var comp []string
		queue := []string{start}
		seen[start] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			comp = append(comp, cur)
			for _, nb := range g.adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		sortStrings(comp)
		comps = append(comps, comp)
	}
	// Largest component first; ties by first member.
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			if len(comps[j]) > len(comps[i]) ||
				(len(comps[j]) == len(comps[i]) && comps[j][0] < comps[i][0]) {
				comps[i], comps[j] = comps[j], comps[i]
			}
		}
	}
	return comps
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
