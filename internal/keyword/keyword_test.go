package keyword

import (
	"reflect"
	"testing"

	"kwagg/internal/sqlast"
)

func TestParseBasicTerms(t *testing.T) {
	q, err := Parse("Green George Code")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 3 {
		t.Fatalf("terms: %v", q.Terms)
	}
	for _, tm := range q.Terms {
		if tm.Kind != Basic {
			t.Errorf("term %q should be basic", tm.Text)
		}
	}
	if !reflect.DeepEqual(q.BasicTerms(), []int{0, 1, 2}) {
		t.Errorf("BasicTerms: %v", q.BasicTerms())
	}
	if q.Operators() != nil {
		t.Errorf("Operators: %v", q.Operators())
	}
}

func TestParseOperators(t *testing.T) {
	q, err := Parse("MAX COUNT order GROUPBY nation")
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []TermKind{Aggregate, Aggregate, Basic, GroupBy, Basic}
	for i, k := range wantKinds {
		if q.Terms[i].Kind != k {
			t.Errorf("term %d kind = %v, want %v", i, q.Terms[i].Kind, k)
		}
	}
	if q.Terms[0].Agg != sqlast.AggMax || q.Terms[1].Agg != sqlast.AggCount {
		t.Errorf("aggregate functions: %v %v", q.Terms[0].Agg, q.Terms[1].Agg)
	}
	if !reflect.DeepEqual(q.Operators(), []int{0, 1, 3}) {
		t.Errorf("Operators: %v", q.Operators())
	}
}

func TestParseCaseInsensitiveOperators(t *testing.T) {
	q, err := Parse("count Student groupby Course")
	if err != nil {
		t.Fatal(err)
	}
	if q.Terms[0].Kind != Aggregate || q.Terms[2].Kind != GroupBy {
		t.Errorf("lower-case operators not recognized: %v", q.Terms)
	}
}

func TestQuotedPhrases(t *testing.T) {
	q, err := Parse(`COUNT order "royal olive"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Terms) != 3 {
		t.Fatalf("terms: %v", q.Terms)
	}
	last := q.Terms[2]
	if !last.Quoted || last.Text != "royal olive" || last.Kind != Basic {
		t.Errorf("quoted phrase: %+v", last)
	}
}

func TestQuotedOperatorIsBasic(t *testing.T) {
	q, err := Parse(`"count" Student`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Terms[0].Kind != Basic {
		t.Error("a quoted aggregate name is a value term")
	}
}

func TestValidateLastTermNotOperator(t *testing.T) {
	for _, s := range []string{"Student COUNT", "Student GROUPBY", "COUNT"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail: trailing operator", s)
		}
	}
}

func TestValidateAggregateBeforeGroupBy(t *testing.T) {
	if _, err := Parse("SUM GROUPBY Course"); err == nil {
		t.Error("aggregate directly before GROUPBY should fail")
	}
}

func TestValidateGroupByBeforeOperator(t *testing.T) {
	if _, err := Parse("GROUPBY COUNT Student"); err == nil {
		t.Error("GROUPBY before an operator should fail")
	}
}

func TestNestedAggregatesAllowed(t *testing.T) {
	if _, err := Parse("AVG COUNT Lecturer GROUPBY Course"); err != nil {
		t.Errorf("nested aggregates are allowed by Section 3.2: %v", err)
	}
}

func TestEmptyAndMalformed(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Error("empty query should fail")
	}
	if _, err := Parse("   \t "); err == nil {
		t.Error("blank query should fail")
	}
	if _, err := Parse(`Green "unterminated`); err == nil {
		t.Error("unterminated quote should fail")
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		`COUNT order "royal olive"`,
		"MAX COUNT order GROUPBY nation",
		"Green SUM Credit",
	} {
		q, err := Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		if q.String() != s {
			t.Errorf("String round trip: %q -> %q", s, q.String())
		}
	}
}

func TestTermString(t *testing.T) {
	if got := (Term{Text: "royal olive", Quoted: true}).String(); got != `"royal olive"` {
		t.Errorf("quoted term: %s", got)
	}
	if got := (Term{Text: "simple"}).String(); got != "simple" {
		t.Errorf("plain term: %s", got)
	}
}

func TestTermKindString(t *testing.T) {
	for k, want := range map[TermKind]string{Basic: "basic", Aggregate: "aggregate", GroupBy: "groupby"} {
		if k.String() != want {
			t.Errorf("TermKind(%d) = %q", k, k.String())
		}
	}
}
