// Package keyword implements the extended keyword query language of
// Definition 1: a query is a sequence of terms, each matching a relation
// name, an attribute name, a tuple value, GROUPBY, or one of the aggregate
// functions MIN, MAX, AVG, SUM, COUNT. The package tokenizes query text
// (including quoted phrases such as "royal olive"), classifies terms into
// basic terms and operators, and enforces the structural constraints on
// operator placement, including the Section 3.2 relaxation that lets an
// aggregate be followed by another aggregate (nested aggregates).
package keyword

import (
	"fmt"
	"strings"

	"kwagg/internal/sqlast"
)

// TermKind distinguishes basic terms from the two operator kinds.
type TermKind int

// Kinds of query terms.
const (
	// Basic terms match relation names, attribute names or tuple values.
	Basic TermKind = iota
	// Aggregate terms are MIN, MAX, AVG, SUM or COUNT.
	Aggregate
	// GroupBy is the GROUPBY operator term.
	GroupBy
)

// String names the kind.
func (k TermKind) String() string {
	switch k {
	case Basic:
		return "basic"
	case Aggregate:
		return "aggregate"
	case GroupBy:
		return "groupby"
	default:
		return fmt.Sprintf("TermKind(%d)", int(k))
	}
}

// Term is one term of a keyword query.
type Term struct {
	Text   string         // the term text, without surrounding quotes
	Kind   TermKind       //
	Agg    sqlast.AggFunc // set when Kind == Aggregate
	Quoted bool           // quoted terms are always basic, even "count"
}

// IsOperator reports whether the term is an aggregate or GROUPBY operator.
func (t Term) IsOperator() bool { return t.Kind != Basic }

// String renders the term, re-quoting phrases.
func (t Term) String() string {
	if t.Quoted || strings.ContainsRune(t.Text, ' ') {
		return `"` + t.Text + `"`
	}
	return t.Text
}

// Query is a parsed keyword query.
type Query struct {
	Raw   string
	Terms []Term
}

// String reassembles the query from its terms.
func (q *Query) String() string {
	parts := make([]string, len(q.Terms))
	for i, t := range q.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " ")
}

// BasicTerms returns the positions of the basic terms, in order.
func (q *Query) BasicTerms() []int {
	var out []int
	for i, t := range q.Terms {
		if t.Kind == Basic {
			out = append(out, i)
		}
	}
	return out
}

// Operators returns the positions of the operator terms, in order.
func (q *Query) Operators() []int {
	var out []int
	for i, t := range q.Terms {
		if t.IsOperator() {
			out = append(out, i)
		}
	}
	return out
}

// Parse tokenizes and classifies a keyword query. Double-quoted phrases
// become single basic terms. It returns an error for empty queries,
// unterminated quotes, or operator placements that violate the constraints
// of Definition 1 (as relaxed by Section 3.2 for nested aggregates).
func Parse(s string) (*Query, error) {
	toks, err := splitTerms(s)
	if err != nil {
		return nil, err
	}
	if len(toks) == 0 {
		return nil, fmt.Errorf("keyword: empty query")
	}
	q := &Query{Raw: s}
	for _, tok := range toks {
		t := Term{Text: tok.text, Quoted: tok.quoted, Kind: Basic}
		if !tok.quoted {
			if fn, ok := sqlast.IsAggFunc(tok.text); ok {
				t.Kind, t.Agg = Aggregate, fn
			} else if strings.EqualFold(tok.text, "GROUPBY") {
				t.Kind = GroupBy
			}
		}
		q.Terms = append(q.Terms, t)
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// validate enforces the constraints on operator terms:
//
//  1. the last term cannot be an operator;
//  2. MIN/MAX/AVG/SUM must be followed by a basic term (to be resolved to an
//     attribute) or, per Section 3.2, by another aggregate;
//  3. COUNT and GROUPBY must be followed by a basic term (relation or
//     attribute name) or, for COUNT, by another aggregate.
//
// Whether the following basic term actually resolves to an attribute or
// relation name is checked later, during pattern annotation, because it
// depends on the database being queried.
func (q *Query) validate() error {
	last := q.Terms[len(q.Terms)-1]
	if last.IsOperator() {
		return fmt.Errorf("keyword: query cannot end with operator %s", last.Text)
	}
	for i, t := range q.Terms {
		if !t.IsOperator() {
			continue
		}
		next := q.Terms[i+1]
		switch t.Kind {
		case Aggregate:
			if next.Kind == GroupBy {
				return fmt.Errorf("keyword: aggregate %s cannot be followed by GROUPBY", t.Text)
			}
		case GroupBy:
			if next.IsOperator() {
				return fmt.Errorf("keyword: GROUPBY must be followed by a relation or attribute name")
			}
		}
	}
	return nil
}

type rawTok struct {
	text   string
	quoted bool
}

func splitTerms(s string) ([]rawTok, error) {
	var out []rawTok
	i := 0
	for i < len(s) {
		switch {
		case s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r':
			i++
		case s[i] == '"':
			j := strings.IndexByte(s[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("keyword: unterminated quote in %q", s)
			}
			out = append(out, rawTok{text: s[i+1 : i+1+j], quoted: true})
			i += j + 2
		default:
			j := i
			for j < len(s) && s[j] != ' ' && s[j] != '\t' && s[j] != '\n' && s[j] != '\r' && s[j] != '"' {
				j++
			}
			out = append(out, rawTok{text: s[i:j]})
			i = j
		}
	}
	return out, nil
}
