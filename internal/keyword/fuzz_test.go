package keyword

import "testing"

// FuzzParse ensures the keyword tokenizer never panics and that every
// accepted query round-trips through String.
func FuzzParse(f *testing.F) {
	f.Add("Green SUM Credit")
	f.Add(`COUNT order "royal olive"`)
	f.Add("MAX COUNT order GROUPBY nation")
	f.Add(`"unterminated`)
	f.Add("GROUPBY")
	f.Add("   ")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("rendered query does not parse: %v (%q -> %q)", err, src, q.String())
		}
		if back.String() != q.String() {
			t.Fatalf("render not a fixpoint: %q vs %q", q.String(), back.String())
		}
	})
}
