package relation

import "testing"

func TestDictEncodeSharesIDByFormat(t *testing.T) {
	d := newDict()
	a := d.encode(int64(5))
	b := d.encode("5")
	if a != b {
		t.Fatalf("int64(5) and \"5\" format equally but got ids %d and %d", a, b)
	}
	n := d.encode(nil)
	s := d.encode("NULL")
	if n != s {
		t.Fatalf("nil and \"NULL\" format equally but got ids %d and %d", n, s)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	// Decoding returns the first value encoded with the ID.
	if v := d.Value(a); v != int64(5) {
		t.Fatalf("Value(%d) = %#v, want int64(5)", a, v)
	}
	if v := d.Value(n); v != nil {
		t.Fatalf("Value(%d) = %#v, want nil", n, v)
	}
}

func TestDictIDLookup(t *testing.T) {
	d := newDict()
	d.encode("alice")
	d.encode(int64(42))
	d.encode(3.5)

	if id, ok := d.ID("alice"); !ok || d.Value(id) != "alice" {
		t.Fatalf("ID(alice) = %d,%v", id, ok)
	}
	if id, ok := d.ID(int64(42)); !ok || d.Value(id) != int64(42) {
		t.Fatalf("ID(42) = %d,%v", id, ok)
	}
	if id, ok := d.ID("42"); !ok || d.Value(id) != int64(42) {
		t.Fatalf("ID(\"42\") should alias int64(42), got %d,%v", id, ok)
	}
	if id, ok := d.ID(3.5); !ok || d.Value(id) != 3.5 {
		t.Fatalf("ID(3.5) = %d,%v", id, ok)
	}
	if _, ok := d.ID("absent"); ok {
		t.Fatal("ID(absent) reported ok")
	}
}

func TestDictAllStrings(t *testing.T) {
	d := newDict()
	d.encode("a")
	d.encode("b")
	if !d.AllStrings() {
		t.Fatal("string-only dict should report AllStrings")
	}
	d.encode(int64(1))
	if d.AllStrings() {
		t.Fatal("dict with an int must not report AllStrings")
	}
}

func TestDictRemap(t *testing.T) {
	from := newDict()
	a := from.encode("a")
	b := from.encode("b")
	only := from.encode("only-here")

	to := newDict()
	to.encode("b")
	to.encode("a")

	m := from.Remap(to)
	if got, _ := to.ID("a"); m[a] != got {
		t.Fatalf("remap(a) = %d, want %d", m[a], got)
	}
	if got, _ := to.ID("b"); m[b] != got {
		t.Fatalf("remap(b) = %d, want %d", m[b], got)
	}
	if m[only] != NoID {
		t.Fatalf("remap(only-here) = %d, want NoID", m[only])
	}
}

func TestFreezeBuildsEncoding(t *testing.T) {
	s := NewSchema("T", "id:int", "name:string")
	tb := NewTable(s)
	tb.MustInsert(int64(1), "alice")
	tb.MustInsert(int64(2), "bob")
	tb.MustInsert(int64(3), "alice")

	if _, _, ok := tb.Encoding(); ok {
		t.Fatal("Encoding must report !ok before Freeze")
	}
	tb.Freeze()
	tb.Freeze() // idempotent
	dicts, enc, ok := tb.Encoding()
	if !ok {
		t.Fatal("Encoding !ok after Freeze")
	}
	if len(dicts) != 2 || len(enc) != 6 {
		t.Fatalf("got %d dicts, %d cells", len(dicts), len(enc))
	}
	if enc[0*2+1] != enc[2*2+1] {
		t.Fatal("rows 0 and 2 share name 'alice' but got different ids")
	}
	if enc[0*2+1] == enc[1*2+1] {
		t.Fatal("'alice' and 'bob' share an id")
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			got := dicts[j].Value(enc[i*2+j])
			want := tb.Tuples[i][j]
			if got != want {
				t.Fatalf("decode(row %d, col %d) = %#v, want %#v", i, j, got, want)
			}
		}
	}
}

func TestFrozenLookupMatchesUnfrozen(t *testing.T) {
	build := func() *Table {
		s := NewSchema("T", "id:int", "name:string", "score:float")
		tb := NewTable(s)
		tb.MustInsert(int64(1), "alice", 3.5)
		tb.MustInsert(int64(2), "NULL", 2.0)
		tb.MustInsert(int64(3), nil, 2.0)
		tb.MustInsert(int64(4), "alice", nil)
		return tb
	}
	mut, fro := build(), build()
	fro.Freeze()

	probes := []struct {
		attr string
		v    Value
	}{
		{"name", "alice"}, {"name", "NULL"}, {"name", nil}, {"name", "bob"},
		{"id", int64(2)}, {"id", "2"}, {"id", int64(99)},
		{"score", 2.0}, {"score", "2"}, {"score", nil},
		{"nosuchattr", "x"},
	}
	for _, p := range probes {
		a := mut.Lookup(p.attr, p.v)
		b := fro.Lookup(p.attr, p.v)
		if len(a) != len(b) {
			t.Fatalf("Lookup(%s, %#v): unfrozen %v vs frozen %v", p.attr, p.v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("Lookup(%s, %#v): unfrozen %v vs frozen %v", p.attr, p.v, a, b)
			}
		}
	}
}
