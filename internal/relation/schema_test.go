package relation

import (
	"strings"
	"testing"
)

func studentSchema() *Schema {
	return NewSchema("Student", "Sid", "Sname", "Age INT").Key("Sid")
}

func TestNewSchemaTypes(t *testing.T) {
	s := NewSchema("T", "a", "b INT", "c FLOAT", "d DATE", "e DECIMAL", "f INTEGER")
	want := []Type{TypeString, TypeInt, TypeFloat, TypeDate, TypeFloat, TypeInt}
	for i, w := range want {
		if s.Attributes[i].Type != w {
			t.Errorf("attribute %d: got %v, want %v", i, s.Attributes[i].Type, w)
		}
	}
}

func TestAttrIndexCaseInsensitive(t *testing.T) {
	s := studentSchema()
	if s.AttrIndex("sname") != 1 || s.AttrIndex("SNAME") != 1 {
		t.Error("attribute lookup should be case-insensitive")
	}
	if s.AttrIndex("nosuch") != -1 {
		t.Error("unknown attribute should return -1")
	}
	if !s.HasAttr("AGE") || s.HasAttr("ages") {
		t.Error("HasAttr mismatch")
	}
}

func TestIsKeyAttr(t *testing.T) {
	s := NewSchema("Enrol", "Sid", "Code", "Grade").Key("Sid", "Code")
	if !s.IsKeyAttr("sid") || !s.IsKeyAttr("Code") || s.IsKeyAttr("Grade") {
		t.Error("IsKeyAttr mismatch")
	}
}

func TestRefDefaultsRefAttrs(t *testing.T) {
	s := NewSchema("Enrol", "Sid", "Code").Key("Sid", "Code").
		Ref([]string{"Sid"}, "Student").
		Ref([]string{"Code"}, "Course", "Code")
	if got := s.ForeignKeys[0].RefAttrs[0]; got != "Sid" {
		t.Errorf("RefAttrs should default to Attrs, got %q", got)
	}
	if got := s.ForeignKeys[1].String(); got != "(Code) -> Course(Code)" {
		t.Errorf("FK String: %q", got)
	}
}

func TestEffectiveFDs(t *testing.T) {
	s := NewSchema("R", "A", "B", "C").Key("A").Dep([]string{"B"}, "C")
	fds := s.EffectiveFDs()
	if len(fds) != 2 {
		t.Fatalf("want declared FD plus key FD, got %d", len(fds))
	}
	// The implicit key dependency A -> B, C must be present.
	found := false
	for _, fd := range fds {
		if len(fd.LHS) == 1 && strings.EqualFold(fd.LHS[0], "A") && len(fd.RHS) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing implicit key FD in %v", fds)
	}
}

func TestEffectiveFDsNoKey(t *testing.T) {
	s := NewSchema("R", "A", "B")
	if n := len(s.EffectiveFDs()); n != 0 {
		t.Errorf("keyless relation should have no implicit FDs, got %d", n)
	}
}

func TestCloneIndependence(t *testing.T) {
	s := studentSchema().Ref([]string{"Sid"}, "X").Dep([]string{"Sid"}, "Sname")
	c := s.Clone()
	c.Attributes[0].Name = "Changed"
	c.PrimaryKey[0] = "Changed"
	c.ForeignKeys[0].Attrs[0] = "Changed"
	c.FDs[0].LHS[0] = "Changed"
	if s.Attributes[0].Name != "Sid" || s.PrimaryKey[0] != "Sid" ||
		s.ForeignKeys[0].Attrs[0] != "Sid" || s.FDs[0].LHS[0] != "Sid" {
		t.Error("Clone must deep-copy every slice")
	}
}

func TestSchemaString(t *testing.T) {
	s := NewSchema("Enrol", "Sid", "Code", "Grade").Key("Sid", "Code")
	if got := s.String(); got != "Enrol(*Sid, *Code, Grade)" {
		t.Errorf("String: %q", got)
	}
}

func TestNormalizeAttrSet(t *testing.T) {
	got := NormalizeAttrSet([]string{"b", "A", "B", "a", "c"})
	if len(got) != 3 || got[0] != "A" || got[1] != "b" || got[2] != "c" {
		t.Errorf("NormalizeAttrSet: %v", got)
	}
}

func TestSameAttrSet(t *testing.T) {
	if !SameAttrSet([]string{"A", "b"}, []string{"B", "a"}) {
		t.Error("sets equal up to case and order should match")
	}
	if SameAttrSet([]string{"A"}, []string{"A", "B"}) {
		t.Error("different cardinality should not match")
	}
}

func TestSubsetAttrSet(t *testing.T) {
	if !SubsetAttrSet([]string{"a"}, []string{"A", "B"}) {
		t.Error("subset check should be case-insensitive")
	}
	if SubsetAttrSet([]string{"c"}, []string{"A", "B"}) {
		t.Error("non-subset should fail")
	}
	if !SubsetAttrSet(nil, []string{"A"}) {
		t.Error("empty set is a subset of anything")
	}
}
