package relation

import (
	"fmt"
	"strings"
)

// ValidateDatabase checks the structural consistency of a database schema
// before any semantic processing: primary-key and FD attributes must exist,
// foreign keys must reference existing relations and their key attributes
// with matching arity, and relation names must not collide. It returns every
// problem found, so callers can report them all at once.
func ValidateDatabase(db *Database) []error {
	var errs []error
	for _, t := range db.Tables() {
		errs = append(errs, ValidateSchema(t.Schema, db)...)
	}
	return errs
}

// ValidateSchema checks one schema against the database it belongs to.
func ValidateSchema(s *Schema, db *Database) []error {
	var errs []error
	seen := make(map[string]bool)
	for _, a := range s.Attributes {
		k := strings.ToLower(a.Name)
		if seen[k] {
			errs = append(errs, fmt.Errorf("relation %s: duplicate attribute %q", s.Name, a.Name))
		}
		seen[k] = true
	}
	for _, k := range s.PrimaryKey {
		if !s.HasAttr(k) {
			errs = append(errs, fmt.Errorf("relation %s: key attribute %q does not exist", s.Name, k))
		}
	}
	for _, fk := range s.ForeignKeys {
		if len(fk.Attrs) != len(fk.RefAttrs) {
			errs = append(errs, fmt.Errorf("relation %s: foreign key %s has mismatched arity", s.Name, fk))
			continue
		}
		for _, a := range fk.Attrs {
			if !s.HasAttr(a) {
				errs = append(errs, fmt.Errorf("relation %s: foreign key attribute %q does not exist", s.Name, a))
			}
		}
		ref := db.Table(fk.RefRelation)
		if ref == nil {
			errs = append(errs, fmt.Errorf("relation %s: foreign key %s references unknown relation", s.Name, fk))
			continue
		}
		// Note: RefAttrs need not be the referenced relation's key —
		// denormalized schemas carry informal join references (e.g.
		// PaperAuthor.procid into EditorProceeding), which the SQAK schema
		// graph must see.
		for _, a := range fk.RefAttrs {
			if !ref.Schema.HasAttr(a) {
				errs = append(errs, fmt.Errorf("relation %s: foreign key %s references missing attribute %q",
					s.Name, fk, a))
			}
		}
	}
	for _, fd := range s.FDs {
		for _, a := range append(append([]string(nil), fd.LHS...), fd.RHS...) {
			if !s.HasAttr(a) {
				errs = append(errs, fmt.Errorf("relation %s: FD %s mentions unknown attribute %q", s.Name, fd, a))
			}
		}
	}
	return errs
}

// ValidateData checks referential integrity and key uniqueness of the stored
// tuples. It is O(total tuples) and intended for dataset generators and
// tests rather than the hot path.
func ValidateData(db *Database) []error {
	var errs []error
	for _, t := range db.Tables() {
		if len(t.Schema.PrimaryKey) > 0 {
			seen := make(map[string]bool, t.Len())
			for i := range t.Tuples {
				k := t.KeyOf(i)
				if seen[k] {
					errs = append(errs, fmt.Errorf("relation %s: duplicate key %q", t.Schema.Name, k))
					break
				}
				seen[k] = true
			}
		}
		for _, fk := range t.Schema.ForeignKeys {
			ref := db.Table(fk.RefRelation)
			if ref == nil {
				continue // reported by ValidateDatabase
			}
			for i := range t.Tuples {
				dangling := false
				for k, a := range fk.Attrs {
					v := t.Value(i, a)
					if Null(v) {
						continue
					}
					if len(ref.Lookup(fk.RefAttrs[k], v)) == 0 {
						dangling = true
					}
				}
				if dangling {
					errs = append(errs, fmt.Errorf("relation %s row %d: dangling reference %s", t.Schema.Name, i, fk))
					break
				}
			}
		}
	}
	return errs
}
