package relation

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable(studentSchema())
	tb.MustInsert("s1", "George", int64(22))
	tb.MustInsert("s2", "Green", int64(24))
	tb.MustInsert("s3", "Green", int64(21))
	return tb
}

func TestInsertArity(t *testing.T) {
	tb := NewTable(studentSchema())
	if err := tb.Insert(Tuple{"s1"}); err == nil {
		t.Error("short tuple should be rejected")
	}
	if err := tb.Insert(Tuple{"s1", "A", int64(1), "extra"}); err == nil {
		t.Error("long tuple should be rejected")
	}
}

func TestAppendShared(t *testing.T) {
	src := sampleTable(t)
	extra := []Tuple{{"s4", "Brown", int64(25)}}
	tb := NewTable(studentSchema())
	if err := tb.AppendShared(src.Tuples, nil, extra); err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 4 {
		t.Fatalf("appended table has %d rows", tb.Len())
	}
	// Shared by reference, not copied.
	if &tb.Tuples[0][0] != &src.Tuples[0][0] {
		t.Error("tuples were copied, not shared")
	}
	if v := tb.Value(3, "Sname"); v != "Brown" {
		t.Errorf("tail row: %v", v)
	}

	// A bad-arity tuple anywhere rejects the whole call, appending nothing.
	if err := tb.AppendShared([]Tuple{{"s5", "X", int64(1)}, {"s6"}}); err == nil {
		t.Error("short tuple should be rejected")
	}
	if tb.Len() != 4 {
		t.Errorf("failed append mutated the table: %d rows", tb.Len())
	}

	tb.Freeze()
	if err := tb.AppendShared(extra); err == nil {
		t.Error("frozen table should reject AppendShared")
	}
}

func TestInsertRowCoercion(t *testing.T) {
	tb := NewTable(studentSchema())
	if err := tb.InsertRow("s1", "George", "22"); err != nil {
		t.Fatal(err)
	}
	if v := tb.Value(0, "Age"); v.(int64) != 22 {
		t.Errorf("Age coerced wrong: %v", v)
	}
	if err := tb.InsertRow("s2", "X", "not-an-int"); err == nil {
		t.Error("bad INT field should be rejected")
	}
	if err := tb.InsertRow("s2", "X"); err == nil {
		t.Error("wrong field count should be rejected")
	}
}

func TestLookup(t *testing.T) {
	tb := sampleTable(t)
	rows := tb.Lookup("Sname", Str("Green"))
	if len(rows) != 2 || rows[0] != 1 || rows[1] != 2 {
		t.Errorf("Lookup Green: %v", rows)
	}
	if got := tb.Lookup("Sname", Str("Nobody")); got != nil {
		t.Errorf("Lookup miss should be empty, got %v", got)
	}
	if got := tb.Lookup("NoAttr", Str("x")); got != nil {
		t.Errorf("Lookup on unknown attr should be empty, got %v", got)
	}
	// The index is invalidated by inserts.
	tb.MustInsert("s4", "Green", int64(30))
	if got := tb.Lookup("Sname", Str("Green")); len(got) != 3 {
		t.Errorf("Lookup after insert should see new row: %v", got)
	}
}

func TestKeyOf(t *testing.T) {
	tb := sampleTable(t)
	if tb.KeyOf(0) == tb.KeyOf(1) {
		t.Error("distinct rows must have distinct keys")
	}
	enrol := NewTable(NewSchema("Enrol", "Sid", "Code").Key("Sid", "Code"))
	enrol.MustInsert("s1", "c1")
	enrol.MustInsert("s1", "c2")
	if enrol.KeyOf(0) == enrol.KeyOf(1) {
		t.Error("composite keys must distinguish rows")
	}
}

func TestProject(t *testing.T) {
	tb := sampleTable(t)
	p, err := tb.Project([]string{"Sname"}, false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Errorf("bag projection keeps duplicates: %d", p.Len())
	}
	p, err = tb.Project([]string{"Sname"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("distinct projection removes duplicates: %d", p.Len())
	}
	if _, err := tb.Project([]string{"NoSuch"}, false); err == nil {
		t.Error("projecting unknown attribute should fail")
	}
}

func TestDatabaseRegistry(t *testing.T) {
	db := NewDatabase("test")
	db.AddSchema(studentSchema())
	db.AddSchema(NewSchema("Course", "Code").Key("Code"))
	if db.Table("student") == nil || db.Table("STUDENT") == nil {
		t.Error("table lookup should be case-insensitive")
	}
	if db.Table("nosuch") != nil {
		t.Error("unknown table should be nil")
	}
	names := make([]string, 0)
	for _, tb := range db.Tables() {
		names = append(names, tb.Schema.Name)
	}
	if strings.Join(names, ",") != "Student,Course" {
		t.Errorf("registration order lost: %v", names)
	}
	// Replacing keeps the original position.
	db.AddSchema(NewSchema("Student", "Sid", "New").Key("Sid"))
	if got := db.Tables()[0].Schema.Attributes[1].Name; got != "New" {
		t.Errorf("replacement not applied: %v", got)
	}
	if len(db.Tables()) != 2 {
		t.Errorf("replacement must not duplicate: %d tables", len(db.Tables()))
	}
}

func TestDatabaseStats(t *testing.T) {
	db := NewDatabase("test")
	tb := db.AddSchema(studentSchema())
	tb.MustInsert("s1", "A", int64(1))
	if got := db.Stats(); got != "Student=1" {
		t.Errorf("Stats: %q", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb := sampleTable(t)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back := NewTable(studentSchema())
	if err := back.ReadCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if back.Len() != tb.Len() {
		t.Fatalf("row count: %d vs %d", back.Len(), tb.Len())
	}
	for i := range tb.Tuples {
		for j := range tb.Tuples[i] {
			if !Equal(tb.Tuples[i][j], back.Tuples[i][j]) {
				t.Errorf("row %d col %d: %v vs %v", i, j, tb.Tuples[i][j], back.Tuples[i][j])
			}
		}
	}
}

func TestCSVHeaderReorder(t *testing.T) {
	in := "Age,Sid,Sname\n22,s1,George\n"
	tb := NewTable(studentSchema())
	if err := tb.ReadCSV(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if tb.Value(0, "Sid") != Str("s1") || tb.Value(0, "Age").(int64) != 22 {
		t.Errorf("reordered header mishandled: %v", tb.Tuples[0])
	}
}

func TestCSVBadHeader(t *testing.T) {
	tb := NewTable(studentSchema())
	if err := tb.ReadCSV(strings.NewReader("Nope\nx\n")); err == nil {
		t.Error("unknown CSV column should be rejected")
	}
}
