package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// enrolmentFDs reproduces the Figure 8 dependencies.
func enrolmentFDs() []FD {
	return []FD{
		{LHS: []string{"Sid"}, RHS: []string{"Sname", "Age"}},
		{LHS: []string{"Code"}, RHS: []string{"Title", "Credit"}},
		{LHS: []string{"Sid", "Code"}, RHS: []string{"Grade"}},
	}
}

func TestClosure(t *testing.T) {
	fds := enrolmentFDs()
	got := Closure([]string{"Sid"}, fds)
	want := []string{"Age", "Sid", "Sname"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("closure(Sid) = %v, want %v", got, want)
	}
	got = Closure([]string{"Sid", "Code"}, fds)
	if len(got) != 7 {
		t.Errorf("closure(Sid,Code) should cover all 7 attributes, got %v", got)
	}
}

func TestClosureTransitivity(t *testing.T) {
	fds := []FD{
		{LHS: []string{"A"}, RHS: []string{"B"}},
		{LHS: []string{"B"}, RHS: []string{"C"}},
		{LHS: []string{"C"}, RHS: []string{"D"}},
	}
	got := Closure([]string{"A"}, fds)
	if len(got) != 4 {
		t.Errorf("transitive closure should reach D: %v", got)
	}
}

func TestClosureCaseInsensitive(t *testing.T) {
	fds := []FD{{LHS: []string{"sid"}, RHS: []string{"SNAME"}}}
	got := Closure([]string{"SID"}, fds)
	if len(got) != 2 {
		t.Errorf("closure should match case-insensitively: %v", got)
	}
}

// TestClosureProperties checks the three axioms of attribute closures on
// random FD sets: extensive (X subset of X+), monotone (X subset of Y implies
// X+ subset of Y+), and idempotent ((X+)+ = X+).
func TestClosureProperties(t *testing.T) {
	attrs := []string{"A", "B", "C", "D", "E", "F"}
	genFDs := func(r *rand.Rand) []FD {
		n := r.Intn(6)
		fds := make([]FD, n)
		pick := func() []string {
			k := 1 + r.Intn(2)
			out := make([]string, k)
			for i := range out {
				out[i] = attrs[r.Intn(len(attrs))]
			}
			return out
		}
		for i := range fds {
			fds[i] = FD{LHS: pick(), RHS: pick()}
		}
		return fds
	}
	genSet := func(r *rand.Rand) []string {
		k := r.Intn(4)
		out := make([]string, k)
		for i := range out {
			out[i] = attrs[r.Intn(len(attrs))]
		}
		return out
	}

	r := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		fds := genFDs(r)
		x := genSet(r)
		cx := Closure(x, fds)
		if !SubsetAttrSet(x, cx) {
			t.Fatalf("extensive violated: %v not in %v", x, cx)
		}
		if !reflect.DeepEqual(Closure(cx, fds), cx) {
			t.Fatalf("idempotence violated for %v under %v", x, fds)
		}
		y := NormalizeAttrSet(append(append([]string(nil), x...), genSet(r)...))
		if !SubsetAttrSet(cx, Closure(y, fds)) {
			t.Fatalf("monotonicity violated: closure(%v) not in closure(%v)", x, y)
		}
	}
}

func TestDetermines(t *testing.T) {
	fds := enrolmentFDs()
	if !Determines([]string{"Sid"}, []string{"Sname"}, fds) {
		t.Error("Sid should determine Sname")
	}
	if Determines([]string{"Sid"}, []string{"Grade"}, fds) {
		t.Error("Sid alone should not determine Grade")
	}
	if !Determines([]string{"Sid", "Code"}, []string{"Grade", "Title", "Age"}, fds) {
		t.Error("the key should determine everything")
	}
}

func TestIsSuperkey(t *testing.T) {
	s := NewSchema("Enrolment", "Sid", "Code", "Sname", "Age INT", "Title", "Credit FLOAT", "Grade").
		Key("Sid", "Code")
	for _, fd := range enrolmentFDs() {
		s.Dep(fd.LHS, fd.RHS...)
	}
	if !IsSuperkey([]string{"Sid", "Code"}, s) {
		t.Error("(Sid, Code) is the key")
	}
	if !IsSuperkey([]string{"Sid", "Code", "Grade"}, s) {
		t.Error("supersets of keys are superkeys")
	}
	if IsSuperkey([]string{"Sid"}, s) {
		t.Error("Sid alone is not a superkey")
	}
	if IsSuperkey([]string{"Sname", "Age"}, s) {
		t.Error("non-key attributes are not a superkey")
	}
}

func TestInvertedIndex(t *testing.T) {
	db := NewDatabase("test")
	tb := db.AddSchema(studentSchema())
	tb.MustInsert("s1", "George Michael", int64(22))
	tb.MustInsert("s2", "Green", int64(24))
	idx := BuildIndex(db)

	if got := idx.LookupToken("george"); len(got) != 1 || got[0].Row != 0 {
		t.Errorf("token lookup: %v", got)
	}
	if got := idx.LookupToken("MICHAEL"); len(got) != 1 {
		t.Errorf("tokens should be case-insensitive: %v", got)
	}
	if got := idx.LookupToken("nosuch"); got != nil {
		t.Errorf("miss should be empty: %v", got)
	}
	// Integer attributes are not indexed.
	if got := idx.LookupToken("22"); got != nil {
		t.Errorf("numeric attributes should not be indexed: %v", got)
	}
	// Phrase lookup requires the whole phrase to appear.
	if got := idx.LookupPhrase(db, "George Michael"); len(got) != 1 {
		t.Errorf("phrase hit: %v", got)
	}
	if got := idx.LookupPhrase(db, "Michael George"); len(got) != 0 {
		t.Errorf("phrase order matters: %v", got)
	}
	if idx.Vocabulary() == 0 {
		t.Error("vocabulary should be non-empty")
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("Supplier#001, royal-olive")
	want := []string{"supplier", "001", "royal", "olive"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize: %v, want %v", got, want)
	}
}

// TestClosureQuickSubsetInvariant: adding FDs can only grow a closure.
func TestClosureQuickSubsetInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		attrs := []string{"A", "B", "C", "D"}
		var fds []FD
		for i := 0; i < r.Intn(4); i++ {
			fds = append(fds, FD{
				LHS: []string{attrs[r.Intn(4)]},
				RHS: []string{attrs[r.Intn(4)]},
			})
		}
		x := []string{attrs[r.Intn(4)]}
		before := Closure(x, fds)
		more := append(fds, FD{LHS: []string{attrs[r.Intn(4)]}, RHS: []string{attrs[r.Intn(4)]}})
		after := Closure(x, more)
		return SubsetAttrSet(before, after)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
