package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Attribute is a named, typed column of a relation schema.
type Attribute struct {
	Name string
	Type Type
}

// ForeignKey declares that Attrs in the owning relation reference RefAttrs,
// the key of relation RefRelation.
type ForeignKey struct {
	Attrs       []string
	RefRelation string
	RefAttrs    []string
}

// String renders the foreign key in a compact diagnostic form.
func (fk ForeignKey) String() string {
	return fmt.Sprintf("(%s) -> %s(%s)",
		strings.Join(fk.Attrs, ","), fk.RefRelation, strings.Join(fk.RefAttrs, ","))
}

// FD is a functional dependency LHS -> RHS over the attributes of one
// relation. FDs drive normal-form checking and 3NF synthesis (Section 4 of
// the paper).
type FD struct {
	LHS []string
	RHS []string
}

// String renders the FD as "A,B -> C".
func (fd FD) String() string {
	return strings.Join(fd.LHS, ",") + " -> " + strings.Join(fd.RHS, ",")
}

// Schema describes one relation: its attributes, primary key, foreign keys
// and (optionally) the functional dependencies that hold on it. When FDs is
// empty, the only dependency assumed is PrimaryKey -> all attributes.
type Schema struct {
	Name        string
	Attributes  []Attribute
	PrimaryKey  []string
	ForeignKeys []ForeignKey
	FDs         []FD
}

// NewSchema builds a schema from "name TYPE" column declarations, e.g.
// NewSchema("Student", "Sid INT", "Sname", "Age INT").Key("Sid").
// A missing type defaults to VARCHAR; recognised types are INT, FLOAT
// (DECIMAL) and DATE.
func NewSchema(name string, cols ...string) *Schema {
	s := &Schema{Name: name}
	for _, c := range cols {
		fields := strings.Fields(c)
		if len(fields) == 0 {
			continue
		}
		attr := Attribute{Name: fields[0], Type: TypeString}
		if len(fields) > 1 {
			switch strings.ToUpper(fields[1]) {
			case "INT", "INTEGER":
				attr.Type = TypeInt
			case "FLOAT", "DECIMAL", "REAL":
				attr.Type = TypeFloat
			case "DATE":
				attr.Type = TypeDate
			}
		}
		s.Attributes = append(s.Attributes, attr)
	}
	return s
}

// Key sets the primary key and returns the schema for chaining.
func (s *Schema) Key(attrs ...string) *Schema {
	s.PrimaryKey = attrs
	return s
}

// Ref appends a foreign key and returns the schema for chaining. The
// referenced attributes default to the referencing ones when refAttrs is
// empty (the common same-name convention used by all datasets in the paper).
func (s *Schema) Ref(attrs []string, refRelation string, refAttrs ...string) *Schema {
	if len(refAttrs) == 0 {
		refAttrs = attrs
	}
	s.ForeignKeys = append(s.ForeignKeys, ForeignKey{Attrs: attrs, RefRelation: refRelation, RefAttrs: refAttrs})
	return s
}

// Dep appends a functional dependency and returns the schema for chaining.
func (s *Schema) Dep(lhs []string, rhs ...string) *Schema {
	s.FDs = append(s.FDs, FD{LHS: lhs, RHS: rhs})
	return s
}

// AttrIndex returns the position of the named attribute, matching
// case-insensitively, or -1 when absent.
func (s *Schema) AttrIndex(name string) int {
	for i, a := range s.Attributes {
		if strings.EqualFold(a.Name, name) {
			return i
		}
	}
	return -1
}

// HasAttr reports whether the schema has an attribute with the given name.
func (s *Schema) HasAttr(name string) bool { return s.AttrIndex(name) >= 0 }

// AttrNames returns the attribute names in declaration order.
func (s *Schema) AttrNames() []string {
	names := make([]string, len(s.Attributes))
	for i, a := range s.Attributes {
		names[i] = a.Name
	}
	return names
}

// AttrType returns the type of the named attribute, defaulting to VARCHAR
// for unknown names.
func (s *Schema) AttrType(name string) Type {
	if i := s.AttrIndex(name); i >= 0 {
		return s.Attributes[i].Type
	}
	return TypeString
}

// IsKeyAttr reports whether name is part of the primary key.
func (s *Schema) IsKeyAttr(name string) bool {
	for _, k := range s.PrimaryKey {
		if strings.EqualFold(k, name) {
			return true
		}
	}
	return false
}

// EffectiveFDs returns the declared FDs plus the implicit dependency of the
// primary key on every non-key attribute.
func (s *Schema) EffectiveFDs() []FD {
	fds := make([]FD, 0, len(s.FDs)+1)
	fds = append(fds, s.FDs...)
	if len(s.PrimaryKey) > 0 {
		var rhs []string
		for _, a := range s.Attributes {
			if !s.IsKeyAttr(a.Name) {
				rhs = append(rhs, a.Name)
			}
		}
		if len(rhs) > 0 {
			fds = append(fds, FD{LHS: append([]string(nil), s.PrimaryKey...), RHS: rhs})
		}
	}
	return fds
}

// Clone returns a deep copy of the schema.
func (s *Schema) Clone() *Schema {
	c := &Schema{Name: s.Name}
	c.Attributes = append([]Attribute(nil), s.Attributes...)
	c.PrimaryKey = append([]string(nil), s.PrimaryKey...)
	for _, fk := range s.ForeignKeys {
		c.ForeignKeys = append(c.ForeignKeys, ForeignKey{
			Attrs:       append([]string(nil), fk.Attrs...),
			RefRelation: fk.RefRelation,
			RefAttrs:    append([]string(nil), fk.RefAttrs...),
		})
	}
	for _, fd := range s.FDs {
		c.FDs = append(c.FDs, FD{LHS: append([]string(nil), fd.LHS...), RHS: append([]string(nil), fd.RHS...)})
	}
	return c
}

// String renders the schema in the compact form used by the paper's Table 2,
// with key attributes underlined replaced by a leading '*'.
func (s *Schema) String() string {
	parts := make([]string, len(s.Attributes))
	for i, a := range s.Attributes {
		n := a.Name
		if s.IsKeyAttr(n) {
			n = "*" + n
		}
		parts[i] = n
	}
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(parts, ", "))
}

// NormalizeAttrSet sorts and de-duplicates a set of attribute names,
// case-insensitively, preserving the first-seen spelling.
func NormalizeAttrSet(attrs []string) []string {
	seen := make(map[string]string)
	for _, a := range attrs {
		k := strings.ToLower(a)
		if _, ok := seen[k]; !ok {
			seen[k] = a
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out
}

// SameAttrSet reports whether two attribute sets are equal ignoring order
// and case.
func SameAttrSet(a, b []string) bool {
	na, nb := NormalizeAttrSet(a), NormalizeAttrSet(b)
	if len(na) != len(nb) {
		return false
	}
	for i := range na {
		if !strings.EqualFold(na[i], nb[i]) {
			return false
		}
	}
	return true
}

// SubsetAttrSet reports whether every attribute in sub occurs in super,
// ignoring case.
func SubsetAttrSet(sub, super []string) bool {
	for _, a := range sub {
		found := false
		for _, b := range super {
			if strings.EqualFold(a, b) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
