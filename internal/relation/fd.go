package relation

import "strings"

// Closure computes the attribute closure of attrs under the functional
// dependencies fds (the standard fixpoint algorithm). Attribute names are
// matched case-insensitively; the result preserves the spellings used in
// attrs and the FDs.
func Closure(attrs []string, fds []FD) []string {
	in := make(map[string]string)
	add := func(a string) bool {
		k := strings.ToLower(a)
		if _, ok := in[k]; ok {
			return false
		}
		in[k] = a
		return true
	}
	for _, a := range attrs {
		add(a)
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			applies := true
			for _, l := range fd.LHS {
				if _, ok := in[strings.ToLower(l)]; !ok {
					applies = false
					break
				}
			}
			if !applies {
				continue
			}
			for _, r := range fd.RHS {
				if add(r) {
					changed = true
				}
			}
		}
	}
	out := make([]string, 0, len(in))
	for _, v := range in {
		out = append(out, v)
	}
	return NormalizeAttrSet(out)
}

// Determines reports whether attrs functionally determine all of targets
// under fds.
func Determines(attrs, targets []string, fds []FD) bool {
	return SubsetAttrSet(targets, Closure(attrs, fds))
}

// IsSuperkey reports whether attrs is a superkey of the schema under its
// effective FDs (declared FDs plus the primary key dependency).
func IsSuperkey(attrs []string, s *Schema) bool {
	return Determines(attrs, s.AttrNames(), s.EffectiveFDs())
}
