package relation

import "sort"

// Shard layout over the frozen columnar encoding. A shard is a contiguous
// range of whole ColData blocks — nothing is re-stored per shard: the shared
// per-column dictionaries, the column-major ID arrays and the null bitsets
// are simply viewed in block-aligned row ranges, so shard-parallel kernels
// read the same immutable arrays the single-shard path does and per-shard
// value-index lookups are binary-searched windows of the global postings.
// Block alignment matters: selection and null bitsets pack 64 rows per word
// and kernels sweep BlockSize rows per inner loop, so workers writing
// disjoint shards never share a bitset word or split a block.

// ShardBlocks is the number of BlockSize blocks per shard: 16 blocks
// (16384 rows) keeps one shard's column comfortably in L2 while leaving
// enough shards per relation for the worker pool to balance.
const ShardBlocks = 16

// ShardRows is the default number of rows per shard.
const ShardRows = ShardBlocks * BlockSize

// Shards returns how many shards of `per` rows cover n rows (the last one
// may be partial). per must be positive.
func Shards(n, per int) int { return (n + per - 1) / per }

// ShardCount returns the number of default-size shards of the table.
func (t *Table) ShardCount() int { return Shards(len(t.Tuples), ShardRows) }

// ShardRange returns the row range [lo, hi) of default-size shard s,
// clamped to the table's length.
func (t *Table) ShardRange(s int) (lo, hi int) {
	lo = s * ShardRows
	hi = lo + ShardRows
	if n := len(t.Tuples); hi > n {
		hi = n
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// LookupRange returns the ascending row ids in [lo, hi) whose attribute
// formats equally to v — the per-shard view of the frozen value index. The
// global postings of an ID are already ascending, so a shard's slice is
// found by two binary searches; the result aliases the shared postings
// array and must be treated as read-only. Only valid on frozen tables.
func (t *Table) LookupRange(attr string, v Value, lo, hi int) []int {
	rows := t.Lookup(attr, v)
	if len(rows) == 0 {
		return nil
	}
	i := sort.SearchInts(rows, lo)
	j := sort.SearchInts(rows, hi)
	return rows[i:j]
}
