package relation

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The on-disk layout of a saved database is a directory containing
// schema.json (the catalog: relations, types, keys, foreign keys, FDs) and
// one <relation>.csv per relation with a header row. The format is plain
// enough to be produced or consumed by other tools.

type schemaJSON struct {
	Name      string         `json:"name"`
	Relations []relationJSON `json:"relations"`
}

type relationJSON struct {
	Name        string   `json:"name"`
	Columns     []string `json:"columns"` // "name TYPE"
	PrimaryKey  []string `json:"primary_key,omitempty"`
	ForeignKeys []fkJSON `json:"foreign_keys,omitempty"`
	FDs         []fdJSON `json:"functional_dependencies,omitempty"`
}

type fkJSON struct {
	Attrs    []string `json:"attrs"`
	Ref      string   `json:"ref"`
	RefAttrs []string `json:"ref_attrs,omitempty"`
}

type fdJSON struct {
	From []string `json:"from"`
	To   []string `json:"to"`
}

// SaveDir writes the database to dir: schema.json plus one CSV per relation.
// The directory is created if needed; existing files are overwritten.
func SaveDir(db *Database, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("relation: creating %s: %w", dir, err)
	}
	cat := schemaJSON{Name: db.Name}
	for _, t := range db.Tables() {
		s := t.Schema
		rj := relationJSON{Name: s.Name, PrimaryKey: s.PrimaryKey}
		for _, a := range s.Attributes {
			col := a.Name
			switch a.Type {
			case TypeInt:
				col += " INT"
			case TypeFloat:
				col += " FLOAT"
			case TypeDate:
				col += " DATE"
			}
			rj.Columns = append(rj.Columns, col)
		}
		for _, fk := range s.ForeignKeys {
			rj.ForeignKeys = append(rj.ForeignKeys, fkJSON{Attrs: fk.Attrs, Ref: fk.RefRelation, RefAttrs: fk.RefAttrs})
		}
		for _, fd := range s.FDs {
			rj.FDs = append(rj.FDs, fdJSON{From: fd.LHS, To: fd.RHS})
		}
		cat.Relations = append(cat.Relations, rj)

		f, err := os.Create(filepath.Join(dir, strings.ToLower(s.Name)+".csv"))
		if err != nil {
			return err
		}
		if err := t.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(cat, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "schema.json"), append(data, '\n'), 0o644)
}

// LoadDir reads a database previously written by SaveDir (or assembled by
// hand in the same layout). A relation with no CSV file loads empty.
func LoadDir(dir string) (*Database, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "schema.json"))
	if err != nil {
		return nil, fmt.Errorf("relation: reading catalog: %w", err)
	}
	var cat schemaJSON
	if err := json.Unmarshal(raw, &cat); err != nil {
		return nil, fmt.Errorf("relation: parsing schema.json: %w", err)
	}
	db := NewDatabase(cat.Name)
	for _, rj := range cat.Relations {
		s := NewSchema(rj.Name, rj.Columns...)
		s.Key(rj.PrimaryKey...)
		for _, fk := range rj.ForeignKeys {
			s.Ref(fk.Attrs, fk.Ref, fk.RefAttrs...)
		}
		for _, fd := range rj.FDs {
			s.Dep(fd.From, fd.To...)
		}
		t := db.AddSchema(s)

		path := filepath.Join(dir, strings.ToLower(rj.Name)+".csv")
		f, err := os.Open(path)
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			return nil, err
		}
		if err := t.ReadCSV(f); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
	}
	if errs := ValidateDatabase(db); len(errs) > 0 {
		return nil, fmt.Errorf("relation: loaded catalog invalid: %w", errs[0])
	}
	return db, nil
}
