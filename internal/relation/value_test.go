package relation

import (
	"testing"
	"testing/quick"
)

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{Float(2.0), Int(2), 0},
		{nil, Int(0), -1},
		{Int(0), nil, 1},
		{nil, nil, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareStrings(t *testing.T) {
	if Compare(Str("apple"), Str("banana")) >= 0 {
		t.Error("apple should sort before banana")
	}
	// Dates stored as ISO strings compare chronologically.
	if Compare(Str("2011-06-13"), Str("2011-06-14")) >= 0 {
		t.Error("earlier date should sort first")
	}
	if Compare(Str("1999-12-31"), Str("2000-01-01")) >= 0 {
		t.Error("earlier year should sort first")
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return Compare(Str(a), Str(b)) == -Compare(Str(b), Str(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareTransitiveOnInts(t *testing.T) {
	f := func(a, b, c int64) bool {
		x, y, z := Int(a), Int(b), Int(c)
		if Compare(x, y) <= 0 && Compare(y, z) <= 0 {
			return Compare(x, z) <= 0
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFormat(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{Float(2), "2"},
		{Str("hello"), "hello"},
		{nil, "NULL"},
	}
	for _, c := range cases {
		if got := Format(c.v); got != c.want {
			t.Errorf("Format(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestLiteralQuoting(t *testing.T) {
	if got := Literal(Str("O'Brien")); got != "'O''Brien'" {
		t.Errorf("Literal escaping: got %s", got)
	}
	if got := Literal(Int(5)); got != "5" {
		t.Errorf("Literal int: got %s", got)
	}
	if got := Literal(nil); got != "NULL" {
		t.Errorf("Literal nil: got %s", got)
	}
}

func TestCoerce(t *testing.T) {
	v, err := Coerce("42", TypeInt)
	if err != nil || v.(int64) != 42 {
		t.Errorf("Coerce int: %v, %v", v, err)
	}
	v, err = Coerce("3.25", TypeFloat)
	if err != nil || v.(float64) != 3.25 {
		t.Errorf("Coerce float: %v, %v", v, err)
	}
	v, err = Coerce("abc", TypeString)
	if err != nil || v.(string) != "abc" {
		t.Errorf("Coerce string: %v, %v", v, err)
	}
	// Empty string is NULL for numeric types, empty string for VARCHAR.
	v, err = Coerce("", TypeInt)
	if err != nil || !Null(v) {
		t.Errorf("Coerce empty int should be NULL: %v, %v", v, err)
	}
	v, err = Coerce("", TypeString)
	if err != nil || v.(string) != "" {
		t.Errorf("Coerce empty string: %v, %v", v, err)
	}
	if _, err = Coerce("not-a-number", TypeInt); err == nil {
		t.Error("Coerce should reject non-numeric INT")
	}
	if _, err = Coerce("1.2.3", TypeFloat); err == nil {
		t.Error("Coerce should reject malformed FLOAT")
	}
}

func TestCoerceFormatRoundTrip(t *testing.T) {
	f := func(x int64) bool {
		v, err := Coerce(Format(Int(x)), TypeInt)
		return err == nil && v.(int64) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := AsFloat(Int(3)); !ok || f != 3 {
		t.Errorf("AsFloat int: %v %v", f, ok)
	}
	if f, ok := AsFloat(Float(2.5)); !ok || f != 2.5 {
		t.Errorf("AsFloat float: %v %v", f, ok)
	}
	if f, ok := AsFloat(Str("7.5")); !ok || f != 7.5 {
		t.Errorf("AsFloat numeric string: %v %v", f, ok)
	}
	if _, ok := AsFloat(Str("xyz")); ok {
		t.Error("AsFloat should fail on non-numeric string")
	}
	if _, ok := AsFloat(nil); ok {
		t.Error("AsFloat should fail on NULL")
	}
}

func TestContainsFold(t *testing.T) {
	cases := []struct {
		hay, needle string
		want        bool
	}{
		{"Royal Olive", "royal olive", true},
		{"royal olive", "ROYAL", true},
		{"database tuning in practice", "database tuning", true},
		{"data", "database", false},
		{"", "", true},
		{"abc", "", true},
	}
	for _, c := range cases {
		if got := ContainsFold(c.hay, c.needle); got != c.want {
			t.Errorf("ContainsFold(%q, %q) = %v, want %v", c.hay, c.needle, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for ty, want := range map[Type]string{
		TypeString: "VARCHAR", TypeInt: "INTEGER", TypeFloat: "DECIMAL", TypeDate: "DATE",
	} {
		if ty.String() != want {
			t.Errorf("Type(%d).String() = %q, want %q", ty, ty.String(), want)
		}
	}
}
