package relation

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteCSV writes the table with a header row of attribute names.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.AttrNames()); err != nil {
		return err
	}
	row := make([]string, len(t.Schema.Attributes))
	for _, tu := range t.Tuples {
		for i, v := range tu {
			if Null(v) {
				row[i] = ""
			} else {
				row[i] = Format(v)
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads tuples from r into the table. The first record must be a
// header whose columns match the schema's attributes by name (any order).
func (t *Table) ReadCSV(r io.Reader) error {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("relation: reading CSV header for %s: %w", t.Schema.Name, err)
	}
	pos := make([]int, len(header))
	for i, h := range header {
		j := t.Schema.AttrIndex(h)
		if j < 0 {
			return fmt.Errorf("relation: %s has no attribute %q (CSV header)", t.Schema.Name, h)
		}
		pos[i] = j
	}
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("relation: reading CSV for %s: %w", t.Schema.Name, err)
		}
		tu := make(Tuple, len(t.Schema.Attributes))
		for i, f := range rec {
			v, cerr := Coerce(f, t.Schema.Attributes[pos[i]].Type)
			if cerr != nil {
				return cerr
			}
			tu[pos[i]] = v
		}
		if err := t.Insert(tu); err != nil {
			return err
		}
	}
}
