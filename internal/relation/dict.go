package relation

import (
	"strconv"
	"sync"
	"sync/atomic"
)

// NoID is the sentinel dictionary ID meaning "no such value"; it is returned
// by remapping tables for values absent from the target dictionary. Real IDs
// are dense from 0, so NoID can never collide with one.
const NoID = ^uint32(0)

// maxDictDepth bounds the delta-dictionary chain length (see Extend): a
// lookup walks at most this many layers, and an Extend that would exceed it
// flattens the chain back into a single layer first. Flattening costs
// O(distinct) but happens at most once per maxDictDepth epochs, so the
// amortized per-commit cost stays O(distinct/maxDictDepth).
const maxDictDepth = 8

// remapCacheMax bounds the number of remap tables cached per dictionary.
// Long-lived delta chains reuse base dictionaries across many epochs; without
// a cap every epoch's partner dictionaries would pin a translation table (and
// the partner itself) forever.
const remapCacheMax = 128

// Dict is a per-column value dictionary: every distinct stored value gets a
// dense uint32 ID. Distinctness is by the value's Format rendering — the same
// equality the executor's historical string-keyed hash paths used — so two
// values share an ID exactly when their formatted forms are equal (notably,
// SQL NULL shares an ID with the literal string "NULL", and int64(5) with
// "5"; callers that must distinguish them re-check the boxed value, exactly
// as the string-keyed paths did).
//
// A Dict is built while freezing a table and never mutated afterwards, so it
// is safe for unsynchronized concurrent readers.
//
// Dictionaries grow across live-ingest epochs as deltas: Extend returns a new
// Dict layering a private tail (IDs from base.Len() up) over the immutable
// base, so committing M new rows interns only their unseen values instead of
// re-encoding the whole column. ID assignment is identical to a from-scratch
// build of the full data — both intern in row order, and the base's IDs are a
// prefix by construction — which is what keeps delta-built epochs
// byte-identical to full freezes.
type Dict struct {
	base   *Dict             // previous layer, nil for a full build
	start  uint32            // first ID owned by this layer (== base.Len())
	depth  int               // layers below this one
	ids    map[string]uint32 // Format(v) -> id, this layer's tail only
	vals   []Value           // id start+i -> first value encoded with that id
	allStr bool              // every encoded value (all layers) was a string
	remaps sync.Map          // *Dict -> []uint32 translation tables (see RemapCached)
	remapN atomic.Int32      // cached remap tables, capped at remapCacheMax
}

func newDict() *Dict { return &Dict{ids: make(map[string]uint32), allStr: true} }

// Extend returns a new dictionary sharing this one as its immutable base:
// encode on the result interns unseen values into a private tail starting at
// d.Len(), leaving d untouched (old-epoch readers keep using it
// concurrently). When the layer chain would exceed maxDictDepth the base is
// flattened first, bounding lookup cost.
func (d *Dict) Extend() *Dict {
	base := d
	if d.depth >= maxDictDepth {
		base = d.flatten()
	}
	return &Dict{
		base:   base,
		start:  uint32(base.Len()),
		depth:  base.depth + 1,
		ids:    make(map[string]uint32),
		allStr: base.allStr,
	}
}

// flatten collapses the layer chain into a single fresh dictionary with the
// same ID assignment. Keys live in exactly one layer, so the maps merge
// without re-rendering any value.
func (d *Dict) flatten() *Dict {
	n := d.Len()
	nd := &Dict{ids: make(map[string]uint32, n), vals: make([]Value, n), allStr: d.allStr}
	for e := d; e != nil; e = e.base {
		copy(nd.vals[e.start:int(e.start)+len(e.vals)], e.vals)
		for k, id := range e.ids {
			nd.ids[k] = id
		}
	}
	return nd
}

// tailLen returns the number of values interned into this layer alone; a
// delta layer with an empty tail encoded nothing new, so callers may keep
// using the base dictionary (preserving pointer identity and its remap
// caches across epochs).
func (d *Dict) tailLen() int { return len(d.vals) }

// encode interns v and returns its ID, assigning the next dense ID to a
// formatted form not seen before (in this layer or any base layer).
func (d *Dict) encode(v Value) uint32 {
	if _, ok := v.(string); !ok {
		d.allStr = false
	}
	key := Format(v)
	for e := d; e != nil; e = e.base {
		if id, ok := e.ids[key]; ok {
			return id
		}
	}
	id := d.start + uint32(len(d.vals))
	d.ids[key] = id
	d.vals = append(d.vals, v)
	return id
}

// ID returns the dictionary ID of v, matching by Format rendering; ok is
// false when no stored value formats equally. The common constant types
// (string, int64) avoid allocating the rendering.
func (d *Dict) ID(v Value) (uint32, bool) {
	switch x := v.(type) {
	case string:
		for e := d; e != nil; e = e.base {
			if id, ok := e.ids[x]; ok {
				return id, true
			}
		}
		return 0, false
	case int64:
		var buf [20]byte
		b := strconv.AppendInt(buf[:0], x, 10)
		for e := d; e != nil; e = e.base {
			if id, ok := e.ids[string(b)]; ok {
				return id, true
			}
		}
		return 0, false
	}
	key := Format(v)
	for e := d; e != nil; e = e.base {
		if id, ok := e.ids[key]; ok {
			return id, true
		}
	}
	return 0, false
}

// Len returns the number of distinct (by Format) values in the dictionary,
// across all layers.
func (d *Dict) Len() int { return int(d.start) + len(d.vals) }

// Value decodes an ID back to a stored value: the first value that was
// encoded with that ID. IDs come from the same dictionary's encode/ID.
func (d *Dict) Value(id uint32) Value {
	e := d
	for e.base != nil && id < e.start {
		e = e.base
	}
	return e.vals[id-e.start]
}

// AllStrings reports whether every encoded value was a string. Kernels that
// evaluate a predicate once per dictionary entry instead of once per row
// (e.g. CONTAINS) require this: with mixed types one ID can cover values of
// different dynamic types, and the per-entry answer would be wrong for some
// of its rows.
func (d *Dict) AllStrings() bool { return d.allStr }

// Remap builds a translation table from this dictionary's ID space into
// to's: out[id] is the ID in to of the value this dictionary stores under
// id, or NoID when to has no value with that formatted form. Hash joins use
// it to probe a build table keyed in another column's ID space with O(1) per
// row after O(distinct) setup.
func (d *Dict) Remap(to *Dict) []uint32 {
	out := make([]uint32, d.Len())
	for e := d; e != nil; e = e.base {
		for i, v := range e.vals {
			tid, ok := to.ID(v)
			if !ok {
				tid = NoID
			}
			out[int(e.start)+i] = tid
		}
	}
	return out
}

// RemapCached is Remap with the translation table cached on d per target
// dictionary. Frozen dictionaries are immutable, so a table computed once is
// valid forever; joins between the same column pair — the common case across
// a keyword query's top-k interpretations — pay the O(distinct) build once.
// Safe for concurrent use; a duplicated build is benign. The cache is capped
// (base dictionaries outlive many epochs' partners); past the cap the table
// is computed uncached.
func (d *Dict) RemapCached(to *Dict) []uint32 {
	if v, ok := d.remaps.Load(to); ok {
		return v.([]uint32)
	}
	if d.remapN.Load() >= remapCacheMax {
		return d.Remap(to)
	}
	m, loaded := d.remaps.LoadOrStore(to, d.Remap(to))
	if !loaded {
		d.remapN.Add(1)
	}
	return m.([]uint32)
}
