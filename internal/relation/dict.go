package relation

import (
	"strconv"
	"sync"
)

// NoID is the sentinel dictionary ID meaning "no such value"; it is returned
// by remapping tables for values absent from the target dictionary. Real IDs
// are dense from 0, so NoID can never collide with one.
const NoID = ^uint32(0)

// Dict is a per-column value dictionary: every distinct stored value gets a
// dense uint32 ID. Distinctness is by the value's Format rendering — the same
// equality the executor's historical string-keyed hash paths used — so two
// values share an ID exactly when their formatted forms are equal (notably,
// SQL NULL shares an ID with the literal string "NULL", and int64(5) with
// "5"; callers that must distinguish them re-check the boxed value, exactly
// as the string-keyed paths did).
//
// A Dict is built while freezing a table and never mutated afterwards, so it
// is safe for unsynchronized concurrent readers.
type Dict struct {
	ids    map[string]uint32 // Format(v) -> id
	vals   []Value           // id -> first value encoded with that id
	allStr bool              // every encoded value was a string
	remaps sync.Map          // *Dict -> []uint32 translation tables (see RemapCached)
}

func newDict() *Dict { return &Dict{ids: make(map[string]uint32), allStr: true} }

// encode interns v and returns its ID, assigning the next dense ID to a
// formatted form not seen before.
func (d *Dict) encode(v Value) uint32 {
	if _, ok := v.(string); !ok {
		d.allStr = false
	}
	key := Format(v)
	if id, ok := d.ids[key]; ok {
		return id
	}
	id := uint32(len(d.vals))
	d.ids[key] = id
	d.vals = append(d.vals, v)
	return id
}

// ID returns the dictionary ID of v, matching by Format rendering; ok is
// false when no stored value formats equally. The common constant types
// (string, int64) avoid allocating the rendering.
func (d *Dict) ID(v Value) (uint32, bool) {
	switch x := v.(type) {
	case string:
		id, ok := d.ids[x]
		return id, ok
	case int64:
		var buf [20]byte
		id, ok := d.ids[string(strconv.AppendInt(buf[:0], x, 10))]
		return id, ok
	}
	id, ok := d.ids[Format(v)]
	return id, ok
}

// Len returns the number of distinct (by Format) values in the dictionary.
func (d *Dict) Len() int { return len(d.vals) }

// Value decodes an ID back to a stored value: the first value that was
// encoded with that ID. IDs come from the same dictionary's encode/ID.
func (d *Dict) Value(id uint32) Value { return d.vals[id] }

// AllStrings reports whether every encoded value was a string. Kernels that
// evaluate a predicate once per dictionary entry instead of once per row
// (e.g. CONTAINS) require this: with mixed types one ID can cover values of
// different dynamic types, and the per-entry answer would be wrong for some
// of its rows.
func (d *Dict) AllStrings() bool { return d.allStr }

// Remap builds a translation table from this dictionary's ID space into
// to's: out[id] is the ID in to of the value this dictionary stores under
// id, or NoID when to has no value with that formatted form. Hash joins use
// it to probe a build table keyed in another column's ID space with O(1) per
// row after O(distinct) setup.
func (d *Dict) Remap(to *Dict) []uint32 {
	out := make([]uint32, len(d.vals))
	for id, v := range d.vals {
		tid, ok := to.ID(v)
		if !ok {
			tid = NoID
		}
		out[id] = tid
	}
	return out
}

// RemapCached is Remap with the translation table cached on d per target
// dictionary. Frozen dictionaries are immutable, so a table computed once is
// valid forever; joins between the same column pair — the common case across
// a keyword query's top-k interpretations — pay the O(distinct) build once.
// Safe for concurrent use; a duplicated build is benign.
func (d *Dict) RemapCached(to *Dict) []uint32 {
	if v, ok := d.remaps.Load(to); ok {
		return v.([]uint32)
	}
	m, _ := d.remaps.LoadOrStore(to, d.Remap(to))
	return m.([]uint32)
}
