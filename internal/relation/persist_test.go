package relation

import (
	"os"
	"path/filepath"
	"testing"
)

func persistSample() *Database {
	db := NewDatabase("uni")
	st := db.AddSchema(NewSchema("Student", "Sid", "Sname", "Age INT").Key("Sid"))
	st.MustInsert("s1", "George", int64(22))
	st.MustInsert("s2", "Green", int64(24))
	co := db.AddSchema(NewSchema("Course", "Code", "Credit FLOAT").Key("Code"))
	co.MustInsert("c1", 5.0)
	en := db.AddSchema(NewSchema("Enrol", "Sid", "Code").Key("Sid", "Code").
		Ref([]string{"Sid"}, "Student").
		Ref([]string{"Code"}, "Course").
		Dep([]string{"Sid"}, "Code"))
	en.MustInsert("s1", "c1")
	return db
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := persistSample()
	if err := SaveDir(db, dir); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "uni" {
		t.Errorf("name: %q", back.Name)
	}
	if len(back.Tables()) != 3 {
		t.Fatalf("tables: %d", len(back.Tables()))
	}
	for _, orig := range db.Tables() {
		got := back.Table(orig.Schema.Name)
		if got == nil {
			t.Fatalf("missing relation %s", orig.Schema.Name)
		}
		if got.Schema.String() != orig.Schema.String() {
			t.Errorf("schema differs: %s vs %s", got.Schema, orig.Schema)
		}
		if len(got.Schema.ForeignKeys) != len(orig.Schema.ForeignKeys) {
			t.Errorf("%s: FK count differs", orig.Schema.Name)
		}
		if len(got.Schema.FDs) != len(orig.Schema.FDs) {
			t.Errorf("%s: FD count differs", orig.Schema.Name)
		}
		if got.Len() != orig.Len() {
			t.Fatalf("%s: row count %d vs %d", orig.Schema.Name, got.Len(), orig.Len())
		}
		for i := range orig.Tuples {
			for j := range orig.Tuples[i] {
				if !Equal(got.Tuples[i][j], orig.Tuples[i][j]) {
					t.Errorf("%s row %d col %d: %v vs %v",
						orig.Schema.Name, i, j, got.Tuples[i][j], orig.Tuples[i][j])
				}
			}
		}
	}
	// Types survive: Age is int64 again, Credit float64.
	if _, ok := back.Table("Student").Tuples[0][2].(int64); !ok {
		t.Error("INT type lost in round trip")
	}
	if _, ok := back.Table("Course").Tuples[0][1].(float64); !ok {
		t.Error("FLOAT type lost in round trip")
	}
}

func TestLoadDirMissingCatalog(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("missing schema.json should fail")
	}
}

func TestLoadDirBadCatalog(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "schema.json"), []byte("{not json"), 0o644)
	if _, err := LoadDir(dir); err == nil {
		t.Error("malformed schema.json should fail")
	}
}

func TestLoadDirEmptyRelation(t *testing.T) {
	dir := t.TempDir()
	db := NewDatabase("x")
	db.AddSchema(NewSchema("T", "a").Key("a"))
	if err := SaveDir(db, dir); err != nil {
		t.Fatal(err)
	}
	// Remove the CSV: the relation should load empty.
	os.Remove(filepath.Join(dir, "t.csv"))
	back, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Table("T").Len() != 0 {
		t.Error("relation without CSV should be empty")
	}
}

func TestLoadDirValidates(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "schema.json"), []byte(`{
		"name": "bad",
		"relations": [{"name": "T", "columns": ["a"], "primary_key": ["missing"]}]
	}`), 0o644)
	if _, err := LoadDir(dir); err == nil {
		t.Error("invalid loaded schema should fail validation")
	}
}
