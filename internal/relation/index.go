package relation

import (
	"strings"
	"sync/atomic"
	"unicode"
)

// InvertedIndex maps lower-cased tokens to their occurrences in string-typed
// attribute values across a database. It answers the question "which
// relations / attributes / tuples does keyword t match?" (term matching,
// Section 2 of the paper).
type InvertedIndex struct {
	postings map[string][]Posting

	// claimed is a one-shot claim on the spare capacity of this index's
	// posting slices, same discipline as Table.tailClaimed: the first
	// AppendRows may extend buckets in place (addresses beyond their
	// lengths, which readers of this epoch never touch); any later call
	// sees the claim taken and copies instead.
	claimed atomic.Bool
}

// Posting is one occurrence of a token: the value of attribute Attr in row
// Row of relation Relation contains the token.
type Posting struct {
	Relation string
	Attr     string
	Row      int
}

// Tokenize splits s into lower-cased alphanumeric tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// BuildIndex scans every string-typed attribute of every table in db and
// builds the inverted index over their tokens.
func BuildIndex(db *Database) *InvertedIndex {
	idx := &InvertedIndex{postings: make(map[string][]Posting)}
	for _, t := range db.Tables() {
		for j, a := range t.Schema.Attributes {
			if a.Type != TypeString && a.Type != TypeDate {
				continue
			}
			for i, tu := range t.Tuples {
				s, ok := tu[j].(string)
				if !ok {
					continue
				}
				seen := make(map[string]bool)
				for _, tok := range Tokenize(s) {
					if seen[tok] {
						continue
					}
					seen[tok] = true
					idx.postings[tok] = append(idx.postings[tok], Posting{
						Relation: t.Schema.Name, Attr: a.Name, Row: i,
					})
				}
			}
		}
	}
	return idx
}

// AppendRows builds the next epoch's inverted index from this one plus only
// the rows appended since it was built: idx must equal BuildIndex over the
// prefix of db holding the first from[lower-cased table name] rows of each
// table, and the result equals BuildIndex(db) — same postings, same order.
// Untouched posting lists are shared by reference (the map itself is copied,
// O(vocabulary) slice headers); a token gaining occurrences gets an extended
// list, so old-epoch readers never observe a mutation. Because appended rows
// carry higher row ids than every existing row, a touched token's fresh
// postings almost always sort entirely after its old ones — that common case
// is a tail append, in place under the index's one-shot capacity claim
// (O(new postings) amortized) or into a copy when the claim is taken. Only a
// token that also occurs in a table or attribute ranked later than the fresh
// rows' needs the element-wise splice merge. Returns the number of touched
// posting lists; when no new row contains any token the index itself is
// returned.
func (idx *InvertedIndex) AppendRows(db *Database, from map[string]int) (*InvertedIndex, int) {
	fresh := make(map[string][]Posting)
	for _, t := range db.Tables() {
		lo := from[strings.ToLower(t.Schema.Name)]
		for j, a := range t.Schema.Attributes {
			if a.Type != TypeString && a.Type != TypeDate {
				continue
			}
			for i := lo; i < len(t.Tuples); i++ {
				s, ok := t.Tuples[i][j].(string)
				if !ok {
					continue
				}
				seen := make(map[string]bool)
				for _, tok := range Tokenize(s) {
					if seen[tok] {
						continue
					}
					seen[tok] = true
					fresh[tok] = append(fresh[tok], Posting{
						Relation: t.Schema.Name, Attr: a.Name, Row: i,
					})
				}
			}
		}
	}
	if len(fresh) == 0 {
		return idx, 0
	}
	// BuildIndex emits postings in (table registration order, attribute
	// order, row order); both the old and the fresh lists follow it, so a
	// rank-keyed merge reproduces the full rebuild's order exactly.
	tableRank := make(map[string]int)
	attrRank := make(map[string]int)
	for ti, t := range db.Tables() {
		key := strings.ToLower(t.Schema.Name)
		tableRank[key] = ti
		for j, a := range t.Schema.Attributes {
			attrRank[key+"\x00"+a.Name] = j
		}
	}
	rank := func(p Posting) (int, int) {
		key := strings.ToLower(p.Relation)
		return tableRank[key], attrRank[key+"\x00"+p.Attr]
	}
	less := func(p, q Posting) bool {
		tp, ap := rank(p)
		tq, aq := rank(q)
		return tp < tq || (tp == tq && (ap < aq || (ap == aq && p.Row < q.Row)))
	}
	claim := idx.claimed.CompareAndSwap(false, true)
	out := &InvertedIndex{postings: make(map[string][]Posting, len(idx.postings)+len(fresh))}
	for tok, ps := range idx.postings {
		out.postings[tok] = ps
	}
	for tok, news := range fresh {
		old := out.postings[tok]
		switch {
		case len(old) == 0:
			out.postings[tok] = news
		case less(old[len(old)-1], news[0]):
			// Every fresh posting sorts after the old tail (row ids of
			// appended rows exceed all existing ones, and equal full keys
			// are impossible). Extend in place when this call owns the
			// claim; otherwise leave old's spare capacity alone.
			if claim {
				out.postings[tok] = append(old, news...)
			} else {
				out.postings[tok] = append(old[:len(old):len(old)], news...)
			}
		default:
			merged := make([]Posting, 0, len(old)+len(news))
			i, j := 0, 0
			for i < len(old) && j < len(news) {
				if less(old[i], news[j]) {
					merged = append(merged, old[i])
					i++
				} else {
					merged = append(merged, news[j])
					j++
				}
			}
			merged = append(merged, old[i:]...)
			merged = append(merged, news[j:]...)
			out.postings[tok] = merged
		}
	}
	return out, len(fresh)
}

// LookupToken returns the postings of a single token.
func (idx *InvertedIndex) LookupToken(tok string) []Posting {
	return idx.postings[strings.ToLower(tok)]
}

// LookupPhrase returns the postings of values that contain the whole phrase:
// the postings of the phrase's first token filtered by a substring check of
// the complete phrase against the stored value. db supplies the values.
func (idx *InvertedIndex) LookupPhrase(db *Database, phrase string) []Posting {
	toks := Tokenize(phrase)
	if len(toks) == 0 {
		return nil
	}
	var out []Posting
	for _, p := range idx.postings[toks[0]] {
		t := db.Table(p.Relation)
		if t == nil {
			continue
		}
		s, ok := t.Value(p.Row, p.Attr).(string)
		if ok && ContainsFold(s, phrase) {
			out = append(out, p)
		}
	}
	return out
}

// Vocabulary returns the number of distinct tokens indexed.
func (idx *InvertedIndex) Vocabulary() int { return len(idx.postings) }
