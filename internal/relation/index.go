package relation

import (
	"strings"
	"unicode"
)

// InvertedIndex maps lower-cased tokens to their occurrences in string-typed
// attribute values across a database. It answers the question "which
// relations / attributes / tuples does keyword t match?" (term matching,
// Section 2 of the paper).
type InvertedIndex struct {
	postings map[string][]Posting
}

// Posting is one occurrence of a token: the value of attribute Attr in row
// Row of relation Relation contains the token.
type Posting struct {
	Relation string
	Attr     string
	Row      int
}

// Tokenize splits s into lower-cased alphanumeric tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// BuildIndex scans every string-typed attribute of every table in db and
// builds the inverted index over their tokens.
func BuildIndex(db *Database) *InvertedIndex {
	idx := &InvertedIndex{postings: make(map[string][]Posting)}
	for _, t := range db.Tables() {
		for j, a := range t.Schema.Attributes {
			if a.Type != TypeString && a.Type != TypeDate {
				continue
			}
			for i, tu := range t.Tuples {
				s, ok := tu[j].(string)
				if !ok {
					continue
				}
				seen := make(map[string]bool)
				for _, tok := range Tokenize(s) {
					if seen[tok] {
						continue
					}
					seen[tok] = true
					idx.postings[tok] = append(idx.postings[tok], Posting{
						Relation: t.Schema.Name, Attr: a.Name, Row: i,
					})
				}
			}
		}
	}
	return idx
}

// LookupToken returns the postings of a single token.
func (idx *InvertedIndex) LookupToken(tok string) []Posting {
	return idx.postings[strings.ToLower(tok)]
}

// LookupPhrase returns the postings of values that contain the whole phrase:
// the postings of the phrase's first token filtered by a substring check of
// the complete phrase against the stored value. db supplies the values.
func (idx *InvertedIndex) LookupPhrase(db *Database, phrase string) []Posting {
	toks := Tokenize(phrase)
	if len(toks) == 0 {
		return nil
	}
	var out []Posting
	for _, p := range idx.postings[toks[0]] {
		t := db.Table(p.Relation)
		if t == nil {
			continue
		}
		s, ok := t.Value(p.Row, p.Attr).(string)
		if ok && ContainsFold(s, phrase) {
			out = append(out, p)
		}
	}
	return out
}

// Vocabulary returns the number of distinct tokens indexed.
func (idx *InvertedIndex) Vocabulary() int { return len(idx.postings) }
