package relation

// Column-major view of a frozen table's dictionary encoding. The row-major
// enc array (see Table.Freeze) is the executor's tuple-at-a-time layout; the
// batch kernels instead want each attribute's IDs contiguous so a 1024-ID
// block is one cache-friendly sweep. Freeze builds both: the transpose costs
// one pass over the encoded tuples and is immutable afterwards, so ColData is
// shared by unsynchronized concurrent readers exactly like the dictionaries.

// BlockSize is the number of rows a batch kernel processes per inner loop:
// 1024 IDs (4 KiB) fit comfortably in L1 alongside a selection vector, and it
// equals rowCheckInterval in the executor so per-block cancellation polls
// keep the same responsiveness as the per-row amortized checks. A multiple of
// 64 so block boundaries are word-aligned in the null and selection bitsets.
const BlockSize = 1024

// Blocks returns how many BlockSize blocks cover n rows (the last one may be
// partial).
func Blocks(n int) int { return (n + BlockSize - 1) / BlockSize }

// ColData is one attribute's dictionary IDs stored contiguously, with an
// optional null bitset. IDs[i] is the ID of row i's value — the same ID the
// row-major encoding stores, so either layout can verify the other.
type ColData struct {
	// IDs holds the column's dictionary IDs, one per row, contiguous.
	IDs []uint32
	// Nulls marks the rows whose boxed value is SQL NULL, bit i at
	// Nulls[i/64]>>(i%64). It is nil when the column has no NULLs at all —
	// the common case, letting kernels skip null masking entirely. The
	// bitset exists because NULL shares its dictionary ID with the literal
	// string "NULL" (Format equality), so the IDs alone cannot separate
	// them.
	Nulls []uint64
}

// Len returns the number of rows.
func (c *ColData) Len() int { return len(c.IDs) }

// Block returns the b'th BlockSize slice of IDs; the last block is short when
// the row count is not a multiple of BlockSize.
func (c *ColData) Block(b int) []uint32 {
	lo := b * BlockSize
	hi := lo + BlockSize
	if hi > len(c.IDs) {
		hi = len(c.IDs)
	}
	return c.IDs[lo:hi]
}

// Null reports whether row i's value is SQL NULL.
func (c *ColData) Null(i int) bool {
	if c.Nulls == nil {
		return false
	}
	return c.Nulls[i>>6]>>(uint(i)&63)&1 != 0
}

// NullWord returns the w'th 64-row word of the null bitset (zero when the
// column has no NULLs). Block boundaries are word-aligned, so a kernel
// clearing null rows from a block's selection bitset works word-by-word.
func (c *ColData) NullWord(w int) uint64 {
	if c.Nulls == nil {
		return 0
	}
	return c.Nulls[w]
}
