package relation

import (
	"strings"
	"testing"
)

func validDB() *Database {
	db := NewDatabase("v")
	db.AddSchema(NewSchema("Student", "Sid", "Sname").Key("Sid"))
	db.AddSchema(NewSchema("Enrol", "Sid", "Code").Key("Sid", "Code").
		Ref([]string{"Sid"}, "Student"))
	return db
}

func TestValidateDatabaseOK(t *testing.T) {
	if errs := ValidateDatabase(validDB()); len(errs) != 0 {
		t.Errorf("valid schema rejected: %v", errs)
	}
}

func expectError(t *testing.T, errs []error, frag string) {
	t.Helper()
	for _, e := range errs {
		if strings.Contains(e.Error(), frag) {
			return
		}
	}
	t.Errorf("no error containing %q in %v", frag, errs)
}

func TestValidateMissingKeyAttr(t *testing.T) {
	db := NewDatabase("v")
	db.AddSchema(NewSchema("T", "a").Key("nosuch"))
	expectError(t, ValidateDatabase(db), "key attribute")
}

func TestValidateDuplicateAttr(t *testing.T) {
	db := NewDatabase("v")
	db.AddSchema(NewSchema("T", "a", "A").Key("a"))
	expectError(t, ValidateDatabase(db), "duplicate attribute")
}

func TestValidateUnknownFKTarget(t *testing.T) {
	db := NewDatabase("v")
	db.AddSchema(NewSchema("T", "a").Key("a").Ref([]string{"a"}, "Missing"))
	expectError(t, ValidateDatabase(db), "unknown relation")
}

func TestValidateFKArity(t *testing.T) {
	db := validDB()
	s := db.Table("Enrol").Schema
	s.ForeignKeys = append(s.ForeignKeys, ForeignKey{
		Attrs: []string{"Sid", "Code"}, RefRelation: "Student", RefAttrs: []string{"Sid"},
	})
	expectError(t, ValidateDatabase(db), "mismatched arity")
}

func TestValidateFKMissingAttrs(t *testing.T) {
	db := NewDatabase("v")
	db.AddSchema(NewSchema("Student", "Sid").Key("Sid"))
	db.AddSchema(NewSchema("T", "x").Key("x").
		Ref([]string{"nosuch"}, "Student", "Sid"))
	expectError(t, ValidateDatabase(db), "does not exist")
	db2 := NewDatabase("v")
	db2.AddSchema(NewSchema("Student", "Sid").Key("Sid"))
	db2.AddSchema(NewSchema("T", "x").Key("x").
		Ref([]string{"x"}, "Student", "nosuch"))
	expectError(t, ValidateDatabase(db2), "missing attribute")
}

func TestValidateFDAttrs(t *testing.T) {
	db := NewDatabase("v")
	db.AddSchema(NewSchema("T", "a", "b").Key("a").Dep([]string{"a"}, "nosuch"))
	expectError(t, ValidateDatabase(db), "FD")
}

func TestValidateDataKeyUniqueness(t *testing.T) {
	db := validDB()
	st := db.Table("Student")
	st.MustInsert("s1", "A")
	st.MustInsert("s1", "B")
	expectError(t, ValidateData(db), "duplicate key")
}

func TestValidateDataDanglingFK(t *testing.T) {
	db := validDB()
	db.Table("Student").MustInsert("s1", "A")
	db.Table("Enrol").MustInsert("s2", "c1") // s2 does not exist
	expectError(t, ValidateData(db), "dangling")
}

func TestValidateDataOK(t *testing.T) {
	db := validDB()
	db.Table("Student").MustInsert("s1", "A")
	db.Table("Enrol").MustInsert("s1", "c1")
	if errs := ValidateData(db); len(errs) != 0 {
		t.Errorf("valid data rejected: %v", errs)
	}
}
