// Incremental freeze: ExtendFrozen/ExtendFrozenDatabase build the next
// epoch's frozen tables from the previous epoch's plus only the new rows, in
// O(new rows + touched index entries + per-epoch slice headers) instead of
// the O(total rows) a from-scratch Freeze costs.
//
// The construction leans on three invariants the frozen layout already has:
//
//   - Dictionary-ID prefix stability: a full freeze interns values in row
//     order, so the base's dictionary is exactly the prefix of the full
//     data's dictionary. Dict.Extend layers a private tail over the
//     immutable base, and encoding only the new rows assigns the very same
//     IDs a full re-freeze would.
//   - Append-only row order: new rows get row ids beyond the base's, so
//     every value-index posting list and every column stays sorted/aligned
//     by appending — full 1024-row ColData blocks from the previous epoch
//     are carried by reference and only the partial tail block plus new
//     blocks change.
//   - Immutability of published epochs: old-epoch readers never look past
//     their own slice lengths, so spare capacity beyond them is writable by
//     exactly one successor. A one-shot claim (Table.tailClaimed) grants
//     that ownership to the first delta built from a base; a second delta
//     from the same base (a branch) falls back to copy-on-write, and shared
//     NULL-bitset tail words are always copied (the whole bitset is
//     re-materialized, O(rows/64)).
//
// The result is byte-identical — dictionaries, row-major encoding, column
// blocks, null bitsets and postings — to NewTable+AppendShared+Freeze over
// the same data; the differential suites pin this.
package relation

import (
	"fmt"
	"strings"
)

// DeltaStats summarizes what one incremental freeze reused versus rebuilt;
// core.Live feeds them into the kwagg_epoch_* metrics.
type DeltaStats struct {
	// NewRows is the number of appended tuples, summed over tables.
	NewRows int
	// ReusedBlocks counts per-column ColData blocks carried from the
	// previous epoch by reference (including every block of tables that had
	// no new rows and were shared whole).
	ReusedBlocks int
	// CopiedBlocks counts per-column blocks that had to be re-materialized
	// because the base's backing capacity was exhausted or already claimed.
	CopiedBlocks int
	// NewDictEntries counts values interned into dictionary tails.
	NewDictEntries int
	// TouchedPostings counts value-index posting lists that received new
	// row ids.
	TouchedPostings int
	// SharedTables counts tables carried into the new epoch untouched.
	SharedTables int
}

func (s *DeltaStats) add(o DeltaStats) {
	s.NewRows += o.NewRows
	s.ReusedBlocks += o.ReusedBlocks
	s.CopiedBlocks += o.CopiedBlocks
	s.NewDictEntries += o.NewDictEntries
	s.TouchedPostings += o.TouchedPostings
	s.SharedTables += o.SharedTables
}

// ExtendFrozenDatabase builds the next epoch's database from a frozen base
// plus per-table new rows (keyed by lower-cased table name, in ingest
// order). Tables without new rows are shared by pointer; the rest are
// extended via ExtendFrozen. The base is never modified in a way its
// concurrent readers can observe. Unknown table names error.
func ExtendFrozenDatabase(base *Database, rows map[string][]Tuple) (*Database, DeltaStats, error) {
	var stats DeltaStats
	for name := range rows {
		if base.Table(name) == nil {
			return nil, stats, fmt.Errorf("relation: extend: unknown table %q", name)
		}
	}
	next := NewDatabase(base.Name)
	for _, t := range base.Tables() {
		nt, st, err := ExtendFrozen(t, rows[strings.ToLower(t.Schema.Name)])
		if err != nil {
			return nil, stats, err
		}
		stats.add(st)
		next.Add(nt)
	}
	return next, stats, nil
}

// ExtendFrozen builds a frozen table holding base's rows followed by add,
// reusing base's dictionaries, column blocks and postings wherever possible
// (see the package comment for the cost model and the safety argument). With
// no new rows it returns base itself. The result is frozen from birth and
// shares base's Schema; base must already be frozen.
func ExtendFrozen(base *Table, add []Tuple) (*Table, DeltaStats, error) {
	var stats DeltaStats
	if !base.frozen {
		return nil, stats, fmt.Errorf("relation: extend: %s is not frozen", base.Schema.Name)
	}
	ncols := len(base.Schema.Attributes)
	for _, tu := range add {
		if len(tu) != ncols {
			return nil, stats, fmt.Errorf("relation: %s expects %d values, got %d",
				base.Schema.Name, ncols, len(tu))
		}
	}
	n0 := len(base.Tuples)
	if len(add) == 0 {
		stats.ReusedBlocks += Blocks(n0) * ncols
		stats.SharedTables++
		return base, stats, nil
	}
	stats.NewRows = len(add)
	n1 := n0 + len(add)

	// One-shot ownership of base's spare capacity: on success this delta may
	// extend base's backing arrays in place past their lengths; otherwise
	// (a sibling delta got there first) every touched slice is copied.
	claim := base.tailClaimed.CompareAndSwap(false, true)

	nt := &Table{Schema: base.Schema, frozen: true}
	nt.Tuples = extendTuples(base.Tuples, add, claim)

	// Dictionaries: encode only the new rows into private tails. A column
	// whose tail stays empty keeps the base dictionary itself, preserving
	// pointer identity (and its cached remap tables) across epochs.
	tails := make([]*Dict, ncols)
	for j := range tails {
		tails[j] = base.dicts[j].Extend()
	}
	newEnc := make([]uint32, len(add)*ncols)
	for i, tu := range add {
		for j, v := range tu {
			newEnc[i*ncols+j] = tails[j].encode(v)
		}
	}
	nt.dicts = make([]*Dict, ncols)
	for j, d := range tails {
		if d.tailLen() == 0 {
			nt.dicts[j] = base.dicts[j]
		} else {
			nt.dicts[j] = d
			stats.NewDictEntries += d.tailLen()
		}
	}

	// Row-major encoding: the base's array is a prefix of the new one.
	nt.enc, _ = extendU32(base.enc, newEnc, claim)

	// Column blocks: full blocks from the base are reused by reference when
	// the claim lets us extend in place; otherwise the column is copied once
	// into a private array with headroom, so the *next* epoch extends in
	// place again. NULL bitsets are always re-materialized whole — the tail
	// word is shared with old-epoch readers — at O(rows/64).
	nt.cols = make([]ColData, ncols)
	for j := 0; j < ncols; j++ {
		colNew := make([]uint32, len(add))
		for i := range add {
			colNew[i] = newEnc[i*ncols+j]
		}
		ids, shared := extendU32(base.cols[j].IDs, colNew, claim)
		nt.cols[j].IDs = ids
		if shared {
			stats.ReusedBlocks += Blocks(n0)
		} else {
			stats.CopiedBlocks += Blocks(n0)
		}
		nt.cols[j].Nulls = extendNulls(base.cols[j].Nulls, add, j, n0, n1)
	}

	// Value indexes: the outer per-ID table is copied (slice headers only,
	// O(distinct)); untouched posting lists are shared, touched ones are
	// extended in place under the claim or copied on first touch. New row
	// ids exceed all old ones, so appending keeps every list ascending.
	nt.post = make([][][]int, ncols)
	for j := 0; j < ncols; j++ {
		basePost := base.post[j]
		p := make([][]int, nt.dicts[j].Len())
		copy(p, basePost)
		for i := range add {
			id := newEnc[i*ncols+j]
			origLen := 0
			if int(id) < len(basePost) {
				origLen = len(basePost[id])
			}
			if len(p[id]) == origLen {
				stats.TouchedPostings++
			}
			if claim || len(p[id]) != origLen {
				p[id] = append(p[id], n0+i)
			} else {
				b := p[id]
				p[id] = append(b[:len(b):len(b)], n0+i)
			}
		}
		nt.post[j] = p
	}
	return nt, stats, nil
}

// growCap picks the capacity for a copied backing array: enough headroom
// that subsequent same-sized commits extend in place instead of copying
// again (amortized O(new rows) per commit).
func growCap(n int) int { return n + n/4 + BlockSize }

// extendU32 returns a slice holding old followed by add. Under claim and
// with spare capacity it extends old's backing in place (shared=true: the
// prefix is carried by reference); otherwise it copies into a private array
// with headroom.
func extendU32(old []uint32, add []uint32, claim bool) (out []uint32, shared bool) {
	n0, n1 := len(old), len(old)+len(add)
	if claim && cap(old) >= n1 {
		out = old[:n1]
		copy(out[n0:], add)
		return out, true
	}
	out = make([]uint32, n1, growCap(n1))
	copy(out, old)
	copy(out[n0:], add)
	return out, false
}

// extendTuples is extendU32 for the boxed tuple headers.
func extendTuples(old []Tuple, add []Tuple, claim bool) []Tuple {
	n0, n1 := len(old), len(old)+len(add)
	if claim && cap(old) >= n1 {
		out := old[:n1]
		copy(out[n0:], add)
		return out
	}
	out := make([]Tuple, n1, growCap(n1))
	copy(out, old)
	copy(out[n0:], add)
	return out
}

// extendNulls re-materializes column j's null bitset for n1 rows: the base
// words are copied (the tail word may be shared with old-epoch readers, so
// no in-place growth) and the new rows' bits are set. Returns nil when
// neither the base nor the new rows have any NULLs, preserving the
// "no bitset at all" fast path.
func extendNulls(old []uint64, add []Tuple, j, n0, n1 int) []uint64 {
	anyNew := false
	for _, tu := range add {
		if Null(tu[j]) {
			anyNew = true
			break
		}
	}
	if old == nil && !anyNew {
		return nil
	}
	out := make([]uint64, (n1+63)/64)
	copy(out, old)
	for i, tu := range add {
		if Null(tu[j]) {
			r := n0 + i
			out[r>>6] |= 1 << (uint(r) & 63)
		}
	}
	return out
}
