package relation

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// deltaSchema covers every attribute type plus a NULL-capable float and a
// string column that can store the literal "NULL" (Format-colliding with SQL
// NULL, so the bitsets matter).
func deltaSchema() *Schema {
	return NewSchema("Item", "Iid INT", "Name", "Cat", "Price FLOAT").Key("Iid")
}

// deltaRow builds row i deterministically: repeating categories, a shared
// token plus per-row tokens in Name, periodic NULL prices and the literal
// string "NULL" in Name.
func deltaRow(i int) Tuple {
	var price Value = float64(i%7) + 0.5
	if i%9 == 0 {
		price = nil
	}
	name := fmt.Sprintf("item %d alpha%d", i, i%13)
	if i%11 == 0 {
		name = "NULL"
	}
	return Tuple{int64(i), name, fmt.Sprintf("cat%d", i%3), price}
}

func deltaRows(lo, hi int) []Tuple {
	out := make([]Tuple, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, deltaRow(i))
	}
	return out
}

// fullFreeze builds the reference table the slow way: all rows from scratch.
func fullFreeze(t *testing.T, s *Schema, batches ...[]Tuple) *Table {
	t.Helper()
	nt := NewTable(s.Clone())
	if err := nt.AppendShared(batches...); err != nil {
		t.Fatalf("AppendShared: %v", err)
	}
	nt.Freeze()
	return nt
}

// requireTableEqual asserts the delta-built table is indistinguishable from
// the full freeze: tuples, dictionaries (IDs and values), row-major
// encoding, column blocks, null bitsets and value-index postings.
func requireTableEqual(t *testing.T, got, want *Table) {
	t.Helper()
	if !got.Frozen() {
		t.Fatal("delta table is not frozen")
	}
	if got.Len() != want.Len() {
		t.Fatalf("rows: got %d, want %d", got.Len(), want.Len())
	}
	ncols := len(want.Schema.Attributes)
	for i := range want.Tuples {
		for j := 0; j < ncols; j++ {
			if Format(got.Tuples[i][j]) != Format(want.Tuples[i][j]) {
				t.Fatalf("tuple %d col %d: got %v, want %v", i, j, got.Tuples[i][j], want.Tuples[i][j])
			}
		}
	}
	if len(got.enc) != len(want.enc) {
		t.Fatalf("enc length: got %d, want %d", len(got.enc), len(want.enc))
	}
	for k := range want.enc {
		if got.enc[k] != want.enc[k] {
			t.Fatalf("enc[%d]: got %d, want %d", k, got.enc[k], want.enc[k])
		}
	}
	for j := 0; j < ncols; j++ {
		gd, wd := got.dicts[j], want.dicts[j]
		if gd.Len() != wd.Len() {
			t.Fatalf("dict %d: got %d entries, want %d", j, gd.Len(), wd.Len())
		}
		if gd.AllStrings() != wd.AllStrings() {
			t.Fatalf("dict %d AllStrings: got %v, want %v", j, gd.AllStrings(), wd.AllStrings())
		}
		for id := 0; id < wd.Len(); id++ {
			if Format(gd.Value(uint32(id))) != Format(wd.Value(uint32(id))) {
				t.Fatalf("dict %d id %d: got %v, want %v", j, id, gd.Value(uint32(id)), wd.Value(uint32(id)))
			}
			if gid, ok := gd.ID(wd.Value(uint32(id))); !ok || gid != uint32(id) {
				t.Fatalf("dict %d reverse lookup of %v: got (%d,%v), want (%d,true)",
					j, wd.Value(uint32(id)), gid, ok, id)
			}
		}
		gc, wc := got.Col(j), want.Col(j)
		if !reflect.DeepEqual(gc.IDs, wc.IDs) {
			t.Fatalf("col %d IDs differ", j)
		}
		if (gc.Nulls == nil) != (wc.Nulls == nil) {
			t.Fatalf("col %d null bitset presence: got %v, want %v", j, gc.Nulls != nil, wc.Nulls != nil)
		}
		for i := 0; i < want.Len(); i++ {
			if gc.Null(i) != wc.Null(i) {
				t.Fatalf("col %d row %d null: got %v, want %v", j, i, gc.Null(i), wc.Null(i))
			}
		}
		if len(got.post[j]) != len(want.post[j]) {
			t.Fatalf("post %d: got %d lists, want %d", j, len(got.post[j]), len(want.post[j]))
		}
		for id := range want.post[j] {
			if !reflect.DeepEqual(got.post[j][id], want.post[j][id]) {
				t.Fatalf("post %d id %d: got %v, want %v", j, id, got.post[j][id], want.post[j][id])
			}
		}
	}
}

// The commit-shape grid the incremental freeze must get right: growing
// within the partial tail block, spilling into fresh blocks, starting from
// empty, and starting exactly at a block boundary.
func TestExtendFrozenMatchesFullFreeze(t *testing.T) {
	cases := []struct {
		name   string
		n0, n1 int
	}{
		{"partial tail only", 100, 140},                                  // no new block allocated
		{"fill tail exactly", BlockSize - 40, BlockSize},                 // tail block becomes full
		{"spill into fresh blocks", BlockSize + 100, 3*BlockSize + 17},   // new full + partial blocks
		{"empty base", 0, 200},                                           // delta from an empty frozen table
		{"block-aligned base", 2 * BlockSize, 2*BlockSize + BlockSize/2}, // tail starts a fresh block
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := deltaSchema()
			base := fullFreeze(t, s, deltaRows(0, tc.n0))
			got, stats, err := ExtendFrozen(base, deltaRows(tc.n0, tc.n1))
			if err != nil {
				t.Fatalf("ExtendFrozen: %v", err)
			}
			if stats.NewRows != tc.n1-tc.n0 {
				t.Fatalf("NewRows: got %d, want %d", stats.NewRows, tc.n1-tc.n0)
			}
			requireTableEqual(t, got, fullFreeze(t, s, deltaRows(0, tc.n1)))
			// The base must be untouched: still the old rows, old postings.
			if base.Len() != tc.n0 {
				t.Fatalf("base mutated: %d rows, want %d", base.Len(), tc.n0)
			}
			requireTableEqual(t, base, fullFreeze(t, s, deltaRows(0, tc.n0)))
		})
	}
}

// An all-NULL batch landing in a fresh tail block: the column had no bitset
// before (or only old bits) and must grow word-aligned bits for rows the old
// bitset never covered.
func TestExtendFrozenAllNullFreshTailBlock(t *testing.T) {
	s := NewSchema("N", "Id INT", "Score FLOAT").Key("Id")
	rows := make([]Tuple, BlockSize)
	for i := range rows {
		rows[i] = Tuple{int64(i), float64(i)}
	}
	base := fullFreeze(t, s, rows)
	add := make([]Tuple, 90)
	for i := range add {
		add[i] = Tuple{int64(BlockSize + i), nil} // every new Score is NULL
	}
	got, _, err := ExtendFrozen(base, add)
	if err != nil {
		t.Fatalf("ExtendFrozen: %v", err)
	}
	requireTableEqual(t, got, fullFreeze(t, s, rows, add))
	if got.Col(1).Nulls == nil {
		t.Fatal("expected a null bitset on the extended column")
	}
	if base.Col(1).Nulls != nil {
		t.Fatal("base column grew a null bitset")
	}
}

// Delta-on-delta: the second commit extends a table that was itself built
// incrementally (the in-place claim path, since the first delta allocated
// private arrays with headroom).
func TestExtendFrozenDeltaOnDelta(t *testing.T) {
	s := deltaSchema()
	base := fullFreeze(t, s, deltaRows(0, 300))
	d1, _, err := ExtendFrozen(base, deltaRows(300, 400))
	if err != nil {
		t.Fatalf("first ExtendFrozen: %v", err)
	}
	d2, stats, err := ExtendFrozen(d1, deltaRows(400, 480))
	if err != nil {
		t.Fatalf("second ExtendFrozen: %v", err)
	}
	if stats.CopiedBlocks != 0 {
		t.Fatalf("delta-on-delta copied %d blocks; want in-place extension", stats.CopiedBlocks)
	}
	requireTableEqual(t, d2, fullFreeze(t, s, deltaRows(0, 480)))
	// Both intermediates stay valid snapshots.
	requireTableEqual(t, d1, fullFreeze(t, s, deltaRows(0, 400)))
	requireTableEqual(t, base, fullFreeze(t, s, deltaRows(0, 300)))
}

// Branched base: two deltas built from the same frozen table. Only one can
// claim the spare capacity; the other must copy — and both must match their
// own full freezes.
func TestExtendFrozenBranchedBase(t *testing.T) {
	s := deltaSchema()
	base := fullFreeze(t, s, deltaRows(0, 200))
	left, _, err := ExtendFrozen(base, deltaRows(200, 260))
	if err != nil {
		t.Fatalf("left ExtendFrozen: %v", err)
	}
	right, _, err := ExtendFrozen(base, deltaRows(500, 540))
	if err != nil {
		t.Fatalf("right ExtendFrozen: %v", err)
	}
	requireTableEqual(t, left, fullFreeze(t, s, deltaRows(0, 200), deltaRows(200, 260)))
	requireTableEqual(t, right, fullFreeze(t, s, deltaRows(0, 200), deltaRows(500, 540)))
	requireTableEqual(t, base, fullFreeze(t, s, deltaRows(0, 200)))
}

func TestExtendFrozenErrors(t *testing.T) {
	s := deltaSchema()
	unfrozen := NewTable(s)
	if _, _, err := ExtendFrozen(unfrozen, deltaRows(0, 1)); err == nil {
		t.Fatal("expected error extending an unfrozen table")
	}
	base := fullFreeze(t, s, deltaRows(0, 10))
	if _, _, err := ExtendFrozen(base, []Tuple{{int64(1), "x"}}); err == nil {
		t.Fatal("expected arity error")
	}
	db := NewDatabase("d")
	db.Add(base)
	if _, _, err := ExtendFrozenDatabase(db, map[string][]Tuple{"nosuch": deltaRows(0, 1)}); err == nil {
		t.Fatal("expected unknown-table error")
	}
}

// Tables without new rows are carried into the next epoch by pointer, and
// their blocks count as reused.
func TestExtendFrozenDatabaseSharesUnchangedTables(t *testing.T) {
	s1 := deltaSchema()
	s2 := NewSchema("Other", "Oid INT", "Label").Key("Oid")
	db := NewDatabase("d")
	t1 := NewTable(s1)
	if err := t1.AppendShared(deltaRows(0, 50)); err != nil {
		t.Fatal(err)
	}
	t2 := NewTable(s2)
	for i := 0; i < 30; i++ {
		t2.MustInsert(int64(i), fmt.Sprintf("label %d", i))
	}
	db.Add(t1)
	db.Add(t2)
	db.Freeze()
	next, stats, err := ExtendFrozenDatabase(db, map[string][]Tuple{"item": deltaRows(50, 80)})
	if err != nil {
		t.Fatalf("ExtendFrozenDatabase: %v", err)
	}
	if next.Table("Other") != t2 {
		t.Fatal("unchanged table was rebuilt instead of shared")
	}
	if next.Table("Item") == t1 {
		t.Fatal("changed table was not rebuilt")
	}
	if stats.SharedTables != 1 {
		t.Fatalf("SharedTables: got %d, want 1", stats.SharedTables)
	}
	if stats.ReusedBlocks == 0 {
		t.Fatal("expected reused blocks from the shared table")
	}
	if !next.Frozen() {
		t.Fatal("extended database is not frozen")
	}
	// No new rows at all: the same database value comes back table-for-table.
	same, _, err := ExtendFrozenDatabase(next, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, tb := range same.Tables() {
		if tb != next.Tables()[i] {
			t.Fatalf("table %d not shared on empty commit", i)
		}
	}
}

// The patched inverted index must equal a from-scratch BuildIndex — same
// postings in the same order — including tokens that span old and new rows
// of different tables.
func TestAppendRowsMatchesBuildIndex(t *testing.T) {
	build := func(n1, n2 int) *Database {
		db := NewDatabase("d")
		t1 := NewTable(deltaSchema())
		if err := t1.AppendShared(deltaRows(0, n1)); err != nil {
			t.Fatal(err)
		}
		t2 := NewTable(NewSchema("Other", "Oid INT", "Label").Key("Oid"))
		for i := 0; i < n2; i++ {
			// "item" and "alpha<k>" overlap table Item's tokens, so merged
			// posting lists interleave both tables.
			t2.MustInsert(int64(i), fmt.Sprintf("item alpha%d other%d", i%13, i))
		}
		db.Add(t1)
		db.Add(t2)
		return db
	}
	prefix := build(120, 40)
	prefixIdx := BuildIndex(prefix)
	full := build(180, 70)
	patched, touched := prefixIdx.AppendRows(full, map[string]int{"item": 120, "other": 40})
	if touched == 0 {
		t.Fatal("expected touched posting lists")
	}
	want := BuildIndex(full)
	if !reflect.DeepEqual(patched.postings, want.postings) {
		for tok, ps := range want.postings {
			if !reflect.DeepEqual(patched.postings[tok], ps) {
				t.Fatalf("token %q: got %v, want %v", tok, patched.postings[tok], ps)
			}
		}
		for tok := range patched.postings {
			if _, ok := want.postings[tok]; !ok {
				t.Fatalf("token %q present in patched index only", tok)
			}
		}
	}
	// Patching with nothing new returns the index itself.
	same, touched := want.AppendRows(full, map[string]int{"item": 180, "other": 70})
	if same != want || touched != 0 {
		t.Fatalf("no-op AppendRows: got (%p,%d), want (%p,0)", same, touched, want)
	}
}

// Dictionary layering details: pointer identity is preserved for columns
// with no new distinct values, chains flatten past maxDictDepth, and the
// remap cache stays correct and capped across epochs.
func TestDictExtendLayering(t *testing.T) {
	s := NewSchema("L", "Id INT", "Cat").Key("Id")
	rows := []Tuple{}
	for i := 0; i < 40; i++ {
		rows = append(rows, Tuple{int64(i), fmt.Sprintf("cat%d", i%4)})
	}
	base := fullFreeze(t, s, rows)
	// New rows reuse only existing categories: the Cat dictionary must be
	// the same pointer in the extended table.
	add := []Tuple{{int64(40), "cat1"}, {int64(41), "cat2"}}
	got, stats, err := ExtendFrozen(base, add)
	if err != nil {
		t.Fatal(err)
	}
	if got.dicts[1] != base.dicts[1] {
		t.Fatal("unchanged dictionary lost pointer identity")
	}
	if got.dicts[0] == base.dicts[0] {
		t.Fatal("Id dictionary gained values but kept pointer identity")
	}
	if stats.NewDictEntries != 2 {
		t.Fatalf("NewDictEntries: got %d, want 2", stats.NewDictEntries)
	}
	// Walk a long chain of single-row extensions: depth must stay bounded
	// and lookups exact.
	cur := got
	n := cur.Len()
	for e := 0; e < 4*maxDictDepth; e++ {
		cur, _, err = ExtendFrozen(cur, []Tuple{{int64(1000 + e), fmt.Sprintf("cat%d", e%6)}})
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	for j, d := range cur.dicts {
		if d.depth > maxDictDepth {
			t.Fatalf("dict %d chain depth %d exceeds %d", j, d.depth, maxDictDepth)
		}
	}
	if cur.Len() != n {
		t.Fatalf("rows: got %d, want %d", cur.Len(), n)
	}
	for id := 0; id < cur.dicts[0].Len(); id++ {
		v := cur.dicts[0].Value(uint32(id))
		if got, ok := cur.dicts[0].ID(v); !ok || got != uint32(id) {
			t.Fatalf("layered dict round-trip failed for id %d (%v)", id, v)
		}
	}
	// Remap across the layered dictionaries agrees with element-wise ID.
	remap := cur.dicts[1].Remap(cur.dicts[0])
	if len(remap) != cur.dicts[1].Len() {
		t.Fatalf("remap length %d, want %d", len(remap), cur.dicts[1].Len())
	}
	for id, tid := range remap {
		wid, ok := cur.dicts[0].ID(cur.dicts[1].Value(uint32(id)))
		if !ok {
			wid = NoID
		}
		if tid != wid {
			t.Fatalf("remap[%d] = %d, want %d", id, tid, wid)
		}
	}
	if cached := cur.dicts[1].RemapCached(cur.dicts[0]); !reflect.DeepEqual(cached, remap) {
		t.Fatal("RemapCached disagrees with Remap")
	}
}

// The remap cache stops growing at its cap but stays correct past it.
func TestRemapCacheCap(t *testing.T) {
	d := newDict()
	for i := 0; i < 10; i++ {
		d.encode(int64(i))
	}
	targets := make([]*Dict, remapCacheMax+10)
	for i := range targets {
		to := newDict()
		to.encode(int64(i % 10))
		targets[i] = to
		got := d.RemapCached(to)
		want := d.Remap(to)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("RemapCached target %d: got %v, want %v", i, got, want)
		}
	}
	if n := d.remapN.Load(); n > remapCacheMax {
		t.Fatalf("remap cache grew to %d, cap is %d", n, remapCacheMax)
	}
}

func TestExtendFrozenStatsBlocks(t *testing.T) {
	s := NewSchema("B", "Id INT", "Label").Key("Id")
	rows := make([]Tuple, 4*BlockSize)
	for i := range rows {
		rows[i] = Tuple{int64(i), fmt.Sprintf("label %d", i)}
	}
	base := fullFreeze(t, s, rows)
	add := []Tuple{{int64(len(rows)), "label tail"}}
	// First delta from a full freeze copies the columns (the freeze's
	// backing has no spare capacity) ...
	d1, st1, err := ExtendFrozen(base, add)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CopiedBlocks == 0 {
		t.Fatal("first delta should copy the full-freeze columns")
	}
	// ... and the second extends the copies in place, reusing every block.
	d2, st2, err := ExtendFrozen(d1, []Tuple{{int64(len(rows) + 1), "label tail2"}})
	if err != nil {
		t.Fatal(err)
	}
	if st2.CopiedBlocks != 0 || st2.ReusedBlocks == 0 {
		t.Fatalf("second delta: copied %d, reused %d; want 0 copied", st2.CopiedBlocks, st2.ReusedBlocks)
	}
	_ = d2
	if st1.TouchedPostings == 0 || st2.TouchedPostings == 0 {
		t.Fatal("expected touched posting lists")
	}
}

// Plain AppendShared edge cases (the bulk-append the full-refreeze baseline
// and the delta tests' reference path rely on).
func TestAppendSharedEdgeCases(t *testing.T) {
	s := deltaSchema()
	// Empty source table, empty batches, then real rows.
	tb := NewTable(s)
	if err := tb.AppendShared(); err != nil {
		t.Fatalf("empty AppendShared: %v", err)
	}
	if err := tb.AppendShared(nil, []Tuple{}); err != nil {
		t.Fatalf("nil-batch AppendShared: %v", err)
	}
	if tb.Len() != 0 {
		t.Fatalf("rows after empty appends: %d", tb.Len())
	}
	if err := tb.AppendShared(deltaRows(0, 5), nil, deltaRows(5, 8)); err != nil {
		t.Fatalf("AppendShared: %v", err)
	}
	if tb.Len() != 8 {
		t.Fatalf("rows: got %d, want 8", tb.Len())
	}
	for i := 0; i < 8; i++ {
		if Format(tb.Tuples[i][0]) != fmt.Sprint(i) {
			t.Fatalf("row %d out of order: %v", i, tb.Tuples[i])
		}
	}
	// Arity errors reject the whole batch atomically.
	if err := tb.AppendShared(deltaRows(8, 9), []Tuple{{int64(9)}}); err == nil {
		t.Fatal("expected arity error")
	}
	if tb.Len() != 8 {
		t.Fatalf("failed append mutated the table: %d rows", tb.Len())
	}
	// Frozen tables reject the append.
	tb.Freeze()
	if err := tb.AppendShared(deltaRows(8, 9)); err == nil ||
		!strings.Contains(err.Error(), "frozen") {
		t.Fatalf("frozen AppendShared: got %v, want frozen error", err)
	}
}
