package relation

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Tuple is one row of a table; Tuple[i] is the value of Schema.Attributes[i].
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Table is an in-memory relation instance: a schema plus its tuples.
type Table struct {
	Schema *Schema
	Tuples []Tuple

	mu      sync.Mutex                  // guards hashIdx builds on unfrozen tables
	frozen  bool                        // set by Freeze; rejects further inserts
	hashIdx map[string]map[string][]int // attr (lower) -> formatted value -> row ids

	// Dictionary encoding, built by Freeze and immutable afterwards: one
	// dictionary per attribute, the flat row-major array of encoded tuples
	// (row i, attribute j at i*len(dicts)+j), the column-major transpose of
	// the same IDs (one contiguous ColData per attribute, for the batch
	// kernels), and per-attribute postings mapping each dictionary ID to its
	// ascending row ids (the frozen value index, replacing the
	// formatted-string hashIdx).
	dicts []*Dict
	enc   []uint32
	cols  []ColData
	post  [][][]int

	// tailClaimed marks that one delta table (see ExtendFrozen) has taken
	// ownership of this frozen table's spare backing capacity: the first
	// delta built from a frozen base may append new rows in place beyond the
	// base's slice lengths (addresses old-epoch readers never touch), but a
	// second delta from the same base — a branch — must copy instead, so
	// siblings never race on the same spare capacity. One-shot.
	tailClaimed atomic.Bool
}

// NewTable creates an empty table with the given schema.
func NewTable(s *Schema) *Table { return &Table{Schema: s} }

// Insert appends a tuple after checking its arity. Values must already have
// the declared types; use InsertRow for string coercion. Frozen tables (see
// Freeze) reject inserts.
func (t *Table) Insert(tu Tuple) error {
	if t.frozen {
		return fmt.Errorf("relation: %s is frozen (opened for keyword search); inserts are rejected", t.Schema.Name)
	}
	if len(tu) != len(t.Schema.Attributes) {
		return fmt.Errorf("relation: %s expects %d values, got %d",
			t.Schema.Name, len(t.Schema.Attributes), len(tu))
	}
	t.Tuples = append(t.Tuples, tu)
	t.hashIdx = nil
	return nil
}

// AppendShared bulk-appends already-typed tuple batches to an unfrozen
// table, sharing the tuples by reference — the epoch rebuild in core.Live
// re-inserts the previous epoch's rows this way (tuples are immutable by
// convention, so epochs may share them). The backing array is allocated
// once for all batches; arity is checked per tuple, and nothing is
// appended on error. Frozen tables reject the append, like Insert.
func (t *Table) AppendShared(batches ...[]Tuple) error {
	if t.frozen {
		return fmt.Errorf("relation: %s is frozen (opened for keyword search); inserts are rejected", t.Schema.Name)
	}
	total := len(t.Tuples)
	for _, b := range batches {
		total += len(b)
		for _, tu := range b {
			if len(tu) != len(t.Schema.Attributes) {
				return fmt.Errorf("relation: %s expects %d values, got %d",
					t.Schema.Name, len(t.Schema.Attributes), len(tu))
			}
		}
	}
	out := make([]Tuple, 0, total)
	out = append(out, t.Tuples...)
	for _, b := range batches {
		out = append(out, b...)
	}
	t.Tuples = out
	t.hashIdx = nil
	return nil
}

// Freeze makes the table immutable: subsequent Insert/InsertRow calls return
// an error, every column is dictionary-encoded (each distinct value gets a
// dense uint32 ID, with the encoded tuples stored row-major alongside the
// boxed ones), and the per-attribute value index is built eagerly over the
// IDs so that Lookup never mutates shared state again. After Freeze the
// table is safe for unsynchronized concurrent readers.
func (t *Table) Freeze() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.frozen {
		return
	}
	t.frozen = true
	ncols := len(t.Schema.Attributes)
	t.dicts = make([]*Dict, ncols)
	for j := range t.dicts {
		t.dicts[j] = newDict()
	}
	t.enc = make([]uint32, len(t.Tuples)*ncols)
	for i, tu := range t.Tuples {
		for j, v := range tu {
			t.enc[i*ncols+j] = t.dicts[j].encode(v)
		}
	}
	t.cols = make([]ColData, ncols)
	if ncols > 0 {
		ids := make([]uint32, len(t.Tuples)*ncols) // one backing array for all columns
		for j := range t.cols {
			// The three-index slice clamps each column's capacity to its own
			// length: the columns share one backing array, so an in-place
			// delta append (ExtendFrozen) must see cap==len here and copy
			// the column privately instead of growing into its neighbor.
			col := ids[j*len(t.Tuples) : (j+1)*len(t.Tuples) : (j+1)*len(t.Tuples)]
			for i := range t.Tuples {
				col[i] = t.enc[i*ncols+j]
			}
			t.cols[j].IDs = col
		}
		for i, tu := range t.Tuples {
			for j, v := range tu {
				if Null(v) {
					if t.cols[j].Nulls == nil {
						t.cols[j].Nulls = make([]uint64, (len(t.Tuples)+63)/64)
					}
					t.cols[j].Nulls[i>>6] |= 1 << (uint(i) & 63)
				}
			}
		}
	}
	t.post = make([][][]int, ncols)
	for j := range t.post {
		p := make([][]int, t.dicts[j].Len())
		for i := range t.Tuples {
			id := t.enc[i*ncols+j]
			p[id] = append(p[id], i)
		}
		t.post[j] = p
	}
	t.hashIdx = nil // the ID postings replace the formatted-string index
}

// Encoding exposes the frozen table's dictionary encoding: the per-attribute
// dictionaries and the flat row-major ID array (row i, attribute j at
// i*len(dicts)+j). ok is false until the table has been frozen; the returned
// slices are immutable shared state — read only.
func (t *Table) Encoding() (dicts []*Dict, ids []uint32, ok bool) {
	if !t.frozen {
		return nil, nil, false
	}
	return t.dicts, t.enc, true
}

// Col exposes attribute j's column-major encoding: its dictionary IDs stored
// contiguously plus the null bitset (see ColData). nil until the table has
// been frozen or when j is out of range; the returned data is immutable
// shared state — read only.
func (t *Table) Col(j int) *ColData {
	if !t.frozen || j < 0 || j >= len(t.cols) {
		return nil
	}
	return &t.cols[j]
}

// Frozen reports whether the table has been frozen.
func (t *Table) Frozen() bool { return t.frozen }

// buildIdxLocked builds the hash index of one attribute; t.mu must be held.
func (t *Table) buildIdxLocked(key string) map[string][]int {
	if t.hashIdx == nil {
		t.hashIdx = make(map[string]map[string][]int)
	}
	if idx, ok := t.hashIdx[key]; ok {
		return idx
	}
	j := t.Schema.AttrIndex(key)
	if j < 0 {
		return nil
	}
	idx := make(map[string][]int)
	for i, tu := range t.Tuples {
		idx[Format(tu[j])] = append(idx[Format(tu[j])], i)
	}
	t.hashIdx[key] = idx
	return idx
}

// MustInsert is Insert but panics on arity mismatch; intended for dataset
// builders whose shapes are fixed at compile time.
func (t *Table) MustInsert(vals ...Value) {
	if err := t.Insert(Tuple(vals)); err != nil {
		panic(err)
	}
}

// InsertRow coerces the string fields to the declared attribute types and
// appends the resulting tuple.
func (t *Table) InsertRow(fields ...string) error {
	if len(fields) != len(t.Schema.Attributes) {
		return fmt.Errorf("relation: %s expects %d fields, got %d",
			t.Schema.Name, len(t.Schema.Attributes), len(fields))
	}
	tu := make(Tuple, len(fields))
	for i, f := range fields {
		v, err := Coerce(f, t.Schema.Attributes[i].Type)
		if err != nil {
			return fmt.Errorf("relation: %s.%s: %w", t.Schema.Name, t.Schema.Attributes[i].Name, err)
		}
		tu[i] = v
	}
	return t.Insert(tu)
}

// Len returns the number of tuples.
func (t *Table) Len() int { return len(t.Tuples) }

// Value returns the value of the named attribute in row i.
func (t *Table) Value(i int, attr string) Value {
	j := t.Schema.AttrIndex(attr)
	if j < 0 {
		return nil
	}
	return t.Tuples[i][j]
}

// Lookup returns the row ids (ascending) whose attribute formats equally to
// v. On frozen tables the lookup goes through the attribute's dictionary
// (value to ID, then the ID's postings) without locking or string building
// for the common constant types; on mutable tables a formatted-string index
// is built lazily under the table's mutex, so concurrent lookups stay safe.
func (t *Table) Lookup(attr string, v Value) []int {
	key := strings.ToLower(attr)
	if t.frozen {
		j := t.Schema.AttrIndex(key)
		if j < 0 {
			return nil
		}
		id, ok := t.dicts[j].ID(v)
		if !ok {
			return nil
		}
		return t.post[j][id]
	}
	t.mu.Lock()
	idx := t.buildIdxLocked(key)
	t.mu.Unlock()
	return idx[Format(v)]
}

// KeyOf returns the primary-key values of row i, formatted and joined, used
// to identify distinct objects during pattern disambiguation.
func (t *Table) KeyOf(i int) string {
	parts := make([]string, len(t.Schema.PrimaryKey))
	for j, k := range t.Schema.PrimaryKey {
		parts[j] = Format(t.Value(i, k))
	}
	return strings.Join(parts, "\x1f")
}

// Project returns a new table with the named attributes; when distinct is
// true, duplicate projected tuples are removed. The projected table's key is
// the full attribute list (it is only used as an intermediate result).
func (t *Table) Project(attrs []string, distinct bool) (*Table, error) {
	idxs := make([]int, len(attrs))
	out := NewSchema(t.Schema.Name)
	for i, a := range attrs {
		j := t.Schema.AttrIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("relation: %s has no attribute %q", t.Schema.Name, a)
		}
		idxs[i] = j
		out.Attributes = append(out.Attributes, t.Schema.Attributes[j])
	}
	out.PrimaryKey = append([]string(nil), attrs...)
	res := NewTable(out)
	seen := make(map[string]bool)
	for _, tu := range t.Tuples {
		row := make(Tuple, len(idxs))
		for i, j := range idxs {
			row[i] = tu[j]
		}
		if distinct {
			k := formatRow(row)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		res.Tuples = append(res.Tuples, row)
	}
	return res, nil
}

func formatRow(tu Tuple) string {
	parts := make([]string, len(tu))
	for i, v := range tu {
		parts[i] = Format(v)
	}
	return strings.Join(parts, "\x1f")
}

// Database is a named collection of tables with stable iteration order.
type Database struct {
	Name   string
	tables map[string]*Table
	order  []string
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, tables: make(map[string]*Table)}
}

// Add registers a table, replacing any table with the same name.
func (db *Database) Add(t *Table) {
	key := strings.ToLower(t.Schema.Name)
	if _, ok := db.tables[key]; !ok {
		db.order = append(db.order, key)
	}
	db.tables[key] = t
}

// AddSchema registers an empty table for the schema and returns it.
func (db *Database) AddSchema(s *Schema) *Table {
	t := NewTable(s)
	db.Add(t)
	return t
}

// Table returns the named table (case-insensitive) or nil.
func (db *Database) Table(name string) *Table {
	return db.tables[strings.ToLower(name)]
}

// Tables returns all tables in registration order.
func (db *Database) Tables() []*Table {
	out := make([]*Table, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.tables[k])
	}
	return out
}

// Schemas returns all table schemas in registration order.
func (db *Database) Schemas() []*Schema {
	out := make([]*Schema, 0, len(db.order))
	for _, k := range db.order {
		out = append(out, db.tables[k].Schema)
	}
	return out
}

// Freeze freezes every table of the database (see Table.Freeze): inserts are
// rejected and all per-attribute value indexes are built eagerly. Called when
// a database is opened for keyword search; afterwards the database is safe
// for unsynchronized concurrent readers.
func (db *Database) Freeze() {
	for _, t := range db.Tables() {
		t.Freeze()
	}
}

// Frozen reports whether the database has been frozen.
func (db *Database) Frozen() bool {
	for _, t := range db.Tables() {
		if !t.Frozen() {
			return false
		}
	}
	return len(db.order) > 0
}

// Stats returns a one-line tuple-count summary, useful in CLIs and examples.
func (db *Database) Stats() string {
	parts := make([]string, 0, len(db.order))
	for _, t := range db.Tables() {
		parts = append(parts, fmt.Sprintf("%s=%d", t.Schema.Name, t.Len()))
	}
	return strings.Join(parts, " ")
}
