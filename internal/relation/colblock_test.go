package relation

import (
	"fmt"
	"testing"
)

// colTestTable builds and freezes a table with n rows whose three columns mix
// strings, ints and NULLs: A is "a<i%7>" (no NULLs), B is int64(i%5) with
// every 13th row NULL, C alternates the literal string "NULL" and a real nil
// so the null bitset is the only thing separating them.
func colTestTable(n int) *Table {
	t := NewTable(NewSchema("T", "A", "B INT", "C").Key("A"))
	for i := 0; i < n; i++ {
		var b Value = int64(i % 5)
		if i%13 == 0 {
			b = nil
		}
		var c Value = "NULL"
		if i%2 == 1 {
			c = nil
		}
		t.MustInsert(fmt.Sprintf("a%d", i%7), b, c)
	}
	t.Freeze()
	return t
}

func TestColDataMatchesRowMajorEncoding(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, BlockSize - 1, BlockSize, BlockSize + 1, 2*BlockSize + 517} {
		tab := colTestTable(n)
		dicts, enc, ok := tab.Encoding()
		if !ok {
			t.Fatalf("n=%d: Encoding not available after Freeze", n)
		}
		ncols := len(dicts)
		for j := 0; j < ncols; j++ {
			col := tab.Col(j)
			if col == nil {
				t.Fatalf("n=%d: Col(%d) nil after Freeze", n, j)
			}
			if col.Len() != n {
				t.Fatalf("n=%d col %d: Len %d", n, j, col.Len())
			}
			for i := 0; i < n; i++ {
				if col.IDs[i] != enc[i*ncols+j] {
					t.Fatalf("n=%d: col %d row %d: transpose ID %d != row-major %d",
						n, j, i, col.IDs[i], enc[i*ncols+j])
				}
			}
		}
	}
}

func TestColDataNullBitset(t *testing.T) {
	tab := colTestTable(2*BlockSize + 517)
	for j := range tab.Schema.Attributes {
		col := tab.Col(j)
		sawNull := false
		for i, tu := range tab.Tuples {
			want := Null(tu[j])
			if got := col.Null(i); got != want {
				t.Fatalf("col %d row %d: Null=%v, boxed value %v", j, i, got, tu[j])
			}
			if want {
				sawNull = true
			}
		}
		if !sawNull && col.Nulls != nil {
			t.Errorf("col %d: Nulls bitset allocated for a NULL-free column", j)
		}
		if sawNull && col.Nulls == nil {
			t.Errorf("col %d: NULL rows present but Nulls bitset nil", j)
		}
		// NullWord must agree with Null word-by-word, including the zero it
		// reports for NULL-free columns.
		for w := 0; w < (tab.Len()+63)/64; w++ {
			var want uint64
			for b := 0; b < 64; b++ {
				i := w*64 + b
				if i < tab.Len() && col.Null(i) {
					want |= 1 << uint(b)
				}
			}
			if got := col.NullWord(w); got != want {
				t.Fatalf("col %d word %d: NullWord %#x, want %#x", j, w, got, want)
			}
		}
	}
	// Column A never holds NULL, column B and C do (rows 0 and 1 resp.).
	if tab.Col(0).Nulls != nil {
		t.Error("column A should have a nil Nulls bitset")
	}
	if !tab.Col(1).Null(0) || !tab.Col(2).Null(1) {
		t.Error("expected NULLs at B row 0 and C row 1")
	}
	// The literal string "NULL" shares C's dictionary ID with real NULLs —
	// the bitset must be what tells them apart.
	c := tab.Col(2)
	if c.IDs[0] != c.IDs[1] {
		t.Errorf(`"NULL" (row 0) and nil (row 1) should share a dictionary ID, got %d vs %d`,
			c.IDs[0], c.IDs[1])
	}
	if c.Null(0) || !c.Null(1) {
		t.Error(`null bitset must separate the string "NULL" (row 0) from nil (row 1)`)
	}
}

func TestColDataBlocks(t *testing.T) {
	n := 2*BlockSize + 517 // trailing partial block
	tab := colTestTable(n)
	col := tab.Col(0)
	if got, want := Blocks(n), 3; got != want {
		t.Fatalf("Blocks(%d) = %d, want %d", n, got, want)
	}
	total := 0
	for b := 0; b < Blocks(n); b++ {
		blk := col.Block(b)
		wantLen := BlockSize
		if b == Blocks(n)-1 {
			wantLen = 517
		}
		if len(blk) != wantLen {
			t.Fatalf("block %d: len %d, want %d", b, len(blk), wantLen)
		}
		for k, id := range blk {
			if id != col.IDs[b*BlockSize+k] {
				t.Fatalf("block %d offset %d: ID %d != IDs[%d]=%d",
					b, k, id, b*BlockSize+k, col.IDs[b*BlockSize+k])
			}
		}
		total += len(blk)
	}
	if total != n {
		t.Fatalf("blocks cover %d rows, want %d", total, n)
	}
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 1}, {BlockSize, 1}, {BlockSize + 1, 2}, {4 * BlockSize, 4},
	} {
		if got := Blocks(tc.n); got != tc.want {
			t.Errorf("Blocks(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestColNilBeforeFreezeAndOutOfRange(t *testing.T) {
	tab := NewTable(NewSchema("T", "A", "B").Key("A"))
	tab.MustInsert("x", "y")
	if tab.Col(0) != nil {
		t.Error("Col must be nil before Freeze")
	}
	tab.Freeze()
	if tab.Col(0) == nil || tab.Col(1) == nil {
		t.Error("Col must be available after Freeze")
	}
	if tab.Col(-1) != nil || tab.Col(2) != nil {
		t.Error("out-of-range Col must be nil")
	}
}

// TestDatabaseFreezeAndAccessors exercises the database-level freeze
// lifecycle the executor relies on — Freeze propagating to every table,
// Frozen's all-tables semantics, Schemas registration order — plus the
// tuple/lookup accessors around the frozen dictionary index.
func TestDatabaseFreezeAndAccessors(t *testing.T) {
	db := NewDatabase("colblocks")
	tab := db.AddSchema(NewSchema("T", "A", "B INT").Key("A"))
	tab.MustInsert("x", int64(1))
	tab.MustInsert("y", nil)
	db.AddSchema(NewSchema("U", "K").Key("K"))
	if db.Frozen() {
		t.Fatal("database reports frozen before Freeze")
	}
	db.Freeze()
	if !db.Frozen() || !tab.Frozen() {
		t.Fatal("Freeze must freeze every table")
	}
	schemas := db.Schemas()
	if len(schemas) != 2 || schemas[0].Name != "T" || schemas[1].Name != "U" {
		t.Fatalf("Schemas out of registration order: %v", schemas)
	}
	row := tab.Tuples[0].Clone()
	row[0] = "z"
	if tab.Value(0, "A") != "x" {
		t.Fatal("Tuple.Clone must not alias the original backing array")
	}
	if v := tab.Value(1, "B"); v != nil {
		t.Fatalf("Value(1, B) = %v, want NULL", v)
	}
	if ids := tab.Lookup("A", "x"); len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("frozen Lookup(A, x) = %v, want [0]", ids)
	}
	if ids := tab.Lookup("A", "missing"); ids != nil {
		t.Fatalf("frozen Lookup of absent value = %v, want nil", ids)
	}
	// NULL and int lookups go through the same dictionary path.
	if ids := tab.Lookup("B", int64(1)); len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("frozen Lookup(B, 1) = %v, want [0]", ids)
	}
}
