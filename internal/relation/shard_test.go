package relation

import (
	"fmt"
	"testing"
)

// shardTable builds a frozen table of n rows with a small-cardinality K
// column (i % 97) and a unique V column.
func shardTable(t *testing.T, n int) *Table {
	t.Helper()
	tb := NewTable(NewSchema("S", "K INT", "V INT").Key("V"))
	for i := 0; i < n; i++ {
		tb.MustInsert(int64(i%97), int64(i))
	}
	tb.Freeze()
	return tb
}

func TestShardLayout(t *testing.T) {
	cases := []struct {
		rows   int
		shards int
	}{
		{0, 0},
		{1, 1},
		{ShardRows, 1},
		{ShardRows + 1, 2},
		{3*ShardRows + 517, 4},
	}
	for _, c := range cases {
		tb := shardTable(t, c.rows)
		if got := tb.ShardCount(); got != c.shards {
			t.Fatalf("%d rows: ShardCount = %d, want %d", c.rows, got, c.shards)
		}
		covered := 0
		for s := 0; s < tb.ShardCount(); s++ {
			lo, hi := tb.ShardRange(s)
			if lo != covered {
				t.Fatalf("%d rows: shard %d starts at %d, want %d", c.rows, s, lo, covered)
			}
			if hi <= lo {
				t.Fatalf("%d rows: shard %d is empty [%d,%d)", c.rows, s, lo, hi)
			}
			if hi-lo > ShardRows {
				t.Fatalf("%d rows: shard %d spans %d rows", c.rows, s, hi-lo)
			}
			if lo%BlockSize != 0 {
				t.Fatalf("%d rows: shard %d start %d not block-aligned", c.rows, s, lo)
			}
			covered = hi
		}
		if covered != c.rows {
			t.Fatalf("%d rows: shards cover %d rows", c.rows, covered)
		}
	}
}

func TestLookupRangeMatchesLookup(t *testing.T) {
	tb := shardTable(t, 2*ShardRows+517)
	for _, v := range []Value{int64(0), int64(13), int64(96), int64(97)} {
		all := tb.Lookup("K", v)
		var stitched []int
		for s := 0; s < tb.ShardCount(); s++ {
			lo, hi := tb.ShardRange(s)
			part := tb.LookupRange("K", v, lo, hi)
			for _, ri := range part {
				if ri < lo || ri >= hi {
					t.Fatalf("K=%v shard %d: row %d outside [%d,%d)", v, s, ri, lo, hi)
				}
			}
			stitched = append(stitched, part...)
		}
		if fmt.Sprint(stitched) != fmt.Sprint(all) {
			t.Fatalf("K=%v: stitched shard lookups %v != global %v", v, stitched, all)
		}
	}
	if got := tb.LookupRange("K", int64(5), 100, 100); len(got) != 0 {
		t.Fatalf("empty range returned %v", got)
	}
}
