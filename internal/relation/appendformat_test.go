package relation

import (
	"bytes"
	"testing"
)

// TestAppendFormat pins AppendFormat to Format: for every value class the
// appended bytes must equal append(dst, Format(v)...), including onto a
// non-empty prefix. The sqldb key builders depend on this equivalence.
func TestAppendFormat(t *testing.T) {
	values := []Value{
		nil,
		Int(0), Int(42), Int(-7), Int(1<<62 + 3),
		Float(0), Float(3.14), Float(-0.5), Float(1e21),
		Str(""), Str("Green"), Str("2024-01-31"),
		true, // falls through to the %v default, like Format
	}
	for _, v := range values {
		want := append([]byte("prefix|"), Format(v)...)
		got := AppendFormat([]byte("prefix|"), v)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendFormat(%#v) = %q, want %q", v, got, want)
		}
	}
}

// TestAppendFormatNoAlloc verifies the point of the helper: appending into a
// buffer with capacity does not allocate for the common value classes.
func TestAppendFormatNoAlloc(t *testing.T) {
	buf := make([]byte, 0, 64)
	for _, v := range []Value{nil, Int(123456), Str("Green"), Float(2.5)} {
		v := v
		if n := testing.AllocsPerRun(100, func() {
			buf = AppendFormat(buf[:0], v)
		}); n != 0 {
			t.Errorf("AppendFormat(%#v) allocates %.1f times per run", v, n)
		}
	}
}
