// Package relation implements the relational substrate used throughout the
// library: typed schemas, primary and foreign keys, functional dependencies,
// in-memory tables, and the secondary indexes (hash and inverted keyword
// indexes) that keyword matching and SQL execution are built on.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Type identifies the declared type of an attribute.
type Type int

// Attribute types. Dates are stored as ISO-8601 strings so that their
// lexicographic order coincides with chronological order.
const (
	TypeString Type = iota
	TypeInt
	TypeFloat
	TypeDate
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "VARCHAR"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "DECIMAL"
	case TypeDate:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a single attribute value in a tuple. The dynamic type is one of
// int64, float64, string, or nil (SQL NULL). Dates are strings.
type Value interface{}

// Null reports whether v is the SQL NULL value.
func Null(v Value) bool { return v == nil }

// Int constructs an integer Value.
func Int(i int64) Value { return i }

// Float constructs a floating-point Value.
func Float(f float64) Value { return f }

// Str constructs a string Value.
func Str(s string) Value { return s }

// AsFloat converts a numeric Value to float64. The second result is false if
// the value is NULL or non-numeric.
func AsFloat(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	case string:
		f, err := strconv.ParseFloat(x, 64)
		if err != nil {
			return 0, false
		}
		return f, true
	default:
		return 0, false
	}
}

// Compare orders two values. NULL sorts before every non-NULL value. Numeric
// values compare numerically even across int64/float64; everything else
// compares by its string form. The result is -1, 0, or +1.
func Compare(a, b Value) int {
	switch {
	case Null(a) && Null(b):
		return 0
	case Null(a):
		return -1
	case Null(b):
		return 1
	}
	af, aok := numeric(a)
	bf, bok := numeric(b)
	if aok && bok {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(Format(a), Format(b))
}

func numeric(v Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// Equal reports whether two values are equal under Compare semantics.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Format renders a value the way the engine prints result rows: integers
// without a decimal point, floats with minimal digits, NULL as "NULL".
func Format(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'f', -1, 64)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}

// AppendFormat appends the Format rendering of v to dst and returns the
// extended slice, without materializing an intermediate string: integers and
// floats append their digits directly (strconv.Append*), strings and NULL
// append their bytes. The execution kernels use it to build per-row hash and
// join keys allocation-free; AppendFormat(dst, v) is byte-identical to
// append(dst, Format(v)...) for every value (pinned by TestAppendFormat).
func AppendFormat(dst []byte, v Value) []byte {
	switch x := v.(type) {
	case nil:
		return append(dst, "NULL"...)
	case int64:
		return strconv.AppendInt(dst, x, 10)
	case float64:
		return strconv.AppendFloat(dst, x, 'f', -1, 64)
	case string:
		return append(dst, x...)
	default:
		return fmt.Appendf(dst, "%v", x)
	}
}

// Literal renders a value as a SQL literal: strings are single-quoted with
// embedded quotes doubled.
func Literal(v Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + strings.ReplaceAll(x, "'", "''") + "'"
	default:
		return Format(v)
	}
}

// Coerce parses the string s into a Value of type t. An empty string becomes
// NULL for every type except TypeString.
func Coerce(s string, t Type) (Value, error) {
	switch t {
	case TypeString, TypeDate:
		return s, nil
	case TypeInt:
		if s == "" {
			return nil, nil
		}
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("relation: %q is not an integer: %w", s, err)
		}
		return i, nil
	case TypeFloat:
		if s == "" {
			return nil, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("relation: %q is not a number: %w", s, err)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("relation: unknown type %v", t)
	}
}

// ContainsFold reports whether haystack contains needle, ignoring ASCII case.
// It implements the paper's "a contains t" predicate used for value matches.
func ContainsFold(haystack, needle string) bool {
	return strings.Contains(strings.ToLower(haystack), strings.ToLower(needle))
}
