// Package sqlitecli is a database/sql driver backed by the sqlite3
// command-line shell. The container this repo builds in has no module
// network, so a pure-Go SQLite driver (modernc.org/sqlite) cannot be
// vendored; the stock sqlite3 binary is a full SQLite and the driver speaks
// to it one process per statement: SQL goes in as an argument, rows come
// back as JSON (.mode json output), and the process's exit status and stderr
// become the driver error. That keeps the whole module stdlib-only while
// still executing generated SQL on a real, independent SQL engine.
//
// The driver may only be imported from internal/backend (enforced by the
// kwlint depscope analyzer): it is an execution detail of the external
// backend, exactly as a vendored driver module would be.
//
// Registered as "sqlite3cli". The DSN is a filesystem path (":memory:" works
// for throwaway databases), optionally suffixed with "?mode=ro" to open the
// database read-only:
//
//	db, err := sql.Open("sqlite3cli", "/tmp/oracle.db?mode=ro")
//
// Placeholders: the shell cannot bind parameters, so the driver interpolates
// '?' placeholders itself with fully escaped literals (quote-aware: a '?'
// inside a string literal or quoted identifier is never a placeholder).
// Type-correctness of interpolation is covered by the escaping and fuzz
// suites in internal/backend.
package sqlitecli

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DriverName is the name the driver registers under with database/sql.
const DriverName = "sqlite3cli"

func init() { sql.Register(DriverName, &Driver{}) }

// binary resolution is process-wide and memoized: LookPath once.
var (
	binOnce sync.Once
	binPath string
	binErr  error
)

// Binary returns the resolved sqlite3 executable path, or an error when the
// host has none — the signal the backend and test suites gate on.
func Binary() (string, error) {
	binOnce.Do(func() {
		binPath, binErr = exec.LookPath("sqlite3")
	})
	return binPath, binErr
}

// Available reports whether the sqlite3 shell is on PATH.
func Available() bool {
	_, err := Binary()
	return err == nil
}

// Driver implements database/sql/driver.Driver over the sqlite3 shell.
type Driver struct{}

// Open parses the DSN (path with an optional ?mode=ro suffix) and returns a
// connection. The database file is not touched until the first statement.
func (Driver) Open(dsn string) (driver.Conn, error) {
	bin, err := Binary()
	if err != nil {
		return nil, fmt.Errorf("sqlitecli: sqlite3 binary not found: %w", err)
	}
	path := dsn
	readonly := false
	if i := strings.IndexByte(dsn, '?'); i >= 0 {
		path = dsn[:i]
		for _, opt := range strings.Split(dsn[i+1:], "&") {
			switch opt {
			case "mode=ro":
				readonly = true
			case "mode=rw", "":
			default:
				return nil, fmt.Errorf("sqlitecli: unknown DSN option %q", opt)
			}
		}
	}
	if path == "" {
		return nil, errors.New("sqlitecli: empty database path")
	}
	return &conn{bin: bin, path: path, readonly: readonly}, nil
}

// conn is one logical connection. The shell is spawned per statement, so a
// conn holds no OS resources; database/sql still serializes use of one conn.
type conn struct {
	bin      string
	path     string
	readonly bool
}

// Prepare compiles the statement on the engine (EXPLAIN runs SQLite's
// prepare step without executing the query), so a statement SQLite cannot
// parse or resolve fails here — the contract the FuzzRender suite leans on.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

// PrepareContext is Prepare honoring a context for the validation run.
func (c *conn) PrepareContext(ctx context.Context, query string) (driver.Stmt, error) {
	if _, err := c.run(ctx, "EXPLAIN "+query); err != nil {
		return nil, err
	}
	return &stmt{c: c, query: query}, nil
}

// Close releases nothing: the shell exited with the last statement.
func (c *conn) Close() error { return nil }

// stmt is a prepared statement: the validated SQL text plus the conn that
// will execute it. NumInput is -1 (the driver does not count placeholders up
// front; interpolate checks arity at execution time).
type stmt struct {
	c     *conn
	query string
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return -1 }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.c.ExecContext(context.Background(), s.query, named(args))
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.c.QueryContext(context.Background(), s.query, named(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.c.ExecContext(ctx, s.query, args)
}

func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.c.QueryContext(ctx, s.query, args)
}

// named adapts positional driver values to the NamedValue shape the
// context-aware paths take.
func named(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, v := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

// Begin is unsupported: the backend is read-only and every statement is its
// own process. database/sql only calls it for explicit transactions.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, errors.New("sqlitecli: transactions are not supported (one process per statement)")
}

// QueryContext runs a query directly (database/sql fast path without an
// explicit Prepare).
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	sqlText, err := interpolate(query, args)
	if err != nil {
		return nil, err
	}
	out, err := c.run(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	return parseJSONRows(out)
}

// ExecContext runs a statement for side effects (schema/data loading).
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	sqlText, err := interpolate(query, args)
	if err != nil {
		return nil, err
	}
	if _, err := c.run(ctx, sqlText); err != nil {
		return nil, err
	}
	return driver.RowsAffected(0), nil
}

// run spawns one shell for the statement and returns its stdout. Context
// cancellation kills the process; the context error wins over the kill's
// exit error so callers see deadline/cancel semantics.
func (c *conn) run(ctx context.Context, sqlText string) (string, error) {
	args := []string{"-batch", "-json"}
	if c.readonly {
		args = append(args, "-readonly")
	}
	args = append(args, c.path, sqlText)
	cmd := exec.CommandContext(ctx, c.bin, args...)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if cerr := ctx.Err(); cerr != nil {
		return "", cerr
	}
	if err != nil {
		return "", classifyShell(err, stderr.String())
	}
	return stdout.String(), nil
}

// Error is a permanent engine error (syntax, unknown relation, type error),
// carrying the shell's stderr.
type Error struct{ Msg string }

// Error returns the engine's message.
func (e *Error) Error() string { return "sqlitecli: " + e.Msg }

// busyError is a retryable engine fault (SQLITE_BUSY / SQLITE_LOCKED). It
// satisfies the Transient() contract the executor's retry predicate checks.
type busyError struct{ msg string }

func (e *busyError) Error() string { return "sqlitecli: transient: " + e.msg }

// Transient marks the fault retryable.
func (e *busyError) Transient() bool { return true }

// classifyShell maps a shell failure onto the retry classification: the
// process exit code is SQLite's primary result code, so BUSY(5) and
// LOCKED(6) — the only codes a retry can ride out — become transient and
// everything else permanent.
func classifyShell(err error, stderr string) error {
	msg := strings.TrimSpace(stderr)
	if msg == "" {
		msg = err.Error()
	}
	var xerr *exec.ExitError
	if errors.As(err, &xerr) {
		switch xerr.ExitCode() {
		case 5, 6: // SQLITE_BUSY, SQLITE_LOCKED
			return &busyError{msg: msg}
		}
	}
	lower := strings.ToLower(msg)
	if strings.Contains(lower, "database is locked") || strings.Contains(lower, "database table is locked") {
		return &busyError{msg: msg}
	}
	return &Error{Msg: msg}
}

// interpolate substitutes '?' placeholders with escaped literals. The scan
// is quote-aware: placeholders inside '...' string literals, "..." quoted
// identifiers or [...] bracket identifiers are left alone.
func interpolate(query string, args []driver.NamedValue) (string, error) {
	var b strings.Builder
	b.Grow(len(query) + 16*len(args))
	next := 0
	for i := 0; i < len(query); i++ {
		ch := query[i]
		switch ch {
		case '\'', '"', '`':
			// Quoted region: copy through the matching close quote, honoring
			// doubled quotes as escapes.
			b.WriteByte(ch)
			for i++; i < len(query); i++ {
				b.WriteByte(query[i])
				if query[i] == ch {
					if i+1 < len(query) && query[i+1] == ch {
						i++
						b.WriteByte(ch)
						continue
					}
					break
				}
			}
		case '[':
			b.WriteByte(ch)
			for i++; i < len(query); i++ {
				b.WriteByte(query[i])
				if query[i] == ']' {
					break
				}
			}
		case '?':
			if next >= len(args) {
				return "", fmt.Errorf("sqlitecli: statement has more placeholders than the %d bound args", len(args))
			}
			lit, err := literal(args[next].Value)
			if err != nil {
				return "", err
			}
			b.WriteString(lit)
			next++
		default:
			b.WriteByte(ch)
		}
	}
	if next != len(args) {
		return "", fmt.Errorf("sqlitecli: %d args bound but statement has %d placeholders", len(args), next)
	}
	return b.String(), nil
}

// literal renders one bound value as a SQLite literal.
func literal(v driver.Value) (string, error) {
	switch x := v.(type) {
	case nil:
		return "NULL", nil
	case int64:
		return strconv.FormatInt(x, 10), nil
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return "", fmt.Errorf("sqlitecli: float %v is not representable", x)
		}
		s := strconv.FormatFloat(x, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s, nil
	case bool:
		if x {
			return "1", nil
		}
		return "0", nil
	case string:
		if strings.ContainsRune(x, 0) {
			return "", errors.New("sqlitecli: string argument contains a NUL byte")
		}
		return "'" + strings.ReplaceAll(x, "'", "''") + "'", nil
	case []byte:
		return "X'" + hex.EncodeToString(x) + "'", nil
	case time.Time:
		return "'" + x.UTC().Format(time.RFC3339Nano) + "'", nil
	default:
		return "", fmt.Errorf("sqlitecli: unsupported argument type %T", v)
	}
}

// rows is the materialized JSON result. Column order (and duplicate column
// names) follow the engine's output order; values are int64, float64,
// string or nil.
type rows struct {
	cols []string
	vals [][]driver.Value
	next int
}

func (r *rows) Columns() []string { return r.cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.next >= len(r.vals) {
		return io.EOF
	}
	copy(dest, r.vals[r.next])
	r.next++
	return nil
}

// parseJSONRows decodes the shell's .mode json output: an array of objects,
// one per row, keys in SELECT-list order. The token-level walk (instead of
// Unmarshal into maps) preserves duplicate column names and column order. An
// empty output is a zero-row result with unknown columns — the backend layer
// derives column names from the query AST, so none are synthesized here.
func parseJSONRows(out string) (*rows, error) {
	r := &rows{}
	trimmed := strings.TrimSpace(out)
	if trimmed == "" {
		return r, nil
	}
	dec := json.NewDecoder(strings.NewReader(trimmed))
	dec.UseNumber()
	if err := expectDelim(dec, '['); err != nil {
		return nil, fmt.Errorf("sqlitecli: malformed json output: %w", err)
	}
	first := true
	for dec.More() {
		if err := expectDelim(dec, '{'); err != nil {
			return nil, fmt.Errorf("sqlitecli: malformed row: %w", err)
		}
		var row []driver.Value
		for dec.More() {
			keyTok, err := dec.Token()
			if err != nil {
				return nil, fmt.Errorf("sqlitecli: malformed row key: %w", err)
			}
			key, ok := keyTok.(string)
			if !ok {
				return nil, fmt.Errorf("sqlitecli: row key %v is not a string", keyTok)
			}
			if first {
				r.cols = append(r.cols, key)
			}
			valTok, err := dec.Token()
			if err != nil {
				return nil, fmt.Errorf("sqlitecli: malformed row value: %w", err)
			}
			v, err := tokenValue(valTok)
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		if err := expectDelim(dec, '}'); err != nil {
			return nil, fmt.Errorf("sqlitecli: unterminated row: %w", err)
		}
		if !first && len(row) != len(r.cols) {
			return nil, fmt.Errorf("sqlitecli: row has %d values, want %d", len(row), len(r.cols))
		}
		first = false
		r.vals = append(r.vals, row)
	}
	if err := expectDelim(dec, ']'); err != nil {
		return nil, fmt.Errorf("sqlitecli: unterminated result: %w", err)
	}
	return r, nil
}

func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok || d != want {
		return fmt.Errorf("got %v, want %v", tok, want)
	}
	return nil
}

// tokenValue converts one JSON scalar into a driver.Value: integers stay
// int64 (SQLite prints INTEGER values without a decimal point), everything
// else numeric becomes float64.
func tokenValue(tok json.Token) (driver.Value, error) {
	switch x := tok.(type) {
	case nil:
		return nil, nil
	case string:
		return x, nil
	case bool:
		return x, nil
	case json.Number:
		s := x.String()
		if !strings.ContainsAny(s, ".eE") {
			if i, err := strconv.ParseInt(s, 10, 64); err == nil {
				return i, nil
			}
		}
		f, err := x.Float64()
		if err != nil {
			return nil, fmt.Errorf("sqlitecli: unparseable number %q: %w", s, err)
		}
		return f, nil
	default:
		return nil, fmt.Errorf("sqlitecli: unexpected value token %v (%T)", tok, tok)
	}
}
