package sqlitecli

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"io"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func nv(t *testing.T, vals ...driver.Value) []driver.NamedValue {
	t.Helper()
	out := make([]driver.NamedValue, len(vals))
	for i, v := range vals {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

func TestInterpolate(t *testing.T) {
	cases := []struct {
		name  string
		query string
		args  []driver.Value
		want  string
	}{
		{"basic", "SELECT * FROM t WHERE a = ? AND b = ?", []driver.Value{int64(1), "x"}, "SELECT * FROM t WHERE a = 1 AND b = 'x'"},
		{"quote-in-arg", "SELECT ?", []driver.Value{"O'Brien"}, "SELECT 'O''Brien'"},
		{"placeholder-in-string", "SELECT '?' , ?", []driver.Value{int64(2)}, "SELECT '?' , 2"},
		{"placeholder-in-ident", `SELECT "a?b" FROM t WHERE c = ?`, []driver.Value{int64(3)}, `SELECT "a?b" FROM t WHERE c = 3`},
		{"placeholder-in-bracket", "SELECT [a?b] FROM t WHERE c = ?", []driver.Value{int64(4)}, "SELECT [a?b] FROM t WHERE c = 4"},
		{"doubled-quote-string", "SELECT 'it''s ?' WHERE x = ?", []driver.Value{int64(5)}, "SELECT 'it''s ?' WHERE x = 5"},
		{"null", "SELECT ?", []driver.Value{nil}, "SELECT NULL"},
		{"float-integral", "SELECT ?", []driver.Value{float64(2)}, "SELECT 2.0"},
		{"no-args", "SELECT 1", nil, "SELECT 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := interpolate(tc.query, nv(t, tc.args...))
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Fatalf("got %s, want %s", got, tc.want)
			}
		})
	}
}

func TestInterpolateArityErrors(t *testing.T) {
	if _, err := interpolate("SELECT ?", nv(t)); err == nil {
		t.Error("missing arg accepted")
	}
	if _, err := interpolate("SELECT 1", nv(t, int64(1))); err == nil {
		t.Error("excess arg accepted")
	}
	if _, err := interpolate("SELECT ?", nv(t, "nul\x00")); err == nil {
		t.Error("NUL byte in arg accepted")
	}
}

func TestParseJSONRows(t *testing.T) {
	// Duplicate keys must be preserved in order — SQLite emits one key per
	// SELECT item, even when names collide.
	out := `[{"a":1,"a":"x'y","b":2.5},
{"a":null,"a":"z","b":-3.0}]`
	rows, err := parseJSONRows(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "a", "b"}; !reflect.DeepEqual(rows.cols, want) {
		t.Fatalf("cols = %v, want %v", rows.cols, want)
	}
	dest := make([]driver.Value, 3)
	if err := rows.Next(dest); err != nil {
		t.Fatal(err)
	}
	if dest[0] != int64(1) || dest[1] != "x'y" || dest[2] != 2.5 {
		t.Fatalf("row 1 = %v", dest)
	}
	if err := rows.Next(dest); err != nil {
		t.Fatal(err)
	}
	if dest[0] != nil || dest[1] != "z" || dest[2] != -3.0 {
		t.Fatalf("row 2 = %v", dest)
	}
	if err := rows.Next(dest); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestParseJSONRowsEmpty(t *testing.T) {
	rows, err := parseJSONRows("")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.cols) != 0 || len(rows.vals) != 0 {
		t.Fatalf("empty output produced %v / %v", rows.cols, rows.vals)
	}
}

func TestParseJSONRowsNumberTyping(t *testing.T) {
	rows, err := parseJSONRows(`[{"i":42,"f":42.0,"e":1.0e+21,"big":9223372036854775807}]`)
	if err != nil {
		t.Fatal(err)
	}
	dest := make([]driver.Value, 4)
	if err := rows.Next(dest); err != nil {
		t.Fatal(err)
	}
	if _, ok := dest[0].(int64); !ok {
		t.Errorf("integer scanned as %T", dest[0])
	}
	if _, ok := dest[1].(float64); !ok {
		t.Errorf("42.0 scanned as %T", dest[1])
	}
	if _, ok := dest[2].(float64); !ok {
		t.Errorf("1.0e+21 scanned as %T", dest[2])
	}
	if dest[3] != int64(9223372036854775807) {
		t.Errorf("max int64 = %v (%T)", dest[3], dest[3])
	}
}

func TestClassifyShell(t *testing.T) {
	if err := classifyShell(errors.New("boom"), "Error: database is locked"); !isTransientErr(err) {
		t.Errorf("locked not transient: %v", err)
	}
	err := classifyShell(errors.New("exit status 1"), "Error: in prepare, no such table: Zork")
	if isTransientErr(err) {
		t.Errorf("prepare error classified transient: %v", err)
	}
	var perm *Error
	if !errors.As(err, &perm) {
		t.Errorf("permanent error has type %T", err)
	}
}

func isTransientErr(err error) bool {
	var m interface{ Transient() bool }
	return errors.As(err, &m) && m.Transient()
}

// The remaining tests exercise the real shell and skip when absent.

func openTemp(t *testing.T) *sql.DB {
	t.Helper()
	if !Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	path := filepath.Join(t.TempDir(), "t.db")
	db, err := sql.Open(DriverName, path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestLiveRoundTrip(t *testing.T) {
	db := openTemp(t)
	ctx := context.Background()
	if _, err := db.ExecContext(ctx, "CREATE TABLE t (a TEXT, b INTEGER, c REAL)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExecContext(ctx, "INSERT INTO t VALUES (?, ?, ?), (?, ?, ?)",
		"x'y", int64(5), 2.0, nil, int64(-1), nil); err != nil {
		t.Fatal(err)
	}
	rows, err := db.QueryContext(ctx, "SELECT a, b, c FROM t ORDER BY b")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got [][]any
	for rows.Next() {
		var a, b, c any
		if err := rows.Scan(&a, &b, &c); err != nil {
			t.Fatal(err)
		}
		got = append(got, []any{a, b, c})
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	want := [][]any{{nil, int64(-1), nil}, {"x'y", int64(5), 2.0}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLivePrepareRejectsBadSQL(t *testing.T) {
	db := openTemp(t)
	if _, err := db.Exec("CREATE TABLE t (a)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Prepare("SELECT FROM WHERE"); err == nil {
		t.Error("syntactically invalid SQL prepared without error")
	}
	if _, err := db.Prepare("SELECT * FROM no_such_table"); err == nil {
		t.Error("unknown table prepared without error")
	}
	stmt, err := db.Prepare("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	stmt.Close()
}

func TestLiveReadonly(t *testing.T) {
	if !Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	path := filepath.Join(t.TempDir(), "ro.db")
	rw, err := sql.Open(DriverName, path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Exec("CREATE TABLE t (a)"); err != nil {
		t.Fatal(err)
	}
	rw.Close()
	ro, err := sql.Open(DriverName, path+"?mode=ro")
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	var n int64
	if err := ro.QueryRow("SELECT COUNT(*) FROM t").Scan(&n); err != nil || n != 0 {
		t.Fatalf("readonly read: %v %d", err, n)
	}
	if _, err := ro.Exec("INSERT INTO t VALUES (1)"); err == nil {
		t.Error("write through readonly connection succeeded")
	}
}

func TestLiveContextCancel(t *testing.T) {
	db := openTemp(t)
	if _, err := db.Exec("CREATE TABLE t (a)"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // let the deadline pass before the query starts
	_, err := db.QueryContext(ctx, "SELECT * FROM t")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

func TestDSNErrors(t *testing.T) {
	if !Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	for _, dsn := range []string{"", "?mode=ro", "/tmp/x.db?mode=banana"} {
		db, err := sql.Open(DriverName, dsn)
		if err != nil {
			continue // some errors surface at Open
		}
		if err := db.Ping(); err == nil {
			t.Errorf("DSN %q accepted", dsn)
		}
		db.Close()
	}
}
