package backend

import (
	"context"
	"database/sql"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"kwagg/internal/backend/sqlitecli"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqlast/render"
)

// SQLBackend executes rendered statements on any database/sql engine. The
// renderer is parameterized by dialect, so the same backend type serves
// SQLite and Postgres; only the connection and dialect differ.
type SQLBackend struct {
	db      *sql.DB
	dialect render.Dialect
	name    string

	// Inline renders literals into the SQL text instead of binding
	// placeholders. The CLI-backed SQLite driver interpolates anyway, but
	// server engines should keep the default (placeholders).
	Inline bool

	// cleanup, when set, runs after the connection closes (temp-file removal
	// for NewSQLite).
	cleanup func() error
}

// NewSQL wraps an opened database/sql handle as a Backend. The name shows up
// in metrics and diagnostics; keep it short and stable ("sqlite",
// "postgres").
func NewSQL(db *sql.DB, d render.Dialect, name string) *SQLBackend {
	return &SQLBackend{db: db, dialect: d, name: name}
}

// Name identifies the backend.
func (b *SQLBackend) Name() string { return b.name }

// Dialect reports the SQL dialect the backend renders.
func (b *SQLBackend) Dialect() render.Dialect { return b.dialect }

// DB exposes the underlying handle (test seams; loading fixtures).
func (b *SQLBackend) DB() *sql.DB { return b.db }

// Exec renders q for the backend's dialect and runs it. Driver faults are
// classified for the retry layer (see classifyDriver); result column names
// come from the query AST so answer shapes match the in-memory engine even
// where the external engine names computed columns differently.
func (b *SQLBackend) Exec(ctx context.Context, q *sqlast.Query) (Rows, error) {
	var (
		rows *sql.Rows
		err  error
	)
	if b.Inline {
		var text string
		text, err = render.SQL(q, b.dialect)
		if err != nil {
			return nil, err
		}
		rows, err = b.db.QueryContext(ctx, text)
	} else {
		var text string
		var args []any
		text, args, err = render.Params(q, b.dialect)
		if err != nil {
			return nil, err
		}
		rows, err = b.db.QueryContext(ctx, text, args...)
	}
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, classifyDriver(err)
	}
	return &sqlRows{cols: OutputColumns(q), rows: rows}, nil
}

// Close closes the connection pool and runs any registered cleanup.
func (b *SQLBackend) Close() error {
	err := b.db.Close()
	if b.cleanup != nil {
		if cerr := b.cleanup(); err == nil {
			err = cerr
		}
	}
	return err
}

// sqlRows adapts *sql.Rows to the backend Rows interface, scanning each row
// into relation values (int64, float64, string, nil).
type sqlRows struct {
	cols []string
	rows *sql.Rows
}

func (r *sqlRows) Columns() []string { return r.cols }

func (r *sqlRows) Next() (relation.Tuple, error) {
	if !r.rows.Next() {
		if err := r.rows.Err(); err != nil {
			return nil, classifyDriver(err)
		}
		return nil, io.EOF
	}
	raw := make([]any, len(r.cols))
	ptrs := make([]any, len(r.cols))
	for i := range raw {
		ptrs[i] = &raw[i]
	}
	if err := r.rows.Scan(ptrs...); err != nil {
		return nil, classifyDriver(err)
	}
	t := make(relation.Tuple, len(raw))
	for i, v := range raw {
		rv, err := toValue(v)
		if err != nil {
			return nil, err
		}
		t[i] = rv
	}
	return t, nil
}

func (r *sqlRows) Close() error { return r.rows.Close() }

// toValue narrows a scanned driver value to the relation value domain.
func toValue(v any) (relation.Value, error) {
	switch x := v.(type) {
	case nil:
		return nil, nil
	case int64:
		return x, nil
	case float64:
		return x, nil
	case string:
		return x, nil
	case []byte:
		return string(x), nil
	case bool:
		if x {
			return int64(1), nil
		}
		return int64(0), nil
	default:
		return nil, fmt.Errorf("backend: driver returned unsupported value type %T", v)
	}
}

// NewSQLite exports db into a temporary SQLite file and opens it read-only
// through the CLI-backed driver. Close removes the temp file. Callers should
// gate on sqlitecli.Available() first; without the sqlite3 binary this
// returns an error.
func NewSQLite(db *relation.Database) (*SQLBackend, error) {
	dir, err := os.MkdirTemp("", "kwagg-sqlite-")
	if err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	path := filepath.Join(dir, "oracle.db")
	if err := LoadSQLite(db, path); err != nil {
		os.RemoveAll(dir)
		return nil, err
	}
	handle, err := sql.Open(sqlitecli.DriverName, path+"?mode=ro")
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("backend: %w", err)
	}
	b := NewSQL(handle, render.SQLite, "sqlite")
	b.Inline = true // the CLI driver would interpolate anyway; skip the indirection
	b.cleanup = func() error { return os.RemoveAll(dir) }
	return b, nil
}
