package backend_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"kwagg/internal/backend"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqlast/render"
	"kwagg/internal/sqldb"
)

// cornerDB builds a tiny database with the values that historically break
// naive escaping and NULL handling.
func cornerDB() *relation.Database {
	db := relation.NewDatabase("corner")
	item := db.AddSchema(relation.NewSchema("Item", "Id", "Name", "Qty INT", "Price FLOAT").Key("Id"))
	item.MustInsert("i1", "widget", int64(5), 1.5)
	item.MustInsert("i2", "NULL", int64(5), 2.5) // the string, not the value
	item.MustInsert("i3", nil, int64(7), nil)
	item.MustInsert("i4", "O'Brien\n\x1f", int64(0), 0.25)
	db.Freeze()
	return db
}

func parse(t *testing.T, sql string) *sqlast.Query {
	t.Helper()
	q, err := sqldb.Parse(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return q
}

func TestSQLDBBackend(t *testing.T) {
	db := cornerDB()
	b := backend.NewSQLDB(db, sqldb.ExecConfig{})
	defer b.Close()
	if b.Name() != "sqldb" {
		t.Fatalf("name = %s", b.Name())
	}
	rows, err := b.Exec(context.Background(), parse(t, "SELECT I.Id FROM Item I WHERE I.Qty = 5"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := backend.Collect(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %+v, want i1 and i2", res.Rows)
	}
}

func TestOutputColumns(t *testing.T) {
	q := parse(t, "SELECT I.Name, COUNT(I.Id) AS n, SUM(I.Qty) FROM Item I GROUP BY I.Name")
	got := backend.OutputColumns(q)
	want := []string{"Name", "n", "SUM(I.Qty)"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("col %d = %q, want %q", i, got[i], want[i])
		}
	}
	// Must agree with the in-memory engine's own naming.
	res, err := sqldb.Exec(cornerDB(), q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Columns {
		if res.Columns[i] != got[i] {
			t.Errorf("col %d: sqldb names %q, OutputColumns %q", i, res.Columns[i], got[i])
		}
	}
}

func TestScript(t *testing.T) {
	script, err := backend.Script(cornerDB(), render.SQLite)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`CREATE TABLE "Item" ("Id" TEXT, "Name" TEXT, "Qty" INTEGER, "Price" REAL);`,
		`INSERT INTO "Item" VALUES`,
		`('i1', 'widget', 5, 1.5)`,
		`('i2', 'NULL', 5, 2.5)`, // the string stays quoted
		`('i3', NULL, 7, NULL)`,  // the value stays bare
		`('i4', 'O''Brien`,
	} {
		if !strings.Contains(script, want) {
			t.Errorf("script missing %q:\n%s", want, script)
		}
	}
	pg, err := backend.Script(cornerDB(), render.Postgres)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pg, `"Qty" BIGINT`) || !strings.Contains(pg, `"Price" DOUBLE PRECISION`) {
		t.Errorf("postgres column types wrong:\n%s", pg)
	}
	if _, err := backend.Script(cornerDB(), render.SQLDB); err == nil {
		t.Error("Script accepted the sqldb dialect")
	}
}

func TestScriptBatchesInserts(t *testing.T) {
	db := relation.NewDatabase("big")
	tbl := db.AddSchema(relation.NewSchema("N", "Id INT").Key("Id"))
	for i := 0; i < 1200; i++ {
		tbl.MustInsert(int64(i))
	}
	db.Freeze()
	script, err := backend.Script(db, render.SQLite)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(script, "INSERT INTO"); n != 3 { // 500 + 500 + 200
		t.Errorf("1200 rows produced %d INSERT statements, want 3", n)
	}
}

func TestIsTransient(t *testing.T) {
	base := errors.New("boom")
	if backend.IsTransient(base) {
		t.Error("plain error transient")
	}
	te := &backend.TransientError{Err: base}
	if !backend.IsTransient(te) {
		t.Error("TransientError not transient")
	}
	if !backend.IsTransient(wrapErr{te}) {
		t.Error("wrapped TransientError not transient")
	}
	if !errors.Is(te, base) {
		t.Error("TransientError does not unwrap")
	}
}

type wrapErr struct{ err error }

func (w wrapErr) Error() string { return "wrap: " + w.err.Error() }
func (w wrapErr) Unwrap() error { return w.err }

func TestCollectError(t *testing.T) {
	rows := &failingRows{}
	if _, err := backend.Collect(rows); err == nil {
		t.Fatal("Collect swallowed the row error")
	}
	if !rows.closed {
		t.Error("Collect did not close the rows on error")
	}
}

type failingRows struct{ closed bool }

func (r *failingRows) Columns() []string { return []string{"a"} }
func (r *failingRows) Next() (relation.Tuple, error) {
	return nil, errors.New("stream died")
}
func (r *failingRows) Close() error { r.closed = true; return nil }
