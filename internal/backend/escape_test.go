// Escaping edge cases executed end to end: values and identifiers that
// break naive quoting (embedded quotes, control bytes, newlines, the
// literal string "NULL") must survive export → SQLite → query → scan and
// produce the same answers as the in-memory engine. This is the execution
// side of the renderer's escaping unit tests — the regression net for the
// PR 4 separator-collision class of bug, now against a real engine.
package backend_test

import (
	"context"
	"strings"
	"testing"

	"kwagg/internal/backend"
	"kwagg/internal/backend/sqlitecli"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqlast/render"
)

// nastyValues are the string payloads that historically break SQL transport.
var nastyValues = []string{
	"O'Brien",
	`back\slash`,
	"double''quote",
	"unit\x1fsep",
	"line\nbreak",
	"carriage\rreturn",
	"tab\tstop",
	"NULL", // the string, not the value
	`"quoted"`,
	"trailing space ",
	"semi;colon -- comment",
}

// nastyDB stores every nasty value in a table whose name and columns
// themselves need quoting.
func nastyDB() *relation.Database {
	db := relation.NewDatabase("nasty")
	t := db.AddSchema(relation.NewSchema("Weird Table", "Id INT", "Payload").Key("Id"))
	for i, v := range nastyValues {
		t.MustInsert(int64(i), v)
	}
	t.MustInsert(int64(len(nastyValues)), nil) // and one real NULL
	db.Freeze()
	return db
}

// TestEscapeRoundTripSQLite loads the nasty database into SQLite and checks
// every payload is retrievable by exact equality — proving the exporter's
// literals, the renderer's predicates and the driver's result decoding agree
// byte for byte.
func TestEscapeRoundTripSQLite(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	db := nastyDB()
	ext, err := backend.NewSQLite(db)
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	ctx := context.Background()

	for i, v := range nastyValues {
		q := &sqlast.Query{
			Select: []sqlast.SelectItem{
				{Expr: sqlast.ColExpr{Col: sqlast.Col{Table: "W", Column: "Id"}}},
				{Expr: sqlast.ColExpr{Col: sqlast.Col{Table: "W", Column: "Payload"}}},
			},
			From:  []sqlast.TableRef{{Name: "Weird Table", Alias: "W"}},
			Where: []sqlast.Pred{sqlast.ComparePred{Col: sqlast.Col{Table: "W", Column: "Payload"}, Op: sqlast.OpEq, Value: v}},
		}
		rows, err := ext.Exec(ctx, q)
		if err != nil {
			t.Fatalf("%q: %v", v, err)
		}
		res, err := backend.Collect(rows)
		if err != nil {
			t.Fatalf("%q: %v", v, err)
		}
		if len(res.Rows) != 1 {
			t.Errorf("%q: matched %d rows, want exactly 1: %v", v, len(res.Rows), res.Rows)
			continue
		}
		if res.Rows[0][0] != int64(i) || res.Rows[0][1] != v {
			t.Errorf("%q: got row %v, want [%d %q]", v, res.Rows[0], i, v)
		}
	}

	// The string 'NULL' must not match the genuinely missing payload.
	q := &sqlast.Query{
		Select: []sqlast.SelectItem{{Expr: sqlast.AggExpr{Func: sqlast.AggCount, Arg: sqlast.Col{Table: "W", Column: "Id"}}, Alias: "n"}},
		From:   []sqlast.TableRef{{Name: "Weird Table", Alias: "W"}},
		Where:  []sqlast.Pred{sqlast.ComparePred{Col: sqlast.Col{Table: "W", Column: "Payload"}, Op: sqlast.OpEq, Value: "NULL"}},
	}
	rows, err := ext.Exec(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := backend.Collect(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(1) {
		t.Errorf("'NULL' equality matched %v rows, want exactly the string row", res.Rows)
	}
}

// TestEscapeDialectsRenderIdentically checks both external dialects produce
// a parseable rendering for every nasty value in both predicate positions,
// and that the two dialects' inline literals round-trip to the same value
// shape (Postgres E-strings are a superset encoding of the same bytes).
func TestEscapeDialectsRenderIdentically(t *testing.T) {
	for _, v := range nastyValues {
		lite, err := render.Literal(v, render.SQLite)
		if err != nil {
			t.Fatalf("sqlite literal %q: %v", v, err)
		}
		pg, err := render.Literal(v, render.Postgres)
		if err != nil {
			t.Fatalf("postgres literal %q: %v", v, err)
		}
		// SQLite literals are raw: stripping the quotes and undoing ''
		// doubling must recover the value exactly.
		inner := strings.TrimSuffix(strings.TrimPrefix(lite, "'"), "'")
		if got := strings.ReplaceAll(inner, "''", "'"); got != v {
			t.Errorf("sqlite literal %s does not round-trip %q", lite, v)
		}
		// Control characters must never appear raw in the Postgres form.
		if strings.ContainsAny(pg, "\n\r\t\x1f") {
			t.Errorf("postgres literal %q carries raw control bytes", pg)
		}
	}
	for _, ident := range []string{"Weird Table", `we"ird`, "new\nline", "x\x1fy"} {
		for _, d := range []render.Dialect{render.SQLite, render.Postgres} {
			got, err := render.Ident(ident, d)
			if err != nil {
				t.Fatalf("Ident(%q, %s): %v", ident, d, err)
			}
			inner := strings.TrimSuffix(strings.TrimPrefix(got, `"`), `"`)
			if strings.ReplaceAll(inner, `""`, `"`) != ident {
				t.Errorf("%s ident %s does not round-trip %q", d, got, ident)
			}
		}
	}
}

// TestEscapeIdentifierExecution proves quoted identifiers work end to end:
// the table is named "Weird Table" and the query must still run on SQLite.
func TestEscapeIdentifierExecution(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	db := nastyDB()
	ext, err := backend.NewSQLite(db)
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	q := &sqlast.Query{
		Select: []sqlast.SelectItem{{Expr: sqlast.AggExpr{Func: sqlast.AggCount, Arg: sqlast.Col{Table: "W", Column: "Id"}}, Alias: "n"}},
		From:   []sqlast.TableRef{{Name: "Weird Table", Alias: "W"}},
	}
	rows, err := ext.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := backend.Collect(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(len(nastyValues)+1) {
		t.Fatalf("COUNT over quoted table = %v, want %d", res.Rows, len(nastyValues)+1)
	}
}
