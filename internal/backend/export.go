package backend

import (
	"fmt"
	"os/exec"
	"strings"

	"kwagg/internal/backend/sqlitecli"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast/render"
)

// insertBatch bounds the rows per multi-row INSERT in an export script:
// large enough to amortize statement overhead, small enough to stay far
// under any engine's statement-size and SQL-depth limits.
const insertBatch = 500

// Script renders a frozen relation.Database as a SQL script — CREATE TABLE
// plus batched multi-row INSERTs — in the given external dialect. Tables are
// emitted in registration order and rows in storage order, so the script is
// deterministic for a given database. No constraints are emitted: the
// exported copy is an execution oracle, not a system of record, and the
// frozen storage already validated keys on Freeze.
func Script(db *relation.Database, d render.Dialect) (string, error) {
	if d == render.SQLDB {
		return "", fmt.Errorf("backend: cannot export to the %s dialect (in-memory engine has no DDL)", d)
	}
	var b strings.Builder
	for _, tbl := range db.Tables() {
		sc := tbl.Schema
		tname, err := render.Ident(sc.Name, d)
		if err != nil {
			return "", fmt.Errorf("backend: table %q: %w", sc.Name, err)
		}
		b.WriteString("CREATE TABLE ")
		b.WriteString(tname)
		b.WriteString(" (")
		for i, attr := range sc.Attributes {
			if i > 0 {
				b.WriteString(", ")
			}
			aname, err := render.Ident(attr.Name, d)
			if err != nil {
				return "", fmt.Errorf("backend: column %s.%s: %w", sc.Name, attr.Name, err)
			}
			b.WriteString(aname)
			b.WriteByte(' ')
			b.WriteString(columnType(attr.Type, d))
		}
		b.WriteString(");\n")

		rows := tbl.Tuples
		for start := 0; start < len(rows); start += insertBatch {
			end := start + insertBatch
			if end > len(rows) {
				end = len(rows)
			}
			b.WriteString("INSERT INTO ")
			b.WriteString(tname)
			b.WriteString(" VALUES\n")
			for r := start; r < end; r++ {
				if r > start {
					b.WriteString(",\n")
				}
				b.WriteString("  (")
				for c, v := range rows[r] {
					if c > 0 {
						b.WriteString(", ")
					}
					lit, err := render.Literal(v, d)
					if err != nil {
						return "", fmt.Errorf("backend: %s row %d col %d: %w", sc.Name, r, c, err)
					}
					b.WriteString(lit)
				}
				b.WriteByte(')')
			}
			b.WriteString(";\n")
		}
	}
	return b.String(), nil
}

// columnType maps a relation type to a column type of the dialect. Dates are
// stored as TEXT: the frozen engine treats them as formatted strings and the
// oracle must compare them the same way.
func columnType(t relation.Type, d render.Dialect) string {
	switch t {
	case relation.TypeInt:
		if d == render.Postgres {
			return "BIGINT"
		}
		return "INTEGER"
	case relation.TypeFloat:
		if d == render.Postgres {
			return "DOUBLE PRECISION"
		}
		return "REAL"
	default: // TypeString, TypeDate
		return "TEXT"
	}
}

// LoadSQLite exports db into a fresh SQLite database file at path by piping
// the SQLite-dialect script through one sqlite3 shell. The file must not
// already contain the exported tables (pass a new temp file).
func LoadSQLite(db *relation.Database, path string) error {
	bin, err := sqlitecli.Binary()
	if err != nil {
		return fmt.Errorf("backend: sqlite3 binary not found: %w", err)
	}
	script, err := Script(db, render.SQLite)
	if err != nil {
		return err
	}
	cmd := exec.Command(bin, "-batch", path)
	cmd.Stdin = strings.NewReader(script)
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return fmt.Errorf("backend: loading %s: %s", path, msg)
	}
	return nil
}
