// Failure-mode contracts of the external backend path, mirroring the chaos
// suite's guarantees for the embedded engine: cancellation aborts a running
// statement and surfaces the context error, transient backend faults are
// retried by the executor while permanent ones are not, and the retry
// classification flows through chaos.IsTransient via the Transient() bool
// contract.
package backend_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"kwagg/internal/backend"
	"kwagg/internal/backend/sqlitecli"
	"kwagg/internal/chaos"
	"kwagg/internal/core"
	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// slowDB is a database whose self-join cross product is large enough that a
// COUNT over it cannot finish before the test cancels it.
func slowDB() *relation.Database {
	db := relation.NewDatabase("slow")
	n := db.AddSchema(relation.NewSchema("N", "Id INT").Key("Id"))
	for i := 0; i < 800; i++ {
		n.MustInsert(int64(i))
	}
	db.Freeze()
	return db
}

// crossCount is COUNT(*) over an 800^3 cartesian self-join — ~5e8 rows of
// nested-loop work for SQLite.
func crossCount() *sqlast.Query {
	return &sqlast.Query{
		Select: []sqlast.SelectItem{{Expr: sqlast.AggExpr{Func: sqlast.AggCount, Arg: sqlast.Col{Table: "A", Column: "Id"}}, Alias: "n"}},
		From: []sqlast.TableRef{
			{Name: "N", Alias: "A"}, {Name: "N", Alias: "B"}, {Name: "N", Alias: "C"},
		},
	}
}

func TestSQLiteCancellationMidQuery(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	ext, err := backend.NewSQLite(slowDB())
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	//kwlint:ignore detclock wall-clock duration is diagnostic output for a missed cancellation
	start := time.Now()
	rows, err := ext.Exec(ctx, crossCount())
	if err == nil {
		res, cerr := backend.Collect(rows)
		//kwlint:ignore detclock wall-clock duration is diagnostic output for a missed cancellation
		t.Fatalf("cross join finished despite cancellation: %v rows, %v (in %v)", res, cerr, time.Since(start))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if backend.IsTransient(err) {
		t.Error("cancellation classified transient — it would be retried")
	}
}

func TestSQLiteExpiredDeadline(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	ext, err := backend.NewSQLite(cornerDB())
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err = ext.Exec(ctx, parse(t, "SELECT I.Id FROM Item I"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}

// flakyBackend fails the first failures Exec calls with err, then delegates.
type flakyBackend struct {
	inner    backend.Backend
	failures int32
	err      error
}

func (f *flakyBackend) Name() string { return "flaky-" + f.inner.Name() }
func (f *flakyBackend) Close() error { return f.inner.Close() }
func (f *flakyBackend) Exec(ctx context.Context, q *sqlast.Query) (backend.Rows, error) {
	if atomic.AddInt32(&f.failures, -1) >= 0 {
		return nil, f.err
	}
	return f.inner.Exec(ctx, q)
}

// execUniversity opens the university system, swaps in the backend, and runs
// one workload query through the full executor (deadlines, retries, pool).
func execUniversity(t *testing.T, wrap func(backend.Backend) backend.Backend) *core.ExecReport {
	t.Helper()
	db := university.New()
	sys, err := core.Open(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ext, err := backend.NewSQLite(sys.Data)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ext.Close() })
	sys.Backend = wrap(ext)
	ins, err := sys.Interpret("COUNT Student GROUPBY Course", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ins) == 0 {
		t.Fatal("no interpretations")
	}
	return sys.ExecuteAllReport(context.Background(), ins)
}

func TestTransientBackendFaultIsRetried(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	rep := execUniversity(t, func(b backend.Backend) backend.Backend {
		return &flakyBackend{inner: b, failures: 1,
			err: &backend.TransientError{Err: errors.New("engine momentarily busy")}}
	})
	if len(rep.Failed) != 0 {
		t.Fatalf("transient fault not ridden out: %v", rep.Failed[0].Err)
	}
	if rep.Retries == 0 {
		t.Fatal("no retries recorded for a transient backend fault")
	}
	if len(rep.Answers) == 0 {
		t.Fatal("no answers completed")
	}
}

func TestPermanentBackendFaultIsNotRetried(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	boom := errors.New("no such table: Zork")
	rep := execUniversity(t, func(b backend.Backend) backend.Backend {
		return &flakyBackend{inner: b, failures: 1, err: boom}
	})
	if rep.Retries != 0 {
		t.Fatalf("permanent backend error was retried %d times", rep.Retries)
	}
	if len(rep.Failed) == 0 {
		t.Fatal("permanent fault vanished")
	}
	if !errors.Is(rep.Failed[0].Err, boom) {
		t.Fatalf("failure is %v, want %v", rep.Failed[0].Err, boom)
	}
}

// TestDriverBusyClassification pins the full chain: a driver busy error is
// recognized by chaos.IsTransient (the executor's retry predicate) without
// the executor importing the driver.
func TestDriverBusyClassification(t *testing.T) {
	busy := &backend.TransientError{Err: errors.New("database is locked (5)")}
	if !chaos.IsTransient(busy) {
		t.Error("chaos.IsTransient does not recognize backend.TransientError")
	}
	if chaos.IsTransient(errors.New("database is locked")) {
		t.Error("unclassified error treated as transient")
	}
}
