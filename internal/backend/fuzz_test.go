// FuzzRender is the renderer's differential fuzz: fuzz bytes drive a
// deterministic builder producing type-correct sqlast queries over a fixed
// schema, and every built query must (a) render to SQL that SQLite accepts —
// the driver's Prepare step runs SQLite's prepare — and (b) produce the same
// answer set on SQLite as on the in-memory engine.
//
// The builder keeps queries inside the semantic intersection the renderer
// guarantees (see docs/BACKENDS.md): comparisons are type-correct for the
// column (SQLite's column affinity converts cross-typed literals, the
// in-memory engine compares formatted strings — the two disagree), CONTAINS
// needles are ASCII (SQLite's lower() folds ASCII only), aggregates
// SUM/AVG take numeric arguments, and LIMIT is never emitted (a tie at the
// cut line makes the kept rows engine-defined).
package backend_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"kwagg/internal/backend"
	"kwagg/internal/backend/sqlitecli"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
)

// fuzzRenderDB is the fixed schema the fuzz queries run over: two joinable
// tables with string, int and float columns, planted NULLs and quote/
// control-byte payloads. The stored strings deliberately exclude the literal
// "NULL": a grouping column holding both NULL and "NULL" hits the documented
// Format-equality divergence (TestKnownDivergenceNULLStringGroupBy), which is
// pinned separately and must not be rediscovered by every fuzz run. The
// string 'NULL' still appears as a predicate constant, where it is safe.
func fuzzRenderDB() *relation.Database {
	db := relation.NewDatabase("fuzzrender")
	s := db.AddSchema(relation.NewSchema("Student", "Sid", "Sname", "Age INT", "Gpa FLOAT").Key("Sid"))
	for i := 0; i < 300; i++ {
		var name relation.Value = fmt.Sprintf("s%d", i%23)
		switch i % 29 {
		case 0:
			name = nil
		case 1:
			name = "null"
		case 2:
			name = "O'Brien"
		case 3:
			name = "a\x1fb"
		}
		var age relation.Value = int64(18 + i%9)
		if i%31 == 0 {
			age = nil
		}
		var gpa relation.Value = float64(i%40) / 8
		if i%37 == 0 {
			gpa = nil
		}
		s.MustInsert(fmt.Sprintf("id%d", i), name, age, gpa)
	}
	e := db.AddSchema(relation.NewSchema("Enrol", "Sid", "Code", "Grade INT").Key("Sid", "Code"))
	for i := 0; i < 400; i++ {
		e.MustInsert(fmt.Sprintf("id%d", i%150), fmt.Sprintf("c%d", i%13), int64(i%11))
	}
	db.Freeze()
	return db
}

// tape consumes fuzz bytes as a sequence of bounded choices; exhausted tape
// yields zeros, so every input builds some query.
type tape struct {
	data []byte
	pos  int
}

func (t *tape) next() byte {
	if t.pos >= len(t.data) {
		return 0
	}
	b := t.data[t.pos]
	t.pos++
	return b
}

func (t *tape) pick(n int) int {
	if n <= 0 {
		return 0
	}
	return int(t.next()) % n
}

// fuzzCol describes one column of the fuzz schema with a constant pool the
// builder draws comparison values from (type-correct by construction).
type fuzzCol struct {
	name   string
	typ    relation.Type
	consts []relation.Value
}

var fuzzTables = map[string][]fuzzCol{
	"Student": {
		{"Sid", relation.TypeString, []relation.Value{"id1", "id250", "nope"}},
		{"Sname", relation.TypeString, []relation.Value{"s5", "NULL", "null", "O'Brien", "a\x1fb"}},
		{"Age", relation.TypeInt, []relation.Value{int64(20), int64(18), int64(99)}},
		{"Gpa", relation.TypeFloat, []relation.Value{0.125, 2.5, 4.875, 0.0}},
	},
	"Enrol": {
		{"Sid", relation.TypeString, []relation.Value{"id1", "id140", "nope"}},
		{"Code", relation.TypeString, []relation.Value{"c5", "c12", "zz"}},
		{"Grade", relation.TypeInt, []relation.Value{int64(0), int64(7), int64(10)}},
	},
}

var fuzzNeedles = []string{"s", "id", "1", "brien", "NULL", "'", "c"}

var cmpOps = []sqlast.CmpOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe}

// buildQuery derives a type-correct query from the tape.
func buildQuery(tp *tape) *sqlast.Query {
	q := &sqlast.Query{}
	type src struct {
		alias string
		cols  []fuzzCol
	}
	srcs := []src{{"S", fuzzTables["Student"]}}
	q.From = append(q.From, sqlast.TableRef{Name: "Student", Alias: "S"})
	if tp.pick(2) == 1 { // join Enrol on the shared string key
		srcs = append(srcs, src{"E", fuzzTables["Enrol"]})
		q.From = append(q.From, sqlast.TableRef{Name: "Enrol", Alias: "E"})
		q.Where = append(q.Where, sqlast.JoinPred{
			Left:  sqlast.Col{Table: "S", Column: "Sid"},
			Right: sqlast.Col{Table: "E", Column: "Sid"},
		})
	}
	anyCol := func() (sqlast.Col, fuzzCol) {
		s := srcs[tp.pick(len(srcs))]
		c := s.cols[tp.pick(len(s.cols))]
		return sqlast.Col{Table: s.alias, Column: c.name}, c
	}

	// Predicates: 0–3, type-correct constants from the column's pool.
	for n := tp.pick(4); n > 0; n-- {
		col, meta := anyCol()
		switch tp.pick(3) {
		case 0:
			q.Where = append(q.Where, sqlast.ComparePred{
				Col: col, Op: cmpOps[tp.pick(len(cmpOps))],
				Value: meta.consts[tp.pick(len(meta.consts))],
			})
		case 1:
			if meta.typ == relation.TypeString {
				q.Where = append(q.Where, sqlast.ContainsPred{
					Col: col, Needle: fuzzNeedles[tp.pick(len(fuzzNeedles))],
				})
			}
		case 2:
			// Column-column comparison within numeric or within string types.
			// Never OpEq: the parser reserves column equality for JoinPred,
			// so ColComparePred{OpEq} is outside the engine's contract.
			col2, meta2 := anyCol()
			bothNum := meta.typ != relation.TypeString && meta2.typ != relation.TypeString
			bothStr := meta.typ == relation.TypeString && meta2.typ == relation.TypeString
			if bothNum || bothStr {
				ops := []sqlast.CmpOp{sqlast.OpNe, sqlast.OpLt, sqlast.OpLe, sqlast.OpGt, sqlast.OpGe}
				q.Where = append(q.Where, sqlast.ColComparePred{
					Left: col, Op: ops[tp.pick(len(ops))], Right: col2,
				})
			}
		}
	}

	if tp.pick(3) == 0 { // grouped aggregate query
		gcol, _ := anyCol()
		q.GroupBy = []sqlast.Col{gcol}
		q.Select = append(q.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: gcol}})
		for n := 1 + tp.pick(2); n > 0; n-- {
			acol, ameta := anyCol()
			fn := []sqlast.AggFunc{sqlast.AggCount, sqlast.AggMin, sqlast.AggMax, sqlast.AggSum, sqlast.AggAvg}[tp.pick(5)]
			if (fn == sqlast.AggSum || fn == sqlast.AggAvg) && ameta.typ == relation.TypeString {
				fn = sqlast.AggCount
			}
			q.Select = append(q.Select, sqlast.SelectItem{
				Expr:  sqlast.AggExpr{Func: fn, Arg: acol, Distinct: tp.pick(3) == 0},
				Alias: fmt.Sprintf("a%d", n),
			})
		}
	} else { // plain projection
		q.Distinct = tp.pick(2) == 0
		for n := 1 + tp.pick(3); n > 0; n-- {
			col, _ := anyCol()
			q.Select = append(q.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: col}})
		}
	}
	// ORDER BY a selected output column. The item gets an explicit alias:
	// without one SQLite resolves the bare name as a table column (ambiguous
	// under a join) instead of the derived output name.
	if tp.pick(3) == 0 {
		i := tp.pick(len(q.Select))
		if q.Select[i].Alias == "" {
			q.Select[i].Alias = "ord"
		}
		q.OrderBy = []sqlast.OrderItem{{Col: sqlast.Col{Column: q.Select[i].Alias}, Desc: tp.pick(2) == 1}}
	}
	return q
}

func FuzzRender(f *testing.F) {
	if !sqlitecli.Available() {
		f.Skip("sqlite3 binary not on PATH")
	}
	// Seeds exercising each builder branch: join + grouped aggregates,
	// DISTINCT projection, CONTAINS, column comparisons, ORDER BY.
	f.Add([]byte{})
	f.Add([]byte{1, 3, 0, 0, 1, 0, 2, 2, 1, 0, 1})
	f.Add([]byte{0, 2, 1, 1, 3, 0, 4, 2, 0})
	f.Add([]byte{1, 0, 0, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{255, 254, 253, 252, 251, 250})
	f.Add([]byte{1, 3, 2, 2, 2, 1, 1, 0, 3, 3, 3})

	db := fuzzRenderDB()
	ext, err := backend.NewSQLite(db)
	if err != nil {
		f.Fatal(err)
	}
	defer ext.Close()

	f.Fuzz(func(t *testing.T, data []byte) {
		q := buildQuery(&tape{data: data})

		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()

		want, _, serr := sqldb.ExecOpts(ctx, db, q, sqldb.ExecConfig{})
		rows, xerr := ext.Exec(ctx, q)
		var got *sqldb.Result
		if xerr == nil {
			got, xerr = backend.Collect(rows)
		}
		if errors.Is(serr, context.DeadlineExceeded) || errors.Is(xerr, context.DeadlineExceeded) {
			return
		}
		if serr != nil {
			t.Fatalf("builder produced a query sqldb rejects: %v\nSQL: %s", serr, q)
		}
		if xerr != nil {
			t.Fatalf("SQLite rejected rendered SQL: %v\nSQL: %s", xerr, q)
		}

		want.SortRows()
		got.SortRows()
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("row count: %d on sqlite, %d on sqldb\nSQL: %s\nsqlite: %v\nsqldb:  %v",
				len(got.Rows), len(want.Rows), q, clip(got.Rows), clip(want.Rows))
		}
		for r := range want.Rows {
			for c := range want.Rows[r] {
				if !cellsEqual(got.Rows[r][c], want.Rows[r][c]) {
					t.Fatalf("cell [%d][%d]: %v (%T) on sqlite, %v (%T) on sqldb\nSQL: %s",
						r, c, got.Rows[r][c], got.Rows[r][c],
						want.Rows[r][c], want.Rows[r][c], q)
				}
			}
		}
	})
}
