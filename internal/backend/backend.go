// Package backend abstracts statement execution behind a pluggable
// interface: the frozen in-memory engine (internal/sqldb) is the default
// implementation, and a database/sql-based backend renders sqlast queries to
// a real dialect (internal/sqlast/render) and runs them on an external
// engine. core.ExecuteAll routes through whichever backend Options.Backend
// names, keeping the per-statement deadline, retry and partial-answer
// semantics of the robustness layer.
//
// The external path doubles as a differential oracle: the same frozen
// relation.Database is exported into SQLite (see Script and NewSQLite), and
// the test suites execute every generated interpretation on both engines and
// assert answer-set equality — validating the generated SQL, the renderer
// and the executor against an independent implementation.
//
// Dependency hygiene: this package and its subpackages are the only
// production code allowed to import database/sql or a concrete driver; the
// kwlint depscope analyzer enforces it, so every core package stays
// stdlib-only even when a CGO-free driver module is vendored in here later.
package backend

import (
	"context"
	"errors"
	"io"
	"strings"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
)

// Rows is a streamed query result: column names plus an iterator of tuples.
// Next returns io.EOF after the last row. Close is idempotent and must be
// called whether or not the rows were drained.
type Rows interface {
	Columns() []string
	Next() (relation.Tuple, error)
	Close() error
}

// Backend executes generated statements against one engine holding one
// (frozen) database. Implementations must be safe for concurrent Exec calls:
// the executor pool runs the top-k statements of a query in parallel.
type Backend interface {
	// Name identifies the backend in metrics and diagnostics ("sqldb",
	// "sqlite", ...). It must be constant for the backend's lifetime.
	Name() string
	// Exec runs one statement. Cancelling ctx aborts the statement; the
	// returned error is ctx.Err() (or wraps it) in that case. Errors that are
	// safe to retry (engine busy, transient driver faults) are marked so
	// IsTransient reports them; all other errors are permanent.
	Exec(ctx context.Context, q *sqlast.Query) (Rows, error)
	// Close releases the backend's resources. No Exec may be in flight.
	Close() error
}

// TransientError marks a driver or engine error the statement-retry layer is
// allowed to retry (engine busy, connection momentarily unavailable). It
// implements the Transient() contract that chaos.IsTransient — the
// executor's retry predicate — recognises.
type TransientError struct{ Err error }

// Error describes the transient fault.
func (e *TransientError) Error() string { return "backend: transient: " + e.Err.Error() }

// Unwrap exposes the underlying driver error.
func (e *TransientError) Unwrap() error { return e.Err }

// Transient marks the error retryable for chaos.IsTransient.
func (e *TransientError) Transient() bool { return true }

// IsTransient reports whether err is marked retryable via the
// Transient() bool contract (backend.TransientError, a driver's own marker
// type, or an injected chaos fault all satisfy it).
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}

// sliceRows adapts a materialized result to the Rows interface.
type sliceRows struct {
	cols []string
	rows []relation.Tuple
	next int
}

// NewRows wraps a materialized column/tuple set as Rows.
func NewRows(cols []string, rows []relation.Tuple) Rows {
	return &sliceRows{cols: cols, rows: rows}
}

func (r *sliceRows) Columns() []string { return r.cols }

func (r *sliceRows) Next() (relation.Tuple, error) {
	if r.next >= len(r.rows) {
		return nil, io.EOF
	}
	t := r.rows[r.next]
	r.next++
	return t, nil
}

func (r *sliceRows) Close() error { return nil }

// Collect drains rows into a sqldb.Result (the executor's answer shape) and
// closes them. On a mid-stream error the rows are still closed and the error
// returned.
func Collect(rows Rows) (*sqldb.Result, error) {
	res := &sqldb.Result{Columns: rows.Columns()}
	for {
		t, err := rows.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			rows.Close()
			return nil, err
		}
		res.Rows = append(res.Rows, t)
	}
	return res, rows.Close()
}

// SQLDB is the default backend: the frozen in-memory engine executing the
// sqlast tree directly (no rendering, no parsing). It carries the executor
// configuration core resolved (memo, kernel generation, shard workers).
type SQLDB struct {
	db  *relation.Database
	cfg sqldb.ExecConfig
}

// NewSQLDB wraps the in-memory engine over db as a Backend.
func NewSQLDB(db *relation.Database, cfg sqldb.ExecConfig) *SQLDB {
	return &SQLDB{db: db, cfg: cfg}
}

// Name identifies the in-memory engine.
func (s *SQLDB) Name() string { return "sqldb" }

// Exec evaluates the query on the in-memory engine.
func (s *SQLDB) Exec(ctx context.Context, q *sqlast.Query) (Rows, error) {
	res, _, err := sqldb.ExecOpts(ctx, s.db, q, s.cfg)
	if err != nil {
		return nil, err
	}
	return NewRows(res.Columns, res.Rows), nil
}

// Close is a no-op: the in-memory engine holds no external resources.
func (s *SQLDB) Close() error { return nil }

// OutputColumns derives the result column names of a query the way the
// in-memory engine names them: the alias when present, a plain column
// reference's bare column name, and the rendered expression otherwise.
// External engines name computed columns their own way (SQLite uses the
// rendered SQL text), so the database/sql backend overrides the driver's
// names with these — keeping answer shapes identical across backends.
func OutputColumns(q *sqlast.Query) []string {
	out := make([]string, len(q.Select))
	for i, it := range q.Select {
		switch {
		case it.Alias != "":
			out[i] = it.Alias
		default:
			if ce, ok := it.Expr.(sqlast.ColExpr); ok {
				out[i] = ce.Col.Column
			} else {
				out[i] = it.Expr.String()
			}
		}
	}
	return out
}

// classifyDriver maps a driver error onto the retry classification: busy /
// locked / connection-reset shapes — the faults a loaded external engine
// throws that a retry can ride out — become TransientError; everything else
// (syntax, missing relation, type errors) stays permanent. Drivers that
// already mark transience (Transient() bool) pass through untouched.
func classifyDriver(err error) error {
	if err == nil || IsTransient(err) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	msg := strings.ToLower(err.Error())
	for _, marker := range []string{
		"database is locked",
		"database table is locked",
		"database is busy",
		"(5)", // SQLITE_BUSY exit status from the CLI
		"connection reset",
		"connection refused",
		"too many connections",
		"broken pipe",
	} {
		if strings.Contains(msg, marker) {
			return &TransientError{Err: err}
		}
	}
	return err
}
