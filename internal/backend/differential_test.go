// The external differential oracle: every interpretation the system
// generates for every bundled dataset workload is executed on both the
// in-memory engine and a real SQLite holding an export of the same frozen
// data, and the answer sets must be equal. Unlike the in-house three-way
// suite (internal/sqldb/differential_test.go), which compares executor
// generations that share one code lineage, this suite validates the
// generated SQL, the dialect renderer, the exporter and the executor against
// an independently implemented SQL engine.
//
// Equality is after canonical sorting, with one concession: float cells may
// differ by a relative epsilon, because SQLite is free to sum float columns
// in a different order than the in-memory engine and float addition is not
// associative. Integer and string cells must match exactly.
package backend_test

import (
	"context"
	"math"
	"testing"

	"kwagg"
	"kwagg/internal/backend"
	"kwagg/internal/backend/sqlitecli"
	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/experiments"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
)

// floatEps is the relative tolerance for float aggregate cells (see the
// package comment). 1e-9 is ~1e7 ULPs of double precision — far wider than
// any summation-order drift over the bundled datasets, far tighter than any
// real divergence.
const floatEps = 1e-9

// cellsEqual compares one result cell across engines.
func cellsEqual(a, b relation.Value) bool {
	if relation.Compare(a, b) == 0 {
		return true
	}
	af, aok := asFloat(a)
	bf, bok := asFloat(b)
	if !aok || !bok {
		return false
	}
	diff := math.Abs(af - bf)
	return diff <= floatEps*math.Max(math.Abs(af), math.Abs(bf))
}

func asFloat(v relation.Value) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	default:
		return 0, false
	}
}

// diffOne executes q on both engines and compares the sorted answer sets.
func diffOne(t *testing.T, db *relation.Database, ext backend.Backend, label string, q *sqlast.Query) {
	t.Helper()
	ctx := context.Background()

	want, err := sqldb.Exec(db, q)
	if err != nil {
		t.Fatalf("%s: sqldb: %v\nSQL: %s", label, err, q)
	}
	rows, err := ext.Exec(ctx, q)
	if err != nil {
		t.Fatalf("%s: %s: %v\nSQL: %s", label, ext.Name(), err, q)
	}
	got, err := backend.Collect(rows)
	if err != nil {
		t.Fatalf("%s: %s collect: %v\nSQL: %s", label, ext.Name(), err, q)
	}
	want.SortRows()
	got.SortRows()

	if len(got.Columns) != len(want.Columns) {
		t.Errorf("%s: column count %d vs %d\nSQL: %s", label, len(got.Columns), len(want.Columns), q)
		return
	}
	for i := range want.Columns {
		if got.Columns[i] != want.Columns[i] {
			t.Errorf("%s: column %d named %q on %s, %q on sqldb\nSQL: %s",
				label, i, got.Columns[i], ext.Name(), want.Columns[i], q)
			return
		}
	}
	if len(got.Rows) != len(want.Rows) {
		t.Errorf("%s: %d rows on %s, %d on sqldb\nSQL: %s\n%s-rows: %v\nsqldb-rows: %v",
			label, len(got.Rows), ext.Name(), len(want.Rows), q, ext.Name(), clip(got.Rows), clip(want.Rows))
		return
	}
	for r := range want.Rows {
		for c := range want.Rows[r] {
			if !cellsEqual(got.Rows[r][c], want.Rows[r][c]) {
				t.Errorf("%s: row %d col %d: %v (%T) on %s, %v (%T) on sqldb\nSQL: %s",
					label, r, c, got.Rows[r][c], got.Rows[r][c], ext.Name(),
					want.Rows[r][c], want.Rows[r][c], q)
				return
			}
		}
	}
}

func clip(rows []relation.Tuple) []relation.Tuple {
	if len(rows) > 8 {
		return rows[:8]
	}
	return rows
}

// TestDifferentialSQLiteDatasetWorkloads is the acceptance gate: every
// DatasetWorkloads() interpretation, both engines, equal answer sets.
func TestDifferentialSQLiteDatasetWorkloads(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	setups := map[string]func() (*experiments.Setup, error){
		"university":   experiments.NewUniversity,
		"tpch":         func() (*experiments.Setup, error) { return experiments.NewTPCH(tpch.Small()) },
		"tpch-denorm":  func() (*experiments.Setup, error) { return experiments.NewTPCHUnnormalized(tpch.Small()) },
		"acmdl":        func() (*experiments.Setup, error) { return experiments.NewACMDL(acmdl.Small()) },
		"acmdl-denorm": func() (*experiments.Setup, error) { return experiments.NewACMDLUnnormalized(acmdl.Small()) },
	}
	for name, queries := range kwagg.DatasetWorkloads() {
		build, ok := setups[name]
		if !ok {
			t.Fatalf("workload %q has no differential setup — extend the map", name)
		}
		name, queries := name, queries
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s, err := build()
			if err != nil {
				t.Fatal(err)
			}
			ext, err := backend.NewSQLite(s.Ours.Data)
			if err != nil {
				t.Fatal(err)
			}
			defer ext.Close()
			interpretations := 0
			for _, kw := range queries {
				ins, err := s.Ours.Interpret(kw, 0)
				if err != nil {
					t.Fatalf("%s: %v", kw, err)
				}
				for _, in := range ins {
					diffOne(t, s.Ours.Data, ext, name+"/"+kw, in.SQL)
					interpretations++
				}
			}
			if interpretations == 0 {
				t.Fatalf("%s: workload produced no interpretations", name)
			}
			t.Logf("%s: %d interpretations matched sqldb on sqlite", name, interpretations)
		})
	}
}

// TestDifferentialSQLiteCorners runs the hand-built NULL / "NULL" / float
// corner rows through the external oracle too.
func TestDifferentialSQLiteCorners(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	db := cornerDB()
	ext, err := backend.NewSQLite(db)
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	for _, sql := range []string{
		"SELECT I.Id FROM Item I WHERE I.Name = 'widget'",
		"SELECT I.Id FROM Item I WHERE I.Name = 'NULL'", // must not match the NULL row
		"SELECT I.Id FROM Item I WHERE I.Qty = 5",
		"SELECT I.Id FROM Item I WHERE I.Qty = 99",
		"SELECT I.Id FROM Item I WHERE I.Price = 1.5",
		"SELECT I.Id FROM Item I WHERE I.Price > 1",
		"SELECT I.Qty, COUNT(I.Id) AS n FROM Item I GROUP BY I.Qty",
		"SELECT COUNT(I.Name) AS c, SUM(I.Qty) AS s, AVG(I.Price) AS a FROM Item I",
		"SELECT COUNT(I.Id) AS c FROM Item I WHERE I.Qty = 99", // empty input, no GROUP BY
		"SELECT DISTINCT I.Qty FROM Item I",
		"SELECT I.Id FROM Item I WHERE I.Name CONTAINS 'brien'",
		"SELECT I.Id FROM Item I WHERE I.Name CONTAINS 'null'", // matches the string row only
	} {
		diffOne(t, db, ext, sql, parse(t, sql))
	}
}

// TestKnownDivergenceNULLStringGroupBy pins the one semantic gap between the
// engines the oracle is allowed to see: the in-memory engine's GROUP BY (and
// DISTINCT) equality is the Format rendering — a documented contract of the
// dictionary encoding (relation.Dict), where SQL NULL and the literal string
// "NULL" share an ID — while SQLite keeps NULL as its own group. A grouping
// column holding both values therefore yields one fewer group in-memory.
// The bundled datasets never store the literal string "NULL", so the
// differential workload suite is unaffected; this test exists so the gap is
// an asserted fact instead of a latent surprise (see docs/BACKENDS.md).
func TestKnownDivergenceNULLStringGroupBy(t *testing.T) {
	if !sqlitecli.Available() {
		t.Skip("sqlite3 binary not on PATH")
	}
	db := cornerDB() // Name holds both a NULL and the string "NULL"
	ext, err := backend.NewSQLite(db)
	if err != nil {
		t.Fatal(err)
	}
	defer ext.Close()
	q := parse(t, "SELECT I.Name, COUNT(I.Id) AS n FROM Item I GROUP BY I.Name")

	want, err := sqldb.Exec(db, q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := ext.Exec(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := backend.Collect(rows)
	if err != nil {
		t.Fatal(err)
	}
	// 4 distinct names by SQL semantics (NULL, 'NULL', O'Brien…, widget);
	// 3 by Format semantics (NULL and 'NULL' merge).
	if len(want.Rows) != 3 {
		t.Errorf("sqldb grouped into %d rows, want 3 (Format-equality contract changed?)", len(want.Rows))
	}
	if len(got.Rows) != 4 {
		t.Errorf("sqlite grouped into %d rows, want 4", len(got.Rows))
	}
}
