package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"kwagg"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Unnormalized bool
		Text, Dot    string
	}
	decode(t, resp, &body)
	if body.Unnormalized || !strings.Contains(body.Text, "Student") || !strings.Contains(body.Dot, "graph ORM") {
		t.Errorf("schema response: %+v", body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Green SUM Credit", "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var answers []struct {
		Description string
		SQL         string
		Rows        [][]string
	}
	decode(t, resp, &answers)
	if len(answers) != 1 || len(answers[0].Rows) != 2 {
		t.Fatalf("answers: %+v", answers)
	}
	if !strings.Contains(answers[0].SQL, "SUM(") {
		t.Errorf("SQL: %s", answers[0].SQL)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty q: status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Student COUNT"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad query: status %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST endpoint: status %d", getResp.StatusCode)
	}
}

func TestSQLEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/sql", map[string]string{"sql": "SELECT COUNT(S.Sid) AS n FROM Student S"})
	var body struct {
		Columns []string
		Rows    [][]string
	}
	decode(t, resp, &body)
	if len(body.Rows) != 1 || body.Rows[0][0] != "3" {
		t.Errorf("sql result: %+v", body)
	}
	resp = postJSON(t, ts.URL+"/api/sql", map[string]string{"sql": "SELECT nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad SQL: status %d", resp.StatusCode)
	}
}

func TestSQAKEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/sqak", map[string]string{"q": "Green SUM Credit"})
	var body struct {
		SQL  string
		Rows [][]string
		NA   string
	}
	decode(t, resp, &body)
	if body.NA != "" || len(body.Rows) != 1 {
		t.Fatalf("SQAK response: %+v", body)
	}
	// A query SQAK cannot express reports NA, not an HTTP error.
	resp = postJSON(t, ts.URL+"/api/sqak", map[string]string{"q": "COUNT Course SUM Credit"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NA should be 200: %d", resp.StatusCode)
	}
	body.NA = ""
	decode(t, resp, &body)
	if !strings.Contains(body.NA, "aggregate") {
		t.Errorf("NA note: %+v", body)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/explain?q=" + strings.ReplaceAll("Green SUM Credit", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct{ Explanation string }
	decode(t, resp, &body)
	if !strings.Contains(body.Explanation, "disambiguation") {
		t.Errorf("explanation: %q", body.Explanation)
	}
	bad, err := http.Get(ts.URL + "/api/explain?q=Green%20SUM%20Credit&i=notanum")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad i: status %d", bad.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := testServer(t)
	// Serve one query first so the counters have something to show.
	if resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Green SUM Credit", "k": 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	var body struct {
		Cache struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Size   int    `json:"size"`
		} `json:"cache"`
		AnswerCache struct {
			Misses uint64 `json:"misses"`
		} `json:"answer_cache"`
		Workers int `json:"workers"`
		Server  struct {
			Requests uint64 `json:"requests"`
			InFlight int64  `json:"in_flight"`
			Rejected uint64 `json:"rejected"`
			Timeouts uint64 `json:"timeouts"`
		} `json:"server"`
	}
	decode(t, resp, &body)
	if body.Cache.Misses != 1 || body.Cache.Size != 1 {
		t.Errorf("cache stats: %+v", body.Cache)
	}
	if body.AnswerCache.Misses != 1 {
		t.Errorf("answer cache stats: %+v", body.AnswerCache)
	}
	if body.Workers < 1 {
		t.Errorf("workers = %d", body.Workers)
	}
	// The /api/stats request itself is counted, so requests >= 2.
	if body.Server.Requests < 2 || body.Server.Rejected != 0 || body.Server.Timeouts != 0 {
		t.Errorf("server stats: %+v", body.Server)
	}
	if post := postJSON(t, ts.URL+"/api/stats", map[string]string{}); post.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST on stats: status %d", post.StatusCode)
	}
}

func TestRequestTimeout(t *testing.T) {
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(eng, Config{Timeout: 1 * time.Nanosecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Green SUM Credit", "k": 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if n := srv.timeouts.Value(); n != 1 {
		t.Errorf("timeouts counter = %d, want 1", n)
	}
}

func TestConcurrencyLimit(t *testing.T) {
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(eng, Config{MaxConcurrent: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Occupy the only slot so the next request is deterministically rejected.
	srv.sem <- struct{}{}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if n := srv.rejected.Value(); n != 1 {
		t.Errorf("rejected counter = %d, want 1", n)
	}
	<-srv.sem

	// With the slot free the same request succeeds.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d after freeing the slot", resp.StatusCode)
	}
}

// TestConcurrentQueriesMatchSerial is the HTTP-level stress gate: 100+
// goroutines of mixed identical/distinct queries against one server must all
// get exactly the response body the serial path produced. Run with -race.
func TestConcurrentQueriesMatchSerial(t *testing.T) {
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Unlimited concurrency: the point is racing the engine, not testing 503s.
	ts := httptest.NewServer(NewWith(eng, Config{MaxConcurrent: -1}))
	defer ts.Close()

	queries := []string{
		"Green SUM Credit",
		"COUNT Student",
		"AVG Credit",
		"COUNT Student GROUPBY Course",
		"MAX Credit",
	}
	fetch := func(q string) (string, int, error) {
		raw, _ := json.Marshal(map[string]interface{}{"q": q, "k": 3})
		resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(raw))
		if err != nil {
			return "", 0, err
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			return "", 0, err
		}
		return buf.String(), resp.StatusCode, nil
	}

	want := make(map[string]string, len(queries))
	for _, q := range queries {
		body, code, err := fetch(q)
		if err != nil || code != http.StatusOK {
			t.Fatalf("serial %s: status %d, err %v", q, code, err)
		}
		want[q] = body
	}

	const goroutines = 120
	const iters = 3
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				body, code, err := fetch(q)
				if err != nil {
					t.Errorf("concurrent %s: %v", q, err)
					return
				}
				if code != http.StatusOK {
					t.Errorf("concurrent %s: status %d", q, code)
					return
				}
				if body != want[q] {
					t.Errorf("concurrent %s diverged from serial response", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
