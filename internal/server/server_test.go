package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"kwagg"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body interface{}) *http.Response {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decode(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestHealth(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/schema")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Unnormalized bool
		Text, Dot    string
	}
	decode(t, resp, &body)
	if body.Unnormalized || !strings.Contains(body.Text, "Student") || !strings.Contains(body.Dot, "graph ORM") {
		t.Errorf("schema response: %+v", body)
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Green SUM Credit", "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var answers []struct {
		Description string
		SQL         string
		Rows        [][]string
	}
	decode(t, resp, &answers)
	if len(answers) != 1 || len(answers[0].Rows) != 2 {
		t.Fatalf("answers: %+v", answers)
	}
	if !strings.Contains(answers[0].SQL, "SUM(") {
		t.Errorf("SQL: %s", answers[0].SQL)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": ""})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty q: status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Student COUNT"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad query: status %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/api/query")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on POST endpoint: status %d", getResp.StatusCode)
	}
}

func TestSQLEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/sql", map[string]string{"sql": "SELECT COUNT(S.Sid) AS n FROM Student S"})
	var body struct {
		Columns []string
		Rows    [][]string
	}
	decode(t, resp, &body)
	if len(body.Rows) != 1 || body.Rows[0][0] != "3" {
		t.Errorf("sql result: %+v", body)
	}
	resp = postJSON(t, ts.URL+"/api/sql", map[string]string{"sql": "SELECT nope"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("bad SQL: status %d", resp.StatusCode)
	}
}

func TestSQAKEndpoint(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/sqak", map[string]string{"q": "Green SUM Credit"})
	var body struct {
		SQL  string
		Rows [][]string
		NA   string
	}
	decode(t, resp, &body)
	if body.NA != "" || len(body.Rows) != 1 {
		t.Fatalf("SQAK response: %+v", body)
	}
	// A query SQAK cannot express reports NA, not an HTTP error.
	resp = postJSON(t, ts.URL+"/api/sqak", map[string]string{"q": "COUNT Course SUM Credit"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("NA should be 200: %d", resp.StatusCode)
	}
	body.NA = ""
	decode(t, resp, &body)
	if !strings.Contains(body.NA, "aggregate") {
		t.Errorf("NA note: %+v", body)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/api/explain?q=" + strings.ReplaceAll("Green SUM Credit", " ", "%20"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct{ Explanation string }
	decode(t, resp, &body)
	if !strings.Contains(body.Explanation, "disambiguation") {
		t.Errorf("explanation: %q", body.Explanation)
	}
	bad, err := http.Get(ts.URL + "/api/explain?q=Green%20SUM%20Credit&i=notanum")
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("bad i: status %d", bad.StatusCode)
	}
}
