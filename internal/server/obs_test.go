package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"kwagg"
)

func newEngine(t *testing.T) *kwagg.Engine {
	t.Helper()
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// metricValue scans a Prometheus text body for an exact series line
// ("name" or `name{labels}`) and returns its value.
func metricValue(t *testing.T, body, series string) (float64, bool) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, series+" ") {
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, series+" "), 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v, true
		}
	}
	return 0, false
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestMetricsEndpointFormat(t *testing.T) {
	eng := newEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	// Two queries (one repeat: interpretation + answer cache hit).
	for i := 0; i < 2; i++ {
		resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "SUM Credit Green", "k": 1})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query status %d", resp.StatusCode)
		}
	}
	status, body := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}

	// Valid exposition: every line is a comment or name[{labels}] value, with
	// exactly one HELP/TYPE pair per family.
	helpSeen, typeSeen := map[string]bool{}, map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if helpSeen[name] {
				t.Errorf("duplicate HELP %s", name)
			}
			helpSeen[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			name := strings.Fields(line)[2]
			if typeSeen[name] {
				t.Errorf("duplicate TYPE %s", name)
			}
			typeSeen[name] = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("unexpected comment line %q", line)
		default:
			sp := strings.LastIndexByte(line, ' ')
			if sp < 0 {
				t.Fatalf("malformed metric line %q", line)
			}
			if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
				t.Errorf("unparseable value in %q", line)
			}
		}
	}

	// The per-stage latency histograms are present for the whole pipeline.
	for _, stage := range []string{"parse", "match", "generate", "rank", "translate", "execute", "sql", "render"} {
		series := `kwagg_stage_duration_seconds_count{stage="` + stage + `"}`
		v, ok := metricValue(t, body, series)
		if !ok || v < 1 {
			t.Errorf("missing or zero stage histogram %s (v=%v ok=%v)", series, v, ok)
		}
	}
	// Query outcomes, cache events and pool gauges are exported.
	for _, series := range []string{
		`kwagg_queries_total{outcome="ok"}`,
		`kwagg_cache_events_total{cache="answer",event="hits"}`,
		`kwagg_cache_events_total{cache="interpretation",event="misses"}`,
		`kwagg_exec_workers`,
		`kwagg_http_requests_total`,
		`kwagg_http_in_flight`,
	} {
		if _, ok := metricValue(t, body, series); !ok {
			t.Errorf("missing series %s", series)
		}
	}
	if v, _ := metricValue(t, body, `kwagg_queries_total{outcome="ok"}`); v != 2 {
		t.Errorf("queries ok = %v, want 2", v)
	}
	if v, _ := metricValue(t, body, `kwagg_cache_events_total{cache="answer",event="hits"}`); v != 1 {
		t.Errorf("answer cache hits = %v, want 1 (the repeat query)", v)
	}
}

// TestStatsAndMetricsAgree asserts the satellite invariant: /api/stats and
// /metrics read the same counters, so the request counts they report can
// never disagree.
func TestStatsAndMetricsAgree(t *testing.T) {
	eng := newEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	const queries = 3
	for i := 0; i < queries; i++ {
		postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "COUNT Student GROUPBY Course", "k": 1})
	}
	status, body := getBody(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics status %d", status)
	}
	fromMetrics, ok := metricValue(t, body, "kwagg_http_requests_total")
	if !ok {
		t.Fatal("kwagg_http_requests_total missing from /metrics")
	}
	if fromMetrics != queries+1 { // the /metrics request itself is counted
		t.Errorf("metrics requests = %v, want %d", fromMetrics, queries+1)
	}

	var stats struct {
		Server struct {
			Requests uint64 `json:"requests"`
		} `json:"server"`
		Obs []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"obs"`
	}
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	decode(t, resp, &stats)

	// The stats request is one more than the metrics scrape saw.
	if stats.Server.Requests != uint64(fromMetrics)+1 {
		t.Errorf("stats requests = %d, metrics reported %v (+1 expected)",
			stats.Server.Requests, fromMetrics)
	}
	// Inside one response the legacy counter and the obs snapshot are
	// identical — same underlying metric.
	var snapVal float64
	found := false
	for _, m := range stats.Obs {
		if m.Name == "kwagg_http_requests_total" {
			snapVal, found = m.Value, true
		}
	}
	if !found {
		t.Fatal("obs snapshot missing kwagg_http_requests_total")
	}
	if uint64(snapVal) != stats.Server.Requests {
		t.Errorf("within one /api/stats response: server.requests=%d but obs snapshot=%v",
			stats.Server.Requests, snapVal)
	}
}

func TestStructuredRequestLog(t *testing.T) {
	eng := newEngine(t)
	var buf syncBuffer
	ts := httptest.NewServer(NewWith(eng, Config{AccessLog: &buf}))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "SUM Credit Green", "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	reqID := resp.Header.Get("X-Request-Id")
	if reqID == "" {
		t.Error("missing X-Request-Id header")
	}

	line := strings.TrimSpace(buf.String())
	var entry struct {
		RequestID  string  `json:"request_id"`
		Method     string  `json:"method"`
		Path       string  `json:"path"`
		Status     int     `json:"status"`
		DurationMS float64 `json:"duration_ms"`
		Trace      struct {
			ID     string `json:"id"`
			Stages []struct {
				Name string `json:"name"`
			} `json:"stages"`
			Annotations []struct {
				Key   string `json:"key"`
				Value string `json:"value"`
			} `json:"annotations"`
		} `json:"trace"`
	}
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("request log line is not JSON: %v\n%s", err, line)
	}
	if entry.RequestID != reqID || entry.Method != "POST" || entry.Path != "/api/query" || entry.Status != 200 {
		t.Errorf("bad log entry: %+v", entry)
	}
	stageSeen := map[string]bool{}
	for _, s := range entry.Trace.Stages {
		stageSeen[s.Name] = true
	}
	for _, stage := range []string{"parse", "match", "generate", "rank", "translate", "execute"} {
		if !stageSeen[stage] {
			t.Errorf("log trace missing stage %s: %s", stage, line)
		}
	}
	notes := map[string]string{}
	for _, a := range entry.Trace.Annotations {
		notes[a.Key] = a.Value
	}
	if notes["query"] != "SUM Credit Green" {
		t.Errorf("log missing query annotation: %v", notes)
	}
	if notes["interpretation_cache"] != "miss" || notes["answer_cache"] != "miss" {
		t.Errorf("log missing cache provenance: %v", notes)
	}
}

func TestQueryTraceResponse(t *testing.T) {
	eng := newEngine(t)
	ts := httptest.NewServer(New(eng))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/api/query",
		map[string]interface{}{"q": "SUM Credit Green", "k": 1, "trace": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out struct {
		Answers []struct {
			SQL string `json:"sql"`
		} `json:"answers"`
		Trace struct {
			ID     string `json:"id"`
			Stages []struct {
				Name       string  `json:"name"`
				DurationMS float64 `json:"duration_ms"`
			} `json:"stages"`
		} `json:"trace"`
	}
	decode(t, resp, &out)
	if len(out.Answers) == 0 || out.Answers[0].SQL == "" {
		t.Errorf("traced response lost the answers: %+v", out)
	}
	if out.Trace.ID == "" || len(out.Trace.Stages) == 0 {
		t.Errorf("traced response has no trace: %+v", out)
	}
}

func TestPprofMount(t *testing.T) {
	eng := newEngine(t)
	off := httptest.NewServer(New(eng))
	defer off.Close()
	if status, _ := getBody(t, off.URL+"/debug/pprof/"); status != http.StatusNotFound {
		t.Errorf("pprof should be off by default, got status %d", status)
	}

	on := httptest.NewServer(NewWith(newEngine(t), Config{Pprof: true}))
	defer on.Close()
	status, body := getBody(t, on.URL+"/debug/pprof/")
	if status != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index not served: status %d", status)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the access-log tests.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
