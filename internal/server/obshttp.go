// HTTP-side observability: the Prometheus /metrics endpoint, the structured
// per-request JSON log, the response status recorder, and the opt-in pprof
// mount. The metric values themselves live in the engine's obs registry (see
// server.go), so this file only encodes and transports them.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"kwagg/internal/obs"
)

// handleMetrics serves the engine registry — per-stage latency histograms,
// query outcome counters, cache/pool gauges and the HTTP request counters —
// in the Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.eng.Metrics().WritePrometheus(w)
}

// mountPprof exposes the net/http/pprof handlers on the server's own mux
// (the server never uses http.DefaultServeMux, so the side-effect
// registration of importing net/http/pprof alone would not be reachable).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// statusRecorder captures the response status for the request log and the
// per-status counters.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Hijack forwards to the underlying writer when it supports hijacking, so
// wrapping does not break upgrade-style handlers.
func (r *statusRecorder) Hijack() (net.Conn, *bufio.ReadWriter, error) {
	h, ok := r.ResponseWriter.(http.Hijacker)
	if !ok {
		return nil, nil, fmt.Errorf("server: response writer does not support hijacking")
	}
	return h.Hijack()
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// requestLogLine is the shape of one structured request log entry.
type requestLogLine struct {
	Time       string     `json:"ts"`
	RequestID  string     `json:"request_id"`
	Method     string     `json:"method"`
	Path       string     `json:"path"`
	Status     int        `json:"status"`
	DurationMS float64    `json:"duration_ms"`
	Trace      *obs.Trace `json:"trace,omitempty"`
}

// logRequest writes one JSON line for the request when access logging is
// enabled. The trace carries the per-stage spans and annotations (query
// text, cache provenance); rejected requests log without one.
func (s *Server) logRequest(r *http.Request, id string, trace *obs.Trace, status int, d time.Duration) {
	if s.accessLog == nil {
		return
	}
	line := requestLogLine{
		Time:       time.Now().UTC().Format(time.RFC3339Nano),
		RequestID:  id,
		Method:     r.Method,
		Path:       r.URL.Path,
		Status:     status,
		DurationMS: float64(d.Microseconds()) / 1000,
		Trace:      trace,
	}
	b, err := json.Marshal(line)
	if err != nil {
		return
	}
	// One Write call per line keeps concurrent request lines whole on
	// line-buffered sinks (os.Stderr, files).
	_, _ = s.accessLog.Write(append(b, '\n'))
}
