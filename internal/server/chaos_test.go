package server

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"kwagg"
	"kwagg/internal/chaos"
	"kwagg/internal/leakcheck"
)

// sqlFaultInjector fails, with a permanent (non-retryable) fault, every
// statement whose SQL equals failSQL — a deterministic way to force a
// partial answer.
type sqlFaultInjector struct{ failSQL string }

func (i *sqlFaultInjector) Fault(p chaos.Point, detail string) error {
	if p == chaos.PointStatement && detail == i.failSQL {
		return errors.New("chaos test: injected statement fault")
	}
	return nil
}

func (i *sqlFaultInjector) Delay(chaos.Point) time.Duration { return 0 }

// TestQueryPartialResponse checks the degraded-response contract of
// POST /api/query: when some statements fail and some complete, the server
// answers 200 with {"answers": ..., "partial": true, "errors": [...]} and
// counts the degradation.
func TestQueryPartialResponse(t *testing.T) {
	clean, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const query = "Green SUM Credit"
	ins, err := clean.Interpret(query, 2)
	if err != nil || len(ins) < 2 {
		t.Fatalf("need 2 interpretations of %q, got %d (%v)", query, len(ins), err)
	}
	eng, err := kwagg.Open(kwagg.UniversityDB(),
		&kwagg.Options{Chaos: &sqlFaultInjector{failSQL: ins[0].SQL}})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(eng, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": query, "k": 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (partial answers still answer)", resp.StatusCode)
	}
	var body queryResponse
	decode(t, resp, &body)
	if !body.Partial {
		t.Fatal("response must be marked partial")
	}
	if len(body.Answers) != 1 || len(body.Errors) != 1 {
		t.Fatalf("want 1 answer + 1 error, got %d + %d", len(body.Answers), len(body.Errors))
	}
	if body.Errors[0].SQL != ins[0].SQL {
		t.Fatalf("error detail names the wrong statement: %+v", body.Errors[0])
	}
	if body.Errors[0].Message == "" {
		t.Fatal("error detail lost its message")
	}
	if body.Answers[0].SQL != ins[1].SQL {
		t.Fatalf("surviving answer is not the other interpretation: %+v", body.Answers[0])
	}
	if n := srv.partial.Value(); n != 1 {
		t.Errorf("kwagg_http_partial_total = %d, want 1", n)
	}
}

// TestQueryCompleteStaysPlainArray: without degradation the endpoint keeps
// its original response shape — a bare JSON array of answers — so existing
// clients see no difference when chaos never fires.
func TestQueryCompleteStaysPlainArray(t *testing.T) {
	ts := testServer(t)
	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Green SUM Credit", "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var answers []answerJSON
	decode(t, resp, &answers)
	if len(answers) != 1 {
		t.Fatalf("want a plain array with 1 answer, got %d", len(answers))
	}
}

// TestQueryChaosTimeout504: injected worker latency beyond the request
// budget must surface as 504 — the request context's death wins even when
// some statements finished — and the handler must not leak the goroutines
// that were mid-statement when the deadline hit.
func TestQueryChaosTimeout504(t *testing.T) {
	check := leakcheck.Check(t)
	defer check()
	defer http.DefaultClient.CloseIdleConnections()
	inj := chaos.New(chaos.Config{Rate: 1, Seed: 2, Latency: 200 * time.Millisecond,
		Points: []chaos.Point{chaos.PointWorker, chaos.PointStatement}})
	eng, err := kwagg.Open(kwagg.UniversityDB(), &kwagg.Options{Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWith(eng, Config{Timeout: 20 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Green SUM Credit", "k": 2})
	// Close the body before the deferred leak check so the client connection
	// can go idle and be reaped (t.Cleanup would be too late).
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 under injected latency", resp.StatusCode)
	}
	if n := srv.timeouts.Value(); n != 1 {
		t.Errorf("timeouts counter = %d, want 1", n)
	}
}

// delayInjector records Delay consultations at the client-read point.
type delayInjector struct{ reads atomic.Int64 }

func (i *delayInjector) Fault(chaos.Point, string) error { return nil }

func (i *delayInjector) Delay(p chaos.Point) time.Duration {
	if p != chaos.PointClientRead {
		return 0
	}
	i.reads.Add(1)
	return time.Millisecond
}

// TestChaosBodyThrottlesClientRead: with a client-read injector configured
// on the server, request-body reads go through the throttle and the request
// still completes.
func TestChaosBodyThrottlesClientRead(t *testing.T) {
	inj := &delayInjector{}
	eng, err := kwagg.Open(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWith(eng, Config{Chaos: inj}))
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/api/query", map[string]interface{}{"q": "Green SUM Credit", "k": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if inj.reads.Load() == 0 {
		t.Fatal("request body was read without consulting the injector")
	}
}
