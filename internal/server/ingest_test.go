package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"kwagg"
)

func liveTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := kwagg.OpenLive(kwagg.UniversityDB(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng))
	t.Cleanup(ts.Close)
	return ts
}

type ingestBody struct {
	Table  string     `json:"table"`
	Rows   [][]string `json:"rows"`
	Commit bool       `json:"commit"`
}

func TestIngestEndpoint(t *testing.T) {
	ts := liveTestServer(t)

	// Buffer without committing: epoch stays 0, pending grows.
	resp := postJSON(t, ts.URL+"/api/ingest", ingestBody{
		Table: "Student", Rows: [][]string{{"s9", "Green", "23"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	var out struct {
		Epoch   uint64 `json:"epoch"`
		Pending int    `json:"pending"`
	}
	decode(t, resp, &out)
	if out.Epoch != 0 || out.Pending != 1 {
		t.Fatalf("buffered ingest: %+v", out)
	}

	// Second batch with commit: epoch 1, nothing pending.
	resp = postJSON(t, ts.URL+"/api/ingest", ingestBody{
		Table: "Enrol", Rows: [][]string{{"s9", "c2", "A"}}, Commit: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("commit status %d", resp.StatusCode)
	}
	decode(t, resp, &out)
	if out.Epoch != 1 || out.Pending != 0 {
		t.Fatalf("committed ingest: %+v", out)
	}

	// The committed rows answer queries.
	resp = postJSON(t, ts.URL+"/api/sql", map[string]string{
		"sql": "SELECT S.Sname FROM Student S WHERE S.Sid = 's9'"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sql status %d", resp.StatusCode)
	}
	var grid struct{ Rows [][]string }
	decode(t, resp, &grid)
	if len(grid.Rows) != 1 || grid.Rows[0][0] != "Green" {
		t.Fatalf("epoch-1 row not visible: %+v", grid)
	}

	// Stats reports the live engine's epoch.
	sresp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Live         bool    `json:"live"`
		Epoch        uint64  `json:"epoch"`
		PendingRows  int     `json:"pending_rows"`
		EpochBuildMS float64 `json:"epoch_build_ms"`
	}
	decode(t, sresp, &stats)
	if !stats.Live || stats.Epoch != 1 || stats.PendingRows != 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.EpochBuildMS <= 0 {
		t.Fatalf("epoch_build_ms = %v after a commit, want > 0", stats.EpochBuildMS)
	}
}

func TestIngestEndpointErrors(t *testing.T) {
	ts := liveTestServer(t)
	for _, c := range []struct {
		name string
		body any
		want int
	}{
		{"bad rows", ingestBody{Table: "Student", Rows: [][]string{{"s9"}}}, http.StatusUnprocessableEntity},
		{"unknown table", ingestBody{Table: "Nope", Rows: [][]string{{"x"}}}, http.StatusUnprocessableEntity},
		{"missing table", ingestBody{Rows: [][]string{{"x"}}}, http.StatusBadRequest},
		{"empty request", ingestBody{}, http.StatusBadRequest},
	} {
		if resp := postJSON(t, ts.URL+"/api/ingest", c.body); resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	if resp, err := http.Get(ts.URL + "/api/ingest"); err != nil || resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest: %v %d", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	// A frozen engine answers 422 for every ingest, including bare commits.
	frozen := testServer(t)
	if resp := postJSON(t, frozen.URL+"/api/ingest", ingestBody{
		Table: "Student", Rows: [][]string{{"s9", "Green", "23"}}}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("ingest on frozen engine: status %d, want 422", resp.StatusCode)
	}
	if resp := postJSON(t, frozen.URL+"/api/ingest", ingestBody{Commit: true}); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("commit on frozen engine: status %d, want 422", resp.StatusCode)
	}
}
