// Package server exposes a keyword-search engine over HTTP as a small JSON
// API, so the system can back a demo UI or be driven from other languages:
//
//	GET  /healthz               liveness probe
//	GET  /metrics               Prometheus text exposition of the obs registry
//	GET  /api/schema            ORM schema graph (text and DOT)
//	GET  /api/stats             cache / pool / request counters + obs snapshot
//	POST /api/query             {"q": "...", "k": 3} -> ranked answers
//	POST /api/sql               {"sql": "SELECT ..."} -> result grid
//	POST /api/sqak              {"q": "..."} -> the SQAK baseline's answer
//	GET  /api/explain?q=...&i=0 explanation of the i-th interpretation
//	POST /api/ingest            {"table": ..., "rows": [[...]], "commit": true}
//	                            buffer rows into a live engine; commit swaps
//	                            the next data epoch in (422 when not live)
//
// The engine is safe for concurrent use (immutable after Open, with a
// singleflight interpretation cache), so one Server handles concurrent
// requests; the server adds a configurable concurrency limit (excess
// requests are rejected with 503 rather than queued without bound) and a
// per-request timeout enforced through the request context.
//
// Observability: every request runs under an obs trace (request ID in the
// X-Request-Id response header, per-stage spans from the engine pipeline)
// and, when Config.AccessLog is set, is logged as one structured JSON line.
// The HTTP counters live in the engine's metrics registry, so GET /metrics
// and GET /api/stats read the same source and can never disagree. An
// opt-in net/http/pprof mount (Config.Pprof) serves /debug/pprof/.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"kwagg"
	"kwagg/internal/chaos"
	"kwagg/internal/obs"
	"kwagg/internal/qcache"
)

// Config tunes the serving behavior; the zero value of any field selects its
// default.
type Config struct {
	// MaxK caps the number of interpretations executed per request
	// (default 10).
	MaxK int
	// Timeout bounds each request; statements not yet started when it
	// expires are abandoned and the request fails with 504 (default 30s;
	// negative disables).
	Timeout time.Duration
	// MaxConcurrent bounds simultaneously served requests; excess requests
	// get 503 immediately (default 64; negative disables the limit).
	MaxConcurrent int
	// AccessLog receives one structured JSON line per request (request ID,
	// method, path, status, duration, per-stage trace). Nil disables logging.
	AccessLog io.Writer
	// Pprof mounts net/http/pprof under /debug/pprof/ when set. Off by
	// default: the profiling endpoints expose internals and cost CPU, so
	// they are opt-in (the -pprof flag of kwserve).
	Pprof bool
	// Chaos throttles request-body reads through the injector (the
	// chaos.PointClientRead slow-client fault). Engine-side injection points
	// are configured on the engine via kwagg.Options.Chaos; pass the same
	// injector to both (the -chaos flag of kwserve does). Nil disables.
	Chaos chaos.Injector
}

const (
	defaultMaxK          = 10
	defaultTimeout       = 30 * time.Second
	defaultMaxConcurrent = 64
)

// Server is an http.Handler answering keyword queries over one engine.
type Server struct {
	eng       *kwagg.Engine
	mux       *http.ServeMux
	maxK      int
	timeout   time.Duration
	sem       chan struct{}  // nil = unlimited
	accessLog io.Writer      // nil = no request logging
	inj       chaos.Injector // nil = no client-read fault injection

	// The request counters live in the engine's obs registry, so /metrics
	// and /api/stats read the same values by construction.
	requests *obs.Counter // total requests accepted
	rejected *obs.Counter // rejected at the concurrency limit
	timeouts *obs.Counter // requests that hit the per-request timeout
	partial  *obs.Counter // query responses degraded to partial answers
	inflight *obs.Gauge   // currently being served
}

// New creates a server for the engine with default limits.
func New(eng *kwagg.Engine) *Server { return NewWith(eng, Config{}) }

// NewWith creates a server with explicit limits.
func NewWith(eng *kwagg.Engine, cfg Config) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), maxK: cfg.MaxK,
		timeout: cfg.Timeout, accessLog: cfg.AccessLog, inj: cfg.Chaos}
	if s.maxK <= 0 {
		s.maxK = defaultMaxK
	}
	if s.timeout == 0 {
		s.timeout = defaultTimeout
	} else if s.timeout < 0 {
		s.timeout = 0
	}
	limit := cfg.MaxConcurrent
	if limit == 0 {
		limit = defaultMaxConcurrent
	}
	if limit > 0 {
		s.sem = make(chan struct{}, limit)
	}
	reg := eng.Metrics()
	s.requests = reg.Counter("kwagg_http_requests_total", "HTTP requests accepted for serving.")
	s.rejected = reg.Counter("kwagg_http_rejected_total", "HTTP requests rejected at the concurrency limit.")
	s.timeouts = reg.Counter("kwagg_http_timeouts_total", "Requests that hit the per-request timeout.")
	s.partial = reg.Counter("kwagg_http_partial_total", "Query responses degraded to partial answers.")
	s.inflight = reg.Gauge("kwagg_http_in_flight", "Requests currently being served.")
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/api/schema", s.handleSchema)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/sql", s.handleSQL)
	s.mux.HandleFunc("/api/sqak", s.handleSQAK)
	s.mux.HandleFunc("/api/explain", s.handleExplain)
	s.mux.HandleFunc("/api/ingest", s.handleIngest)
	if cfg.Pprof {
		mountPprof(s.mux)
	}
	return s
}

// ServeHTTP implements http.Handler: it applies the concurrency limit and
// the per-request timeout, opens the request trace, then dispatches to the
// API handlers and emits the structured request log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			s.rejected.Inc()
			s.logRequest(r, obs.NewID(), nil, http.StatusServiceUnavailable, 0)
			writeErr(w, http.StatusServiceUnavailable, errors.New("server at concurrency limit"))
			return
		}
	}
	s.requests.Inc()
	s.inflight.Inc()
	defer s.inflight.Dec()
	ctx := r.Context()
	if s.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	ctx, trace := obs.NewTrace(ctx)
	r = r.WithContext(ctx)
	w.Header().Set("X-Request-Id", trace.ID)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(rec, r)
	trace.Finish()
	s.logRequest(r, trace.ID, trace, rec.status, time.Since(start))
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type schemaResponse struct {
	Unnormalized bool   `json:"unnormalized"`
	Text         string `json:"text"`
	Dot          string `json:"dot"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	// One Engine.Schema call snapshots once; three separate getters could
	// each observe a different epoch mid-commit.
	info := s.eng.Schema()
	writeJSON(w, http.StatusOK, schemaResponse{
		Unnormalized: info.Unnormalized,
		Text:         info.Text,
		Dot:          info.Dot,
	})
}

type queryRequest struct {
	Q string `json:"q"`
	K int    `json:"k"`
	// Trace asks for the per-stage trace of this request in the response
	// (the answers array is then wrapped in an object).
	Trace bool `json:"trace,omitempty"`
}

// statsResponse exposes the serving counters: the engine's interpretation
// and answer caches, the execution pool size, the HTTP-level request
// counters, and the full obs registry snapshot. The request counters and the
// snapshot are read from the same registry metrics /metrics encodes, so the
// two endpoints cannot disagree.
type statsResponse struct {
	Cache       qcache.Stats `json:"cache"`
	AnswerCache qcache.Stats `json:"answer_cache"`
	Workers     int          `json:"workers"`
	Live        bool         `json:"live"`
	Epoch       uint64       `json:"epoch"`
	PendingRows int          `json:"pending_rows"`
	// EpochBuildMS is the wall time the most recent epoch commit spent
	// building (milliseconds; 0 before the first commit or when not live).
	EpochBuildMS float64              `json:"epoch_build_ms"`
	Server       serverStats          `json:"server"`
	Obs          []obs.MetricSnapshot `json:"obs"`
}

type serverStats struct {
	Requests uint64 `json:"requests"`
	InFlight int64  `json:"in_flight"`
	Rejected uint64 `json:"rejected"`
	Timeouts uint64 `json:"timeouts"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	// One Engine.Status call snapshots once; per-field getters could mix
	// epochs (e.g. the old epoch number with the new pending count).
	st := s.eng.Status()
	writeJSON(w, http.StatusOK, statsResponse{
		Cache:        s.eng.CacheStats(),
		AnswerCache:  s.eng.AnswerCacheStats(),
		Workers:      st.Workers,
		Live:         st.Live,
		Epoch:        st.Epoch,
		PendingRows:  st.PendingRows,
		EpochBuildMS: float64(st.EpochBuild) / float64(time.Millisecond),
		Server: serverStats{
			Requests: s.requests.Value(),
			InFlight: int64(s.inflight.Value()),
			Rejected: s.rejected.Value(),
			Timeouts: s.timeouts.Value(),
		},
		Obs: s.eng.Metrics().Snapshot(),
	})
}

type answerJSON struct {
	Description string     `json:"description"`
	Pattern     string     `json:"pattern"`
	SQL         string     `json:"sql"`
	Columns     []string   `json:"columns"`
	Rows        [][]string `json:"rows"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if req.Q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing q"))
		return
	}
	k := req.K
	if k <= 0 || k > s.maxK {
		k = s.maxK
	}
	trace := obs.TraceFrom(r.Context())
	trace.Annotate("query", req.Q)
	set, err := s.eng.AnswerSetContext(r.Context(), req.Q, k)
	if err != nil {
		// The error path means no usable answers: the request context died
		// (504, the client's deadline semantics win over any finished
		// statements) or interpretation/execution failed outright (422).
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			s.timeouts.Inc()
			writeErr(w, http.StatusGatewayTimeout, fmt.Errorf("query timed out: %w", err))
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := make([]answerJSON, len(set.Answers))
	for i, a := range set.Answers {
		out[i] = answerJSON{
			Description: a.Description,
			Pattern:     a.Pattern,
			SQL:         a.SQL,
			Columns:     a.Result.Columns,
			Rows:        a.Result.Rows,
		}
	}
	if set.Partial {
		s.partial.Inc()
	}
	// A degraded request still answers 200: the completed answers are exact
	// (never silently wrong), and "partial": true plus the per-statement
	// errors tell the client what is missing.
	switch {
	case req.Trace && trace != nil:
		trace.Finish()
		writeJSON(w, http.StatusOK, queryResponse{Answers: out,
			Partial: set.Partial, Errors: set.Failed, Retries: set.Retries, Trace: trace})
	case set.Partial:
		writeJSON(w, http.StatusOK, queryResponse{Answers: out,
			Partial: true, Errors: set.Failed, Retries: set.Retries})
	default:
		writeJSON(w, http.StatusOK, out)
	}
}

// queryResponse wraps the answers when there is more to say than the plain
// array: the request's per-stage trace ({"q": ..., "trace": true}) and/or the
// degradation detail of a partial answer.
type queryResponse struct {
	Answers []answerJSON            `json:"answers"`
	Partial bool                    `json:"partial"`
	Errors  []kwagg.FailedStatement `json:"errors,omitempty"`
	Retries int                     `json:"retries,omitempty"`
	Trace   *obs.Trace              `json:"trace,omitempty"`
}

type sqlRequest struct {
	SQL string `json:"sql"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	var req sqlRequest
	if !s.readPost(w, r, &req) {
		return
	}
	res, err := s.eng.ExecuteSQL(req.SQL)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type sqakResponse struct {
	SQL     string     `json:"sql,omitempty"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	NA      string     `json:"na,omitempty"` // set when SQAK cannot express the query
}

func (s *Server) handleSQAK(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.readPost(w, r, &req) {
		return
	}
	res, sql, err := s.eng.SQAKAnswer(req.Q)
	if err != nil {
		// SQAK's documented restrictions are data, not server errors.
		writeJSON(w, http.StatusOK, sqakResponse{NA: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, sqakResponse{SQL: sql, Columns: res.Columns, Rows: res.Rows})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing q"))
		return
	}
	idx := 0
	if is := r.URL.Query().Get("i"); is != "" {
		var err error
		idx, err = strconv.Atoi(is)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad i: %w", err))
			return
		}
	}
	out, err := s.eng.Explain(q, idx)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explanation": out})
}

type ingestRequest struct {
	Table string     `json:"table"`
	Rows  [][]string `json:"rows"`
	// Commit additionally freezes everything pending (this batch included)
	// into the next data epoch and swaps it in.
	Commit bool `json:"commit"`
}

type ingestResponse struct {
	Epoch   uint64 `json:"epoch"`
	Pending int    `json:"pending"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if len(req.Rows) > 0 {
		if req.Table == "" {
			writeErr(w, http.StatusBadRequest, errors.New("missing table"))
			return
		}
		if _, err := s.eng.Ingest(req.Table, req.Rows); err != nil {
			// Not-live and bad-batch errors are both the client's request
			// being unprocessable against this engine.
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	var resp ingestResponse
	if req.Commit {
		// CommitEpoch already returns the epoch it swapped in; reading
		// Epoch() afterwards would take a second snapshot that can observe
		// a later commit.
		epoch, err := s.eng.CommitEpoch(r.Context())
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		resp = ingestResponse{Epoch: epoch, Pending: s.eng.PendingRows()}
	} else {
		if len(req.Rows) == 0 {
			writeErr(w, http.StatusBadRequest, errors.New("nothing to do: empty rows and commit=false"))
			return
		}
		resp = ingestResponse{Epoch: s.eng.Epoch(), Pending: s.eng.PendingRows()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// readPost decodes a JSON POST body into v, writing the error response
// itself when the request is malformed.
func (s *Server) readPost(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return false
	}
	var body io.Reader = http.MaxBytesReader(w, r.Body, 1<<20)
	if s.inj != nil {
		body = &chaosBody{r: body, ctx: r.Context(), inj: s.inj}
	}
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

// chaosBody throttles request-body reads through the injector's
// chaos.PointClientRead delay (a slow or stalling client), honoring the
// request context so a timed-out request stops reading.
type chaosBody struct {
	r   io.Reader
	ctx context.Context
	inj chaos.Injector
}

func (b *chaosBody) Read(p []byte) (int, error) {
	if d := b.inj.Delay(chaos.PointClientRead); d > 0 {
		if err := chaos.Sleep(b.ctx, d); err != nil {
			return 0, err
		}
	}
	return b.r.Read(p)
}
