// Package server exposes a keyword-search engine over HTTP as a small JSON
// API, so the system can back a demo UI or be driven from other languages:
//
//	GET  /healthz               liveness probe
//	GET  /api/schema            ORM schema graph (text and DOT)
//	POST /api/query             {"q": "...", "k": 3} -> ranked answers
//	POST /api/sql               {"sql": "SELECT ..."} -> result grid
//	POST /api/sqak              {"q": "..."} -> the SQAK baseline's answer
//	GET  /api/explain?q=...&i=0 explanation of the i-th interpretation
//
// All state is read-only after construction, so one Server handles
// concurrent requests without locking.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"kwagg"
)

// Server is an http.Handler answering keyword queries over one engine.
type Server struct {
	eng *kwagg.Engine
	mux *http.ServeMux
	// MaxK caps the number of interpretations executed per request.
	MaxK int
}

// New creates a server for the engine.
func New(eng *kwagg.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), MaxK: 10}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/api/schema", s.handleSchema)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/sql", s.handleSQL)
	s.mux.HandleFunc("/api/sqak", s.handleSQAK)
	s.mux.HandleFunc("/api/explain", s.handleExplain)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type schemaResponse struct {
	Unnormalized bool   `json:"unnormalized"`
	Text         string `json:"text"`
	Dot          string `json:"dot"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, schemaResponse{
		Unnormalized: s.eng.Unnormalized(),
		Text:         s.eng.SchemaGraph(),
		Dot:          s.eng.SchemaDot(),
	})
}

type queryRequest struct {
	Q string `json:"q"`
	K int    `json:"k"`
}

type answerJSON struct {
	Description string     `json:"description"`
	Pattern     string     `json:"pattern"`
	SQL         string     `json:"sql"`
	Columns     []string   `json:"columns"`
	Rows        [][]string `json:"rows"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if req.Q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing q"))
		return
	}
	k := req.K
	if k <= 0 || k > s.MaxK {
		k = s.MaxK
	}
	answers, err := s.eng.Answer(req.Q, k)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := make([]answerJSON, len(answers))
	for i, a := range answers {
		out[i] = answerJSON{
			Description: a.Description,
			Pattern:     a.Pattern,
			SQL:         a.SQL,
			Columns:     a.Result.Columns,
			Rows:        a.Result.Rows,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type sqlRequest struct {
	SQL string `json:"sql"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	var req sqlRequest
	if !s.readPost(w, r, &req) {
		return
	}
	res, err := s.eng.ExecuteSQL(req.SQL)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type sqakResponse struct {
	SQL     string     `json:"sql,omitempty"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	NA      string     `json:"na,omitempty"` // set when SQAK cannot express the query
}

func (s *Server) handleSQAK(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.readPost(w, r, &req) {
		return
	}
	res, sql, err := s.eng.SQAKAnswer(req.Q)
	if err != nil {
		// SQAK's documented restrictions are data, not server errors.
		writeJSON(w, http.StatusOK, sqakResponse{NA: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, sqakResponse{SQL: sql, Columns: res.Columns, Rows: res.Rows})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing q"))
		return
	}
	idx := 0
	if is := r.URL.Query().Get("i"); is != "" {
		var err error
		idx, err = strconv.Atoi(is)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad i: %w", err))
			return
		}
	}
	out, err := s.eng.Explain(q, idx)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explanation": out})
}

// readPost decodes a JSON POST body into v, writing the error response
// itself when the request is malformed.
func (s *Server) readPost(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}
