// Package server exposes a keyword-search engine over HTTP as a small JSON
// API, so the system can back a demo UI or be driven from other languages:
//
//	GET  /healthz               liveness probe
//	GET  /api/schema            ORM schema graph (text and DOT)
//	GET  /api/stats             cache / pool / request counters
//	POST /api/query             {"q": "...", "k": 3} -> ranked answers
//	POST /api/sql               {"sql": "SELECT ..."} -> result grid
//	POST /api/sqak              {"q": "..."} -> the SQAK baseline's answer
//	GET  /api/explain?q=...&i=0 explanation of the i-th interpretation
//
// The engine is safe for concurrent use (immutable after Open, with a
// singleflight interpretation cache), so one Server handles concurrent
// requests; the server adds a configurable concurrency limit (excess
// requests are rejected with 503 rather than queued without bound) and a
// per-request timeout enforced through the request context.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"kwagg"
	"kwagg/internal/qcache"
)

// Config tunes the serving behavior; the zero value of any field selects its
// default.
type Config struct {
	// MaxK caps the number of interpretations executed per request
	// (default 10).
	MaxK int
	// Timeout bounds each request; statements not yet started when it
	// expires are abandoned and the request fails with 504 (default 30s;
	// negative disables).
	Timeout time.Duration
	// MaxConcurrent bounds simultaneously served requests; excess requests
	// get 503 immediately (default 64; negative disables the limit).
	MaxConcurrent int
}

const (
	defaultMaxK          = 10
	defaultTimeout       = 30 * time.Second
	defaultMaxConcurrent = 64
)

// Server is an http.Handler answering keyword queries over one engine.
type Server struct {
	eng     *kwagg.Engine
	mux     *http.ServeMux
	maxK    int
	timeout time.Duration
	sem     chan struct{} // nil = unlimited

	requests uint64 // total requests accepted
	rejected uint64 // rejected at the concurrency limit
	timeouts uint64 // requests that hit the per-request timeout
	inflight int64  // currently being served
}

// New creates a server for the engine with default limits.
func New(eng *kwagg.Engine) *Server { return NewWith(eng, Config{}) }

// NewWith creates a server with explicit limits.
func NewWith(eng *kwagg.Engine, cfg Config) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux(), maxK: cfg.MaxK, timeout: cfg.Timeout}
	if s.maxK <= 0 {
		s.maxK = defaultMaxK
	}
	if s.timeout == 0 {
		s.timeout = defaultTimeout
	} else if s.timeout < 0 {
		s.timeout = 0
	}
	limit := cfg.MaxConcurrent
	if limit == 0 {
		limit = defaultMaxConcurrent
	}
	if limit > 0 {
		s.sem = make(chan struct{}, limit)
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/api/schema", s.handleSchema)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/sql", s.handleSQL)
	s.mux.HandleFunc("/api/sqak", s.handleSQAK)
	s.mux.HandleFunc("/api/explain", s.handleExplain)
	return s
}

// ServeHTTP implements http.Handler: it applies the concurrency limit and
// the per-request timeout, then dispatches to the API handlers.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			atomic.AddUint64(&s.rejected, 1)
			writeErr(w, http.StatusServiceUnavailable, errors.New("server at concurrency limit"))
			return
		}
	}
	atomic.AddUint64(&s.requests, 1)
	atomic.AddInt64(&s.inflight, 1)
	defer atomic.AddInt64(&s.inflight, -1)
	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type schemaResponse struct {
	Unnormalized bool   `json:"unnormalized"`
	Text         string `json:"text"`
	Dot          string `json:"dot"`
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, schemaResponse{
		Unnormalized: s.eng.Unnormalized(),
		Text:         s.eng.SchemaGraph(),
		Dot:          s.eng.SchemaDot(),
	})
}

type queryRequest struct {
	Q string `json:"q"`
	K int    `json:"k"`
}

// statsResponse exposes the serving counters: the engine's interpretation
// and answer caches, the execution pool size, and the HTTP-level request
// counters.
type statsResponse struct {
	Cache       qcache.Stats `json:"cache"`
	AnswerCache qcache.Stats `json:"answer_cache"`
	Workers     int          `json:"workers"`
	Server      serverStats  `json:"server"`
}

type serverStats struct {
	Requests uint64 `json:"requests"`
	InFlight int64  `json:"in_flight"`
	Rejected uint64 `json:"rejected"`
	Timeouts uint64 `json:"timeouts"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Cache:       s.eng.CacheStats(),
		AnswerCache: s.eng.AnswerCacheStats(),
		Workers:     s.eng.Workers(),
		Server: serverStats{
			Requests: atomic.LoadUint64(&s.requests),
			InFlight: atomic.LoadInt64(&s.inflight),
			Rejected: atomic.LoadUint64(&s.rejected),
			Timeouts: atomic.LoadUint64(&s.timeouts),
		},
	})
}

type answerJSON struct {
	Description string     `json:"description"`
	Pattern     string     `json:"pattern"`
	SQL         string     `json:"sql"`
	Columns     []string   `json:"columns"`
	Rows        [][]string `json:"rows"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.readPost(w, r, &req) {
		return
	}
	if req.Q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing q"))
		return
	}
	k := req.K
	if k <= 0 || k > s.maxK {
		k = s.maxK
	}
	answers, err := s.eng.AnswerContext(r.Context(), req.Q, k)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			atomic.AddUint64(&s.timeouts, 1)
			writeErr(w, http.StatusGatewayTimeout, fmt.Errorf("query timed out: %w", err))
			return
		}
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	out := make([]answerJSON, len(answers))
	for i, a := range answers {
		out[i] = answerJSON{
			Description: a.Description,
			Pattern:     a.Pattern,
			SQL:         a.SQL,
			Columns:     a.Result.Columns,
			Rows:        a.Result.Rows,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

type sqlRequest struct {
	SQL string `json:"sql"`
}

func (s *Server) handleSQL(w http.ResponseWriter, r *http.Request) {
	var req sqlRequest
	if !s.readPost(w, r, &req) {
		return
	}
	res, err := s.eng.ExecuteSQL(req.SQL)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

type sqakResponse struct {
	SQL     string     `json:"sql,omitempty"`
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	NA      string     `json:"na,omitempty"` // set when SQAK cannot express the query
}

func (s *Server) handleSQAK(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.readPost(w, r, &req) {
		return
	}
	res, sql, err := s.eng.SQAKAnswer(req.Q)
	if err != nil {
		// SQAK's documented restrictions are data, not server errors.
		writeJSON(w, http.StatusOK, sqakResponse{NA: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, sqakResponse{SQL: sql, Columns: res.Columns, Rows: res.Rows})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeErr(w, http.StatusBadRequest, errors.New("missing q"))
		return
	}
	idx := 0
	if is := r.URL.Query().Get("i"); is != "" {
		var err error
		idx, err = strconv.Atoi(is)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad i: %w", err))
			return
		}
	}
	out, err := s.eng.Explain(q, idx)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"explanation": out})
}

// readPost decodes a JSON POST body into v, writing the error response
// itself when the request is malformed.
func (s *Server) readPost(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}
