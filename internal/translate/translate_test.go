package translate

import (
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/keyword"
	"kwagg/internal/match"
	"kwagg/internal/normalize"
	"kwagg/internal/orm"
	"kwagg/internal/pattern"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
)

// harness bundles generator and translator over one database.
type harness struct {
	gen *pattern.Generator
	tr  *Translator
	db  *relation.Database
}

func normalizedHarness(t *testing.T, db *relation.Database) *harness {
	t.Helper()
	g, err := orm.Build(db.Schemas())
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		gen: pattern.NewGenerator(match.New(db, db.Schemas(), g, nil)),
		tr:  New(g, db),
		db:  db,
	}
}

func unnormalizedHarness(t *testing.T, db *relation.Database, hints map[string]string) *harness {
	t.Helper()
	view, err := normalize.BuildView(db, hints)
	if err != nil {
		t.Fatal(err)
	}
	g, err := orm.Build(view.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		gen: pattern.NewGenerator(match.New(db, view.Schemas, g, view.Sources)),
		tr:  &Translator{Graph: g, Data: db, Sources: view.Sources, Rewrite: true},
		db:  db,
	}
}

// translateAll returns the SQL of every ranked interpretation.
func (h *harness) translateAll(t *testing.T, query string) []string {
	t.Helper()
	q, err := keyword.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := h.gen.Generate(q)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, p := range ps {
		sql, err := h.tr.Translate(p)
		if err != nil {
			t.Fatalf("translate %s: %v", p, err)
		}
		out = append(out, sql.String())
	}
	return out
}

func pick(t *testing.T, sqls []string, frags ...string) string {
	t.Helper()
	for _, sql := range sqls {
		ok := true
		for _, f := range frags {
			if !strings.Contains(sql, f) {
				ok = false
			}
		}
		if ok {
			return sql
		}
	}
	t.Fatalf("no SQL contains %v in:\n%s", frags, strings.Join(sqls, "\n"))
	return ""
}

// TestExample5SQL: the disambiguated {Green George COUNT Code} statement has
// the structure of the paper's Example 5: self-joined Students and Enrols,
// both contains-conditions, grouping on the Green student's Sid.
func TestExample5SQL(t *testing.T) {
	h := normalizedHarness(t, university.New())
	sql := pick(t, h.translateAll(t, "Green George COUNT Code"), "GROUP BY", "COUNT(")
	for _, frag := range []string{
		"CONTAINS 'Green'", "CONTAINS 'George'", "GROUP BY", "COUNT(", ".Sid",
	} {
		if !strings.Contains(sql, frag) {
			t.Errorf("Example 5 SQL missing %q:\n%s", frag, sql)
		}
	}
	// Two Student and two Enrol instances (self joins).
	if strings.Count(sql, "Student") != 2 || strings.Count(sql, "Enrol") != 2 {
		t.Errorf("Example 5 needs self joins:\n%s", sql)
	}
}

// TestExample6ProjectionRule: {COUNT Lecturer GROUPBY Course} joins a
// DISTINCT (Lid, Code) projection of Teach, never the raw ternary relation.
func TestExample6ProjectionRule(t *testing.T) {
	h := normalizedHarness(t, university.New())
	sql := pick(t, h.translateAll(t, "COUNT Lecturer GROUPBY Course"), "GROUP BY")
	if !strings.Contains(sql, "(SELECT DISTINCT Lid, Code FROM Teach)") &&
		!strings.Contains(sql, "(SELECT DISTINCT Code, Lid FROM Teach)") {
		t.Errorf("Example 6 projection missing:\n%s", sql)
	}
}

// TestFullRelationshipNotProjected: when every participant is joined, the
// relationship relation is used directly.
func TestFullRelationshipNotProjected(t *testing.T) {
	h := normalizedHarness(t, university.New())
	sqls := h.translateAll(t, "Green COUNT Code")
	sql := pick(t, sqls, "COUNT(")
	if strings.Contains(sql, "DISTINCT") && strings.Contains(sql, "FROM Enrol)") {
		t.Errorf("binary Enrol fully joined must not be projected:\n%s", sql)
	}
}

// TestExample7NestedSQL: the nested aggregate wraps the inner grouped query
// in a derived table.
func TestExample7NestedSQL(t *testing.T) {
	h := normalizedHarness(t, university.New())
	sql := pick(t, h.translateAll(t, "AVG COUNT Lecturer GROUPBY Course"), "AVG(")
	if !strings.Contains(sql, "AVG(R.numLid)") {
		t.Errorf("outer AVG over inner alias missing:\n%s", sql)
	}
	if !strings.Contains(sql, "GROUP BY") || !strings.Contains(sql, ") R") {
		t.Errorf("nested structure missing:\n%s", sql)
	}
}

// TestGeneratedSQLAlwaysParses: every interpretation of a battery of queries
// renders to SQL the engine parses and executes.
func TestGeneratedSQLAlwaysParses(t *testing.T) {
	h := normalizedHarness(t, university.New())
	queries := []string{
		"Green SUM Credit",
		"Java SUM Price",
		"COUNT Student GROUPBY Course",
		"AVG COUNT Student GROUPBY Course",
		"Green George Code",
		"Lecturer George",
		"COUNT Course GROUPBY Lecturer",
		"MIN Price GROUPBY Course",
	}
	for _, q := range queries {
		for _, sql := range h.translateAll(t, q) {
			if _, err := sqldb.ExecSQL(h.db, sql); err != nil {
				t.Errorf("query %q generated unexecutable SQL: %v\n%s", q, err, sql)
			}
		}
	}
}

// TestExample9And10Rewriting: on the Figure 8 database the rewritten
// statement joins Enrolment with itself (Rule 3) instead of five projection
// subqueries, keeps both conditions, and executes to the same answers.
func TestExample9And10Rewriting(t *testing.T) {
	h := unnormalizedHarness(t, university.NewEnrolment(), university.EnrolmentHints())
	sqls := h.translateAll(t, "Green George COUNT Code")
	sql := pick(t, sqls, "GROUP BY")
	if strings.Count(sql, "FROM Enrolment") == 0 || strings.Contains(sql, "SELECT DISTINCT") {
		t.Errorf("Rule 3 should collapse to base Enrolment instances:\n%s", sql)
	}
	if strings.Count(sql, "Enrolment R") != 2 {
		t.Errorf("Example 10 uses two Enrolment instances:\n%s", sql)
	}
	res, err := sqldb.ExecSQL(h.db, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("Example 10 answers: %v", res.Rows)
	}
}

// TestRule3RequiresAnchor: a lone projection that loses the stored key must
// NOT be replaced by the base relation (it deduplicates on purpose).
func TestRule3RequiresAnchor(t *testing.T) {
	h := unnormalizedHarness(t, university.NewEnrolment(), university.EnrolmentHints())
	sqls := h.translateAll(t, "Course AVG Credit")
	sql := sqls[0]
	if !strings.Contains(sql, "SELECT DISTINCT") {
		t.Errorf("Course' projection must stay DISTINCT:\n%s", sql)
	}
	res, err := sqldb.ExecSQL(h.db, sql)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := relation.AsFloat(res.Rows[0][len(res.Rows[0])-1])
	if f != 4 {
		t.Errorf("AVG credit over distinct courses should be (5+4+3)/3 = 4, got %v", f)
	}
}

// TestRule1KeepsIdentity: pruning never drops the key of a DISTINCT
// projection, even when nothing references it, so objects that agree on the
// remaining attributes stay distinct.
func TestRule1KeepsIdentity(t *testing.T) {
	h := unnormalizedHarness(t, university.NewEnrolment(), university.EnrolmentHints())
	sqls := h.translateAll(t, "Student AVG Age")
	sql := sqls[0]
	// s2 (24) and s3 (21) are both Green; a pages-style projection of Age
	// alone would still be fine here, but Sid must survive for correctness
	// when ages collide. George appears 3 times in Enrolment: without
	// DISTINCT on (Sid, Age) the average would be skewed.
	res, err := sqldb.ExecSQL(h.db, sql)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := relation.AsFloat(res.Rows[0][len(res.Rows[0])-1])
	want := (22.0 + 24.0 + 21.0) / 3.0
	if f < want-0.01 || f > want+0.01 {
		t.Errorf("AVG age should be %v (one row per student), got %v\n%s", want, f, sql)
	}
}

// TestRule2PushesConditions: contains-conditions on projection subqueries
// move into the subquery WHERE clause.
func TestRule2PushesConditions(t *testing.T) {
	db := university.NewEnrolment()
	view, err := normalize.BuildView(db, university.EnrolmentHints())
	if err != nil {
		t.Fatal(err)
	}
	g, err := orm.Build(view.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{
		gen: pattern.NewGenerator(match.New(db, view.Schemas, g, view.Sources)),
		tr:  &Translator{Graph: g, Data: db, Sources: view.Sources, Rewrite: true},
		db:  db,
	}
	// A query where Rule 3 cannot fire for the conditioned node: the Course
	// projection is no anchor, so its condition must be pushed inside.
	sqls := h.translateAll(t, "Java AVG Credit")
	sql := sqls[0]
	if !strings.Contains(sql, "WHERE Title CONTAINS 'Java'") &&
		!strings.Contains(sql, "CONTAINS 'Java') ") {
		t.Errorf("Rule 2 should push the condition into the subquery:\n%s", sql)
	}
}

// TestUnnormalizedGeneratedSQLAlwaysExecutes runs the full battery on both
// unnormalized databases.
func TestUnnormalizedGeneratedSQLAlwaysExecutes(t *testing.T) {
	cases := []struct {
		db      *relation.Database
		hints   map[string]string
		queries []string
	}{
		{university.NewEnrolment(), university.EnrolmentHints(), []string{
			"Green George COUNT Code",
			"COUNT Student GROUPBY Course",
			"Student AVG Age",
			"AVG COUNT Student GROUPBY Course",
		}},
		{university.NewDenormalizedLecturer(), university.DenormalizedLecturerHints(), []string{
			"Engineering COUNT Department",
			"COUNT Lecturer GROUPBY Department",
		}},
	}
	for _, c := range cases {
		h := unnormalizedHarness(t, c.db, c.hints)
		for _, q := range c.queries {
			for _, sql := range h.translateAll(t, q) {
				if _, err := sqldb.ExecSQL(h.db, sql); err != nil {
					t.Errorf("query %q generated unexecutable SQL: %v\n%s", q, err, sql)
				}
			}
		}
	}
}

// TestComponentRelationTranslation: conditions and aggregates over component
// relations join the component table on the owner's key.
func TestComponentRelationTranslation(t *testing.T) {
	db := university.New()
	tags := db.AddSchema(relation.NewSchema("CourseTag", "Code", "Tag").
		Key("Code", "Tag").Ref([]string{"Code"}, "Course"))
	tags.MustInsert("c1", "programming")
	tags.MustInsert("c1", "jvm")
	tags.MustInsert("c2", "storage")
	h := normalizedHarness(t, db)
	sqls := h.translateAll(t, "COUNT Tag GROUPBY Course")
	sql := pick(t, sqls, "COUNT(", "GROUP BY")
	if !strings.Contains(sql, "CourseTag") {
		t.Fatalf("component relation not joined:\n%s", sql)
	}
	res, err := sqldb.ExecSQL(db, sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("tags grouped per course: %v", res.Rows)
	}
}

// TestWrapNestedRequiresInnerAggregate: a nested aggregate over a pattern
// with no inner aggregate is a translation error.
func TestWrapNestedRequiresInnerAggregate(t *testing.T) {
	inner := &sqlast.Query{
		Select: []sqlast.SelectItem{{Expr: sqlast.ColExpr{Col: sqlast.Col{Column: "x"}}}},
		From:   []sqlast.TableRef{{Name: "T", Alias: "T"}},
	}
	if _, err := wrapNested(inner, sqlast.AggAvg, 1); err == nil {
		t.Error("wrapNested should fail without an inner aggregate")
	}
}

// TestNestedLevelAliases: two nesting levels use distinct derived-table
// aliases and compose alias names (maxnum..., avgmaxnum...).
func TestNestedLevelAliases(t *testing.T) {
	h := normalizedHarness(t, university.New())
	sqls := h.translateAll(t, "AVG MAX COUNT Student GROUPBY Course")
	sql := pick(t, sqls, "AVG(", "MAX(", "COUNT(")
	if !strings.Contains(sql, "maxnumSid") || !strings.Contains(sql, "avgmaxnumSid") {
		t.Errorf("composed aliases missing:\n%s", sql)
	}
	res, err := sqldb.ExecSQL(h.db, sql)
	if err != nil {
		t.Fatal(err)
	}
	// MAX class size is 3; AVG over the single MAX row is 3.
	f, _ := relation.AsFloat(res.Rows[0][0])
	if f != 3 {
		t.Errorf("AVG MAX COUNT should be 3, got %v", f)
	}
}

// TestRelationshipAttributeExposure: querying an attribute of a partially
// joined relationship keeps that attribute in the projection.
func TestRelationshipAttributeExposure(t *testing.T) {
	h := normalizedHarness(t, university.New())
	// Grade is an attribute of Enrol; group students by grade via Enrol
	// while Course is left out of the pattern.
	sqls := h.translateAll(t, "COUNT Student GROUPBY Grade")
	sql := pick(t, sqls, "COUNT(", "GROUP BY")
	res, err := sqldb.ExecSQL(h.db, sql)
	if err != nil {
		t.Fatalf("%v\n%s", err, sql)
	}
	if len(res.Rows) != 2 {
		t.Errorf("grades A and B: %v", res.Rows)
	}
}
