// Package translate turns annotated query patterns into SQL (Section 3.1.3):
// SELECT lists carrying the aggregate functions and GROUPBY attributes, FROM
// lists with duplicate-eliminating projections of partially-used relationship
// relations, WHERE clauses joining the pattern edges along foreign key - key
// references, and nested queries for nested aggregates (Section 3.2).
//
// For unnormalized databases the translator substitutes every relation of
// the normalized view D' with its defining projection over the stored
// relations of D (Section 4) and then rewrites the statement with the three
// heuristic rules of Section 4.1.
package translate

import (
	"fmt"
	"strings"

	"kwagg/internal/orm"
	"kwagg/internal/pattern"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Translator translates patterns against one database configuration.
type Translator struct {
	Graph *orm.Graph
	// Data is the stored database D the generated SQL executes on.
	Data *relation.Database
	// Sources maps lower-cased view relation names to the data relation their
	// tuples are projected from. Nil or missing entries mean the view
	// relation is stored as-is (normalized databases).
	Sources map[string]string
	// Rewrite enables the Section 4.1 rewriting rules; it should be set
	// exactly when Sources introduces projection subqueries.
	Rewrite bool
	// DisableDedup turns off the Section 3.1.3 duplicate-elimination rule
	// (projecting partially-joined relationship relations with DISTINCT).
	// Only for ablation studies: with it set, the translator reproduces
	// SQAK's duplicate counting (e.g. Q2 returns 35 instead of 25).
	DisableDedup bool
}

// New creates a translator for a normalized database.
func New(g *orm.Graph, data *relation.Database) *Translator {
	return &Translator{Graph: g, Data: data}
}

// sourceOf returns the data relation holding the tuples of a view relation.
func (t *Translator) sourceOf(rel string) string {
	if t.Sources != nil {
		if s, ok := t.Sources[strings.ToLower(rel)]; ok {
			return s
		}
	}
	return rel
}

// Translate generates the SQL statement of an annotated query pattern.
func (t *Translator) Translate(p *pattern.Pattern) (*sqlast.Query, error) {
	q, protected, err := t.base(p)
	if err != nil {
		return nil, err
	}
	// Wrap nested aggregates, innermost listed last (Section 3.2).
	for i := len(p.Nested) - 1; i >= 0; i-- {
		q, err = wrapNested(q, p.Nested[i], len(p.Nested)-i)
		if err != nil {
			return nil, err
		}
	}
	if t.Rewrite {
		q = RewriteAll(q, t.Data, protected)
	}
	return q, nil
}

// builder state for one pattern translation.
type builder struct {
	t         *Translator
	p         *pattern.Pattern
	q         *sqlast.Query
	aliases   []string            // node id -> alias
	compAls   map[string]string   // nodeID.component -> alias
	protected map[string][]string // alias -> identity attrs Rule 1 must keep
	// exposed lists, for nodes whose FROM entry projects a subset of the
	// relation, which attributes that entry exposes; nil means all.
	exposed map[int]map[string]bool
}

func (t *Translator) base(p *pattern.Pattern) (*sqlast.Query, map[string][]string, error) {
	b := &builder{t: t, p: p, q: &sqlast.Query{}, compAls: make(map[string]string),
		protected: make(map[string][]string), exposed: make(map[int]map[string]bool)}
	b.aliases = make([]string, len(p.Nodes))
	for _, n := range p.Nodes {
		rel := p.Graph.Node(n.Class).Relation
		b.aliases[n.ID] = fmt.Sprintf("%s%d", strings.ToUpper(rel.Name[:1]), n.ID+1)
	}

	// FROM: one entry per node, projecting relationship relations that are
	// joined with a subset of their participants, and substituting view
	// relations with their defining projections over D.
	for _, n := range p.Nodes {
		tr, err := b.fromEntry(n)
		if err != nil {
			return nil, nil, err
		}
		b.q.From = append(b.q.From, tr)
	}

	// WHERE: joins along the pattern edges, then the node conditions.
	for _, e := range p.Edges {
		a, bn := p.Nodes[e.A], p.Nodes[e.B]
		pairs, err := p.Graph.JoinOn(a.Class, bn.Class)
		if err != nil {
			return nil, nil, err
		}
		for _, pr := range pairs {
			b.q.Where = append(b.q.Where, sqlast.JoinPred{
				Left:  sqlast.Col{Table: b.aliases[a.ID], Column: pr[0]},
				Right: sqlast.Col{Table: b.aliases[bn.ID], Column: pr[1]},
			})
		}
	}
	for _, n := range p.Nodes {
		if !n.HasCond() {
			continue
		}
		col, err := b.resolve(n, pattern.AttrRef{Relation: n.CondRel, Attr: n.CondAttr})
		if err != nil {
			return nil, nil, err
		}
		b.q.Where = append(b.q.Where, sqlast.ContainsPred{Col: col, Needle: n.CondTerm})
	}

	// SELECT and GROUP BY: grouped attributes first (to facilitate user
	// understanding of the aggregates), then the aggregate functions.
	hasAgg := false
	for _, n := range p.Nodes {
		for _, g := range n.GroupBys {
			col, err := b.resolve(n, g)
			if err != nil {
				return nil, nil, err
			}
			b.q.Select = append(b.q.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: col}})
			b.q.GroupBy = append(b.q.GroupBy, col)
		}
		if len(n.Aggs) > 0 {
			hasAgg = true
		}
	}
	for _, n := range p.Nodes {
		for _, a := range n.Aggs {
			col, err := b.resolve(n, a.Ref)
			if err != nil {
				return nil, nil, err
			}
			b.q.Select = append(b.q.Select, sqlast.SelectItem{
				Expr:  sqlast.AggExpr{Func: a.Func, Arg: col},
				Alias: a.Alias(),
			})
		}
	}
	if !hasAgg && len(b.q.GroupBy) == 0 {
		// Pure keyword query: return the identifiers and matched attributes
		// of the term nodes.
		b.q.Distinct = true
		for _, n := range p.Nodes {
			if !n.FromTerm {
				continue
			}
			rel := p.Graph.Node(n.Class).Relation
			for _, k := range rel.PrimaryKey {
				if ex := b.exposed[n.ID]; ex != nil && !ex[strings.ToLower(k)] {
					continue // projected-away key parts are not displayable
				}
				col, err := b.resolve(n, pattern.AttrRef{Relation: rel.Name, Attr: k})
				if err != nil {
					return nil, nil, err
				}
				b.q.Select = append(b.q.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: col}})
			}
			if n.HasCond() {
				col, err := b.resolve(n, pattern.AttrRef{Relation: n.CondRel, Attr: n.CondAttr})
				if err != nil {
					return nil, nil, err
				}
				b.q.Select = append(b.q.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: col}})
			}
		}
	}
	if len(b.q.Select) == 0 {
		return nil, nil, fmt.Errorf("translate: pattern selects nothing: %s", p)
	}
	return b.q, b.protected, nil
}

// usedAttrs returns the attributes of node n's own relation that its
// annotations and condition reference.
func usedAttrs(n *pattern.Node, rel *relation.Schema) []string {
	var out []string
	if n.HasCond() && strings.EqualFold(n.CondRel, rel.Name) {
		out = append(out, n.CondAttr)
	}
	for _, a := range n.Aggs {
		if strings.EqualFold(a.Ref.Relation, rel.Name) {
			out = append(out, a.Ref.Attr)
		}
	}
	for _, g := range n.GroupBys {
		if strings.EqualFold(g.Relation, rel.Name) {
			out = append(out, g.Attr)
		}
	}
	return out
}

// fromEntry builds the FROM entry of one pattern node.
func (b *builder) fromEntry(n *pattern.Node) (sqlast.TableRef, error) {
	g := b.p.Graph
	node := g.Node(n.Class)
	rel := node.Relation
	alias := b.aliases[n.ID]
	src := b.t.sourceOf(rel.Name)

	// Duplicate elimination for partially-joined relationships: if the
	// pattern joins fewer participants than the relationship has in the ORM
	// schema graph, project the foreign keys of the joined participants
	// (plus any attributes the node's annotations use) with DISTINCT.
	var attrs []string
	if node.Type == orm.Relationship && !b.t.DisableDedup {
		adjacent := b.p.Adjacent(n.ID)
		participants := g.Participants(n.Class)
		if len(adjacent) < len(participants) {
			used := make(map[string]bool)
			for _, adj := range adjacent {
				part, ok := g.ParticipantOf(n.Class, b.p.Nodes[adj].Class)
				if !ok {
					return sqlast.TableRef{}, fmt.Errorf("translate: %s does not reference %s", n.Class, b.p.Nodes[adj].Class)
				}
				for _, a := range part.FKAttrs {
					if !used[strings.ToLower(a)] {
						used[strings.ToLower(a)] = true
						attrs = append(attrs, a)
					}
				}
			}
			for _, a := range usedAttrs(n, rel) {
				if !used[strings.ToLower(a)] {
					used[strings.ToLower(a)] = true
					attrs = append(attrs, a)
				}
			}
		}
	}
	// identity is what makes the projected rows denote distinct objects; it
	// is protected from Rule 1 pruning so DISTINCT never collapses distinct
	// objects that agree on the remaining attributes.
	identity := attrs
	if attrs == nil {
		// Use the stored relation directly when the view relation coincides
		// with it (same name and attribute set); otherwise project the view
		// relation's defining attribute set from its source (Section 4,
		// Example 9).
		stored := b.t.Data.Table(src)
		if strings.EqualFold(src, rel.Name) && stored != nil &&
			relation.SameAttrSet(stored.Schema.AttrNames(), rel.AttrNames()) {
			return sqlast.TableRef{Name: rel.Name, Alias: alias}, nil
		}
		attrs = rel.AttrNames()
		identity = rel.PrimaryKey
	}

	srcSchema := b.t.Data.Table(src)
	distinct := true
	if srcSchema != nil && relation.SubsetAttrSet(srcSchema.Schema.PrimaryKey, attrs) {
		// The projection keeps the source key, so it cannot duplicate rows.
		distinct = false
	}
	if distinct {
		b.protected[strings.ToLower(alias)] = append([]string(nil), identity...)
	}
	ex := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		ex[strings.ToLower(a)] = true
	}
	b.exposed[n.ID] = ex
	sub := &sqlast.Query{Distinct: distinct}
	for _, a := range attrs {
		sub.Select = append(sub.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: sqlast.Col{Column: a}}})
	}
	sub.From = []sqlast.TableRef{{Name: src, Alias: src}}
	return sqlast.TableRef{Subquery: sub, Alias: alias}, nil
}

// resolve maps an attribute reference on node n to the SQL column it is
// available under, joining the owning component relation on demand.
func (b *builder) resolve(n *pattern.Node, ref pattern.AttrRef) (sqlast.Col, error) {
	node := b.p.Graph.Node(n.Class)
	if strings.EqualFold(ref.Relation, node.Relation.Name) {
		return sqlast.Col{Table: b.aliases[n.ID], Column: ref.Attr}, nil
	}
	for _, c := range node.Components {
		if !strings.EqualFold(c.Name, ref.Relation) {
			continue
		}
		key := fmt.Sprintf("%d.%s", n.ID, strings.ToLower(c.Name))
		alias, ok := b.compAls[key]
		if !ok {
			alias = fmt.Sprintf("%s%dX%d", strings.ToUpper(c.Name[:1]), n.ID+1, len(b.compAls))
			b.compAls[key] = alias
			src := b.t.sourceOf(c.Name)
			if strings.EqualFold(src, c.Name) {
				b.q.From = append(b.q.From, sqlast.TableRef{Name: c.Name, Alias: alias})
			} else {
				sub := &sqlast.Query{Distinct: true}
				for _, a := range c.AttrNames() {
					sub.Select = append(sub.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: sqlast.Col{Column: a}}})
				}
				sub.From = []sqlast.TableRef{{Name: src, Alias: src}}
				b.q.From = append(b.q.From, sqlast.TableRef{Subquery: sub, Alias: alias})
				b.protected[strings.ToLower(alias)] = append([]string(nil), c.PrimaryKey...)
			}
			fk := c.ForeignKeys[0]
			for i := range fk.Attrs {
				b.q.Where = append(b.q.Where, sqlast.JoinPred{
					Left:  sqlast.Col{Table: alias, Column: fk.Attrs[i]},
					Right: sqlast.Col{Table: b.aliases[n.ID], Column: fk.RefAttrs[i]},
				})
			}
		}
		return sqlast.Col{Table: alias, Column: ref.Attr}, nil
	}
	return sqlast.Col{}, fmt.Errorf("translate: node %s has no attribute %s", n.Class, ref)
}

// wrapNested wraps q in an outer query applying fn to q's first aggregate
// column (Section 3.2, Example 7).
func wrapNested(q *sqlast.Query, fn sqlast.AggFunc, level int) (*sqlast.Query, error) {
	innerAlias := ""
	for _, it := range q.Select {
		if _, ok := it.Expr.(sqlast.AggExpr); ok {
			innerAlias = it.Alias
			break
		}
	}
	if innerAlias == "" {
		return nil, fmt.Errorf("translate: nested %s has no inner aggregate to apply to", fn)
	}
	prefix := map[sqlast.AggFunc]string{
		sqlast.AggCount: "num",
		sqlast.AggSum:   "sum",
		sqlast.AggAvg:   "avg",
		sqlast.AggMin:   "min",
		sqlast.AggMax:   "max",
	}[fn]
	relAlias := "R"
	if level > 1 {
		relAlias = fmt.Sprintf("R%d", level)
	}
	outer := &sqlast.Query{
		Select: []sqlast.SelectItem{{
			Expr:  sqlast.AggExpr{Func: fn, Arg: sqlast.Col{Table: relAlias, Column: innerAlias}},
			Alias: prefix + innerAlias,
		}},
		From: []sqlast.TableRef{{Subquery: q, Alias: relAlias}},
	}
	return outer, nil
}
