package translate

import (
	"fmt"
	"strings"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// RewriteAll applies the three rewriting heuristics of Section 4.1 to a
// statement generated against an unnormalized database: Rule 3 first
// (replace joins of projection subqueries that reconstruct a superkey
// projection of the stored relation with the relation itself), then Rule 1
// (prune projected attributes nothing references), then Rule 2 (push
// contains-conditions into the remaining subqueries). Nested aggregate
// levels are rewritten bottom-up.
//
// protected maps a FROM alias to attributes Rule 1 must keep even when
// nothing references them: the identity of a DISTINCT projection (the view
// relation's key), without which de-duplication would collapse distinct
// objects that agree on the remaining attributes.
func RewriteAll(q *sqlast.Query, data *relation.Database, protected map[string][]string) *sqlast.Query {
	for i, tr := range q.From {
		if tr.Subquery != nil && !isProjection(tr) {
			q.From[i].Subquery = RewriteAll(tr.Subquery, data, protected)
		}
	}
	q = rewriteRule3(q, data)
	rewriteRule1(q, protected)
	rewriteRule2(q)
	return q
}

// isProjection reports whether the FROM entry is a plain projection
// subquery: SELECT [DISTINCT] cols FROM onebasetable, with no predicates,
// grouping or aggregates. These are the subqueries introduced by the
// normalized-view mapping and the relationship duplicate-elimination rule.
func isProjection(tr sqlast.TableRef) bool {
	s := tr.Subquery
	if s == nil || len(s.From) != 1 || s.From[0].Name == "" ||
		len(s.Where) != 0 || len(s.GroupBy) != 0 || len(s.OrderBy) != 0 {
		return false
	}
	for _, it := range s.Select {
		if _, ok := it.Expr.(sqlast.ColExpr); !ok {
			return false
		}
	}
	return true
}

func projectedAttrs(tr sqlast.TableRef) []string {
	var out []string
	for _, it := range tr.Subquery.Select {
		out = append(out, it.Expr.(sqlast.ColExpr).Col.Column)
	}
	return out
}

// rewriteRule3 replaces each join of projection subqueries over the same
// stored relation R that reconstructs Pi_L(R) for a superkey L with R
// itself (Rule 3, Example 10). Joins are merged only along lossless edges:
// the join attributes must functionally determine one side's projection.
func rewriteRule3(q *sqlast.Query, data *relation.Database) *sqlast.Query {
	type entry struct {
		idx   int
		alias string
		src   string
		attrs []string
	}
	var entries []entry
	byAlias := make(map[string]int) // alias -> entries index
	for i, tr := range q.From {
		if !isProjection(tr) {
			continue
		}
		e := entry{idx: i, alias: tr.Alias, src: tr.Subquery.From[0].Name, attrs: projectedAttrs(tr)}
		byAlias[strings.ToLower(e.alias)] = len(entries)
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return q
	}

	// Join columns between pairs of projection entries.
	joinCols := make(map[[2]int][]string)
	for _, p := range q.Where {
		jp, ok := p.(sqlast.JoinPred)
		if !ok {
			continue
		}
		ia, aok := byAlias[strings.ToLower(jp.Left.Table)]
		ib, bok := byAlias[strings.ToLower(jp.Right.Table)]
		if !aok || !bok || ia == ib {
			continue
		}
		if !strings.EqualFold(jp.Left.Column, jp.Right.Column) {
			continue // projections rename nothing, so only same-name joins merge
		}
		key := [2]int{min(ia, ib), max(ia, ib)}
		joinCols[key] = append(joinCols[key], jp.Left.Column)
	}

	// A group of projections can collapse into one row variable over the
	// stored relation R only when it has a row anchor — a member whose
	// projected attributes contain a key of R, so each of its rows denotes
	// one row of R — and every other member is functionally determined by
	// the columns joining it to the group (its projection attributes lie in
	// the closure of the join columns). Example 10: {C',E1',S1'} anchors on
	// E1' and collapses to Enrolment R1; {E2',S2'} anchors on E2' and
	// collapses to R2; the Code join between the groups survives as
	// R1.Code = R2.Code.
	assigned := make([]int, len(entries)) // entries index -> group id (0 = none)
	groups := make(map[int][]int)
	nextGroup := 0
	for i, e := range entries {
		if assigned[i] != 0 {
			continue
		}
		t := data.Table(e.src)
		if t == nil {
			continue
		}
		if !relation.IsSuperkey(e.attrs, t.Schema) {
			continue // not a row anchor
		}
		nextGroup++
		assigned[i] = nextGroup
		groups[nextGroup] = []int{i}
		fds := t.Schema.EffectiveFDs()
		for changed := true; changed; {
			changed = false
			for j, x := range entries {
				if assigned[j] != 0 || !strings.EqualFold(x.src, e.src) {
					continue
				}
				// Columns joining x to current group members.
				var joinAttrs []string
				for _, m := range groups[nextGroup] {
					key := [2]int{min(j, m), max(j, m)}
					joinAttrs = append(joinAttrs, joinCols[key]...)
				}
				if len(joinAttrs) == 0 {
					continue
				}
				if relation.Determines(joinAttrs, x.attrs, fds) {
					assigned[j] = nextGroup
					groups[nextGroup] = append(groups[nextGroup], j)
					changed = true
				}
			}
		}
	}

	replaceAlias := make(map[string]string) // old alias (lower) -> new alias
	removeFrom := make(map[int]bool)        // q.From index -> drop
	for gid := 1; gid <= nextGroup; gid++ {
		members := groups[gid]
		src := entries[members[0]].src
		t := data.Table(src)
		newAlias := fmt.Sprintf("R%d", gid)
		first := true
		for _, m := range members {
			e := entries[m]
			replaceAlias[strings.ToLower(e.alias)] = newAlias
			if first {
				q.From[e.idx] = sqlast.TableRef{Name: t.Schema.Name, Alias: newAlias}
				first = false
			} else {
				removeFrom[e.idx] = true
			}
		}
	}
	if len(replaceAlias) == 0 {
		return q
	}

	out := &sqlast.Query{Distinct: q.Distinct}
	for i, tr := range q.From {
		if !removeFrom[i] {
			out.From = append(out.From, tr)
		}
	}
	ren := func(c sqlast.Col) sqlast.Col {
		if na, ok := replaceAlias[strings.ToLower(c.Table)]; ok {
			c.Table = na
		}
		return c
	}
	for _, it := range q.Select {
		switch ex := it.Expr.(type) {
		case sqlast.ColExpr:
			it.Expr = sqlast.ColExpr{Col: ren(ex.Col)}
		case sqlast.AggExpr:
			ex.Arg = ren(ex.Arg)
			it.Expr = ex
		}
		out.Select = append(out.Select, it)
	}
	for _, p := range q.Where {
		switch pp := p.(type) {
		case sqlast.JoinPred:
			pp.Left, pp.Right = ren(pp.Left), ren(pp.Right)
			if strings.EqualFold(pp.Left.Table, pp.Right.Table) &&
				strings.EqualFold(pp.Left.Column, pp.Right.Column) {
				continue // internal join collapsed into the base relation
			}
			out.Where = append(out.Where, pp)
		case sqlast.ComparePred:
			pp.Col = ren(pp.Col)
			out.Where = append(out.Where, pp)
		case sqlast.ContainsPred:
			pp.Col = ren(pp.Col)
			out.Where = append(out.Where, pp)
		default:
			out.Where = append(out.Where, p)
		}
	}
	for _, c := range q.GroupBy {
		out.GroupBy = append(out.GroupBy, ren(c))
	}
	for _, o := range q.OrderBy {
		o.Col = ren(o.Col)
		out.OrderBy = append(out.OrderBy, o)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// rewriteRule1 removes projected attributes that nothing in the outer query
// references (Rule 1), always keeping the protected identity attributes of
// DISTINCT projections.
func rewriteRule1(q *sqlast.Query, protected map[string][]string) {
	for i, tr := range q.From {
		if !isProjection(tr) {
			continue
		}
		used := usedColumns(q, tr.Alias)
		for _, p := range protected[strings.ToLower(tr.Alias)] {
			used[strings.ToLower(p)] = true
		}
		var kept []sqlast.SelectItem
		for _, it := range tr.Subquery.Select {
			col := it.Expr.(sqlast.ColExpr).Col.Column
			if used[strings.ToLower(col)] {
				kept = append(kept, it)
			}
		}
		if len(kept) == 0 {
			kept = tr.Subquery.Select[:1] // keep one column for a valid query
		}
		q.From[i].Subquery.Select = kept
	}
}

// usedColumns collects the column names referenced under the given alias
// anywhere in q (SELECT, WHERE, GROUP BY, ORDER BY).
func usedColumns(q *sqlast.Query, alias string) map[string]bool {
	used := make(map[string]bool)
	note := func(c sqlast.Col) {
		if strings.EqualFold(c.Table, alias) {
			used[strings.ToLower(c.Column)] = true
		}
	}
	for _, it := range q.Select {
		switch ex := it.Expr.(type) {
		case sqlast.ColExpr:
			note(ex.Col)
		case sqlast.AggExpr:
			note(ex.Arg)
		}
	}
	for _, p := range q.Where {
		switch pp := p.(type) {
		case sqlast.JoinPred:
			note(pp.Left)
			note(pp.Right)
		case sqlast.ColComparePred:
			note(pp.Left)
			note(pp.Right)
		case sqlast.ComparePred:
			note(pp.Col)
		case sqlast.ContainsPred:
			note(pp.Col)
		}
	}
	for _, c := range q.GroupBy {
		note(c)
	}
	for _, o := range q.OrderBy {
		note(o.Col)
	}
	return used
}

// rewriteRule2 pushes contains-conditions on a projection subquery's
// attributes into the subquery's own WHERE clause, filtering tuples before
// the join (Rule 2).
func rewriteRule2(q *sqlast.Query) {
	subByAlias := make(map[string]*sqlast.Query)
	for _, tr := range q.From {
		if isProjection(tr) {
			subByAlias[strings.ToLower(tr.Alias)] = tr.Subquery
		}
	}
	if len(subByAlias) == 0 {
		return
	}
	var remaining []sqlast.Pred
	for _, p := range q.Where {
		cp, ok := p.(sqlast.ContainsPred)
		if !ok {
			remaining = append(remaining, p)
			continue
		}
		sub, ok := subByAlias[strings.ToLower(cp.Col.Table)]
		if !ok {
			remaining = append(remaining, p)
			continue
		}
		sub.Where = append(sub.Where, sqlast.ContainsPred{
			Col:    sqlast.Col{Column: cp.Col.Column},
			Needle: cp.Needle,
		})
	}
	q.Where = remaining
}
