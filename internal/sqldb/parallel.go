package sqldb

import (
	"runtime"
	"sync"
	"sync/atomic"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Shard-parallel drivers for the batch kernels (morsel-style): a shard is a
// contiguous range of whole ColData blocks (relation.ShardRows rows by
// default), so the per-block kernels in batch.go run unchanged — workers
// just sweep disjoint block ranges. Every driver reproduces the sequential
// path's output exactly, byte for byte:
//
//   - the filter pass fills disjoint words of one shared selection bitset
//     (shard boundaries are block- and therefore word-aligned), and the
//     gather that consumes it stays sequential;
//   - the join probe collects per-shard match lists and materializes them
//     in ascending shard order at offsets fixed by a prefix sum, which is
//     exactly ascending-probe-row order;
//   - GROUP BY assigns shard-local slots in parallel, merges the shard
//     group tables in ascending shard order (reproducing global first-seen
//     slot numbering; COUNT/size partials merge by addition here), and then
//     folds every slot's rows in ascending row order on exactly one worker.
//
// The last point is why SUM/AVG partials are never merged across shards:
// float addition is not associative, so a cross-shard sum merge would give
// answers that differ in the last bits from the single-shard fold. Folding
// per slot keeps the association identical while still scaling, because
// distinct slots fold concurrently.

// shardSlots bounds the extra worker goroutines shard-parallel kernels may
// hold across all concurrent statements: each helper goroutine holds one
// token for its lifetime, and a kernel that finds the pool exhausted simply
// runs on its own statement goroutine. Sized to the machine at startup so a
// saturated server stays at O(GOMAXPROCS + statements) goroutines instead
// of O(statements × shards).
var shardSlots = make(chan struct{}, runtime.GOMAXPROCS(0))

// shardsOf returns how many size-row shards cover n rows.
func shardsOf(n, size int) int { return (n + size - 1) / size }

// shardSize resolves the rows-per-shard of this execution: the configured
// override rounded up to whole blocks (shard boundaries must stay block- and
// word-aligned for the bitset kernels), or relation.ShardRows.
func (e *executor) shardSize() int {
	sr := e.shardRows
	if sr <= 0 {
		return relation.ShardRows
	}
	if rem := sr % relation.BlockSize; rem != 0 {
		sr += relation.BlockSize - rem
	}
	return sr
}

// parFor resolves how many workers an n-row kernel pass may use: the
// configured target, capped by the pass's shard count (idle workers are
// pointless) and by GOMAXPROCS at execution time — so `-cpu 1` runs, and
// benchmarks measure, the sequential path even when shards are requested.
// Everything below 2 means "run the sequential code".
func (e *executor) parFor(n int) int {
	if e.par <= 1 || e.noIndex || e.noBatch {
		return 1
	}
	p := e.par
	if shards := shardsOf(n, e.shardSize()); p > shards {
		p = shards
	}
	if g := runtime.GOMAXPROCS(0); p > g {
		p = g
	}
	if p < 1 {
		p = 1
	}
	return p
}

// pollCtx is the shard workers' cancellation poll. Unlike step/stepN it
// neither counts rows nor touches any other executor state, so concurrent
// workers may call it freely.
func (e *executor) pollCtx() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// runParts runs fn(part) for every part in [0, parts) on up to workers
// goroutines, the calling goroutine included. Parts are handed out through a
// shared counter, so slow parts do not serialize behind fast ones; helper
// goroutines are spawned only while the process-wide slot pool has tokens.
// fn must confine its writes to part-local state. On failure the remaining
// undispatched parts are skipped and the lowest-numbered part's error is
// returned — deterministic regardless of scheduling.
func (e *executor) runParts(workers, parts int, fn func(part int) error) error {
	if workers > parts {
		workers = parts
	}
	if workers <= 1 {
		for p := 0; p < parts; p++ {
			if err := fn(p); err != nil {
				return err
			}
		}
		return nil
	}
	e.shardRuns++
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	errs := make([]error, parts)
	work := func() {
		for {
			p := int(next.Add(1)) - 1
			if p >= parts || failed.Load() {
				return
			}
			if err := fn(p); err != nil {
				errs[p] = err
				failed.Store(true)
			}
		}
	}
spawn:
	for i := 0; i < workers-1; i++ {
		select {
		case shardSlots <- struct{}{}:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-shardSlots }()
				work()
			}()
		default:
			break spawn
		}
	}
	work()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// forEachShard runs fn over every shard range [lo, hi) covering n rows,
// shard-parallel when the worker target allows. fn must confine its writes
// to shard-local state (disjoint slices or bitset words indexed by shard).
func (e *executor) forEachShard(n int, fn func(s, lo, hi int) error) error {
	size := e.shardSize()
	return e.runParts(e.parFor(n), shardsOf(n, size), func(s int) error {
		lo := s * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(s, lo, hi)
	})
}

// parProbe is batchProbe shard-parallel, in two phases. Phase one: every
// probe-side shard runs the fused remap+miss-mask kernel and collects its
// (probe row, build row) match pairs — packed lj<<32|rj — into a shard-local
// list, in ascending probe-row order. Phase two: a prefix sum over the
// per-shard match counts fixes every match's output offset, the output rows,
// arena and encoding are allocated at their exact final sizes, and the
// shards materialize their matches concurrently at those offsets. The
// resulting row order is ascending probe row — identical to the sequential
// emit — and the exact preallocation removes the sequential emit path's
// arena growth and append bookkeeping per match.
func (e *executor) parProbe(left, right *rowset, li int, remap []uint32, dense []int32, mapHeads map[uint32]int32, next []int32, out *rowset) error {
	n := len(left.rows)
	col := colView(left, li)
	lst, rst := len(left.cols), len(right.cols)
	checkNull := col == nil
	matches := make([][]uint64, shardsOf(n, e.shardSize()))
	err := e.forEachShard(n, func(s, shLo, shHi int) error {
		var sel [blockWords]uint64
		var pids [relation.BlockSize]uint32
		idx := make([]int32, 0, relation.BlockSize)
		var buf []uint64
		for lo := shLo; lo < shHi; lo += relation.BlockSize {
			if err := e.pollCtx(); err != nil {
				return err
			}
			nb := shHi - lo
			if nb > relation.BlockSize {
				nb = relation.BlockSize
			}
			b := lo / relation.BlockSize
			if col != nil {
				blk := col.Block(b)
				for w := 0; w*64 < nb; w++ {
					m := nb - w*64
					if m > 64 {
						m = 64
					}
					base := w * 64
					var word uint64
					for k := 0; k < m; k++ {
						id := remap[blk[base+k]]
						pids[base+k] = id
						word |= ((uint64(id^relation.NoID)-1)>>63 ^ 1) & 1 << uint(k)
					}
					sel[w] = word
				}
			} else {
				p := lo*lst + li
				for w := 0; w*64 < nb; w++ {
					m := nb - w*64
					if m > 64 {
						m = 64
					}
					base := w * 64
					var word uint64
					for k := 0; k < m; k++ {
						id := remap[left.enc[p]]
						pids[base+k] = id
						word |= ((uint64(id^relation.NoID)-1)>>63 ^ 1) & 1 << uint(k)
						p += lst
					}
					sel[w] = word
				}
			}
			if col != nil && col.Nulls != nil {
				for w := 0; w*64 < nb; w++ {
					sel[w] &^= col.NullWord(lo/64 + w)
				}
			}
			idx = selIndexes(idx, sel[:], nb)
			for _, k := range idx {
				lj := lo + int(k)
				if checkNull && relation.Null(left.rows[lj][li]) {
					continue
				}
				var rj int32
				if dense != nil {
					rj = dense[pids[k]]
				} else {
					rj = -1
					if h, ok := mapHeads[pids[k]]; ok {
						rj = h
					}
				}
				for ; rj >= 0; rj = next[rj] {
					buf = append(buf, uint64(lj)<<32|uint64(uint32(rj)))
				}
			}
		}
		matches[s] = buf
		return nil
	})
	if err != nil {
		return err
	}
	offs := make([]int, len(matches)+1)
	for s, m := range matches {
		offs[s+1] = offs[s] + len(m)
	}
	total := offs[len(matches)]
	if total == 0 {
		return nil // out.rows stays nil, exactly like the sequential path
	}
	width := lst + rst
	arena := make([]relation.Value, total*width)
	out.rows = make([]relation.Tuple, total)
	if out.dicts != nil {
		out.enc = make([]uint32, total*width)
	}
	return e.forEachShard(n, func(s, _, _ int) error {
		base := offs[s]
		for j, m := range matches[s] {
			if j&(rowCheckInterval-1) == 0 {
				if err := e.pollCtx(); err != nil {
					return err
				}
			}
			lj := int(m >> 32)
			rj := int(uint32(m))
			o := (base + j) * width
			t := relation.Tuple(arena[o : o+width : o+width])
			copy(t[:lst], left.rows[lj])
			copy(t[lst:], right.rows[rj])
			out.rows[base+j] = t
			if out.enc != nil {
				if left.enc != nil {
					copy(out.enc[o:o+lst], left.enc[lj*lst:(lj+1)*lst])
				}
				if right.enc != nil {
					copy(out.enc[o+lst:o+width], right.enc[rj*rst:(rj+1)*rst])
				}
			}
		}
		return nil
	})
}

// parGroupSlots is batchGroupSlots shard-parallel for one or two encoded
// key columns (the caller falls back for other shapes). Every shard builds
// a local group table — slot numbers in shard-local first-seen order — then
// a sequential merge walks the shards in ascending order, mapping local
// slots to global ones: a key's global slot is allocated when the merge
// first meets it, which is exactly the global first-seen order because
// shards are ascending row ranges and local orders are ascending within
// them. Group sizes (the COUNT partial) merge by addition; firsts keep the
// earliest shard's first row. A final parallel pass rewrites the local slot
// numbers in rowSlot to global ones.
func (e *executor) parGroupSlots(rs *rowset, gidx []int) (rowSlot []int32, firsts []int, sizes []int32, err error) {
	n := len(rs.rows)
	st := len(rs.cols)
	g0 := gidx[0]
	col0 := colView(rs, g0)
	g1 := -1
	var col1 *relation.ColData
	if len(gidx) == 2 {
		g1 = gidx[1]
		col1 = colView(rs, g1)
	}
	rowSlot = make([]int32, n)
	nShards := shardsOf(n, e.shardSize())
	localKeys := make([][]uint64, nShards)
	localFirsts := make([][]int, nShards)
	localSizes := make([][]int32, nShards)
	err = e.forEachShard(n, func(s, shLo, shHi int) error {
		var keys []uint64
		var lfirsts []int
		var lsizes []int32
		if g1 < 0 {
			// Single key with a dictionary small relative to the shard: a
			// dense local slot table instead of a map.
			if nd := rs.dicts[g0].Len(); nd <= 4*(shHi-shLo)+1024 {
				slotOf := make([]int32, nd)
				for i := range slotOf {
					slotOf[i] = -1
				}
				for lo := shLo; lo < shHi; lo += relation.BlockSize {
					if err := e.pollCtx(); err != nil {
						return err
					}
					bhi := lo + relation.BlockSize
					if bhi > shHi {
						bhi = shHi
					}
					for ri := lo; ri < bhi; ri++ {
						var id uint32
						if col0 != nil {
							id = col0.IDs[ri]
						} else {
							id = rs.enc[ri*st+g0]
						}
						slot := slotOf[id]
						if slot < 0 {
							slot = int32(len(keys))
							slotOf[id] = slot
							keys = append(keys, uint64(id))
							lfirsts = append(lfirsts, ri)
							lsizes = append(lsizes, 0)
						}
						rowSlot[ri] = slot
						lsizes[slot]++
					}
				}
				localKeys[s], localFirsts[s], localSizes[s] = keys, lfirsts, lsizes
				return nil
			}
		}
		slots := make(map[uint64]int32, 64)
		for lo := shLo; lo < shHi; lo += relation.BlockSize {
			if err := e.pollCtx(); err != nil {
				return err
			}
			bhi := lo + relation.BlockSize
			if bhi > shHi {
				bhi = shHi
			}
			for ri := lo; ri < bhi; ri++ {
				var key uint64
				if col0 != nil {
					key = uint64(col0.IDs[ri])
				} else {
					key = uint64(rs.enc[ri*st+g0])
				}
				if g1 >= 0 {
					if col1 != nil {
						key |= uint64(col1.IDs[ri]) << 32
					} else {
						key |= uint64(rs.enc[ri*st+g1]) << 32
					}
				}
				slot, ok := slots[key]
				if !ok {
					slot = int32(len(keys))
					slots[key] = slot
					keys = append(keys, key)
					lfirsts = append(lfirsts, ri)
					lsizes = append(lsizes, 0)
				}
				rowSlot[ri] = slot
				lsizes[slot]++
			}
		}
		localKeys[s], localFirsts[s], localSizes[s] = keys, lfirsts, lsizes
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	// Ascending-shard merge: local slots to global first-seen numbering.
	global := make(map[uint64]int32, len(localKeys[0]))
	l2g := make([][]int32, nShards)
	for s := 0; s < nShards; s++ {
		l2g[s] = make([]int32, len(localKeys[s]))
		for ls, key := range localKeys[s] {
			g, ok := global[key]
			if !ok {
				g = int32(len(firsts))
				global[key] = g
				firsts = append(firsts, localFirsts[s][ls])
				sizes = append(sizes, 0)
			}
			l2g[s][ls] = g
			sizes[g] += localSizes[s][ls]
		}
	}
	err = e.forEachShard(n, func(s, shLo, shHi int) error {
		m := l2g[s]
		for lo := shLo; lo < shHi; lo += relation.BlockSize {
			if err := e.pollCtx(); err != nil {
				return err
			}
			bhi := lo + relation.BlockSize
			if bhi > shHi {
				bhi = shHi
			}
			for ri := lo; ri < bhi; ri++ {
				rowSlot[ri] = m[rowSlot[ri]]
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return rowSlot, firsts, sizes, nil
}

// parAggregate computes a grouped projection with the per-slot folds
// distributed over contiguous slot ranges: each slot's rows — carved in
// ascending row order by the counting sort — are folded by exactly one
// worker with the same aggregate() the integer path uses, so every fold
// (float sums included) associates exactly as the single-shard fold does.
// Covers DISTINCT aggregates too, since aggregate() does. A non-DISTINCT
// COUNT over a NULL-free column short-circuits to the group size (the same
// fast path batchAggregate takes; COUNT is order-independent, so the value
// is identical), and when every aggregate in the plan qualifies the per-slot
// row lists are never materialized. Output rows are emitted in slot
// (first-seen) order, identical to the sequential paths.
func (e *executor) parAggregate(rs *rowset, plan []selItem, rowSlot []int32, firsts []int, sizes []int32, out *rowset) error {
	ns := len(firsts)
	fastCount := make([]bool, len(plan))
	needLists := false
	for k, s := range plan {
		if !s.agg {
			continue
		}
		if s.ex.Func == sqlast.AggCount && !s.ex.Distinct {
			if col := colView(rs, s.col); col != nil && col.Nulls == nil {
				fastCount[k] = true
				continue
			}
		}
		needLists = true
	}
	var lists [][]int
	if needLists {
		lists = carveLists(rowSlot, sizes)
	}
	cells := make([]relation.Value, ns*len(plan))
	workers := e.parFor(len(rs.rows))
	err := e.runParts(workers, workers, func(p int) error {
		lo := p * ns / workers
		hi := (p + 1) * ns / workers
		for slot := lo; slot < hi; slot++ {
			if err := e.pollCtx(); err != nil {
				return err
			}
			for k, s := range plan {
				switch {
				case fastCount[k]:
					cells[slot*len(plan)+k] = relation.Int(int64(sizes[slot]))
				case s.agg:
					v, err := aggregate(s.ex, rs, lists[slot], s.col)
					if err != nil {
						return err
					}
					cells[slot*len(plan)+k] = v
				default:
					cells[slot*len(plan)+k] = rs.rows[firsts[slot]][s.col]
				}
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	st := len(rs.cols)
	out.rows = make([]relation.Tuple, 0, ns)
	for slot := 0; slot < ns; slot++ {
		out.rows = append(out.rows, relation.Tuple(cells[slot*len(plan):(slot+1)*len(plan):(slot+1)*len(plan)]))
		if out.dicts != nil {
			for k, s := range plan {
				var id uint32
				if out.dicts[k] != nil {
					id = rs.enc[firsts[slot]*st+s.col]
				}
				out.enc = append(out.enc, id)
			}
		}
	}
	return nil
}
