package sqldb

import (
	"strings"
	"testing"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

func uniDB(t *testing.T) *relation.Database {
	t.Helper()
	return university.New()
}

// run executes sql against the university database and returns the sorted
// result.
func run(t *testing.T, db *relation.Database, sql string) *Result {
	t.Helper()
	res, err := ExecSQL(db, sql)
	if err != nil {
		t.Fatalf("ExecSQL(%q): %v", sql, err)
	}
	res.SortRows()
	return res
}

func rowsAsStrings(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = relation.Format(v)
		}
		out = append(out, strings.Join(parts, "|"))
	}
	return out
}

func expectRows(t *testing.T, res *Result, want ...string) {
	t.Helper()
	got := rowsAsStrings(res)
	if len(got) != len(want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want %v", got, want)
		}
	}
}

func TestSimpleProjection(t *testing.T) {
	res := run(t, uniDB(t), "SELECT S.Sid, S.Sname FROM Student S")
	expectRows(t, res, "s1|George", "s2|Green", "s3|Green")
	if res.Columns[0] != "Sid" || res.Columns[1] != "Sname" {
		t.Errorf("columns: %v", res.Columns)
	}
}

func TestComparisonOperators(t *testing.T) {
	db := uniDB(t)
	cases := []struct {
		sql  string
		want []string
	}{
		{"SELECT S.Sid FROM Student S WHERE S.Age = 22", []string{"s1"}},
		{"SELECT S.Sid FROM Student S WHERE S.Age <> 22", []string{"s2", "s3"}},
		{"SELECT S.Sid FROM Student S WHERE S.Age > 21", []string{"s1", "s2"}},
		{"SELECT S.Sid FROM Student S WHERE S.Age >= 22", []string{"s1", "s2"}},
		{"SELECT S.Sid FROM Student S WHERE S.Age < 22", []string{"s3"}},
		{"SELECT S.Sid FROM Student S WHERE S.Age <= 21", []string{"s3"}},
		{"SELECT S.Sid FROM Student S WHERE S.Sname = 'Green'", []string{"s2", "s3"}},
		{"SELECT S.Sid FROM Student S WHERE S.Sname CONTAINS 'geo'", []string{"s1"}},
	}
	for _, c := range cases {
		expectRows(t, run(t, db, c.sql), c.want...)
	}
}

func TestHashJoin(t *testing.T) {
	res := run(t, uniDB(t),
		"SELECT S.Sname, C.Title FROM Student S, Enrol E, Course C "+
			"WHERE E.Sid=S.Sid AND E.Code=C.Code AND S.Sid = 's2'")
	expectRows(t, res, "Green|Java")
}

func TestJoinOrderIndependence(t *testing.T) {
	a := run(t, uniDB(t),
		"SELECT S.Sid, C.Code FROM Student S, Enrol E, Course C WHERE E.Sid=S.Sid AND E.Code=C.Code")
	b := run(t, uniDB(t),
		"SELECT S.Sid, C.Code FROM Course C, Student S, Enrol E WHERE E.Code=C.Code AND E.Sid=S.Sid")
	if strings.Join(rowsAsStrings(a), ";") != strings.Join(rowsAsStrings(b), ";") {
		t.Errorf("join order changed the result:\n%v\n%v", rowsAsStrings(a), rowsAsStrings(b))
	}
}

func TestCrossJoinWithLateFilter(t *testing.T) {
	// No join predicate connects the two tables when the second is added;
	// the predicate closes the cycle afterwards.
	res := run(t, uniDB(t),
		"SELECT S1.Sid, S2.Sid FROM Student S1, Student S2 WHERE S1.Sname=S2.Sname AND S1.Age < S2.Age")
	expectRows(t, res, "s3|s2")
}

func TestSelfJoinExample5(t *testing.T) {
	// The paper's Example 5 statement, executed.
	res := run(t, uniDB(t),
		"SELECT S1.Sid, COUNT(C.Code) AS numCode "+
			"FROM Course C, Enrol E1, Student S1, Enrol E2, Student S2 "+
			"WHERE C.Code=E1.Code AND C.Code=E2.Code AND S1.Sid=E1.Sid "+
			"AND S1.Sname CONTAINS 'Green' AND S2.Sid=E2.Sid AND S2.Sname CONTAINS 'George' "+
			"GROUP BY S1.Sid")
	expectRows(t, res, "s2|1", "s3|2")
}

func TestAggregates(t *testing.T) {
	db := uniDB(t)
	cases := []struct {
		sql, want string
	}{
		{"SELECT COUNT(S.Sid) AS n FROM Student S", "3"},
		{"SELECT SUM(C.Credit) AS s FROM Course C", "12"},
		{"SELECT AVG(C.Credit) AS a FROM Course C", "4"},
		{"SELECT MIN(C.Credit) AS m FROM Course C", "3"},
		{"SELECT MAX(C.Credit) AS m FROM Course C", "5"},
		{"SELECT MIN(S.Sname) AS m FROM Student S", "George"},
		{"SELECT MAX(S.Sname) AS m FROM Student S", "Green"},
		{"SELECT COUNT(DISTINCT S.Sname) AS n FROM Student S", "2"},
	}
	for _, c := range cases {
		res := run(t, db, c.sql)
		if len(res.Rows) != 1 || relation.Format(res.Rows[0][0]) != c.want {
			t.Errorf("%s = %v, want %s", c.sql, rowsAsStrings(res), c.want)
		}
	}
}

func TestGroupBy(t *testing.T) {
	res := run(t, uniDB(t),
		"SELECT E.Code, COUNT(E.Sid) AS n FROM Enrol E GROUP BY E.Code")
	expectRows(t, res, "c1|3", "c2|1", "c3|2")
}

func TestGroupByMultipleColumns(t *testing.T) {
	res := run(t, uniDB(t),
		"SELECT T.Code, T.Lid, COUNT(T.Bid) AS n FROM Teach T GROUP BY T.Code, T.Lid")
	expectRows(t, res, "c1|l1|2", "c1|l2|1", "c2|l1|2", "c3|l2|1")
}

func TestAggregateOverEmptyInput(t *testing.T) {
	db := uniDB(t)
	// COUNT over an empty selection is 0; MIN/MAX/SUM/AVG are NULL.
	res := run(t, db, "SELECT COUNT(S.Sid) AS n FROM Student S WHERE S.Sname = 'Nobody'")
	expectRows(t, res, "0")
	res = run(t, db, "SELECT MAX(S.Age) AS m FROM Student S WHERE S.Sname = 'Nobody'")
	expectRows(t, res, "NULL")
	res = run(t, db, "SELECT SUM(S.Age) AS s FROM Student S WHERE S.Sname = 'Nobody'")
	expectRows(t, res, "NULL")
	// With GROUP BY, an empty input yields no groups at all.
	res = run(t, db, "SELECT S.Sname, COUNT(S.Sid) AS n FROM Student S WHERE S.Sname = 'Nobody' GROUP BY S.Sname")
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty input should have no rows: %v", rowsAsStrings(res))
	}
}

func TestDistinct(t *testing.T) {
	res := run(t, uniDB(t), "SELECT DISTINCT S.Sname FROM Student S")
	expectRows(t, res, "George", "Green")
}

func TestDistinctProjectionOfRelationship(t *testing.T) {
	// The Example 6 projection: 6 Teach rows collapse to 4 (Lid, Code) pairs.
	res := run(t, uniDB(t), "SELECT DISTINCT T.Lid, T.Code FROM Teach T")
	if len(res.Rows) != 4 {
		t.Errorf("want 4 distinct pairs, got %v", rowsAsStrings(res))
	}
}

func TestDerivedTable(t *testing.T) {
	res := run(t, uniDB(t),
		"SELECT COUNT(T.Lid) AS n FROM (SELECT DISTINCT Lid, Code FROM Teach) T WHERE T.Code = 'c1'")
	expectRows(t, res, "2")
}

func TestNestedAggregateExample7(t *testing.T) {
	res := run(t, uniDB(t),
		"SELECT AVG(R.numLid) AS avgnumLid FROM (SELECT C.Code, COUNT(L.Lid) AS numLid "+
			"FROM Lecturer L, Course C, (SELECT DISTINCT Lid, Code FROM Teach) T "+
			"WHERE T.Lid=L.Lid AND T.Code=C.Code GROUP BY C.Code) R")
	if len(res.Rows) != 1 {
		t.Fatalf("rows: %v", rowsAsStrings(res))
	}
	f, _ := relation.AsFloat(res.Rows[0][0])
	if f < 1.33 || f > 1.34 {
		t.Errorf("Example 7 average: %v, want 4/3", f)
	}
}

func TestOrderBy(t *testing.T) {
	res, err := ExecSQL(uniDB(t), "SELECT S.Sid, S.Age FROM Student S ORDER BY S.Age DESC")
	if err != nil {
		t.Fatal(err)
	}
	got := rowsAsStrings(res)
	if got[0] != "s2|24" || got[2] != "s3|21" {
		t.Errorf("order by desc: %v", got)
	}
}

func TestNullsExcludedFromJoinsAndAggregates(t *testing.T) {
	db := relation.NewDatabase("nulls")
	tb := db.AddSchema(relation.NewSchema("T", "id INT", "v INT").Key("id"))
	tb.MustInsert(int64(1), int64(10))
	tb.MustInsert(int64(2), nil)
	tb.MustInsert(int64(3), int64(30))
	res := run(t, db, "SELECT COUNT(T.v) AS n FROM T")
	expectRows(t, res, "2") // NULL not counted
	res = run(t, db, "SELECT SUM(T.v) AS s FROM T")
	expectRows(t, res, "40")
	res = run(t, db, "SELECT AVG(T.v) AS a FROM T")
	expectRows(t, res, "20") // average over non-null values only
	// NULL never matches a join.
	u := db.AddSchema(relation.NewSchema("U", "v INT").Key("v"))
	u.MustInsert(nil)
	u.MustInsert(int64(10))
	res = run(t, db, "SELECT T.id FROM T, U WHERE T.v = U.v")
	expectRows(t, res, "1")
}

func TestUnqualifiedColumnResolution(t *testing.T) {
	res := run(t, uniDB(t), "SELECT Sname FROM Student S WHERE Age > 23")
	expectRows(t, res, "Green")
}

func TestExecErrors(t *testing.T) {
	db := uniDB(t)
	bad := []string{
		"SELECT X.Sid FROM NoSuchTable X",
		"SELECT S.NoSuchColumn FROM Student S",
		"SELECT Sid FROM Student S1, Student S2",  // ambiguous unqualified
		"SELECT SUM(S.Sname) AS s FROM Student S", // SUM over strings
	}
	for _, sql := range bad {
		if _, err := ExecSQL(db, sql); err == nil {
			t.Errorf("ExecSQL(%q) should fail", sql)
		}
	}
}

func TestResultString(t *testing.T) {
	res := run(t, uniDB(t), "SELECT S.Sid, S.Sname FROM Student S WHERE S.Sid = 's1'")
	s := res.String()
	if !strings.Contains(s, "Sid") || !strings.Contains(s, "George") {
		t.Errorf("Result.String: %q", s)
	}
}

func TestColumnNamingDefaults(t *testing.T) {
	res := run(t, uniDB(t), "SELECT COUNT(S.Sid) FROM Student S")
	if res.Columns[0] != "COUNT(S.Sid)" {
		t.Errorf("unaliased aggregate column name: %q", res.Columns[0])
	}
	res = run(t, uniDB(t), "SELECT S.Sid AS ident FROM Student S")
	if res.Columns[0] != "ident" {
		t.Errorf("alias not used: %q", res.Columns[0])
	}
}

func TestGroupByNonAggregatedColumnTakesGroupValue(t *testing.T) {
	res := run(t, uniDB(t),
		"SELECT S.Sname, COUNT(S.Sid) AS n FROM Student S GROUP BY S.Sname")
	expectRows(t, res, "George|1", "Green|2")
}

func TestLimit(t *testing.T) {
	res := run(t, uniDB(t), "SELECT S.Sid FROM Student S ORDER BY S.Sid LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("LIMIT 2: %v", rowsAsStrings(res))
	}
	// LIMIT larger than the result is a no-op.
	res = run(t, uniDB(t), "SELECT S.Sid FROM Student S LIMIT 99")
	if len(res.Rows) != 3 {
		t.Fatalf("LIMIT 99: %v", rowsAsStrings(res))
	}
}

func TestLimitParsesAndRenders(t *testing.T) {
	q, err := Parse("SELECT S.Sid FROM Student S LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 5 {
		t.Errorf("Limit = %d", q.Limit)
	}
	if got := q.String(); got != "SELECT S.Sid FROM Student S LIMIT 5" {
		t.Errorf("render: %s", got)
	}
	if _, err := Parse("SELECT x FROM T LIMIT -3"); err == nil {
		t.Error("negative LIMIT should fail")
	}
	if _, err := Parse("SELECT x FROM T LIMIT x"); err == nil {
		t.Error("non-numeric LIMIT should fail")
	}
}
