// Package sqldb is an in-memory SQL engine for the subset of SQL generated
// by the semantic translator and the SQAK baseline. It substitutes for the
// commercial RDBMS the paper ran its generated statements on: parsing the
// statement text into the shared AST (internal/sqlast) and evaluating it
// against internal/relation tables with hash joins, derived tables,
// DISTINCT, grouping and aggregates.
package sqldb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , . = <> < <= > >= *
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the SQL text. Identifiers and keywords are case-preserved
// (keyword checks are case-insensitive later); strings use single quotes
// with ” as the escape.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqldb: unterminated string literal at offset %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexPunct() error {
	start := l.pos
	two := ""
	if l.pos+2 <= len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		if two == "!=" {
			two = "<>"
		}
		l.pos += 2
		l.toks = append(l.toks, token{kind: tokPunct, text: two, pos: start})
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '.', '=', '<', '>', '*':
		l.pos++
		l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: start})
		return nil
	default:
		return fmt.Errorf("sqldb: unexpected character %q at offset %d", string(c), start)
	}
}
