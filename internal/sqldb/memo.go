package sqldb

import (
	"container/list"
	"context"
	"sync"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Memo caches intermediate executor rowsets across statements and requests,
// keyed by a canonical subplan string: "scan|<table>|<alias>" grown with
// "|f:<pred>" per pushed filter, "join(<left>)+(<right>)|on:<eqs>" per join
// step, and "sub|<sql>" for derived tables. The top-k interpretations of one
// keyword query share most of their ORM-graph join fragments, so executing
// them against the same frozen database repeats near-identical subplans; the
// memo lets the first execution pay for a fragment and every later
// interpretation — in the same request or a later one — reuse the finished
// rowset.
//
// Correctness rests on two properties: the database is frozen before a memo
// is attached (a key's result is deterministic), and cached rowsets are
// immutable by convention — every executor operator builds a fresh rowset and
// only reads its inputs, and whole-statement projections are never cached
// (callers may reorder Result rows in place). Entries are evicted LRU by
// their cell count (rows × columns) against a fixed budget.
//
// Concurrent requests for the same missing key collapse into one computation:
// the first caller claims the entry and computes it, later callers block on
// the claim; if the computation fails, the entry is dropped and the waiters
// compute for themselves without caching.
type Memo struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	entries map[string]*memoEntry
	lru     *list.List // ready entries, most recently used first
}

type memoEntry struct {
	key    string
	ready  chan struct{} // closed once rs/failed is final
	rs     *rowset
	failed bool
	cost   int64
	elem   *list.Element // non-nil while the entry is cached in the LRU
}

// NewMemo creates a memo bounded to budgetCells result cells (rows times
// columns, summed over cached fragments). A non-positive budget returns nil,
// which disables memoization wherever the memo is passed.
func NewMemo(budgetCells int64) *Memo {
	if budgetCells <= 0 {
		return nil
	}
	return &Memo{
		budget:  budgetCells,
		entries: make(map[string]*memoEntry),
		lru:     list.New(),
	}
}

// Len reports the number of cached (ready) fragments.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lru.Len()
}

// UsedCells reports the cell cost currently held by cached fragments.
func (m *Memo) UsedCells() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// memoClaim is the right (and obligation) to finish a missing entry: the
// holder computes the rowset and must call publish or fail exactly once.
type memoClaim struct {
	m   *Memo
	ent *memoEntry
}

// acquire returns a cached rowset (hit), or a claim to compute the missing
// key (nil rowset, non-nil claim), or neither when another goroutine's
// computation of the key failed — the caller should then compute without
// caching. It blocks while another goroutine holds the key's claim.
func (m *Memo) acquire(ctx context.Context, key string) (*rowset, *memoClaim, error) {
	m.mu.Lock()
	ent, ok := m.entries[key]
	if !ok {
		ent = &memoEntry{key: key, ready: make(chan struct{})}
		m.entries[key] = ent
		m.mu.Unlock()
		return nil, &memoClaim{m: m, ent: ent}, nil
	}
	m.mu.Unlock()
	if ctx != nil {
		select {
		case <-ent.ready:
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	} else {
		<-ent.ready
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if ent.failed {
		return nil, nil, nil
	}
	if ent.elem != nil {
		m.lru.MoveToFront(ent.elem)
	}
	return ent.rs, nil, nil
}

// publish finishes the claim with a computed rowset, caching it within the
// budget and waking every waiter.
func (c *memoClaim) publish(rs *rowset) {
	m, ent := c.m, c.ent
	cost := int64(len(rs.rows))*int64(len(rs.cols)) + 1
	m.mu.Lock()
	ent.rs = rs
	ent.cost = cost
	if cost <= m.budget {
		ent.elem = m.lru.PushFront(ent)
		m.used += cost
		for m.used > m.budget {
			back := m.lru.Back()
			old := back.Value.(*memoEntry)
			m.lru.Remove(back)
			old.elem = nil
			delete(m.entries, old.key)
			m.used -= old.cost
		}
	} else {
		// Larger than the whole budget: hand the rowset to the current
		// waiters but do not cache it.
		delete(m.entries, ent.key)
	}
	close(ent.ready)
	m.mu.Unlock()
}

// fail finishes the claim without a result: the entry is dropped so waiters
// (and later requests) recompute.
func (c *memoClaim) fail() {
	m, ent := c.m, c.ent
	m.mu.Lock()
	ent.failed = true
	delete(m.entries, ent.key)
	close(ent.ready)
	m.mu.Unlock()
}

// memoized returns the rowset for the canonical subplan key, computing it
// with compute on a miss. With no memo attached (or an uncacheable fragment,
// key == "") it simply computes.
func (e *executor) memoized(key string, compute func() (*rowset, error)) (*rowset, error) {
	if e.memo == nil || key == "" {
		return compute()
	}
	rs, claim, err := e.memo.acquire(e.ctx, key)
	if err != nil {
		return nil, err
	}
	if rs != nil {
		e.memoHits++
		return rs, nil
	}
	e.memoMisses++
	out, err := compute()
	if claim != nil {
		if err != nil || out == nil {
			claim.fail()
		} else {
			out.key = key
			claim.publish(out)
		}
	}
	return out, err
}

// ExecStats reports how one statement's execution used the optional
// machinery: the shared-subplan memo and the shard-parallel kernel drivers.
type ExecStats struct {
	Hits      int // subplan fragments served from the memo
	Misses    int // fragments computed (and, when cacheable, published)
	ShardRuns int // kernel passes that actually ran shard-parallel
}

// MemoStats is the pre-sharding name of ExecStats, kept as an alias for
// existing callers.
type MemoStats = ExecStats

// ExecConfig bundles the optional execution machinery one statement runs
// with: the shared-subplan memo, the kernel selection and the shard-parallel
// worker target.
type ExecConfig struct {
	// Memo is the shared-subplan cache; nil disables memoization. It may be
	// shared between batch and integer-at-a-time executions of the same
	// frozen database: the batch kernels preserve exact output row order, so
	// either mode's fragments are byte-identical.
	Memo *Memo
	// NoBatch pins the integer-at-a-time encoded kernels (the PR4 execution
	// mode) instead of the default vectorized batch kernels.
	NoBatch bool
	// Shards is the shard-parallel worker target for the batch kernels
	// (see parallel.go): <=1 runs single-shard, n > 1 lets filter,
	// join-probe and GROUP BY passes use up to n workers (capped by the
	// shard count and GOMAXPROCS at execution time). Answers are row- and
	// byte-identical either way.
	Shards int
	// ShardRows overrides the rows-per-shard morsel size (0 uses
	// relation.ShardRows; rounded up to whole ColData blocks). A test hook:
	// shrinking it forces multi-shard execution on small inputs.
	ShardRows int
}

// ExecOpts is ExecContext with an ExecConfig: cancellation from ctx;
// memoization, kernel selection and shard parallelism from cfg.
func ExecOpts(ctx context.Context, db *relation.Database, q *sqlast.Query, cfg ExecConfig) (*Result, ExecStats, error) {
	e := &executor{db: db, memo: cfg.Memo, noBatch: cfg.NoBatch, par: cfg.Shards, shardRows: cfg.ShardRows}
	if ctx != nil && ctx.Done() != nil {
		e.ctx = ctx
	}
	res, err := e.query(q)
	return res, ExecStats{Hits: e.memoHits, Misses: e.memoMisses, ShardRuns: e.shardRuns}, err
}

// ExecMemoContext is ExecContext with shared-subplan memoization: filtered
// scans, join accumulations and derived tables are cached in m under their
// canonical subplan keys and reused across statements and requests. m must
// only be shared across executions of the same immutable (frozen) database;
// a nil m degrades to plain ExecContext.
func ExecMemoContext(ctx context.Context, db *relation.Database, q *sqlast.Query, m *Memo) (*Result, MemoStats, error) {
	return ExecOpts(ctx, db, q, ExecConfig{Memo: m})
}
