package sqldb

import (
	"fmt"
	"strconv"
	"strings"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Parse parses a SQL statement of the supported subset into the shared AST.
// Rendering the returned query with its String method produces text that
// parses back to an equal tree.
func Parse(src string) (*sqlast.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errorf("trailing input %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.text, text)
}

func (p *parser) atKeyword(words ...string) bool {
	for _, w := range words {
		if p.at(tokIdent, w) {
			return true
		}
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		return token{}, p.errorf("expected %q, found %q", text, p.cur().text)
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sqldb: parse error at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

var reservedAfterRef = map[string]bool{
	"where": true, "group": true, "groupby": true, "order": true, "from": true,
	"and": true, "as": true, "on": true, "select": true, "distinct": true,
	"contains": true, "like": true, "by": true, "limit": true,
}

func (p *parser) parseQuery() (*sqlast.Query, error) {
	if _, err := p.expect(tokIdent, "SELECT"); err != nil {
		return nil, err
	}
	q := &sqlast.Query{}
	if p.atKeyword("DISTINCT") {
		p.next()
		q.Distinct = true
	}
	for {
		it, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, it)
		if p.at(tokPunct, ",") {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokIdent, "FROM"); err != nil {
		return nil, err
	}
	for {
		tr, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, tr)
		if p.at(tokPunct, ",") {
			p.next()
			continue
		}
		break
	}
	if p.atKeyword("WHERE") {
		p.next()
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			q.Where = append(q.Where, pred)
			if p.atKeyword("AND") {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("GROUP") || p.atKeyword("GROUPBY") {
		joined := p.atKeyword("GROUPBY")
		p.next()
		if !joined {
			if _, err := p.expect(tokIdent, "BY"); err != nil {
				return nil, err
			}
		}
		for {
			c, err := p.parseCol()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if p.at(tokPunct, ",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("ORDER") {
		p.next()
		if _, err := p.expect(tokIdent, "BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.parseCol()
			if err != nil {
				return nil, err
			}
			item := sqlast.OrderItem{Col: c}
			if p.atKeyword("DESC") {
				p.next()
				item.Desc = true
			} else if p.atKeyword("ASC") {
				p.next()
			}
			q.OrderBy = append(q.OrderBy, item)
			if p.at(tokPunct, ",") {
				p.next()
				continue
			}
			break
		}
	}
	if p.atKeyword("LIMIT") {
		p.next()
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (sqlast.SelectItem, error) {
	var it sqlast.SelectItem
	if fn, ok := sqlast.IsAggFunc(p.cur().text); ok && p.cur().kind == tokIdent &&
		p.i+1 < len(p.toks) && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == "(" {
		p.next() // func name
		p.next() // (
		agg := sqlast.AggExpr{Func: fn}
		if p.atKeyword("DISTINCT") {
			p.next()
			agg.Distinct = true
		}
		c, err := p.parseCol()
		if err != nil {
			return it, err
		}
		agg.Arg = c
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return it, err
		}
		it.Expr = agg
	} else {
		c, err := p.parseCol()
		if err != nil {
			return it, err
		}
		it.Expr = sqlast.ColExpr{Col: c}
	}
	if p.atKeyword("AS") {
		p.next()
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return it, err
		}
		it.Alias = t.text
	}
	return it, nil
}

func (p *parser) parseCol() (sqlast.Col, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return sqlast.Col{}, err
	}
	c := sqlast.Col{Column: t.text}
	if p.at(tokPunct, ".") {
		p.next()
		t2, err := p.expect(tokIdent, "")
		if err != nil {
			return sqlast.Col{}, err
		}
		c.Table, c.Column = t.text, t2.text
	}
	return c, nil
}

func (p *parser) parseTableRef() (sqlast.TableRef, error) {
	var tr sqlast.TableRef
	if p.at(tokPunct, "(") {
		p.next()
		sub, err := p.parseQuery()
		if err != nil {
			return tr, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return tr, err
		}
		tr.Subquery = sub
	} else {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return tr, err
		}
		tr.Name = t.text
	}
	if p.atKeyword("AS") {
		p.next()
	}
	if p.cur().kind == tokIdent && !reservedAfterRef[strings.ToLower(p.cur().text)] {
		tr.Alias = p.next().text
	}
	if tr.Alias == "" {
		tr.Alias = tr.Name
	}
	return tr, nil
}

func (p *parser) parsePred() (sqlast.Pred, error) {
	left, err := p.parseCol()
	if err != nil {
		return nil, err
	}
	if p.atKeyword("CONTAINS") {
		p.next()
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return sqlast.ContainsPred{Col: left, Needle: t.text}, nil
	}
	if p.atKeyword("LIKE") {
		// LIKE '%t%' is accepted as a synonym for CONTAINS 't'.
		p.next()
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return sqlast.ContainsPred{Col: left, Needle: strings.Trim(t.text, "%")}, nil
	}
	op := p.cur()
	if op.kind != tokPunct {
		return nil, p.errorf("expected comparison operator, found %q", op.text)
	}
	var cmp sqlast.CmpOp
	switch op.text {
	case "=":
		cmp = sqlast.OpEq
	case "<>":
		cmp = sqlast.OpNe
	case "<":
		cmp = sqlast.OpLt
	case "<=":
		cmp = sqlast.OpLe
	case ">":
		cmp = sqlast.OpGt
	case ">=":
		cmp = sqlast.OpGe
	default:
		return nil, p.errorf("unexpected operator %q", op.text)
	}
	p.next()
	switch t := p.cur(); t.kind {
	case tokIdent:
		right, err := p.parseCol()
		if err != nil {
			return nil, err
		}
		if cmp != sqlast.OpEq {
			return sqlast.ColComparePred{Left: left, Op: cmp, Right: right}, nil
		}
		return sqlast.JoinPred{Left: left, Right: right}, nil
	case tokString:
		p.next()
		return sqlast.ComparePred{Col: left, Op: cmp, Value: relation.Str(t.text)}, nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return sqlast.ComparePred{Col: left, Op: cmp, Value: relation.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return sqlast.ComparePred{Col: left, Op: cmp, Value: relation.Int(i)}, nil
	default:
		return nil, p.errorf("expected literal or column after operator")
	}
}
