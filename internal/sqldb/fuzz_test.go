package sqldb

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"kwagg/internal/dataset/university"
	"kwagg/internal/relation"
)

// FuzzParse ensures the lexer and parser never panic and that every
// successfully parsed statement re-renders to text that parses again to the
// same rendering (the round-trip invariant), whatever the input.
func FuzzParse(f *testing.F) {
	for _, seed := range corpus {
		f.Add(seed)
	}
	f.Add("SELECT")
	f.Add("SELECT x FROM")
	f.Add("'unterminated")
	f.Add("SELECT x FROM T WHERE x CONTAINS 'a' GROUPBY x LIMIT 3")
	f.Add("SELECT COUNT(DISTINCT x) FROM (SELECT y FROM T) Z ORDER BY y DESC")
	f.Add("SELECT x FROM T WHERE x = 'a\x1fb'") // the executor's old hash-key separator
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		text := q.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("rendered SQL does not parse: %v\nin:  %q\nout: %q", err, src, text)
		}
		if back.String() != text {
			t.Fatalf("render not a fixpoint:\n%q\n%q", text, back.String())
		}
	})
}

// FuzzPretty ensures the multi-line AST printer is faithful: whatever
// parses, its Pretty rendering must parse back to the same canonical
// single-line rendering — the printer may only change layout, never meaning.
func FuzzPretty(f *testing.F) {
	for _, seed := range corpus {
		f.Add(seed)
	}
	f.Add("SELECT COUNT(DISTINCT x) FROM (SELECT y FROM T) Z ORDER BY y DESC LIMIT 2")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		pretty := q.Pretty()
		back, err := Parse(pretty)
		if err != nil {
			t.Fatalf("Pretty rendering does not parse: %v\nin:     %q\npretty: %q", err, src, pretty)
		}
		if back.String() != q.String() {
			t.Fatalf("Pretty changed the statement's meaning:\nwant %q\ngot  %q", q.String(), back.String())
		}
	})
}

// fuzzBlockDB builds a frozen database whose tables reuse the university
// workload's names (so the shared corpus seeds hit them) but span multiple
// BlockSize blocks plus a trailing partial block — the shapes the batch
// kernels' block loops must get right. NULLs, the literal string "NULL" and
// repeating group/join keys are planted deterministically.
func fuzzBlockDB() *relation.Database {
	const n = 2*relation.BlockSize + 517
	db := relation.NewDatabase("fuzzblocks")
	student := db.AddSchema(relation.NewSchema("Student", "Sid", "Sname", "Age INT").Key("Sid"))
	for i := 0; i < n; i++ {
		var name relation.Value = fmt.Sprintf("s%d", i%97)
		switch i % 113 {
		case 0:
			name = nil
		case 1:
			name = "NULL"
		}
		var age relation.Value = int64(18 + i%9)
		if i%127 == 0 {
			age = nil
		}
		student.MustInsert(fmt.Sprintf("id%d", i), name, age)
	}
	enrol := db.AddSchema(relation.NewSchema("Enrol", "Sid", "Code", "Grade INT").Key("Sid", "Code"))
	for i := 0; i < n; i++ {
		enrol.MustInsert(fmt.Sprintf("id%d", i%1500), fmt.Sprintf("c%d", i%37), int64(i%11))
	}
	db.Freeze()
	return db
}

// FuzzExec ensures executing arbitrary parsed statements never panics (it
// may error) against a real database — an unfrozen one (formatted-string
// paths) and a frozen multi-block one, where the batch and encoded kernel
// generations are additionally run differentially: both must agree on
// success vs error, and on success the results must be identical including
// row order (the batch kernels' ordering guarantee).
func FuzzExec(f *testing.F) {
	for _, seed := range corpus {
		f.Add(seed)
	}
	// Hash-key separator collisions: values containing "\x1f" aliased under
	// the executor's old joined keys and must stay distinct.
	f.Add("SELECT S.Sname FROM Student S WHERE S.Sname = 'a\x1fb'")
	f.Add("SELECT DISTINCT S.Sname, S.Age FROM Student S")
	f.Add("SELECT E.Grade, COUNT(E.Sid) AS n FROM Enrol E GROUP BY E.Grade, E.Code")
	// Multi-block shapes: filters, joins and grouping whose inputs cross
	// block boundaries on the frozen database, including the NULL vs "NULL"
	// trap and a low-selectivity equality.
	f.Add("SELECT S.Sid FROM Student S WHERE S.Sname = 'NULL'")
	f.Add("SELECT S.Sname, COUNT(S.Sid) AS n FROM Student S GROUP BY S.Sname")
	f.Add("SELECT COUNT(E.Code) AS n FROM Student S, Enrol E WHERE S.Sid = E.Sid")
	f.Add("SELECT E.Grade, AVG(E.Grade) AS a FROM Enrol E WHERE E.Code = 'c5' GROUP BY E.Grade")
	db := university.New()
	blocks := fuzzBlockDB()
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = Exec(db, q) // must not panic

		// Arbitrary SQL can build unbounded cross products over the
		// multi-block tables; bound each differential execution with the
		// executor's cancellation polling and skip the comparison when a side
		// runs out of time (the fuzzer must never look hung).
		run := func(cfg ExecConfig) (*Result, error) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			res, _, err := ExecOpts(ctx, blocks, q, cfg)
			return res, err
		}
		batch, berr := run(ExecConfig{})
		encoded, eerr := run(ExecConfig{NoBatch: true})
		// Third leg: shard-parallel drivers forced onto one-block shards.
		sharded, serr := run(ExecConfig{Shards: 4, ShardRows: relation.BlockSize})
		if errors.Is(berr, context.DeadlineExceeded) || errors.Is(eerr, context.DeadlineExceeded) ||
			errors.Is(serr, context.DeadlineExceeded) {
			return
		}
		if (berr == nil) != (eerr == nil) || (berr == nil) != (serr == nil) {
			t.Fatalf("kernel generations disagree on error:\nSQL: %s\nbatch:   %v\nencoded: %v\nsharded: %v",
				q, berr, eerr, serr)
		}
		if berr == nil && !reflect.DeepEqual(batch, encoded) {
			t.Fatalf("batch result diverged from encoded (row order included):\nSQL: %s\nbatch:   %+v\nencoded: %+v",
				q, batch, encoded)
		}
		if berr == nil && !reflect.DeepEqual(batch, sharded) {
			t.Fatalf("sharded result diverged from batch (row order included):\nSQL: %s\nbatch:   %+v\nsharded: %+v",
				q, batch, sharded)
		}
	})
}
