package sqldb

import (
	"testing"

	"kwagg/internal/dataset/university"
)

// FuzzParse ensures the lexer and parser never panic and that every
// successfully parsed statement re-renders to text that parses again to the
// same rendering (the round-trip invariant), whatever the input.
func FuzzParse(f *testing.F) {
	for _, seed := range corpus {
		f.Add(seed)
	}
	f.Add("SELECT")
	f.Add("SELECT x FROM")
	f.Add("'unterminated")
	f.Add("SELECT x FROM T WHERE x CONTAINS 'a' GROUPBY x LIMIT 3")
	f.Add("SELECT COUNT(DISTINCT x) FROM (SELECT y FROM T) Z ORDER BY y DESC")
	f.Add("SELECT x FROM T WHERE x = 'a\x1fb'") // the executor's old hash-key separator
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		text := q.String()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("rendered SQL does not parse: %v\nin:  %q\nout: %q", err, src, text)
		}
		if back.String() != text {
			t.Fatalf("render not a fixpoint:\n%q\n%q", text, back.String())
		}
	})
}

// FuzzPretty ensures the multi-line AST printer is faithful: whatever
// parses, its Pretty rendering must parse back to the same canonical
// single-line rendering — the printer may only change layout, never meaning.
func FuzzPretty(f *testing.F) {
	for _, seed := range corpus {
		f.Add(seed)
	}
	f.Add("SELECT COUNT(DISTINCT x) FROM (SELECT y FROM T) Z ORDER BY y DESC LIMIT 2")
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		pretty := q.Pretty()
		back, err := Parse(pretty)
		if err != nil {
			t.Fatalf("Pretty rendering does not parse: %v\nin:     %q\npretty: %q", err, src, pretty)
		}
		if back.String() != q.String() {
			t.Fatalf("Pretty changed the statement's meaning:\nwant %q\ngot  %q", q.String(), back.String())
		}
	})
}

// FuzzExec ensures executing arbitrary parsed statements never panics (it
// may error) against a real database.
func FuzzExec(f *testing.F) {
	for _, seed := range corpus {
		f.Add(seed)
	}
	// Hash-key separator collisions: values containing "\x1f" aliased under
	// the executor's old joined keys and must stay distinct.
	f.Add("SELECT S.Sname FROM Student S WHERE S.Sname = 'a\x1fb'")
	f.Add("SELECT DISTINCT S.Sname, S.Age FROM Student S")
	f.Add("SELECT E.Grade, COUNT(E.Sid) AS n FROM Enrol E GROUP BY E.Grade, E.Code")
	db := university.New()
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		_, _ = Exec(db, q) // must not panic
	})
}
