package sqldb

import (
	"fmt"
	"math/bits"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Vectorized batch kernels (MonetDB/X100-style): the hot operators —
// equality filter, hash-join probe, GROUP BY — process relation.BlockSize
// dictionary IDs at a time instead of one row at a time. A block pass has two
// stages: a branch-free kernel fills a selection vector (a bitset over the
// block's rows, packed into ascending row indexes on demand), then a gather
// walks only the selected rows to emit output. Every kernel preserves the
// integer-at-a-time path's exact output row order (ascending input rows for
// filters and probes, first-seen slot order for groups), so memoized
// fragments, the query cache and the planck invariants are untouched; the
// integer path itself stays intact as the `encoded` reference behind
// Options.BatchKernels / ExecEncoded.

// blockWords is the selection-bitset word count of one full block.
const blockWords = relation.BlockSize / 64

// batchOn reports whether the batch kernels may run. They are off in the
// scan-only reference executor (which carries no encoding anyway) and when
// the caller pinned the integer-at-a-time path (ExecEncoded,
// Options.BatchKernels < 0).
func (e *executor) batchOn() bool { return !e.noIndex && !e.noBatch }

// stepN advances the row-touch counter by one block of n rows and polls
// cancellation. Blocks are at most rowCheckInterval rows, so per-block polls
// keep the same responsiveness as the per-row amortized step().
func (e *executor) stepN(n int) error {
	if e.ctx == nil {
		return nil
	}
	e.ops += uint(n)
	return e.ctx.Err()
}

// colView returns the contiguous column-major encoding of rs's column i when
// rs is a pristine base-table scan — rows exactly base.Tuples, so rowset
// column i is attribute i of the base table. nil for derived rowsets, whose
// kernels read the row-major enc array with a stride instead.
func colView(rs *rowset, i int) *relation.ColData {
	if rs.base == nil {
		return nil
	}
	return rs.base.Col(i)
}

// ensureBits returns a zero-length selection bitset with capacity for words.
func (e *executor) ensureBits(words int) []uint64 {
	if cap(e.selBits) < words {
		e.selBits = make([]uint64, words)
	}
	return e.selBits[:words]
}

// ensureIdx returns the packed-index scratch, sized to one block.
func (e *executor) ensureIdx() []int32 {
	if e.selIdx == nil {
		e.selIdx = make([]int32, 0, relation.BlockSize)
	}
	return e.selIdx
}

// ensurePids returns the translated-probe-ID scratch, sized to one block.
func (e *executor) ensurePids() []uint32 {
	if e.pids == nil {
		e.pids = make([]uint32, relation.BlockSize)
	}
	return e.pids
}

// eqBits fills bits with the selection bitset of col[k] == id over one
// contiguous block: bit k is set iff the IDs match. Branch-free: for
// m = col[k]^id (< 2^32), (m-1)>>63 is 1 exactly when m is zero. Whole words
// are overwritten, so bits needs no clearing and tail bits beyond len(col)
// stay zero.
func eqBits(dst []uint64, col []uint32, id uint32) {
	n := len(col)
	for w := 0; w*64 < n; w++ {
		m := n - w*64
		if m > 64 {
			m = 64
		}
		base := w * 64
		var word uint64
		for k := 0; k < m; k++ {
			word |= (uint64(col[base+k]^id) - 1) >> 63 << uint(k)
		}
		dst[w] = word
	}
}

// eqBitsStrided is eqBits over a row-major encoding: row k's ID is
// enc[k*st] (the caller offsets enc to the first row's cell of the filtered
// column). Derived rowsets — post-filter, post-join, subquery outputs —
// carry only the row-major layout, so their kernel pays a strided load
// instead of a contiguous one but keeps the branch-free inner loop.
func eqBitsStrided(dst []uint64, enc []uint32, st, n int, id uint32) {
	p := 0
	for w := 0; w*64 < n; w++ {
		m := n - w*64
		if m > 64 {
			m = 64
		}
		var word uint64
		for k := 0; k < m; k++ {
			word |= (uint64(enc[p]^id) - 1) >> 63 << uint(k)
			p += st
		}
		dst[w] = word
	}
}

// keepBits fills bits with the per-row lookup of a per-dictionary-entry keep
// bitset (bit id set iff the dictionary entry matched the predicate): bit k
// is set iff keep has col[k]'s bit. The CONTAINS kernel evaluates its
// substring match once per dictionary entry and then selects rows with this
// single branch-free pass.
func keepBits(dst []uint64, col []uint32, keep []uint64) {
	n := len(col)
	for w := 0; w*64 < n; w++ {
		m := n - w*64
		if m > 64 {
			m = 64
		}
		base := w * 64
		var word uint64
		for k := 0; k < m; k++ {
			id := col[base+k]
			word |= keep[id>>6] >> (id & 63) & 1 << uint(k)
		}
		dst[w] = word
	}
}

// keepBitsStrided is keepBits over a row-major encoding (see eqBitsStrided).
func keepBitsStrided(dst []uint64, enc []uint32, st, n int, keep []uint64) {
	p := 0
	for w := 0; w*64 < n; w++ {
		m := n - w*64
		if m > 64 {
			m = 64
		}
		var word uint64
		for k := 0; k < m; k++ {
			id := enc[p]
			word |= keep[id>>6] >> (id & 63) & 1 << uint(k)
			p += st
		}
		dst[w] = word
	}
}

// neqBits fills bits with the selection bitset of ids[k] != sentinel —
// the probe-side survivor mask after a remap (sentinel relation.NoID marks
// probe values absent from the build dictionary).
func neqBits(dst []uint64, ids []uint32, sentinel uint32) {
	n := len(ids)
	for w := 0; w*64 < n; w++ {
		m := n - w*64
		if m > 64 {
			m = 64
		}
		base := w * 64
		var word uint64
		for k := 0; k < m; k++ {
			word |= ((uint64(ids[base+k]^sentinel)-1)>>63 ^ 1) & 1 << uint(k)
		}
		dst[w] = word
	}
}

// selIndexes packs a block's selection bitset into ascending row indexes
// (local to the block), reusing idx's backing array. One TrailingZeros per
// selected row; words are consumed lowest bit first, so the packed form
// enumerates exactly the set bits in ascending order.
func selIndexes(idx []int32, sel []uint64, n int) []int32 {
	idx = idx[:0]
	for w := 0; w*64 < n; w++ {
		word := sel[w]
		base := int32(w * 64)
		for word != 0 {
			idx = append(idx, base+int32(bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return idx
}

// countBits returns the number of selected rows in a selection bitset.
func countBits(sel []uint64) int {
	n := 0
	for _, w := range sel {
		n += bits.OnesCount64(w)
	}
	return n
}

// fillFilterBits computes the whole-input selection bitset for an equality
// (keep == nil, match against id) or dictionary-keep (keep != nil) filter
// over rs's column i, block at a time with a cancellation poll per block.
// With a shard-parallel worker target the blocks are filled shard-parallel:
// shard boundaries are block- and therefore word-aligned, so workers write
// disjoint words of the one shared bitset.
func (e *executor) fillFilterBits(rs *rowset, i int, id uint32, keep []uint64) ([]uint64, error) {
	n := len(rs.rows)
	sel := e.ensureBits((n + 63) / 64)
	if e.parFor(n) > 1 {
		err := e.forEachShard(n, func(_, lo, hi int) error {
			return e.fillBitsRange(rs, i, id, keep, sel, lo, hi, true)
		})
		return sel, err
	}
	return sel, e.fillBitsRange(rs, i, id, keep, sel, 0, n, false)
}

// fillBitsRange fills the selection words of the blocks covering rows
// [lo, hi); lo is block-aligned. parallel selects the shard workers'
// stateless cancellation poll over the sequential path's row-counting stepN.
func (e *executor) fillBitsRange(rs *rowset, i int, id uint32, keep []uint64, sel []uint64, lo, hi int, parallel bool) error {
	col := colView(rs, i)
	st := len(rs.cols)
	for ; lo < hi; lo += relation.BlockSize {
		nb := hi - lo
		if nb > relation.BlockSize {
			nb = relation.BlockSize
		}
		if parallel {
			if err := e.pollCtx(); err != nil {
				return err
			}
		} else if err := e.stepN(nb); err != nil {
			return err
		}
		b := lo / relation.BlockSize
		words := sel[b*blockWords:]
		switch {
		case col != nil && keep == nil:
			eqBits(words, col.Block(b), id)
		case col != nil:
			keepBits(words, col.Block(b), keep)
		case keep == nil:
			eqBitsStrided(words, rs.enc[lo*st+i:], st, nb, id)
		default:
			keepBitsStrided(words, rs.enc[lo*st+i:], st, nb, keep)
		}
	}
	return nil
}

// gatherSelected appends the selected rows to out in ascending row order,
// preallocated to the selection count so the emits never reallocate. verify,
// when non-nil, re-checks each candidate against the boxed value (equality
// candidates need it: NULL shares its dictionary ID with the literal string
// "NULL", exactly like the index path's candidates).
func (e *executor) gatherSelected(rs *rowset, sel []uint64, out *rowset, verify func(ri int) bool) error {
	n := len(rs.rows)
	count := countBits(sel)
	out.rows = make([]relation.Tuple, 0, count)
	st := len(rs.cols)
	if out.dicts != nil {
		out.enc = make([]uint32, 0, count*st)
	}
	idx := e.ensureIdx()
	for b := 0; b*relation.BlockSize < n; b++ {
		lo := b * relation.BlockSize
		nb := n - lo
		if nb > relation.BlockSize {
			nb = relation.BlockSize
		}
		if err := e.stepN(nb); err != nil {
			return err
		}
		idx = selIndexes(idx, sel[b*blockWords:], nb)
		for _, k := range idx {
			ri := lo + int(k)
			if verify != nil && !verify(ri) {
				continue
			}
			out.rows = append(out.rows, rs.rows[ri])
			if out.dicts != nil {
				out.enc = append(out.enc, rs.enc[ri*st:(ri+1)*st]...)
			}
		}
	}
	e.selIdx = idx[:0]
	return nil
}

// batchProbe is the vectorized probe of the single-encoded-key hash join:
// per block it translates the probe IDs through the cached remap table,
// masks out misses (NoID) and NULL rows branch-free, packs the survivors
// into a selection vector and walks the build chains only for those. Output
// order is ascending probe row, matching the integer-at-a-time loop exactly.
// dense and mapHeads are the two build-side head structures (exactly one is
// non-nil); next threads each chain in ascending build-row order.
func (e *executor) batchProbe(left *rowset, li int, remap []uint32, dense []int32, mapHeads map[uint32]int32, next []int32, emit func(lj, rj int)) error {
	n := len(left.rows)
	col := colView(left, li)
	st := len(left.cols)
	pids := e.ensurePids()
	idx := e.ensureIdx()
	var sel [blockWords]uint64
	for b := 0; b*relation.BlockSize < n; b++ {
		lo := b * relation.BlockSize
		nb := n - lo
		if nb > relation.BlockSize {
			nb = relation.BlockSize
		}
		if err := e.stepN(nb); err != nil {
			return err
		}
		// Fused remap + survivor mask: one pass translates the block's probe
		// IDs through the remap table and builds the miss mask (NoID) word by
		// word, instead of a gather pass followed by a neqBits pass (neqBits
		// remains the scalar reference for this mask).
		if col != nil {
			blk := col.Block(b)
			for w := 0; w*64 < nb; w++ {
				m := nb - w*64
				if m > 64 {
					m = 64
				}
				base := w * 64
				var word uint64
				for k := 0; k < m; k++ {
					id := remap[blk[base+k]]
					pids[base+k] = id
					word |= ((uint64(id^relation.NoID)-1)>>63 ^ 1) & 1 << uint(k)
				}
				sel[w] = word
			}
		} else {
			p := lo*st + li
			for w := 0; w*64 < nb; w++ {
				m := nb - w*64
				if m > 64 {
					m = 64
				}
				base := w * 64
				var word uint64
				for k := 0; k < m; k++ {
					id := remap[left.enc[p]]
					pids[base+k] = id
					word |= ((uint64(id^relation.NoID)-1)>>63 ^ 1) & 1 << uint(k)
					p += st
				}
				sel[w] = word
			}
		}
		// NULL never joins, and NULL shares its dictionary ID with the
		// literal string "NULL", so ID survival is not enough: contiguous
		// scans clear null rows word-by-word from their null bitset, derived
		// rowsets re-check the boxed value per survivor below.
		checkNull := col == nil
		if col != nil && col.Nulls != nil {
			for w := 0; w*64 < nb; w++ {
				sel[w] &^= col.NullWord(lo/64 + w)
			}
		}
		idx = selIndexes(idx, sel[:], nb)
		for _, k := range idx {
			lj := lo + int(k)
			if checkNull && relation.Null(left.rows[lj][li]) {
				continue
			}
			var rj int32
			if dense != nil {
				rj = dense[pids[k]]
			} else {
				rj = -1
				if h, ok := mapHeads[pids[k]]; ok {
					rj = h
				}
			}
			for ; rj >= 0; rj = next[rj] {
				emit(lj, int(rj))
			}
		}
	}
	e.selIdx = idx[:0]
	return nil
}

// batchGroupSlots assigns every row its group slot in one block-at-a-time
// pass, replacing the per-slot row lists with a flat rowSlot array plus
// per-slot sizes. Slots are numbered in first-seen row order and firsts[s]
// is the first row of slot s — identical to the integer path's lists/firsts.
// Returns a nil rowSlot when the grouping shape is not batchable (3+ key
// columns); zero group columns means the single all-rows group.
func (e *executor) batchGroupSlots(rs *rowset, gidx []int) (rowSlot []int32, firsts []int, sizes []int32, err error) {
	n := len(rs.rows)
	st := len(rs.cols)
	switch len(gidx) {
	case 0:
		rowSlot = make([]int32, n)
		return rowSlot, []int{0}, []int32{int32(n)}, nil
	case 1:
		g := gidx[0]
		rowSlot = make([]int32, n)
		col := colView(rs, g)
		if nd := rs.dicts[g].Len(); nd <= 4*n+1024 {
			slotOf := make([]int32, nd)
			for i := range slotOf {
				slotOf[i] = -1
			}
			for b := 0; b*relation.BlockSize < n; b++ {
				lo := b * relation.BlockSize
				nb := n - lo
				if nb > relation.BlockSize {
					nb = relation.BlockSize
				}
				if err := e.stepN(nb); err != nil {
					return nil, nil, nil, err
				}
				if col != nil {
					for k, id := range col.Block(b) {
						slot := slotOf[id]
						if slot < 0 {
							slot = int32(len(firsts))
							slotOf[id] = slot
							firsts = append(firsts, lo+k)
							sizes = append(sizes, 0)
						}
						rowSlot[lo+k] = slot
						sizes[slot]++
					}
				} else {
					p := lo*st + g
					for k := 0; k < nb; k++ {
						id := rs.enc[p]
						p += st
						slot := slotOf[id]
						if slot < 0 {
							slot = int32(len(firsts))
							slotOf[id] = slot
							firsts = append(firsts, lo+k)
							sizes = append(sizes, 0)
						}
						rowSlot[lo+k] = slot
						sizes[slot]++
					}
				}
			}
			return rowSlot, firsts, sizes, nil
		}
		slots := make(map[uint32]int32)
		for b := 0; b*relation.BlockSize < n; b++ {
			lo := b * relation.BlockSize
			nb := n - lo
			if nb > relation.BlockSize {
				nb = relation.BlockSize
			}
			if err := e.stepN(nb); err != nil {
				return nil, nil, nil, err
			}
			for k := 0; k < nb; k++ {
				var id uint32
				if col != nil {
					id = col.IDs[lo+k]
				} else {
					id = rs.enc[(lo+k)*st+g]
				}
				slot, ok := slots[id]
				if !ok {
					slot = int32(len(firsts))
					slots[id] = slot
					firsts = append(firsts, lo+k)
					sizes = append(sizes, 0)
				}
				rowSlot[lo+k] = slot
				sizes[slot]++
			}
		}
		return rowSlot, firsts, sizes, nil
	case 2:
		g0, g1 := gidx[0], gidx[1]
		rowSlot = make([]int32, n)
		col0, col1 := colView(rs, g0), colView(rs, g1)
		slots := make(map[uint64]int32)
		for b := 0; b*relation.BlockSize < n; b++ {
			lo := b * relation.BlockSize
			nb := n - lo
			if nb > relation.BlockSize {
				nb = relation.BlockSize
			}
			if err := e.stepN(nb); err != nil {
				return nil, nil, nil, err
			}
			for k := 0; k < nb; k++ {
				ri := lo + k
				var id0, id1 uint32
				if col0 != nil {
					id0, id1 = col0.IDs[ri], col1.IDs[ri]
				} else {
					id0, id1 = rs.enc[ri*st+g0], rs.enc[ri*st+g1]
				}
				key := uint64(id0) | uint64(id1)<<32
				slot, ok := slots[key]
				if !ok {
					slot = int32(len(firsts))
					slots[key] = slot
					firsts = append(firsts, ri)
					sizes = append(sizes, 0)
				}
				rowSlot[ri] = slot
				sizes[slot]++
			}
		}
		return rowSlot, firsts, sizes, nil
	default:
		return nil, nil, nil, nil
	}
}

// carveLists materializes the per-slot row lists from a slot assignment by
// counting sort: every list is a slice of one flat backing array, filled in
// ascending row order — element-for-element identical to the lists the
// integer-at-a-time path appends row by row, at two allocations total.
func carveLists(rowSlot []int32, sizes []int32) [][]int {
	offs := make([]int, len(sizes)+1)
	for s, sz := range sizes {
		offs[s+1] = offs[s] + int(sz)
	}
	backing := make([]int, len(rowSlot))
	pos := offs[:len(sizes)]
	posCopy := make([]int, len(pos))
	copy(posCopy, pos)
	for ri, s := range rowSlot {
		backing[posCopy[s]] = ri
		posCopy[s]++
	}
	lists := make([][]int, len(sizes))
	for s := range lists {
		lists[s] = backing[offs[s]:offs[s+1]]
	}
	return lists
}

// simplePlan reports whether every select item is a group column or a
// non-DISTINCT aggregate — the shapes batchAggregate folds columnar, in one
// pass over the slot assignment, without materializing per-slot row lists.
func simplePlan(plan []selItem) bool {
	for _, s := range plan {
		if s.agg && s.ex.Distinct {
			return false
		}
	}
	return true
}

// batchAggregate computes a simplePlan projection columnar: one pass per
// aggregate over the rowSlot assignment, accumulating into per-slot state.
// Rows are visited in ascending order, so each slot sees its rows in exactly
// the order the per-list fold would — COUNT, MIN/MAX (first non-null seed,
// strict-compare replacement) and SUM/AVG (float fold with all-int tracking)
// are value-identical to aggregate(). Output rows are emitted in slot
// (first-seen) order, as the list path does.
func (e *executor) batchAggregate(rs *rowset, plan []selItem, rowSlot []int32, firsts []int, sizes []int32, out *rowset) error {
	n := len(rs.rows)
	ns := len(firsts)
	st := len(rs.cols)
	cells := make([]relation.Value, ns*len(plan)) // column k of slot s at s*len(plan)+k
	for k, s := range plan {
		if !s.agg {
			for slot := 0; slot < ns; slot++ {
				cells[slot*len(plan)+k] = rs.rows[firsts[slot]][s.col]
			}
			continue
		}
		switch s.ex.Func {
		case sqlast.AggCount:
			counts := make([]int64, ns)
			if col := colView(rs, s.col); col != nil && col.Nulls == nil {
				// No NULLs in the column: COUNT is the group size.
				for slot, sz := range sizes {
					counts[slot] = int64(sz)
				}
			} else if col != nil {
				for lo := 0; lo < n; lo += relation.BlockSize {
					if err := e.stepN(relation.BlockSize); err != nil {
						return err
					}
					hi := lo + relation.BlockSize
					if hi > n {
						hi = n
					}
					for ri := lo; ri < hi; ri++ {
						// Branch-free: add the complement of the null bit.
						counts[rowSlot[ri]] += int64(^col.Nulls[ri>>6] >> (uint(ri) & 63) & 1)
					}
				}
			} else {
				for lo := 0; lo < n; lo += relation.BlockSize {
					if err := e.stepN(relation.BlockSize); err != nil {
						return err
					}
					hi := lo + relation.BlockSize
					if hi > n {
						hi = n
					}
					for ri := lo; ri < hi; ri++ {
						if !relation.Null(rs.rows[ri][s.col]) {
							counts[rowSlot[ri]]++
						}
					}
				}
			}
			for slot := 0; slot < ns; slot++ {
				cells[slot*len(plan)+k] = relation.Int(counts[slot])
			}
		case sqlast.AggMin, sqlast.AggMax:
			best := make([]relation.Value, ns)
			for lo := 0; lo < n; lo += relation.BlockSize {
				if err := e.stepN(relation.BlockSize); err != nil {
					return err
				}
				hi := lo + relation.BlockSize
				if hi > n {
					hi = n
				}
				for ri := lo; ri < hi; ri++ {
					v := rs.rows[ri][s.col]
					if relation.Null(v) {
						continue
					}
					slot := rowSlot[ri]
					b := best[slot]
					if b == nil {
						best[slot] = v
						continue
					}
					c := relation.Compare(v, b)
					if (s.ex.Func == sqlast.AggMin && c < 0) || (s.ex.Func == sqlast.AggMax && c > 0) {
						best[slot] = v
					}
				}
			}
			for slot := 0; slot < ns; slot++ {
				cells[slot*len(plan)+k] = best[slot]
			}
		case sqlast.AggSum, sqlast.AggAvg:
			sums := make([]float64, ns)
			counts := make([]int64, ns)
			notInt := make([]bool, ns)
			for lo := 0; lo < n; lo += relation.BlockSize {
				if err := e.stepN(relation.BlockSize); err != nil {
					return err
				}
				hi := lo + relation.BlockSize
				if hi > n {
					hi = n
				}
				for ri := lo; ri < hi; ri++ {
					v := rs.rows[ri][s.col]
					if relation.Null(v) {
						continue
					}
					f, ok := relation.AsFloat(v)
					if !ok {
						return fmt.Errorf("sqldb: %s over non-numeric value %v", s.ex.Func, v)
					}
					if _, isInt := v.(int64); !isInt {
						notInt[rowSlot[ri]] = true
					}
					slot := rowSlot[ri]
					sums[slot] += f
					counts[slot]++
				}
			}
			for slot := 0; slot < ns; slot++ {
				if counts[slot] == 0 {
					continue // NULL result, cell stays nil
				}
				switch {
				case s.ex.Func == sqlast.AggAvg:
					cells[slot*len(plan)+k] = relation.Float(sums[slot] / float64(counts[slot]))
				case notInt[slot]:
					cells[slot*len(plan)+k] = relation.Float(sums[slot])
				default:
					cells[slot*len(plan)+k] = relation.Int(int64(sums[slot]))
				}
			}
		default:
			return fmt.Errorf("sqldb: unknown aggregate %q", s.ex.Func)
		}
	}
	out.rows = make([]relation.Tuple, 0, ns)
	for slot := 0; slot < ns; slot++ {
		out.rows = append(out.rows, relation.Tuple(cells[slot*len(plan):(slot+1)*len(plan):(slot+1)*len(plan)]))
		if out.dicts != nil {
			for k, s := range plan {
				var id uint32
				if out.dicts[k] != nil {
					id = rs.enc[firsts[slot]*st+s.col]
				}
				out.enc = append(out.enc, id)
			}
		}
	}
	return nil
}
