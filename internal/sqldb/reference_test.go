package sqldb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// refExec is an independent reference evaluator used for differential
// testing: it materializes the full cross product of the FROM sources, then
// filters, groups, aggregates and projects — no predicate pushdown, no hash
// joins, no join ordering. Any divergence from Exec is a bug in one of them.
func refExec(db *relation.Database, q *sqlast.Query) (*Result, error) {
	type col struct{ table, name string }
	var cols []col
	rows := []relation.Tuple{{}}
	for _, tr := range q.From {
		var names []string
		var data []relation.Tuple
		if tr.Subquery != nil {
			sub, err := refExec(db, tr.Subquery)
			if err != nil {
				return nil, err
			}
			names, data = sub.Columns, sub.Rows
		} else {
			t := db.Table(tr.Name)
			if t == nil {
				return nil, fmt.Errorf("ref: unknown relation %q", tr.Name)
			}
			names, data = t.Schema.AttrNames(), t.Tuples
		}
		for _, n := range names {
			cols = append(cols, col{table: tr.Alias, name: n})
		}
		var next []relation.Tuple
		for _, acc := range rows {
			for _, r := range data {
				row := make(relation.Tuple, 0, len(acc)+len(r))
				row = append(row, acc...)
				row = append(row, r...)
				next = append(next, row)
			}
		}
		rows = next
	}

	resolve := func(c sqlast.Col) (int, error) {
		found := -1
		for i, bc := range cols {
			if !strings.EqualFold(bc.name, c.Column) {
				continue
			}
			if c.Table != "" && !strings.EqualFold(bc.table, c.Table) {
				continue
			}
			if found >= 0 {
				return -1, fmt.Errorf("ref: ambiguous %s", c)
			}
			found = i
		}
		if found < 0 {
			return -1, fmt.Errorf("ref: unknown %s", c)
		}
		return found, nil
	}

	// Filter by the full conjunction.
	var kept []relation.Tuple
	for _, row := range rows {
		ok := true
		for _, p := range q.Where {
			match, err := refPred(row, p, resolve)
			if err != nil {
				return nil, err
			}
			if !match {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, row)
		}
	}

	// Group and project.
	res := &Result{}
	hasAgg := false
	for _, it := range q.Select {
		res.Columns = append(res.Columns, outputName(it))
		if _, ok := it.Expr.(sqlast.AggExpr); ok {
			hasAgg = true
		}
	}
	if !hasAgg && len(q.GroupBy) == 0 {
		for _, row := range kept {
			out := make(relation.Tuple, len(q.Select))
			for k, it := range q.Select {
				i, err := resolve(it.Expr.(sqlast.ColExpr).Col)
				if err != nil {
					return nil, err
				}
				out[k] = row[i]
			}
			res.Rows = append(res.Rows, out)
		}
	} else {
		groups := map[string][]relation.Tuple{}
		var order []string
		for _, row := range kept {
			var parts []string
			for _, c := range q.GroupBy {
				i, err := resolve(c)
				if err != nil {
					return nil, err
				}
				parts = append(parts, relation.Format(row[i]))
			}
			key := strings.Join(parts, "\x1f")
			if _, ok := groups[key]; !ok {
				order = append(order, key)
			}
			groups[key] = append(groups[key], row)
		}
		if len(q.GroupBy) == 0 && len(order) == 0 {
			order = append(order, "")
			groups[""] = nil
		}
		for _, key := range order {
			g := groups[key]
			out := make(relation.Tuple, len(q.Select))
			for k, it := range q.Select {
				switch ex := it.Expr.(type) {
				case sqlast.ColExpr:
					i, err := resolve(ex.Col)
					if err != nil {
						return nil, err
					}
					if len(g) > 0 {
						out[k] = g[0][i]
					}
				case sqlast.AggExpr:
					i, err := resolve(ex.Arg)
					if err != nil {
						return nil, err
					}
					v, err := refAggregate(ex, g, i)
					if err != nil {
						return nil, err
					}
					out[k] = v
				}
			}
			res.Rows = append(res.Rows, out)
		}
	}
	if q.Distinct {
		res = refDistinct(res)
	}
	if len(q.OrderBy) > 0 {
		if err := refOrderBy(res, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// refAggregate, refDistinct and refOrderBy are the reference evaluator's own
// implementations, independent of the executor's encoded kernels.
func refAggregate(ex sqlast.AggExpr, rows []relation.Tuple, i int) (relation.Value, error) {
	var vals []relation.Value
	seen := make(map[string]bool)
	for _, row := range rows {
		v := row[i]
		if relation.Null(v) {
			continue
		}
		if ex.Distinct {
			k := relation.Format(v)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch ex.Func {
	case sqlast.AggCount:
		return relation.Int(int64(len(vals))), nil
	case sqlast.AggMin, sqlast.AggMax:
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := relation.Compare(v, best)
			if (ex.Func == sqlast.AggMin && c < 0) || (ex.Func == sqlast.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	case sqlast.AggSum, sqlast.AggAvg:
		if len(vals) == 0 {
			return nil, nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := relation.AsFloat(v)
			if !ok {
				return nil, fmt.Errorf("ref: %s over non-numeric value %v", ex.Func, v)
			}
			if _, isInt := v.(int64); !isInt {
				allInt = false
			}
			sum += f
		}
		if ex.Func == sqlast.AggAvg {
			return relation.Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return relation.Int(int64(sum)), nil
		}
		return relation.Float(sum), nil
	default:
		return nil, fmt.Errorf("ref: unknown aggregate %q", ex.Func)
	}
}

func refDistinct(res *Result) *Result {
	out := &Result{Columns: res.Columns}
	seen := make(map[string]bool)
	for _, row := range res.Rows {
		var b strings.Builder
		for _, v := range row {
			s := relation.Format(v)
			fmt.Fprintf(&b, "%d:%s|", len(s), s)
		}
		key := b.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Rows = append(out.Rows, row)
	}
	return out
}

func refOrderBy(res *Result, items []sqlast.OrderItem) error {
	idxs := make([]int, len(items))
	for k, o := range items {
		found := -1
		for i, c := range res.Columns {
			if strings.EqualFold(c, o.Col.Column) || strings.EqualFold(c, o.Col.String()) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("ref: ORDER BY column %s not in result", o.Col)
		}
		idxs[k] = found
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for k, i := range idxs {
			c := relation.Compare(res.Rows[a][i], res.Rows[b][i])
			if c != 0 {
				if items[k].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return nil
}

func refPred(row relation.Tuple, p sqlast.Pred, resolve func(sqlast.Col) (int, error)) (bool, error) {
	switch pp := p.(type) {
	case sqlast.JoinPred:
		li, err := resolve(pp.Left)
		if err != nil {
			return false, err
		}
		ri, err := resolve(pp.Right)
		if err != nil {
			return false, err
		}
		return !relation.Null(row[li]) && relation.Equal(row[li], row[ri]), nil
	case sqlast.ColComparePred:
		li, err := resolve(pp.Left)
		if err != nil {
			return false, err
		}
		ri, err := resolve(pp.Right)
		if err != nil {
			return false, err
		}
		if relation.Null(row[li]) || relation.Null(row[ri]) {
			return false, nil
		}
		return cmpMatches(pp.Op, relation.Compare(row[li], row[ri])), nil
	case sqlast.ComparePred:
		i, err := resolve(pp.Col)
		if err != nil {
			return false, err
		}
		if relation.Null(row[i]) {
			return false, nil
		}
		return cmpMatches(pp.Op, relation.Compare(row[i], pp.Value)), nil
	case sqlast.ContainsPred:
		i, err := resolve(pp.Col)
		if err != nil {
			return false, err
		}
		s, ok := row[i].(string)
		return ok && relation.ContainsFold(s, pp.Needle), nil
	default:
		return false, fmt.Errorf("ref: unsupported predicate %T", p)
	}
}

func cmpMatches(op sqlast.CmpOp, c int) bool {
	switch op {
	case sqlast.OpEq:
		return c == 0
	case sqlast.OpNe:
		return c != 0
	case sqlast.OpLt:
		return c < 0
	case sqlast.OpLe:
		return c <= 0
	case sqlast.OpGt:
		return c > 0
	case sqlast.OpGe:
		return c >= 0
	}
	return false
}

func canonicalRows(res *Result) []string {
	out := rowsAsStrings(res)
	sort.Strings(out)
	return out
}

// TestDifferentialAgainstReference compares the optimized executor against
// the brute-force reference on hundreds of random queries over the
// university database.
func TestDifferentialAgainstReference(t *testing.T) {
	db := uniDB(t)
	r := rand.New(rand.NewSource(99))

	type tinfo struct {
		name  string
		attrs []string
	}
	var tables []tinfo
	for _, tb := range db.Tables() {
		tables = append(tables, tinfo{tb.Schema.Name, tb.Schema.AttrNames()})
	}
	intAttrs := map[string]bool{"Age": true, "Credit": true, "Price": true}

	for trial := 0; trial < 500; trial++ {
		q := &sqlast.Query{Distinct: r.Intn(4) == 0}
		n := 1 + r.Intn(3)
		type src struct {
			alias string
			info  tinfo
		}
		var srcs []src
		for i := 0; i < n; i++ {
			ti := tables[r.Intn(len(tables))]
			srcs = append(srcs, src{fmt.Sprintf("X%d", i), ti})
			q.From = append(q.From, sqlast.TableRef{Name: ti.name, Alias: fmt.Sprintf("X%d", i)})
		}
		randCol := func() sqlast.Col {
			s := srcs[r.Intn(len(srcs))]
			return sqlast.Col{Table: s.alias, Column: s.info.attrs[r.Intn(len(s.info.attrs))]}
		}
		// Predicates: a few joins and filters.
		for i := 0; i < r.Intn(3); i++ {
			switch r.Intn(3) {
			case 0:
				q.Where = append(q.Where, sqlast.JoinPred{Left: randCol(), Right: randCol()})
			case 1:
				c := randCol()
				var v relation.Value = relation.Str("a")
				if intAttrs[c.Column] {
					v = relation.Int(int64(r.Intn(30)))
				}
				ops := []sqlast.CmpOp{sqlast.OpEq, sqlast.OpNe, sqlast.OpLt, sqlast.OpGe}
				q.Where = append(q.Where, sqlast.ComparePred{Col: c, Op: ops[r.Intn(len(ops))], Value: v})
			default:
				q.Where = append(q.Where, sqlast.ContainsPred{Col: randCol(), Needle: []string{"e", "Green", "a", "c1"}[r.Intn(4)]})
			}
		}
		// Select: either plain columns, or aggregates with group-by.
		if r.Intn(2) == 0 {
			for i := 0; i < 1+r.Intn(2); i++ {
				q.Select = append(q.Select, sqlast.SelectItem{Expr: sqlast.ColExpr{Col: randCol()}})
			}
		} else {
			gb := randCol()
			q.GroupBy = []sqlast.Col{gb}
			q.Select = []sqlast.SelectItem{{Expr: sqlast.ColExpr{Col: gb}}}
			aggCol := randCol()
			fn := sqlast.AggCount
			if intAttrs[aggCol.Column] {
				fns := []sqlast.AggFunc{sqlast.AggCount, sqlast.AggSum, sqlast.AggAvg, sqlast.AggMin, sqlast.AggMax}
				fn = fns[r.Intn(len(fns))]
			}
			q.Select = append(q.Select, sqlast.SelectItem{
				Expr:  sqlast.AggExpr{Func: fn, Arg: aggCol, Distinct: r.Intn(4) == 0},
				Alias: "agg",
			})
		}

		got, errGot := Exec(db, q)
		want, errWant := refExec(db, q)
		if (errGot == nil) != (errWant == nil) {
			// Both evaluators must agree on whether the query is valid
			// (e.g. ambiguous unqualified columns).
			t.Fatalf("trial %d: error divergence: exec=%v ref=%v\n%s", trial, errGot, errWant, q)
		}
		if errGot != nil {
			continue
		}
		g, w := canonicalRows(got), canonicalRows(want)
		if len(g) != len(w) {
			t.Fatalf("trial %d: row counts differ (%d vs %d)\n%s", trial, len(g), len(w), q)
		}
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("trial %d: rows differ\nexec: %v\nref:  %v\n%s", trial, g[i], w[i], q)
			}
		}
	}
}
