// Differential suite for shard-parallel execution: every statement must
// produce a Result identical to the single-shard batch path — row order and
// rendered bytes included, NOT sorted first — under shard-parallel drivers
// forced onto many small shards. This is the ordering guarantee the memo,
// the query cache and the epoch-swap byte-identity test lean on.
package sqldb_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"kwagg"
	"kwagg/internal/dataset/acmdl"
	"kwagg/internal/dataset/tpch"
	"kwagg/internal/experiments"
	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
	"kwagg/internal/sqldb"
)

// shardConfigs are the shard-parallel shapes each statement is replayed
// under: many one-block shards (maximum merge pressure), fewer wider shards,
// and the default morsel size (usually one shard on test data — the
// degenerate case must also agree).
var shardConfigs = []sqldb.ExecConfig{
	{Shards: 4, ShardRows: relation.BlockSize},
	{Shards: 8, ShardRows: 2 * relation.BlockSize},
	{Shards: 4},
}

// diffSharded executes one statement single-shard and under every shard
// config, requiring unsorted row-for-row and byte-for-byte equality.
func diffSharded(t *testing.T, db *relation.Database, label string, q *sqlast.Query) {
	t.Helper()
	want, err := sqldb.Exec(db, q)
	if err != nil {
		t.Fatalf("%s: batch exec: %v", label, err)
	}
	for _, cfg := range shardConfigs {
		got, _, err := sqldb.ExecOpts(context.Background(), db, q, cfg)
		if err != nil {
			t.Fatalf("%s: sharded exec (%+v): %v", label, cfg, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%s: sharded (%+v) diverged from single-shard (row order included):\nSQL: %s\nwant: %+v\ngot:  %+v",
				label, cfg, q, want, got)
		}
		if w, g := want.String(), got.String(); w != g {
			t.Errorf("%s: rendered answer bytes differ (%+v):\nwant:\n%s\ngot:\n%s", label, cfg, w, g)
		}
	}
}

// shardDiffDB builds a synthetic frozen database spanning several one-block
// shards under the test override: NULLs, the literal string "NULL", float
// columns with NULL holes, low- and high-cardinality keys, and a join table
// whose keys partially miss — the shapes the parallel filter, probe and
// group merge must not reorder or miscount.
func shardDiffDB() *relation.Database {
	db := relation.NewDatabase("sharddiff")
	n := 4*relation.BlockSize + 517
	s := db.AddSchema(relation.NewSchema("Student", "Sid INT", "Name", "Dept", "Age INT", "Gpa FLOAT").Key("Sid"))
	for i := 0; i < n; i++ {
		var name relation.Value = fmt.Sprintf("name%03d", i%523)
		switch i % 97 {
		case 13:
			name = nil
		case 29:
			name = "NULL"
		}
		var age relation.Value = int64(18 + i%9)
		if i%61 == 7 {
			age = nil
		}
		var gpa relation.Value = float64(i%40) / 10
		if i%53 == 11 {
			gpa = nil
		}
		s.MustInsert(int64(i), name, fmt.Sprintf("dept%d", i%7), age, gpa)
	}
	m := 2*relation.BlockSize + 39
	e := db.AddSchema(relation.NewSchema("Enrol", "Sid INT", "Course", "Grade INT").Key("Sid", "Course"))
	for i := 0; i < m; i++ {
		var sid relation.Value = int64((i * 13) % (n + 200)) // some keys miss Student
		if i%71 == 3 {
			sid = nil
		}
		e.MustInsert(sid, fmt.Sprintf("c%02d", i%37), int64(i%101))
	}
	db.Freeze()
	return db
}

func TestShardDifferentialSynthetic(t *testing.T) {
	db := shardDiffDB()
	for _, sql := range []string{
		// Parallel filter fill: int equality, float equality (dict path with
		// re-verify), the NULL vs "NULL" trap, CONTAINS keep-bitset.
		"SELECT S.Sid FROM Student S WHERE S.Age = 21",
		"SELECT S.Sid FROM Student S WHERE S.Gpa = 1.5",
		"SELECT S.Sid FROM Student S WHERE S.Name = 'NULL'",
		"SELECT S.Sid FROM Student S WHERE S.Name CONTAINS 'ame04'",
		// Parallel probe: big probe side, NULL keys on both sides, misses.
		"SELECT S.Name, E.Course FROM Student S, Enrol E WHERE S.Sid = E.Sid",
		"SELECT COUNT(E.Course) AS n FROM Student S, Enrol E WHERE S.Sid = E.Sid",
		// Parallel group merge: 1 and 2 keys, every aggregate, NULL group
		// keys, DISTINCT aggregates, float SUM/AVG (association-sensitive).
		"SELECT S.Dept, COUNT(S.Sid) AS n, SUM(S.Gpa) AS sg, AVG(S.Gpa) AS ag, MIN(S.Age) AS mn, MAX(S.Age) AS mx FROM Student S GROUP BY S.Dept",
		"SELECT S.Dept, S.Age, COUNT(S.Sid) AS n FROM Student S GROUP BY S.Dept, S.Age",
		"SELECT S.Age, COUNT(S.Sid) AS n FROM Student S GROUP BY S.Age",
		"SELECT S.Dept, COUNT(DISTINCT S.Age) AS d, SUM(DISTINCT S.Gpa) AS sd FROM Student S GROUP BY S.Dept",
		"SELECT AVG(S.Gpa) AS a FROM Student S",
		"SELECT S.Name, COUNT(S.Sid) AS n FROM Student S GROUP BY S.Name",
		// Grouped join output (derived rowset: strided kernels).
		"SELECT S.Dept, AVG(E.Grade) AS g FROM Student S, Enrol E WHERE S.Sid = E.Sid GROUP BY S.Dept",
		"SELECT C.Course, COUNT(C.Sid) AS n FROM (SELECT DISTINCT Sid, Course FROM Enrol) C GROUP BY C.Course",
		// DISTINCT projection and ORDER BY stability over the parallel output.
		"SELECT DISTINCT S.Dept FROM Student S",
		"SELECT S.Sid, S.Gpa FROM Student S WHERE S.Dept = 'dept3' ORDER BY Gpa LIMIT 10",
		// Empty results must stay shape-identical (nil rows, not empty).
		"SELECT S.Name, E.Course FROM Student S, Enrol E WHERE S.Sid = E.Sid AND S.Age = 99",
		"SELECT S.Sid FROM Student S WHERE S.Age = 99",
	} {
		q, err := sqldb.Parse(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		diffSharded(t, db, sql, q)
	}
}

// TestShardDifferentialDatasetWorkloads replays every bundled dataset
// workload interpretation under the shard-parallel configs and requires
// unsorted row- and byte-identity with the single-shard batch path — the
// acceptance bar for the shard-parallel engine.
func TestShardDifferentialDatasetWorkloads(t *testing.T) {
	setups := map[string]func() (*experiments.Setup, error){
		"university":   experiments.NewUniversity,
		"tpch":         func() (*experiments.Setup, error) { return experiments.NewTPCH(tpch.Small()) },
		"tpch-denorm":  func() (*experiments.Setup, error) { return experiments.NewTPCHUnnormalized(tpch.Small()) },
		"acmdl":        func() (*experiments.Setup, error) { return experiments.NewACMDL(acmdl.Small()) },
		"acmdl-denorm": func() (*experiments.Setup, error) { return experiments.NewACMDLUnnormalized(acmdl.Small()) },
	}
	for name, queries := range kwagg.DatasetWorkloads() {
		build, ok := setups[name]
		if !ok {
			t.Fatalf("workload %q has no shard-differential setup — extend the map", name)
		}
		name, queries := name, queries
		t.Run(name, func(t *testing.T) {
			s, err := build()
			if err != nil {
				t.Fatal(err)
			}
			interpretations := 0
			for _, kw := range queries {
				ins, err := s.Ours.Interpret(kw, 0)
				if err != nil {
					t.Fatalf("%s: %v", kw, err)
				}
				for _, in := range ins {
					diffSharded(t, s.Ours.Data, name+"/"+kw, in.SQL)
					interpretations++
				}
			}
			t.Logf("%s: %d interpretations compared sharded vs single-shard", name, interpretations)
		})
	}
}
