// Differential suite for the shared-subplan memo: executing every workload
// interpretation twice through one shared memo — the second pass served
// largely from cached fragments — must stay row-for-row identical to the
// scan-only reference path.
package sqldb_test

import (
	"context"
	"reflect"
	"testing"

	"kwagg/internal/dataset/tpch"
	"kwagg/internal/experiments"
	"kwagg/internal/sqldb"
)

func diffQueriesMemo(t *testing.T, s *experiments.Setup, queries []experiments.Query) {
	t.Helper()
	m := sqldb.NewMemo(1 << 22)
	ctx := context.Background()
	hits := 0
	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			ins, err := s.Ours.Interpret(q.Keywords, 0)
			if err != nil {
				t.Fatalf("%s %s: %v", q.ID, q.Keywords, err)
			}
			for i, in := range ins {
				memoed, st, err := sqldb.ExecMemoContext(ctx, s.Ours.Data, in.SQL, m)
				if err != nil {
					t.Fatalf("%s interpretation %d: memo exec: %v", q.ID, i, err)
				}
				hits += st.Hits
				scanned, err := sqldb.ExecNoIndex(s.Ours.Data, in.SQL)
				if err != nil {
					t.Fatalf("%s interpretation %d: scan exec: %v", q.ID, i, err)
				}
				memoed.SortRows()
				scanned.SortRows()
				if !reflect.DeepEqual(memoed, scanned) {
					t.Errorf("%s interpretation %d pass %d diverged:\nSQL: %s\nmemo: %+v\nscan: %+v",
						q.ID, i, pass, in.SQL, memoed, scanned)
				}
			}
		}
	}
	if hits == 0 {
		t.Errorf("%s: no memo hits across two passes of the workload", s.Label)
	}
	t.Logf("%s: %d memo hits, %d fragments cached (%d cells)", s.Label, hits, m.Len(), m.UsedCells())
}

func TestDifferentialMemoUniversity(t *testing.T) {
	s, err := experiments.NewUniversity()
	if err != nil {
		t.Fatal(err)
	}
	diffQueriesMemo(t, s, []experiments.Query{
		{ID: "U1", Keywords: "Green SUM Credit"},
		{ID: "U2", Keywords: "COUNT Student GROUPBY Course"},
		{ID: "U3", Keywords: "AVG Credit"},
		{ID: "U5", Keywords: "COUNT Lecturer GROUPBY Department"},
	})
}

func TestDifferentialMemoTPCH(t *testing.T) {
	s, err := experiments.NewTPCH(tpch.Small())
	if err != nil {
		t.Fatal(err)
	}
	diffQueriesMemo(t, s, experiments.QueriesTPCH())
}
