package sqldb

import (
	"math/rand"
	"testing"

	"kwagg/internal/relation"
)

// Property tests for the branch-free selection-vector kernels in batch.go:
// each kernel is compared against a naive per-row loop over randomized and
// adversarial inputs. The lengths deliberately straddle every boundary the
// kernels care about — word edges (63/64/65) and block edges
// (BlockSize±1, len%BlockSize != 0) — and the ID pools are squeezed so that
// all-match and none-match blocks occur naturally alongside the planted ones.

// selLens is the shared length schedule: word and block boundaries plus a few
// random sizes per run.
func selLens(r *rand.Rand) []int {
	lens := []int{0, 1, 63, 64, 65, 127, 128,
		relation.BlockSize - 1, relation.BlockSize, relation.BlockSize + 1,
		2 * relation.BlockSize, 2*relation.BlockSize + 517}
	for i := 0; i < 4; i++ {
		lens = append(lens, 1+r.Intn(3*relation.BlockSize))
	}
	return lens
}

// randIDs draws n IDs from a pool of size card; card 1 makes every row match
// a constant, large card makes matches rare.
func randIDs(r *rand.Rand, n, card int) []uint32 {
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = uint32(r.Intn(card))
	}
	return ids
}

// naiveBits builds the expected bitset from a per-row predicate.
func naiveBits(n int, pred func(k int) bool) []uint64 {
	dst := make([]uint64, (n+63)/64)
	for k := 0; k < n; k++ {
		if pred(k) {
			dst[k>>6] |= 1 << (uint(k) & 63)
		}
	}
	return dst
}

func checkBits(t *testing.T, label string, n int, got, want []uint64) {
	t.Helper()
	for w := range want {
		if got[w] != want[w] {
			t.Fatalf("%s: n=%d word %d: got %#x, want %#x", label, n, w, got[w], want[w])
		}
	}
	// Tail bits beyond n must stay zero — gatherSelected and countBits trust
	// the kernels to overwrite whole words without smearing past the end.
	if n%64 != 0 && len(got) > 0 {
		if tail := got[len(want)-1] >> (uint(n) & 63); tail != 0 {
			t.Fatalf("%s: n=%d: tail bits set beyond the input: %#x", label, n, tail)
		}
	}
}

func TestEqBitsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for _, n := range selLens(r) {
		for _, card := range []int{1, 2, 17, 1 << 20} {
			ids := randIDs(r, n, card)
			var needle uint32
			if n > 0 {
				needle = ids[r.Intn(n)] // guaranteed at least one match
			}
			for _, id := range []uint32{needle, uint32(card)} { // and a none-match probe
				dst := make([]uint64, (n+63)/64)
				eqBits(dst, ids, id)
				want := naiveBits(n, func(k int) bool { return ids[k] == id })
				checkBits(t, "eqBits", n, dst, want)
				if got, naive := countBits(dst), countBits(want); got != naive {
					t.Fatalf("countBits: n=%d: %d != %d", n, got, naive)
				}
			}
		}
	}
}

func TestEqBitsAllMatch(t *testing.T) {
	for _, n := range []int{1, 64, relation.BlockSize, relation.BlockSize + 1} {
		ids := make([]uint32, n) // every row is ID 0
		dst := make([]uint64, (n+63)/64)
		eqBits(dst, ids, 0)
		if countBits(dst) != n {
			t.Fatalf("all-match n=%d: %d bits set", n, countBits(dst))
		}
		eqBits(dst, ids, 1)
		if countBits(dst) != 0 {
			t.Fatalf("none-match n=%d: %d bits set", n, countBits(dst))
		}
	}
}

func TestEqBitsStridedProperty(t *testing.T) {
	r := rand.New(rand.NewSource(62))
	for _, n := range selLens(r) {
		for _, st := range []int{1, 2, 5} {
			enc := randIDs(r, n*st, 9)
			var id uint32 = 3
			dst := make([]uint64, (n+63)/64)
			eqBitsStrided(dst, enc, st, n, id)
			want := naiveBits(n, func(k int) bool { return enc[k*st] == id })
			checkBits(t, "eqBitsStrided", n, dst, want)
		}
	}
}

func TestKeepBitsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(63))
	for _, n := range selLens(r) {
		card := 1 + r.Intn(200)
		ids := randIDs(r, n, card)
		keep := make([]uint64, (card+63)/64)
		inKeep := func(id uint32) bool { return keep[id>>6]>>(id&63)&1 != 0 }
		for id := 0; id < card; id++ {
			if r.Intn(3) == 0 {
				keep[id>>6] |= 1 << (uint(id) & 63)
			}
		}
		dst := make([]uint64, (n+63)/64)
		keepBits(dst, ids, keep)
		checkBits(t, "keepBits", n, dst, naiveBits(n, func(k int) bool { return inKeep(ids[k]) }))

		st := 1 + r.Intn(4)
		enc := randIDs(r, n*st, card)
		dst2 := make([]uint64, (n+63)/64)
		keepBitsStrided(dst2, enc, st, n, keep)
		checkBits(t, "keepBitsStrided", n, dst2, naiveBits(n, func(k int) bool { return inKeep(enc[k*st]) }))
	}
}

func TestNeqBitsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(64))
	for _, n := range selLens(r) {
		ids := randIDs(r, n, 6)
		// Plant the sentinel so both polarities occur.
		for i := range ids {
			if r.Intn(4) == 0 {
				ids[i] = relation.NoID
			}
		}
		dst := make([]uint64, (n+63)/64)
		neqBits(dst, ids, relation.NoID)
		checkBits(t, "neqBits", n, dst, naiveBits(n, func(k int) bool { return ids[k] != relation.NoID }))
	}
}

func TestSelIndexesProperty(t *testing.T) {
	r := rand.New(rand.NewSource(65))
	for _, n := range selLens(r) {
		sel := make([]uint64, (n+63)/64)
		var want []int32
		for k := 0; k < n; k++ {
			if r.Intn(3) == 0 {
				sel[k>>6] |= 1 << (uint(k) & 63)
				want = append(want, int32(k))
			}
		}
		idx := selIndexes(make([]int32, 0, relation.BlockSize), sel, n)
		if len(idx) != len(want) {
			t.Fatalf("selIndexes: n=%d: %d indexes, want %d", n, len(idx), len(want))
		}
		for i := range want {
			if idx[i] != want[i] {
				t.Fatalf("selIndexes: n=%d: idx[%d]=%d, want %d (must be ascending)", n, i, idx[i], want[i])
			}
		}
		if got := countBits(sel); got != len(want) {
			t.Fatalf("countBits: n=%d: %d, want %d", n, got, len(want))
		}
	}
	// All-match and none-match at a block boundary.
	n := relation.BlockSize
	sel := make([]uint64, n/64)
	if got := selIndexes(nil, sel, n); len(got) != 0 {
		t.Fatalf("empty bitset packed %d indexes", len(got))
	}
	for w := range sel {
		sel[w] = ^uint64(0)
	}
	idx := selIndexes(nil, sel, n)
	if len(idx) != n || idx[0] != 0 || idx[n-1] != int32(n-1) {
		t.Fatalf("full bitset packed %d indexes [%d..%d]", len(idx), idx[0], idx[len(idx)-1])
	}
}

// TestFilterKernelMatchesNaive drives the batch equality filter end to end on
// random frozen tables — contiguous (pristine scan) and strided (derived
// rowset) layouts — against the reference executor.
func TestFilterKernelMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	for trial := 0; trial < 5; trial++ {
		n := []int{1, 511, relation.BlockSize, 2*relation.BlockSize + 517}[trial%4]
		db := relation.NewDatabase("selprop")
		tab := db.AddSchema(relation.NewSchema("T", "Id INT", "K INT", "S").Key("Id"))
		for i := 0; i < n; i++ {
			var k relation.Value = int64(r.Intn(7))
			if r.Intn(11) == 0 {
				k = nil
			}
			tab.MustInsert(int64(i), k, []string{"x", "y", "NULL"}[r.Intn(3)])
		}
		db.Freeze()
		for _, sql := range []string{
			"SELECT T.Id FROM T T WHERE T.K = 3",
			"SELECT T.Id FROM T T WHERE T.S = 'NULL'",
			"SELECT T.Id FROM T T WHERE T.K = 99",
			// Derived shape: the subquery output loses the contiguous columns,
			// forcing the strided kernel.
			"SELECT D.Id FROM (SELECT T.Id, T.K FROM T T) D WHERE D.K = 3",
		} {
			q, err := Parse(sql)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := Exec(db, q)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, sql, err)
			}
			ref, err := ExecNoIndex(db, q)
			if err != nil {
				t.Fatalf("n=%d %s: %v", n, sql, err)
			}
			batch.SortRows()
			ref.SortRows()
			if batch.String() != ref.String() {
				t.Fatalf("n=%d %s:\nbatch:\n%s\nref:\n%s", n, sql, batch.String(), ref.String())
			}
		}
	}
}
