package sqldb

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"kwagg/internal/relation"
	"kwagg/internal/sqlast"
)

// Result is the table produced by executing a query.
type Result struct {
	Columns []string
	Rows    []relation.Tuple
}

// String renders the result as an aligned text table (for CLIs and examples).
func (r *Result) String() string {
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		cells[i] = make([]string, len(row))
		for j, v := range row {
			cells[i][j] = relation.Format(v)
			if len(cells[i][j]) > widths[j] {
				widths[j] = len(cells[i][j])
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for j, v := range vals {
			if j > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for k := len(v); k < widths[j]; k++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// SortRows orders the rows canonically (by formatted values); useful for
// deterministic comparison in tests and experiment reports.
func (r *Result) SortRows() {
	sort.SliceStable(r.Rows, func(i, j int) bool {
		for k := range r.Rows[i] {
			if c := relation.Compare(r.Rows[i][k], r.Rows[j][k]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

// ExecSQL parses and executes a SQL statement against db.
func ExecSQL(db *relation.Database, sql string) (*Result, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return Exec(db, q)
}

// Exec evaluates the query against db. Equality predicates on base-table
// scans are answered from the per-table value index (built eagerly when the
// database is frozen at open time, lazily otherwise).
func Exec(db *relation.Database, q *sqlast.Query) (*Result, error) {
	e := &executor{db: db}
	return e.query(q)
}

// ExecContext is Exec honoring cancellation: evaluation checks the context
// between operator phases and every rowCheckInterval rows inside scan, filter
// and join loops, returning the context's error mid-statement instead of
// running a doomed query to completion. A context that cannot be cancelled
// (Background) costs nothing: the checks are compiled out by a nil test.
func ExecContext(ctx context.Context, db *relation.Database, q *sqlast.Query) (*Result, error) {
	e := &executor{db: db}
	if ctx != nil && ctx.Done() != nil {
		e.ctx = ctx
	}
	return e.query(q)
}

// ExecNoIndex evaluates the query with the value-index fast path disabled,
// scanning every filter. It exists as a reference path for differential
// tests (indexed execution must be row-for-row identical) and benchmarks.
func ExecNoIndex(db *relation.Database, q *sqlast.Query) (*Result, error) {
	e := &executor{db: db, noIndex: true}
	return e.query(q)
}

type boundCol struct {
	table string // alias the column is reachable under
	name  string
}

type rowset struct {
	cols []boundCol
	rows []relation.Tuple
	// base is the table this rowset scans when rows is exactly base.Tuples
	// (no filter or join applied yet); equality filters on such a pristine
	// scan can use the table's value index. nil otherwise.
	base *relation.Table
}

// resolve returns the position of c in the rowset, or -1. Unqualified names
// must be unambiguous.
func (rs *rowset) resolve(c sqlast.Col) (int, error) {
	found := -1
	for i, bc := range rs.cols {
		if !strings.EqualFold(bc.name, c.Column) {
			continue
		}
		if c.Table != "" && !strings.EqualFold(bc.table, c.Table) {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqldb: ambiguous column reference %s", c)
		}
		found = i
	}
	if found < 0 {
		return -1, fmt.Errorf("sqldb: unknown column %s", c)
	}
	return found, nil
}

func (rs *rowset) has(c sqlast.Col) bool {
	n := 0
	for _, bc := range rs.cols {
		if strings.EqualFold(bc.name, c.Column) &&
			(c.Table == "" || strings.EqualFold(bc.table, c.Table)) {
			n++
		}
	}
	return n == 1
}

type executor struct {
	db      *relation.Database
	noIndex bool            // disable the value-index fast path (test hook)
	ctx     context.Context // non-nil only when cancellable (see ExecContext)
	ops     uint            // row-touch counter for amortized ctx checks
}

// rowCheckInterval bounds how many rows a loop may touch between context
// checks; a power of two so the amortized check is a mask, not a division.
const rowCheckInterval = 1024

// step is called once per row inside the evaluation loops. With no
// cancellable context it is a single nil comparison; otherwise it polls
// ctx.Err() every rowCheckInterval rows.
func (e *executor) step() error {
	if e.ctx == nil {
		return nil
	}
	e.ops++
	if e.ops&(rowCheckInterval-1) != 0 {
		return nil
	}
	return e.ctx.Err()
}

// checkpoint polls cancellation at operator boundaries (per source, join,
// filter and projection phase), so even tiny statements notice a dead
// context promptly.
func (e *executor) checkpoint() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

func (e *executor) query(q *sqlast.Query) (*Result, error) {
	if len(q.From) == 0 {
		return nil, fmt.Errorf("sqldb: query has no FROM clause")
	}
	sources := make([]*rowset, len(q.From))
	for i, tr := range q.From {
		if err := e.checkpoint(); err != nil {
			return nil, err
		}
		rs, err := e.source(tr)
		if err != nil {
			return nil, err
		}
		sources[i] = rs
	}

	consumed := make([]bool, len(q.Where))

	// Push single-source filters down before joining.
	for si, rs := range sources {
		for pi, p := range q.Where {
			if consumed[pi] {
				continue
			}
			if localPred(rs, p) {
				filtered, err := e.filterRows(rs, p)
				if err != nil {
					return nil, err
				}
				sources[si] = filtered
				rs = filtered
				consumed[pi] = true
			}
		}
	}

	// Greedy join ordering: start from the smallest source, then repeatedly
	// join the smallest source connected to the accumulated result by a join
	// predicate (falling back to the smallest remaining source when nothing
	// connects — a cross join). This keeps intermediate results small
	// without a full optimizer and is deterministic (ties break on FROM
	// position).
	remaining := make([]int, 0, len(sources)-1)
	start := 0
	for i := 1; i < len(sources); i++ {
		if len(sources[i].rows) < len(sources[start].rows) {
			start = i
		}
	}
	for i := range sources {
		if i != start {
			remaining = append(remaining, i)
		}
	}
	connects := func(acc *rowset, src *rowset) bool {
		for pi, p := range q.Where {
			if consumed[pi] {
				continue
			}
			jp, ok := p.(sqlast.JoinPred)
			if !ok {
				continue
			}
			if (acc.has(jp.Left) && src.has(jp.Right)) || (acc.has(jp.Right) && src.has(jp.Left)) {
				return true
			}
		}
		return false
	}
	acc := sources[start]
	for len(remaining) > 0 {
		pick, pickPos := -1, -1
		for pos, idx := range remaining {
			src := sources[idx]
			if !connects(acc, src) {
				continue
			}
			if pick < 0 || len(src.rows) < len(sources[pick].rows) {
				pick, pickPos = idx, pos
			}
		}
		if pick < 0 {
			for pos, idx := range remaining {
				if pick < 0 || len(sources[idx].rows) < len(sources[pick].rows) {
					pick, pickPos = idx, pos
				}
			}
		}
		src := sources[pick]
		remaining = append(remaining[:pickPos], remaining[pickPos+1:]...)
		if err := e.checkpoint(); err != nil {
			return nil, err
		}

		var eqs []sqlast.JoinPred
		for pi, p := range q.Where {
			if consumed[pi] {
				continue
			}
			jp, ok := p.(sqlast.JoinPred)
			if !ok {
				continue
			}
			l, r := jp.Left, jp.Right
			switch {
			case acc.has(l) && src.has(r):
				eqs = append(eqs, jp)
				consumed[pi] = true
			case acc.has(r) && src.has(l):
				eqs = append(eqs, sqlast.JoinPred{Left: r, Right: l})
				consumed[pi] = true
			}
		}
		joined, err := e.join(acc, src, eqs)
		if err != nil {
			return nil, err
		}
		acc = joined
	}

	// Remaining predicates (including join predicates that closed a cycle).
	for pi, p := range q.Where {
		if consumed[pi] {
			continue
		}
		filtered, err := e.filterRows(acc, p)
		if err != nil {
			return nil, err
		}
		acc = filtered
	}

	if err := e.checkpoint(); err != nil {
		return nil, err
	}
	res, err := e.project(acc, q)
	if err != nil {
		return nil, err
	}
	if q.Distinct {
		res = distinct(res)
	}
	if len(q.OrderBy) > 0 {
		if err := orderBy(res, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

func (e *executor) source(tr sqlast.TableRef) (*rowset, error) {
	alias := tr.Alias
	if tr.Subquery != nil {
		sub, err := e.query(tr.Subquery)
		if err != nil {
			return nil, err
		}
		rs := &rowset{rows: sub.Rows}
		for _, c := range sub.Columns {
			rs.cols = append(rs.cols, boundCol{table: alias, name: c})
		}
		return rs, nil
	}
	t := e.db.Table(tr.Name)
	if t == nil {
		return nil, fmt.Errorf("sqldb: unknown relation %q", tr.Name)
	}
	rs := &rowset{rows: t.Tuples, base: t}
	for _, a := range t.Schema.Attributes {
		rs.cols = append(rs.cols, boundCol{table: alias, name: a.Name})
	}
	return rs, nil
}

// localPred reports whether every column in p is resolvable in rs alone.
func localPred(rs *rowset, p sqlast.Pred) bool {
	switch pp := p.(type) {
	case sqlast.ComparePred:
		return rs.has(pp.Col)
	case sqlast.ContainsPred:
		return rs.has(pp.Col)
	case sqlast.ColComparePred:
		return rs.has(pp.Left) && rs.has(pp.Right)
	case sqlast.JoinPred:
		return false // joins are handled during join planning
	default:
		return false
	}
}

// indexableEq reports whether p is an equality against a constant that the
// per-table value index can answer on a pristine base-table scan. Floating-
// point constants fall back to the scan path: the index is keyed by the
// formatted value, and float formatting has corners (negative zero) where
// format equality and Compare equality disagree.
func indexableEq(rs *rowset, p sqlast.Pred) bool {
	pp, ok := p.(sqlast.ComparePred)
	if !ok || pp.Op != sqlast.OpEq || rs.base == nil {
		return false
	}
	switch pp.Value.(type) {
	case string, int64:
		return true
	default:
		return false
	}
}

func (e *executor) filterRows(rs *rowset, p sqlast.Pred) (*rowset, error) {
	out := &rowset{cols: rs.cols}
	switch pp := p.(type) {
	case sqlast.ComparePred:
		i, err := rs.resolve(pp.Col)
		if err != nil {
			return nil, err
		}
		if !e.noIndex && indexableEq(rs, p) {
			// Index lookup instead of a scan: candidates come from the hash
			// index (ascending row ids, so scan order is preserved) and are
			// re-verified with Compare, which also rejects NULLs colliding
			// with the formatted key.
			for _, ri := range rs.base.Lookup(rs.cols[i].name, pp.Value) {
				row := rs.rows[ri]
				if !relation.Null(row[i]) && relation.Compare(row[i], pp.Value) == 0 {
					out.rows = append(out.rows, row)
				}
			}
			return out, nil
		}
		for _, row := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			if relation.Null(row[i]) {
				continue
			}
			c := relation.Compare(row[i], pp.Value)
			keep := false
			switch pp.Op {
			case sqlast.OpEq:
				keep = c == 0
			case sqlast.OpNe:
				keep = c != 0
			case sqlast.OpLt:
				keep = c < 0
			case sqlast.OpLe:
				keep = c <= 0
			case sqlast.OpGt:
				keep = c > 0
			case sqlast.OpGe:
				keep = c >= 0
			}
			if keep {
				out.rows = append(out.rows, row)
			}
		}
	case sqlast.ContainsPred:
		i, err := rs.resolve(pp.Col)
		if err != nil {
			return nil, err
		}
		for _, row := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			s, ok := row[i].(string)
			if ok && relation.ContainsFold(s, pp.Needle) {
				out.rows = append(out.rows, row)
			}
		}
	case sqlast.JoinPred:
		li, err := rs.resolve(pp.Left)
		if err != nil {
			return nil, err
		}
		ri, err := rs.resolve(pp.Right)
		if err != nil {
			return nil, err
		}
		for _, row := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			if !relation.Null(row[li]) && relation.Equal(row[li], row[ri]) {
				out.rows = append(out.rows, row)
			}
		}
	case sqlast.ColComparePred:
		li, err := rs.resolve(pp.Left)
		if err != nil {
			return nil, err
		}
		ri, err := rs.resolve(pp.Right)
		if err != nil {
			return nil, err
		}
		for _, row := range rs.rows {
			if err := e.step(); err != nil {
				return nil, err
			}
			if relation.Null(row[li]) || relation.Null(row[ri]) {
				continue
			}
			c := relation.Compare(row[li], row[ri])
			keep := false
			switch pp.Op {
			case sqlast.OpNe:
				keep = c != 0
			case sqlast.OpLt:
				keep = c < 0
			case sqlast.OpLe:
				keep = c <= 0
			case sqlast.OpGt:
				keep = c > 0
			case sqlast.OpGe:
				keep = c >= 0
			}
			if keep {
				out.rows = append(out.rows, row)
			}
		}
	default:
		return nil, fmt.Errorf("sqldb: unsupported predicate %T", p)
	}
	return out, nil
}

// join combines two rowsets. With equality predicates it hash-joins;
// otherwise it produces the cross product.
func (e *executor) join(left, right *rowset, eqs []sqlast.JoinPred) (*rowset, error) {
	out := &rowset{cols: append(append([]boundCol(nil), left.cols...), right.cols...)}
	if len(eqs) == 0 {
		for _, lr := range left.rows {
			for _, rr := range right.rows {
				if err := e.step(); err != nil {
					return nil, err
				}
				out.rows = append(out.rows, concatRows(lr, rr))
			}
		}
		return out, nil
	}
	lidx := make([]int, len(eqs))
	ridx := make([]int, len(eqs))
	for k, jp := range eqs {
		li, err := left.resolve(jp.Left)
		if err != nil {
			return nil, err
		}
		ri, err := right.resolve(jp.Right)
		if err != nil {
			return nil, err
		}
		lidx[k], ridx[k] = li, ri
	}
	build := make(map[string][]int, len(right.rows))
	for i, rr := range right.rows {
		key, ok := joinKey(rr, ridx)
		if !ok {
			continue
		}
		build[key] = append(build[key], i)
	}
	for _, lr := range left.rows {
		if err := e.step(); err != nil {
			return nil, err
		}
		key, ok := joinKey(lr, lidx)
		if !ok {
			continue
		}
		for _, ri := range build[key] {
			out.rows = append(out.rows, concatRows(lr, right.rows[ri]))
		}
	}
	return out, nil
}

func joinKey(row relation.Tuple, idx []int) (string, bool) {
	parts := make([]string, len(idx))
	for k, i := range idx {
		if relation.Null(row[i]) {
			return "", false
		}
		parts[k] = relation.Format(row[i])
	}
	return strings.Join(parts, "\x1f"), true
}

func concatRows(a, b relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// project evaluates the SELECT list, applying GROUP BY and aggregates.
func (e *executor) project(rs *rowset, q *sqlast.Query) (*Result, error) {
	res := &Result{}
	hasAgg := false
	for _, it := range q.Select {
		res.Columns = append(res.Columns, outputName(it))
		if _, ok := it.Expr.(sqlast.AggExpr); ok {
			hasAgg = true
		}
	}
	if !hasAgg && len(q.GroupBy) == 0 {
		idxs := make([]int, len(q.Select))
		for k, it := range q.Select {
			ce := it.Expr.(sqlast.ColExpr)
			i, err := rs.resolve(ce.Col)
			if err != nil {
				return nil, err
			}
			idxs[k] = i
		}
		for _, row := range rs.rows {
			out := make(relation.Tuple, len(idxs))
			for k, i := range idxs {
				out[k] = row[i]
			}
			res.Rows = append(res.Rows, out)
		}
		return res, nil
	}

	gidx := make([]int, len(q.GroupBy))
	for k, c := range q.GroupBy {
		i, err := rs.resolve(c)
		if err != nil {
			return nil, err
		}
		gidx[k] = i
	}
	type group struct {
		rows []relation.Tuple
	}
	groups := make(map[string]*group)
	var order []string
	for _, row := range rs.rows {
		if err := e.step(); err != nil {
			return nil, err
		}
		parts := make([]string, len(gidx))
		for k, i := range gidx {
			parts[k] = relation.Format(row[i])
		}
		key := strings.Join(parts, "\x1f")
		g, ok := groups[key]
		if !ok {
			g = &group{}
			groups[key] = g
			order = append(order, key)
		}
		g.rows = append(g.rows, row)
	}
	if len(q.GroupBy) == 0 && len(order) == 0 {
		// Aggregates over an empty input still yield one row.
		groups[""] = &group{}
		order = append(order, "")
	}
	for _, key := range order {
		g := groups[key]
		out := make(relation.Tuple, len(q.Select))
		for k, it := range q.Select {
			switch ex := it.Expr.(type) {
			case sqlast.ColExpr:
				i, err := rs.resolve(ex.Col)
				if err != nil {
					return nil, err
				}
				if len(g.rows) > 0 {
					out[k] = g.rows[0][i]
				}
			case sqlast.AggExpr:
				i, err := rs.resolve(ex.Arg)
				if err != nil {
					return nil, err
				}
				v, err := aggregate(ex, g.rows, i)
				if err != nil {
					return nil, err
				}
				out[k] = v
			default:
				return nil, fmt.Errorf("sqldb: unsupported select expression %T", it.Expr)
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func aggregate(ex sqlast.AggExpr, rows []relation.Tuple, i int) (relation.Value, error) {
	var vals []relation.Value
	seen := make(map[string]bool)
	for _, row := range rows {
		v := row[i]
		if relation.Null(v) {
			continue
		}
		if ex.Distinct {
			k := relation.Format(v)
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch ex.Func {
	case sqlast.AggCount:
		return relation.Int(int64(len(vals))), nil
	case sqlast.AggMin, sqlast.AggMax:
		if len(vals) == 0 {
			return nil, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c := relation.Compare(v, best)
			if (ex.Func == sqlast.AggMin && c < 0) || (ex.Func == sqlast.AggMax && c > 0) {
				best = v
			}
		}
		return best, nil
	case sqlast.AggSum, sqlast.AggAvg:
		if len(vals) == 0 {
			return nil, nil
		}
		sum := 0.0
		allInt := true
		for _, v := range vals {
			f, ok := relation.AsFloat(v)
			if !ok {
				return nil, fmt.Errorf("sqldb: %s over non-numeric value %v", ex.Func, v)
			}
			if _, isInt := v.(int64); !isInt {
				allInt = false
			}
			sum += f
		}
		if ex.Func == sqlast.AggAvg {
			return relation.Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return relation.Int(int64(sum)), nil
		}
		return relation.Float(sum), nil
	default:
		return nil, fmt.Errorf("sqldb: unknown aggregate %q", ex.Func)
	}
}

func outputName(it sqlast.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch ex := it.Expr.(type) {
	case sqlast.ColExpr:
		return ex.Col.Column
	default:
		return it.Expr.String()
	}
}

func distinct(res *Result) *Result {
	out := &Result{Columns: res.Columns}
	seen := make(map[string]bool)
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = relation.Format(v)
		}
		key := strings.Join(parts, "\x1f")
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Rows = append(out.Rows, row)
	}
	return out
}

func orderBy(res *Result, items []sqlast.OrderItem) error {
	idxs := make([]int, len(items))
	for k, o := range items {
		found := -1
		for i, c := range res.Columns {
			if strings.EqualFold(c, o.Col.Column) || strings.EqualFold(c, o.Col.String()) {
				found = i
				break
			}
		}
		if found < 0 {
			return fmt.Errorf("sqldb: ORDER BY column %s not in result", o.Col)
		}
		idxs[k] = found
	}
	sort.SliceStable(res.Rows, func(a, b int) bool {
		for k, i := range idxs {
			c := relation.Compare(res.Rows[a][i], res.Rows[b][i])
			if c != 0 {
				if items[k].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	return nil
}
